package kairos

import (
	"testing"
	"time"

	"kairos/internal/soak"
)

// TestSoakExecFleetSmoke is the chaos-harness acceptance smoke: a flash
// crowd replayed through the TCP ingress against a 2-model fleet of real
// kairosd processes launched behind the chaos interposer, with one of
// them SIGKILLed mid-spike. The run must uphold every soak invariant —
// zero admitted queries dropped, conservation in every snapshot, the
// fleet healed with a finite recovery time. Guarded by -short; CI runs
// it under -race.
func TestSoakExecFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping exec-fleet soak smoke in -short mode")
	}
	t.Parallel()
	bin := buildKairosd(t)
	e := multiEngine(t) // NCF + MT-WND, shared $0.9/hr

	chaos := soak.WrapChaos(NewExecFleet(bin, 1, "NCF", "MT-WND"))
	ap, err := e.Autopilot(1, AutopilotOptions{
		Interval: 50 * time.Millisecond,
	},
		WithProvider(chaos),
		WithIngress("", "127.0.0.1:0"),
		WithIngressQueue(8192),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()
	ap.Start()

	scenario, err := ScenarioByName("flash-crowd", 3000, 60)
	if err != nil {
		t.Fatal(err)
	}
	report, err := soak.Run(soak.System{AP: ap, Chaos: chaos}, soak.Config{
		Scenario: scenario,
		Seed:     42,
		Models:   []string{"NCF", "MT-WND"},
		Faults:   []soak.FaultSpec{soak.KillAt(0.35)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Passed() {
		t.Fatalf("soak violations: %v", report.Violations)
	}
	if report.Submitted == 0 || report.Failed != 0 {
		t.Fatalf("accounting: %+v", report)
	}
	if len(report.Faults) != 1 {
		t.Fatalf("faults = %+v", report.Faults)
	}
	if ev := report.Faults[0]; ev.Kind != "kill" || ev.Err != "" || ev.RecoveryMS < 0 {
		t.Fatalf("kill never healed: %+v", ev)
	}
	if len(report.Trajectory) == 0 {
		t.Fatal("no latency trajectory recorded")
	}

	// The controller's own accounting agrees: every admitted query
	// delivered, nothing failed, across a SIGKILL of a real process.
	st := ap.Controller().Stats()
	if st.Failed != 0 || st.Completed != st.Submitted {
		t.Fatalf("controller stats after soak: %+v", st)
	}
	// The fault surfaced in the admin status with a recovery stamped.
	status := ap.Status()
	if status.Faults.InstancesLost != 1 || status.Faults.Heals < 1 || status.Faults.Pending {
		t.Fatalf("fault status = %+v", status.Faults)
	}
	if !status.Faults.LastRecovery.After(status.Faults.LastFault) {
		t.Fatalf("recovery %v not after fault %v", status.Faults.LastRecovery, status.Faults.LastFault)
	}
}
