package kairos

import (
	"kairos/internal/metrics"
	"kairos/internal/server"
)

// Re-exported real-process serving and measurement types, so the cmd tools
// and examples drive the Sec. 6 network path without importing internal
// packages.
type (
	// InstanceServer is one emulated inference instance: it binds a TCP
	// port, announces its instance type and model (plus the highest wire
	// version it speaks), and serves one batched query at a time with the
	// calibrated latency (cmd/kairosd).
	InstanceServer = server.InstanceServer
	// Controller is the central query controller speaking the framed
	// protocol to running instance servers. It is sharded per model (one
	// scheduler goroutine and lock per served model) and negotiates the
	// compact binary wire codec per connection, falling back to JSON for
	// legacy instances; closed-loop callers should prefer SubmitWait,
	// which recycles per-query bookkeeping.
	Controller = server.Controller
	// QueryResult reports one completed query on the network path.
	QueryResult = server.QueryResult
	// ControllerStats is the controller's accounting snapshot — the shared
	// observability surface of kairosctl and the autopilot.
	ControllerStats = server.Stats
	// ControllerModelStats is one model group's accounting snapshot.
	ControllerModelStats = server.ModelStats
	// InstanceStats is one connected instance's cumulative accounting.
	InstanceStats = server.InstanceStats
	// IngressStats is one model's external front-end accounting, merged
	// into ControllerStats when an ingress is attached.
	IngressStats = server.IngressStats
	// GroupSpec describes one served model's scheduling group for callers
	// assembling controllers by hand (see server.NewMultiController).
	GroupSpec = server.GroupSpec
	// LatencyRecorder accumulates latency samples and reports percentiles.
	LatencyRecorder = metrics.LatencyRecorder
)

// NewInstanceServer builds an emulated instance server for one instance
// type serving one model. timeScale dilates real time (0.1 = 10x faster
// than model time).
func NewInstanceServer(typeName string, model Model, timeScale float64) (*InstanceServer, error) {
	return server.NewInstanceServer(typeName, model, timeScale)
}

// NewLatencyRecorder creates a latency recorder with a capacity hint.
func NewLatencyRecorder(capacityHint int) *LatencyRecorder {
	return metrics.NewLatencyRecorder(capacityHint)
}

// Connect dials running instance servers (see NewInstanceServer and
// cmd/kairosd) and returns a central controller distributing real queries
// — the live counterpart of Evaluate. One scheduler group is built per
// served model, each running a fresh instance of the engine's policy wired
// to that model's monitor; every dialed instance joins the group of the
// model its banner announces, and queries are submitted per model
// (Controller.Submit). timeScale must match the daemons'. Close the
// controller when done.
func (e *Engine) Connect(timeScale float64, addrs []string) (*Controller, error) {
	groups := make(map[string]server.GroupSpec, len(e.models))
	for _, m := range e.models {
		policy, err := NewPolicy(e.policy, e.policyContextFor(m, e.monitors[m.Name]))
		if err != nil {
			return nil, err
		}
		groups[m.Name] = server.GroupSpec{Policy: policy, Predict: m.Latency}
	}
	return server.NewMultiController(groups, timeScale, addrs)
}
