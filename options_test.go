package kairos

import (
	"strings"
	"testing"
)

func TestNewOptionValidation(t *testing.T) {
	t.Parallel()
	pool := DefaultPool()
	model, _ := ModelByName("RM2")

	cases := []struct {
		name    string
		opts    []Option
		wantErr string
	}{
		{
			name:    "missing pool",
			opts:    []Option{WithModel(model)},
			wantErr: "needs a pool",
		},
		{
			name:    "missing model",
			opts:    []Option{WithPool(pool)},
			wantErr: "needs a model",
		},
		{
			name:    "empty pool",
			opts:    []Option{WithPool(Pool{}), WithModel(model)},
			wantErr: "non-empty pool",
		},
		{
			name:    "zero-QoS model",
			opts:    []Option{WithPool(pool), WithModel(Model{Name: "bad"})},
			wantErr: "positive QoS",
		},
		{
			name:    "unknown model name",
			opts:    []Option{WithPool(pool), WithModelName("nope")},
			wantErr: "nope",
		},
		{
			name:    "unknown policy",
			opts:    []Option{WithPool(pool), WithModel(model), WithPolicy("nope")},
			wantErr: `unknown policy "nope"`,
		},
		{
			name:    "non-positive budget",
			opts:    []Option{WithPool(pool), WithModel(model), WithBudget(0)},
			wantErr: "budget must be positive",
		},
		{
			name:    "negative budget",
			opts:    []Option{WithPool(pool), WithModel(model), WithBudget(-1)},
			wantErr: "budget must be positive",
		},
		{
			name:    "nil monitor",
			opts:    []Option{WithPool(pool), WithModel(model), WithMonitor(nil)},
			wantErr: "non-nil monitor",
		},
		{
			name:    "empty batch samples",
			opts:    []Option{WithPool(pool), WithModel(model), WithBatchSamples(nil)},
			wantErr: "non-empty sample",
		},
		{
			name:    "nil trace",
			opts:    []Option{WithPool(pool), WithModel(model), WithTrace(nil)},
			wantErr: "non-nil distribution",
		},
		{
			name:    "replan threshold too large",
			opts:    []Option{WithPool(pool), WithModel(model), WithReplan(1)},
			wantErr: "outside [0,1)",
		},
		{
			name:    "negative replan threshold",
			opts:    []Option{WithPool(pool), WithModel(model), WithReplan(-0.1)},
			wantErr: "outside [0,1)",
		},
		{
			name:    "negative probe queries",
			opts:    []Option{WithPool(pool), WithModel(model), WithProbeQueries(-1)},
			wantErr: "probe queries",
		},
		{
			name:    "precision fraction too large",
			opts:    []Option{WithPool(pool), WithModel(model), WithPrecisionFrac(1)},
			wantErr: "precision fraction",
		},
		{
			name:    "negative DRS threshold",
			opts:    []Option{WithPool(pool), WithModel(model), WithDRSThreshold(-1)},
			wantErr: "DRS threshold",
		},
		{
			name:    "negative partitions",
			opts:    []Option{WithPool(pool), WithModel(model), WithPartitions(-1)},
			wantErr: "partitions",
		},
		{
			name:    "nil option",
			opts:    []Option{WithPool(pool), WithModel(model), nil},
			wantErr: "nil option",
		},
		{
			name: "valid full set",
			opts: []Option{
				WithPool(pool), WithModelName("RM2"), WithBudget(2.5),
				WithPolicy("ribbon"), WithMonitor(NewMonitor()),
				WithBatchSamples([]int{1, 2, 3}), WithTrace(DefaultTrace()),
				WithReplan(0.2), WithSeed(7), WithDRSThreshold(100), WithPartitions(2),
				WithProbeQueries(1200), WithPrecisionFrac(0.06),
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := New(tc.opts...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("New() error: %v", err)
				}
				if e == nil {
					t.Fatal("New() returned nil engine")
				}
				return
			}
			if err == nil {
				t.Fatalf("New() succeeded, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("New() error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestNewDefaults(t *testing.T) {
	t.Parallel()
	pool := DefaultPool()
	model, _ := ModelByName("RM2")
	e, err := New(WithPool(pool), WithModel(model))
	if err != nil {
		t.Fatal(err)
	}
	if e.Policy() != DefaultPolicy {
		t.Fatalf("default policy = %q, want %q", e.Policy(), DefaultPolicy)
	}
	if e.Monitor() == nil {
		t.Fatal("engine must own a monitor by default")
	}
	if e.Budget() != 0 {
		t.Fatalf("unset budget = %v, want 0", e.Budget())
	}
	if _, err := e.Plan(); err == nil {
		t.Fatal("Plan without budget must error")
	}
	if _, err := e.Rank(); err == nil {
		t.Fatal("Rank without budget must error")
	}
	if _, err := e.Replan(); err == nil {
		t.Fatal("Replan without budget must error")
	}
}

func TestEngineConfigValidation(t *testing.T) {
	t.Parallel()
	pool := DefaultPool()
	model, _ := ModelByName("RM2")
	e, err := New(WithPool(pool), WithModel(model))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate(Config{1}, RunOptions{RatePerSec: 1, DurationMS: 100}); err == nil {
		t.Fatal("mismatched config must error")
	}
	if _, err := e.AllowableThroughput(Config{0, 0, 0, 0}); err == nil {
		t.Fatal("empty config must error")
	}
	if _, err := e.OracleThroughput(Config{1, 1}); err == nil {
		t.Fatal("mismatched config must error")
	}
	if _, err := e.UpperBound(Config{0, 0, 0, 0}); err == nil {
		t.Fatal("empty config must error")
	}
}
