package kairos

import (
	"math/rand"
	"testing"
)

// testEngine builds a small 2-type engine for fast lifecycle tests.
func testEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	model, err := ModelByName("RM2")
	if err != nil {
		t.Fatal(err)
	}
	base := []Option{WithPool(DefaultPool()), WithModel(model), WithSeed(3)}
	e, err := New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEnginePlanLifecycle(t *testing.T) {
	t.Parallel()
	e := testEngine(t, WithBudget(2.5), WithBatchSamples(sampleBatches(5000, 1)))

	pick, err := e.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if pick.Total() == 0 {
		t.Fatalf("empty plan %v", pick)
	}
	if !e.Pool().WithinBudget(pick, 2.5) {
		t.Fatalf("plan %v exceeds budget", pick)
	}
	ranked, err := e.Rank()
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) < 100 {
		t.Fatalf("ranking size %d", len(ranked))
	}
	ub, err := e.UpperBound(pick)
	if err != nil {
		t.Fatal(err)
	}
	if ub <= 0 {
		t.Fatal("pick upper bound must be positive")
	}
	res, err := e.PlanPlus(func(c Config) float64 {
		v, err := e.UpperBound(c)
		if err != nil {
			t.Fatal(err)
		}
		return v * 0.9
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Evaluations == 0 {
		t.Fatalf("PlanPlus = %+v", res)
	}
}

func TestEnginePlanMatchesDeprecatedPlanner(t *testing.T) {
	t.Parallel()
	samples := sampleBatches(5000, 1)
	e := testEngine(t, WithBudget(2.5), WithBatchSamples(samples))

	planner, err := NewPlanner(DefaultPool(), e.Model(), samples)
	if err != nil {
		t.Fatal(err)
	}
	enginePick, err := e.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if legacy := planner.Plan(2.5); !enginePick.Equal(legacy) {
		t.Fatalf("engine plan %v != deprecated planner plan %v", enginePick, legacy)
	}
	engineRank, err := e.Rank()
	if err != nil {
		t.Fatal(err)
	}
	legacyRank := planner.Rank(2.5)
	if len(engineRank) != len(legacyRank) {
		t.Fatalf("rank sizes differ: %d vs %d", len(engineRank), len(legacyRank))
	}
	for i := range engineRank {
		if !engineRank[i].Config.Equal(legacyRank[i].Config) || engineRank[i].UpperBound != legacyRank[i].UpperBound {
			t.Fatalf("rank[%d] differs: %+v vs %+v", i, engineRank[i], legacyRank[i])
		}
	}
}

func TestEngineServeWiresMonitor(t *testing.T) {
	t.Parallel()
	e := testEngine(t, WithPolicy("kairos+warm"))
	d, err := e.Serve()
	if err != nil {
		t.Fatal(err)
	}
	obs, ok := d.(Observer)
	if !ok {
		t.Fatal("kairos distributor must observe completions")
	}
	obs.Observe(e.Pool().Base().Name, 100, 5)
	if e.Monitor().Count() != 1 {
		t.Fatalf("monitor count = %d after one observation", e.Monitor().Count())
	}
}

func TestEngineFactoryIsolatesRuns(t *testing.T) {
	t.Parallel()
	e := testEngine(t)
	f := e.Factory()
	if f() == f() {
		t.Fatal("factory must build fresh policy instances")
	}
	if e.Monitor().Count() != 0 {
		t.Fatal("factory policies must not feed the engine monitor")
	}
}

// evaluateOpts is the shared small-run shape for equivalence tests.
var evaluateOpts = RunOptions{RatePerSec: 30, DurationMS: 10000, WarmupMS: 2000, Seed: 5}

// equivalent compares the deterministic fields two runs must share.
func equivalent(t *testing.T, name string, a, b Result) {
	t.Helper()
	if a.TotalQueries != b.TotalQueries || a.P99 != b.P99 || a.QPS != b.QPS ||
		a.Measured.Count != b.Measured.Count || a.MeanWaitMS != b.MeanWaitMS {
		t.Fatalf("%s: engine result %+v != deprecated-wrapper result %+v", name, a, b)
	}
}

// TestEngineMatchesDeprecatedDistributors replays the same deterministic
// simulation through the engine path (policy resolved by registry name)
// and the deprecated free-constructor path, and requires identical
// results.
func TestEngineMatchesDeprecatedDistributors(t *testing.T) {
	t.Parallel()
	pool := DefaultPool()
	model, _ := ModelByName("RM2")
	cfg := Config{1, 0, 4, 0}
	cluster, err := NewCluster(pool, cfg, model)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		policy string
		opts   []Option
		legacy func() Distributor
	}{
		{
			policy: "kairos+warm",
			legacy: func() Distributor { return NewWarmedKairosDistributor(pool, model, nil) },
		},
		{
			policy: "ribbon",
			legacy: func() Distributor { return NewRibbonDistributor(pool, model) },
		},
		{
			policy: "clockwork",
			legacy: func() Distributor { return NewClockworkDistributor(pool, model) },
		},
		{
			policy: "drs",
			opts:   []Option{WithDRSThreshold(120)},
			legacy: func() Distributor { return NewDRSDistributor(pool, model, 120) },
		},
		{
			policy: "kairos+partitioned",
			opts:   []Option{WithPartitions(2)},
			legacy: func() Distributor { return NewPartitionedDistributor(2, pool, model) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.policy, func(t *testing.T) {
			t.Parallel()
			e, err := New(append([]Option{
				WithPool(pool), WithModel(model), WithPolicy(tc.policy),
			}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			engineRes, err := e.Evaluate(cfg, evaluateOpts)
			if err != nil {
				t.Fatal(err)
			}
			legacyRes := cluster.Run(tc.legacy(), evaluateOpts)
			equivalent(t, tc.policy, engineRes, legacyRes)
		})
	}
}

func TestEngineReplanLifecycle(t *testing.T) {
	t.Parallel()
	e := testEngine(t, WithBudget(2.5), WithReplan(0.2))

	// Replan needs observed traffic.
	if _, err := e.Replan(); err == nil {
		t.Fatal("Replan with a cold monitor must error")
	}
	rng := rand.New(rand.NewSource(2))
	d := DefaultTrace()
	for i := 0; i < 8000; i++ {
		e.Monitor().Observe(d.Sample(rng))
	}
	rep, err := e.Replan()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Current().Total() == 0 {
		t.Fatal("empty initial plan")
	}
	if _, changed, err := rep.Check(); err != nil || changed {
		t.Fatalf("no drift expected: changed=%v err=%v", changed, err)
	}
	// A shifted mix triggers a one-shot replan.
	shifted := Gaussian(600, 100)
	for i := 0; i < 12000; i++ {
		e.Monitor().Observe(shifted.Sample(rng))
	}
	if _, changed, err := rep.Check(); err != nil || !changed {
		t.Fatalf("drift expected: changed=%v err=%v", changed, err)
	}
}

func TestEnginePlansFromMonitorFreshly(t *testing.T) {
	t.Parallel()
	e := testEngine(t, WithBudget(2.5))

	// With a cold monitor the engine synthesizes a snapshot from its trace.
	pick1, err := e.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// A warmed monitor with a radically different mix changes the plan on
	// the next call — monitor-sourced planning is never cached.
	rng := rand.New(rand.NewSource(4))
	shifted := Gaussian(600, 100)
	for i := 0; i < 10000; i++ {
		e.Monitor().Observe(shifted.Sample(rng))
	}
	pick2, err := e.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if pick1.Equal(pick2) {
		t.Fatalf("plan did not follow the monitor: %v == %v", pick1, pick2)
	}
}

func TestEnginePlanIgnoresBarelyWarmMonitor(t *testing.T) {
	t.Parallel()
	e := testEngine(t, WithBudget(2.5))
	pick1, err := e.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// A handful of early completions must not replace the 10k-sample
	// synthetic snapshot with a degenerate one-point mix.
	for i := 0; i < 5; i++ {
		e.Monitor().Observe(1000)
	}
	pick2, err := e.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !pick1.Equal(pick2) {
		t.Fatalf("plan flipped on a barely-warm monitor: %v -> %v", pick1, pick2)
	}
}

func TestDeprecatedPartitionedRejectsZeroPartitions(t *testing.T) {
	t.Parallel()
	pool := DefaultPool()
	model, _ := ModelByName("RM2")
	defer func() {
		if recover() == nil {
			t.Fatal("NewPartitionedDistributor(0, ...) must panic like the original constructor")
		}
	}()
	NewPartitionedDistributor(0, pool, model)
}

func TestPartitionedServeFeedsMonitorOnce(t *testing.T) {
	t.Parallel()
	e := testEngine(t, WithPolicy("kairos+partitioned"), WithPartitions(2))
	d, err := e.Serve()
	if err != nil {
		t.Fatal(err)
	}
	obs, ok := d.(Observer)
	if !ok {
		t.Fatal("partitioned distributor must observe completions")
	}
	obs.Observe(e.Pool().Base().Name, 100, 5)
	if got := e.Monitor().Count(); got != 1 {
		t.Fatalf("monitor count = %d after one observation, want 1 (no multiply-counting)", got)
	}
}

func TestEngineConnectFeedsPolicyAndMonitor(t *testing.T) {
	t.Parallel()
	model, err := ModelByName("NCF")
	if err != nil {
		t.Fatal(err)
	}
	const timeScale = 0.5
	srv, err := NewInstanceServer("g4dn.xlarge", model, timeScale)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The online-learning policy only works on the real path if the
	// controller feeds it completions; the shared monitor proves it does.
	e, err := New(WithPool(DefaultPool()), WithModel(model), WithPolicy("kairos"))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := e.Connect(timeScale, []string{srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	for i := 0; i < 3; i++ {
		if res := ctrl.SubmitWait(10); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if got := e.Monitor().Count(); got != 3 {
		t.Fatalf("monitor observed %d completions over the network path, want 3", got)
	}
}

func TestEngineEvaluateAndThroughput(t *testing.T) {
	t.Parallel()
	e := testEngine(t, WithPolicy("kairos+warm"))
	cfg := Config{1, 0, 4, 0}

	res, err := e.Evaluate(cfg, RunOptions{RatePerSec: 20, DurationMS: 8000, WarmupMS: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured.Count == 0 {
		t.Fatal("nothing measured")
	}
	qps, err := e.AllowableThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if qps <= 0 {
		t.Fatalf("allowable throughput = %v", qps)
	}
	orcl, err := e.OracleThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if orcl < qps {
		t.Fatalf("oracle %v below policy throughput %v", orcl, qps)
	}
}

func TestDeprecatedDRSZeroThresholdIsLiteral(t *testing.T) {
	t.Parallel()
	pool := DefaultPool()
	model, _ := ModelByName("RM2")
	if got := NewDRSDistributor(pool, model, 0).Name(); got != "DRS(t=0)" {
		t.Fatalf("NewDRSDistributor(..., 0) built %q, want literal DRS(t=0)", got)
	}
}
