package kairos

import (
	"math/rand"
	"testing"
)

// testEngine builds a small 2-type engine for fast lifecycle tests.
func testEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	model, err := ModelByName("RM2")
	if err != nil {
		t.Fatal(err)
	}
	base := []Option{WithPool(DefaultPool()), WithModel(model), WithSeed(3)}
	e, err := New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEnginePlanLifecycle(t *testing.T) {
	t.Parallel()
	e := testEngine(t, WithBudget(2.5), WithBatchSamples(sampleBatches(5000, 1)))

	pick, err := e.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if pick.Total() == 0 {
		t.Fatalf("empty plan %v", pick)
	}
	if !e.Pool().WithinBudget(pick, 2.5) {
		t.Fatalf("plan %v exceeds budget", pick)
	}
	ranked, err := e.Rank()
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) < 100 {
		t.Fatalf("ranking size %d", len(ranked))
	}
	ub, err := e.UpperBound(pick)
	if err != nil {
		t.Fatal(err)
	}
	if ub <= 0 {
		t.Fatal("pick upper bound must be positive")
	}
	res, err := e.PlanPlus(func(c Config) float64 {
		v, err := e.UpperBound(c)
		if err != nil {
			t.Fatal(err)
		}
		return v * 0.9
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Evaluations == 0 {
		t.Fatalf("PlanPlus = %+v", res)
	}
}

func TestEngineServeWiresMonitor(t *testing.T) {
	t.Parallel()
	e := testEngine(t, WithPolicy("kairos+warm"))
	d, err := e.Serve()
	if err != nil {
		t.Fatal(err)
	}
	obs, ok := d.(Observer)
	if !ok {
		t.Fatal("kairos distributor must observe completions")
	}
	obs.Observe(e.Pool().Base().Name, 100, 5)
	if e.Monitor().Count() != 1 {
		t.Fatalf("monitor count = %d after one observation", e.Monitor().Count())
	}
}

func TestEngineFactoryIsolatesRuns(t *testing.T) {
	t.Parallel()
	e := testEngine(t)
	f := e.Factory()
	if f() == f() {
		t.Fatal("factory must build fresh policy instances")
	}
	if e.Monitor().Count() != 0 {
		t.Fatal("factory policies must not feed the engine monitor")
	}
}

func TestEngineReplanLifecycle(t *testing.T) {
	t.Parallel()
	e := testEngine(t, WithBudget(2.5), WithReplan(0.2))

	// Replan needs observed traffic.
	if _, err := e.Replan(); err == nil {
		t.Fatal("Replan with a cold monitor must error")
	}
	rng := rand.New(rand.NewSource(2))
	d := DefaultTrace()
	for i := 0; i < 8000; i++ {
		e.Monitor().Observe(d.Sample(rng))
	}
	rep, err := e.Replan()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Current().Total() == 0 {
		t.Fatal("empty initial plan")
	}
	if _, changed, err := rep.Check(); err != nil || changed {
		t.Fatalf("no drift expected: changed=%v err=%v", changed, err)
	}
	// A shifted mix triggers a one-shot replan.
	shifted := Gaussian(600, 100)
	for i := 0; i < 12000; i++ {
		e.Monitor().Observe(shifted.Sample(rng))
	}
	if _, changed, err := rep.Check(); err != nil || !changed {
		t.Fatalf("drift expected: changed=%v err=%v", changed, err)
	}
}

func TestEnginePlansFromMonitorFreshly(t *testing.T) {
	t.Parallel()
	e := testEngine(t, WithBudget(2.5))

	// With a cold monitor the engine synthesizes a snapshot from its trace.
	pick1, err := e.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// A warmed monitor with a radically different mix changes the plan on
	// the next call — monitor-sourced planning is never cached.
	rng := rand.New(rand.NewSource(4))
	shifted := Gaussian(600, 100)
	for i := 0; i < 10000; i++ {
		e.Monitor().Observe(shifted.Sample(rng))
	}
	pick2, err := e.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if pick1.Equal(pick2) {
		t.Fatalf("plan did not follow the monitor: %v == %v", pick1, pick2)
	}
}

func TestEnginePlanIgnoresBarelyWarmMonitor(t *testing.T) {
	t.Parallel()
	e := testEngine(t, WithBudget(2.5))
	pick1, err := e.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// A handful of early completions must not replace the 10k-sample
	// synthetic snapshot with a degenerate one-point mix.
	for i := 0; i < 5; i++ {
		e.Monitor().Observe(1000)
	}
	pick2, err := e.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !pick1.Equal(pick2) {
		t.Fatalf("plan flipped on a barely-warm monitor: %v -> %v", pick1, pick2)
	}
}

func TestPartitionedServeFeedsMonitorOnce(t *testing.T) {
	t.Parallel()
	e := testEngine(t, WithPolicy("kairos+partitioned"), WithPartitions(2))
	d, err := e.Serve()
	if err != nil {
		t.Fatal(err)
	}
	obs, ok := d.(Observer)
	if !ok {
		t.Fatal("partitioned distributor must observe completions")
	}
	obs.Observe(e.Pool().Base().Name, 100, 5)
	if got := e.Monitor().Count(); got != 1 {
		t.Fatalf("monitor count = %d after one observation, want 1 (no multiply-counting)", got)
	}
}

func TestEngineConnectFeedsPolicyAndMonitor(t *testing.T) {
	t.Parallel()
	model, err := ModelByName("NCF")
	if err != nil {
		t.Fatal(err)
	}
	const timeScale = 0.5
	srv, err := NewInstanceServer("g4dn.xlarge", model, timeScale)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The online-learning policy only works on the real path if the
	// controller feeds it completions; the shared monitor proves it does.
	e, err := New(WithPool(DefaultPool()), WithModel(model), WithPolicy("kairos"))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := e.Connect(timeScale, []string{srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	for i := 0; i < 3; i++ {
		if res := ctrl.SubmitWait(model.Name, 10); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if got := e.Monitor().Count(); got != 3 {
		t.Fatalf("monitor observed %d completions over the network path, want 3", got)
	}
}

func TestEngineEvaluateAndThroughput(t *testing.T) {
	t.Parallel()
	e := testEngine(t, WithPolicy("kairos+warm"))
	cfg := Config{1, 0, 4, 0}

	res, err := e.Evaluate(cfg, RunOptions{RatePerSec: 20, DurationMS: 8000, WarmupMS: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured.Count == 0 {
		t.Fatal("nothing measured")
	}
	qps, err := e.AllowableThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if qps <= 0 {
		t.Fatalf("allowable throughput = %v", qps)
	}
	orcl, err := e.OracleThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if orcl < qps {
		t.Fatalf("oracle %v below policy throughput %v", orcl, qps)
	}
}

// TestEngineAutopilotLifecycle drives the facade's closed loop: plan and
// deploy an in-process fleet, serve a shifted mix over the real TCP path,
// and let one manual control step replan and reconfigure it.
func TestEngineAutopilotLifecycle(t *testing.T) {
	t.Parallel()
	small := Uniform(10, 80)
	reference := make([]int, 2000)
	rng := rand.New(rand.NewSource(7))
	for i := range reference {
		reference[i] = small.Sample(rng)
	}
	e, err := New(
		WithPool(DefaultPool()),
		WithModelName("NCF"),
		WithBudget(0.8),
		WithBatchSamples(reference),
		WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	// No budget, no autopilot.
	noBudget, err := New(WithPool(DefaultPool()), WithModelName("NCF"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noBudget.Autopilot(1, AutopilotOptions{}); err == nil {
		t.Fatal("autopilot without a budget must error")
	}

	ap, err := e.Autopilot(1, AutopilotOptions{Window: 60, MinObservations: 30})
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()
	initial := ap.Current()
	if initial.Total() == 0 {
		t.Fatalf("empty initial deployment %v", initial)
	}
	if got := ap.Controller().InstanceCounts(); len(got) == 0 {
		t.Fatalf("no live fleet: %v", got)
	}
	// Serve a disjoint large-batch mix; one step must replan and actuate.
	for i := 0; i < 40; i++ {
		if res := ap.Controller().SubmitWait("NCF", 500+i); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	dec, err := ap.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Replanned {
		t.Fatalf("expected a replan: %+v", dec)
	}
	if ap.Current().Equal(initial) {
		t.Fatalf("configuration unchanged: %v", ap.Current())
	}
	if got := ap.Controller().Stats().Failed; got != 0 {
		t.Fatalf("%d queries dropped during reconfiguration", got)
	}
}
