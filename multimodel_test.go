package kairos

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

// drawMix samples n batch sizes from a distribution.
func drawMix(dist BatchDistribution, n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = dist.Sample(rng)
	}
	return out
}

// multiEngine builds the two-model engine used by the facade tests: NCF on
// a small mix, MT-WND on a small mix, one shared budget.
func multiEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	base := []Option{
		WithPool(DefaultPool()),
		WithModels("NCF", "MT-WND"),
		WithBudget(0.9),
		WithModelSamples("NCF", drawMix(Uniform(10, 60), 1500, 3)),
		WithModelSamples("MT-WND", drawMix(Uniform(10, 80), 1500, 4)),
		WithSeed(7),
	}
	e, err := New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestWithModelsValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(WithPool(DefaultPool()), WithModels()); err == nil {
		t.Fatal("empty WithModels must error")
	}
	if _, err := New(WithPool(DefaultPool()), WithModels("NCF", "NCF")); err == nil {
		t.Fatal("duplicate model must error")
	}
	if _, err := New(WithPool(DefaultPool()), WithModels("nope")); err == nil {
		t.Fatal("unknown model must error")
	}
	if _, err := New(WithPool(DefaultPool()), WithModels("NCF"),
		WithModelSamples("RM2", []int{10})); err == nil {
		t.Fatal("WithModelSamples for an unserved model must error")
	}
	if _, err := New(WithPool(DefaultPool()), WithModelSet(Model{Name: "x"})); err == nil {
		t.Fatal("WithModelSet without QoS must error")
	}

	e := multiEngine(t)
	if got := e.Model().Name; got != "NCF" {
		t.Fatalf("primary model = %s", got)
	}
	if got := e.Models(); len(got) != 2 || got[1].Name != "MT-WND" {
		t.Fatalf("models = %v", got)
	}
	if _, err := e.MonitorFor("MT-WND"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.MonitorFor("nope"); err == nil {
		t.Fatal("MonitorFor unknown model must error")
	}
}

// TestMultiModelGuardsSingleModelMethods: the single-model lifecycle
// methods must refuse a multi-model engine instead of silently planning
// the whole budget for one model.
func TestMultiModelGuardsSingleModelMethods(t *testing.T) {
	t.Parallel()
	e := multiEngine(t)
	wantErr := func(name string, err error) {
		t.Helper()
		if err == nil || !strings.Contains(err.Error(), "serves 2 models") {
			t.Fatalf("%s on a multi-model engine: err = %v", name, err)
		}
	}
	_, err := e.Plan()
	wantErr("Plan", err)
	_, err = e.Rank()
	wantErr("Rank", err)
	_, err = e.Serve()
	wantErr("Serve", err)
	_, err = e.UpperBound(Config{1, 0, 0, 0})
	wantErr("UpperBound", err)
	_, err = e.Evaluate(Config{1, 0, 0, 0}, RunOptions{RatePerSec: 1, DurationMS: 10})
	wantErr("Evaluate", err)
	_, err = e.AllowableThroughput(Config{1, 0, 0, 0})
	wantErr("AllowableThroughput", err)
	_, err = e.OracleThroughput(Config{1, 0, 0, 0})
	wantErr("OracleThroughput", err)
	_, err = e.Replan()
	wantErr("Replan", err)

	// Factory cannot return an error; it must panic instead of silently
	// wiring every distributor to the primary model.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Factory() on a multi-model engine must panic when invoked")
			}
		}()
		e.Factory()()
	}()
}

// TestEnginePlanFleet: the shared budget splits across both models, covers
// each, and never overspends; a single-model engine plans a one-entry
// fleet.
func TestEnginePlanFleet(t *testing.T) {
	t.Parallel()
	pool := DefaultPool()
	e := multiEngine(t)
	plan, err := e.PlanFleet()
	if err != nil {
		t.Fatal(err)
	}
	if plan["NCF"].Total() == 0 || plan["MT-WND"].Total() == 0 {
		t.Fatalf("both models must be served: %v", plan)
	}
	if got := plan.Cost(pool); got > e.Budget()+1e-9 {
		t.Fatalf("fleet plan %v busts the budget at $%.3f/hr", plan, got)
	}

	single, err := New(
		WithPool(pool),
		WithModelName("NCF"),
		WithBudget(0.8),
		WithBatchSamples(drawMix(Uniform(10, 60), 1500, 3)),
	)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := single.PlanFleet()
	if err != nil {
		t.Fatal(err)
	}
	if len(sp) != 1 || sp["NCF"].Total() == 0 {
		t.Fatalf("single-model fleet plan = %v", sp)
	}

	noBudget, err := New(WithPool(pool), WithModels("NCF", "MT-WND"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noBudget.PlanFleet(); err == nil {
		t.Fatal("PlanFleet without a budget must error")
	}
}

// TestEngineConnectMultiModel: Connect builds one scheduler group per
// model; each model's completions feed that model's monitor, not the
// other's.
func TestEngineConnectMultiModel(t *testing.T) {
	t.Parallel()
	e := multiEngine(t, WithPolicy("kairos"))
	ncf, wnd := e.Models()[0], e.Models()[1]
	var addrs []string
	for _, m := range []Model{ncf, wnd} {
		srv, err := NewInstanceServer("g4dn.xlarge", m, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}
	ctrl, err := e.Connect(0.5, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	for i := 0; i < 3; i++ {
		if res := ctrl.SubmitWait(ncf.Name, 10); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if res := ctrl.SubmitWait(wnd.Name, 20); res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := e.Monitor().Count(); got != 3 {
		t.Fatalf("NCF monitor observed %d completions, want 3", got)
	}
	wm, err := e.MonitorFor(wnd.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got := wm.Count(); got != 1 {
		t.Fatalf("MT-WND monitor observed %d completions, want 1", got)
	}
}

// TestMultiModelAutopilotEndToEnd is the acceptance run on the public API:
// two models on the live TCP path under one shared budget; a mid-run mix
// shift on one model makes the autopilot move budget between the models'
// fleets with zero dropped in-flight queries. Guarded by -short; CI runs
// it under -race.
func TestMultiModelAutopilotEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-model autopilot e2e in -short mode")
	}
	t.Parallel()
	pool := DefaultPool()
	e := multiEngine(t)
	ap, err := e.Autopilot(1, AutopilotOptions{
		Interval:        25 * time.Millisecond,
		Cooldown:        50 * time.Millisecond,
		Window:          300,
		MinObservations: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()
	ap.Start()
	ctrl := ap.Controller()

	initial := ap.Current()
	if initial["NCF"].Total() == 0 || initial["MT-WND"].Total() == 0 {
		t.Fatalf("initial plan must serve both models: %v", initial)
	}
	if initial["MT-WND"].Base() != 0 {
		t.Fatalf("initial plan %v already owns the GPU; the shift would be invisible", initial)
	}

	rng := rand.New(rand.NewSource(11))
	smallA, smallB, largeB := Uniform(10, 60), Uniform(10, 80), Uniform(500, 800)
	send := func(model string, mix BatchDistribution, n int, gapMS float64) []<-chan QueryResult {
		done := make([]<-chan QueryResult, n)
		for i := 0; i < n; i++ {
			done[i] = ctrl.Submit(model, mix.Sample(rng))
			time.Sleep(time.Duration(gapMS * float64(time.Millisecond)))
		}
		return done
	}
	wait := func(label string, chans []<-chan QueryResult) {
		t.Helper()
		for i, ch := range chans {
			select {
			case res := <-ch:
				if res.Err != nil {
					t.Fatalf("%s query %d dropped: %v", label, i, res.Err)
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("%s query %d never completed", label, i)
			}
		}
	}

	// Phase 1: both models steady on their reference mixes.
	chA, chB := send("NCF", smallA, 120, 1), send("MT-WND", smallB, 100, 2)
	wait("phase-1 NCF", chA)
	wait("phase-1 MT-WND", chB)

	// Phase 2: MT-WND shifts to GPU-only batches mid-run.
	chA, chB = send("NCF", smallA, 80, 2), send("MT-WND", largeB, 180, 8)
	wait("phase-2 NCF", chA)
	wait("phase-2 MT-WND", chB)

	deadline := time.Now().Add(10 * time.Second)
	for ap.Replans() == 0 && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	if ap.Replans() == 0 {
		t.Fatal("the autopilot never replanned after the mix shift")
	}
	wait("post-replan MT-WND", send("MT-WND", largeB, 25, 8))
	wait("post-replan NCF", send("NCF", smallA, 25, 2))

	now := ap.Current()
	if now["MT-WND"].Base() == 0 {
		t.Fatalf("shifted plan %v did not buy MT-WND the GPU", now)
	}
	if pool.Cost(now["MT-WND"]) <= pool.Cost(initial["MT-WND"]) ||
		pool.Cost(now["NCF"]) >= pool.Cost(initial["NCF"]) {
		t.Fatalf("budget did not move between the fleets: %v -> %v", initial, now)
	}
	if got := now.Cost(pool); got > e.Budget()+1e-9 {
		t.Fatalf("fleet plan %v busts the shared budget at $%.3f/hr", now, got)
	}
	if st := ctrl.Stats(); st.Failed != 0 {
		t.Fatalf("%d queries dropped during the budget shift", st.Failed)
	}
	// The admin endpoint reflects both models.
	status := ap.Status()
	if len(status.Models) != 2 || len(status.Plan.Models) != 2 {
		t.Fatalf("admin status misses a model: %+v", status.Plan)
	}
}
