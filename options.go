package kairos

import "fmt"

// Option configures an Engine under construction. Options are applied in
// order by New; each may reject its argument, and New validates the
// assembled engine as a whole afterwards.
type Option func(*Engine) error

// WithPool sets the heterogeneous instance pool (required).
func WithPool(pool Pool) Option {
	return func(e *Engine) error {
		if len(pool) == 0 {
			return fmt.Errorf("kairos: WithPool needs a non-empty pool")
		}
		e.pool = pool
		return nil
	}
}

// WithModel sets the served model (required, unless WithModelName or
// WithModels is used) — the one-element case of WithModels.
func WithModel(model Model) Option {
	return func(e *Engine) error {
		if model.QoS <= 0 {
			return fmt.Errorf("kairos: WithModel needs a model with a positive QoS target (got %v)", model.QoS)
		}
		e.models = []Model{model}
		return nil
	}
}

// WithModelName resolves a catalog model by name (see Models) — the
// one-element case of WithModels.
func WithModelName(name string) Option {
	return func(e *Engine) error {
		model, err := ModelByName(name)
		if err != nil {
			return err
		}
		e.models = []Model{model}
		return nil
	}
}

// WithModels resolves a set of catalog models by name, all served under
// the engine's one shared budget: PlanFleet splits the budget across them
// by marginal throughput-per-dollar, and the live path (Connect,
// Autopilot) partitions instances and queries per model. The first name is
// the engine's primary model. A single name is equivalent to
// WithModelName.
func WithModels(names ...string) Option {
	return func(e *Engine) error {
		if len(names) == 0 {
			return fmt.Errorf("kairos: WithModels needs at least one model name")
		}
		models := make([]Model, len(names))
		seen := make(map[string]bool, len(names))
		for i, name := range names {
			if seen[name] {
				return fmt.Errorf("kairos: WithModels names %q twice", name)
			}
			seen[name] = true
			m, err := ModelByName(name)
			if err != nil {
				return err
			}
			models[i] = m
		}
		e.models = models
		return nil
	}
}

// WithModelSet sets an explicit served model set (non-catalog models), all
// under the shared budget; the first entry is the primary model.
func WithModelSet(models ...Model) Option {
	return func(e *Engine) error {
		if len(models) == 0 {
			return fmt.Errorf("kairos: WithModelSet needs at least one model")
		}
		seen := make(map[string]bool, len(models))
		for _, m := range models {
			if m.QoS <= 0 {
				return fmt.Errorf("kairos: model %q needs a positive QoS target (got %v)", m.Name, m.QoS)
			}
			if m.Name == "" {
				return fmt.Errorf("kairos: WithModelSet needs named models")
			}
			if seen[m.Name] {
				return fmt.Errorf("kairos: WithModelSet names %q twice", m.Name)
			}
			seen[m.Name] = true
		}
		e.models = append([]Model(nil), models...)
		return nil
	}
}

// WithBudget sets the cost budget in $/hr consumed by Plan, Rank, and
// Replan. Engines that only serve or evaluate fixed configurations may
// leave it unset.
func WithBudget(perHour float64) Option {
	return func(e *Engine) error {
		if perHour <= 0 {
			return fmt.Errorf("kairos: budget must be positive (got %v)", perHour)
		}
		e.budget = perHour
		return nil
	}
}

// WithPolicy selects the query-distribution policy by registry name (see
// Policies). The default is "kairos+warm".
func WithPolicy(name string) Option {
	return func(e *Engine) error {
		if !HasPolicy(name) {
			return fmt.Errorf("kairos: unknown policy %q (have %v)", name, Policies())
		}
		e.policy = name
		return nil
	}
}

// WithMonitor shares an existing query monitor with the engine's primary
// model instead of the fresh default one; useful when traffic is observed
// outside the engine's own distributors.
func WithMonitor(m *Monitor) Option {
	return func(e *Engine) error {
		if m == nil {
			return fmt.Errorf("kairos: WithMonitor needs a non-nil monitor")
		}
		e.sharedMonitor = m
		return nil
	}
}

// WithBatchSamples pins the batch-size snapshot the planner consumes for
// every served model, overriding the engine monitors. Use Monitor.Snapshot
// on live traffic or a synthetic sample for offline planning; per-model
// pins (WithModelSamples) take precedence.
func WithBatchSamples(samples []int) Option {
	return func(e *Engine) error {
		if len(samples) == 0 {
			return fmt.Errorf("kairos: WithBatchSamples needs a non-empty sample")
		}
		e.samples = samples
		return nil
	}
}

// WithModelSamples pins one served model's planning snapshot, so each
// model of a multi-model engine can plan from its own observed mix. The
// name must match a model configured by WithModels (validated by New).
func WithModelSamples(model string, samples []int) Option {
	return func(e *Engine) error {
		if model == "" {
			return fmt.Errorf("kairos: WithModelSamples needs a model name")
		}
		if len(samples) == 0 {
			return fmt.Errorf("kairos: WithModelSamples needs a non-empty sample")
		}
		if e.modelSamples == nil {
			e.modelSamples = make(map[string][]int)
		}
		e.modelSamples[model] = samples
		return nil
	}
}

// WithTrace sets the batch-size distribution driving simulations and the
// fallback planning snapshot; the default is the trace-like log-normal mix.
func WithTrace(dist BatchDistribution) Option {
	return func(e *Engine) error {
		if dist == nil {
			return fmt.Errorf("kairos: WithTrace needs a non-nil distribution")
		}
		e.batches = dist
		return nil
	}
}

// WithReplan sets the drift threshold (total-variation distance in (0,1))
// at which Replan triggers a fresh one-shot configuration; 0 keeps the
// default (0.15).
func WithReplan(threshold float64) Option {
	return func(e *Engine) error {
		if threshold < 0 || threshold >= 1 {
			return fmt.Errorf("kairos: replan threshold %v outside [0,1)", threshold)
		}
		e.replanThreshold = threshold
		return nil
	}
}

// WithSeed fixes the engine's random streams (planning snapshots,
// simulation arrivals). The default is 42.
func WithSeed(seed int64) Option {
	return func(e *Engine) error {
		e.seed = seed
		return nil
	}
}

// WithProbeQueries sizes each throughput probe run of
// AllowableThroughput; 0 keeps the finder's default (4000). Lower values
// trade precision for speed (see ExperimentScale).
func WithProbeQueries(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("kairos: probe queries must be >= 0 (got %d)", n)
		}
		e.probeQueries = n
		return nil
	}
}

// WithPrecisionFrac sets the relative precision terminating the
// allowable-throughput bisection; 0 keeps the finder's default (2%).
func WithPrecisionFrac(frac float64) Option {
	return func(e *Engine) error {
		if frac < 0 || frac >= 1 {
			return fmt.Errorf("kairos: precision fraction %v outside [0,1)", frac)
		}
		e.precisionFrac = frac
		return nil
	}
}

// WithDRSThreshold sets the batch-size routing threshold consumed by the
// "drs" policy; 0 keeps DefaultDRSThreshold.
func WithDRSThreshold(threshold int) Option {
	return func(e *Engine) error {
		if threshold < 0 {
			return fmt.Errorf("kairos: DRS threshold must be >= 0 (got %d)", threshold)
		}
		e.drsThreshold = threshold
		return nil
	}
}

// WithPartitions sets the POP partition count consumed by the
// "kairos+partitioned" policy; 0 keeps DefaultPartitions.
func WithPartitions(k int) Option {
	return func(e *Engine) error {
		if k < 0 {
			return fmt.Errorf("kairos: partitions must be >= 0 (got %d)", k)
		}
		e.partitions = k
		return nil
	}
}
