package kairos

import (
	"math/rand"
	"testing"
)

// TestAdoptionLifecycle walks the full downstream-user journey through the
// public API alone: observe traffic -> plan -> deploy -> serve -> detect a
// workload shift -> replan -> redeploy, asserting the paper's value
// proposition at each step.
func TestAdoptionLifecycle(t *testing.T) {
	t.Parallel()
	const budget = 2.5
	pool := DefaultPool()
	model, err := ModelByName("RM2")
	if err != nil {
		t.Fatal(err)
	}

	// 1. Observe production traffic into a shared monitor.
	monitor := NewMonitor()
	rng := rand.New(rand.NewSource(99))
	mix := DefaultTrace()
	for i := 0; i < 10000; i++ {
		monitor.Observe(mix.Sample(rng))
	}

	// 2. Plan without any online evaluation: the engine reads the warmed
	// monitor directly.
	engine, err := New(
		WithPool(pool),
		WithModel(model),
		WithBudget(budget),
		WithMonitor(monitor),
		WithSeed(99),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := engine.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !pool.WithinBudget(cfg, budget) {
		t.Fatalf("plan %v busts the budget", cfg)
	}

	// 3. Deploy and measure: the pick must beat budget-scaled homogeneous.
	cluster, err := NewCluster(pool, cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	factory := func() Distributor {
		return policyOrDie(t, "kairos+warm", PolicyContext{Pool: pool, Model: model, Monitor: monitor})
	}
	qps := cluster.AllowableThroughput(factory, 99)
	hom, err := NewCluster(pool, pool.Homogeneous(budget), model)
	if err != nil {
		t.Fatal(err)
	}
	homQPS := hom.AllowableThroughput(factory, 99) * pool.HomogeneousScale(budget)
	if qps < 1.5*homQPS {
		t.Fatalf("planned config %v at %.1f QPS does not clearly beat homogeneous %.1f", cfg, qps, homQPS)
	}

	// 4. The workload shifts; the engine's replanner reacts in one shot.
	replanner, err := engine.Replan()
	if err != nil {
		t.Fatal(err)
	}
	shift := Gaussian(550, 150)
	for i := 0; i < 10000; i++ {
		monitor.Observe(shift.Sample(rng))
	}
	next, changed, err := replanner.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatalf("replanner missed the shift (still %v)", next)
	}

	// 5. The new plan must serve the new mix; the old plan must not.
	newCluster, err := NewCluster(pool, next, model)
	if err != nil {
		t.Fatal(err)
	}
	probe := func(c *Cluster, rate float64) bool {
		res := c.Run(policyOrDie(t, "kairos+warm", PolicyContext{Pool: pool, Model: model}), RunOptions{
			RatePerSec: rate, DurationMS: 20000, WarmupMS: 4000, Seed: 99, Batches: shift,
		})
		return res.MeetsQoS
	}
	if !probe(newCluster, 20) {
		t.Fatalf("fresh plan %v cannot sustain 20 QPS of the new mix", next)
	}
	if probe(cluster, 20) {
		t.Fatalf("stale plan %v unexpectedly sustains the new mix — the shift is not stressing it", cfg)
	}
}
