// Package kairos is a from-scratch reproduction of "Kairos: Building
// Cost-Efficient Machine Learning Inference Systems with Heterogeneous
// Cloud Resources" (HPDC 2023): a runtime framework that maximizes
// inference query throughput under a QoS tail-latency target and a cost
// budget by (1) distributing queries over heterogeneous cloud instances
// with min-cost bipartite matching and (2) choosing the heterogeneous
// configuration in one shot from throughput upper bounds, with no online
// exploration.
//
// The public surface is the Engine, built with functional options and
// exposing the paper's full lifecycle:
//
//	engine, err := kairos.New(
//		kairos.WithPool(kairos.DefaultPool()),
//		kairos.WithModelName("RM2"),
//		kairos.WithBudget(2.5),
//		kairos.WithPolicy("kairos+warm"),
//	)
//	cfg, err := engine.Plan()                    // one-shot planning (Sec. 5.2)
//	dist, err := engine.Serve()                  // live query distribution (Sec. 5.1)
//	qps, err := engine.AllowableThroughput(cfg)  // simulation (Sec. 7)
//	rep, err := engine.Replan()                  // drift adaptation (Fig. 12)
//
// Distribution policies — the paper's mechanism and the competing schemes —
// are data: they live in a named registry (RegisterPolicy, Policies,
// NewPolicy), so tools select them via -policy flags and downstream code
// extends the set without touching this package.
//
// See DESIGN.md for the architecture and the system inventory.
package kairos

import (
	"fmt"

	"kairos/internal/cloud"
	"kairos/internal/core"
	"kairos/internal/models"
	"kairos/internal/sim"
	"kairos/internal/workload"
)

// Re-exported core types. The facade aliases them so applications never
// import internal packages.
type (
	// Pool is an ordered set of instance types; index 0 is the base type.
	Pool = cloud.Pool
	// Config is a heterogeneous configuration: instance counts per type.
	Config = cloud.Config
	// InstanceType describes one rentable instance type.
	InstanceType = cloud.InstanceType
	// Model is one serving workload: QoS target plus latency surface.
	Model = models.Model
	// BatchDistribution samples query batch sizes.
	BatchDistribution = workload.BatchDistribution
	// Monitor tracks the recent batch-size mix (Sec. 5.2).
	Monitor = workload.Monitor
	// Distributor is a query-distribution policy.
	Distributor = sim.Distributor
	// DistributorFactory builds fresh policy instances per evaluation run.
	DistributorFactory = sim.DistributorFactory
	// QueryView is the read-only projection of a waiting query handed to
	// distributors; downstream policies implement Distributor against it.
	QueryView = sim.QueryView
	// InstanceView is the read-only projection of an instance handed to
	// distributors.
	InstanceView = sim.InstanceView
	// Assignment dispatches waiting query Query to instance Instance.
	Assignment = sim.Assignment
	// Observer optionally receives ground-truth service feedback after each
	// query completes (see sim.Observer).
	Observer = sim.Observer
	// RankedConfig pairs a configuration with its throughput upper bound.
	RankedConfig = core.RankedConfig
	// PlusResult reports a Kairos+ pruning search.
	PlusResult = core.PlusResult
	// Result summarizes one simulation run.
	Result = sim.Result
)

// DefaultPool returns the paper's 4-type heterogeneous pool (Table 4).
func DefaultPool() Pool { return cloud.DefaultPool() }

// Models returns the five production models of Table 3.
func Models() []Model { return models.Catalog() }

// ModelByName looks up a catalog model.
func ModelByName(name string) (Model, error) { return models.ByName(name) }

// DefaultTrace returns the trace-like batch-size mix driving the default
// evaluation.
func DefaultTrace() BatchDistribution { return workload.DefaultTrace() }

// NewMonitor creates a sliding-window query monitor (the paper tracks the
// most recent 10000 queries).
func NewMonitor() *Monitor { return workload.NewMonitor(workload.DefaultWindow) }

// Cluster is a simulated deployment of one configuration serving one
// model. Engine.Evaluate, Engine.AllowableThroughput, and
// Engine.OracleThroughput cover the common paths; Cluster remains for
// callers that mix policies over one deployment.
type Cluster struct {
	spec sim.ClusterSpec
}

// validateConfig checks a configuration against a pool; shared by
// NewCluster and the Engine's simulation methods.
func validateConfig(pool Pool, cfg Config) error {
	if len(cfg) != len(pool) {
		return fmt.Errorf("kairos: config %v does not match pool of %d types", cfg, len(pool))
	}
	if cfg.Total() == 0 {
		return fmt.Errorf("kairos: empty configuration")
	}
	return nil
}

// NewCluster validates and assembles a simulated cluster.
func NewCluster(pool Pool, cfg Config, model Model) (*Cluster, error) {
	if err := validateConfig(pool, cfg); err != nil {
		return nil, err
	}
	return &Cluster{spec: sim.ClusterSpec{Pool: pool, Config: cfg, Model: model}}, nil
}

// RunOptions configure Cluster.Run and Engine.Evaluate.
type RunOptions struct {
	// RatePerSec is the Poisson arrival rate (queries per second).
	RatePerSec float64
	// DurationMS is the arrival horizon in virtual milliseconds.
	DurationMS float64
	// WarmupMS excludes the initial transient from measurement.
	WarmupMS float64
	// Seed fixes the random streams; Engine.Evaluate defaults 0 to the
	// engine seed.
	Seed int64
	// Batches overrides the default trace-like batch mix.
	Batches BatchDistribution
}

// Run simulates the cluster under the policy and returns latency/QoS
// statistics.
func (c *Cluster) Run(policy Distributor, opts RunOptions) Result {
	return sim.Run(c.spec, policy, sim.Options{
		RatePerSec: opts.RatePerSec,
		DurationMS: opts.DurationMS,
		WarmupMS:   opts.WarmupMS,
		Seed:       opts.Seed,
		Batches:    opts.Batches,
	})
}

// AllowableThroughput measures the paper's headline metric: the maximum
// arrival rate whose p99 latency stays within the model's QoS target.
func (c *Cluster) AllowableThroughput(factory DistributorFactory, seed int64) float64 {
	return sim.FindAllowableThroughput(c.spec, factory, sim.FindOptions{Seed: seed})
}

// OracleThroughput evaluates the clairvoyant ORCL reference scheduler on
// this cluster (Sec. 7).
func (c *Cluster) OracleThroughput(seed int64) float64 {
	return sim.OracleThroughput(c.spec, sim.OracleOptions{Seed: seed})
}

// Static adapts a stateless distributor into a factory.
func Static(d Distributor) DistributorFactory { return sim.Static(d) }
