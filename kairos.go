// Package kairos is a from-scratch reproduction of "Kairos: Building
// Cost-Efficient Machine Learning Inference Systems with Heterogeneous
// Cloud Resources" (HPDC 2023): a runtime framework that maximizes
// inference query throughput under a QoS tail-latency target and a cost
// budget by (1) distributing queries over heterogeneous cloud instances
// with min-cost bipartite matching and (2) choosing the heterogeneous
// configuration in one shot from throughput upper bounds, with no online
// exploration.
//
// The package is a facade over the internal subsystems:
//
//   - Plan a deployment: NewPlanner -> Planner.Plan picks the instance
//     counts for a budget from the observed batch-size mix.
//   - Serve queries: NewKairosDistributor implements the paper's matching
//     mechanism; baselines (Ribbon, DRS, Clockwork) are available for
//     comparison.
//   - Evaluate: NewCluster wraps the deterministic discrete-event
//     simulator; Cluster.AllowableThroughput measures the paper's
//     headline metric.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package kairos

import (
	"fmt"

	"kairos/internal/cloud"
	"kairos/internal/core"
	"kairos/internal/distributor"
	"kairos/internal/models"
	"kairos/internal/predictor"
	"kairos/internal/sim"
	"kairos/internal/workload"
)

// Re-exported core types. The facade aliases them so applications never
// import internal packages.
type (
	// Pool is an ordered set of instance types; index 0 is the base type.
	Pool = cloud.Pool
	// Config is a heterogeneous configuration: instance counts per type.
	Config = cloud.Config
	// InstanceType describes one rentable instance type.
	InstanceType = cloud.InstanceType
	// Model is one serving workload: QoS target plus latency surface.
	Model = models.Model
	// BatchDistribution samples query batch sizes.
	BatchDistribution = workload.BatchDistribution
	// Monitor tracks the recent batch-size mix (Sec. 5.2).
	Monitor = workload.Monitor
	// Distributor is a query-distribution policy.
	Distributor = sim.Distributor
	// DistributorFactory builds fresh policy instances per evaluation run.
	DistributorFactory = sim.DistributorFactory
	// RankedConfig pairs a configuration with its throughput upper bound.
	RankedConfig = core.RankedConfig
	// PlusResult reports a Kairos+ pruning search.
	PlusResult = core.PlusResult
	// Result summarizes one simulation run.
	Result = sim.Result
)

// DefaultPool returns the paper's 4-type heterogeneous pool (Table 4).
func DefaultPool() Pool { return cloud.DefaultPool() }

// Models returns the five production models of Table 3.
func Models() []Model { return models.Catalog() }

// ModelByName looks up a catalog model.
func ModelByName(name string) (Model, error) { return models.ByName(name) }

// DefaultTrace returns the trace-like batch-size mix driving the default
// evaluation.
func DefaultTrace() BatchDistribution { return workload.DefaultTrace() }

// NewMonitor creates a sliding-window query monitor (the paper tracks the
// most recent 10000 queries).
func NewMonitor() *Monitor { return workload.NewMonitor(workload.DefaultWindow) }

// Planner chooses heterogeneous configurations without online evaluation
// (Sec. 5.2): it ranks every configuration within the budget by its
// throughput upper bound and applies the similarity-based one-shot pick.
type Planner struct {
	est *core.Estimator
}

// NewPlanner builds a planner for one model from a snapshot of recent
// query batch sizes (use Monitor.Snapshot on live traffic).
func NewPlanner(pool Pool, model Model, batchSamples []int) (*Planner, error) {
	est, err := core.NewEstimator(pool, model, batchSamples, core.EstimatorOptions{})
	if err != nil {
		return nil, err
	}
	return &Planner{est: est}, nil
}

// Plan returns the one-shot configuration for the budget.
func (p *Planner) Plan(budgetPerHour float64) Config { return p.est.Plan(budgetPerHour) }

// Rank returns every budgeted configuration sorted by descending
// throughput upper bound.
func (p *Planner) Rank(budgetPerHour float64) []RankedConfig { return p.est.Rank(budgetPerHour) }

// UpperBound estimates the throughput ceiling of one configuration
// (Eqs. 9-15).
func (p *Planner) UpperBound(cfg Config) float64 { return p.est.UpperBound(cfg) }

// PlanPlus runs the Kairos+ pruning search (Algorithm 1) using eval as the
// expensive online measurement, returning the best configuration found and
// the evaluation count.
func (p *Planner) PlanPlus(budgetPerHour float64, eval func(Config) float64) PlusResult {
	return core.KairosPlus(p.Rank(budgetPerHour), core.EvalFunc(eval))
}

// NewKairosDistributor builds the paper's query-distribution mechanism for
// a model over a pool, learning latencies online from served queries. The
// optional monitor receives every completed query's batch size.
func NewKairosDistributor(pool Pool, model Model, monitor *Monitor) Distributor {
	return core.NewDistributor(core.DistributorOptions{
		QoS:      model.QoS,
		BaseType: pool.Base().Name,
		Monitor:  monitor,
	})
}

// NewWarmedKairosDistributor is NewKairosDistributor with the latency
// model pre-trained from the calibrated surfaces, skipping the cold start.
func NewWarmedKairosDistributor(pool Pool, model Model, monitor *Monitor) Distributor {
	names := make([]string, len(pool))
	for i, t := range pool {
		names[i] = t.Name
	}
	return core.NewDistributor(core.DistributorOptions{
		QoS:       model.QoS,
		BaseType:  pool.Base().Name,
		Predictor: predictor.Warmed(model.Latency, names, []int{1, 250, 500, 750, 1000}),
		Monitor:   monitor,
	})
}

// baselineOptions wires the ground-truth latency oracle the paper grants
// the competing schemes.
func baselineOptions(pool Pool, model Model) distributor.Options {
	return distributor.Options{
		QoS:       model.QoS,
		BaseType:  pool.Base().Name,
		Predictor: predictor.Oracle{Latency: model.Latency},
	}
}

// NewRibbonDistributor builds the RIBBON baseline (base-preferring FCFS).
func NewRibbonDistributor(pool Pool, model Model) Distributor {
	return distributor.NewRibbon(baselineOptions(pool, model))
}

// NewDRSDistributor builds the DeepRecSys-style threshold baseline.
func NewDRSDistributor(pool Pool, model Model, threshold int) Distributor {
	return distributor.NewDRS(baselineOptions(pool, model), threshold)
}

// NewClockworkDistributor builds the CLKWRK baseline.
func NewClockworkDistributor(pool Pool, model Model) Distributor {
	return distributor.NewClockwork(baselineOptions(pool, model))
}

// Cluster is a simulated deployment of one configuration serving one model.
type Cluster struct {
	spec sim.ClusterSpec
}

// NewCluster validates and assembles a simulated cluster.
func NewCluster(pool Pool, cfg Config, model Model) (*Cluster, error) {
	if len(cfg) != len(pool) {
		return nil, fmt.Errorf("kairos: config %v does not match pool of %d types", cfg, len(pool))
	}
	if cfg.Total() == 0 {
		return nil, fmt.Errorf("kairos: empty configuration")
	}
	return &Cluster{spec: sim.ClusterSpec{Pool: pool, Config: cfg, Model: model}}, nil
}

// RunOptions configure Cluster.Run.
type RunOptions struct {
	// RatePerSec is the Poisson arrival rate (queries per second).
	RatePerSec float64
	// DurationMS is the arrival horizon in virtual milliseconds.
	DurationMS float64
	// WarmupMS excludes the initial transient from measurement.
	WarmupMS float64
	// Seed fixes the random streams.
	Seed int64
	// Batches overrides the default trace-like batch mix.
	Batches BatchDistribution
}

// Run simulates the cluster under the policy and returns latency/QoS
// statistics.
func (c *Cluster) Run(policy Distributor, opts RunOptions) Result {
	return sim.Run(c.spec, policy, sim.Options{
		RatePerSec: opts.RatePerSec,
		DurationMS: opts.DurationMS,
		WarmupMS:   opts.WarmupMS,
		Seed:       opts.Seed,
		Batches:    opts.Batches,
	})
}

// AllowableThroughput measures the paper's headline metric: the maximum
// arrival rate whose p99 latency stays within the model's QoS target.
func (c *Cluster) AllowableThroughput(factory DistributorFactory, seed int64) float64 {
	return sim.FindAllowableThroughput(c.spec, factory, sim.FindOptions{Seed: seed})
}

// OracleThroughput evaluates the clairvoyant ORCL reference scheduler on
// this cluster (Sec. 7).
func (c *Cluster) OracleThroughput(seed int64) float64 {
	return sim.OracleThroughput(c.spec, sim.OracleOptions{Seed: seed})
}

// Static adapts a stateless distributor into a factory.
func Static(d Distributor) DistributorFactory { return sim.Static(d) }
