package kairos

import (
	"fmt"
	"time"

	"kairos/internal/autopilot"
	"kairos/internal/core"
)

// Re-exported autopilot types: the closed-loop control plane over the real
// network serving path (see internal/autopilot).
type (
	// Autopilot runs the monitor -> detect -> replan -> actuate loop over
	// a live controller and its in-process fleet. Engine.Autopilot builds
	// one; Start launches the loop; Close tears the whole serving path
	// down.
	Autopilot = autopilot.Autopilot
	// Fleet launches and stops in-process instance servers — the
	// actuator's "cloud provider".
	Fleet = autopilot.Fleet
	// AutopilotStatus is the /metrics view of the control plane.
	AutopilotStatus = autopilot.Status
	// AutopilotDecision reports one control-loop iteration (see
	// Autopilot.Step).
	AutopilotDecision = autopilot.Decision
	// PlanStatus is the /plan view: the configuration in force and the
	// replan history heads.
	PlanStatus = autopilot.PlanStatus
)

// AutopilotOptions tune Engine.Autopilot. Zero values defer to the
// autopilot defaults (see internal/autopilot.Options); the drift threshold
// additionally falls back to the engine's WithReplan threshold.
type AutopilotOptions struct {
	// Interval is the control-loop period (wall clock).
	Interval time.Duration
	// DriftThreshold is the total-variation trigger in (0,1).
	DriftThreshold float64
	// Window sizes the live batch-mix and latency windows.
	Window int
	// MinObservations gates the triggers until the window is this warm.
	MinObservations int
	// SLOPercentile / SLOLatencyMS state the latency objective; zero uses
	// p99 against the model's QoS target.
	SLOPercentile float64
	SLOLatencyMS  float64
	// Cooldown is the minimum wall-clock gap between replans.
	Cooldown time.Duration
	// Logf, when set, receives one line per control decision.
	Logf func(format string, args ...any)
}

// Autopilot deploys the engine as a self-managing serving system: it plans
// the initial configuration from the engine's planning snapshot, launches
// an in-process fleet of instance servers at timeScale, connects the
// engine's policy as the central controller, and arms the closed
// monitor -> detect -> replan -> actuate loop around them. Every replan
// invokes the engine's one-shot planner with the live window as its
// sample, under the engine's budget.
//
// The returned autopilot is idle: call Start to launch the control loop
// (and optionally StartAdmin for the HTTP endpoint), submit load through
// Controller, and Close to tear down loop, controller, and fleet.
func (e *Engine) Autopilot(timeScale float64, opts AutopilotOptions) (*Autopilot, error) {
	if err := e.needBudget(); err != nil {
		return nil, err
	}
	plan := func(samples []int) (Config, error) {
		est, err := core.NewEstimator(e.pool, e.model, samples, core.EstimatorOptions{})
		if err != nil {
			return nil, err
		}
		return est.Plan(e.budget), nil
	}
	reference := e.planningSamples()
	initial, err := plan(reference)
	if err != nil {
		return nil, err
	}
	if initial.Total() == 0 {
		return nil, fmt.Errorf("kairos: budget %v buys no configuration", e.budget)
	}
	drift := opts.DriftThreshold
	if drift == 0 {
		drift = e.replanThreshold
	}
	fleet := autopilot.NewFleet(e.model, timeScale)
	addrs, err := fleet.Deploy(e.pool, initial)
	if err != nil {
		fleet.Close()
		return nil, err
	}
	ctrl, err := e.Connect(timeScale, addrs)
	if err != nil {
		fleet.Close()
		return nil, err
	}
	ap, err := autopilot.New(ctrl, fleet, initial, autopilot.Options{
		Pool:            e.pool,
		Model:           e.model,
		Plan:            plan,
		Interval:        opts.Interval,
		DriftThreshold:  drift,
		Window:          opts.Window,
		MinObservations: opts.MinObservations,
		SLOPercentile:   opts.SLOPercentile,
		SLOLatencyMS:    opts.SLOLatencyMS,
		Cooldown:        opts.Cooldown,
		Reference:       reference,
		Logf:            opts.Logf,
	})
	if err != nil {
		ctrl.Close()
		fleet.Close()
		return nil, err
	}
	return ap, nil
}
