package kairos

import (
	"fmt"
	"time"

	"kairos/internal/autopilot"
	"kairos/internal/core"
)

// Re-exported autopilot types: the closed-loop control plane over the real
// network serving path (see internal/autopilot).
type (
	// Autopilot runs the monitor -> detect -> replan -> actuate loop over
	// a live multi-model controller and its in-process fleet.
	// Engine.Autopilot builds one; Start launches the loop; Close tears
	// the whole serving path down.
	Autopilot = autopilot.Autopilot
	// Fleet launches and stops in-process instance servers per model —
	// the actuator's "cloud provider".
	Fleet = autopilot.Fleet
	// AutopilotStatus is the /metrics view of the control plane.
	AutopilotStatus = autopilot.Status
	// AutopilotModelStatus is one model's control section within
	// AutopilotStatus.
	AutopilotModelStatus = autopilot.ModelStatus
	// AutopilotDecision reports one control-loop iteration (see
	// Autopilot.Step).
	AutopilotDecision = autopilot.Decision
	// AutopilotModelDecision is one model's trigger evaluation within a
	// Decision.
	AutopilotModelDecision = autopilot.ModelDecision
	// PlanStatus is the /plan view: the fleet plan in force and the
	// replan history heads.
	PlanStatus = autopilot.PlanStatus
	// ModelPlanStatus is one model's slice of the fleet plan.
	ModelPlanStatus = autopilot.ModelPlanStatus
	// FleetPlan is a multi-model deployment: one configuration per model,
	// paid from one shared budget (see Engine.PlanFleet).
	FleetPlan = core.FleetPlan
	// ModelDemand couples a model with the batch sample describing its
	// recent traffic — the per-model input to PlanFleetFor.
	ModelDemand = core.ModelDemand
)

// PlanFleetFor runs the shared-budget allocator directly over explicit
// per-model demands — the library entry point for callers that manage
// their own samples instead of an engine's monitors.
func PlanFleetFor(pool Pool, demands []ModelDemand, budget float64) (FleetPlan, error) {
	return core.PlanFleet(pool, demands, budget)
}

// AutopilotOptions tune Engine.Autopilot. Zero values defer to the
// autopilot defaults (see internal/autopilot.Options); the drift threshold
// additionally falls back to the engine's WithReplan threshold.
type AutopilotOptions struct {
	// Interval is the control-loop period (wall clock).
	Interval time.Duration
	// DriftThreshold is the total-variation trigger in (0,1).
	DriftThreshold float64
	// Window sizes the per-model live batch-mix and latency windows.
	Window int
	// MinObservations gates a model's triggers until its window is this
	// warm.
	MinObservations int
	// SLOPercentile / SLOLatencyMS state the latency objective; zero uses
	// p99 against each model's own QoS target.
	SLOPercentile float64
	SLOLatencyMS  float64
	// Cooldown is the minimum wall-clock gap between replans.
	Cooldown time.Duration
	// ScaleInFloor arms the scale-in trigger: sustained fleet utilization
	// below the floor replans under a shrunk budget to shed cost.
	// 0 disables scale-in.
	ScaleInFloor float64
	// ScaleInTicks is the consecutive under-utilized control ticks that
	// fire scale-in (default 5).
	ScaleInTicks int
	// ScaleInHysteresis is the utilization band above the floor that
	// resets the tick counter (default 0.05).
	ScaleInHysteresis float64
	// Logf, when set, receives one line per control decision.
	Logf func(format string, args ...any)
}

// Autopilot deploys the engine as a self-managing serving system: it plans
// the initial fleet (one configuration per served model, split from the
// shared budget by marginal throughput-per-dollar), launches an in-process
// fleet of instance servers at timeScale, connects the engine's policy as
// the central controller — one scheduler group per model — and arms the
// closed monitor -> detect -> replan -> actuate loop around them. Every
// replan invokes the engine's shared-budget allocator with the live
// per-model windows as its samples, so a trigger fired by one model can
// move budget to or from the others; the scale-in trigger replans under a
// shrunk budget when the fleet is under-utilized.
//
// The returned autopilot is idle: call Start to launch the control loop
// (and optionally StartAdmin for the HTTP endpoint), submit load through
// Controller (per model), and Close to tear down loop, controller, and
// fleet.
func (e *Engine) Autopilot(timeScale float64, opts AutopilotOptions) (*Autopilot, error) {
	if err := e.needBudget(); err != nil {
		return nil, err
	}
	fullBudget := e.budget
	plan := func(samples map[string][]int, budget float64) (core.FleetPlan, error) {
		if budget <= 0 {
			budget = fullBudget
		}
		demands := make([]core.ModelDemand, 0, len(e.models))
		for _, m := range e.models {
			if s := samples[m.Name]; len(s) > 0 {
				demands = append(demands, core.ModelDemand{Model: m, Samples: s})
			}
		}
		if len(demands) == 0 {
			return nil, fmt.Errorf("kairos: no model has a planning sample")
		}
		return core.PlanFleet(e.pool, demands, budget)
	}
	references := make(map[string][]int, len(e.models))
	for _, m := range e.models {
		references[m.Name] = e.planningSamplesFor(m.Name)
	}
	initial, err := plan(references, 0)
	if err != nil {
		return nil, err
	}
	if initial.Total() == 0 {
		return nil, fmt.Errorf("kairos: budget %v buys no configuration", e.budget)
	}
	drift := opts.DriftThreshold
	if drift == 0 {
		drift = e.replanThreshold
	}
	fleet := autopilot.NewFleet(timeScale, e.models...)
	addrs, err := fleet.Deploy(e.pool, initial)
	if err != nil {
		fleet.Close()
		return nil, err
	}
	ctrl, err := e.Connect(timeScale, addrs)
	if err != nil {
		fleet.Close()
		return nil, err
	}
	ap, err := autopilot.New(ctrl, fleet, initial, autopilot.Options{
		Pool:              e.pool,
		Models:            e.models,
		Plan:              plan,
		Interval:          opts.Interval,
		DriftThreshold:    drift,
		Window:            opts.Window,
		MinObservations:   opts.MinObservations,
		SLOPercentile:     opts.SLOPercentile,
		SLOLatencyMS:      opts.SLOLatencyMS,
		Cooldown:          opts.Cooldown,
		References:        references,
		ScaleInFloor:      opts.ScaleInFloor,
		ScaleInTicks:      opts.ScaleInTicks,
		ScaleInHysteresis: opts.ScaleInHysteresis,
		Logf:              opts.Logf,
	})
	if err != nil {
		ctrl.Close()
		fleet.Close()
		return nil, err
	}
	return ap, nil
}
