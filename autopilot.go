package kairos

import (
	"fmt"
	"time"

	"kairos/internal/autopilot"
	"kairos/internal/core"
	"kairos/internal/ingress"
)

// Re-exported autopilot types: the closed-loop control plane over the real
// network serving path (see internal/autopilot).
type (
	// Autopilot runs the monitor -> detect -> replan -> actuate loop over
	// a live multi-model controller and its actuation provider.
	// Engine.Autopilot builds one; Start launches the loop; Close tears
	// the whole serving path down.
	Autopilot = autopilot.Autopilot
	// Provider is the pluggable actuation driver: how instance servers
	// are launched and stopped. The built-ins are Fleet (in-process) and
	// ExecFleet (real kairosd processes); implement it to provision
	// instances any other way (SSH, a cloud API, ...).
	Provider = autopilot.Provider
	// Fleet is the in-process actuation provider: instance servers on
	// loopback TCP inside the controlling process.
	Fleet = autopilot.Fleet
	// ExecFleet is the exec actuation provider: it spawns, banner
	// health-checks, and gracefully SIGTERMs real kairosd processes.
	ExecFleet = autopilot.ExecFleet
	// AutopilotDecisionEvent is one entry of the autopilot's bounded
	// decision journal (Autopilot.Decisions, admin /decisionz).
	AutopilotDecisionEvent = autopilot.DecisionEvent
	// IngressServer is the external query front-end (HTTP JSON + binary
	// TCP) feeding a controller; see Engine.Autopilot's WithIngress.
	IngressServer = ingress.Server
	// IngressClient is the binary-TCP ingress client (see DialIngress).
	IngressClient = ingress.Client
	// IngressSubmitOptions are IngressClient.SubmitOpts' per-query
	// extras: a session-affinity key and a deadline.
	IngressSubmitOptions = ingress.SubmitOptions
	// AutopilotStatus is the /metrics view of the control plane.
	AutopilotStatus = autopilot.Status
	// AutopilotModelStatus is one model's control section within
	// AutopilotStatus.
	AutopilotModelStatus = autopilot.ModelStatus
	// AutopilotDecision reports one control-loop iteration (see
	// Autopilot.Step).
	AutopilotDecision = autopilot.Decision
	// AutopilotModelDecision is one model's trigger evaluation within a
	// Decision.
	AutopilotModelDecision = autopilot.ModelDecision
	// PlanStatus is the /plan view: the fleet plan in force and the
	// replan history heads.
	PlanStatus = autopilot.PlanStatus
	// ModelPlanStatus is one model's slice of the fleet plan.
	ModelPlanStatus = autopilot.ModelPlanStatus
	// FleetPlan is a multi-model deployment: one configuration per model,
	// paid from one shared budget (see Engine.PlanFleet).
	FleetPlan = core.FleetPlan
	// ModelDemand couples a model with the batch sample (and optionally
	// the observed arrival rate) describing its recent traffic — the
	// per-model input to PlanFleetFor.
	ModelDemand = core.ModelDemand
	// FleetPlanner is the incremental shared-budget allocator: it keeps
	// the configuration enumeration and each model's Pareto frontier
	// cached across replans, rebuilding only for models whose sample
	// window actually moved, so steady-state fleet replans are nearly
	// allocation-free. PlanFleetFor answers one-shot questions; hold a
	// FleetPlanner when planning repeatedly over drifting windows (see
	// NewFleetPlanner).
	FleetPlanner = core.FleetPlanner
)

// IngressQueueFullMsg is the exact error string a backpressure rejection
// carries on both ingress transports (HTTP 429 body, binary NACK reply).
const IngressQueueFullMsg = ingress.QueueFullMsg

// IngressRateLimitedMsg is the exact error string an over-budget client
// receives from a rate-limited front door (see WithIngressRateLimit) —
// distinct from IngressQueueFullMsg so clients can tell their own
// overage from system overload.
const IngressRateLimitedMsg = ingress.RateLimitedMsg

// IngressUnauthorizedMsg is the exact error string an unauthenticated
// submission receives from a token-gated front door (see WithIngressAuth).
const IngressUnauthorizedMsg = ingress.UnauthorizedMsg

// PlanFleetFor runs the shared-budget allocator directly over explicit
// per-model demands — the library entry point for callers that manage
// their own samples instead of an engine's monitors. Demands carrying an
// ArrivalQPS are demand-capped (see core.PlanFleet).
func PlanFleetFor(pool Pool, demands []ModelDemand, budget float64) (FleetPlan, error) {
	return core.PlanFleet(pool, demands, budget)
}

// NewFleetPlanner builds an incremental fleet planner over the pool,
// pre-enumerating configurations up to enumBudget (later Plan calls at or
// below it reuse the enumeration; a larger budget re-enumerates). Feed it
// demands with SetDemands (or ReplanModel for a single moved window),
// then Plan; frontiers for unmoved sample windows are served from cache.
// A FleetPlanner is not safe for concurrent use.
func NewFleetPlanner(pool Pool, enumBudget float64) (*FleetPlanner, error) {
	return core.NewFleetPlanner(pool, enumBudget)
}

// NewFleet builds the in-process actuation provider serving the given
// models at one time scale — what Engine.Autopilot uses when no
// WithProvider option is given.
func NewFleet(timeScale float64, ms ...Model) *Fleet {
	return autopilot.NewFleet(timeScale, ms...)
}

// NewExecFleet builds the exec actuation provider spawning bin (a kairosd
// binary) at the given time scale. When models are listed, launches for
// any other model are rejected up front.
func NewExecFleet(bin string, timeScale float64, models ...string) *ExecFleet {
	return autopilot.NewExecFleet(bin, timeScale, models...)
}

// DialIngress connects a binary-TCP client to an ingress front-end.
func DialIngress(addr string) (*IngressClient, error) {
	return ingress.Dial(addr)
}

// DialIngressAuth is DialIngress presenting a bearer token to a
// token-gated front door (see WithIngressAuth).
func DialIngressAuth(addr, token string) (*IngressClient, error) {
	return ingress.DialWith(addr, ingress.DialOptions{Token: token})
}

// AutopilotOptions tune Engine.Autopilot's control loop. Zero values
// defer to the autopilot defaults (see internal/autopilot.Options); the
// drift threshold additionally falls back to the engine's WithReplan
// threshold.
type AutopilotOptions struct {
	// Interval is the control-loop period (wall clock).
	Interval time.Duration
	// DriftThreshold is the total-variation trigger in (0,1).
	DriftThreshold float64
	// Window sizes the per-model live batch-mix and latency windows.
	Window int
	// MinObservations gates a model's triggers until its window is this
	// warm.
	MinObservations int
	// SLOPercentile / SLOLatencyMS state the latency objective; zero uses
	// p99 against each model's own QoS target.
	SLOPercentile float64
	SLOLatencyMS  float64
	// Cooldown is the minimum wall-clock gap between replans.
	Cooldown time.Duration
	// ScaleInFloor arms the scale-in trigger: sustained fleet utilization
	// below the floor replans under a shrunk budget to shed cost.
	// 0 disables scale-in.
	ScaleInFloor float64
	// ScaleInTicks is the consecutive under-utilized control ticks that
	// fire scale-in (default 5).
	ScaleInTicks int
	// ScaleInHysteresis is the utilization band above the floor that
	// resets the tick counter (default 0.05).
	ScaleInHysteresis float64
	// DemandHeadroom tunes demand-aware replanning: every replan caps each
	// model's planned throughput at its observed arrival rate times
	// (1 + DemandHeadroom), leaving surplus budget unspent instead of
	// buying capacity no model needs (see core.PlanFleet). Demand capping
	// is on by default: 0 uses the default headroom
	// (core.DefaultHeadroom); a negative value disables capping, so
	// replans maximize throughput under the full budget.
	DemandHeadroom float64
	// OnDemandFloor arms risk-bounded spot planning, as a fraction of each
	// model's observed arrival rate: in a pool carrying spot capacity
	// (Pool.WithSpotMarket), every latency-critical model's allocation
	// must keep an on-demand-only throughput upper bound of at least
	// OnDemandFloor times its arrival rate, so losing every spot instance
	// at once still leaves that fraction of demand servable (see
	// core.ModelDemand.OnDemandFloor). 0 disables the floor; it is also
	// inert in pools without spot capacity.
	OnDemandFloor float64
	// Logf, when set, receives one line per control decision.
	Logf func(format string, args ...any)
}

// AutopilotOption customizes the serving topology Engine.Autopilot
// assembles — the pluggable edges beyond the control-loop tuning in
// AutopilotOptions.
type AutopilotOption func(*autopilotConfig) error

type autopilotConfig struct {
	provider         autopilot.Provider
	ingressHTTP      string
	ingressTCP       string
	ingressQueue     int
	ingressShards    int
	ingressRateLimit float64
	ingressRateBurst int
	ingressTokens    []string
}

// WithProvider actuates through p instead of the default in-process
// fleet — e.g. NewExecFleet to run the plan as real kairosd processes.
// The autopilot takes ownership: Close stops the provider's instances.
func WithProvider(p Provider) AutopilotOption {
	return func(c *autopilotConfig) error {
		if p == nil {
			return fmt.Errorf("kairos: WithProvider needs a provider")
		}
		c.provider = p
		return nil
	}
}

// WithIngress opens external query front-ends over the managed
// controller: an HTTP JSON endpoint on httpAddr and a binary-TCP endpoint
// on tcpAddr (either may be empty to disable it; "127.0.0.1:0" binds an
// ephemeral port). External queries route per model, push back on
// overload (HTTP 429 / binary NACK), and their per-model counters appear
// in Controller.Stats() and the admin /metrics.
func WithIngress(httpAddr, tcpAddr string) AutopilotOption {
	return func(c *autopilotConfig) error {
		if httpAddr == "" && tcpAddr == "" {
			return fmt.Errorf("kairos: WithIngress needs at least one address")
		}
		c.ingressHTTP, c.ingressTCP = httpAddr, tcpAddr
		return nil
	}
}

// WithIngressQueue bounds each model's admitted-but-unfinished ingress
// queries (default 1024); submissions beyond it are rejected immediately.
func WithIngressQueue(n int) AutopilotOption {
	return func(c *autopilotConfig) error {
		if n <= 0 {
			return fmt.Errorf("kairos: ingress queue bound must be positive (got %d)", n)
		}
		c.ingressQueue = n
		return nil
	}
}

// WithIngressShards shards the ingress front door: n independent accept
// loops per transport (over SO_REUSEPORT where the platform has it), each
// with its own admission state and waiter pool. 0 or 1 runs unsharded.
func WithIngressShards(n int) AutopilotOption {
	return func(c *autopilotConfig) error {
		if n < 0 {
			return fmt.Errorf("kairos: negative ingress shard count %d", n)
		}
		c.ingressShards = n
		return nil
	}
}

// WithIngressRateLimit caps each ingress client's sustained submit rate
// in queries/sec (token bucket; burst 0 derives max(1, qps)). Over-budget
// submissions are rejected with IngressRateLimitedMsg — distinct from the
// queue-full rejection — on both transports.
func WithIngressRateLimit(qps float64, burst int) AutopilotOption {
	return func(c *autopilotConfig) error {
		if qps <= 0 {
			return fmt.Errorf("kairos: ingress rate limit must be positive (got %v)", qps)
		}
		if burst < 0 {
			return fmt.Errorf("kairos: negative ingress rate burst %d", burst)
		}
		c.ingressRateLimit, c.ingressRateBurst = qps, burst
		return nil
	}
}

// WithIngressAuth gates the ingress front door behind a static bearer
// token list: HTTP clients present Authorization: Bearer <token>, TCP
// clients pass the token at dial time. Unauthenticated submissions are
// rejected with IngressUnauthorizedMsg. With WithIngressRateLimit, each
// token gets its own rate bucket.
func WithIngressAuth(tokens ...string) AutopilotOption {
	return func(c *autopilotConfig) error {
		if len(tokens) == 0 {
			return fmt.Errorf("kairos: WithIngressAuth needs at least one token")
		}
		for _, tok := range tokens {
			if tok == "" {
				return fmt.Errorf("kairos: empty ingress auth token")
			}
		}
		c.ingressTokens = append([]string(nil), tokens...)
		return nil
	}
}

// Autopilot deploys the engine as a self-managing serving system: it plans
// the initial fleet (one configuration per served model, split from the
// shared budget by marginal throughput-per-dollar), launches the fleet
// through the actuation provider (in-process instance servers at
// timeScale by default; WithProvider plugs in exec'd kairosd processes or
// anything else), connects the engine's policy as the central controller
// — one scheduler group per model — and arms the closed monitor ->
// detect -> replan -> actuate loop around them. Every replan invokes the
// engine's shared-budget allocator with the live per-model windows (and,
// with DemandHeadroom set, the observed arrival rates) as its inputs, so
// a trigger fired by one model can move budget to or from the others; the
// scale-in trigger replans under a shrunk budget when the fleet is
// under-utilized. WithIngress additionally serves external traffic
// through an HTTP/TCP front-end whose lifecycle the autopilot owns.
//
// The returned autopilot is idle: call Start to launch the control loop
// (and optionally StartAdmin for the HTTP endpoint), submit load through
// Controller (per model) or the ingress endpoints, and Close to tear down
// loop, ingress, controller, and provider.
func (e *Engine) Autopilot(timeScale float64, opts AutopilotOptions, extra ...AutopilotOption) (*Autopilot, error) {
	if err := e.needBudget(); err != nil {
		return nil, err
	}
	var cfg autopilotConfig
	for _, o := range extra {
		if o == nil {
			return nil, fmt.Errorf("kairos: nil autopilot option")
		}
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.ingressHTTP == "" && cfg.ingressTCP == "" {
		if cfg.ingressQueue > 0 {
			return nil, fmt.Errorf("kairos: WithIngressQueue without WithIngress")
		}
		if cfg.ingressShards > 0 {
			return nil, fmt.Errorf("kairos: WithIngressShards without WithIngress")
		}
		if cfg.ingressRateLimit > 0 {
			return nil, fmt.Errorf("kairos: WithIngressRateLimit without WithIngress")
		}
		if len(cfg.ingressTokens) > 0 {
			return nil, fmt.Errorf("kairos: WithIngressAuth without WithIngress")
		}
	}
	if opts.OnDemandFloor < 0 {
		return nil, fmt.Errorf("kairos: negative on-demand floor %v", opts.OnDemandFloor)
	}
	// Demand capping defaults on; a negative headroom opts out.
	headroom := opts.DemandHeadroom
	if headroom == 0 {
		headroom = core.DefaultHeadroom
	}
	fullBudget := e.budget
	// One planner lives for the autopilot's whole lifetime: replans hand it
	// the fresh windows and it reuses every per-model frontier whose window
	// did not move, so steady-state replans skip enumeration and frontier
	// construction entirely (see core.FleetPlanner). Safe without extra
	// locking — the autopilot serializes planning under its step mutex.
	planner, err := core.NewFleetPlanner(e.pool, fullBudget)
	if err != nil {
		return nil, err
	}
	demandFor := func(m Model, s []int, arrival float64) core.ModelDemand {
		d := core.ModelDemand{Model: m, Samples: s}
		if headroom > 0 {
			d.ArrivalQPS = arrival
			d.Headroom = headroom
			// The on-demand floor derives from the same observed demand the
			// cap does, so it rides the same arrival rate (and is inert
			// while demand capping is disabled or the rate is unknown).
			d.OnDemandFloor = opts.OnDemandFloor
		}
		return d
	}
	plan := func(samples map[string][]int, arrivals map[string]float64, budget float64) (core.FleetPlan, error) {
		if budget <= 0 {
			budget = fullBudget
		}
		demands := make([]core.ModelDemand, 0, len(e.models))
		for _, m := range e.models {
			if s := samples[m.Name]; len(s) > 0 {
				demands = append(demands, demandFor(m, s, arrivals[m.Name]))
			}
		}
		if len(demands) == 0 {
			return nil, fmt.Errorf("kairos: no model has a planning sample")
		}
		if err := planner.SetDemands(demands); err != nil {
			return nil, err
		}
		got, err := planner.Plan(budget)
		if err != nil {
			return nil, err
		}
		// The planner owns the returned plan's storage; the control loop
		// mutates the plan it actuates (heals decrement counts), so hand
		// it a private copy.
		return got.Clone(), nil
	}
	replanModel := func(model string, samples []int, arrivalQPS float64, budget float64) (core.FleetPlan, error) {
		if budget <= 0 {
			budget = fullBudget
		}
		m := e.modelByName(model)
		if m == nil {
			return nil, fmt.Errorf("kairos: replan for unknown model %q", model)
		}
		got, err := planner.ReplanModel(demandFor(*m, samples, arrivalQPS), budget)
		if err != nil {
			return nil, err
		}
		return got.Clone(), nil
	}
	references := make(map[string][]int, len(e.models))
	for _, m := range e.models {
		references[m.Name] = e.planningSamplesFor(m.Name)
	}
	initial, err := plan(references, nil, 0)
	if err != nil {
		return nil, err
	}
	if initial.Total() == 0 {
		return nil, fmt.Errorf("kairos: budget %v buys no configuration", e.budget)
	}
	drift := opts.DriftThreshold
	if drift == 0 {
		drift = e.replanThreshold
	}
	provider := cfg.provider
	if provider == nil {
		provider = autopilot.NewFleet(timeScale, e.models...)
	} else if ts, ok := provider.(interface{ TimeScale() float64 }); ok {
		// A provider running instances at a different time dilation than
		// the controller skews every latency, rate, and utilization
		// reading — catch the mismatch before anything launches.
		eff := timeScale
		if eff <= 0 {
			eff = 1
		}
		if pts := ts.TimeScale(); pts != eff {
			return nil, fmt.Errorf("kairos: provider runs at time scale %v, autopilot at %v", pts, eff)
		}
	}
	addrs, err := autopilot.Deploy(provider, e.pool, initial)
	if err != nil {
		provider.Close()
		return nil, err
	}
	ctrl, err := e.Connect(timeScale, addrs)
	if err != nil {
		provider.Close()
		return nil, err
	}
	var ingOpts *ingress.Options
	if cfg.ingressHTTP != "" || cfg.ingressTCP != "" {
		ingOpts = &ingress.Options{
			HTTPAddr:   cfg.ingressHTTP,
			TCPAddr:    cfg.ingressTCP,
			MaxQueue:   cfg.ingressQueue,
			Shards:     cfg.ingressShards,
			AuthTokens: cfg.ingressTokens,
			RateLimit:  cfg.ingressRateLimit,
			RateBurst:  cfg.ingressRateBurst,
			Logf:       opts.Logf,
		}
	}
	ap, err := autopilot.New(ctrl, provider, initial, autopilot.Options{
		Pool:              e.pool,
		Models:            e.models,
		Plan:              plan,
		ReplanModel:       replanModel,
		TimeScale:         timeScale,
		Ingress:           ingOpts,
		Interval:          opts.Interval,
		DriftThreshold:    drift,
		Window:            opts.Window,
		MinObservations:   opts.MinObservations,
		SLOPercentile:     opts.SLOPercentile,
		SLOLatencyMS:      opts.SLOLatencyMS,
		Cooldown:          opts.Cooldown,
		References:        references,
		ScaleInFloor:      opts.ScaleInFloor,
		ScaleInTicks:      opts.ScaleInTicks,
		ScaleInHysteresis: opts.ScaleInHysteresis,
		Logf:              opts.Logf,
	})
	if err != nil {
		ctrl.Close()
		provider.Close()
		return nil, err
	}
	return ap, nil
}
