package kairos

import (
	"kairos/internal/adapt"
	"kairos/internal/pop"
	"kairos/internal/workload"
)

// Replanner watches the query monitor for batch-size distribution drift
// and replans the configuration in one shot when the mix moves — the
// Fig. 12 adaptation loop as a component.
type Replanner = adapt.Replanner

// NewReplanner plans an initial configuration from the (already warmed)
// monitor and arms drift detection. threshold is the total-variation
// trigger in (0,1); 0 uses the default (0.15).
func NewReplanner(pool Pool, model Model, budgetPerHour, threshold float64, monitor *Monitor) (*Replanner, error) {
	return adapt.NewReplanner(pool, model, budgetPerHour, threshold, monitor)
}

// NewPartitionedDistributor wraps k independent Kairos controllers over a
// partitioned pool — the POP-style scaling path of Sec. 6. Instances are
// split round-robin per type; queries hash to partitions by arrival ID.
func NewPartitionedDistributor(k int, pool Pool, model Model) Distributor {
	return pop.NewPartitioned(k, func(int) Distributor {
		return NewWarmedKairosDistributor(pool, model, nil)
	})
}

// SynthesizeTrace builds a reproducible query trace (arrivals + batch
// sizes) for replay and tooling; see cmd/kairos-trace.
func SynthesizeTrace(seed int64, dist BatchDistribution, ratePerSec float64, n int) workload.Trace {
	return workload.Synthesize(seed, dist, ratePerSec, n)
}

// Gaussian returns a truncated Gaussian batch-size distribution (the
// paper's alternative workload shape, Sec. 7).
func Gaussian(mean, std float64) BatchDistribution {
	return workload.Gaussian{Mean: mean, Std: std}
}
