package kairos

import (
	"io"

	"kairos/internal/adapt"
	"kairos/internal/workload"
)

// Replanner watches the query monitor for batch-size distribution drift
// and replans the configuration in one shot when the mix moves — the
// Fig. 12 adaptation loop as a component. Engines hand one out via
// Engine.Replan.
type Replanner = adapt.Replanner

// Trace is a reproducible query trace: arrivals plus batch sizes, with CSV
// and JSON round-tripping (see cmd/kairos-trace).
type Trace = workload.Trace

// SynthesizeTrace builds a reproducible query trace (arrivals + batch
// sizes) for replay and tooling; see cmd/kairos-trace.
func SynthesizeTrace(seed int64, dist BatchDistribution, ratePerSec float64, n int) Trace {
	return workload.Synthesize(seed, dist, ratePerSec, n)
}

// ReadTraceCSV parses a trace from its CSV form.
func ReadTraceCSV(r io.Reader) (Trace, error) { return workload.ReadCSV(r) }

// ReadTraceJSON parses a trace from its JSON form.
func ReadTraceJSON(r io.Reader) (Trace, error) { return workload.ReadJSON(r) }

// Scenario is a named adversarial workload shape — a sequence of
// rate/mix phases rendered into a deterministic arrival stream; see
// cmd/kairos-trace -scenario and the soak harness.
type Scenario = workload.Scenario

// ScenarioByName resolves a scenario preset (flash-crowd, diurnal,
// batch-mix-inversion, heavy-tail) with default shape parameters scaled
// to durationMS at base rate qps.
func ScenarioByName(name string, durationMS, qps float64) (Scenario, error) {
	return workload.ScenarioByName(name, durationMS, qps)
}

// Gaussian returns a truncated Gaussian batch-size distribution (the
// paper's alternative workload shape, Sec. 7).
func Gaussian(mean, std float64) BatchDistribution {
	return workload.Gaussian{Mean: mean, Std: std}
}

// Uniform returns a uniform batch-size distribution over [min, max].
func Uniform(min, max int) BatchDistribution {
	return workload.Uniform{Min: min, Max: max}
}

// DefaultGaussian returns the paper's default Gaussian batch mix.
func DefaultGaussian() BatchDistribution { return workload.DefaultGaussian() }
