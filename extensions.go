package kairos

import (
	"io"

	"kairos/internal/adapt"
	"kairos/internal/workload"
)

// Replanner watches the query monitor for batch-size distribution drift
// and replans the configuration in one shot when the mix moves — the
// Fig. 12 adaptation loop as a component. Engines hand one out via
// Engine.Replan.
type Replanner = adapt.Replanner

// NewReplanner plans an initial configuration from the (already warmed)
// monitor and arms drift detection. threshold is the total-variation
// trigger in (0,1); 0 uses the default (0.15).
//
// Deprecated: use an Engine with WithBudget, WithMonitor, and WithReplan,
// then Engine.Replan.
func NewReplanner(pool Pool, model Model, budgetPerHour, threshold float64, monitor *Monitor) (*Replanner, error) {
	return adapt.NewReplanner(pool, model, budgetPerHour, threshold, monitor)
}

// NewPartitionedDistributor wraps k independent Kairos controllers over a
// partitioned pool — the POP-style scaling path of Sec. 6. Instances are
// split round-robin per type; queries hash to partitions by arrival ID.
//
// Deprecated: use NewPolicy("kairos+partitioned", ...) or an Engine with
// WithPolicy("kairos+partitioned") and WithPartitions.
func NewPartitionedDistributor(k int, pool Pool, model Model) Distributor {
	if k < 1 {
		// The registry maps 0 to DefaultPartitions; this wrapper keeps the
		// original constructor's contract of rejecting k < 1 loudly.
		panic("pop: need at least one partition")
	}
	return mustPolicy("kairos+partitioned", PolicyContext{Pool: pool, Model: model, Partitions: k})
}

// Trace is a reproducible query trace: arrivals plus batch sizes, with CSV
// and JSON round-tripping (see cmd/kairos-trace).
type Trace = workload.Trace

// SynthesizeTrace builds a reproducible query trace (arrivals + batch
// sizes) for replay and tooling; see cmd/kairos-trace.
func SynthesizeTrace(seed int64, dist BatchDistribution, ratePerSec float64, n int) Trace {
	return workload.Synthesize(seed, dist, ratePerSec, n)
}

// ReadTraceCSV parses a trace from its CSV form.
func ReadTraceCSV(r io.Reader) (Trace, error) { return workload.ReadCSV(r) }

// ReadTraceJSON parses a trace from its JSON form.
func ReadTraceJSON(r io.Reader) (Trace, error) { return workload.ReadJSON(r) }

// Gaussian returns a truncated Gaussian batch-size distribution (the
// paper's alternative workload shape, Sec. 7).
func Gaussian(mean, std float64) BatchDistribution {
	return workload.Gaussian{Mean: mean, Std: std}
}

// DefaultGaussian returns the paper's default Gaussian batch mix.
func DefaultGaussian() BatchDistribution { return workload.DefaultGaussian() }
