// Ingress example: the control plane serving traffic it did not generate
// itself. An engine plans and deploys a two-model fleet under one shared
// budget, the autopilot manages it, and — the new part — an ingress
// front-end opens two external doors into the controller: an HTTP JSON
// endpoint (POST /submit) and a raw-TCP endpoint speaking the binary wire
// codec. This process then acts as its own external clients: goroutines
// POST queries over HTTP while a binary client streams queries over TCP,
// all routed per model, all pushed back on overload by the bounded
// admission queue instead of piling up. At the end the per-model ingress
// counters come back merged into the controller's Stats snapshot — one
// observability surface for front-end and serving path.
//
// Run with: go run ./examples/ingress
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"kairos"
)

const (
	budget    = 0.9
	timeScale = 1.0
	modelA    = "NCF"
	modelB    = "MT-WND"
	perClient = 150
)

// submitHTTP posts one query to the HTTP front-end and returns its
// latency (model ms).
func submitHTTP(url, model string, batch int) (float64, error) {
	body, _ := json.Marshal(map[string]any{"model": model, "batch": batch})
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var rep struct {
		LatencyMS float64 `json:"latency_ms"`
		Error     string  `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return 0, err
	}
	if rep.Error != "" {
		return 0, fmt.Errorf("%s (HTTP %d)", rep.Error, resp.StatusCode)
	}
	return rep.LatencyMS, nil
}

// draw samples n batch sizes from mix.
func draw(rng *rand.Rand, mix kairos.BatchDistribution, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = mix.Sample(rng)
	}
	return out
}

func main() {
	// CPU-friendly reference mixes match the small batches the external
	// clients send below, so the shared budget covers both models.
	rng := rand.New(rand.NewSource(7))
	engine, err := kairos.New(
		kairos.WithPool(kairos.DefaultPool()),
		kairos.WithModels(modelA, modelB),
		kairos.WithBudget(budget),
		kairos.WithPolicy("kairos+warm"),
		kairos.WithModelSamples(modelA, draw(rng, kairos.Uniform(10, 80), 2000)),
		kairos.WithModelSamples(modelB, draw(rng, kairos.Uniform(10, 80), 2000)),
		kairos.WithSeed(7),
	)
	if err != nil {
		panic(err)
	}
	ap, err := engine.Autopilot(timeScale,
		kairos.AutopilotOptions{
			Interval:        50 * time.Millisecond,
			Window:          500,
			MinObservations: 200,
		},
		kairos.WithIngress("127.0.0.1:0", "127.0.0.1:0"),
		kairos.WithIngressQueue(512),
	)
	if err != nil {
		panic(err)
	}
	defer ap.Close()
	ap.Start()

	ing := ap.Ingress()
	httpURL := "http://" + ing.HTTPAddr() + "/submit"
	fmt.Printf("HTTP ingress:        http://%s (POST /submit)\n", ing.HTTPAddr())
	fmt.Printf("binary-TCP ingress:  %s\n\n", ing.TCPAddr())

	var wg sync.WaitGroup
	var mu sync.Mutex
	failures := 0

	// External HTTP clients, one per model.
	for i, model := range []string{modelA, modelB} {
		wg.Add(1)
		go func(worker int, model string) {
			defer wg.Done()
			rec := kairos.NewLatencyRecorder(perClient)
			failed := 0
			for q := 0; q < perClient; q++ {
				lat, err := submitHTTP(httpURL, model, 10+(q+worker)%70)
				if err != nil {
					failed++
					continue
				}
				rec.Record(lat)
				time.Sleep(2 * time.Millisecond)
			}
			mu.Lock()
			failures += failed
			fmt.Printf("HTTP %-8s %s (failed %d)\n", model, rec.Summarize(), failed)
			mu.Unlock()
		}(i, model)
	}
	// One external binary-TCP client alternating both models.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cli, err := kairos.DialIngress(ing.TCPAddr())
		if err != nil {
			panic(err)
		}
		defer cli.Close()
		rec := kairos.NewLatencyRecorder(perClient)
		failed := 0
		for q := 0; q < perClient; q++ {
			model := modelA
			if q%2 == 1 {
				model = modelB
			}
			rep, err := cli.Submit(model, 10+q%70)
			if err != nil || rep.Err != "" {
				failed++
				continue
			}
			rec.Record(rep.ServiceMS)
			time.Sleep(2 * time.Millisecond)
		}
		mu.Lock()
		failures += failed
		fmt.Printf("TCP  both     %s (failed %d)\n", rec.Summarize(), failed)
		mu.Unlock()
	}()
	wg.Wait()

	st := ap.Controller().Stats()
	fmt.Printf("\ncontroller: %d submitted, %d completed, %d failed\n", st.Submitted, st.Completed, st.Failed)
	names := make([]string, 0, len(st.Ingress))
	for name := range st.Ingress {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		is := st.Ingress[name]
		fmt.Printf("  %-8s ingress: %d submitted (%d http, %d tcp), %d rejected, %d completed, %d failed\n",
			name, is.Submitted, is.HTTP, is.TCP, is.Rejected, is.Completed, is.Failed)
	}
	if failures == 0 && st.Failed == 0 {
		fmt.Println("\nevery externally submitted query was served — none dropped, none unaccounted")
	}
}
