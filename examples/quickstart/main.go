// Quickstart: the Fig. 5 story in a dozen lines of public API.
//
// One GPU and one CPU serve four queries. Naive FCFS puts the third
// (large) query on whichever instance frees first — the CPU — and blows
// the 25ms QoS target; Kairos's min-cost matching holds it for the GPU and
// routes the small query to the CPU, serving all four in time.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"kairos"
)

func main() {
	pool := kairos.DefaultPool()[:2] // g4dn.xlarge (GPU) + c5n.2xlarge (CPU)
	model, err := kairos.ModelByName("WND")
	if err != nil {
		panic(err)
	}
	cluster, err := kairos.NewCluster(pool, kairos.Config{1, 1}, model)
	if err != nil {
		panic(err)
	}

	fmt.Printf("serving %s (%s) on 1x GPU + 1x CPU\n\n", model.Name, model.Application)

	// The headline metric (Sec. 3): the maximum arrival rate whose p99
	// stays within QoS, on identical hardware, policy by policy.
	k := cluster.AllowableThroughput(func() kairos.Distributor {
		return kairos.NewWarmedKairosDistributor(pool, model, nil)
	}, 7)
	r := cluster.AllowableThroughput(kairos.Static(kairos.NewRibbonDistributor(pool, model)), 7)
	fmt.Printf("allowable throughput: Kairos %.0f QPS vs FCFS %.0f QPS (+%.0f%%)\n\n",
		k, r, (k/r-1)*100)

	// The crossover made concrete: at a rate between the two limits,
	// Kairos still meets the tail target while FCFS has lost it.
	mid := (k + r) / 2
	run := func(name string, policy kairos.Distributor) {
		res := cluster.Run(policy, kairos.RunOptions{
			RatePerSec: mid, DurationMS: 60000, WarmupMS: 10000, Seed: 7,
		})
		fmt.Printf("%-18s @ %.0f QPS: p99 %.1fms (QoS %.0fms) -> meets QoS: %v\n",
			name, mid, res.P99, model.QoS, res.MeetsQoS)
	}
	run("Kairos matching", kairos.NewWarmedKairosDistributor(pool, model, nil))
	run("Ribbon-style FCFS", kairos.NewRibbonDistributor(pool, model))
}
