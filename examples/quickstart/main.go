// Quickstart: the Fig. 5 story in a dozen lines of public API.
//
// One GPU and one CPU serve the WND model. Naive FCFS puts large queries
// on whichever instance frees first — the CPU — and blows the 25ms QoS
// target; Kairos's min-cost matching holds them for the GPU and routes
// small queries to the CPU. Policies are engine options resolved by
// registry name, so the comparison is two engines differing in one string.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"kairos"
)

func main() {
	pool := kairos.DefaultPool()[:2] // g4dn.xlarge (GPU) + c5n.2xlarge (CPU)
	model, err := kairos.ModelByName("WND")
	if err != nil {
		panic(err)
	}
	cfg := kairos.Config{1, 1}

	engine := func(policy string) *kairos.Engine {
		e, err := kairos.New(
			kairos.WithPool(pool),
			kairos.WithModel(model),
			kairos.WithPolicy(policy),
			kairos.WithSeed(7),
		)
		if err != nil {
			panic(err)
		}
		return e
	}
	kairosEngine := engine("kairos+warm")
	ribbonEngine := engine("ribbon")

	fmt.Printf("serving %s (%s) on 1x GPU + 1x CPU\n\n", model.Name, model.Application)

	// The headline metric (Sec. 3): the maximum arrival rate whose p99
	// stays within QoS, on identical hardware, policy by policy.
	k, err := kairosEngine.AllowableThroughput(cfg)
	if err != nil {
		panic(err)
	}
	r, err := ribbonEngine.AllowableThroughput(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("allowable throughput: Kairos %.0f QPS vs FCFS %.0f QPS (+%.0f%%)\n\n",
		k, r, (k/r-1)*100)

	// The crossover made concrete: at a rate between the two limits,
	// Kairos still meets the tail target while FCFS has lost it.
	mid := (k + r) / 2
	run := func(name string, e *kairos.Engine) {
		res, err := e.Evaluate(cfg, kairos.RunOptions{
			RatePerSec: mid, DurationMS: 60000, WarmupMS: 10000,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-18s @ %.0f QPS: p99 %.1fms (QoS %.0fms) -> meets QoS: %v\n",
			name, mid, res.P99, model.QoS, res.MeetsQoS)
	}
	run("Kairos matching", kairosEngine)
	run("Ribbon-style FCFS", ribbonEngine)
}
