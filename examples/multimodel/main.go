// Multimodel example: two models, one engine, one shared budget, on the
// real TCP serving path — closed-loop. The engine's shared-budget
// allocator splits $0.90/hr between NCF (a fast recommender) and MT-WND
// (a heavier ranker) from each model's observed batch mix and deploys both
// fleets as live instance servers behind one controller with per-model
// scheduler groups. Mid-run MT-WND's mix shifts to large batches that only
// the GPU can serve within QoS; the autopilot's per-model drift window
// trips, the fleet replans as a whole, and the actuator moves budget
// between the models — NCF's CPU fleet shrinks to fund MT-WND's GPU —
// without dropping a single in-flight query.
//
// Run with: go run ./examples/multimodel
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"kairos"
)

const (
	budget    = 0.9 // $/hr shared by both models
	timeScale = 1.0 // NCF/MT-WND latencies are ms-scale; run in real time
	modelA    = "NCF"
	modelB    = "MT-WND"
)

// draw samples n batch sizes from mix.
func draw(rng *rand.Rand, mix kairos.BatchDistribution, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = mix.Sample(rng)
	}
	return out
}

// printPlan renders each model's slice of the fleet plan.
func printPlan(plan kairos.FleetPlan, pool kairos.Pool) {
	names := plan.Models()
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-8s %v ($%.2f/hr)\n", name, plan[name], pool.Cost(plan[name]))
	}
	fmt.Printf("  total $%.2f/hr of $%.2f/hr budget\n", plan.Cost(pool), budget)
}

func main() {
	rng := rand.New(rand.NewSource(7))
	pool := kairos.DefaultPool()
	smallA := kairos.Uniform(10, 60)   // NCF's steady mix: CPU-friendly
	smallB := kairos.Uniform(10, 80)   // MT-WND phase 1: CPU-friendly
	largeB := kairos.Uniform(500, 800) // MT-WND phase 2: GPU-only within QoS

	engine, err := kairos.New(
		kairos.WithPool(pool),
		kairos.WithModels(modelA, modelB),
		kairos.WithBudget(budget),
		kairos.WithPolicy("kairos+warm"),
		kairos.WithModelSamples(modelA, draw(rng, smallA, 2000)),
		kairos.WithModelSamples(modelB, draw(rng, smallB, 2000)),
		kairos.WithSeed(7),
	)
	if err != nil {
		panic(err)
	}

	ap, err := engine.Autopilot(timeScale, kairos.AutopilotOptions{
		Interval:        25 * time.Millisecond,
		Cooldown:        50 * time.Millisecond,
		Window:          300,
		MinObservations: 100,
		Logf:            log.Printf,
	})
	if err != nil {
		panic(err)
	}
	defer ap.Close()
	adminAddr, err := ap.StartAdmin("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	ap.Start()
	ctrl := ap.Controller()

	initial := ap.Current()
	fmt.Printf("initial fleet plan (admin http://%s):\n", adminAddr)
	printPlan(initial, pool)
	fmt.Println()

	// serve pushes n queries of mix for one model, pacing gapMS apart, and
	// reports failures through the shared counter. Each call owns its rng:
	// the phases run two of these concurrently and *rand.Rand is not
	// goroutine-safe.
	var failMu sync.Mutex
	failures := 0
	serveSeed := int64(100)
	serve := func(wg *sync.WaitGroup, model string, mix kairos.BatchDistribution, n int, gapMS float64) {
		defer wg.Done()
		failMu.Lock()
		serveSeed++
		rng := rand.New(rand.NewSource(serveSeed))
		failMu.Unlock()
		done := make([]<-chan kairos.QueryResult, n)
		for i := 0; i < n; i++ {
			done[i] = ctrl.Submit(model, mix.Sample(rng))
			time.Sleep(time.Duration(gapMS * float64(time.Millisecond)))
		}
		rec := kairos.NewLatencyRecorder(n)
		failed := 0
		for _, ch := range done {
			res := <-ch
			if res.Err != nil {
				failed++
				continue
			}
			rec.Record(res.LatencyMS)
		}
		failMu.Lock()
		failures += failed
		fmt.Printf("%-8s %s (failed %d)\n", model, rec.Summarize(), failed)
		failMu.Unlock()
	}

	fmt.Println("phase 1: both models on their small-batch mixes")
	var wg sync.WaitGroup
	wg.Add(2)
	go serve(&wg, modelA, smallA, 200, 2)
	go serve(&wg, modelB, smallB, 150, 3)
	wg.Wait()

	fmt.Printf("\n--- %s's mix shifts to large batches ---\n", modelB)
	wg.Add(2)
	go serve(&wg, modelA, smallA, 150, 3)
	go serve(&wg, modelB, largeB, 200, 8)
	wg.Wait()

	// The loop ticks in the background; wait for the fleet replan to land.
	deadline := time.Now().Add(10 * time.Second)
	for ap.Replans() == 0 && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	fmt.Println("\nafter reconfiguration:")
	wg.Add(2)
	go serve(&wg, modelA, smallA, 40, 3)
	go serve(&wg, modelB, largeB, 40, 8)
	wg.Wait()

	now := ap.Current()
	fmt.Println("\nfinal fleet plan:")
	printPlan(now, pool)
	st := ctrl.Stats()
	fmt.Printf("\nqueries: %d submitted, %d completed, %d failed\n",
		st.Submitted, st.Completed, st.Failed)
	costA0, costA1 := pool.Cost(initial[modelA]), pool.Cost(now[modelA])
	costB0, costB1 := pool.Cost(initial[modelB]), pool.Cost(now[modelB])
	fmt.Printf("budget movement: %s $%.2f->$%.2f/hr, %s $%.2f->$%.2f/hr\n",
		modelA, costA0, costA1, modelB, costB0, costB1)
	if ap.Replans() >= 1 && failures == 0 && st.Failed == 0 && costB1 > costB0 {
		fmt.Printf("\nthe autopilot moved budget from %s to %s as the mixes shifted, with zero dropped queries\n",
			modelA, modelB)
	}
}
