// Planner example: pick a heterogeneous configuration for a cost budget
// without any online evaluation (Sec. 5.2).
//
// The planner watches recent traffic (here: synthetic trace-like batch
// sizes), computes the throughput upper bound of every configuration that
// fits the budget, and picks one with the similarity criterion. The
// example then verifies the pick against the simulator and against the
// budget-scaled homogeneous alternative.
//
// Run with: go run ./examples/planner
package main

import (
	"fmt"
	"math/rand"

	"kairos"
)

func main() {
	const budget = 2.5 // $/hr, the paper's default
	pool := kairos.DefaultPool()
	model, err := kairos.ModelByName("RM2")
	if err != nil {
		panic(err)
	}

	// Observe traffic: in production this is Monitor.Snapshot() over live
	// queries; here we synthesize 10k batch sizes from the default mix.
	rng := rand.New(rand.NewSource(1))
	trace := kairos.DefaultTrace()
	samples := make([]int, 10000)
	for i := range samples {
		samples[i] = trace.Sample(rng)
	}

	planner, err := kairos.NewPlanner(pool, model, samples)
	if err != nil {
		panic(err)
	}

	ranked := planner.Rank(budget)
	fmt.Printf("%d configurations fit $%.2f/hr; top 5 by throughput upper bound:\n", len(ranked), budget)
	for _, rc := range ranked[:5] {
		fmt.Printf("  %-12v cost $%.3f/hr  UB %.1f QPS\n", rc.Config, pool.Cost(rc.Config), rc.UpperBound)
	}

	pick := planner.Plan(budget)
	fmt.Printf("\none-shot pick: %v (no online evaluation)\n", pick)

	// Verify against the simulator.
	cluster, err := kairos.NewCluster(pool, pick, model)
	if err != nil {
		panic(err)
	}
	factory := func() kairos.Distributor { return kairos.NewWarmedKairosDistributor(pool, model, nil) }
	qps := cluster.AllowableThroughput(factory, 1)

	hom := pool.Homogeneous(budget)
	homCluster, err := kairos.NewCluster(pool, hom, model)
	if err != nil {
		panic(err)
	}
	homQPS := homCluster.AllowableThroughput(factory, 1) * pool.HomogeneousScale(budget)

	fmt.Printf("measured: %.1f QPS vs homogeneous %v at %.1f QPS -> %.2fx gain\n",
		qps, hom, homQPS, qps/homQPS)
}
