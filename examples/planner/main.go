// Planner example: pick a heterogeneous configuration for a cost budget
// without any online evaluation (Sec. 5.2).
//
// The engine plans from recent traffic (here: a synthetic trace-like
// batch-size snapshot pinned with WithBatchSamples), computing the
// throughput upper bound of every configuration that fits the budget and
// picking one with the similarity criterion. The example then verifies the
// pick against the simulator and against the budget-scaled homogeneous
// alternative.
//
// Run with: go run ./examples/planner
package main

import (
	"fmt"
	"math/rand"

	"kairos"
)

func main() {
	const budget = 2.5 // $/hr, the paper's default
	pool := kairos.DefaultPool()

	// Observe traffic: in production this is Monitor.Snapshot() over live
	// queries; here we synthesize 10k batch sizes from the default mix.
	rng := rand.New(rand.NewSource(1))
	trace := kairos.DefaultTrace()
	samples := make([]int, 10000)
	for i := range samples {
		samples[i] = trace.Sample(rng)
	}

	engine, err := kairos.New(
		kairos.WithPool(pool),
		kairos.WithModelName("RM2"),
		kairos.WithBudget(budget),
		kairos.WithPolicy("kairos+warm"),
		kairos.WithBatchSamples(samples),
		kairos.WithSeed(1),
	)
	if err != nil {
		panic(err)
	}

	ranked, err := engine.Rank()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d configurations fit $%.2f/hr; top 5 by throughput upper bound:\n", len(ranked), budget)
	for _, rc := range ranked[:5] {
		fmt.Printf("  %-12v cost $%.3f/hr  UB %.1f QPS\n", rc.Config, pool.Cost(rc.Config), rc.UpperBound)
	}

	pick, err := engine.Plan()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\none-shot pick: %v (no online evaluation)\n", pick)

	// Verify against the simulator under the engine's policy.
	qps, err := engine.AllowableThroughput(pick)
	if err != nil {
		panic(err)
	}

	hom := pool.Homogeneous(budget)
	homQPS, err := engine.AllowableThroughput(hom)
	if err != nil {
		panic(err)
	}
	homQPS *= pool.HomogeneousScale(budget)

	fmt.Printf("measured: %.1f QPS vs homogeneous %v at %.1f QPS -> %.2fx gain\n",
		qps, hom, homQPS, qps/homQPS)
}
