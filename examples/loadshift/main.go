// Load-shift example: the Fig. 12 scenario — the query-size distribution
// changes from the trace-like log-normal mix to a Gaussian mix, and Kairos
// replans in one shot from the query monitor's fresh view while
// search-based schemes would still be exploring. The whole loop runs
// through one engine: its monitor observes traffic, Replan arms drift
// detection, and Check replans when the mix moves.
//
// Run with: go run ./examples/loadshift
package main

import (
	"fmt"
	"math/rand"

	"kairos"
)

func main() {
	const budget = 2.5
	engine, err := kairos.New(
		kairos.WithPool(kairos.DefaultPool()),
		kairos.WithModelName("RM2"),
		kairos.WithBudget(budget),
		kairos.WithPolicy("kairos+warm"),
		kairos.WithReplan(0.15),
		kairos.WithSeed(9),
	)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(9))
	monitor := engine.Monitor()

	// Phase 1: steady state under the log-normal mix; Replan plans the
	// initial configuration and arms the drift detector on this mix.
	before := kairos.DefaultTrace()
	for i := 0; i < 10000; i++ {
		monitor.Observe(before.Sample(rng))
	}
	replanner, err := engine.Replan()
	if err != nil {
		panic(err)
	}
	pick1 := replanner.Current()
	fmt.Printf("log-normal mix: mean batch %.0f -> plan %v\n", monitor.MeanBatch(), pick1)

	// Phase 2: the workload shifts to a large-query Gaussian mix; the
	// monitor's sliding window turns over within ~10k queries and Check
	// replans in one shot.
	after := kairos.Gaussian(550, 150)
	for i := 0; i < 10000; i++ {
		monitor.Observe(after.Sample(rng))
	}
	pick2, changed, err := replanner.Check()
	if err != nil {
		panic(err)
	}
	fmt.Printf("gaussian mix:   mean batch %.0f -> plan %v (drift detected: %v)\n",
		monitor.MeanBatch(), pick2, changed)

	// Compare the stale and fresh plans under the NEW workload.
	m1 := measureUnder(engine, pick1, after)
	m2 := measureUnder(engine, pick2, after)
	fmt.Printf("\nunder the new mix: stale plan %v sustains %.1f QPS, fresh plan %v sustains %.1f QPS\n",
		pick1, m1, pick2, m2)
	if m2 >= m1 {
		fmt.Println("replanning from the monitor recovered the lost throughput in one shot")
	}
}

// measureUnder evaluates a configuration's allowable throughput with the
// given batch mix.
func measureUnder(engine *kairos.Engine, cfg kairos.Config, mix kairos.BatchDistribution) float64 {
	res := 0.0
	for rate := 10.0; rate < 400; rate *= 1.3 {
		out, err := engine.Evaluate(cfg, kairos.RunOptions{
			RatePerSec: rate, DurationMS: 20000, WarmupMS: 4000, Seed: 9, Batches: mix,
		})
		if err != nil {
			panic(err)
		}
		if !out.MeetsQoS {
			break
		}
		res = rate
	}
	return res
}
