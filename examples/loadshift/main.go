// Load-shift example: the Fig. 12 scenario — the query-size distribution
// changes from the trace-like log-normal mix to a Gaussian mix, and Kairos
// replans in one shot from the query monitor's fresh view while
// search-based schemes would still be exploring.
//
// Run with: go run ./examples/loadshift
package main

import (
	"fmt"
	"math/rand"

	"kairos"
	"kairos/internal/workload"
)

func main() {
	const budget = 2.5
	pool := kairos.DefaultPool()
	model, err := kairos.ModelByName("RM2")
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(9))

	// Phase 1: steady state under the log-normal mix.
	monitor := kairos.NewMonitor()
	before := kairos.DefaultTrace()
	for i := 0; i < 10000; i++ {
		monitor.Observe(before.Sample(rng))
	}
	p1, err := kairos.NewPlanner(pool, model, monitor.Snapshot())
	if err != nil {
		panic(err)
	}
	pick1 := p1.Plan(budget)
	fmt.Printf("log-normal mix: mean batch %.0f -> plan %v\n", monitor.MeanBatch(), pick1)

	// Phase 2: the workload shifts to a large-query Gaussian mix; the
	// monitor's sliding window turns over within ~10k queries.
	after := workload.Gaussian{Mean: 550, Std: 150}
	for i := 0; i < 10000; i++ {
		monitor.Observe(after.Sample(rng))
	}
	p2, err := kairos.NewPlanner(pool, model, monitor.Snapshot())
	if err != nil {
		panic(err)
	}
	pick2 := p2.Plan(budget)
	fmt.Printf("gaussian mix:   mean batch %.0f -> plan %v\n", monitor.MeanBatch(), pick2)

	// Compare the stale and fresh plans under the NEW workload.
	m1 := measureUnder(pool, model, pick1, after)
	m2 := measureUnder(pool, model, pick2, after)
	fmt.Printf("\nunder the new mix: stale plan %v sustains %.1f QPS, fresh plan %v sustains %.1f QPS\n",
		pick1, m1, pick2, m2)
	if m2 >= m1 {
		fmt.Println("replanning from the monitor recovered the lost throughput in one shot")
	}
}

// measureUnder evaluates a configuration's allowable throughput with the
// given batch mix.
func measureUnder(pool kairos.Pool, model kairos.Model, cfg kairos.Config, mix kairos.BatchDistribution) float64 {
	cluster, err := kairos.NewCluster(pool, cfg, model)
	if err != nil {
		panic(err)
	}
	res := 0.0
	for rate := 10.0; rate < 400; rate *= 1.3 {
		out := cluster.Run(kairos.NewWarmedKairosDistributor(pool, model, nil), kairos.RunOptions{
			RatePerSec: rate, DurationMS: 20000, WarmupMS: 4000, Seed: 9, Batches: mix,
		})
		if !out.MeetsQoS {
			break
		}
		res = rate
	}
	return res
}
