// Cluster example: the real network path end to end on loopback TCP — the
// process architecture of Sec. 6 (central controller + instance servers
// speaking a gRPC-like framed protocol) without the simulator.
//
// It boots three in-process instance servers (1x GPU + 2x CPU) for the NCF
// model, connects the engine's controller over loopback sockets, pushes a
// Poisson load through it, and prints the measured tail latency.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"kairos"
)

func main() {
	engine, err := kairos.New(
		kairos.WithPool(kairos.DefaultPool()),
		kairos.WithModelName("NCF"),
		kairos.WithPolicy("kairos+warm"),
	)
	if err != nil {
		panic(err)
	}
	model := engine.Model()
	// Dilate time 8x so OS timer granularity stays small relative to NCF's
	// millisecond-scale latencies.
	const timeScale = 8.0

	types := []string{"g4dn.xlarge", "r5n.large", "r5n.large"}
	var addrs []string
	for _, tn := range types {
		s, err := kairos.NewInstanceServer(tn, model, timeScale)
		if err != nil {
			panic(err)
		}
		if err := s.Start("127.0.0.1:0"); err != nil {
			panic(err)
		}
		defer s.Close()
		addrs = append(addrs, s.Addr())
		fmt.Printf("instance %-12s listening on %s\n", tn, s.Addr())
	}

	ctrl, err := engine.Connect(timeScale, addrs)
	if err != nil {
		panic(err)
	}
	defer ctrl.Close()
	fmt.Printf("controller (policy %s) connected to %v\n\n", engine.Policy(), ctrl.InstanceTypes())

	const n = 120
	rng := rand.New(rand.NewSource(11))
	mix := kairos.DefaultTrace()
	rec := kairos.NewLatencyRecorder(n)
	served := map[string]int{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		// ~0.7 queries per model-millisecond.
		time.Sleep(time.Duration(rng.ExpFloat64() * 1.4 * timeScale * float64(time.Millisecond)))
		batch := mix.Sample(rng)
		if batch > 200 {
			batch = 200 // keep the demo load CPU-feasible
		}
		wg.Add(1)
		go func(batch int) {
			defer wg.Done()
			res := ctrl.SubmitWait(model.Name, batch)
			mu.Lock()
			defer mu.Unlock()
			if res.Err != nil {
				served["error"]++
				return
			}
			rec.Record(res.LatencyMS)
			served[res.Instance]++
		}(batch)
	}
	wg.Wait()

	fmt.Printf("served %d queries: %v\n", n, served)
	fmt.Printf("latency (model ms): %s\n", rec.Summarize())
	fmt.Printf("p99 %.2fms vs QoS %.0fms -> meets QoS: %v\n",
		rec.Percentile(99), model.QoS, rec.MeetsQoS(model.QoS, 99))
}
