// Autopilot example: the Fig. 12 load-shift scenario on the real TCP
// serving path, closed-loop. The engine plans a CPU fleet for a
// small-batch mix and deploys it as live instance servers; mid-run the
// batch-size distribution shifts to large queries, the autopilot's live
// window drifts past the trigger, the engine replans in one shot, and the
// actuator reconfigures the running fleet — adding the GPU, draining the
// CPUs — without dropping a single in-flight query. The /plan admin
// endpoint reflects the new configuration over plain HTTP.
//
// Run with: go run ./examples/autopilot
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"time"

	"kairos"
)

const (
	budget    = 0.8 // $/hr: buys 5x r5n.large, or 1x g4dn.xlarge
	timeScale = 1.0 // NCF latencies are ms-scale; run in real time
)

func main() {
	rng := rand.New(rand.NewSource(7))
	small := kairos.Gaussian(45, 15)   // phase-1 mix: CPU-friendly
	large := kairos.Gaussian(600, 100) // phase-2 mix: needs the GPU

	// Pin the planning snapshot to the observed small-batch mix, exactly
	// as a warmed production monitor would supply it.
	reference := make([]int, 2000)
	for i := range reference {
		reference[i] = small.Sample(rng)
	}
	engine, err := kairos.New(
		kairos.WithPool(kairos.DefaultPool()),
		kairos.WithModelName("NCF"),
		kairos.WithBudget(budget),
		kairos.WithPolicy("kairos+warm"),
		kairos.WithBatchSamples(reference),
		kairos.WithSeed(7),
	)
	if err != nil {
		panic(err)
	}

	ap, err := engine.Autopilot(timeScale, kairos.AutopilotOptions{
		Interval:        25 * time.Millisecond,
		Cooldown:        50 * time.Millisecond,
		Window:          300,
		MinObservations: 100,
		Logf:            log.Printf,
	})
	if err != nil {
		panic(err)
	}
	defer ap.Close()
	adminAddr, err := ap.StartAdmin("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	ap.Start()

	ctrl := ap.Controller()
	fmt.Printf("initial plan %v deployed as %v (admin http://%s)\n\n",
		ap.Current(), ctrl.InstanceCounts(), adminAddr)

	// serve pushes n queries of mix through the live fleet, pacing gapMS
	// apart, and waits for every result. Returns the number of failures.
	serve := func(label string, mix kairos.BatchDistribution, n int, gapMS float64) int {
		done := make([]<-chan kairos.QueryResult, n)
		for i := 0; i < n; i++ {
			done[i] = ctrl.Submit("NCF", mix.Sample(rng))
			time.Sleep(time.Duration(gapMS * float64(time.Millisecond)))
		}
		failed := 0
		rec := kairos.NewLatencyRecorder(n)
		for _, ch := range done {
			res := <-ch
			if res.Err != nil {
				failed++
				continue
			}
			rec.Record(res.LatencyMS)
		}
		fmt.Printf("%s: %s (failed %d)\n", label, rec.Summarize(), failed)
		return failed
	}

	failures := 0
	failures += serve("phase 1 (small batches, CPU fleet)", small, 250, 1)

	fmt.Println("\n--- the batch-size mix shifts ---")
	failures += serve("phase 2 (large batches, mid-shift)", large, 400, 4)

	// The loop ticks in the background; wait for the replan to land.
	deadline := time.Now().Add(10 * time.Second)
	for ap.Replans() == 0 && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	failures += serve("phase 2 (after reconfiguration)  ", large, 50, 4)

	// Read the plan back over the wire, as an operator would.
	resp, err := http.Get(fmt.Sprintf("http://%s/plan", adminAddr))
	if err != nil {
		panic(err)
	}
	var plan kairos.PlanStatus
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		panic(err)
	}
	resp.Body.Close()

	st := ctrl.Stats()
	mp := plan.Models["NCF"]
	fmt.Printf("\n/plan now serves: config %v = %v ($%.2f/hr), %d replan(s): %s\n",
		mp.Config, mp.Counts, mp.Cost, plan.Replans, plan.LastReason)
	fmt.Printf("fleet: %v\n", ctrl.InstanceCounts())
	fmt.Printf("queries: %d submitted, %d completed, %d failed\n",
		st.Submitted, st.Completed, st.Failed)
	if plan.Replans >= 1 && failures == 0 && st.Failed == 0 {
		fmt.Println("\nthe autopilot detected the shift, replanned, and reconfigured the live fleet with zero dropped queries")
	}
}
