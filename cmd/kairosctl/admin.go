package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"time"

	"kairos/internal/autopilot"
)

// runTrace implements `kairosctl trace`: it reads the autopilot admin
// endpoint's /tracez view and renders each model's retained flight
// recorder traces, newest first.
func runTrace(args []string) {
	fs := flag.NewFlagSet("kairosctl trace", flag.ExitOnError)
	admin := fs.String("admin", "", "autopilot admin address (host:port)")
	model := fs.String("model", "", "limit to one model")
	n := fs.Int("n", 20, "traces per model")
	fs.Parse(args)
	if *admin == "" {
		log.Fatal("kairosctl trace: -admin required")
	}
	url := fmt.Sprintf("http://%s/tracez?n=%d", *admin, *n)
	if *model != "" {
		url += "&model=" + *model
	}
	var tz autopilot.TracezStatus
	getJSON(url, &tz)
	fmt.Printf("trace sampling: 1/%d (seed %d)\n", tz.SampleEvery, tz.SampleSeed)
	names := make([]string, 0, len(tz.Models))
	for name := range tz.Models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		traces := tz.Models[name]
		fmt.Printf("%s: %d traces (newest first)\n", name, len(traces))
		for _, tr := range traces {
			status := ""
			if tr.Err {
				status = "  FAILED"
			}
			fmt.Printf("  id=%-8d %s batch=%-5d %-14s queue=%s flight=%s wait=%s serve=%s e2e=%s%s\n",
				tr.ID, tr.Start().Format("15:04:05.000"), tr.Batch, tr.Instance,
				ms(tr.QueueNS), ms(tr.FlightNS), ms(tr.WaitNS), ms(tr.ServeNS), ms(tr.E2ENS), status)
		}
	}
}

// runStatus implements `kairosctl status`: the admin endpoint's full
// JSON control-plane snapshot (/statusz), streamed as-is.
func runStatus(args []string) {
	fs := flag.NewFlagSet("kairosctl status", flag.ExitOnError)
	admin := fs.String("admin", "", "autopilot admin address (host:port)")
	fs.Parse(args)
	if *admin == "" {
		log.Fatal("kairosctl status: -admin required")
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/statusz", *admin))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		log.Fatal(err)
	}
}

// getJSON fetches one admin URL into v, failing the command on any
// transport or decode error.
func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("kairosctl: %s: %s: %s", url, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatalf("kairosctl: decoding %s: %v", url, err)
	}
}

// ms renders a nanosecond stage duration as wall milliseconds.
func ms(ns int64) string {
	return fmt.Sprintf("%.2fms", float64(ns)/float64(time.Millisecond))
}
