// Command kairosctl runs the Kairos central controller against running
// kairosd instance servers and drives a Poisson query load through it,
// reporting the end-to-end tail latency (the real-process counterpart of
// the simulator experiments). The distribution policy is selected by
// registry name. The -model flag is repeatable: one scheduler group is
// built per model, each dialed kairosd joins the group its banner
// announces, and the load is spread round-robin across the models.
//
// Usage (after starting kairosd daemons):
//
//	kairosctl -model RM2 -addrs 127.0.0.1:7001,127.0.0.1:7002 -rate 20 -queries 200
//	kairosctl -model RM2 -model NCF -addrs 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//
// Against a running kairos-autopilot admin endpoint it also speaks the
// observability surface:
//
//	kairosctl status -admin 127.0.0.1:9090
//	kairosctl trace -admin 127.0.0.1:9090 -model NCF -n 50
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"kairos"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "trace":
			runTrace(os.Args[2:])
			return
		case "status":
			runStatus(os.Args[2:])
			return
		}
	}
	runLoad()
}

// runLoad is the original kairosctl mode: drive a Poisson query load
// through a locally-built controller against running kairosd daemons.
func runLoad() {
	var modelNames []string
	flag.Func("model", "served model (repeatable)", func(v string) error {
		modelNames = append(modelNames, v)
		return nil
	})
	addrList := flag.String("addrs", "", "comma-separated kairosd addresses")
	policy := flag.String("policy", kairos.DefaultPolicy,
		"distribution policy: one of "+strings.Join(kairos.Policies(), ", "))
	rate := flag.Float64("rate", 20, "Poisson arrival rate (queries/second, model time)")
	queries := flag.Int("queries", 200, "number of queries to send (spread across models)")
	timeScale := flag.Float64("timescale", 1.0, "must match the kairosd daemons")
	seed := flag.Int64("seed", 42, "random seed for the load")
	flag.Parse()

	if len(modelNames) == 0 {
		modelNames = []string{"RM2"}
	}
	addrs := strings.Split(*addrList, ",")
	if *addrList == "" || len(addrs) == 0 {
		log.Fatal("kairosctl: -addrs required")
	}

	engine, err := kairos.New(
		kairos.WithPool(kairos.DefaultPool()),
		kairos.WithModels(modelNames...),
		kairos.WithPolicy(*policy),
		kairos.WithSeed(*seed),
	)
	if err != nil {
		log.Fatal(err)
	}

	ctrl, err := engine.Connect(*timeScale, addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	fmt.Printf("kairosctl: policy %s serving %v, connected to %v\n",
		engine.Policy(), ctrl.Models(), ctrl.InstanceTypes())

	rng := rand.New(rand.NewSource(*seed))
	dist := kairos.DefaultTrace()
	recs := make(map[string]*kairos.LatencyRecorder, len(modelNames))
	for _, name := range modelNames {
		recs[name] = kairos.NewLatencyRecorder(*queries/len(modelNames) + 1)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup

	start := time.Now()
	for i := 0; i < *queries; i++ {
		gapModelMS := rng.ExpFloat64() * 1000 / *rate
		time.Sleep(time.Duration(gapModelMS * *timeScale * float64(time.Millisecond)))
		model := modelNames[i%len(modelNames)]
		batch := dist.Sample(rng)
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := ctrl.SubmitWait(model, batch)
			if res.Err != nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			recs[model].Record(res.LatencyMS)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// The controller's own accounting is the observability surface shared
	// with the autopilot — no ad-hoc counters.
	st := ctrl.Stats()
	fmt.Printf("sent %d queries in %.1fs wall time (%d completed, %d failed)\n",
		*queries, elapsed.Seconds(), st.Completed, st.Failed)
	for _, name := range modelNames {
		model, err := kairos.ModelByName(name)
		if err != nil {
			log.Fatal(err)
		}
		rec := recs[name]
		ms := st.Models[name]
		fmt.Printf("%s:\n", name)
		fmt.Printf("  latency (model ms): %s\n", rec.Summarize())
		fmt.Printf("  p99 %.1fms vs QoS %.0fms -> meets QoS: %v\n",
			rec.Percentile(99), model.QoS, rec.MeetsQoS(model.QoS, 99))
		fmt.Printf("  served by:\n")
		for _, in := range ms.Instances {
			fmt.Printf("    %-12s %s: %d completed, busy %.1f model-ms\n",
				in.TypeName, in.Addr, in.Completed, in.BusyMS)
		}
	}
}
