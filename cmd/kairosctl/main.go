// Command kairosctl runs the Kairos central controller against running
// kairosd instance servers and drives a Poisson query load through it,
// reporting the end-to-end tail latency (the real-process counterpart of
// the simulator experiments).
//
// Usage (after starting kairosd daemons):
//
//	kairosctl -model RM2 -addrs 127.0.0.1:7001,127.0.0.1:7002 -rate 20 -queries 200
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"
	"time"

	"kairos/internal/core"
	"kairos/internal/metrics"
	"kairos/internal/models"
	"kairos/internal/predictor"
	"kairos/internal/server"
	"kairos/internal/workload"
)

func main() {
	modelName := flag.String("model", "RM2", "served model")
	addrList := flag.String("addrs", "", "comma-separated kairosd addresses")
	rate := flag.Float64("rate", 20, "Poisson arrival rate (queries/second, model time)")
	queries := flag.Int("queries", 200, "number of queries to send")
	timeScale := flag.Float64("timescale", 1.0, "must match the kairosd daemons")
	seed := flag.Int64("seed", 42, "random seed for the load")
	flag.Parse()

	model, err := models.ByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	addrs := strings.Split(*addrList, ",")
	if *addrList == "" || len(addrs) == 0 {
		log.Fatal("kairosctl: -addrs required")
	}

	policy := core.NewDistributor(core.DistributorOptions{
		QoS:       model.QoS,
		BaseType:  "g4dn.xlarge",
		Predictor: predictor.Oracle{Latency: model.Latency},
	})
	ctrl, err := server.NewController(policy, *timeScale, model.Latency, addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	fmt.Printf("kairosctl: connected to %v\n", ctrl.InstanceTypes())

	rng := rand.New(rand.NewSource(*seed))
	dist := workload.DefaultTrace()
	rec := metrics.NewLatencyRecorder(*queries)
	served := map[string]int{}
	var mu sync.Mutex
	var wg sync.WaitGroup

	start := time.Now()
	for i := 0; i < *queries; i++ {
		gapModelMS := rng.ExpFloat64() * 1000 / *rate
		time.Sleep(time.Duration(gapModelMS * *timeScale * float64(time.Millisecond)))
		batch := dist.Sample(rng)
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := ctrl.SubmitWait(batch)
			mu.Lock()
			defer mu.Unlock()
			if res.Err != nil {
				served["error"]++
				return
			}
			rec.Record(res.LatencyMS)
			served[res.Instance]++
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("sent %d queries in %.1fs wall time\n", *queries, elapsed.Seconds())
	fmt.Printf("latency (model ms): %s\n", rec.Summarize())
	fmt.Printf("p99 %.1fms vs QoS %.0fms -> meets QoS: %v\n", rec.Percentile(99), model.QoS, rec.MeetsQoS(model.QoS, 99))
	fmt.Printf("served by: %v\n", served)
}
