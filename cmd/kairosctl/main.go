// Command kairosctl runs the Kairos central controller against running
// kairosd instance servers and drives a Poisson query load through it,
// reporting the end-to-end tail latency (the real-process counterpart of
// the simulator experiments). The distribution policy is selected by
// registry name.
//
// Usage (after starting kairosd daemons):
//
//	kairosctl -model RM2 -addrs 127.0.0.1:7001,127.0.0.1:7002 -rate 20 -queries 200
//	kairosctl -model RM2 -addrs 127.0.0.1:7001,127.0.0.1:7002 -policy clockwork
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"
	"time"

	"kairos"
)

func main() {
	modelName := flag.String("model", "RM2", "served model")
	addrList := flag.String("addrs", "", "comma-separated kairosd addresses")
	policy := flag.String("policy", kairos.DefaultPolicy,
		"distribution policy: one of "+strings.Join(kairos.Policies(), ", "))
	rate := flag.Float64("rate", 20, "Poisson arrival rate (queries/second, model time)")
	queries := flag.Int("queries", 200, "number of queries to send")
	timeScale := flag.Float64("timescale", 1.0, "must match the kairosd daemons")
	seed := flag.Int64("seed", 42, "random seed for the load")
	flag.Parse()

	addrs := strings.Split(*addrList, ",")
	if *addrList == "" || len(addrs) == 0 {
		log.Fatal("kairosctl: -addrs required")
	}

	engine, err := kairos.New(
		kairos.WithPool(kairos.DefaultPool()),
		kairos.WithModelName(*modelName),
		kairos.WithPolicy(*policy),
		kairos.WithSeed(*seed),
	)
	if err != nil {
		log.Fatal(err)
	}
	model := engine.Model()

	ctrl, err := engine.Connect(*timeScale, addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	fmt.Printf("kairosctl: policy %s connected to %v\n", engine.Policy(), ctrl.InstanceTypes())

	rng := rand.New(rand.NewSource(*seed))
	dist := kairos.DefaultTrace()
	rec := kairos.NewLatencyRecorder(*queries)
	var mu sync.Mutex
	var wg sync.WaitGroup

	start := time.Now()
	for i := 0; i < *queries; i++ {
		gapModelMS := rng.ExpFloat64() * 1000 / *rate
		time.Sleep(time.Duration(gapModelMS * *timeScale * float64(time.Millisecond)))
		batch := dist.Sample(rng)
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := ctrl.SubmitWait(batch)
			if res.Err != nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			rec.Record(res.LatencyMS)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// The controller's own accounting is the observability surface shared
	// with the autopilot — no ad-hoc counters.
	st := ctrl.Stats()
	fmt.Printf("sent %d queries in %.1fs wall time (%d completed, %d failed)\n",
		*queries, elapsed.Seconds(), st.Completed, st.Failed)
	fmt.Printf("latency (model ms): %s\n", rec.Summarize())
	fmt.Printf("p99 %.1fms vs QoS %.0fms -> meets QoS: %v\n", rec.Percentile(99), model.QoS, rec.MeetsQoS(model.QoS, 99))
	fmt.Printf("served by:\n")
	for _, in := range st.Instances {
		fmt.Printf("  %-12s %s: %d completed, busy %.1f model-ms\n",
			in.TypeName, in.Addr, in.Completed, in.BusyMS)
	}
}
