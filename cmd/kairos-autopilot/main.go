// Command kairos-autopilot runs the closed-loop control plane end to end:
// it plans an initial fleet for the served model set and shared budget,
// launches an in-process fleet of instance servers on loopback TCP,
// connects the central controller (one scheduler group per model), starts
// the monitor -> detect -> replan -> actuate loop plus the HTTP admin
// endpoint, and drives a query load whose batch-size mix optionally shifts
// mid-run — the Fig. 12 scenario as one self-managing process.
//
// Usage:
//
//	kairos-autopilot -model NCF -budget 0.8 -queries 2000 -rate 300 \
//	    -mix gaussian:45:15 -shift-mix gaussian:600:100 -shift 0.4 \
//	    -listen 127.0.0.1:9090
//
// The -model flag is repeatable: several models share the one budget, and
// the load is spread round-robin across them:
//
//	kairos-autopilot -model NCF -model MT-WND -budget 1.2 -queries 3000
//
// While it runs, the admin endpoint serves /healthz, /metrics, and /plan
// as JSON with per-model sections.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kairos"
)

// parseMix resolves a mix spec: "trace", "gaussian:MEAN:STD",
// "uniform:MIN:MAX", or "fixed:N".
func parseMix(spec string) (kairos.BatchDistribution, error) {
	parts := strings.Split(spec, ":")
	bad := func() error {
		return fmt.Errorf("bad mix %q (want trace, gaussian:M:S, uniform:LO:HI, or fixed:N)", spec)
	}
	num := func(s string) (float64, error) { return strconv.ParseFloat(s, 64) }
	switch parts[0] {
	case "trace":
		if len(parts) != 1 {
			return nil, bad()
		}
		return kairos.DefaultTrace(), nil
	case "gaussian":
		if len(parts) != 3 {
			return nil, bad()
		}
		mean, err1 := num(parts[1])
		std, err2 := num(parts[2])
		if err1 != nil || err2 != nil {
			return nil, bad()
		}
		return kairos.Gaussian(mean, std), nil
	case "uniform":
		if len(parts) != 3 {
			return nil, bad()
		}
		lo, err1 := strconv.Atoi(parts[1])
		hi, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			return nil, bad()
		}
		return kairos.Uniform(lo, hi), nil
	case "fixed":
		if len(parts) != 2 {
			return nil, bad()
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, bad()
		}
		return kairos.Uniform(n, n), nil
	}
	return nil, bad()
}

// printPlan renders the per-model fleet plan sections.
func printPlan(prefix string, plan kairos.PlanStatus) {
	names := make([]string, 0, len(plan.Models))
	for name := range plan.Models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mp := plan.Models[name]
		fmt.Printf("%s%-8s %v = %v ($%.2f/hr)\n", prefix, name, mp.Config, mp.Counts, mp.Cost)
	}
	fmt.Printf("%stotal $%.2f/hr after %d replan(s)\n", prefix, plan.Cost, plan.Replans)
}

func main() {
	var modelNames []string
	flag.Func("model", "served model (repeatable; models share the budget)", func(v string) error {
		modelNames = append(modelNames, v)
		return nil
	})
	budget := flag.Float64("budget", 0.8, "shared cost budget in $/hr")
	policy := flag.String("policy", kairos.DefaultPolicy,
		"distribution policy: one of "+strings.Join(kairos.Policies(), ", "))
	timeScale := flag.Float64("timescale", 1.0, "real seconds per model second")
	listen := flag.String("listen", "127.0.0.1:0", "admin endpoint address")
	interval := flag.Duration("interval", 250*time.Millisecond, "control-loop period")
	cooldown := flag.Duration("cooldown", 0, "minimum gap between replans (0 = 2x interval)")
	drift := flag.Float64("drift", 0, "total-variation drift trigger (0 = default 0.15)")
	window := flag.Int("window", 2000, "live monitoring window per model (queries)")
	minObs := flag.Int("min-obs", 0, "observations before a model's triggers arm (0 = window/10)")
	scaleInFloor := flag.Float64("scale-in", 0, "utilization floor arming the scale-in trigger (0 = disabled)")
	scaleInTicks := flag.Int("scale-in-ticks", 0, "consecutive under-utilized ticks firing scale-in (0 = default 5)")
	queries := flag.Int("queries", 2000, "number of queries to send (spread across models)")
	rate := flag.Float64("rate", 300, "Poisson arrival rate (queries/second, model time)")
	mixSpec := flag.String("mix", "gaussian:45:15", "phase-1 batch mix (trace | gaussian:M:S | uniform:LO:HI | fixed:N)")
	shiftSpec := flag.String("shift-mix", "gaussian:600:100", "phase-2 batch mix (applies to the last -model)")
	shiftAt := flag.Float64("shift", 0.4, "fraction of queries after which the mix shifts (1 = never)")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	if len(modelNames) == 0 {
		modelNames = []string{"NCF"}
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		log.Fatalf("kairos-autopilot: %v", err)
	}
	shiftMix, err := parseMix(*shiftSpec)
	if err != nil {
		log.Fatalf("kairos-autopilot: %v", err)
	}

	rng := rand.New(rand.NewSource(*seed))
	reference := make([]int, 4000)
	for i := range reference {
		reference[i] = mix.Sample(rng)
	}
	engine, err := kairos.New(
		kairos.WithPool(kairos.DefaultPool()),
		kairos.WithModels(modelNames...),
		kairos.WithBudget(*budget),
		kairos.WithPolicy(*policy),
		kairos.WithBatchSamples(reference),
		kairos.WithSeed(*seed),
	)
	if err != nil {
		log.Fatal(err)
	}
	ap, err := engine.Autopilot(*timeScale, kairos.AutopilotOptions{
		Interval:        *interval,
		Cooldown:        *cooldown,
		DriftThreshold:  *drift,
		Window:          *window,
		MinObservations: *minObs,
		ScaleInFloor:    *scaleInFloor,
		ScaleInTicks:    *scaleInTicks,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ap.Close()
	adminAddr, err := ap.StartAdmin(*listen)
	if err != nil {
		log.Fatal(err)
	}
	ap.Start()
	ctrl := ap.Controller()
	fmt.Printf("kairos-autopilot: %v under policy %s, shared budget $%.2f/hr\n",
		[]string(modelNames), engine.Policy(), *budget)
	printPlan("kairos-autopilot:   ", ap.Status().Plan)
	fmt.Printf("kairos-autopilot: admin on http://%s (/healthz /metrics /plan)\n", adminAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	// The shift applies to the last model's mix; with one model that is
	// the classic Fig. 12 load change.
	shiftModel := modelNames[len(modelNames)-1]
	shiftAfter := int(float64(*queries) * *shiftAt)
	rec := kairos.NewLatencyRecorder(*queries)
	results := make([]<-chan kairos.QueryResult, 0, *queries)
	shifted := false
loadLoop:
	for i := 0; i < *queries; i++ {
		if i >= shiftAfter && *shiftAt < 1 && !shifted {
			shifted = true
			fmt.Printf("kairos-autopilot: --- %s's mix shifts after %d queries ---\n", shiftModel, i)
		}
		gapModelMS := rng.ExpFloat64() * 1000 / *rate
		select {
		case <-sig:
			fmt.Println("kairos-autopilot: interrupted; draining")
			break loadLoop
		case <-time.After(time.Duration(gapModelMS * *timeScale * float64(time.Millisecond))):
		}
		model := modelNames[i%len(modelNames)]
		active := mix
		if shifted && model == shiftModel {
			active = shiftMix
		}
		results = append(results, ctrl.Submit(model, active.Sample(rng)))
	}
	failed := 0
	for _, ch := range results {
		res := <-ch
		if res.Err != nil {
			failed++
			continue
		}
		rec.Record(res.LatencyMS)
	}

	st := ctrl.Stats()
	status := ap.Status()
	fmt.Printf("\nlatency (model ms): %s\n", rec.Summarize())
	fmt.Printf("queries: %d submitted, %d completed, %d failed\n", st.Submitted, st.Completed, st.Failed)
	for _, name := range ctrl.Models() {
		ms := st.Models[name]
		fmt.Printf("  %-8s %d completed, served by: ", name, ms.Completed)
		for _, in := range ms.Instances {
			fmt.Printf("%s@%s=%d ", in.TypeName, in.Addr, in.Completed)
		}
		fmt.Println()
	}
	fmt.Println("plan:")
	printPlan("  ", status.Plan)
	if status.Plan.LastReason != "" {
		fmt.Printf("last decision: %s\n", status.Plan.LastReason)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
