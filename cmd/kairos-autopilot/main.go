// Command kairos-autopilot runs the closed-loop control plane end to end:
// it plans an initial fleet for the served model set and shared budget,
// launches the fleet through an actuation provider (in-process instance
// servers by default, or real kairosd processes with -provider exec),
// connects the central controller (one scheduler group per model), starts
// the monitor -> detect -> replan -> actuate loop plus the HTTP admin
// endpoint, and either drives a query load whose batch-size mix
// optionally shifts mid-run (the Fig. 12 scenario as one self-managing
// process) or — with -queries 0 — serves only external traffic arriving
// through the ingress front-end until interrupted.
//
// Usage:
//
//	kairos-autopilot -model NCF -budget 0.8 -queries 2000 -rate 300 \
//	    -mix gaussian:45:15 -shift-mix gaussian:600:100 -shift 0.4 \
//	    -listen 127.0.0.1:9090
//
// The -model flag is repeatable: several models share the one budget, and
// the load is spread round-robin across them:
//
//	kairos-autopilot -model NCF -model MT-WND -budget 1.2 -queries 3000
//
// A self-managing fleet of real processes serving external traffic:
//
//	kairos-autopilot -model NCF -model MT-WND -budget 1.2 \
//	    -provider exec -kairosd ./kairosd \
//	    -ingress 127.0.0.1:8080 -ingress-tcp 127.0.0.1:8081 -queries 0
//
// While it runs, the admin endpoint serves /metrics (Prometheus text
// exposition), /statusz and /plan (JSON with per-model sections,
// including per-model ingress counters when a front-end is open),
// /tracez (flight-recorder traces), /decisionz (the autopilot's
// decision journal), and /healthz.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kairos"
)

// findKairosd resolves the kairosd binary for -provider exec: the -kairosd
// flag, a kairosd next to this executable, or PATH.
func findKairosd(flagValue string) (string, error) {
	if flagValue != "" {
		return flagValue, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "kairosd")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if path, err := exec.LookPath("kairosd"); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("no kairosd binary found: pass -kairosd, place it next to kairos-autopilot, or add it to PATH")
}

// parseMix resolves a mix spec: "trace", "gaussian:MEAN:STD",
// "uniform:MIN:MAX", or "fixed:N".
func parseMix(spec string) (kairos.BatchDistribution, error) {
	parts := strings.Split(spec, ":")
	bad := func() error {
		return fmt.Errorf("bad mix %q (want trace, gaussian:M:S, uniform:LO:HI, or fixed:N)", spec)
	}
	num := func(s string) (float64, error) { return strconv.ParseFloat(s, 64) }
	switch parts[0] {
	case "trace":
		if len(parts) != 1 {
			return nil, bad()
		}
		return kairos.DefaultTrace(), nil
	case "gaussian":
		if len(parts) != 3 {
			return nil, bad()
		}
		mean, err1 := num(parts[1])
		std, err2 := num(parts[2])
		if err1 != nil || err2 != nil {
			return nil, bad()
		}
		return kairos.Gaussian(mean, std), nil
	case "uniform":
		if len(parts) != 3 {
			return nil, bad()
		}
		lo, err1 := strconv.Atoi(parts[1])
		hi, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			return nil, bad()
		}
		return kairos.Uniform(lo, hi), nil
	case "fixed":
		if len(parts) != 2 {
			return nil, bad()
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, bad()
		}
		return kairos.Uniform(n, n), nil
	}
	return nil, bad()
}

// printPlan renders the per-model fleet plan sections.
func printPlan(prefix string, plan kairos.PlanStatus) {
	names := make([]string, 0, len(plan.Models))
	for name := range plan.Models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mp := plan.Models[name]
		fmt.Printf("%s%-8s %v = %v ($%.2f/hr)\n", prefix, name, mp.Config, mp.Counts, mp.Cost)
	}
	fmt.Printf("%stotal $%.2f/hr after %d replan(s)\n", prefix, plan.Cost, plan.Replans)
}

func main() {
	var modelNames []string
	flag.Func("model", "served model (repeatable; models share the budget)", func(v string) error {
		modelNames = append(modelNames, v)
		return nil
	})
	budget := flag.Float64("budget", 0.8, "shared cost budget in $/hr")
	policy := flag.String("policy", kairos.DefaultPolicy,
		"distribution policy: one of "+strings.Join(kairos.Policies(), ", "))
	timeScale := flag.Float64("timescale", 1.0, "real seconds per model second")
	listen := flag.String("listen", "127.0.0.1:0", "admin endpoint address")
	interval := flag.Duration("interval", 250*time.Millisecond, "control-loop period")
	cooldown := flag.Duration("cooldown", 0, "minimum gap between replans (0 = 2x interval)")
	drift := flag.Float64("drift", 0, "total-variation drift trigger (0 = default 0.15)")
	window := flag.Int("window", 2000, "live monitoring window per model (queries)")
	minObs := flag.Int("min-obs", 0, "observations before a model's triggers arm (0 = window/10)")
	scaleInFloor := flag.Float64("scale-in", 0, "utilization floor arming the scale-in trigger (0 = disabled)")
	scaleInTicks := flag.Int("scale-in-ticks", 0, "consecutive under-utilized ticks firing scale-in (0 = default 5)")
	demandHeadroom := flag.Float64("demand-headroom", 0, "cap replanned capacity at observed arrivals x (1+headroom), leaving surplus budget unspent (0 = default 0.25, negative = disabled)")
	spotDiscount := flag.Float64("spot-discount", 0, "add a spot-market tier: every type gains a spot variant at (1-discount) x price that can be revoked on notice (0 = on-demand only)")
	spotRisk := flag.Float64("spot-risk", 0.05, "revocation-risk knob recorded on spot types (informational; used with -spot-discount)")
	onDemandFloor := flag.Float64("on-demand-floor", 0, "fraction of each model's observed arrivals that must survive on on-demand capacity alone if every spot instance is revoked at once (0 = no floor)")
	provider := flag.String("provider", "inprocess", "actuation provider: inprocess (loopback servers) or exec (real kairosd processes)")
	kairosdBin := flag.String("kairosd", "", "kairosd binary for -provider exec (default: next to this binary, then PATH)")
	ingressHTTP := flag.String("ingress", "", "HTTP ingress address for external queries (e.g. 127.0.0.1:8080; empty = disabled)")
	ingressTCP := flag.String("ingress-tcp", "", "binary-TCP ingress address for external queries (empty = disabled)")
	ingressQueue := flag.Int("ingress-queue", 0, "per-model bound on admitted-but-unfinished ingress queries (0 = default 1024)")
	ingressShards := flag.Int("ingress-shards", 0, "independent ingress front-door shards: accept loops + admission state (0 = 1)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client ingress rate limit in queries/second (0 = unlimited)")
	rateBurst := flag.Int("rate-burst", 0, "ingress rate-limit burst depth (0 = max(1, -rate-limit))")
	var authTokens []string
	flag.Func("auth-token", "static ingress bearer token (repeatable; any set makes auth mandatory)", func(v string) error {
		authTokens = append(authTokens, v)
		return nil
	})
	queries := flag.Int("queries", 2000, "number of queries to send (spread across models); 0 = generate no load, serve ingress traffic until interrupted")
	rate := flag.Float64("rate", 300, "Poisson arrival rate (queries/second, model time)")
	mixSpec := flag.String("mix", "gaussian:45:15", "phase-1 batch mix (trace | gaussian:M:S | uniform:LO:HI | fixed:N)")
	shiftSpec := flag.String("shift-mix", "gaussian:600:100", "phase-2 batch mix (applies to the last -model)")
	shiftAt := flag.Float64("shift", 0.4, "fraction of queries after which the mix shifts (1 = never)")
	seed := flag.Int64("seed", 42, "random seed")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			log.Printf("kairos-autopilot: pprof on http://%s/debug/pprof/", *pprofAddr)
			log.Println(http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	if len(modelNames) == 0 {
		modelNames = []string{"NCF"}
	}
	// Flag validation must finish before any fleet is launched: a
	// log.Fatal below engine.Autopilot would bypass ap.Close and orphan
	// real kairosd processes under -provider exec.
	if *queries == 0 && *ingressHTTP == "" && *ingressTCP == "" {
		log.Fatal("kairos-autopilot: -queries 0 needs an ingress (-ingress and/or -ingress-tcp)")
	}
	if *ingressHTTP == "" && *ingressTCP == "" &&
		(*ingressShards != 0 || *rateLimit != 0 || *rateBurst != 0 || len(authTokens) > 0) {
		log.Fatal("kairos-autopilot: ingress flags (-ingress-shards/-rate-limit/-rate-burst/-auth-token) need an ingress (-ingress and/or -ingress-tcp)")
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		log.Fatalf("kairos-autopilot: %v", err)
	}
	shiftMix, err := parseMix(*shiftSpec)
	if err != nil {
		log.Fatalf("kairos-autopilot: %v", err)
	}

	pool := kairos.DefaultPool()
	if *spotDiscount > 0 {
		if *spotDiscount >= 1 {
			log.Fatalf("kairos-autopilot: -spot-discount %v outside (0,1)", *spotDiscount)
		}
		pool = pool.WithSpotMarket(*spotDiscount, *spotRisk)
	} else if *onDemandFloor > 0 {
		log.Fatal("kairos-autopilot: -on-demand-floor needs a spot market (-spot-discount)")
	}

	rng := rand.New(rand.NewSource(*seed))
	reference := make([]int, 4000)
	for i := range reference {
		reference[i] = mix.Sample(rng)
	}
	engine, err := kairos.New(
		kairos.WithPool(pool),
		kairos.WithModels(modelNames...),
		kairos.WithBudget(*budget),
		kairos.WithPolicy(*policy),
		kairos.WithBatchSamples(reference),
		kairos.WithSeed(*seed),
	)
	if err != nil {
		log.Fatal(err)
	}
	var extra []kairos.AutopilotOption
	switch *provider {
	case "inprocess":
	case "exec":
		bin, err := findKairosd(*kairosdBin)
		if err != nil {
			log.Fatalf("kairos-autopilot: %v", err)
		}
		ef := kairos.NewExecFleet(bin, *timeScale, modelNames...)
		ef.Logf = log.Printf
		extra = append(extra, kairos.WithProvider(ef))
	default:
		log.Fatalf("kairos-autopilot: unknown provider %q (want inprocess or exec)", *provider)
	}
	if *ingressHTTP != "" || *ingressTCP != "" {
		extra = append(extra, kairos.WithIngress(*ingressHTTP, *ingressTCP))
		if *ingressQueue != 0 {
			// Non-zero values flow into the validating option, so a
			// negative bound errors instead of silently running with the
			// default.
			extra = append(extra, kairos.WithIngressQueue(*ingressQueue))
		}
		if *ingressShards != 0 {
			extra = append(extra, kairos.WithIngressShards(*ingressShards))
		}
		if *rateLimit != 0 {
			extra = append(extra, kairos.WithIngressRateLimit(*rateLimit, *rateBurst))
		}
		if len(authTokens) > 0 {
			extra = append(extra, kairos.WithIngressAuth(authTokens...))
		}
	}
	ap, err := engine.Autopilot(*timeScale, kairos.AutopilotOptions{
		Interval:        *interval,
		Cooldown:        *cooldown,
		DriftThreshold:  *drift,
		Window:          *window,
		MinObservations: *minObs,
		ScaleInFloor:    *scaleInFloor,
		ScaleInTicks:    *scaleInTicks,
		DemandHeadroom:  *demandHeadroom,
		OnDemandFloor:   *onDemandFloor,
		Logf:            log.Printf,
	}, extra...)
	if err != nil {
		log.Fatal(err)
	}
	defer ap.Close()
	adminAddr, err := ap.StartAdmin(*listen)
	if err != nil {
		// Not log.Fatal: os.Exit would skip the deferred Close and leave
		// exec-provider kairosd processes running.
		ap.Close()
		log.Fatal(err)
	}
	ap.Start()
	ctrl := ap.Controller()
	fmt.Printf("kairos-autopilot: %v under policy %s, shared budget $%.2f/hr (%s provider)\n",
		[]string(modelNames), engine.Policy(), *budget, *provider)
	printPlan("kairos-autopilot:   ", ap.Status().Plan)
	fmt.Printf("kairos-autopilot: admin on http://%s (/healthz /metrics /statusz /plan /tracez /decisionz)\n", adminAddr)
	if ing := ap.Ingress(); ing != nil {
		if a := ing.HTTPAddr(); a != "" {
			fmt.Printf("kairos-autopilot: HTTP ingress on http://%s (POST /submit, GET /stats)\n", a)
		}
		if a := ing.TCPAddr(); a != "" {
			fmt.Printf("kairos-autopilot: binary-TCP ingress on %s\n", a)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *queries == 0 {
		// External serving mode: the control plane manages the fleet while
		// all traffic arrives through the ingress endpoints (validated
		// above, before the fleet was launched).
		fmt.Println("kairos-autopilot: serving external traffic; interrupt to stop")
		<-sig
		fmt.Println("kairos-autopilot: interrupted")
		st := ctrl.Stats()
		fmt.Printf("queries: %d submitted, %d completed, %d failed\n", st.Submitted, st.Completed, st.Failed)
		for _, name := range ctrl.Models() {
			if is, ok := st.Ingress[name]; ok {
				fmt.Printf("  %-8s ingress: %d submitted (%d http, %d tcp), %d rejected, %d completed, %d failed\n",
					name, is.Submitted, is.HTTP, is.TCP, is.Rejected, is.Completed, is.Failed)
			}
		}
		printPlan("  ", ap.Status().Plan)
		return
	}

	// The shift applies to the last model's mix; with one model that is
	// the classic Fig. 12 load change.
	shiftModel := modelNames[len(modelNames)-1]
	shiftAfter := int(float64(*queries) * *shiftAt)
	rec := kairos.NewLatencyRecorder(*queries)
	results := make([]<-chan kairos.QueryResult, 0, *queries)
	shifted := false
loadLoop:
	for i := 0; i < *queries; i++ {
		if i >= shiftAfter && *shiftAt < 1 && !shifted {
			shifted = true
			fmt.Printf("kairos-autopilot: --- %s's mix shifts after %d queries ---\n", shiftModel, i)
		}
		gapModelMS := rng.ExpFloat64() * 1000 / *rate
		select {
		case <-sig:
			fmt.Println("kairos-autopilot: interrupted; draining")
			break loadLoop
		case <-time.After(time.Duration(gapModelMS * *timeScale * float64(time.Millisecond))):
		}
		model := modelNames[i%len(modelNames)]
		active := mix
		if shifted && model == shiftModel {
			active = shiftMix
		}
		results = append(results, ctrl.Submit(model, active.Sample(rng)))
	}
	failed := 0
	for _, ch := range results {
		res := <-ch
		if res.Err != nil {
			failed++
			continue
		}
		rec.Record(res.LatencyMS)
	}

	st := ctrl.Stats()
	status := ap.Status()
	fmt.Printf("\nlatency (model ms): %s\n", rec.Summarize())
	fmt.Printf("queries: %d submitted, %d completed, %d failed\n", st.Submitted, st.Completed, st.Failed)
	for _, name := range ctrl.Models() {
		ms := st.Models[name]
		fmt.Printf("  %-8s %d completed, served by: ", name, ms.Completed)
		for _, in := range ms.Instances {
			fmt.Printf("%s@%s=%d ", in.TypeName, in.Addr, in.Completed)
		}
		fmt.Println()
	}
	fmt.Println("plan:")
	printPlan("  ", status.Plan)
	if status.Plan.LastReason != "" {
		fmt.Printf("last decision: %s\n", status.Plan.LastReason)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
