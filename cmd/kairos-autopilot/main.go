// Command kairos-autopilot runs the closed-loop control plane end to end:
// it plans an initial configuration for the model and budget, launches an
// in-process fleet of instance servers on loopback TCP, connects the
// central controller, starts the monitor -> detect -> replan -> actuate
// loop plus the HTTP admin endpoint, and drives a query load whose
// batch-size mix optionally shifts mid-run — the Fig. 12 scenario as one
// self-managing process.
//
// Usage:
//
//	kairos-autopilot -model NCF -budget 0.8 -queries 2000 -rate 300 \
//	    -mix gaussian:45:15 -shift-mix gaussian:600:100 -shift 0.4 \
//	    -listen 127.0.0.1:9090
//
// While it runs, the admin endpoint serves /healthz, /metrics, and /plan
// as JSON.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kairos"
)

// parseMix resolves a mix spec: "trace", "gaussian:MEAN:STD",
// "uniform:MIN:MAX", or "fixed:N".
func parseMix(spec string) (kairos.BatchDistribution, error) {
	parts := strings.Split(spec, ":")
	bad := func() error {
		return fmt.Errorf("bad mix %q (want trace, gaussian:M:S, uniform:LO:HI, or fixed:N)", spec)
	}
	num := func(s string) (float64, error) { return strconv.ParseFloat(s, 64) }
	switch parts[0] {
	case "trace":
		if len(parts) != 1 {
			return nil, bad()
		}
		return kairos.DefaultTrace(), nil
	case "gaussian":
		if len(parts) != 3 {
			return nil, bad()
		}
		mean, err1 := num(parts[1])
		std, err2 := num(parts[2])
		if err1 != nil || err2 != nil {
			return nil, bad()
		}
		return kairos.Gaussian(mean, std), nil
	case "uniform":
		if len(parts) != 3 {
			return nil, bad()
		}
		lo, err1 := strconv.Atoi(parts[1])
		hi, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			return nil, bad()
		}
		return kairos.Uniform(lo, hi), nil
	case "fixed":
		if len(parts) != 2 {
			return nil, bad()
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, bad()
		}
		return kairos.Uniform(n, n), nil
	}
	return nil, bad()
}

func main() {
	modelName := flag.String("model", "NCF", "served model")
	budget := flag.Float64("budget", 0.8, "cost budget in $/hr")
	policy := flag.String("policy", kairos.DefaultPolicy,
		"distribution policy: one of "+strings.Join(kairos.Policies(), ", "))
	timeScale := flag.Float64("timescale", 1.0, "real seconds per model second")
	listen := flag.String("listen", "127.0.0.1:0", "admin endpoint address")
	interval := flag.Duration("interval", 250*time.Millisecond, "control-loop period")
	cooldown := flag.Duration("cooldown", 0, "minimum gap between replans (0 = 2x interval)")
	drift := flag.Float64("drift", 0, "total-variation drift trigger (0 = default 0.15)")
	window := flag.Int("window", 2000, "live monitoring window (queries)")
	minObs := flag.Int("min-obs", 0, "observations before triggers arm (0 = window/10)")
	queries := flag.Int("queries", 2000, "number of queries to send")
	rate := flag.Float64("rate", 300, "Poisson arrival rate (queries/second, model time)")
	mixSpec := flag.String("mix", "gaussian:45:15", "phase-1 batch mix (trace | gaussian:M:S | uniform:LO:HI | fixed:N)")
	shiftSpec := flag.String("shift-mix", "gaussian:600:100", "phase-2 batch mix")
	shiftAt := flag.Float64("shift", 0.4, "fraction of queries after which the mix shifts (1 = never)")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	mix, err := parseMix(*mixSpec)
	if err != nil {
		log.Fatalf("kairos-autopilot: %v", err)
	}
	shiftMix, err := parseMix(*shiftSpec)
	if err != nil {
		log.Fatalf("kairos-autopilot: %v", err)
	}

	rng := rand.New(rand.NewSource(*seed))
	reference := make([]int, 4000)
	for i := range reference {
		reference[i] = mix.Sample(rng)
	}
	engine, err := kairos.New(
		kairos.WithPool(kairos.DefaultPool()),
		kairos.WithModelName(*modelName),
		kairos.WithBudget(*budget),
		kairos.WithPolicy(*policy),
		kairos.WithBatchSamples(reference),
		kairos.WithSeed(*seed),
	)
	if err != nil {
		log.Fatal(err)
	}
	ap, err := engine.Autopilot(*timeScale, kairos.AutopilotOptions{
		Interval:        *interval,
		Cooldown:        *cooldown,
		DriftThreshold:  *drift,
		Window:          *window,
		MinObservations: *minObs,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ap.Close()
	adminAddr, err := ap.StartAdmin(*listen)
	if err != nil {
		log.Fatal(err)
	}
	ap.Start()
	ctrl := ap.Controller()
	fmt.Printf("kairos-autopilot: %s under policy %s, plan %v, fleet %v\n",
		*modelName, engine.Policy(), ap.Current(), ctrl.InstanceCounts())
	fmt.Printf("kairos-autopilot: admin on http://%s (/healthz /metrics /plan)\n", adminAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	shiftAfter := int(float64(*queries) * *shiftAt)
	rec := kairos.NewLatencyRecorder(*queries)
	results := make([]<-chan kairos.QueryResult, 0, *queries)
	active := mix
loadLoop:
	for i := 0; i < *queries; i++ {
		if i == shiftAfter && *shiftAt < 1 {
			active = shiftMix
			fmt.Printf("kairos-autopilot: --- mix shifts after %d queries ---\n", i)
		}
		gapModelMS := rng.ExpFloat64() * 1000 / *rate
		select {
		case <-sig:
			fmt.Println("kairos-autopilot: interrupted; draining")
			break loadLoop
		case <-time.After(time.Duration(gapModelMS * *timeScale * float64(time.Millisecond))):
		}
		results = append(results, ctrl.Submit(active.Sample(rng)))
	}
	failed := 0
	for _, ch := range results {
		res := <-ch
		if res.Err != nil {
			failed++
			continue
		}
		rec.Record(res.LatencyMS)
	}

	st := ctrl.Stats()
	status := ap.Status()
	fmt.Printf("\nlatency (model ms): %s\n", rec.Summarize())
	fmt.Printf("queries: %d submitted, %d completed, %d failed\n", st.Submitted, st.Completed, st.Failed)
	fmt.Printf("served by: ")
	for _, in := range st.Instances {
		fmt.Printf("%s@%s=%d ", in.TypeName, in.Addr, in.Completed)
	}
	fmt.Println()
	fmt.Printf("plan: %v = %v ($%.2f/hr) after %d replan(s)\n",
		status.Plan.Config, status.Plan.Counts, status.Plan.Cost, status.Plan.Replans)
	if status.Plan.LastReason != "" {
		fmt.Printf("last decision: %s\n", status.Plan.LastReason)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
