// Command kairosd runs one emulated inference instance server: it binds a
// TCP port, announces its instance type and model, and serves one batched
// query at a time with the calibrated latency (Sec. 6's instance-side
// inference server).
//
// The ready line ("kairosd: TYPE serving MODEL on ADDR (timescale X)") is
// a contract with the autopilot's exec actuation provider, which parses
// it to learn the bound address of a `-addr 127.0.0.1:0` daemon. On
// SIGTERM/SIGINT the daemon drains: it stops accepting connections,
// serves every fully-received in-flight query, flushes the replies, and
// only then exits — so a control plane stopping a kairosd never drops
// queries.
//
// Usage:
//
//	kairosd -addr 127.0.0.1:7001 -type g4dn.xlarge -model RM2
//	kairosd -addr 127.0.0.1:7002 -type r5n.large  -model RM2 -timescale 0.1
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kairos"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7001", "listen address (127.0.0.1:0 for an ephemeral port)")
	typeName := flag.String("type", "g4dn.xlarge", "instance type to emulate")
	modelName := flag.String("model", "RM2", "served model (see kairos-bench -run table3)")
	timeScale := flag.Float64("timescale", 1.0, "real seconds per simulated second (0.1 = 10x faster)")
	drain := flag.Duration("drain", 10*time.Second, "max time to drain in-flight queries on SIGTERM")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			log.Printf("kairosd: pprof on http://%s/debug/pprof/", *pprofAddr)
			log.Println(http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	model, err := kairos.ModelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	s, err := kairos.NewInstanceServer(*typeName, model, *timeScale)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Start(*addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kairosd: %s serving %s on %s (timescale %.2f)\n", *typeName, model.Name, s.Addr(), *timeScale)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("kairosd: draining")
	if err := s.Shutdown(*drain); err != nil {
		log.Fatal(err)
	}
	fmt.Println("kairosd: shut down")
}
