// Command kairos-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	kairos-bench -run all            # every experiment at quick scale
//	kairos-bench -run fig8 -scale full
//	kairos-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kairos/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id (e.g. fig8) or 'all'")
	scaleName := flag.String("scale", "quick", "fidelity: quick or full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	seed := flag.Int64("seed", 0, "override the random seed (0 keeps the default)")
	budget := flag.Float64("budget", 0, "override the cost budget in $/hr (0 keeps the default)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "full":
		scale = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scaleName)
		os.Exit(2)
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	if *budget != 0 {
		scale.Budget = *budget
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		out, err := experiments.Run(id, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%s scale, %.1fs) ===\n%s\n", id, *scaleName, time.Since(start).Seconds(), out)
	}
}
