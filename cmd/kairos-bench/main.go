// Command kairos-bench regenerates the paper's tables and figures and
// measures ad-hoc policy/configuration pairs through the engine.
//
// Usage:
//
//	kairos-bench -run all                  # every experiment at quick scale
//	kairos-bench -run fig8 -scale full
//	kairos-bench -run measure -policy ribbon -model RM2 -budget 2.5
//	kairos-bench -list
//	kairos-bench -list-policies
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kairos"
)

func main() {
	run := flag.String("run", "all", "experiment id (e.g. fig8), 'all', or 'measure'")
	scaleName := flag.String("scale", "quick", "fidelity: quick or full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	listPolicies := flag.Bool("list-policies", false, "list registered policy names and exit")
	policy := flag.String("policy", kairos.DefaultPolicy,
		"distribution policy for -run measure: one of "+strings.Join(kairos.Policies(), ", "))
	modelName := flag.String("model", "RM2", "served model for -run measure")
	seed := flag.Int64("seed", 0, "override the random seed (0 keeps the default)")
	budget := flag.Float64("budget", 0, "override the cost budget in $/hr (0 keeps the default)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(kairos.ExperimentIDs(), "\n"))
		return
	}
	if *listPolicies {
		fmt.Println(strings.Join(kairos.Policies(), "\n"))
		return
	}

	var scale kairos.ExperimentScale
	switch *scaleName {
	case "quick":
		scale = kairos.QuickScale()
	case "full":
		scale = kairos.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scaleName)
		os.Exit(2)
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	if *budget != 0 {
		scale.Budget = *budget
	}

	if *run == "measure" {
		if err := measure(*policy, *modelName, scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	// The experiment runners fix their own policies and models; reject the
	// measure-only flags rather than silently ignoring them.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "policy" || f.Name == "model" {
			fmt.Fprintf(os.Stderr, "-%s only applies to -run measure\n", f.Name)
			os.Exit(2)
		}
	})

	ids := []string{*run}
	if *run == "all" {
		ids = kairos.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		out, err := kairos.RunExperiment(id, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%s scale, %.1fs) ===\n%s\n", id, *scaleName, time.Since(start).Seconds(), out)
	}
}

// measure plans a configuration for the budget and reports the policy's
// allowable throughput on it — the engine lifecycle end to end, with the
// policy resolved by name through the registry.
func measure(policy, modelName string, scale kairos.ExperimentScale) error {
	engine, err := kairos.New(
		kairos.WithPool(kairos.DefaultPool()),
		kairos.WithModelName(modelName),
		kairos.WithBudget(scale.Budget),
		kairos.WithPolicy(policy),
		kairos.WithSeed(scale.Seed),
		kairos.WithProbeQueries(scale.ProbeQueries),
		kairos.WithPrecisionFrac(scale.PrecisionFrac),
	)
	if err != nil {
		return err
	}
	cfg, err := engine.Plan()
	if err != nil {
		return err
	}
	ub, err := engine.UpperBound(cfg)
	if err != nil {
		return err
	}
	start := time.Now()
	qps, err := engine.AllowableThroughput(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("model %s, budget $%.2f/hr -> plan %v (cost $%.3f/hr, UB %.1f QPS)\n",
		engine.Model().Name, engine.Budget(), cfg, engine.Pool().Cost(cfg), ub)
	fmt.Printf("policy %-18s allowable throughput %.1f QPS (%.1fs)\n",
		engine.Policy(), qps, time.Since(start).Seconds())
	return nil
}
