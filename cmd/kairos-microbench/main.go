// Command kairos-microbench runs the repository's perf-critical
// microbenchmarks — the assignment solvers (the matching distributor's
// inner loop), the matching-distributor Assign hot path (the controller's
// per-round scheduling cost), the shared-budget fleet allocator, the
// live serving path (wire-frame encode/decode and loopback
// Submit→complete throughput through the sharded controller), the
// flight-recorder hot paths (histogram record and trace stamping), and
// the ingress hot path (external Submit→complete over HTTP and binary
// TCP) —
// via testing.Benchmark and writes the results as machine-readable JSON,
// so CI can track the performance trajectory commit over commit.
//
// Usage:
//
//	kairos-microbench -out BENCH_micro.json [-benchtime 0.5s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"kairos"
	"kairos/internal/assignment"
	"kairos/internal/ingress"
	"kairos/internal/obs"
	"kairos/internal/server"
)

// result is one benchmark's digest.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// report is the BENCH_micro.json document.
type report struct {
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	CPUs      int       `json:"cpus"`
	When      time.Time `json:"when"`
	Results   []result  `json:"results"`
}

// randomMatrix builds a reproducible dense cost matrix.
func randomMatrix(r, c int, seed int64) assignment.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := assignment.NewMatrix(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.Float64()*100)
		}
	}
	return m
}

// solverBench benchmarks one assignment solver on an n x n matrix.
func solverBench(solve func(assignment.Matrix) ([]int, []int, float64, error), n int) func(*testing.B) {
	return func(b *testing.B) {
		m := randomMatrix(n, n, 42)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := solve(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// assignBench benchmarks the engine policy's Assign round: q waiting
// queries of the trace mix against n heterogeneous instances.
func assignBench(q, n int) func(*testing.B) {
	return func(b *testing.B) {
		engine, err := kairos.New(
			kairos.WithPool(kairos.DefaultPool()),
			kairos.WithModelName("RM2"),
			kairos.WithPolicy("kairos+warm"),
		)
		if err != nil {
			b.Fatal(err)
		}
		d, err := engine.Serve()
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		mix := kairos.DefaultTrace()
		pool := engine.Pool()
		queries := make([]kairos.QueryView, q)
		for i := range queries {
			queries[i] = kairos.QueryView{Index: i, ID: i, Batch: mix.Sample(rng), WaitMS: rng.Float64() * 5}
		}
		instances := make([]kairos.InstanceView, n)
		for i := range instances {
			instances[i] = kairos.InstanceView{Index: i, TypeName: pool[i%len(pool)].Name}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Assign(float64(i), queries, instances)
		}
	}
}

// planFleetBench benchmarks the shared-budget allocator for two models.
func planFleetBench() func(*testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(42))
		mix := kairos.DefaultTrace()
		samples := make([]int, 2000)
		for i := range samples {
			samples[i] = mix.Sample(rng)
		}
		rm2, err := kairos.ModelByName("RM2")
		if err != nil {
			b.Fatal(err)
		}
		ncf, err := kairos.ModelByName("NCF")
		if err != nil {
			b.Fatal(err)
		}
		demands := []kairos.ModelDemand{
			{Model: rm2, Samples: samples},
			{Model: ncf, Samples: samples},
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := kairos.PlanFleetFor(kairos.DefaultPool(), demands, 2.5); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchFleetDemands builds n catalog-model twins with 2000-sample trace
// windows each — the fleet-allocator benchmarks' common input shape.
func benchFleetDemands(n int) []kairos.ModelDemand {
	rng := rand.New(rand.NewSource(42))
	cat := kairos.Models()
	mix := kairos.DefaultTrace()
	out := make([]kairos.ModelDemand, n)
	for i := range out {
		samples := make([]int, 2000)
		for j := range samples {
			samples[j] = mix.Sample(rng)
		}
		m := cat[i%len(cat)]
		m.Name = fmt.Sprintf("bench-%03d", i)
		out[i] = kairos.ModelDemand{Model: m, Samples: samples}
	}
	return out
}

// planFleet100Bench benchmarks a full 100-model replan through a warm
// incremental planner: every window is refingerprinted (none moved) and
// the greedy allocation reruns. CI holds this at or below the seed's
// 2-model from-scratch time.
func planFleet100Bench() func(*testing.B) {
	return func(b *testing.B) {
		demands := benchFleetDemands(100)
		planner, err := kairos.NewFleetPlanner(kairos.DefaultPool(), 2.5)
		if err != nil {
			b.Fatal(err)
		}
		if err := planner.SetDemands(demands); err != nil {
			b.Fatal(err)
		}
		if _, err := planner.Plan(2.5); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := planner.SetDemands(demands); err != nil {
				b.Fatal(err)
			}
			if _, err := planner.Plan(2.5); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// planFleetOneDirtyBench benchmarks the autopilot's single-trigger path:
// 1 of 100 sample windows moved, replanned via ReplanModel. Pays one
// estimator reset and frontier rebuild plus the greedy rerun.
func planFleetOneDirtyBench() func(*testing.B) {
	return func(b *testing.B) {
		demands := benchFleetDemands(100)
		planner, err := kairos.NewFleetPlanner(kairos.DefaultPool(), 2.5)
		if err != nil {
			b.Fatal(err)
		}
		if err := planner.SetDemands(demands); err != nil {
			b.Fatal(err)
		}
		if _, err := planner.Plan(2.5); err != nil {
			b.Fatal(err)
		}
		// Alternate two windows for the dirty model so every iteration
		// really invalidates and rebuilds its frontier.
		dirty := demands[50]
		alt := benchFleetDemands(1)[0]
		windows := [2][]int{dirty.Samples, alt.Samples}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dirty.Samples = windows[i%2]
			if _, err := planner.ReplanModel(dirty, 2.5); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// frameBench wraps one shared wire-codec case (see
// server.FrameBenchCases: the same loops back the in-package benchmarks,
// so the BENCH_micro.json trajectory and `go test -bench` agree).
func frameBench(c server.FrameBenchCase) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		if err := c.Loop(b.N); err != nil {
			b.Fatal(err)
		}
	}
}

// obsBench wraps one shared flight-recorder case (see obs.BenchCases:
// the per-query tracing and histogram hot paths that ride the serving
// path must stay allocation-free and cheap).
func obsBench(c obs.BenchCase) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		c.Loop(b.N)
	}
}

// controllerThroughputBench drives closed-loop submitters through the
// shared serving-path fixture (server.StartBenchCluster: 2 models x 2
// loopback instance servers each, LeastBacklog policy): ns/op is the
// sustained Submit→complete cost of the whole live path.
func controllerThroughputBench() func(*testing.B) {
	return func(b *testing.B) {
		cluster, err := server.StartBenchCluster(1e-6, nil)
		if err != nil {
			b.Fatal(err)
		}
		defer cluster.Close()
		var worker int64
		b.SetParallelism(32)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			w := atomic.AddInt64(&worker, 1)
			if err := cluster.Worker(w, pb.Next); err != nil {
				b.Error(err)
			}
		})
	}
}

// ingressBench drives closed-loop external submitters through the shared
// ingress fixture (ingress.StartBenchIngress: the serving-path bench
// cluster behind an HTTP + binary-TCP front-end): ns/op is the sustained
// external Submit→complete cost of the whole path, front-end included.
func ingressBench(tcp bool) func(*testing.B) {
	return ingressBenchSharded(tcp, 0)
}

// ingressBenchSharded is ingressBench over a front door split into the
// given number of accept/admission shards.
func ingressBenchSharded(tcp bool, shards int) func(*testing.B) {
	return func(b *testing.B) {
		fix, err := ingress.StartBenchIngressSharded(1e-6, shards)
		if err != nil {
			b.Fatal(err)
		}
		defer fix.Close()
		var worker int64
		b.SetParallelism(16)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			w := atomic.AddInt64(&worker, 1)
			var err error
			if tcp {
				err = fix.TCPWorker(w, pb.Next)
			} else {
				err = fix.HTTPWorker(w, pb.Next)
			}
			if err != nil {
				b.Error(err)
			}
		})
	}
}

func main() {
	testing.Init() // registers test.benchtime, which testing.Benchmark reads
	out := flag.String("out", "BENCH_micro.json", "output JSON path (- for stdout)")
	benchtime := flag.Duration("benchtime", 500*time.Millisecond, "target run time per benchmark")
	flag.Parse()

	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"Hungarian16", solverBench(assignment.Hungarian, 16)},
		{"Hungarian64", solverBench(assignment.Hungarian, 64)},
		{"JV16", solverBench(assignment.Solve, 16)},
		{"JV64", solverBench(assignment.Solve, 64)},
		{"DistributorAssign8x4", assignBench(8, 4)},
		{"DistributorAssign32x8", assignBench(32, 8)},
		{"DistributorAssign64x16", assignBench(64, 16)},
		{"PlanFleet2Models", planFleetBench()},
		{"PlanFleet100Models", planFleet100Bench()},
		{"PlanFleetIncrementalOneDirty", planFleetOneDirtyBench()},
	}
	for _, c := range server.FrameBenchCases() {
		benches = append(benches, struct {
			name string
			fn   func(*testing.B)
		}{c.Name, frameBench(c)})
	}
	for _, c := range obs.BenchCases() {
		benches = append(benches, struct {
			name string
			fn   func(*testing.B)
		}{c.Name, obsBench(c)})
	}
	benches = append(benches, struct {
		name string
		fn   func(*testing.B)
	}{"ControllerThroughput", controllerThroughputBench()})
	benches = append(benches, struct {
		name string
		fn   func(*testing.B)
	}{"IngressSubmitTCP", ingressBench(true)})
	benches = append(benches, struct {
		name string
		fn   func(*testing.B)
	}{"IngressSubmitHTTP", ingressBench(false)})
	benches = append(benches, struct {
		name string
		fn   func(*testing.B)
	}{"IngressSubmitTCPSharded", ingressBenchSharded(true, 4)})

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		When:      time.Now().UTC(),
	}
	if f := flag.Lookup("test.benchtime"); f != nil {
		f.Value.Set(benchtime.String())
	}
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		rep.Results = append(rep.Results, result{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-24s %10d iters %12.0f ns/op %8d B/op %6d allocs/op\n",
			bench.name, r.N, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	payload, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	payload = append(payload, '\n')
	if *out == "-" {
		os.Stdout.Write(payload)
		return
	}
	if err := os.WriteFile(*out, payload, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "kairos-microbench: wrote %s\n", *out)
}
