// Command kairos-soak replays adversarial workload scenarios through the
// external ingress against a live autopilot-managed fleet while injecting
// faults mid-run — SIGKILLed instances, wedged processes, slow or
// partitioned networks — and asserts the serving invariant the whole
// system is built around: no admitted query is ever dropped. Each
// scenario runs against a freshly launched fleet; the outcome (recovery
// times, tail-latency trajectory, every invariant violation) lands in
// BENCH_soak.json and the exit status is non-zero if any invariant broke.
//
// Usage:
//
//	kairos-soak -scenario flash-crowd -fault kill@0.4 -o BENCH_soak.json
//	kairos-soak -scenario flash-crowd -scenario heavy-tail \
//	    -model NCF -model MT-WND -budget 1.2 -duration 10000 -rate 120 \
//	    -fault kill@0.3 -fault stall@0.6:500ms \
//	    -provider exec -kairosd ./kairosd -o BENCH_soak.json
//
// Fault specs are KIND@AT[:DURATION[:DELAY]] with AT a fraction of the
// scenario in [0,1): kill@0.3, wedge@0.5:500ms, stall@0.6:1s,
// delay@0.2:1s:20ms, partition@0.7, preempt@0.4:800ms (DURATION is the
// spot revocation notice window; the instance is hard-killed at the
// deadline if its drain has not finished).
//
// With -spot-discount the fleet plans over a spot market: every
// instance type gains a discounted spot variant, and -on-demand-floor
// keeps a risk-bounded slice of each latency-critical model's demand on
// revocation-proof on-demand capacity.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"kairos"
	"kairos/internal/soak"
)

// findKairosd resolves the kairosd binary for -provider exec: the
// -kairosd flag, a kairosd next to this executable, or PATH.
func findKairosd(flagValue string) (string, error) {
	if flagValue != "" {
		return flagValue, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "kairosd")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if path, err := exec.LookPath("kairosd"); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("no kairosd binary found: pass -kairosd, place it next to kairos-soak, or add it to PATH")
}

// parseFault resolves one KIND@AT[:DURATION[:DELAY]] spec.
func parseFault(spec string) (soak.FaultSpec, error) {
	bad := func() (soak.FaultSpec, error) {
		return soak.FaultSpec{}, fmt.Errorf("bad fault %q (want KIND@AT[:DURATION[:DELAY]], e.g. kill@0.3, stall@0.6:500ms, delay@0.2:1s:20ms)", spec)
	}
	kindAt, rest, _ := strings.Cut(spec, ":")
	kind, atStr, ok := strings.Cut(kindAt, "@")
	if !ok {
		return bad()
	}
	at, err := strconv.ParseFloat(atStr, 64)
	if err != nil {
		return bad()
	}
	f := soak.FaultSpec{Kind: soak.FaultKind(kind), At: at}
	if rest != "" {
		durStr, delayStr, hasDelay := strings.Cut(rest, ":")
		if f.Duration, err = time.ParseDuration(durStr); err != nil {
			return bad()
		}
		if hasDelay {
			if f.Delay, err = time.ParseDuration(delayStr); err != nil {
				return bad()
			}
		}
	}
	return f, nil
}

func main() {
	var scenarioNames, modelNames, faultSpecs []string
	flag.Func("scenario", "scenario to replay (repeatable): flash-crowd, diurnal, batch-mix-inversion, heavy-tail", func(v string) error {
		scenarioNames = append(scenarioNames, v)
		return nil
	})
	flag.Func("model", "served model (repeatable; models share the budget)", func(v string) error {
		modelNames = append(modelNames, v)
		return nil
	})
	flag.Func("fault", "fault to inject (repeatable): KIND@AT[:DURATION[:DELAY]]", func(v string) error {
		faultSpecs = append(faultSpecs, v)
		return nil
	})
	budget := flag.Float64("budget", 0.8, "shared cost budget in $/hr")
	spotDiscount := flag.Float64("spot-discount", 0, "spot price discount in (0,1): 0.7 means spot costs 30% of on-demand; 0 = on-demand only")
	spotRisk := flag.Float64("spot-risk", 0.05, "assumed per-hour spot revocation probability (informational, recorded on the spot types)")
	onDemandFloor := flag.Float64("on-demand-floor", 0, "fraction of each latency-critical model's arrival rate that must stay on on-demand capacity")
	duration := flag.Float64("duration", 8000, "scenario duration in model milliseconds")
	rate := flag.Float64("rate", 100, "scenario base arrival rate (QPS)")
	timeScale := flag.Float64("timescale", 1.0, "real seconds per model second")
	seed := flag.Int64("seed", 42, "base random seed; every run is deterministic from it")
	provider := flag.String("provider", "inprocess", "actuation provider: inprocess (loopback servers) or exec (real kairosd processes)")
	kairosdBin := flag.String("kairosd", "", "kairosd binary for -provider exec (default: next to this binary, then PATH)")
	ingressQueue := flag.Int("ingress-queue", 8192, "per-model bound on admitted-but-unfinished ingress queries")
	ingressShards := flag.Int("ingress-shards", 0, "independent ingress front-door shards: accept loops + admission state (0 = 1)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client ingress rate limit in queries/second (0 = unlimited)")
	rateBurst := flag.Int("rate-burst", 0, "ingress rate-limit burst depth (0 = max(1, -rate-limit))")
	var authTokens []string
	flag.Func("auth-token", "static ingress bearer token (repeatable; the replay clients present the first one)", func(v string) error {
		authTokens = append(authTokens, v)
		return nil
	})
	emptyHold := flag.Duration("empty-hold", 30*time.Second, "how long a model's queries park when a fault takes its last instance")
	converge := flag.Duration("converge-timeout", 30*time.Second, "post-replay drain and re-convergence bound")
	out := flag.String("o", "BENCH_soak.json", "output path for the soak report")
	verbose := flag.Bool("v", false, "log per-run progress")
	flag.Parse()

	if len(scenarioNames) == 0 {
		scenarioNames = []string{"flash-crowd"}
	}
	if len(modelNames) == 0 {
		modelNames = []string{"NCF"}
	}
	if len(faultSpecs) == 0 {
		faultSpecs = []string{"kill@0.4"}
	}
	faults := make([]soak.FaultSpec, len(faultSpecs))
	for i, spec := range faultSpecs {
		f, err := parseFault(spec)
		if err != nil {
			log.Fatalf("kairos-soak: %v", err)
		}
		faults[i] = f
	}
	// Resolve every scenario before launching anything.
	scenarios := make([]kairos.Scenario, len(scenarioNames))
	for i, name := range scenarioNames {
		s, err := kairos.ScenarioByName(name, *duration, *rate)
		if err != nil {
			log.Fatalf("kairos-soak: %v", err)
		}
		scenarios[i] = s
	}
	binPath := ""
	if *provider == "exec" {
		bin, err := findKairosd(*kairosdBin)
		if err != nil {
			log.Fatalf("kairos-soak: %v", err)
		}
		binPath = bin
	} else if *provider != "inprocess" {
		log.Fatalf("kairos-soak: unknown provider %q (want inprocess or exec)", *provider)
	}
	pool := kairos.DefaultPool()
	if *spotDiscount > 0 {
		if *spotDiscount >= 1 {
			log.Fatalf("kairos-soak: -spot-discount %g out of range (want (0,1))", *spotDiscount)
		}
		pool = pool.WithSpotMarket(*spotDiscount, *spotRisk)
	} else if *onDemandFloor > 0 {
		log.Fatal("kairos-soak: -on-demand-floor needs a spot market (-spot-discount)")
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}

	bench := soak.Bench{Seed: *seed, TimeScale: *timeScale}
	decisions := make(map[string][]kairos.AutopilotDecisionEvent, len(scenarios))
	for _, sc := range scenarios {
		report, decs, err := runScenario(sc, pool, modelNames, faults, *budget, *onDemandFloor,
			*timeScale, *seed, binPath, ingressConfig{
				queue: *ingressQueue, shards: *ingressShards,
				rateLimit: *rateLimit, rateBurst: *rateBurst, tokens: authTokens,
			}, *emptyHold, *converge, logf)
		if err != nil {
			log.Fatalf("kairos-soak: %s: %v", sc.Name, err)
		}
		decisions[sc.Name] = decs
		bench.Scenarios = append(bench.Scenarios, *report)
		verdict := "PASS"
		if !report.Passed() {
			verdict = "FAIL"
		}
		fmt.Printf("kairos-soak: %-20s %s  submitted=%d admitted=%d rejected=%d failed=%d faults=%d violations=%d cost=$%.3f/hr ($%.4f per 1k queries)\n",
			sc.Name, verdict, report.Submitted, report.Admitted, report.Rejected,
			report.Failed, len(report.Faults), len(report.Violations),
			report.PlanCost, report.CostPer1KQueries)
		for _, v := range report.Violations {
			fmt.Printf("kairos-soak:   violation: %s\n", v)
		}
		for _, ev := range report.Faults {
			if ev.RecoveryMS >= 0 {
				fmt.Printf("kairos-soak:   %s at t=%.0fms recovered in %.0fms\n", ev.Kind, ev.AtMS, ev.RecoveryMS)
			}
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("kairos-soak: %v", err)
	}
	if err := bench.WriteJSON(f); err != nil {
		f.Close()
		log.Fatalf("kairos-soak: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("kairos-soak: %v", err)
	}
	fmt.Printf("kairos-soak: wrote %s\n", *out)

	// The autopilot decision journal rides next to the report: each
	// scenario's trigger→replan→actuate cycles, so replans and heals can
	// be lined up against the injected faults after the fact.
	decPath := decisionsPath(*out)
	df, err := os.Create(decPath)
	if err != nil {
		log.Fatalf("kairos-soak: %v", err)
	}
	denc := json.NewEncoder(df)
	denc.SetIndent("", "  ")
	if err := denc.Encode(decisions); err != nil {
		df.Close()
		log.Fatalf("kairos-soak: %v", err)
	}
	if err := df.Close(); err != nil {
		log.Fatalf("kairos-soak: %v", err)
	}
	fmt.Printf("kairos-soak: wrote %s\n", decPath)
	if !bench.Passed() {
		os.Exit(1)
	}
}

// decisionsPath derives the decision-journal path from the report path:
// BENCH_soak.json -> BENCH_soak_decisions.json.
func decisionsPath(out string) string {
	ext := filepath.Ext(out)
	return strings.TrimSuffix(out, ext) + "_decisions" + ext
}

// ingressConfig collects the front-door knobs a soak run forwards into
// the autopilot's ingress.
type ingressConfig struct {
	queue, shards int
	rateLimit     float64
	rateBurst     int
	tokens        []string
}

// runScenario launches a fresh fleet, replays one scenario against it,
// and tears everything down — faults never leak across runs.
func runScenario(sc kairos.Scenario, pool kairos.Pool, modelNames []string, faults []soak.FaultSpec,
	budget, onDemandFloor, timeScale float64, seed int64, binPath string, ing ingressConfig,
	emptyHold, converge time.Duration, logf func(string, ...any)) (*soak.Report, []kairos.AutopilotDecisionEvent, error) {
	// The initial plan is sized for the scenario's opening mix.
	rng := rand.New(rand.NewSource(seed))
	reference := make([]int, 4000)
	for i := range reference {
		reference[i] = sc.Phases[0].Dist.Sample(rng)
	}
	engine, err := kairos.New(
		kairos.WithPool(pool),
		kairos.WithModels(modelNames...),
		kairos.WithBudget(budget),
		kairos.WithBatchSamples(reference),
		kairos.WithSeed(seed),
	)
	if err != nil {
		return nil, nil, err
	}
	var inner kairos.Provider
	if binPath != "" {
		ef := kairos.NewExecFleet(binPath, timeScale, modelNames...)
		ef.Logf = logf
		inner = ef
	} else {
		inner = kairos.NewFleet(timeScale, engine.Models()...)
	}
	chaos := soak.WrapChaos(inner)
	apOpts := []kairos.AutopilotOption{
		kairos.WithProvider(chaos),
		kairos.WithIngress("", "127.0.0.1:0"),
		kairos.WithIngressQueue(ing.queue),
	}
	if ing.shards != 0 {
		apOpts = append(apOpts, kairos.WithIngressShards(ing.shards))
	}
	if ing.rateLimit != 0 {
		apOpts = append(apOpts, kairos.WithIngressRateLimit(ing.rateLimit, ing.rateBurst))
	}
	if len(ing.tokens) > 0 {
		apOpts = append(apOpts, kairos.WithIngressAuth(ing.tokens...))
	}
	ap, err := engine.Autopilot(timeScale, kairos.AutopilotOptions{
		Interval:      50 * time.Millisecond,
		OnDemandFloor: onDemandFloor,
		Logf:          logf,
	}, apOpts...)
	if err != nil {
		chaos.Close()
		return nil, nil, err
	}
	defer ap.Close()
	ap.Start()

	token := ""
	if len(ing.tokens) > 0 {
		token = ing.tokens[0]
	}
	report, err := soak.Run(soak.System{AP: ap, Chaos: chaos}, soak.Config{
		Scenario:        sc,
		Seed:            seed,
		TimeScale:       timeScale,
		Models:          modelNames,
		Faults:          faults,
		EmptyHold:       emptyHold,
		ConvergeTimeout: converge,
		Token:           token,
		Logf:            logf,
	})
	// Snapshot the decision journal before the deferred Close tears the
	// autopilot down.
	return report, ap.Decisions(), err
}
