// Command kairos-trace generates, converts and summarizes query traces —
// the stand-in tooling for the production trace artifact the paper replays
// (Sec. 7).
//
// Usage:
//
//	kairos-trace -gen -n 10000 -rate 100 -dist lognormal -o trace.csv
//	kairos-trace -scenario flash-crowd -duration 60000 -rate 100 -seed 42 -o trace.csv
//	kairos-trace -summary trace.csv
//	kairos-trace -convert trace.csv -o trace.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"kairos"
)

func main() {
	gen := flag.Bool("gen", false, "generate a synthetic trace")
	n := flag.Int("n", 10000, "number of queries to generate")
	rate := flag.Float64("rate", 100, "Poisson arrival rate (QPS)")
	distName := flag.String("dist", "lognormal", "batch distribution: lognormal or gaussian")
	seed := flag.Int64("seed", 42, "random seed")
	scenario := flag.String("scenario", "", "generate a scenario preset: flash-crowd, diurnal, batch-mix-inversion or heavy-tail")
	duration := flag.Float64("duration", 60000, "scenario duration in model milliseconds")
	out := flag.String("o", "", "output path (.csv or .json); empty = stdout csv")
	summary := flag.String("summary", "", "summarize an existing trace file")
	convert := flag.String("convert", "", "convert an existing trace file to the -o format")
	flag.Parse()

	switch {
	case *scenario != "":
		s, err := kairos.ScenarioByName(*scenario, *duration, *rate)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeTrace(s.Trace(*seed), *out); err != nil {
			log.Fatal(err)
		}
	case *gen:
		var dist kairos.BatchDistribution
		switch *distName {
		case "lognormal":
			dist = kairos.DefaultTrace()
		case "gaussian":
			dist = kairos.DefaultGaussian()
		default:
			log.Fatalf("unknown distribution %q", *distName)
		}
		tr := kairos.SynthesizeTrace(*seed, dist, *rate, *n)
		if err := writeTrace(tr, *out); err != nil {
			log.Fatal(err)
		}
	case *summary != "":
		tr, err := readTrace(*summary)
		if err != nil {
			log.Fatal(err)
		}
		printSummary(tr)
	case *convert != "":
		tr, err := readTrace(*convert)
		if err != nil {
			log.Fatal(err)
		}
		if *out == "" {
			log.Fatal("kairos-trace: -convert needs -o")
		}
		if err := writeTrace(tr, *out); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func writeTrace(tr kairos.Trace, path string) error {
	if path == "" {
		return tr.WriteCSV(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return tr.WriteJSON(f)
	}
	return tr.WriteCSV(f)
}

func readTrace(path string) (kairos.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return kairos.Trace{}, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return kairos.ReadTraceJSON(f)
	}
	return kairos.ReadTraceCSV(f)
}

func printSummary(tr kairos.Trace) {
	batches := tr.Batches()
	if len(batches) == 0 {
		fmt.Println("empty trace")
		return
	}
	sort.Ints(batches)
	sum := 0
	for _, b := range batches {
		sum += b
	}
	q := func(p float64) int { return batches[int(p*float64(len(batches)-1))] }
	duration := tr.Arrivals[len(tr.Arrivals)-1].AtMS / 1000
	fmt.Printf("trace: %s\n", tr.Description)
	fmt.Printf("queries: %d over %.1fs (%.1f QPS)\n", len(batches), duration, float64(len(batches))/duration)
	fmt.Printf("batch size: mean %.1f  p50 %d  p90 %d  p99 %d  max %d\n",
		float64(sum)/float64(len(batches)), q(0.5), q(0.9), q(0.99), batches[len(batches)-1])
}
