package kairos

import (
	"fmt"
	"math/rand"

	"kairos/internal/adapt"
	"kairos/internal/core"
	"kairos/internal/sim"
)

// DefaultPolicy is the policy an engine uses when WithPolicy is absent.
const DefaultPolicy = "kairos+warm"

// defaultPlanSamples sizes the synthetic planning snapshot drawn from the
// engine's trace when neither WithBatchSamples nor a warmed monitor is
// available (the paper tracks ~10000 recent queries).
const defaultPlanSamples = 10000

// minPlanObservations guards the cold-to-warm handoff: a model's monitor
// must hold at least this many samples (10% of the paper's window) before
// its view replaces the synthetic snapshot, so a single early completion
// never collapses planning onto a one-point mix.
const minPlanObservations = 1000

// Engine is the managed entry point to the reproduction: one object that
// owns the deployment context (pool, served model set, shared budget), a
// query monitor per model, and the selected distribution policy, and
// exposes the paper's full plan -> serve -> evaluate -> adapt lifecycle as
// methods.
//
// Build it with New and functional options:
//
//	engine, err := kairos.New(
//		kairos.WithPool(kairos.DefaultPool()),
//		kairos.WithModelName("RM2"),
//		kairos.WithBudget(2.5),
//		kairos.WithPolicy("kairos+warm"),
//	)
//
// An engine serves one model (WithModel / WithModelName) or several under
// one shared budget (WithModels). The single-model planning and simulation
// methods (Plan, Rank, Evaluate, ...) require a single-model engine;
// multi-model engines plan with PlanFleet and serve through Connect or
// Autopilot, which partition the live path per model.
//
// Policies are resolved by name through the registry (see RegisterPolicy
// and Policies), so callers select them as data — e.g. from a -policy
// command-line flag — instead of hard-wiring constructors.
type Engine struct {
	pool     Pool
	models   []Model
	budget   float64
	policy   string
	monitors map[string]*Monitor
	// sharedMonitor is the WithMonitor override for the primary model.
	sharedMonitor *Monitor
	batches       BatchDistribution
	samples       []int
	modelSamples  map[string][]int
	seed          int64

	replanThreshold float64
	drsThreshold    int
	partitions      int

	probeQueries  int
	precisionFrac float64

	// est caches the primary model's estimator while the planning snapshot
	// is deterministic (pinned by WithBatchSamples, or synthesized from the
	// trace while the monitor is still cold); once the monitor has observed
	// traffic it is re-read on every planning call so a drifting mix is
	// never planned from stale data.
	est *core.Estimator
}

// New assembles and validates an engine from functional options.
func New(opts ...Option) (*Engine, error) {
	e := &Engine{
		policy:  DefaultPolicy,
		batches: DefaultTrace(),
		seed:    42,
	}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("kairos: nil option")
		}
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	if len(e.pool) == 0 {
		return nil, fmt.Errorf("kairos: engine needs a pool (use WithPool)")
	}
	if len(e.models) == 0 {
		return nil, fmt.Errorf("kairos: engine needs a model (use WithModel, WithModelName, or WithModels)")
	}
	for name := range e.modelSamples {
		if e.modelByName(name) == nil {
			return nil, fmt.Errorf("kairos: WithModelSamples names %q, but the engine serves %v", name, e.modelNames())
		}
	}
	e.monitors = make(map[string]*Monitor, len(e.models))
	for _, m := range e.models {
		e.monitors[m.Name] = NewMonitor()
	}
	if e.sharedMonitor != nil {
		e.monitors[e.models[0].Name] = e.sharedMonitor
	}
	return e, nil
}

// Pool returns the engine's instance pool.
func (e *Engine) Pool() Pool { return e.pool }

// Model returns the engine's primary served model (the first of Models).
func (e *Engine) Model() Model { return e.models[0] }

// Models returns the engine's served model set in option order.
func (e *Engine) Models() []Model {
	out := make([]Model, len(e.models))
	copy(out, e.models)
	return out
}

// modelNames lists the served model names in option order.
func (e *Engine) modelNames() []string {
	out := make([]string, len(e.models))
	for i, m := range e.models {
		out[i] = m.Name
	}
	return out
}

// modelByName returns the served model with the given name, or nil.
func (e *Engine) modelByName(name string) *Model {
	for i := range e.models {
		if e.models[i].Name == name {
			return &e.models[i]
		}
	}
	return nil
}

// primary returns the engine's model for the single-model methods,
// erroring on a multi-model engine where "the model" is ambiguous.
func (e *Engine) primary() (Model, error) {
	if len(e.models) != 1 {
		return Model{}, fmt.Errorf("kairos: engine serves %d models (%v); use PlanFleet/Connect/Autopilot, or build a single-model engine",
			len(e.models), e.modelNames())
	}
	return e.models[0], nil
}

// Budget returns the shared cost budget in $/hr (0 when unset).
func (e *Engine) Budget() float64 { return e.budget }

// Policy returns the selected policy's registry name.
func (e *Engine) Policy() string { return e.policy }

// Monitor returns the primary model's query monitor. Distributors built by
// Serve feed it (when the policy supports a monitor), and Plan and Replan
// read it; callers may also warm it directly with Monitor.Observe.
func (e *Engine) Monitor() *Monitor { return e.monitors[e.models[0].Name] }

// MonitorFor returns the named model's query monitor. The live serving
// path (Connect, Autopilot) feeds each model's monitor from that model's
// completions.
func (e *Engine) MonitorFor(model string) (*Monitor, error) {
	m, ok := e.monitors[model]
	if !ok {
		return nil, fmt.Errorf("kairos: engine does not serve model %q (have %v)", model, e.modelNames())
	}
	return m, nil
}

// policyContextFor assembles the registry context for one served model.
func (e *Engine) policyContextFor(m Model, monitor *Monitor) PolicyContext {
	return PolicyContext{
		Pool:         e.pool,
		Model:        m,
		Monitor:      monitor,
		DRSThreshold: e.drsThreshold,
		Partitions:   e.partitions,
	}
}

// Serve builds the configured policy's distributor wired to the engine's
// monitor — the live serving path of a single-model engine. Multi-model
// engines serve through Connect, which builds one distributor per model.
func (e *Engine) Serve() (Distributor, error) {
	m, err := e.primary()
	if err != nil {
		return nil, err
	}
	return NewPolicy(e.policy, e.policyContextFor(m, e.monitors[m.Name]))
}

// Factory returns a DistributorFactory building fresh instances of the
// engine's policy per evaluation run, so stateful policies (online
// learners) never leak knowledge across probes. Evaluation-run policies do
// not feed the engine monitor. The factory panics if the policy factory
// errors — or if the engine serves several models, where "the model" is
// ambiguous; Evaluate and AllowableThroughput probe one construction
// first and surface the error instead.
func (e *Engine) Factory() DistributorFactory {
	m, err := e.primary()
	if err != nil {
		return func() Distributor { panic(err) }
	}
	ctx := e.policyContextFor(m, nil)
	name := e.policy
	return func() Distributor {
		d, err := NewPolicy(name, ctx)
		if err != nil {
			panic(err)
		}
		return d
	}
}

// evalFactory is the error-surfacing Factory used by the evaluation
// methods: it builds one throwaway distributor to catch factories that
// reject the evaluation context (e.g. a downstream policy requiring a
// monitor), which New cannot see because it never invokes the factory.
func (e *Engine) evalFactory() (DistributorFactory, error) {
	if _, err := NewPolicy(e.policy, e.policyContextFor(e.models[0], nil)); err != nil {
		return nil, err
	}
	return e.Factory(), nil
}

// pinnedSamples resolves an explicit batch-sample pin for the model:
// the per-model WithModelSamples pin, else the engine-wide
// WithBatchSamples pin.
func (e *Engine) pinnedSamples(model string) []int {
	if s := e.modelSamples[model]; s != nil {
		return s
	}
	return e.samples
}

// monitorWarmedFor reports whether the model's monitor view should drive
// its planning.
func (e *Engine) monitorWarmedFor(model string) bool {
	return e.pinnedSamples(model) == nil && e.monitors[model].Count() >= minPlanObservations
}

// planningSamplesFor resolves the batch-size snapshot the planner consumes
// for one model: the pinned snapshot, else the warmed monitor's view, else
// a synthetic draw from the engine's trace (decorrelated across models).
func (e *Engine) planningSamplesFor(model string) []int {
	if s := e.pinnedSamples(model); s != nil {
		return s
	}
	if e.monitorWarmedFor(model) {
		return e.monitors[model].Snapshot()
	}
	seed := e.seed
	for i, m := range e.models {
		if m.Name == model {
			seed += int64(i)
			break
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, defaultPlanSamples)
	for i := range out {
		out[i] = e.batches.Sample(rng)
	}
	return out
}

// estimator builds the primary model's throughput upper-bound estimator
// (Sec. 5.2).
func (e *Engine) estimator() (*core.Estimator, error) {
	m, err := e.primary()
	if err != nil {
		return nil, err
	}
	if e.monitorWarmedFor(m.Name) {
		// Monitor-sourced: always plan from the live mix, and drop any
		// cold-start cache built before traffic arrived.
		e.est = nil
		return core.NewEstimator(e.pool, m, e.planningSamplesFor(m.Name), core.EstimatorOptions{})
	}
	// Pinned samples or the deterministic synthetic fallback: cacheable.
	if e.est == nil {
		est, err := core.NewEstimator(e.pool, m, e.planningSamplesFor(m.Name), core.EstimatorOptions{})
		if err != nil {
			return nil, err
		}
		e.est = est
	}
	return e.est, nil
}

// needBudget guards the planning methods.
func (e *Engine) needBudget() error {
	if e.budget <= 0 {
		return fmt.Errorf("kairos: planning needs a budget (use WithBudget)")
	}
	return nil
}

// Plan returns the one-shot configuration for the engine's budget from the
// current batch-size snapshot — no online exploration (Sec. 5.2).
// Single-model engines only; see PlanFleet.
func (e *Engine) Plan() (Config, error) {
	if err := e.needBudget(); err != nil {
		return nil, err
	}
	est, err := e.estimator()
	if err != nil {
		return nil, err
	}
	return est.Plan(e.budget), nil
}

// PlanFleet splits the engine's shared budget across every served model by
// greedy marginal throughput-per-dollar over each model's ranked
// configurations, planning each model from its own batch-size snapshot
// (pinned samples, warmed monitor, or the synthetic trace). It is the
// multi-model counterpart of Plan and also works on a single-model engine.
func (e *Engine) PlanFleet() (FleetPlan, error) {
	if err := e.needBudget(); err != nil {
		return nil, err
	}
	demands := make([]core.ModelDemand, len(e.models))
	for i, m := range e.models {
		demands[i] = core.ModelDemand{Model: m, Samples: e.planningSamplesFor(m.Name)}
	}
	return core.PlanFleet(e.pool, demands, e.budget)
}

// Rank returns every configuration within the engine's budget sorted by
// descending throughput upper bound. Single-model engines only.
func (e *Engine) Rank() ([]RankedConfig, error) {
	if err := e.needBudget(); err != nil {
		return nil, err
	}
	est, err := e.estimator()
	if err != nil {
		return nil, err
	}
	return est.Rank(e.budget), nil
}

// UpperBound estimates the throughput ceiling of one configuration
// (Eqs. 9-15). Single-model engines only.
func (e *Engine) UpperBound(cfg Config) (float64, error) {
	if err := e.validConfig(cfg); err != nil {
		return 0, err
	}
	est, err := e.estimator()
	if err != nil {
		return 0, err
	}
	return est.UpperBound(cfg), nil
}

// PlanPlus runs the Kairos+ pruning search (Algorithm 1) using eval as the
// expensive online measurement. Single-model engines only.
func (e *Engine) PlanPlus(eval func(Config) float64) (PlusResult, error) {
	ranked, err := e.Rank()
	if err != nil {
		return PlusResult{}, err
	}
	return core.KairosPlus(ranked, core.EvalFunc(eval)), nil
}

// validConfig checks a configuration against the engine's pool.
func (e *Engine) validConfig(cfg Config) error {
	return validateConfig(e.pool, cfg)
}

// spec assembles the simulation spec for a configuration.
func (e *Engine) spec(cfg Config) (sim.ClusterSpec, error) {
	m, err := e.primary()
	if err != nil {
		return sim.ClusterSpec{}, err
	}
	if err := e.validConfig(cfg); err != nil {
		return sim.ClusterSpec{}, err
	}
	return sim.ClusterSpec{Pool: e.pool, Config: cfg, Model: m}, nil
}

// Evaluate simulates one run of cfg under a fresh instance of the engine's
// policy. Zero-valued RunOptions fields fall back to the engine's seed and
// trace. Single-model engines only.
func (e *Engine) Evaluate(cfg Config, opts RunOptions) (Result, error) {
	spec, err := e.spec(cfg)
	if err != nil {
		return Result{}, err
	}
	if opts.Seed == 0 {
		opts.Seed = e.seed
	}
	if opts.Batches == nil {
		opts.Batches = e.batches
	}
	factory, err := e.evalFactory()
	if err != nil {
		return Result{}, err
	}
	return sim.Run(spec, factory(), sim.Options{
		RatePerSec: opts.RatePerSec,
		DurationMS: opts.DurationMS,
		WarmupMS:   opts.WarmupMS,
		Seed:       opts.Seed,
		Batches:    opts.Batches,
	}), nil
}

// AllowableThroughput measures the paper's headline metric for cfg under
// the engine's policy: the maximum arrival rate whose p99 latency stays
// within the model's QoS target. Single-model engines only.
func (e *Engine) AllowableThroughput(cfg Config) (float64, error) {
	spec, err := e.spec(cfg)
	if err != nil {
		return 0, err
	}
	factory, err := e.evalFactory()
	if err != nil {
		return 0, err
	}
	return sim.FindAllowableThroughput(spec, factory, sim.FindOptions{
		ProbeQueries:  e.probeQueries,
		PrecisionFrac: e.precisionFrac,
		Seed:          e.seed,
		Batches:       e.batches,
	}), nil
}

// OracleThroughput evaluates the clairvoyant ORCL reference scheduler on
// cfg (Sec. 7). Single-model engines only.
func (e *Engine) OracleThroughput(cfg Config) (float64, error) {
	spec, err := e.spec(cfg)
	if err != nil {
		return 0, err
	}
	return sim.OracleThroughput(spec, sim.OracleOptions{
		Seed:    e.seed,
		Batches: e.batches,
	}), nil
}

// Replan arms the Fig. 12 adaptation loop on the engine's monitor: it
// plans an initial configuration from the monitored mix and returns a
// Replanner whose Check replans in one shot when the mix drifts past the
// engine's threshold (WithReplan). The monitor must already have observed
// traffic — serve through Serve's distributor or warm it directly.
// Single-model engines only; multi-model engines adapt through Autopilot.
func (e *Engine) Replan() (*Replanner, error) {
	m, err := e.primary()
	if err != nil {
		return nil, err
	}
	if err := e.needBudget(); err != nil {
		return nil, err
	}
	monitor := e.monitors[m.Name]
	if n := monitor.Count(); n < minPlanObservations {
		return nil, fmt.Errorf("kairos: replanning needs a warmed monitor (%d/%d observations)", n, minPlanObservations)
	}
	return adapt.NewReplanner(e.pool, m, e.budget, e.replanThreshold, monitor)
}
