package kairos

import (
	"fmt"
	"math/rand"

	"kairos/internal/adapt"
	"kairos/internal/core"
	"kairos/internal/sim"
)

// DefaultPolicy is the policy an engine uses when WithPolicy is absent.
const DefaultPolicy = "kairos+warm"

// defaultPlanSamples sizes the synthetic planning snapshot drawn from the
// engine's trace when neither WithBatchSamples nor a warmed monitor is
// available (the paper tracks ~10000 recent queries).
const defaultPlanSamples = 10000

// minPlanObservations guards the cold-to-warm handoff: the monitor must
// hold at least this many samples (10% of the paper's window) before its
// view replaces the synthetic snapshot, so a single early completion never
// collapses planning onto a one-point mix.
const minPlanObservations = 1000

// Engine is the managed entry point to the reproduction: one object that
// owns the deployment context (pool, model, budget), the shared query
// monitor, and the selected distribution policy, and exposes the paper's
// full plan -> serve -> evaluate -> adapt lifecycle as methods.
//
// Build it with New and functional options:
//
//	engine, err := kairos.New(
//		kairos.WithPool(kairos.DefaultPool()),
//		kairos.WithModelName("RM2"),
//		kairos.WithBudget(2.5),
//		kairos.WithPolicy("kairos+warm"),
//	)
//
// Policies are resolved by name through the registry (see RegisterPolicy
// and Policies), so callers select them as data — e.g. from a -policy
// command-line flag — instead of hard-wiring constructors.
type Engine struct {
	pool     Pool
	model    Model
	hasModel bool
	budget   float64
	policy   string
	monitor  *Monitor
	batches  BatchDistribution
	samples  []int
	seed     int64

	replanThreshold float64
	drsThreshold    int
	partitions      int

	probeQueries  int
	precisionFrac float64

	// est caches the estimator while the planning snapshot is deterministic
	// (pinned by WithBatchSamples, or synthesized from the trace while the
	// monitor is still cold); once the monitor has observed traffic it is
	// re-read on every planning call so a drifting mix is never planned
	// from stale data.
	est *core.Estimator
}

// New assembles and validates an engine from functional options.
func New(opts ...Option) (*Engine, error) {
	e := &Engine{
		policy:  DefaultPolicy,
		batches: DefaultTrace(),
		seed:    42,
	}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("kairos: nil option")
		}
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	if len(e.pool) == 0 {
		return nil, fmt.Errorf("kairos: engine needs a pool (use WithPool)")
	}
	if !e.hasModel {
		return nil, fmt.Errorf("kairos: engine needs a model (use WithModel or WithModelName)")
	}
	if e.monitor == nil {
		e.monitor = NewMonitor()
	}
	return e, nil
}

// Pool returns the engine's instance pool.
func (e *Engine) Pool() Pool { return e.pool }

// Model returns the engine's served model.
func (e *Engine) Model() Model { return e.model }

// Budget returns the cost budget in $/hr (0 when unset).
func (e *Engine) Budget() float64 { return e.budget }

// Policy returns the selected policy's registry name.
func (e *Engine) Policy() string { return e.policy }

// Monitor returns the engine's shared query monitor. Distributors built by
// Serve feed it (when the policy supports a monitor), and Plan and Replan
// read it; callers may also warm it directly with Monitor.Observe.
func (e *Engine) Monitor() *Monitor { return e.monitor }

// policyContext assembles the registry context from the engine state.
func (e *Engine) policyContext(monitor *Monitor) PolicyContext {
	return PolicyContext{
		Pool:         e.pool,
		Model:        e.model,
		Monitor:      monitor,
		DRSThreshold: e.drsThreshold,
		Partitions:   e.partitions,
	}
}

// Serve builds the configured policy's distributor wired to the engine's
// shared monitor — the live serving path.
func (e *Engine) Serve() (Distributor, error) {
	return NewPolicy(e.policy, e.policyContext(e.monitor))
}

// Factory returns a DistributorFactory building fresh instances of the
// engine's policy per evaluation run, so stateful policies (online
// learners) never leak knowledge across probes. Evaluation-run policies do
// not feed the engine monitor. The factory panics if the policy factory
// errors; Evaluate and AllowableThroughput probe one construction first
// and surface the error instead.
func (e *Engine) Factory() DistributorFactory {
	ctx := e.policyContext(nil)
	name := e.policy
	return func() Distributor {
		d, err := NewPolicy(name, ctx)
		if err != nil {
			panic(err)
		}
		return d
	}
}

// evalFactory is the error-surfacing Factory used by the evaluation
// methods: it builds one throwaway distributor to catch factories that
// reject the evaluation context (e.g. a downstream policy requiring a
// monitor), which New cannot see because it never invokes the factory.
func (e *Engine) evalFactory() (DistributorFactory, error) {
	if _, err := NewPolicy(e.policy, e.policyContext(nil)); err != nil {
		return nil, err
	}
	return e.Factory(), nil
}

// monitorWarmed reports whether the monitor's view should drive planning.
func (e *Engine) monitorWarmed() bool {
	return e.samples == nil && e.monitor.Count() >= minPlanObservations
}

// planningSamples resolves the batch-size snapshot the planner consumes:
// the pinned WithBatchSamples snapshot, else the warmed monitor's view,
// else a synthetic draw from the engine's trace.
func (e *Engine) planningSamples() []int {
	if e.samples != nil {
		return e.samples
	}
	if e.monitorWarmed() {
		return e.monitor.Snapshot()
	}
	rng := rand.New(rand.NewSource(e.seed))
	out := make([]int, defaultPlanSamples)
	for i := range out {
		out[i] = e.batches.Sample(rng)
	}
	return out
}

// estimator builds the throughput upper-bound estimator (Sec. 5.2).
func (e *Engine) estimator() (*core.Estimator, error) {
	if e.monitorWarmed() {
		// Monitor-sourced: always plan from the live mix, and drop any
		// cold-start cache built before traffic arrived.
		e.est = nil
		return core.NewEstimator(e.pool, e.model, e.planningSamples(), core.EstimatorOptions{})
	}
	// Pinned samples or the deterministic synthetic fallback: cacheable.
	if e.est == nil {
		est, err := core.NewEstimator(e.pool, e.model, e.planningSamples(), core.EstimatorOptions{})
		if err != nil {
			return nil, err
		}
		e.est = est
	}
	return e.est, nil
}

// needBudget guards the planning methods.
func (e *Engine) needBudget() error {
	if e.budget <= 0 {
		return fmt.Errorf("kairos: planning needs a budget (use WithBudget)")
	}
	return nil
}

// Plan returns the one-shot configuration for the engine's budget from the
// current batch-size snapshot — no online exploration (Sec. 5.2).
func (e *Engine) Plan() (Config, error) {
	if err := e.needBudget(); err != nil {
		return nil, err
	}
	est, err := e.estimator()
	if err != nil {
		return nil, err
	}
	return est.Plan(e.budget), nil
}

// Rank returns every configuration within the engine's budget sorted by
// descending throughput upper bound.
func (e *Engine) Rank() ([]RankedConfig, error) {
	if err := e.needBudget(); err != nil {
		return nil, err
	}
	est, err := e.estimator()
	if err != nil {
		return nil, err
	}
	return est.Rank(e.budget), nil
}

// UpperBound estimates the throughput ceiling of one configuration
// (Eqs. 9-15).
func (e *Engine) UpperBound(cfg Config) (float64, error) {
	if err := e.validConfig(cfg); err != nil {
		return 0, err
	}
	est, err := e.estimator()
	if err != nil {
		return 0, err
	}
	return est.UpperBound(cfg), nil
}

// PlanPlus runs the Kairos+ pruning search (Algorithm 1) using eval as the
// expensive online measurement.
func (e *Engine) PlanPlus(eval func(Config) float64) (PlusResult, error) {
	ranked, err := e.Rank()
	if err != nil {
		return PlusResult{}, err
	}
	return core.KairosPlus(ranked, core.EvalFunc(eval)), nil
}

// validConfig checks a configuration against the engine's pool.
func (e *Engine) validConfig(cfg Config) error {
	return validateConfig(e.pool, cfg)
}

// spec assembles the simulation spec for a configuration.
func (e *Engine) spec(cfg Config) (sim.ClusterSpec, error) {
	if err := e.validConfig(cfg); err != nil {
		return sim.ClusterSpec{}, err
	}
	return sim.ClusterSpec{Pool: e.pool, Config: cfg, Model: e.model}, nil
}

// Evaluate simulates one run of cfg under a fresh instance of the engine's
// policy. Zero-valued RunOptions fields fall back to the engine's seed and
// trace.
func (e *Engine) Evaluate(cfg Config, opts RunOptions) (Result, error) {
	spec, err := e.spec(cfg)
	if err != nil {
		return Result{}, err
	}
	if opts.Seed == 0 {
		opts.Seed = e.seed
	}
	if opts.Batches == nil {
		opts.Batches = e.batches
	}
	factory, err := e.evalFactory()
	if err != nil {
		return Result{}, err
	}
	return sim.Run(spec, factory(), sim.Options{
		RatePerSec: opts.RatePerSec,
		DurationMS: opts.DurationMS,
		WarmupMS:   opts.WarmupMS,
		Seed:       opts.Seed,
		Batches:    opts.Batches,
	}), nil
}

// AllowableThroughput measures the paper's headline metric for cfg under
// the engine's policy: the maximum arrival rate whose p99 latency stays
// within the model's QoS target.
func (e *Engine) AllowableThroughput(cfg Config) (float64, error) {
	spec, err := e.spec(cfg)
	if err != nil {
		return 0, err
	}
	factory, err := e.evalFactory()
	if err != nil {
		return 0, err
	}
	return sim.FindAllowableThroughput(spec, factory, sim.FindOptions{
		ProbeQueries:  e.probeQueries,
		PrecisionFrac: e.precisionFrac,
		Seed:          e.seed,
		Batches:       e.batches,
	}), nil
}

// OracleThroughput evaluates the clairvoyant ORCL reference scheduler on
// cfg (Sec. 7).
func (e *Engine) OracleThroughput(cfg Config) (float64, error) {
	spec, err := e.spec(cfg)
	if err != nil {
		return 0, err
	}
	return sim.OracleThroughput(spec, sim.OracleOptions{
		Seed:    e.seed,
		Batches: e.batches,
	}), nil
}

// Replan arms the Fig. 12 adaptation loop on the engine's monitor: it
// plans an initial configuration from the monitored mix and returns a
// Replanner whose Check replans in one shot when the mix drifts past the
// engine's threshold (WithReplan). The monitor must already have observed
// traffic — serve through Serve's distributor or warm it directly.
func (e *Engine) Replan() (*Replanner, error) {
	if err := e.needBudget(); err != nil {
		return nil, err
	}
	if n := e.monitor.Count(); n < minPlanObservations {
		return nil, fmt.Errorf("kairos: replanning needs a warmed monitor (%d/%d observations)", n, minPlanObservations)
	}
	return adapt.NewReplanner(e.pool, e.model, e.budget, e.replanThreshold, e.monitor)
}
