package kairos_test

import (
	"fmt"
	"math/rand"
	"testing"

	"kairos/internal/cloud"
	"kairos/internal/core"
	"kairos/internal/experiments"
	"kairos/internal/models"
	"kairos/internal/pop"
	"kairos/internal/predictor"
	"kairos/internal/sim"
	"kairos/internal/workload"
)

// benchScale keeps per-iteration work bounded so `go test -bench=.`
// finishes in minutes; cmd/kairos-bench -scale full regenerates the
// paper-fidelity numbers.
func benchScale() experiments.Scale {
	return experiments.Scale{Seed: 42, ProbeQueries: 800, PrecisionFrac: 0.08,
		OracleQueries: 4000, MonitorSamples: 3000, Budget: 2.5}
}

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	scale := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, scale); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table/figure: running them regenerates every
// artifact of the evaluation at reduced fidelity.

func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }

func BenchmarkFig13(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Fig13(scale, 8)
	}
}

func BenchmarkFig14(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Fig14(scale, 6)
	}
}

func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }

// --- Sec. 6 overhead claims ---

// BenchmarkControllerMatching20x20 measures one full Kairos scheduling
// decision for 20 queries over 20 instances: L-matrix construction,
// coefficients, and the Jonker-Volgenant solve. The paper reports the
// matching plus network delay within 0.05ms.
func BenchmarkControllerMatching20x20(b *testing.B) {
	benchControllerMatching(b, 20, 20)
}

// BenchmarkControllerMatching200x20 covers "hundreds of queries arriving
// concurrently ... well within 1ms".
func BenchmarkControllerMatching200x20(b *testing.B) {
	benchControllerMatching(b, 200, 20)
}

func benchControllerMatching(b *testing.B, m, n int) {
	b.Helper()
	pool := cloud.DefaultPool()
	model := models.MustByName("RM2")
	names := make([]string, len(pool))
	for i, t := range pool {
		names[i] = t.Name
	}
	d := core.NewDistributor(core.DistributorOptions{
		QoS:       model.QoS,
		BaseType:  pool.Base().Name,
		Predictor: predictor.Warmed(model.Latency, names, []int{1, 500, 1000}),
	})
	rng := rand.New(rand.NewSource(1))
	mix := workload.DefaultTrace()
	waiting := make([]sim.QueryView, m)
	for i := range waiting {
		waiting[i] = sim.QueryView{Index: i, Batch: mix.Sample(rng)}
	}
	instances := make([]sim.InstanceView, n)
	for i := range instances {
		instances[i] = sim.InstanceView{Index: i, TypeName: names[i%len(names)]}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Assign(0, waiting, instances)
	}
}

// BenchmarkUpperBoundRanking measures ranking the paper's order-1000
// configuration space by upper bound; the paper budgets under 2 seconds
// for it (Sec. 5.2) and this implementation is orders of magnitude faster.
func BenchmarkUpperBoundRanking(b *testing.B) {
	env := experiments.NewEnv(benchScale(), cloud.DefaultPool(), models.MustByName("RM2"))
	samples := env.Samples()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := core.NewEstimator(cloud.DefaultPool(), models.MustByName("RM2"), samples, core.EstimatorOptions{})
		if err != nil {
			b.Fatal(err)
		}
		ranked := est.Rank(2.5)
		if len(ranked) < 500 {
			b.Fatalf("space size %d", len(ranked))
		}
	}
}

// BenchmarkSimulatorEvents measures the raw discrete-event engine rate.
func BenchmarkSimulatorEvents(b *testing.B) {
	spec := sim.ClusterSpec{
		Pool:   cloud.ThreeTypePool(),
		Config: cloud.Config{2, 1, 3},
		Model:  models.MustByName("RM2"),
	}
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		res := sim.Run(spec, sim.FCFSAny{}, sim.Options{
			RatePerSec: 60, DurationMS: 10000, Seed: int64(i),
		})
		total += res.TotalQueries
	}
	b.ReportMetric(float64(total)/float64(b.N), "queries/op")
}

// --- Design-choice ablations (DESIGN.md Sec. 3) ---

// ablationMeasure evaluates RM2 on a fixed heterogeneous configuration
// under a Kairos variant and reports the allowable throughput as a custom
// metric, so `-bench Ablation` doubles as a sensitivity study.
func ablationMeasure(b *testing.B, mutate func(*core.DistributorOptions)) {
	b.Helper()
	pool := cloud.DefaultPool()
	model := models.MustByName("RM2")
	names := make([]string, len(pool))
	for i, t := range pool {
		names[i] = t.Name
	}
	spec := sim.ClusterSpec{Pool: pool, Config: cloud.Config{1, 0, 13, 0}, Model: model}
	factory := func() sim.Distributor {
		opts := core.DistributorOptions{
			QoS:       model.QoS,
			BaseType:  pool.Base().Name,
			Predictor: predictor.Warmed(model.Latency, names, []int{1, 500, 1000}),
		}
		mutate(&opts)
		return core.NewDistributor(opts)
	}
	var qps float64
	for i := 0; i < b.N; i++ {
		qps = sim.FindAllowableThroughput(spec, factory, sim.FindOptions{
			ProbeQueries: 800, Seed: 42, PrecisionFrac: 0.08,
		})
	}
	b.ReportMetric(qps, "allowableQPS")
}

// BenchmarkAblationBaseline is the tuned default configuration.
func BenchmarkAblationBaseline(b *testing.B) {
	ablationMeasure(b, func(*core.DistributorOptions) {})
}

// BenchmarkAblationNoCoefficients drops Def. 1's heterogeneity weighting.
func BenchmarkAblationNoCoefficients(b *testing.B) {
	ablationMeasure(b, func(o *core.DistributorOptions) { o.DisableCoefficients = true })
}

// BenchmarkAblationPenalty2x weakens the Eq. 8 penalty from 10x to 2x.
func BenchmarkAblationPenalty2x(b *testing.B) {
	ablationMeasure(b, func(o *core.DistributorOptions) { o.PenaltyFactor = 2 })
}

// BenchmarkAblationPenalty100x strengthens the Eq. 8 penalty to 100x.
func BenchmarkAblationPenalty100x(b *testing.B) {
	ablationMeasure(b, func(o *core.DistributorOptions) { o.PenaltyFactor = 100 })
}

// BenchmarkAblationXi90 widens the noise safeguard from 2% to 10%.
func BenchmarkAblationXi90(b *testing.B) {
	ablationMeasure(b, func(o *core.DistributorOptions) { o.Xi = 0.90 })
}

// BenchmarkAblationNoAging removes the W_i starvation-avoidance term.
func BenchmarkAblationNoAging(b *testing.B) {
	ablationMeasure(b, func(o *core.DistributorOptions) { o.AgingFactor = -1 })
}

// BenchmarkAblationNoLateBinding lets the matching commit to any busy
// instance (the literal Eq. 4 setup).
func BenchmarkAblationNoLateBinding(b *testing.B) {
	ablationMeasure(b, func(o *core.DistributorOptions) { o.LateBindSlackMS = -1 })
}

// BenchmarkAblationDeepPending allows three queued queries per instance.
func BenchmarkAblationDeepPending(b *testing.B) {
	ablationMeasure(b, func(o *core.DistributorOptions) { o.MaxPending = 3 })
}

// BenchmarkAblationSimilarityMetric compares the one-shot pick under the
// Euclidean SSE criterion against the rejected cosine variant, reporting
// each pick's measured throughput.
func BenchmarkAblationSimilarityMetric(b *testing.B) {
	env := experiments.NewEnv(benchScale(), cloud.DefaultPool(), models.MustByName("RM2"))
	ranked := env.Estimator().Rank(2.5)
	var euclid, cos float64
	for i := 0; i < b.N; i++ {
		euclid = env.Measure(core.SelectOneShot(ranked), env.KairosFactory())
		cos = env.Measure(core.SelectOneShotCosine(ranked), env.KairosFactory())
	}
	b.ReportMetric(euclid, "euclideanQPS")
	b.ReportMetric(cos, "cosineQPS")
}

// BenchmarkPOPMatchingScaling compares one monolithic matching round
// against the POP-partitioned controller on a large round (Sec. 6's
// scaling remark): k partitions solve k much smaller assignments.
func BenchmarkPOPMatchingScaling(b *testing.B) {
	pool := cloud.DefaultPool()
	model := models.MustByName("RM2")
	names := make([]string, len(pool))
	for i, t := range pool {
		names[i] = t.Name
	}
	mkInner := func(int) sim.Distributor {
		return core.NewDistributor(core.DistributorOptions{
			QoS:       model.QoS,
			BaseType:  pool.Base().Name,
			Predictor: predictor.Warmed(model.Latency, names, []int{1, 500, 1000}),
		})
	}
	rng := rand.New(rand.NewSource(9))
	mix := workload.DefaultTrace()
	const nq, ni = 128, 64
	waiting := make([]sim.QueryView, nq)
	for i := range waiting {
		waiting[i] = sim.QueryView{Index: i, ID: i, Batch: mix.Sample(rng)}
	}
	instances := make([]sim.InstanceView, ni)
	for i := range instances {
		instances[i] = sim.InstanceView{Index: i, TypeName: names[i%len(names)]}
	}
	for _, k := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("partitions=%d", k), func(b *testing.B) {
			d := pop.NewPartitioned(k, mkInner)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.Assign(0, waiting, instances)
			}
		})
	}
}
