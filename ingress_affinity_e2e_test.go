package kairos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"
)

// sessionSubmit posts one session-keyed query to the HTTP ingress.
func sessionSubmit(client *http.Client, url, model, session string, batch int) error {
	body, _ := json.Marshal(map[string]any{"model": model, "batch": batch, "session": session})
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var rep struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK || rep.Error != "" {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, rep.Error)
	}
	return nil
}

// TestIngressSessionAffinityEndToEnd proves the session-affine front
// door end to end: repeat-session queries land on one instance (read
// from the controller's per-instance counters, keyed by address), a
// mid-run mix shift replans the fleet under live session traffic with
// zero drops, and the rebuilt affinity ring is sticky again afterwards.
// Guarded by -short; CI runs it under -race.
func TestIngressSessionAffinityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping session-affinity ingress e2e in -short mode")
	}
	t.Parallel()
	e := multiEngine(t) // NCF + MT-WND, shared $0.9/hr

	ap, err := e.Autopilot(1, AutopilotOptions{
		Interval:        25 * time.Millisecond,
		Cooldown:        50 * time.Millisecond,
		Window:          300,
		MinObservations: 100,
	},
		WithIngress("127.0.0.1:0", "127.0.0.1:0"),
		WithIngressQueue(8192),
		WithIngressShards(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()
	ap.Start()

	if n := len(ap.Controller().Stats().Models["NCF"].Instances); n < 2 {
		t.Fatalf("initial plan serves NCF on %d instance(s); affinity needs a choice", n)
	}

	ing := ap.Ingress()
	url := "http://" + ing.HTTPAddr() + "/submit"
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}

	// ncfCompleted snapshots per-instance completion counters by address
	// — the only instance identity that survives type duplicates.
	ncfCompleted := func() map[string]int64 {
		m := make(map[string]int64)
		for _, is := range ap.Controller().Stats().Models["NCF"].Instances {
			m[is.Addr] = is.Completed
		}
		return m
	}
	// stickiness sends n sequential queries per session and asserts each
	// session's traffic landed on exactly one instance. Sequential: with
	// at most one outstanding query, the bounded-load check always admits
	// the preferred instance, so affinity must be perfect here.
	stickiness := func(label string, sessions []string, n int) {
		t.Helper()
		for _, sess := range sessions {
			before := ncfCompleted()
			for i := 0; i < n; i++ {
				if err := sessionSubmit(client, url, "NCF", sess, 20+i%10); err != nil {
					t.Fatalf("%s: session %q query %d dropped: %v", label, sess, i, err)
				}
			}
			// The last completion races the stats snapshot; poll briefly.
			deadline := time.Now().Add(5 * time.Second)
			for {
				after := ncfCompleted()
				total, hot := int64(0), 0
				for addr, c := range after {
					if d := c - before[addr]; d > 0 {
						total += d
						hot++
					}
				}
				if total >= int64(n) {
					if hot != 1 {
						t.Fatalf("%s: session %q spread %d queries over %d instances (want 1): before=%v after=%v",
							label, sess, total, hot, before, after)
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("%s: session %q: only %d/%d completions visible", label, sess, total, n)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}

	// Phase 1: the fresh ring is sticky for every session.
	stickiness("phase-1", []string{"alice", "bob", "carol"}, 30)

	// Phase 2: MT-WND shifts to GPU-sized batches, forcing a replan of
	// the live fleet, while session traffic keeps flowing. Nothing may
	// drop while instances are swapped under the ring.
	largeB := Uniform(500, 800)
	rng := rand.New(rand.NewSource(17))
	var wg sync.WaitGroup
	errs := make(chan error, 4096)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var inner sync.WaitGroup
		for i := 0; i < 180; i++ {
			inner.Add(1)
			go func(batch int) {
				defer inner.Done()
				if err := httpSubmit(client, url, "MT-WND", batch); err != nil {
					errs <- err
				}
			}(largeB.Sample(rng))
			time.Sleep(8 * time.Millisecond)
		}
		inner.Wait()
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 120; i++ {
			if err := sessionSubmit(client, url, "NCF", "alice", 20+i%10); err != nil {
				errs <- err
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("query dropped during the replan phase: %v", err)
	}

	deadline := time.Now().Add(20 * time.Second)
	for ap.Replans() == 0 && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	if ap.Replans() == 0 {
		t.Fatal("the autopilot never replanned after the mix shift")
	}

	// Phase 3: the ring was rebuilt from the reshaped fleet; sessions are
	// sticky again (not necessarily on their old instances). The TCP
	// transport's session path gets a spot check alongside.
	stickiness("post-replan", []string{"alice", "dave"}, 30)
	cli, err := DialIngress(ing.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	before := ncfCompleted()
	for i := 0; i < 20; i++ {
		rep, err := cli.SubmitOpts("NCF", 20+i, IngressSubmitOptions{Session: "tcp-session"})
		if err != nil || rep.Err != "" {
			t.Fatalf("binary-TCP session query %d dropped: rep=%+v err=%v", i, rep, err)
		}
	}
	after := ncfCompleted()
	hot := 0
	for addr, c := range after {
		if c-before[addr] > 0 {
			hot++
		}
	}
	if hot != 1 {
		t.Fatalf("TCP session spread over %d instances (want 1): before=%v after=%v", hot, before, after)
	}

	// Zero drops across the whole run: every externally admitted query
	// completed, nothing rejected, nothing failed.
	st := ap.Controller().Stats()
	if st.Failed != 0 {
		t.Fatalf("%d queries dropped across the replan", st.Failed)
	}
	for _, model := range []string{"NCF", "MT-WND"} {
		is, ok := st.Ingress[model]
		if !ok {
			t.Fatalf("controller stats missing ingress section for %s", model)
		}
		if is.Rejected != 0 || is.RateLimited != 0 || is.Failed != 0 || is.Completed != is.Submitted || is.Queue != 0 {
			t.Fatalf("%s ingress accounting shows drops: %+v", model, is)
		}
	}
}
