package kairos

import (
	"math/rand"
	"testing"
)

func sampleBatches(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	d := DefaultTrace()
	out := make([]int, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

func TestFacadeCatalogs(t *testing.T) {
	if len(DefaultPool()) != 4 {
		t.Fatal("default pool must have 4 types")
	}
	if len(Models()) != 5 {
		t.Fatal("catalog must have 5 models")
	}
	if _, err := ModelByName("RM2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestFacadePlannerPipeline(t *testing.T) {
	t.Parallel()
	pool := DefaultPool()
	m, _ := ModelByName("RM2")
	p, err := NewPlanner(pool, m, sampleBatches(5000, 1))
	if err != nil {
		t.Fatal(err)
	}
	pick := p.Plan(2.5)
	if pick == nil || pick.Total() == 0 {
		t.Fatalf("pick = %v", pick)
	}
	if !pool.WithinBudget(pick, 2.5) {
		t.Fatalf("pick %v exceeds budget", pick)
	}
	ranked := p.Rank(2.5)
	if len(ranked) < 100 {
		t.Fatalf("ranking size %d", len(ranked))
	}
	if p.UpperBound(pick) <= 0 {
		t.Fatal("pick upper bound must be positive")
	}
	// Kairos+ over a synthetic evaluator terminates and returns a best.
	res := p.PlanPlus(2.5, func(c Config) float64 { return p.UpperBound(c) * 0.9 })
	if res.Best == nil || res.Evaluations == 0 {
		t.Fatalf("PlanPlus = %+v", res)
	}
}

func TestFacadePlannerRejectsEmptySamples(t *testing.T) {
	if _, err := NewPlanner(DefaultPool(), Models()[0], nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestFacadeClusterLifecycle(t *testing.T) {
	t.Parallel()
	pool := DefaultPool()
	m, _ := ModelByName("DIEN")
	if _, err := NewCluster(pool, Config{1, 0}, m); err == nil {
		t.Fatal("mismatched config must error")
	}
	if _, err := NewCluster(pool, Config{0, 0, 0, 0}, m); err == nil {
		t.Fatal("empty config must error")
	}
	cl, err := NewCluster(pool, Config{2, 0, 4, 0}, m)
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor()
	res := cl.Run(NewWarmedKairosDistributor(pool, m, mon), RunOptions{
		RatePerSec: 50, DurationMS: 20000, WarmupMS: 4000, Seed: 3,
	})
	if res.Measured.Count == 0 {
		t.Fatal("nothing measured")
	}
	if mon.Count() == 0 {
		t.Fatal("monitor not fed by served queries")
	}
	if qps := cl.AllowableThroughput(func() Distributor {
		return NewWarmedKairosDistributor(pool, m, nil)
	}, 3); qps <= 0 {
		t.Fatal("allowable throughput must be positive")
	}
	if cl.OracleThroughput(3) <= 0 {
		t.Fatal("oracle throughput must be positive")
	}
}

func TestFacadeColdStartDistributorLearns(t *testing.T) {
	t.Parallel()
	pool := DefaultPool()
	m, _ := ModelByName("RM2")
	cl, err := NewCluster(pool, Config{2, 0, 4, 0}, m)
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Run(NewKairosDistributor(pool, m, nil), RunOptions{
		RatePerSec: 20, DurationMS: 60000, WarmupMS: 20000, Seed: 4,
	})
	if !res.MeetsQoS {
		t.Fatalf("cold-start Kairos did not converge: p99=%.1f", res.P99)
	}
}

func TestFacadeBaselinesOrdering(t *testing.T) {
	t.Parallel()
	pool := DefaultPool()
	m, _ := ModelByName("RM2")
	cl, err := NewCluster(pool, Config{2, 0, 6, 0}, m)
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(5)
	kairos := cl.AllowableThroughput(func() Distributor {
		return NewWarmedKairosDistributor(pool, m, nil)
	}, seed)
	ribbon := cl.AllowableThroughput(Static(NewRibbonDistributor(pool, m)), seed)
	clkwrk := cl.AllowableThroughput(Static(NewClockworkDistributor(pool, m)), seed)
	drs := cl.AllowableThroughput(Static(NewDRSDistributor(pool, m, 200)), seed)
	orcl := cl.OracleThroughput(seed)
	if !(kairos > ribbon) {
		t.Errorf("KAIROS (%.1f) must beat RIBBON (%.1f)", kairos, ribbon)
	}
	if !(kairos >= clkwrk*0.98) {
		t.Errorf("KAIROS (%.1f) must not trail CLKWRK (%.1f)", kairos, clkwrk)
	}
	if orcl < kairos {
		t.Errorf("ORCL (%.1f) must dominate KAIROS (%.1f)", orcl, kairos)
	}
	if drs <= 0 {
		t.Error("DRS must have positive throughput")
	}
}
