package kairos

import (
	"math/rand"
	"testing"
)

func sampleBatches(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	d := DefaultTrace()
	out := make([]int, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// policyOrDie resolves a registry policy for tests that drive Cluster
// directly with mixed policies.
func policyOrDie(t *testing.T, name string, ctx PolicyContext) Distributor {
	t.Helper()
	d, err := NewPolicy(name, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFacadeCatalogs(t *testing.T) {
	if len(DefaultPool()) != 4 {
		t.Fatal("default pool must have 4 types")
	}
	if len(Models()) != 5 {
		t.Fatal("catalog must have 5 models")
	}
	if _, err := ModelByName("RM2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestFacadeClusterLifecycle(t *testing.T) {
	t.Parallel()
	pool := DefaultPool()
	m, _ := ModelByName("DIEN")
	if _, err := NewCluster(pool, Config{1, 0}, m); err == nil {
		t.Fatal("mismatched config must error")
	}
	if _, err := NewCluster(pool, Config{0, 0, 0, 0}, m); err == nil {
		t.Fatal("empty config must error")
	}
	cl, err := NewCluster(pool, Config{2, 0, 4, 0}, m)
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor()
	res := cl.Run(policyOrDie(t, "kairos+warm", PolicyContext{Pool: pool, Model: m, Monitor: mon}), RunOptions{
		RatePerSec: 50, DurationMS: 20000, WarmupMS: 4000, Seed: 3,
	})
	if res.Measured.Count == 0 {
		t.Fatal("nothing measured")
	}
	if mon.Count() == 0 {
		t.Fatal("monitor not fed by served queries")
	}
	if qps := cl.AllowableThroughput(func() Distributor {
		return policyOrDie(t, "kairos+warm", PolicyContext{Pool: pool, Model: m})
	}, 3); qps <= 0 {
		t.Fatal("allowable throughput must be positive")
	}
	if cl.OracleThroughput(3) <= 0 {
		t.Fatal("oracle throughput must be positive")
	}
}

func TestFacadeColdStartDistributorLearns(t *testing.T) {
	t.Parallel()
	pool := DefaultPool()
	m, _ := ModelByName("RM2")
	cl, err := NewCluster(pool, Config{2, 0, 4, 0}, m)
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Run(policyOrDie(t, "kairos", PolicyContext{Pool: pool, Model: m}), RunOptions{
		RatePerSec: 20, DurationMS: 60000, WarmupMS: 20000, Seed: 4,
	})
	if !res.MeetsQoS {
		t.Fatalf("cold-start Kairos did not converge: p99=%.1f", res.P99)
	}
}

func TestFacadeBaselinesOrdering(t *testing.T) {
	t.Parallel()
	pool := DefaultPool()
	m, _ := ModelByName("RM2")
	cl, err := NewCluster(pool, Config{2, 0, 6, 0}, m)
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(5)
	ctx := PolicyContext{Pool: pool, Model: m}
	kairos := cl.AllowableThroughput(func() Distributor {
		return policyOrDie(t, "kairos+warm", ctx)
	}, seed)
	ribbon := cl.AllowableThroughput(Static(policyOrDie(t, "ribbon", ctx)), seed)
	clkwrk := cl.AllowableThroughput(Static(policyOrDie(t, "clockwork", ctx)), seed)
	drs := cl.AllowableThroughput(Static(policyOrDie(t, "drs", PolicyContext{Pool: pool, Model: m, DRSThreshold: 200})), seed)
	orcl := cl.OracleThroughput(seed)
	if !(kairos > ribbon) {
		t.Errorf("KAIROS (%.1f) must beat RIBBON (%.1f)", kairos, ribbon)
	}
	if !(kairos >= clkwrk*0.98) {
		t.Errorf("KAIROS (%.1f) must not trail CLKWRK (%.1f)", kairos, clkwrk)
	}
	if orcl < kairos {
		t.Errorf("ORCL (%.1f) must dominate KAIROS (%.1f)", orcl, kairos)
	}
	if drs <= 0 {
		t.Error("DRS must have positive throughput")
	}
}
