package kairos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

// buildKairosd compiles cmd/kairosd into a temp dir for the exec
// actuation provider. Root-package tests run from the module root, so the
// relative package path resolves.
func buildKairosd(t *testing.T) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH; cannot build kairosd for the exec e2e test")
	}
	bin := filepath.Join(t.TempDir(), "kairosd")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command(goBin, "build", "-o", bin, "./cmd/kairosd")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building kairosd: %v\n%s", err, out)
	}
	return bin
}

// httpSubmit posts one query to the HTTP ingress; a non-200 status or a
// body-level error both count as failures.
func httpSubmit(client *http.Client, url, model string, batch int) error {
	body, _ := json.Marshal(map[string]any{"model": model, "batch": batch})
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var rep struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK || rep.Error != "" {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, rep.Error)
	}
	return nil
}

// TestAutopilotOptionValidation: misconfigured topology options fail
// before anything launches — in exec mode a late failure would orphan
// real processes.
func TestAutopilotOptionValidation(t *testing.T) {
	t.Parallel()
	e := multiEngine(t)
	if _, err := e.Autopilot(1, AutopilotOptions{}, nil); err == nil {
		t.Fatal("nil option must error")
	}
	if _, err := e.Autopilot(1, AutopilotOptions{}, WithProvider(nil)); err == nil {
		t.Fatal("nil provider must error")
	}
	if _, err := e.Autopilot(1, AutopilotOptions{}, WithIngress("", "")); err == nil {
		t.Fatal("WithIngress without addresses must error")
	}
	if _, err := e.Autopilot(1, AutopilotOptions{}, WithIngressQueue(0)); err == nil {
		t.Fatal("non-positive ingress queue must error")
	}
	if _, err := e.Autopilot(1, AutopilotOptions{}, WithIngressQueue(64)); err == nil {
		t.Fatal("WithIngressQueue without WithIngress must error, not be silently dropped")
	}
	if _, err := e.Autopilot(1, AutopilotOptions{OnDemandFloor: -0.5}); err == nil {
		t.Fatal("negative on-demand floor must error")
	}
	// A provider whose time dilation disagrees with the autopilot's would
	// skew every rate reading; the mismatch is caught before launch.
	models := e.Models()
	if _, err := e.Autopilot(1, AutopilotOptions{}, WithProvider(NewFleet(0.5, models...))); err == nil {
		t.Fatal("provider/autopilot time-scale mismatch must error")
	}
}

// TestExecFleetIngressEndToEnd is the externalized-control-plane
// acceptance run: the autopilot exec-launches a 2-model fleet of real
// kairosd processes, external traffic arrives only through the HTTP
// ingress (plus a binary-TCP spot check), a mid-run mix shift forces a
// fleet replan — real processes SIGTERM'd and spawned under live load —
// and not one externally submitted query is dropped across the
// actuation. Guarded by -short; CI runs it under -race.
func TestExecFleetIngressEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping exec-fleet ingress e2e in -short mode")
	}
	t.Parallel()
	bin := buildKairosd(t)
	pool := DefaultPool()
	e := multiEngine(t) // NCF + MT-WND, shared $0.9/hr, small reference mixes

	ap, err := e.Autopilot(1, AutopilotOptions{
		Interval:        25 * time.Millisecond,
		Cooldown:        50 * time.Millisecond,
		Window:          300,
		MinObservations: 100,
	},
		WithProvider(NewExecFleet(bin, 1, "NCF", "MT-WND")),
		WithIngress("127.0.0.1:0", "127.0.0.1:0"),
		WithIngressQueue(8192),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()
	ap.Start()

	initial := ap.Current()
	if initial["NCF"].Total() == 0 || initial["MT-WND"].Total() == 0 {
		t.Fatalf("initial plan must serve both models: %v", initial)
	}
	if initial["MT-WND"].Base() != 0 {
		t.Fatalf("initial plan %v already owns the GPU; the shift would be invisible", initial)
	}
	// The fleet really is external processes: the provider tracks them.
	ef := ap.Provider().(*ExecFleet)
	if got := ef.Size(); got != initial.Total() {
		t.Fatalf("exec provider runs %d processes, plan wants %d", got, initial.Total())
	}

	ing := ap.Ingress()
	if ing == nil || ing.HTTPAddr() == "" || ing.TCPAddr() == "" {
		t.Fatal("ingress endpoints missing")
	}
	url := "http://" + ing.HTTPAddr() + "/submit"
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}

	smallA, smallB, largeB := Uniform(10, 60), Uniform(10, 80), Uniform(500, 800)
	var seed int64 = 11
	var seedMu sync.Mutex
	nextRNG := func() *rand.Rand {
		seedMu.Lock()
		defer seedMu.Unlock()
		seed++
		return rand.New(rand.NewSource(seed))
	}
	// send drives n external HTTP queries for one model, paced gapMS
	// apart, and returns the per-query errors.
	send := func(wg *sync.WaitGroup, errs chan<- error, model string, mix BatchDistribution, n int, gapMS float64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := nextRNG()
			var inner sync.WaitGroup
			for i := 0; i < n; i++ {
				inner.Add(1)
				go func(batch int) {
					defer inner.Done()
					if err := httpSubmit(client, url, model, batch); err != nil {
						errs <- fmt.Errorf("%s: %w", model, err)
					}
				}(mix.Sample(rng))
				time.Sleep(time.Duration(gapMS * float64(time.Millisecond)))
			}
			inner.Wait()
		}()
	}
	phase := func(label string, run func(wg *sync.WaitGroup, errs chan<- error)) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, 4096)
		run(&wg, errs)
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("%s query dropped: %v", label, err)
		}
	}

	// Phase 1: both models steady on their reference mixes, all traffic
	// external.
	phase("phase-1", func(wg *sync.WaitGroup, errs chan<- error) {
		send(wg, errs, "NCF", smallA, 120, 1)
		send(wg, errs, "MT-WND", smallB, 100, 2)
	})

	// Phase 2: MT-WND shifts to GPU-only batches; the drift trigger must
	// replan the fleet of real processes under this live external load.
	phase("phase-2", func(wg *sync.WaitGroup, errs chan<- error) {
		send(wg, errs, "NCF", smallA, 80, 2)
		send(wg, errs, "MT-WND", largeB, 180, 8)
	})

	deadline := time.Now().Add(20 * time.Second)
	for ap.Replans() == 0 && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	if ap.Replans() == 0 {
		t.Fatal("the autopilot never replanned after the mix shift")
	}

	// Post-replan traffic proves the reshaped process fleet serves, over
	// both transports.
	phase("post-replan", func(wg *sync.WaitGroup, errs chan<- error) {
		send(wg, errs, "MT-WND", largeB, 25, 8)
		send(wg, errs, "NCF", smallA, 25, 2)
	})
	cli, err := DialIngress(ing.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 5; i++ {
		if rep, err := cli.Submit("NCF", 20+i); err != nil || rep.Err != "" {
			t.Fatalf("binary-TCP query %d dropped: rep=%+v err=%v", i, rep, err)
		}
	}

	now := ap.Current()
	if now["MT-WND"].Base() == 0 {
		t.Fatalf("shifted plan %v did not buy MT-WND the GPU", now)
	}
	if got := now.Cost(pool); got > e.Budget()+1e-9 {
		t.Fatalf("fleet plan %v busts the shared budget at $%.3f/hr", now, got)
	}
	// The exec fleet converged to the plan.
	if got := ef.Size(); got != now.Total() {
		t.Fatalf("exec provider runs %d processes, plan wants %d", got, now.Total())
	}

	// The acceptance bar: zero dropped queries across actuation — every
	// externally admitted query completed, nothing rejected, nothing
	// failed, front-end and controller accounting in agreement.
	st := ap.Controller().Stats()
	if st.Failed != 0 {
		t.Fatalf("%d queries dropped during the replan of real processes", st.Failed)
	}
	for _, model := range []string{"NCF", "MT-WND"} {
		is, ok := st.Ingress[model]
		if !ok {
			t.Fatalf("controller stats missing ingress section for %s", model)
		}
		if is.Rejected != 0 || is.Failed != 0 || is.Completed != is.Submitted || is.Queue != 0 {
			t.Fatalf("%s ingress accounting shows drops: %+v", model, is)
		}
	}
	status := ap.Status()
	if !status.Healthy || !status.Ingress.Enabled || status.Plan.Replans == 0 {
		t.Fatalf("status = %+v", status)
	}
}
