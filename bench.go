package kairos

import "kairos/internal/experiments"

// ExperimentScale bundles the fidelity knobs shared by the paper-replay
// experiments (cmd/kairos-bench).
type ExperimentScale = experiments.Scale

// QuickScale trades precision for speed; used by benchmarks and CI.
func QuickScale() ExperimentScale { return experiments.QuickScale() }

// FullScale is the paper-fidelity setting.
func FullScale() ExperimentScale { return experiments.FullScale() }

// ExperimentIDs lists the registered experiment identifiers (the paper's
// table and figure numbers) in stable order.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one of the paper's tables or figures and
// returns its rendered output.
func RunExperiment(id string, scale ExperimentScale) (string, error) {
	out, err := experiments.Run(id, scale)
	if err != nil {
		return "", err
	}
	return out.String(), nil
}
