package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileNearestRank(t *testing.T) {
	samples := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    float64
		want float64
	}{
		{10, 10},
		{50, 50},
		{90, 90},
		{99, 100},
		{100, 100},
		{1, 10},
	}
	for _, tc := range cases {
		if got := Percentile(samples, tc.p); got != tc.want {
			t.Errorf("P%v = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	samples := []float64{3, 1, 2}
	Percentile(samples, 50)
	if samples[0] != 3 || samples[1] != 1 || samples[2] != 2 {
		t.Fatalf("input mutated: %v", samples)
	}
}

func TestPercentileEmpty(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 99)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, -5, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for p=%v", p)
				}
			}()
			Percentile([]float64{1}, p)
		}()
	}
}

func TestRecorderMatchesFreeFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := NewLatencyRecorder(0)
	var all []float64
	for i := 0; i < 1000; i++ {
		v := rng.ExpFloat64() * 100
		r.Record(v)
		all = append(all, v)
	}
	for _, p := range []float64{1, 25, 50, 75, 95, 99, 100} {
		if got, want := r.Percentile(p), Percentile(all, p); got != want {
			t.Errorf("P%v: recorder %v, free %v", p, got, want)
		}
	}
	if r.Count() != 1000 {
		t.Errorf("Count = %d", r.Count())
	}
}

func TestRecorderInterleavedRecordAndRead(t *testing.T) {
	r := NewLatencyRecorder(4)
	r.Record(5)
	if got := r.Percentile(99); got != 5 {
		t.Fatalf("P99 after one sample = %v", got)
	}
	r.Record(1) // must invalidate cached sort
	if got := r.Percentile(50); got != 1 {
		t.Fatalf("P50 = %v, want 1", got)
	}
	if got := r.Max(); got != 5 {
		t.Fatalf("Max = %v, want 5", got)
	}
}

func TestViolationRate(t *testing.T) {
	r := NewLatencyRecorder(0)
	for _, v := range []float64{10, 20, 30, 40, 50} {
		r.Record(v)
	}
	if got := r.ViolationRate(30); got != 0.4 {
		t.Fatalf("ViolationRate(30) = %v, want 0.4 (boundary counts as meeting QoS)", got)
	}
	if got := r.ViolationRate(100); got != 0 {
		t.Fatalf("ViolationRate(100) = %v, want 0", got)
	}
	if got := r.ViolationRate(0); got != 1 {
		t.Fatalf("ViolationRate(0) = %v, want 1", got)
	}
}

func TestMeetsQoSConsistentWithViolationRate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		r := NewLatencyRecorder(0)
		n := local.Intn(500) + 1
		for i := 0; i < n; i++ {
			r.Record(rng.Float64() * 100)
		}
		qos := rng.Float64() * 100
		// p99 <= qos  <=>  violation rate <= 1%.
		meets := r.MeetsQoS(qos, 99)
		rate := r.ViolationRate(qos)
		if meets && rate > 0.01+1e-12 {
			return false
		}
		if !meets && rate <= 0.01-1.0/float64(n) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeetsQoSEmpty(t *testing.T) {
	r := NewLatencyRecorder(0)
	if !r.MeetsQoS(10, 99) {
		t.Fatal("empty recorder trivially meets QoS")
	}
}

func TestReset(t *testing.T) {
	r := NewLatencyRecorder(0)
	r.Record(1)
	r.Reset()
	if r.Count() != 0 {
		t.Fatal("Reset did not clear samples")
	}
	if !math.IsNaN(r.Mean()) {
		t.Fatal("Mean after reset should be NaN")
	}
}

func TestSummary(t *testing.T) {
	r := NewLatencyRecorder(0)
	for i := 1; i <= 100; i++ {
		r.Record(float64(i))
	}
	s := r.Summarize()
	if s.Count != 100 || s.P50 != 50 || s.P99 != 99 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

// TestPercentileMonotoneInP checks P(a) <= P(b) for a <= b on random data.
func TestPercentileMonotoneInP(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	samples := make([]float64, 257)
	for i := range samples {
		samples[i] = rng.NormFloat64()
	}
	sort.Float64s(samples)
	prev := math.Inf(-1)
	for p := 1.0; p <= 100; p += 0.5 {
		v := Percentile(samples, p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v", p)
		}
		prev = v
	}
	if Percentile(samples, 100) != samples[len(samples)-1] {
		t.Fatal("P100 must be the max")
	}
}

func TestWindowRolls(t *testing.T) {
	w := NewWindow(4)
	if w.Len() != 0 || !math.IsNaN(w.Percentile(99)) || !math.IsNaN(w.Mean()) {
		t.Fatal("empty window must report NaN percentiles")
	}
	for i := 1; i <= 4; i++ {
		w.Observe(float64(i))
	}
	if w.Full() || w.Len() != 4 || w.Mean() != 2.5 {
		t.Fatalf("filled window: len=%d full=%v mean=%v", w.Len(), w.Full(), w.Mean())
	}
	// Two more observations evict the two oldest: window is {3,4,5,6}.
	w.Observe(5)
	w.Observe(6)
	if !w.Full() || w.Len() != 4 || w.Total() != 6 {
		t.Fatalf("len=%d full=%v total=%d after rolling", w.Len(), w.Full(), w.Total())
	}
	if got := w.Mean(); got != 4.5 {
		t.Fatalf("rolled mean = %v, want 4.5 (oldest evicted)", got)
	}
	if got := w.Percentile(50); got != 4 {
		t.Fatalf("rolled p50 = %v, want 4", got)
	}
	if got := w.Percentile(100); got != 6 {
		t.Fatalf("rolled p100 = %v, want 6", got)
	}
	snap := w.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot length %d", len(snap))
	}
	w.Reset()
	if w.Len() != 0 || w.Total() != 0 || w.Full() {
		t.Fatal("reset must clear the window")
	}
}

func TestWindowRejectsBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindow(0) must panic")
		}
	}()
	NewWindow(0)
}
