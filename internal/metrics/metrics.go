// Package metrics provides the latency/throughput accounting used by the
// serving simulator and the network controller: percentile computation with
// the nearest-rank method (the paper's QoS is a 99th-percentile tail-latency
// target) and violation-rate bookkeeping.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 < p <= 100) of the samples using
// the nearest-rank method: the smallest value v such that at least p% of
// samples are <= v. It sorts a copy; the input is not modified.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v outside (0,100]", p))
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// LatencyRecorder accumulates per-query latencies and answers tail-latency
// questions. It is not safe for concurrent use; the simulator is
// single-threaded per run and the network controller guards it with a lock.
type LatencyRecorder struct {
	samples []float64
	sorted  bool
}

// NewLatencyRecorder returns an empty recorder with the given capacity hint.
func NewLatencyRecorder(capacityHint int) *LatencyRecorder {
	return &LatencyRecorder{samples: make([]float64, 0, capacityHint)}
}

// Record adds one end-to-end query latency (milliseconds).
func (r *LatencyRecorder) Record(latencyMS float64) {
	r.samples = append(r.samples, latencyMS)
	r.sorted = false
}

// Count returns the number of recorded samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// ensureSorted keeps an amortized sorted view for repeated percentile reads.
func (r *LatencyRecorder) ensureSorted() {
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
}

// Percentile returns the p-th percentile of the recorded latencies, or NaN
// if no samples were recorded.
func (r *LatencyRecorder) Percentile(p float64) float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v outside (0,100]", p))
	}
	r.ensureSorted()
	rank := int(math.Ceil(p / 100 * float64(len(r.samples))))
	if rank < 1 {
		rank = 1
	}
	return r.samples[rank-1]
}

// Mean returns the average latency, or NaN if empty.
func (r *LatencyRecorder) Mean() float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range r.samples {
		sum += v
	}
	return sum / float64(len(r.samples))
}

// Max returns the largest latency, or NaN if empty.
func (r *LatencyRecorder) Max() float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	r.ensureSorted()
	return r.samples[len(r.samples)-1]
}

// ViolationRate returns the fraction of samples strictly above the QoS
// target.
func (r *LatencyRecorder) ViolationRate(qos float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	// First index with sample > qos.
	idx := sort.SearchFloat64s(r.samples, math.Nextafter(qos, math.Inf(1)))
	return float64(len(r.samples)-idx) / float64(len(r.samples))
}

// MeetsQoS reports whether the paper's service condition holds: the p-th
// percentile latency is within the QoS target.
func (r *LatencyRecorder) MeetsQoS(qos, p float64) bool {
	if len(r.samples) == 0 {
		return true
	}
	return r.Percentile(p) <= qos
}

// Reset discards all samples, retaining capacity.
func (r *LatencyRecorder) Reset() {
	r.samples = r.samples[:0]
	r.sorted = false
}

// Window is a fixed-capacity rolling window over latency samples: the
// live-path counterpart of LatencyRecorder, keeping only the most recent
// capacity observations so tail-latency answers track the current traffic
// instead of the whole run (the autopilot's SLO trigger reads it). Like
// LatencyRecorder it is not safe for concurrent use; callers guard it.
type Window struct {
	buf   []float64
	next  int
	full  bool
	total int64
}

// NewWindow returns an empty rolling window holding the most recent
// capacity samples. It panics on a non-positive capacity.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic(fmt.Sprintf("metrics: window capacity %d must be positive", capacity))
	}
	return &Window{buf: make([]float64, 0, capacity)}
}

// Observe records one sample, evicting the oldest once full.
func (w *Window) Observe(v float64) {
	w.total++
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, v)
		return
	}
	w.full = true
	w.buf[w.next] = v
	w.next = (w.next + 1) % cap(w.buf)
}

// Len returns the number of samples currently held (<= capacity).
func (w *Window) Len() int { return len(w.buf) }

// Full reports whether the window has wrapped at least once.
func (w *Window) Full() bool { return w.full }

// Total returns the number of samples ever observed, including evicted
// ones.
func (w *Window) Total() int64 { return w.total }

// Snapshot returns a copy of the held samples in unspecified order.
func (w *Window) Snapshot() []float64 {
	out := make([]float64, len(w.buf))
	copy(out, w.buf)
	return out
}

// Percentile returns the p-th percentile of the held samples, or NaN when
// empty.
func (w *Window) Percentile(p float64) float64 { return Percentile(w.buf, p) }

// Mean returns the average of the held samples, or NaN when empty.
func (w *Window) Mean() float64 {
	if len(w.buf) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range w.buf {
		sum += v
	}
	return sum / float64(len(w.buf))
}

// Reset discards the held samples and the total count.
func (w *Window) Reset() {
	w.buf = w.buf[:0]
	w.next = 0
	w.full = false
	w.total = 0
}

// Summary is a compact distribution digest for reporting.
type Summary struct {
	Count          int
	Mean, P50, P95 float64
	P99, Max       float64
}

// Summarize returns the digest of the recorder's samples.
func (r *LatencyRecorder) Summarize() Summary {
	if len(r.samples) == 0 {
		return Summary{}
	}
	return Summary{
		Count: len(r.samples),
		Mean:  r.Mean(),
		P50:   r.Percentile(50),
		P95:   r.Percentile(95),
		P99:   r.Percentile(99),
		Max:   r.Max(),
	}
}

// String renders the summary for logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}
