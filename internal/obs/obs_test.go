package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	var h Histogram
	// Exactly on a bound lands in that bucket (bounds are inclusive
	// upper edges); one past it lands in the next.
	for _, b := range []int{0, 1, 17, numBuckets - 1} {
		v := boundsNS[b]
		if got := bucketOf(v); got != b {
			t.Fatalf("bucketOf(bound %d = %d) = %d", b, v, got)
		}
		if got := bucketOf(v + 1); got != b+1 {
			t.Fatalf("bucketOf(bound %d + 1) = %d, want %d", b, got, b+1)
		}
	}
	if got := bucketOf(0); got != 0 {
		t.Fatalf("bucketOf(0) = %d", got)
	}
	// Overflow and negative clamp.
	h.Record(time.Duration(boundsNS[numBuckets-1]) * 2)
	h.Record(-time.Second)
	s := h.Snapshot()
	if s.Counts[numBuckets] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Counts[numBuckets])
	}
	if s.Counts[0] != 1 {
		t.Fatalf("negative duration should clamp into bucket 0, got %d", s.Counts[0])
	}
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
}

func TestHistogramQuantileErrorBounds(t *testing.T) {
	// For any point mass v at or above the 1µs resolution floor, the
	// quantile estimate must be within a factor of √2 (the bucket
	// growth factor) of v.
	for _, v := range []time.Duration{
		999, 1000, 1001, 5 * time.Microsecond, 733 * time.Microsecond,
		3 * time.Millisecond, 250 * time.Millisecond, 7 * time.Second,
	} {
		var h Histogram
		for i := 0; i < 100; i++ {
			h.Record(v)
		}
		for _, p := range []float64{0.5, 0.99, 0.999} {
			est := float64(h.Quantile(p))
			ratio := est / float64(v)
			if ratio < 1/math.Sqrt2-1e-9 || ratio > math.Sqrt2+1e-9 {
				t.Fatalf("Quantile(%g) of point mass %v = %v (ratio %.3f), outside √2 bound", p, v, time.Duration(est), ratio)
			}
		}
	}
	// Order statistics across a spread: p50 of {1ms x50, 100ms x50}
	// must sit near 1ms, p99 near 100ms.
	var h Histogram
	for i := 0; i < 50; i++ {
		h.Record(time.Millisecond)
		h.Record(100 * time.Millisecond)
	}
	if p50 := h.Quantile(0.50); p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 70*time.Millisecond {
		t.Fatalf("p99 = %v, want ~100ms", p99)
	}
	var empty Histogram
	if q := empty.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	// Below the resolution floor everything collapses into bucket 0:
	// the estimate saturates under 1µs rather than blowing up.
	var tiny Histogram
	tiny.Record(3 * time.Nanosecond)
	if q := tiny.Quantile(0.5); q <= 0 || q > time.Microsecond {
		t.Fatalf("sub-floor quantile = %v, want (0, 1µs]", q)
	}
}

func TestHistogramConcurrentRecording(t *testing.T) {
	// Hammer one histogram from many goroutines under -race; the total
	// count and sum must come out exact (atomics lose nothing).
	var h Histogram
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(1000 + (g*per+i)*13))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	var wantSum int64
	for g := 0; g < goroutines; g++ {
		for i := 0; i < per; i++ {
			wantSum += int64(1000 + (g*per+i)*13)
		}
	}
	if s.SumNS != wantSum {
		t.Fatalf("sum = %d, want %d", s.SumNS, wantSum)
	}
}

func TestSamplingDeterminism(t *testing.T) {
	pick := func(seed uint64) []int64 {
		var s Sampler
		s.Configure(16, seed)
		var ids []int64
		for id := int64(0); id < 4096; id++ {
			if s.Sample(uint64(id)) {
				ids = append(ids, id)
			}
		}
		return ids
	}
	a, b := pick(42), pick(42)
	if len(a) == 0 {
		t.Fatal("seed 42 sampled nothing out of 4096 at rate 1/16")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different traced query sets")
	}
	c := pick(43)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical traced query sets")
	}
	// Rate sanity: 1/16 of 4096 = 256 expected; allow wide slack.
	if len(a) < 128 || len(a) > 512 {
		t.Fatalf("sampled %d of 4096 at rate 1/16, far from expected ~256", len(a))
	}
	// Edge rates.
	var s Sampler
	s.Configure(0, 0)
	if s.Sample(7) {
		t.Fatal("rate 0 must disable sampling")
	}
	s.Configure(1, 0)
	if !s.Sample(7) {
		t.Fatal("rate 1 must sample everything")
	}
}

func TestRingWraparoundAndDump(t *testing.T) {
	reg := NewRegistry(8, "m")
	mo := reg.Model("m")
	tid := reg.Intern("g4dn.xlarge")
	for i := 1; i <= 20; i++ {
		mo.Trace(&TraceRecord{ID: int64(i), Batch: i, QueueNS: int64(i * 10)}, tid)
	}
	got := mo.Traces(0)
	if len(got) != 8 {
		t.Fatalf("ring of 8 returned %d records", len(got))
	}
	for i, rec := range got {
		want := int64(20 - i) // newest first
		if rec.ID != want {
			t.Fatalf("record %d: id %d, want %d", i, rec.ID, want)
		}
		if rec.Instance != "g4dn.xlarge" {
			t.Fatalf("record %d: instance %q", i, rec.Instance)
		}
	}
	if got = mo.Traces(3); len(got) != 3 || got[0].ID != 20 {
		t.Fatalf("Traces(3) = %+v", got)
	}
	// Unknown type ID leaves Instance empty.
	mo.Trace(&TraceRecord{ID: 99}, -1)
	if got = mo.Traces(1); got[0].Instance != "" {
		t.Fatalf("typeID -1 should have no instance, got %q", got[0].Instance)
	}
}

func TestRingConcurrent(t *testing.T) {
	// Writers race readers under -race; every dumped record must be
	// internally consistent (ID == Batch invariant maintained by the
	// writers proves no torn records survive the seq check).
	reg := NewRegistry(64, "m")
	mo := reg.Model("m")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := int64(w*1_000_000 + i)
				mo.Trace(&TraceRecord{ID: id, Batch: int(id % 1000), QueueNS: id}, -1)
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		for _, rec := range mo.Traces(0) {
			if rec.Batch != int(rec.ID%1000) || rec.QueueNS != rec.ID {
				t.Errorf("torn record survived seq check: %+v", rec)
			}
		}
	}
	close(stop)
	wg.Wait()
}

var promLineRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[-+]?[0-9.eE+-]+|\+Inf)$`)

func TestWritePromFormat(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(i) * 100 * time.Microsecond)
	}
	for _, labels := range []string{`model="NCF",stage="queue"`, ""} {
		var buf bytes.Buffer
		s := h.Snapshot()
		s.WriteProm(&buf, "kairos_stage_latency_seconds", labels)
		var lastCum uint64
		var sawInf bool
		var count uint64
		sc := bufio.NewScanner(&buf)
		for sc.Scan() {
			line := sc.Text()
			if !promLineRe.MatchString(line) {
				t.Fatalf("bad exposition line: %q", line)
			}
			switch {
			case strings.Contains(line, "_bucket{"):
				v, _ := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
				if v < lastCum {
					t.Fatalf("non-monotone cumulative bucket: %q after %d", line, lastCum)
				}
				lastCum = v
				if strings.Contains(line, `le="+Inf"`) {
					sawInf = true
				}
			case strings.Contains(line, "_count"):
				count, _ = strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
			}
		}
		if !sawInf {
			t.Fatal("no +Inf bucket emitted")
		}
		if count != 1000 || lastCum != 1000 {
			t.Fatalf("count %d / +Inf cum %d, want 1000", count, lastCum)
		}
	}
}

func TestRegistryModelsAndIntern(t *testing.T) {
	reg := NewRegistry(0, "b", "a", "b")
	if got := fmt.Sprint(reg.Models()); got != "[a b]" {
		t.Fatalf("Models() = %v", got)
	}
	if reg.Model("nope") != nil {
		t.Fatal("unknown model should be nil")
	}
	id1, id2 := reg.Intern("t1"), reg.Intern("t2")
	if id1 == id2 || reg.Intern("t1") != id1 {
		t.Fatal("intern table not stable")
	}
	if reg.TypeName(id2) != "t2" || reg.TypeName(99) != "" {
		t.Fatal("TypeName resolution broken")
	}
	every, seed := reg.Sampling()
	if every != DefaultSampleEvery || seed != 0 {
		t.Fatalf("default sampling = (%d,%d)", every, seed)
	}
	reg.SetSampling(1, 9)
	if every, seed = reg.Sampling(); every != 1 || seed != 9 {
		t.Fatalf("SetSampling not applied: (%d,%d)", every, seed)
	}
	mo := reg.Model("a")
	h1 := mo.ServeHist("g4dn.xlarge")
	h2 := mo.ServeHist("r5n.large")
	if mo.ServeHist("g4dn.xlarge") != h1 || h1 == h2 {
		t.Fatal("ServeHist identity broken")
	}
	h1.Record(time.Millisecond)
	byType := mo.ServeByType()
	if len(byType) != 2 || byType[0].Type != "g4dn.xlarge" || byType[0].Snap.Count != 1 {
		t.Fatalf("ServeByType = %+v", byType)
	}
}

func BenchmarkObsCases(b *testing.B) {
	for _, c := range BenchCases() {
		b.Run(c.Name, func(b *testing.B) {
			b.ReportAllocs()
			c.Loop(b.N)
		})
	}
}
