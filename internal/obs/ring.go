package obs

import (
	"sync/atomic"
	"time"
)

// TraceRecord is one sampled query's completed lifecycle: every stage
// duration the flight recorder stamped between controller enqueue and
// reply delivery. Durations are wall nanoseconds (divide by the
// engine's TimeScale to recover model time).
type TraceRecord struct {
	ID            int64  `json:"id"`
	StartUnixNano int64  `json:"start_unix_nano"`
	Batch         int    `json:"batch"`
	Instance      string `json:"instance,omitempty"`
	QueueNS       int64  `json:"queue_ns"`
	FlightNS      int64  `json:"flight_ns"`
	WaitNS        int64  `json:"wait_ns"`
	ServeNS       int64  `json:"serve_ns"`
	E2ENS         int64  `json:"e2e_ns"`
	Err           bool   `json:"err,omitempty"`
}

// Ring slot layout: a fixed number of int64 words per record, all
// accessed atomically. The seq word is written last (and checked
// first/last by readers), so a reader that races a writer detects the
// torn record and skips it instead of locking anybody out.
const (
	ringWords = 11

	slotSeq = iota - 1
	slotID
	slotStart
	slotBatch
	slotType
	slotQueue
	slotFlight
	slotWait
	slotServe
	slotE2E
	slotErr
)

// Ring is a lock-free, fixed-capacity, overwrite-oldest buffer of
// trace records. Writers claim a slot with one atomic add and store
// fields with plain atomic stores; readers never block writers.
type Ring struct {
	n     uint64
	head  atomic.Uint64
	slots []atomic.Int64
}

func newRing(n int) *Ring {
	if n <= 0 {
		n = 1024
	}
	return &Ring{n: uint64(n), slots: make([]atomic.Int64, n*ringWords)}
}

// put records one completed trace. typeID is the interned instance
// type (-1 when the query never reached an instance).
func (r *Ring) put(rec *TraceRecord, typeID int) {
	seq := r.head.Add(1) // 1-based; 0 marks an empty/in-progress slot
	base := ((seq - 1) % r.n) * ringWords
	s := r.slots[base:]
	s[slotSeq].Store(0) // invalidate while we overwrite
	s[slotID].Store(rec.ID)
	s[slotStart].Store(rec.StartUnixNano)
	s[slotBatch].Store(int64(rec.Batch))
	s[slotType].Store(int64(typeID))
	s[slotQueue].Store(rec.QueueNS)
	s[slotFlight].Store(rec.FlightNS)
	s[slotWait].Store(rec.WaitNS)
	s[slotServe].Store(rec.ServeNS)
	s[slotE2E].Store(rec.E2ENS)
	var errFlag int64
	if rec.Err {
		errFlag = 1
	}
	s[slotErr].Store(errFlag)
	s[slotSeq].Store(int64(seq))
}

// dump returns up to max records, newest first. Records that are being
// overwritten concurrently are skipped (seq mismatch before/after the
// field reads). typeName resolves interned instance-type IDs.
func (r *Ring) dump(max int, typeName func(int) string) []TraceRecord {
	if max <= 0 || max > int(r.n) {
		max = int(r.n)
	}
	head := r.head.Load()
	out := make([]TraceRecord, 0, max)
	for i := uint64(0); i < r.n && len(out) < max; i++ {
		seq := head - i
		if seq == 0 {
			break
		}
		base := ((seq - 1) % r.n) * ringWords
		s := r.slots[base:]
		if uint64(s[slotSeq].Load()) != seq {
			continue // empty, torn, or already lapped
		}
		rec := TraceRecord{
			ID:            s[slotID].Load(),
			StartUnixNano: s[slotStart].Load(),
			Batch:         int(s[slotBatch].Load()),
			QueueNS:       s[slotQueue].Load(),
			FlightNS:      s[slotFlight].Load(),
			WaitNS:        s[slotWait].Load(),
			ServeNS:       s[slotServe].Load(),
			E2ENS:         s[slotE2E].Load(),
			Err:           s[slotErr].Load() != 0,
		}
		if tid := int(s[slotType].Load()); tid >= 0 && typeName != nil {
			rec.Instance = typeName(tid)
		}
		if uint64(s[slotSeq].Load()) != seq {
			continue // overwritten mid-read
		}
		out = append(out, rec)
	}
	return out
}

// Start returns the record's start timestamp as a time.Time.
func (t *TraceRecord) Start() time.Time { return time.Unix(0, t.StartUnixNano) }
