package obs

import "time"

// BenchCase is a named measurement loop shared between this package's
// benchmarks and cmd/kairos-microbench, so the committed BENCH_micro
// numbers and `go test -bench` run identical code.
type BenchCase struct {
	Name string
	Loop func(n int)
}

// BenchCases returns the flight-recorder hot-path benchmarks:
//
//   - HistogramRecord: one stage-histogram observation (the unit cost
//     paid several times per completed query).
//   - TraceStampOverhead: everything the controller pays per completed
//     query at the default sampling rate — the sampling decision, the
//     four completion-side histogram records plus the per-type serve
//     record, and (for the sampled ~1/64) the ring write.
func BenchCases() []BenchCase {
	return []BenchCase{
		{
			Name: "HistogramRecord",
			Loop: func(n int) {
				var h Histogram
				for i := 0; i < n; i++ {
					h.Record(time.Duration(1000 + i*37))
				}
			},
		},
		{
			Name: "TraceStampOverhead",
			Loop: func(n int) {
				reg := NewRegistry(1024, "bench")
				mo := reg.Model("bench")
				serve := mo.ServeHist("g4dn.xlarge")
				typeID := reg.Intern("g4dn.xlarge")
				for i := 0; i < n; i++ {
					id := int64(i)
					d := time.Duration(900 + i*53)
					traced := mo.Sampled(id)
					mo.Record(StageQueue, d/4)
					mo.Record(StageFlight, d)
					mo.Record(StageServe, d/2)
					mo.Record(StageE2E, d+d/4)
					serve.Record(d / 2)
					if traced {
						mo.Trace(&TraceRecord{
							ID: id, StartUnixNano: int64(i), Batch: 8,
							QueueNS: int64(d / 4), FlightNS: int64(d),
							ServeNS: int64(d / 2), E2ENS: int64(d + d/4),
						}, typeID)
					}
				}
			},
		},
	}
}
