// Package obs is the flight recorder: per-stage latency histograms,
// sampled per-query trace records, and the sampling policy that decides
// which queries carry a trace across the wire. It is a leaf package —
// stdlib only — so internal/server, internal/ingress, and
// internal/autopilot can all depend on it without cycles. Everything on
// the hot path is a handful of atomic adds on preallocated memory: no
// locks, no allocations, no extra clock reads (callers pass durations
// computed from timestamps they already took).
package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// The histogram is fixed-bucket log-scale: bucket i covers
// (boundsNS[i-1], boundsNS[i]] nanoseconds, with bucket 0 anchored at
// histBaseNS and successive bounds growing by √2. 64 bounds span 1µs to
// ~54min, which covers both time-compressed runs (TimeScale 1e-6 puts
// serve times in the tens of nanoseconds — they land in bucket 0) and
// real-time fleets. A final implicit bucket catches overflow.
const (
	numBuckets = 64
	histBaseNS = 1000 // first bucket upper bound: 1µs
)

var boundsNS [numBuckets]uint64

func init() {
	for i := range boundsNS {
		boundsNS[i] = uint64(math.Round(histBaseNS * math.Pow(2, float64(i)/2)))
	}
}

// BucketBounds returns the bucket upper bounds (exclusive of the
// overflow bucket) as durations. The slice is freshly allocated.
func BucketBounds() []time.Duration {
	out := make([]time.Duration, numBuckets)
	for i, b := range boundsNS {
		out[i] = time.Duration(b)
	}
	return out
}

// bucketOf returns the index of the bucket covering v nanoseconds;
// numBuckets is the overflow bucket.
func bucketOf(v uint64) int {
	lo, hi := 0, numBuckets
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= boundsNS[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Records are striped across a few independent counter banks to keep
// concurrent recorders off each other's cache lines; the stripe is
// picked from the low bits of the value itself (wall-clock nanosecond
// deltas are high-entropy there). Snapshots sum the stripes.
const histStripes = 4

type histStripe struct {
	counts [numBuckets + 1]atomic.Uint64
	sum    atomic.Int64
	_      [56]byte // keep the next stripe's hot head off this cache line
}

// Histogram is a fixed-bucket log-scale latency histogram safe for
// concurrent use. The zero value is ready.
type Histogram struct {
	stripes [histStripes]histStripe
}

// Record adds one observation. Negative durations clamp to zero. Cost:
// two uncontended atomic adds — no locks, no allocations.
func (h *Histogram) Record(d time.Duration) {
	var v uint64
	if d > 0 {
		v = uint64(d)
	}
	s := &h.stripes[(v>>2)&(histStripes-1)]
	s.counts[bucketOf(v)].Add(1)
	s.sum.Add(int64(v))
}

// RecordStripe is Record with a caller-chosen stripe — a sharded front
// door pins each shard to one stripe, so concurrent shards never bounce
// a counter cache line and StripeSnapshot reads back one shard's view.
func (h *Histogram) RecordStripe(stripe uint32, d time.Duration) {
	var v uint64
	if d > 0 {
		v = uint64(d)
	}
	s := &h.stripes[stripe&(histStripes-1)]
	s.counts[bucketOf(v)].Add(1)
	s.sum.Add(int64(v))
}

// StripeSnapshot copies one stripe's counters — with RecordStripe-pinned
// writers, one shard's share of the stage. Shards beyond histStripes
// alias (stripe is taken mod histStripes), so per-shard views are exact
// up to histStripes shards and merged past that.
func (h *Histogram) StripeSnapshot(stripe uint32) HistSnapshot {
	var s HistSnapshot
	st := &h.stripes[stripe&(histStripes-1)]
	for b := range st.counts {
		s.Counts[b] = st.counts[b].Load()
		s.Count += s.Counts[b]
	}
	s.SumNS = st.sum.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a histogram's counters.
// Counts has one entry per bucket plus the trailing overflow bucket.
type HistSnapshot struct {
	Counts [numBuckets + 1]uint64
	Count  uint64
	SumNS  int64
}

// Snapshot copies the counters. Concurrent recording keeps going; the
// snapshot is consistent enough for monitoring (each counter is read
// once, atomically).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := range st.counts {
			s.Counts[b] += st.counts[b].Load()
		}
		s.SumNS += st.sum.Load()
	}
	for _, c := range s.Counts {
		s.Count += c
	}
	return s
}

// Quantile estimates the p-quantile (0 < p ≤ 1) from the snapshot. The
// estimate is the geometric midpoint of the covering bucket, so the
// multiplicative error is at most the bucket growth factor √2 (≈2^(1/4)
// in expectation). Returns 0 for an empty snapshot.
func (s *HistSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum < target {
			continue
		}
		if i >= numBuckets { // overflow: best effort, report the last bound
			return time.Duration(boundsNS[numBuckets-1])
		}
		upper := float64(boundsNS[i])
		lower := upper / math.Sqrt2
		if i > 0 {
			lower = float64(boundsNS[i-1])
		}
		return time.Duration(math.Sqrt(lower * upper))
	}
	return time.Duration(boundsNS[numBuckets-1])
}

// Quantile is a convenience over a fresh snapshot.
func (h *Histogram) Quantile(p float64) time.Duration {
	s := h.Snapshot()
	return s.Quantile(p)
}

// WriteProm writes the snapshot as a Prometheus text-format histogram
// family member: cumulative `le` buckets in seconds, then _sum and
// _count. Only buckets that contain observations are emitted (plus
// +Inf, which is mandatory) — sparse `le` sets are valid exposition and
// keep /metrics compact. labels is a pre-rendered `k="v",k2="v2"`
// string, possibly empty; the caller owns HELP/TYPE headers.
func (s *HistSnapshot) WriteProm(w io.Writer, name, labels string) {
	prefix := labels
	if prefix != "" {
		prefix += ","
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 || i >= numBuckets {
			continue
		}
		cum += c
		le := strconv.FormatFloat(float64(boundsNS[i])/1e9, 'g', -1, 64)
		fmt.Fprintf(w, "%s_bucket{%s"+`le=%q} %d`+"\n", name, prefix, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, prefix, s.Count)
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, strconv.FormatFloat(float64(s.SumNS)/1e9, 'g', -1, 64))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.Count)
	} else {
		fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(float64(s.SumNS)/1e9, 'g', -1, 64))
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	}
}
