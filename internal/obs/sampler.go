package obs

import "sync/atomic"

// DefaultSampleEvery is the default trace sampling rate: on average one
// query in 64 carries a full trace record. Histograms always see every
// query; sampling only gates the per-query ring records and the wire
// trace flag.
const DefaultSampleEvery = 64

// Sampler decides deterministically whether a query ID is traced. The
// decision is a pure function of (id, seed, every): the same seed
// always traces the same query set, so a replayed scenario traces the
// same queries — and two processes configured alike agree on the set.
// All fields are atomics so the rate can be retuned at runtime without
// stalling recorders.
type Sampler struct {
	every atomic.Uint64
	seed  atomic.Uint64
}

// Configure sets the sampling rate (trace ~1/every queries; 0 disables,
// 1 traces everything) and the hash seed.
func (s *Sampler) Configure(every uint64, seed uint64) {
	s.every.Store(every)
	s.seed.Store(seed)
}

// Every returns the current sampling modulus.
func (s *Sampler) Every() uint64 { return s.every.Load() }

// Seed returns the current hash seed.
func (s *Sampler) Seed() uint64 { return s.seed.Load() }

// Sample reports whether the query with this ID is traced. One integer
// mix and a modulus — no locks, no allocations.
func (s *Sampler) Sample(id uint64) bool {
	n := s.every.Load()
	switch n {
	case 0:
		return false
	case 1:
		return true
	}
	return mix64(id+s.seed.Load())%n == 0
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixer, so sampling is unbiased even for sequential query IDs.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
