package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one hop of a query's life. Stages are measured as
// durations between timestamps the serving path already takes — the
// flight recorder adds no clock reads to the controller hot path.
type Stage int

const (
	// StageIngress: front-door receive → reply ready (the client's view).
	StageIngress Stage = iota
	// StageAdmit: front-door receive → admission decision.
	StageAdmit
	// StageQueue: controller enqueue → dispatch write (scheduler wait).
	StageQueue
	// StageFlight: dispatch write → reply decode (wire + instance,
	// including the instance's serve time).
	StageFlight
	// StageWait: instance request receive → serve-slot acquisition.
	// Measured on the instance and carried back in traced replies, so
	// it only covers sampled queries.
	StageWait
	// StageServe: the instance's service time (predicted model ms
	// converted to wall nanoseconds at the controller's TimeScale).
	StageServe
	// StageE2E: controller enqueue → reply decode.
	StageE2E

	NumStages int = iota
)

var stageNames = [NumStages]string{
	"ingress", "admit", "queue", "flight", "instance_wait", "serve", "e2e",
}

func (s Stage) String() string {
	if s < 0 || int(s) >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Stages lists every stage in order.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Registry is the per-process flight recorder: one ModelObs per served
// model, a shared sampling policy, and the instance-type intern table
// that lets hot-path ring writes store small ints instead of strings.
type Registry struct {
	sampler  Sampler
	ringSize int

	mu        sync.Mutex // intern table + cold ModelObs setup
	typeIDs   map[string]int
	typeNames []string

	models map[string]*ModelObs
	names  []string
}

// NewRegistry builds a registry for a fixed model set with the default
// sampling rate (1/DefaultSampleEvery, seed 0) and ringSize trace
// records retained per model (≤0 picks the default 1024).
func NewRegistry(ringSize int, models ...string) *Registry {
	r := &Registry{
		ringSize: ringSize,
		typeIDs:  make(map[string]int),
		models:   make(map[string]*ModelObs, len(models)),
	}
	r.sampler.Configure(DefaultSampleEvery, 0)
	for _, m := range models {
		if _, ok := r.models[m]; ok {
			continue
		}
		r.models[m] = &ModelObs{reg: r, model: m, ring: newRing(ringSize)}
		r.names = append(r.names, m)
	}
	sort.Strings(r.names)
	return r
}

// SetSampling retunes the trace sampling policy at runtime: trace
// ~1/every queries (0 disables tracing, 1 traces everything),
// deterministically keyed by seed.
func (r *Registry) SetSampling(every uint64, seed uint64) { r.sampler.Configure(every, seed) }

// Sampling returns the current (every, seed) policy.
func (r *Registry) Sampling() (every, seed uint64) {
	return r.sampler.Every(), r.sampler.Seed()
}

// Model returns the named model's recorder, or nil if the model is not
// registered.
func (r *Registry) Model(name string) *ModelObs { return r.models[name] }

// Models lists registered model names, sorted.
func (r *Registry) Models() []string { return r.names }

// Intern maps an instance-type name to a small stable int for ring
// records. Cold path (called at instance dial time).
func (r *Registry) Intern(typeName string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.typeIDs[typeName]; ok {
		return id
	}
	id := len(r.typeNames)
	r.typeIDs[typeName] = id
	r.typeNames = append(r.typeNames, typeName)
	return id
}

// TypeName resolves an interned instance-type ID.
func (r *Registry) TypeName(id int) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 0 || id >= len(r.typeNames) {
		return ""
	}
	return r.typeNames[id]
}

// serveEntry pairs an instance type with its serve-time histogram;
// ModelObs keeps a copy-on-write slice so exposition can iterate
// without touching the hot path.
type serveEntry struct {
	typeName string
	hist     *Histogram
}

// ModelObs is one model's recorder: a histogram per stage, serve-time
// histograms per instance type, and the sampled-trace ring.
type ModelObs struct {
	reg    *Registry
	model  string
	stages [NumStages]Histogram
	serve  atomic.Pointer[[]serveEntry]
	ring   *Ring
}

// Name returns the model name.
func (m *ModelObs) Name() string { return m.model }

// Record adds one observation to a stage histogram. Hot path: two
// atomic adds.
func (m *ModelObs) Record(st Stage, d time.Duration) { m.stages[st].Record(d) }

// RecordShard adds one observation attributed to an ingress shard: the
// shard picks its own histogram stripe, so concurrent shards never
// share a counter cache line and StageStripeSnapshot recovers one
// shard's latency view (exact up to histStripes shards).
func (m *ModelObs) RecordShard(st Stage, shard uint32, d time.Duration) {
	m.stages[st].RecordStripe(shard, d)
}

// StageSnapshot copies one stage histogram's counters.
func (m *ModelObs) StageSnapshot(st Stage) HistSnapshot { return m.stages[st].Snapshot() }

// StageStripeSnapshot copies one shard's stripe of a stage histogram
// (see RecordShard).
func (m *ModelObs) StageStripeSnapshot(st Stage, shard uint32) HistSnapshot {
	return m.stages[st].StripeSnapshot(shard)
}

// Sampled reports whether this query ID carries a trace, under the
// registry's deterministic sampling policy.
func (m *ModelObs) Sampled(id int64) bool { return m.reg.sampler.Sample(uint64(id)) }

// ServeHist returns (creating on first use) the serve-time histogram
// for one instance type. Cold path — call at dial time and cache the
// pointer; Record on the result is the hot path.
func (m *ModelObs) ServeHist(typeName string) *Histogram {
	if cur := m.serve.Load(); cur != nil {
		for _, e := range *cur {
			if e.typeName == typeName {
				return e.hist
			}
		}
	}
	m.reg.mu.Lock()
	defer m.reg.mu.Unlock()
	cur := m.serve.Load()
	var entries []serveEntry
	if cur != nil {
		for _, e := range *cur {
			if e.typeName == typeName {
				return e.hist
			}
		}
		entries = append(entries, *cur...)
	}
	h := &Histogram{}
	entries = append(entries, serveEntry{typeName: typeName, hist: h})
	m.serve.Store(&entries)
	return h
}

// ServeSnapshot is one instance type's serve-time histogram snapshot.
type ServeSnapshot struct {
	Type string
	Snap HistSnapshot
}

// ServeByType snapshots the per-instance-type serve histograms.
func (m *ModelObs) ServeByType() []ServeSnapshot {
	cur := m.serve.Load()
	if cur == nil {
		return nil
	}
	out := make([]ServeSnapshot, 0, len(*cur))
	for _, e := range *cur {
		out = append(out, ServeSnapshot{Type: e.typeName, Snap: e.hist.Snapshot()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}

// Trace records one sampled query's completed lifecycle in the ring.
// typeID is the interned instance type, or -1 if the query never
// reached an instance.
func (m *ModelObs) Trace(rec *TraceRecord, typeID int) { m.ring.put(rec, typeID) }

// Traces returns up to max retained trace records, newest first.
func (m *ModelObs) Traces(max int) []TraceRecord {
	return m.ring.dump(max, m.reg.TypeName)
}
