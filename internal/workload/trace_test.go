package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestSynthesizeTrace(t *testing.T) {
	tr := Synthesize(42, DefaultTrace(), 100, 500)
	if len(tr.Arrivals) != 500 {
		t.Fatalf("trace length = %d", len(tr.Arrivals))
	}
	prev := 0.0
	for _, a := range tr.Arrivals {
		if a.AtMS < prev {
			t.Fatal("arrivals out of order")
		}
		prev = a.AtMS
	}
	// Deterministic per seed.
	tr2 := Synthesize(42, DefaultTrace(), 100, 500)
	for i := range tr.Arrivals {
		if tr.Arrivals[i] != tr2.Arrivals[i] {
			t.Fatal("synthesis not deterministic")
		}
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	tr := Synthesize(7, DefaultTrace(), 200, 300)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Arrivals) != len(tr.Arrivals) {
		t.Fatalf("round trip length %d, want %d", len(back.Arrivals), len(tr.Arrivals))
	}
	for i := range tr.Arrivals {
		if back.Arrivals[i].Batch != tr.Arrivals[i].Batch {
			t.Fatalf("batch mismatch at %d", i)
		}
		// Arrival times survive at millisecond precision (3 decimals).
		if diff := back.Arrivals[i].AtMS - tr.Arrivals[i].AtMS; diff > 0.001 || diff < -0.001 {
			t.Fatalf("arrival mismatch at %d: %v", i, diff)
		}
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := Synthesize(9, DefaultGaussian(), 50, 100)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Description != tr.Description || len(back.Arrivals) != len(tr.Arrivals) {
		t.Fatal("json round trip mismatch")
	}
	for i := range tr.Arrivals {
		if back.Arrivals[i] != tr.Arrivals[i] {
			t.Fatalf("arrival mismatch at %d", i)
		}
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"no header":     "1.0,5\n2.0,6\n",
		"bad batch":     "arrival_ms,batch\n1.0,zero\n",
		"range batch":   "arrival_ms,batch\n1.0,5000\n",
		"unordered":     "arrival_ms,batch\n5.0,10\n1.0,10\n",
		"bad arrival":   "arrival_ms,batch\nabc,10\n",
		"missing field": "arrival_ms,batch\n1.0\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadJSONRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"garbage":   "{",
		"bad batch": `{"arrivals":[{"AtMS":1,"Batch":0}]}`,
		"unordered": `{"arrivals":[{"AtMS":5,"Batch":1},{"AtMS":1,"Batch":1}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestTraceDistributionBootstrap(t *testing.T) {
	tr := Synthesize(11, DefaultTrace(), 100, 1000)
	d, err := tr.Distribution()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(d.Name(), "trace:") {
		t.Fatalf("name = %s", d.Name())
	}
	if len(tr.Batches()) != 1000 {
		t.Fatalf("batches = %d", len(tr.Batches()))
	}
}
