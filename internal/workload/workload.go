// Package workload generates and characterizes the inference query streams
// that drive the evaluation: batch-size distributions (the paper's default
// is a log-normal production-trace shape, with Gaussian used for the load
// change and robustness studies), Poisson query arrivals (Sec. 7), and the
// sliding-window query monitor Kairos uses to learn the batch-size mix
// online (Sec. 5.2: "a number of most recent queries, e.g. 10000 queries").
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// MaxBatch mirrors models.MaxBatch; duplicated to keep this package free of
// higher-level imports.
const MaxBatch = 1000

// BatchDistribution samples query batch sizes in [1, MaxBatch].
type BatchDistribution interface {
	// Sample draws one batch size.
	Sample(rng *rand.Rand) int
	// Name identifies the distribution for reports.
	Name() string
}

// clampBatch truncates a real-valued draw into the valid batch range.
func clampBatch(v float64) int {
	b := int(math.Round(v))
	if b < 1 {
		return 1
	}
	if b > MaxBatch {
		return MaxBatch
	}
	return b
}

// LogNormal is the default trace-like distribution: heavy mass on small
// batches with a long tail of large ones (Fig. 12 calls the paper's default
// "Log-norm").
type LogNormal struct {
	// Mu and Sigma parametrize ln(batch) ~ N(Mu, Sigma).
	Mu, Sigma float64
}

// Sample implements BatchDistribution.
func (d LogNormal) Sample(rng *rand.Rand) int {
	return clampBatch(math.Exp(d.Mu + d.Sigma*rng.NormFloat64()))
}

// Name implements BatchDistribution.
func (d LogNormal) Name() string { return fmt.Sprintf("lognormal(mu=%.2f,sigma=%.2f)", d.Mu, d.Sigma) }

// Gaussian is a truncated normal batch-size distribution (Sec. 7: "Gaussian
// distribution is another commonly used distribution for online services").
type Gaussian struct {
	Mean, Std float64
}

// Sample implements BatchDistribution.
func (d Gaussian) Sample(rng *rand.Rand) int {
	return clampBatch(d.Mean + d.Std*rng.NormFloat64())
}

// Name implements BatchDistribution.
func (d Gaussian) Name() string { return fmt.Sprintf("gaussian(mean=%.0f,std=%.0f)", d.Mean, d.Std) }

// Uniform draws batch sizes uniformly from [Min, Max].
type Uniform struct {
	Min, Max int
}

// Sample implements BatchDistribution.
func (d Uniform) Sample(rng *rand.Rand) int {
	if d.Min < 1 || d.Max > MaxBatch || d.Min > d.Max {
		panic(fmt.Sprintf("workload: invalid uniform range [%d,%d]", d.Min, d.Max))
	}
	return d.Min + rng.Intn(d.Max-d.Min+1)
}

// Name implements BatchDistribution.
func (d Uniform) Name() string { return fmt.Sprintf("uniform(%d,%d)", d.Min, d.Max) }

// Fixed always returns the same batch size; useful in unit tests.
type Fixed int

// Sample implements BatchDistribution.
func (d Fixed) Sample(*rand.Rand) int { return clampBatch(float64(d)) }

// Name implements BatchDistribution.
func (d Fixed) Name() string { return fmt.Sprintf("fixed(%d)", int(d)) }

// Empirical resamples from a recorded set of batch sizes (bootstrap), the
// way a replayed production trace behaves.
type Empirical struct {
	Batches []int
	label   string
}

// NewEmpirical validates and wraps recorded batch sizes.
func NewEmpirical(batches []int, label string) (Empirical, error) {
	if len(batches) == 0 {
		return Empirical{}, fmt.Errorf("workload: empty empirical trace")
	}
	for i, b := range batches {
		if b < 1 || b > MaxBatch {
			return Empirical{}, fmt.Errorf("workload: trace batch %d at index %d outside [1,%d]", b, i, MaxBatch)
		}
	}
	return Empirical{Batches: batches, label: label}, nil
}

// Sample implements BatchDistribution.
func (d Empirical) Sample(rng *rand.Rand) int { return d.Batches[rng.Intn(len(d.Batches))] }

// Name implements BatchDistribution.
func (d Empirical) Name() string {
	if d.label != "" {
		return d.label
	}
	return fmt.Sprintf("empirical(n=%d)", len(d.Batches))
}

// DefaultTrace is the log-normal stand-in for the Meta production batch
// trace the paper replays: median 60 requests per query with a long tail
// (P(batch > 300) ~ 9%, P(batch = 1000 cap) ~ 1%).
func DefaultTrace() BatchDistribution { return LogNormal{Mu: math.Log(60), Sigma: 1.2} }

// DefaultGaussian is the Gaussian mix used after the load change in Fig. 12
// and for the robustness study in Fig. 16a.
func DefaultGaussian() BatchDistribution { return Gaussian{Mean: 200, Std: 120} }

// Arrival is one query arrival: a timestamp (ms) and a batch size.
type Arrival struct {
	AtMS  float64
	Batch int
}

// PoissonStream generates arrivals of a Poisson process with the given rate
// (queries per second) over [0, durationMS), batch sizes drawn from dist.
// The paper generates query inter-arrivals from a Poisson process at 100s
// of queries per second (Sec. 7).
func PoissonStream(rng *rand.Rand, dist BatchDistribution, ratePerSec, durationMS float64) []Arrival {
	if ratePerSec <= 0 {
		panic(fmt.Sprintf("workload: non-positive rate %v", ratePerSec))
	}
	meanGapMS := 1000 / ratePerSec
	var out []Arrival
	t := rng.ExpFloat64() * meanGapMS
	for t < durationMS {
		out = append(out, Arrival{AtMS: t, Batch: dist.Sample(rng)})
		t += rng.ExpFloat64() * meanGapMS
	}
	return out
}

// Monitor is Kairos's sliding-window query monitor: it tracks the most
// recent Window batch sizes and answers distribution questions (fraction f
// of queries at or below a cutoff s, conditional means) without any offline
// profiling. It is safe for concurrent use: the real network controller
// feeds it from per-instance read goroutines while planners snapshot it.
type Monitor struct {
	mu      sync.Mutex
	window  int
	batches []int
	next    int
	full    bool
}

// DefaultWindow is the paper's monitoring window of 10000 queries.
const DefaultWindow = 10000

// NewMonitor creates a monitor holding the most recent window batch sizes.
func NewMonitor(window int) *Monitor {
	if window <= 0 {
		panic("workload: monitor window must be positive")
	}
	return &Monitor{window: window, batches: make([]int, 0, window)}
}

// Observe records one query's batch size.
func (m *Monitor) Observe(batch int) {
	if batch < 1 || batch > MaxBatch {
		panic(fmt.Sprintf("workload: observed batch %d outside [1,%d]", batch, MaxBatch))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.batches) < m.window {
		m.batches = append(m.batches, batch)
		return
	}
	m.full = true
	m.batches[m.next] = batch
	m.next = (m.next + 1) % m.window
}

// Count returns the number of batch sizes currently tracked.
func (m *Monitor) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.batches)
}

// FractionAtMost returns the fraction f of tracked queries with batch <= s
// (Sec. 5.2). It returns 0 when nothing has been observed.
func (m *Monitor) FractionAtMost(s int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.batches) == 0 {
		return 0
	}
	n := 0
	for _, b := range m.batches {
		if b <= s {
			n++
		}
	}
	return float64(n) / float64(len(m.batches))
}

// MeanBatch returns the average tracked batch size, or 0 when empty.
func (m *Monitor) MeanBatch() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.batches) == 0 {
		return 0
	}
	sum := 0
	for _, b := range m.batches {
		sum += b
	}
	return float64(sum) / float64(len(m.batches))
}

// Snapshot returns a copy of the tracked batch sizes in unspecified order.
func (m *Monitor) Snapshot() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, len(m.batches))
	copy(out, m.batches)
	return out
}

// Quantile returns the q-quantile (0 < q <= 1) of tracked batch sizes using
// the nearest-rank method, or 0 when empty.
func (m *Monitor) Quantile(q float64) int {
	sorted := m.Snapshot()
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("workload: quantile %v outside (0,1]", q))
	}
	sort.Ints(sorted)
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Warm fills the monitor with n samples from dist; the controller calls
// this to mirror the paper's assumption that the monitor has seen recent
// traffic before planning.
func (m *Monitor) Warm(rng *rand.Rand, dist BatchDistribution, n int) {
	for i := 0; i < n; i++ {
		m.Observe(dist.Sample(rng))
	}
}
