package workload

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strconv"
)

// Trace is a serializable query trace: arrival offsets and batch sizes.
// It stands in for the Meta production trace artifact the paper replays.
type Trace struct {
	// Description records how the trace was produced.
	Description string `json:"description"`
	// Arrivals are in nondecreasing time order.
	Arrivals []Arrival `json:"arrivals"`
}

// Synthesize builds a reproducible trace of n queries at the given Poisson
// rate with batch sizes from dist.
func Synthesize(seed int64, dist BatchDistribution, ratePerSec float64, n int) Trace {
	rng := rand.New(rand.NewSource(seed))
	meanGapMS := 1000 / ratePerSec
	arrivals := make([]Arrival, n)
	t := 0.0
	for i := range arrivals {
		t += rng.ExpFloat64() * meanGapMS
		arrivals[i] = Arrival{AtMS: t, Batch: dist.Sample(rng)}
	}
	return Trace{
		Description: fmt.Sprintf("synthetic %s @ %.0f QPS, n=%d, seed=%d", dist.Name(), ratePerSec, n, seed),
		Arrivals:    arrivals,
	}
}

// Batches extracts just the batch sizes.
func (t Trace) Batches() []int {
	out := make([]int, len(t.Arrivals))
	for i, a := range t.Arrivals {
		out[i] = a.Batch
	}
	return out
}

// Distribution wraps the trace's batch sizes as a bootstrap distribution.
func (t Trace) Distribution() (Empirical, error) {
	return NewEmpirical(t.Batches(), "trace:"+t.Description)
}

// WriteCSV streams the trace as "arrival_ms,batch" rows with a header.
func (t Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"arrival_ms", "batch"}); err != nil {
		return err
	}
	for _, a := range t.Arrivals {
		rec := []string{strconv.FormatFloat(a.AtMS, 'f', 3, 64), strconv.Itoa(a.Batch)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	rows, err := cr.ReadAll()
	if err != nil {
		return Trace{}, fmt.Errorf("workload: reading trace csv: %w", err)
	}
	if len(rows) == 0 {
		return Trace{}, fmt.Errorf("workload: empty trace csv")
	}
	if rows[0][0] != "arrival_ms" {
		return Trace{}, fmt.Errorf("workload: missing csv header, got %q", rows[0][0])
	}
	tr := Trace{Description: "csv import"}
	prev := -1.0
	for i, row := range rows[1:] {
		if len(row) != 2 {
			return Trace{}, fmt.Errorf("workload: row %d has %d fields, want 2", i+1, len(row))
		}
		at, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return Trace{}, fmt.Errorf("workload: row %d arrival: %w", i+1, err)
		}
		batch, err := strconv.Atoi(row[1])
		if err != nil {
			return Trace{}, fmt.Errorf("workload: row %d batch: %w", i+1, err)
		}
		if batch < 1 || batch > MaxBatch {
			return Trace{}, fmt.Errorf("workload: row %d batch %d outside [1,%d]", i+1, batch, MaxBatch)
		}
		if at < prev {
			return Trace{}, fmt.Errorf("workload: row %d arrivals out of order", i+1)
		}
		prev = at
		tr.Arrivals = append(tr.Arrivals, Arrival{AtMS: at, Batch: batch})
	}
	return tr, nil
}

// WriteJSON encodes the trace as JSON.
func (t Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// ReadJSON decodes a trace written by WriteJSON.
func ReadJSON(r io.Reader) (Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return Trace{}, fmt.Errorf("workload: reading trace json: %w", err)
	}
	prev := -1.0
	for i, a := range t.Arrivals {
		if a.Batch < 1 || a.Batch > MaxBatch {
			return Trace{}, fmt.Errorf("workload: arrival %d batch %d outside [1,%d]", i, a.Batch, MaxBatch)
		}
		if a.AtMS < prev {
			return Trace{}, fmt.Errorf("workload: arrival %d out of order", i)
		}
		prev = a.AtMS
	}
	return t, nil
}
