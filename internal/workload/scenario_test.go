package workload

import (
	"math/rand"
	"testing"
)

func TestParetoClampsAndSkews(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Pareto{Scale: 20, Alpha: 1.2}
	small, capped := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		b := d.Sample(rng)
		if b < 1 || b > MaxBatch {
			t.Fatalf("sample %d outside [1,%d]", b, MaxBatch)
		}
		if b <= 60 {
			small++
		}
		if b == MaxBatch {
			capped++
		}
	}
	// Heavy tail: mass concentrates at the scale, yet the cap is reached.
	if float64(small)/n < 0.5 {
		t.Fatalf("only %d/%d samples near the scale", small, n)
	}
	if capped == 0 {
		t.Fatal("tail never reached the batch cap")
	}
}

func TestScenarioGenerateDeterministic(t *testing.T) {
	s := FlashCrowd(10_000, 50, 200, DefaultTrace())
	a := s.Generate(7)
	b := s.Generate(7)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := s.Generate(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical stream")
	}
}

func TestScenarioGenerateOrderedAndBounded(t *testing.T) {
	for _, name := range []string{"flash-crowd", "diurnal", "batch-mix-inversion", "heavy-tail"} {
		s, err := ScenarioByName(name, 5_000, 80)
		if err != nil {
			t.Fatal(err)
		}
		arr := s.Generate(42)
		if len(arr) == 0 {
			t.Fatalf("%s: empty stream", name)
		}
		prev := -1.0
		for i, a := range arr {
			if a.AtMS < prev {
				t.Fatalf("%s: arrival %d out of order", name, i)
			}
			prev = a.AtMS
			if a.AtMS < 0 || a.AtMS >= s.DurationMS() {
				t.Fatalf("%s: arrival %d at %.1fms outside [0,%.1f)", name, i, a.AtMS, s.DurationMS())
			}
			if a.Batch < 1 || a.Batch > MaxBatch {
				t.Fatalf("%s: arrival %d batch %d out of range", name, i, a.Batch)
			}
		}
	}
	if _, err := ScenarioByName("no-such", 1000, 10); err == nil {
		t.Fatal("unknown scenario must error")
	}
}

func TestFlashCrowdSpikesTheMiddle(t *testing.T) {
	const dur = 60_000.0
	s := FlashCrowd(dur, 50, 200, Fixed(10))
	arr := s.Generate(3)
	// The spike hold occupies [40%, 60%); its rate is 4x the base band
	// [0, 35%).
	base, spike := 0, 0
	for _, a := range arr {
		switch {
		case a.AtMS < dur*0.35:
			base++
		case a.AtMS >= dur*0.40 && a.AtMS < dur*0.60:
			spike++
		}
	}
	baseRate := float64(base) / (dur * 0.35)
	spikeRate := float64(spike) / (dur * 0.20)
	if spikeRate < 3*baseRate {
		t.Fatalf("spike rate %.4f not well above base %.4f", spikeRate, baseRate)
	}
}

func TestBatchMixInversionFlipsTheMix(t *testing.T) {
	s := BatchMixInversion(60_000, 60, Fixed(10), Fixed(400))
	arr := s.Generate(5)
	for _, a := range arr {
		want := 10
		if a.AtMS >= 30_000 {
			want = 400
		}
		if a.Batch != want {
			t.Fatalf("arrival at %.1fms has batch %d, want %d", a.AtMS, a.Batch, want)
		}
	}
}

func TestScenarioTraceRoundTrips(t *testing.T) {
	s, err := ScenarioByName("heavy-tail", 2_000, 100)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Trace(11)
	if tr.Description == "" || len(tr.Arrivals) == 0 {
		t.Fatalf("trace = %+v", tr)
	}
	if got := s.DurationMS(); got != 2_000 {
		t.Fatalf("duration %.1f", got)
	}
	if got := s.PeakQPS(); got != 100 {
		t.Fatalf("peak %.1f", got)
	}
}
