package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistributionsStayInRange(t *testing.T) {
	dists := []BatchDistribution{
		DefaultTrace(),
		DefaultGaussian(),
		LogNormal{Mu: 7, Sigma: 2}, // pushes past MaxBatch often; must clamp
		Gaussian{Mean: -50, Std: 10},
		Uniform{Min: 1, Max: 1000},
		Fixed(500),
	}
	rng := rand.New(rand.NewSource(1))
	for _, d := range dists {
		for i := 0; i < 5000; i++ {
			b := d.Sample(rng)
			if b < 1 || b > MaxBatch {
				t.Fatalf("%s sampled %d outside [1,%d]", d.Name(), b, MaxBatch)
			}
		}
		if d.Name() == "" {
			t.Fatalf("%T has empty name", d)
		}
	}
}

func TestDefaultTraceShape(t *testing.T) {
	// The trace stand-in must be dominated by small queries with a real
	// large-query tail, the regime the paper's heterogeneity argument needs.
	rng := rand.New(rand.NewSource(2))
	d := DefaultTrace()
	n := 50000
	small, large := 0, 0
	for i := 0; i < n; i++ {
		b := d.Sample(rng)
		if b <= 100 {
			small++
		}
		if b >= 500 {
			large++
		}
	}
	fSmall := float64(small) / float64(n)
	fLarge := float64(large) / float64(n)
	if fSmall < 0.55 || fSmall > 0.85 {
		t.Errorf("fraction of batch<=100 = %v, want in [0.55,0.85]", fSmall)
	}
	if fLarge < 0.01 || fLarge > 0.15 {
		t.Errorf("fraction of batch>=500 = %v, want in [0.01,0.15]", fLarge)
	}
}

func TestUniformPanicsOnBadRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []Uniform{{Min: 0, Max: 10}, {Min: 5, Max: 4}, {Min: 1, Max: 2000}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", d)
				}
			}()
			d.Sample(rng)
		}()
	}
}

func TestEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical(nil, ""); err == nil {
		t.Fatal("empty trace must error")
	}
	if _, err := NewEmpirical([]int{5, 0}, ""); err == nil {
		t.Fatal("out-of-range batch must error")
	}
	e, err := NewEmpirical([]int{10, 20, 30}, "mytrace")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "mytrace" {
		t.Fatalf("name = %s", e.Name())
	}
	rng := rand.New(rand.NewSource(3))
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[e.Sample(rng)] = true
	}
	for b := range seen {
		if b != 10 && b != 20 && b != 30 {
			t.Fatalf("sampled %d not in trace", b)
		}
	}
}

func TestPoissonStreamRate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rate := 150.0
	durMS := 60000.0
	arr := PoissonStream(rng, Fixed(10), rate, durMS)
	got := float64(len(arr)) / (durMS / 1000)
	if math.Abs(got-rate)/rate > 0.1 {
		t.Fatalf("empirical rate %v, want ~%v", got, rate)
	}
	prev := 0.0
	for _, a := range arr {
		if a.AtMS < prev || a.AtMS >= durMS {
			t.Fatal("arrivals must be ordered within [0,duration)")
		}
		prev = a.AtMS
	}
}

func TestPoissonStreamDeterministic(t *testing.T) {
	a := PoissonStream(rand.New(rand.NewSource(5)), DefaultTrace(), 100, 1000)
	b := PoissonStream(rand.New(rand.NewSource(5)), DefaultTrace(), 100, 1000)
	if len(a) != len(b) {
		t.Fatal("same seed produced different stream lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestPoissonStreamPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PoissonStream(rand.New(rand.NewSource(1)), Fixed(1), 0, 100)
}

func TestMonitorWindowEviction(t *testing.T) {
	m := NewMonitor(3)
	for _, b := range []int{10, 20, 30} {
		m.Observe(b)
	}
	if m.Count() != 3 {
		t.Fatalf("count = %d", m.Count())
	}
	m.Observe(40) // evicts 10
	if m.Count() != 3 {
		t.Fatalf("count after eviction = %d", m.Count())
	}
	if f := m.FractionAtMost(10); f != 0 {
		t.Fatalf("evicted sample still visible: f(10)=%v", f)
	}
	if f := m.FractionAtMost(40); f != 1 {
		t.Fatalf("f(40) = %v, want 1", f)
	}
}

func TestMonitorFractionAndQuantile(t *testing.T) {
	m := NewMonitor(100)
	for b := 1; b <= 100; b++ {
		m.Observe(b)
	}
	if f := m.FractionAtMost(50); f != 0.5 {
		t.Fatalf("f(50) = %v", f)
	}
	if q := m.Quantile(0.99); q != 99 {
		t.Fatalf("q99 = %d", q)
	}
	if q := m.Quantile(1.0); q != 100 {
		t.Fatalf("q100 = %d", q)
	}
	if mean := m.MeanBatch(); mean != 50.5 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestMonitorEmptyBehaviour(t *testing.T) {
	m := NewMonitor(10)
	if m.FractionAtMost(100) != 0 || m.MeanBatch() != 0 || m.Quantile(0.5) != 0 {
		t.Fatal("empty monitor must return zeros")
	}
	if len(m.Snapshot()) != 0 {
		t.Fatal("empty snapshot")
	}
}

func TestMonitorAdaptsToDistributionShift(t *testing.T) {
	// Fig. 12's premise: after the workload shifts, the monitor's view
	// converges to the new distribution within one window.
	m := NewMonitor(1000)
	rng := rand.New(rand.NewSource(6))
	m.Warm(rng, Fixed(50), 1000)
	if f := m.FractionAtMost(100); f != 1 {
		t.Fatalf("before shift f(100)=%v", f)
	}
	m.Warm(rng, Fixed(500), 1000) // shift: all large
	if f := m.FractionAtMost(100); f != 0 {
		t.Fatalf("after full window f(100)=%v, want 0", f)
	}
}

func TestMonitorFractionMonotone(t *testing.T) {
	m := NewMonitor(DefaultWindow)
	rng := rand.New(rand.NewSource(7))
	m.Warm(rng, DefaultTrace(), 5000)
	f := func(a, b uint16) bool {
		sa := int(a%MaxBatch) + 1
		sb := int(b%MaxBatch) + 1
		if sa > sb {
			sa, sb = sb, sa
		}
		return m.FractionAtMost(sa) <= m.FractionAtMost(sb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorObservePanics(t *testing.T) {
	m := NewMonitor(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Observe(0)
}

func TestNewMonitorPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMonitor(0)
}

func TestMonitorConcurrentObserveAndRead(t *testing.T) {
	// The network controller feeds the monitor from per-instance read
	// goroutines while planners snapshot it; run under -race.
	m := NewMonitor(100)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			m.Observe(i%MaxBatch + 1)
		}
	}()
	for i := 0; i < 500; i++ {
		m.Snapshot()
		m.Count()
		m.MeanBatch()
		m.FractionAtMost(100)
		m.Quantile(0.5)
	}
	<-done
}
