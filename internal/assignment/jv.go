package assignment

import (
	"errors"
	"math"
)

// ErrInfeasible is returned when no complete matching of the smaller side
// exists. With finite costs this cannot happen; it is kept for safety.
var ErrInfeasible = errors.New("assignment: infeasible cost matrix")

// Solve computes a minimum-cost assignment of the smaller side of the
// bipartite graph described by cost. If cost has m rows and n columns, the
// returned pairing matches min(m, n) row/column pairs; rows[k] is matched to
// cols[k]. The total cost of the matching is returned alongside.
//
// The implementation is the Jonker-Volgenant shortest augmenting path
// algorithm for dense rectangular problems (Crouse, 2016), the algorithm
// used by scipy.optimize.linear_sum_assignment that the paper's
// implementation calls (Sec. 6). Complexity is O(min(m,n)^2 * max(m,n)).
func Solve(cost Matrix) (rows, cols []int, total float64, err error) {
	if err := cost.validate(); err != nil {
		return nil, nil, 0, err
	}
	if cost.R == 0 || cost.C == 0 {
		return nil, nil, 0, nil
	}
	transposed := false
	m := cost
	if m.R > m.C {
		m = m.Transpose()
		transposed = true
	}
	col4row, err := solveRect(m)
	if err != nil {
		return nil, nil, 0, err
	}
	rows = make([]int, m.R)
	cols = make([]int, m.R)
	for i := 0; i < m.R; i++ {
		rows[i] = i
		cols[i] = col4row[i]
	}
	if transposed {
		rows, cols = cols, rows
	}
	total = cost.Cost(rows, cols)
	return rows, cols, total, nil
}

// solveRect runs the augmenting path algorithm assuming m.R <= m.C and
// returns col4row, the matched column for every row.
func solveRect(m Matrix) ([]int, error) {
	nr, nc := m.R, m.C

	u := make([]float64, nr) // row duals
	v := make([]float64, nc) // column duals
	shortest := make([]float64, nc)
	path := make([]int, nc) // predecessor row on the shortest path to each column
	col4row := make([]int, nr)
	row4col := make([]int, nc)
	for i := range col4row {
		col4row[i] = -1
	}
	for j := range row4col {
		row4col[j] = -1
	}
	inSR := make([]bool, nr)
	inSC := make([]bool, nc)
	// remaining holds the columns not yet scanned in the current augmentation.
	remaining := make([]int, nc)

	for curRow := 0; curRow < nr; curRow++ {
		for i := range inSR {
			inSR[i] = false
		}
		for j := range inSC {
			inSC[j] = false
		}
		for j := range shortest {
			shortest[j] = math.Inf(1)
			path[j] = -1
			remaining[j] = j
		}
		numRemaining := nc

		minVal := 0.0
		i := curRow
		sink := -1
		for sink == -1 {
			inSR[i] = true
			indexLowest := -1
			lowest := math.Inf(1)
			for it := 0; it < numRemaining; it++ {
				j := remaining[it]
				r := minVal + m.At(i, j) - u[i] - v[j]
				if r < shortest[j] {
					shortest[j] = r
					path[j] = i
				}
				// Tie-break toward already-free columns so augmentation paths
				// stay short (mirrors the scipy implementation).
				if shortest[j] < lowest || (shortest[j] == lowest && row4col[j] == -1) {
					lowest = shortest[j]
					indexLowest = it
				}
			}
			minVal = lowest
			if math.IsInf(minVal, 1) {
				return nil, ErrInfeasible
			}
			j := remaining[indexLowest]
			if row4col[j] == -1 {
				sink = j
			} else {
				i = row4col[j]
			}
			inSC[j] = true
			numRemaining--
			remaining[indexLowest] = remaining[numRemaining]
		}

		// Dual updates.
		u[curRow] += minVal
		for ii := 0; ii < nr; ii++ {
			if inSR[ii] && ii != curRow {
				u[ii] += minVal - shortest[col4row[ii]]
			}
		}
		for j := 0; j < nc; j++ {
			if inSC[j] {
				v[j] -= minVal - shortest[j]
			}
		}

		// Augment along the alternating path ending at sink.
		j := sink
		for {
			ii := path[j]
			row4col[j] = ii
			col4row[ii], j = j, col4row[ii]
			if ii == curRow {
				break
			}
		}
	}
	return col4row, nil
}
