package assignment

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustSolve(t *testing.T, m Matrix) ([]int, []int, float64) {
	t.Helper()
	rows, cols, total, err := Solve(m)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return rows, cols, total
}

func TestSolveEmpty(t *testing.T) {
	rows, cols, total, err := Solve(Matrix{})
	if err != nil || len(rows) != 0 || len(cols) != 0 || total != 0 {
		t.Fatalf("empty matrix: got rows=%v cols=%v total=%v err=%v", rows, cols, total, err)
	}
}

func TestSolveSingleCell(t *testing.T) {
	m := NewMatrix(1, 1)
	m.Set(0, 0, 7.5)
	rows, cols, total := mustSolve(t, m)
	if len(rows) != 1 || rows[0] != 0 || cols[0] != 0 || total != 7.5 {
		t.Fatalf("got rows=%v cols=%v total=%v", rows, cols, total)
	}
}

func TestSolveKnownSquare(t *testing.T) {
	// Classic example: optimal assignment is the anti-diagonal.
	m, err := FromRows([][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, cols, total := mustSolve(t, m)
	if total != 5 {
		t.Fatalf("total = %v, want 5", total)
	}
	want := []int{1, 0, 2}
	for i, c := range cols {
		if c != want[i] {
			t.Fatalf("cols = %v, want %v", cols, want)
		}
	}
}

func TestSolveWideMatrix(t *testing.T) {
	// 2 queries, 4 instances: both queries must be matched (Eq. 7).
	m, err := FromRows([][]float64{
		{10, 3, 8, 5},
		{4, 9, 2, 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, cols, total := mustSolve(t, m)
	if len(rows) != 2 {
		t.Fatalf("matched %d pairs, want 2", len(rows))
	}
	if total != 5 { // 3 + 2
		t.Fatalf("total = %v, want 5 (cols %v)", total, cols)
	}
}

func TestSolveTallMatrix(t *testing.T) {
	// 4 queries, 2 instances: exactly 2 queries matched (Eq. 7 with n < m).
	m, err := FromRows([][]float64{
		{10, 9},
		{1, 8},
		{7, 2},
		{6, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, cols, total := mustSolve(t, m)
	if len(rows) != 2 {
		t.Fatalf("matched %d pairs, want 2", len(rows))
	}
	if total != 3 { // rows 1 and 2 at cost 1 + 2
		t.Fatalf("total = %v (rows %v cols %v), want 3", total, rows, cols)
	}
}

func TestSolveRejectsNaNAndInf(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, math.NaN())
	if _, _, _, err := Solve(m); err == nil {
		t.Fatal("expected error for NaN cost")
	}
	m2 := NewMatrix(2, 2)
	m2.Set(1, 0, math.Inf(1))
	if _, _, _, err := Solve(m2); err == nil {
		t.Fatal("expected error for +Inf cost")
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestSolveNegativeCosts(t *testing.T) {
	m, err := FromRows([][]float64{
		{-5, 2},
		{3, -4},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, total := mustSolve(t, m)
	if total != -9 {
		t.Fatalf("total = %v, want -9", total)
	}
}

func TestSolveDuplicateCostsStable(t *testing.T) {
	// All costs equal: any perfect matching is optimal, total must be n*c.
	m := NewMatrix(5, 5)
	for i := range m.Data {
		m.Data[i] = 3
	}
	rows, cols, total := mustSolve(t, m)
	if total != 15 {
		t.Fatalf("total = %v, want 15", total)
	}
	checkValidMatching(t, m, rows, cols)
}

// checkValidMatching verifies Eq. 6/7: each row and column used at most once
// and exactly min(m,n) pairs matched.
func checkValidMatching(t *testing.T, m Matrix, rows, cols []int) {
	t.Helper()
	want := m.R
	if m.C < want {
		want = m.C
	}
	if len(rows) != want || len(cols) != want {
		t.Fatalf("matched %d/%d pairs, want %d", len(rows), len(cols), want)
	}
	seenR := map[int]bool{}
	seenC := map[int]bool{}
	for k := range rows {
		if rows[k] < 0 || rows[k] >= m.R || cols[k] < 0 || cols[k] >= m.C {
			t.Fatalf("pair (%d,%d) out of range for %dx%d", rows[k], cols[k], m.R, m.C)
		}
		if seenR[rows[k]] {
			t.Fatalf("row %d matched twice", rows[k])
		}
		if seenC[cols[k]] {
			t.Fatalf("col %d matched twice", cols[k])
		}
		seenR[rows[k]] = true
		seenC[cols[k]] = true
	}
}

func randomMatrix(rng *rand.Rand, r, c int, scale float64) Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = math.Round(rng.Float64()*scale*100) / 100
	}
	return m
}

// TestSolveMatchesBruteForce is the core property test: on random small
// matrices, JV, Hungarian, and brute force must all find the same optimal
// total cost, and the JV matching must be structurally valid.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(rs, cs uint8) bool {
		r := int(rs%6) + 1
		c := int(cs%6) + 1
		m := randomMatrix(rng, r, c, 50)
		rows, cols, jvTotal, err := Solve(m)
		if err != nil {
			t.Logf("Solve error: %v", err)
			return false
		}
		checkValidMatching(t, m, rows, cols)
		_, _, bfTotal, err := BruteForce(m)
		if err != nil {
			t.Logf("BruteForce error: %v", err)
			return false
		}
		_, _, hTotal, err := Hungarian(m)
		if err != nil {
			t.Logf("Hungarian error: %v", err)
			return false
		}
		if math.Abs(jvTotal-bfTotal) > 1e-9 {
			t.Logf("JV=%v brute=%v matrix=%v", jvTotal, bfTotal, m)
			return false
		}
		if math.Abs(hTotal-bfTotal) > 1e-9 {
			t.Logf("Hungarian=%v brute=%v matrix=%v", hTotal, bfTotal, m)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSolveMatchesHungarianLarge cross-checks the two polynomial solvers on
// larger instances where brute force is intractable.
func TestSolveMatchesHungarianLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		r := rng.Intn(40) + 1
		c := rng.Intn(40) + 1
		m := randomMatrix(rng, r, c, 1000)
		rows, cols, jvTotal, err := Solve(m)
		if err != nil {
			t.Fatal(err)
		}
		checkValidMatching(t, m, rows, cols)
		_, _, hTotal, err := Hungarian(m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(jvTotal-hTotal) > 1e-6 {
			t.Fatalf("trial %d (%dx%d): JV=%v Hungarian=%v", trial, r, c, jvTotal, hTotal)
		}
	}
}

// TestSolvePenaltyAvoidance mirrors Kairos Eq. 8: entries carrying a large
// penalty must be avoided whenever a feasible perfect matching exists.
func TestSolvePenaltyAvoidance(t *testing.T) {
	const penalty = 3500 // 10x a 350ms QoS target
	m, err := FromRows([][]float64{
		{penalty, 120, 80},
		{200, penalty, penalty},
		{150, 90, penalty},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, cols, total := mustSolve(t, m)
	if total >= penalty {
		t.Fatalf("matching used a penalized edge: total=%v rows=%v cols=%v", total, rows, cols)
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.R != 3 || tr.C != 2 {
		t.Fatalf("transpose dims %dx%d", tr.R, tr.C)
	}
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func BenchmarkSolve20x20(b *testing.B) {
	// Sec. 6: a 20-query-20-instance matching plus network delay fits in
	// 0.05ms; the solver alone should be far below that.
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 20, 20, 350)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Solve(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve100x100(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 100, 100, 350)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Solve(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve200Queries20Instances(b *testing.B) {
	// "hundreds of queries arriving concurrently ... well within 1ms" (Sec. 6).
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 200, 20, 350)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Solve(m); err != nil {
			b.Fatal(err)
		}
	}
}
