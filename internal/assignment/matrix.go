// Package assignment provides solvers for the rectangular linear sum
// assignment problem (min-cost bipartite matching).
//
// Kairos (Sec. 5.1) reduces its query-distribution problem to min-cost
// bipartite matching between queries and instances and solves it with the
// Jonker-Volgenant shortest augmenting path algorithm, the same algorithm
// behind scipy.optimize.linear_sum_assignment used by the paper's
// implementation. This package supplies that solver plus two independent
// reference implementations (Hungarian and brute force) used to cross-check
// it in property-based tests.
package assignment

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major cost matrix with R rows and C columns.
// The zero value is an empty matrix.
type Matrix struct {
	R, C int
	Data []float64
}

// NewMatrix allocates an R x C matrix of zeros.
func NewMatrix(r, c int) Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("assignment: negative matrix dimensions %dx%d", r, c))
	}
	return Matrix{R: r, C: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (Matrix, error) {
	if len(rows) == 0 {
		return Matrix{}, nil
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return Matrix{}, fmt.Errorf("assignment: ragged row %d: got %d columns, want %d", i, len(row), c)
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// At returns the element at row i, column j.
func (m Matrix) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set stores v at row i, column j.
func (m Matrix) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Transpose returns a new matrix that is the transpose of m.
func (m Matrix) Transpose() Matrix {
	t := NewMatrix(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// validate rejects matrices containing NaN; infinities are rejected as well
// because Kairos encodes infeasibility with a large finite penalty (Eq. 8)
// rather than with non-finite costs.
func (m Matrix) validate() error {
	for idx, v := range m.Data {
		if math.IsNaN(v) {
			return fmt.Errorf("assignment: NaN cost at row %d col %d", idx/m.C, idx%m.C)
		}
		if math.IsInf(v, 0) {
			return fmt.Errorf("assignment: infinite cost at row %d col %d (use a finite penalty)", idx/m.C, idx%m.C)
		}
	}
	return nil
}

// Cost sums the matrix entries selected by the pairing (rows[k], cols[k]).
func (m Matrix) Cost(rows, cols []int) float64 {
	total := 0.0
	for k := range rows {
		total += m.At(rows[k], cols[k])
	}
	return total
}
