package assignment

import "math"

// Hungarian computes a minimum-cost assignment using the O(n^3)
// potentials-based Kuhn-Munkres algorithm. It is an independent reference
// implementation used to cross-check the Jonker-Volgenant solver; both must
// agree on the optimal total cost for every input.
func Hungarian(cost Matrix) (rows, cols []int, total float64, err error) {
	if err := cost.validate(); err != nil {
		return nil, nil, 0, err
	}
	if cost.R == 0 || cost.C == 0 {
		return nil, nil, 0, nil
	}
	transposed := false
	m := cost
	if m.R > m.C {
		m = m.Transpose()
		transposed = true
	}
	nr, nc := m.R, m.C

	// 1-indexed arrays in the classic formulation.
	u := make([]float64, nr+1)
	v := make([]float64, nc+1)
	p := make([]int, nc+1)   // p[j] = row matched to column j (0 = none)
	way := make([]int, nc+1) // way[j] = previous column on the alternating path
	for i := 1; i <= nr; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, nc+1)
		used := make([]bool, nc+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= nc; j++ {
				if used[j] {
					continue
				}
				cur := m.At(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 == -1 {
				return nil, nil, 0, ErrInfeasible
			}
			for j := 0; j <= nc; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rows = make([]int, 0, nr)
	cols = make([]int, 0, nr)
	for j := 1; j <= nc; j++ {
		if p[j] != 0 {
			rows = append(rows, p[j]-1)
			cols = append(cols, j-1)
		}
	}
	if transposed {
		rows, cols = cols, rows
	}
	total = cost.Cost(rows, cols)
	return rows, cols, total, nil
}

// BruteForce enumerates every maximal matching and returns an optimal one.
// It is exponential and intended only for property tests on tiny inputs
// (min(m, n) <= 8 or so).
func BruteForce(cost Matrix) (rows, cols []int, total float64, err error) {
	if err := cost.validate(); err != nil {
		return nil, nil, 0, err
	}
	if cost.R == 0 || cost.C == 0 {
		return nil, nil, 0, nil
	}
	transposed := false
	m := cost
	if m.R > m.C {
		m = m.Transpose()
		transposed = true
	}
	best := math.Inf(1)
	bestCols := make([]int, m.R)
	cur := make([]int, m.R)
	usedCol := make([]bool, m.C)
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if acc >= best {
			return
		}
		if i == m.R {
			best = acc
			copy(bestCols, cur)
			return
		}
		for j := 0; j < m.C; j++ {
			if usedCol[j] {
				continue
			}
			usedCol[j] = true
			cur[i] = j
			rec(i+1, acc+m.At(i, j))
			usedCol[j] = false
		}
	}
	rec(0, 0)
	rows = make([]int, m.R)
	cols = make([]int, m.R)
	for i := 0; i < m.R; i++ {
		rows[i] = i
		cols[i] = bestCols[i]
	}
	if transposed {
		rows, cols = cols, rows
	}
	total = cost.Cost(rows, cols)
	return rows, cols, total, nil
}
