package assignment

import (
	"math/rand"
	"testing"
)

// The assignment solvers are the matching distributor's inner loop; these
// benchmarks feed the CI perf-tracking job (BENCH_micro.json).
// randomMatrix comes from assignment_test.go.

func benchSolver(b *testing.B, solve func(Matrix) ([]int, []int, float64, error), n int) {
	m := randomMatrix(rand.New(rand.NewSource(42)), n, n, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := solve(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHungarian16(b *testing.B) { benchSolver(b, Hungarian, 16) }
func BenchmarkHungarian64(b *testing.B) { benchSolver(b, Hungarian, 64) }
func BenchmarkJV16(b *testing.B)        { benchSolver(b, Solve, 16) }
func BenchmarkJV64(b *testing.B)        { benchSolver(b, Solve, 64) }
func BenchmarkJVRect32x8(b *testing.B) {
	m := randomMatrix(rand.New(rand.NewSource(42)), 32, 8, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Solve(m); err != nil {
			b.Fatal(err)
		}
	}
}
