// Package distributor implements the competing query-distribution schemes
// the paper evaluates Kairos against (Sec. 7): Ribbon's base-preferring
// FCFS, DeepRecSys's static batch-size threshold (DRS) with its
// hill-climbing tuner, and Clockwork's latency-consolidating central
// controller (CLKWRK). All of them implement sim.Distributor.
package distributor

import (
	"fmt"
	"math"

	"kairos/internal/predictor"
	"kairos/internal/sim"
)

// Options are shared knobs for the baseline schemes.
type Options struct {
	// QoS is the model's tail-latency target in ms.
	QoS float64
	// BaseType names the base instance type (preferred by Ribbon, the
	// large-query pool for DRS).
	BaseType string
	// Predictor estimates latencies. The paper grants the baselines
	// accurate predictions; experiments pass a ground-truth oracle.
	Predictor predictor.Predictor
}

// Validate reports whether the shared knobs are usable. Policy factories
// check ahead of construction and return the error; the constructors
// themselves still panic on the same conditions (internal misuse).
func (o Options) Validate() error {
	if o.QoS <= 0 {
		return fmt.Errorf("distributor: QoS must be positive (got %v)", o.QoS)
	}
	if o.BaseType == "" {
		return fmt.Errorf("distributor: BaseType required")
	}
	if o.Predictor == nil {
		return fmt.Errorf("distributor: Predictor required")
	}
	return nil
}

func (o Options) validate() {
	if err := o.Validate(); err != nil {
		panic(err)
	}
}

// Ribbon is the paper's RIBBON baseline: strict first-come-first-serve
// dispatch of the arrived query "on the best instance available" (Sec. 4),
// preferring the base type when multiple instances are idle. A query is
// held while no instance type that can meet its QoS is idle (Ribbon the
// system is QoS-aware, Table 1), with a liveness fallback to the fastest
// idle instance when no type in the cluster could ever serve the batch in
// time. Its weaknesses — head-of-line blocking and spending base instances
// on small queries — are why Fig. 3 and Fig. 9 place it last.
type Ribbon struct {
	opts Options
}

// NewRibbon builds the scheme.
func NewRibbon(opts Options) *Ribbon {
	opts.validate()
	return &Ribbon{opts: opts}
}

// Name implements sim.Distributor.
func (r *Ribbon) Name() string { return "RIBBON" }

// Assign implements sim.Distributor.
func (r *Ribbon) Assign(_ float64, waiting []sim.QueryView, instances []sim.InstanceView) []sim.Assignment {
	used := map[int]bool{}
	var out []sim.Assignment
	for _, q := range waiting {
		idx := r.placeIdle(q.Batch, instances, used)
		if idx == -1 {
			// Strict FCFS: the head of the line blocks everyone behind it.
			break
		}
		used[idx] = true
		out = append(out, sim.Assignment{Query: q.Index, Instance: idx})
	}
	return out
}

// placeIdle returns the index of an idle instance for the batch: an idle
// base instance if any, otherwise the fastest QoS-meeting idle instance.
// It returns -1 (hold the query) when a QoS-capable type exists in the
// cluster but none of its instances is idle.
func (r *Ribbon) placeIdle(batch int, instances []sim.InstanceView, used map[int]bool) int {
	idle := func(in sim.InstanceView) bool { return in.Backlog() == 0 && !used[in.Index] }
	meets := func(in sim.InstanceView) bool {
		return r.opts.Predictor.Predict(in.TypeName, batch) <= r.opts.QoS
	}
	for _, in := range instances {
		if in.TypeName == r.opts.BaseType && idle(in) {
			return in.Index
		}
	}
	best, bestLat := -1, math.Inf(1)
	for _, in := range instances {
		if !idle(in) || !meets(in) {
			continue
		}
		if lat := r.opts.Predictor.Predict(in.TypeName, batch); lat < bestLat {
			best, bestLat = in.Index, lat
		}
	}
	if best != -1 {
		return best
	}
	feasibleTypeExists := false
	for _, in := range instances {
		if meets(in) {
			feasibleTypeExists = true
			break
		}
	}
	if feasibleTypeExists {
		return -1 // wait for a capable instance to free up
	}
	// Liveness fallback: nothing in the cluster can ever meet QoS for this
	// batch; serve it on the fastest idle instance anyway.
	for _, in := range instances {
		if !idle(in) {
			continue
		}
		if lat := r.opts.Predictor.Predict(in.TypeName, batch); lat < bestLat {
			best, bestLat = in.Index, lat
		}
	}
	return best
}

// DRS is the DeepRecSys-style scheme: a static batch-size threshold decides
// whether a query goes to the base (GPU) pool or the auxiliary (CPU) pool;
// each pool runs FCFS over its idle instances. The threshold is tuned per
// configuration by hill climbing (TuneDRSThreshold), which is exactly the
// per-configuration overhead the paper criticizes.
type DRS struct {
	opts Options
	// Threshold routes batch > Threshold to the base pool.
	threshold int
}

// NewDRS builds the scheme with the given routing threshold.
func NewDRS(opts Options, threshold int) *DRS {
	opts.validate()
	if threshold < 0 {
		panic("distributor: negative DRS threshold")
	}
	return &DRS{opts: opts, threshold: threshold}
}

// Name implements sim.Distributor.
func (d *DRS) Name() string { return fmt.Sprintf("DRS(t=%d)", d.threshold) }

// Threshold returns the routing threshold.
func (d *DRS) Threshold() int { return d.threshold }

// Assign implements sim.Distributor: two FCFS lanes (base pool and aux
// pool) with head-of-line blocking inside each lane.
func (d *DRS) Assign(_ float64, waiting []sim.QueryView, instances []sim.InstanceView) []sim.Assignment {
	hasBase, hasAux := false, false
	for _, in := range instances {
		if in.TypeName == d.opts.BaseType {
			hasBase = true
		} else {
			hasAux = true
		}
	}
	used := map[int]bool{}
	var out []sim.Assignment
	baseBlocked, auxBlocked := false, false
	for _, q := range waiting {
		toBase := q.Batch > d.threshold
		if toBase && !hasBase {
			toBase = false
		}
		if !toBase && !hasAux {
			toBase = true
		}
		if toBase && baseBlocked || !toBase && auxBlocked {
			continue
		}
		idx := -1
		for _, in := range instances {
			if used[in.Index] || in.Backlog() != 0 {
				continue
			}
			if (in.TypeName == d.opts.BaseType) == toBase {
				idx = in.Index
				break
			}
		}
		if idx == -1 {
			if toBase {
				baseBlocked = true
			} else {
				auxBlocked = true
			}
			if baseBlocked && auxBlocked {
				break
			}
			continue
		}
		used[idx] = true
		out = append(out, sim.Assignment{Query: q.Index, Instance: idx})
	}
	return out
}

// Clockwork is the CLKWRK baseline: a central controller that tracks every
// instance's queue timing, predicts query latency accurately, and sends
// each arriving query to a per-instance FCFS queue (Sec. 7). It places the
// query on the queue with the earliest predicted completion; since
// feasibility (completion + wait <= QoS) is monotone in completion time,
// this guarantees the query is served within its latency target unless no
// instance can meet it — the paper's description — while remaining
// heterogeneity-blind ("unlike Kairos, it does not optimize on
// heterogeneous instances", Sec. 2).
type Clockwork struct {
	opts Options
}

// NewClockwork builds the scheme.
func NewClockwork(opts Options) *Clockwork {
	opts.validate()
	return &Clockwork{opts: opts}
}

// Name implements sim.Distributor.
func (c *Clockwork) Name() string { return "CLKWRK" }

// Assign implements sim.Distributor: every waiting query is dispatched
// immediately; queries never wait centrally.
func (c *Clockwork) Assign(_ float64, waiting []sim.QueryView, instances []sim.InstanceView) []sim.Assignment {
	// drain[i] tracks each instance's projected busy time as this round's
	// queries pile onto the queues.
	drain := make(map[int]float64, len(instances))
	for _, in := range instances {
		d := in.RemainingMS
		for _, b := range in.QueuedBatches {
			d += c.opts.Predictor.Predict(in.TypeName, b)
		}
		drain[in.Index] = d
	}
	out := make([]sim.Assignment, 0, len(waiting))
	for _, q := range waiting {
		best, bestAt := -1, math.Inf(1)
		var bestType string
		for _, in := range instances {
			finish := drain[in.Index] + c.opts.Predictor.Predict(in.TypeName, q.Batch)
			if finish < bestAt {
				best, bestAt = in.Index, finish
				bestType = in.TypeName
			}
		}
		drain[best] += c.opts.Predictor.Predict(bestType, q.Batch)
		out = append(out, sim.Assignment{Query: q.Index, Instance: best})
	}
	return out
}
