package distributor

import (
	"testing"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/predictor"
	"kairos/internal/sim"
	"kairos/internal/workload"
)

func rm2Options() Options {
	m := models.MustByName("RM2")
	return Options{
		QoS:       m.QoS,
		BaseType:  cloud.G4dnXlarge.Name,
		Predictor: predictor.Oracle{Latency: m.Latency},
	}
}

func idle(idx int, typeName string) sim.InstanceView {
	return sim.InstanceView{Index: idx, TypeName: typeName}
}

func busy(idx int, typeName string, remaining float64) sim.InstanceView {
	return sim.InstanceView{Index: idx, TypeName: typeName, RemainingMS: remaining}
}

func TestOptionsValidation(t *testing.T) {
	good := rm2Options()
	cases := []Options{
		{QoS: 0, BaseType: good.BaseType, Predictor: good.Predictor},
		{QoS: 1, BaseType: "", Predictor: good.Predictor},
		{QoS: 1, BaseType: "x", Predictor: nil},
	}
	for i, opts := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			NewRibbon(opts)
		}()
	}
}

func TestRibbonPrefersBase(t *testing.T) {
	r := NewRibbon(rm2Options())
	got := r.Assign(0,
		[]sim.QueryView{{Index: 0, Batch: 10}},
		[]sim.InstanceView{idle(0, "r5n.large"), idle(1, "g4dn.xlarge")})
	if len(got) != 1 || got[1-1].Instance != 1 {
		t.Fatalf("assignments = %v, want the base instance", got)
	}
}

func TestRibbonHoldsQoSInfeasiblePlacement(t *testing.T) {
	r := NewRibbon(rm2Options())
	// Batch 800 violates QoS on r5n (9+1080ms >> 350ms) and the base is
	// busy — Ribbon holds the query for the capable (base) type.
	got := r.Assign(0,
		[]sim.QueryView{{Index: 0, Batch: 800}},
		[]sim.InstanceView{idle(0, "r5n.large"), busy(1, "g4dn.xlarge", 50)})
	if len(got) != 0 {
		t.Fatalf("assignments = %v, want hold for the busy base", got)
	}
}

func TestRibbonLivenessWithoutCapableType(t *testing.T) {
	r := NewRibbon(rm2Options())
	// Aux-only cluster, batch 1000: no type can meet QoS; serve on the
	// fastest idle instance anyway to keep the system live (for RM2 the
	// r5n curve, 6+0.9b, beats c5n's 10+1.0b).
	got := r.Assign(0,
		[]sim.QueryView{{Index: 0, Batch: 1000}},
		[]sim.InstanceView{idle(0, "c5n.2xlarge"), idle(1, "r5n.large")})
	if len(got) != 1 || got[0].Instance != 1 {
		t.Fatalf("assignments = %v, want fastest idle aux (r5n)", got)
	}
}

func TestRibbonHeadOfLineBlocking(t *testing.T) {
	r := NewRibbon(rm2Options())
	// Everything busy: the head blocks and nothing is dispatched even
	// though more queries wait behind it.
	got := r.Assign(0,
		[]sim.QueryView{
			{Index: 0, Batch: 800},
			{Index: 1, Batch: 10},
		},
		[]sim.InstanceView{busy(0, "r5n.large", 10), busy(1, "g4dn.xlarge", 50)})
	if len(got) != 0 {
		t.Fatalf("assignments = %v, head-of-line must block", got)
	}
}

func TestRibbonSmallQueryTakesFastestFeasibleAux(t *testing.T) {
	r := NewRibbon(rm2Options())
	// No base idle; both CPUs meet QoS for batch 50: the faster (r5n for
	// RM2) wins.
	got := r.Assign(0,
		[]sim.QueryView{{Index: 0, Batch: 50}},
		[]sim.InstanceView{idle(0, "c5n.2xlarge"), idle(1, "r5n.large"), busy(2, "g4dn.xlarge", 10)})
	if len(got) != 1 || got[0].Instance != 1 {
		t.Fatalf("assignments = %v, want r5n", got)
	}
}

func TestRibbonName(t *testing.T) {
	if NewRibbon(rm2Options()).Name() != "RIBBON" {
		t.Fatal("bad name")
	}
}

func TestDRSRoutesByThreshold(t *testing.T) {
	d := NewDRS(rm2Options(), 200)
	got := d.Assign(0,
		[]sim.QueryView{
			{Index: 0, Batch: 500}, // > 200: base pool
			{Index: 1, Batch: 100}, // <= 200: aux pool
		},
		[]sim.InstanceView{idle(0, "g4dn.xlarge"), idle(1, "r5n.large")})
	if len(got) != 2 {
		t.Fatalf("assignments = %v", got)
	}
	placed := map[int]int{}
	for _, a := range got {
		placed[a.Query] = a.Instance
	}
	if placed[0] != 0 || placed[1] != 1 {
		t.Fatalf("routing wrong: %v", placed)
	}
}

func TestDRSLanesBlockIndependently(t *testing.T) {
	d := NewDRS(rm2Options(), 200)
	// Base busy: a large query blocks the base lane but the small query
	// behind it still flows to the aux lane.
	got := d.Assign(0,
		[]sim.QueryView{
			{Index: 0, Batch: 500},
			{Index: 1, Batch: 100},
		},
		[]sim.InstanceView{busy(0, "g4dn.xlarge", 60), idle(1, "r5n.large")})
	if len(got) != 1 || got[0].Query != 1 || got[0].Instance != 1 {
		t.Fatalf("assignments = %v, want only the aux-lane dispatch", got)
	}
}

func TestDRSIgnoresPerTypeQoS(t *testing.T) {
	// DRS's weakness (Sec. 8.2): a threshold admitting batches beyond a
	// weak auxiliary's own cutoff still routes them there.
	d := NewDRS(rm2Options(), 300)
	// t3.xlarge cutoff for RM2 is (350-11)/2.2 = 154; batch 250 violates.
	got := d.Assign(0,
		[]sim.QueryView{{Index: 0, Batch: 250}},
		[]sim.InstanceView{idle(0, "t3.xlarge"), idle(1, "g4dn.xlarge")})
	if len(got) != 1 || got[0].Instance != 0 {
		t.Fatalf("assignments = %v, DRS must follow its threshold blindly", got)
	}
}

func TestDRSPoolFallbacks(t *testing.T) {
	d := NewDRS(rm2Options(), 200)
	// No aux instances: small queries fall back to the base pool.
	got := d.Assign(0,
		[]sim.QueryView{{Index: 0, Batch: 10}},
		[]sim.InstanceView{idle(0, "g4dn.xlarge")})
	if len(got) != 1 || got[0].Instance != 0 {
		t.Fatalf("base fallback failed: %v", got)
	}
	// No base instances: large queries fall back to the aux pool.
	got = d.Assign(0,
		[]sim.QueryView{{Index: 0, Batch: 900}},
		[]sim.InstanceView{idle(0, "r5n.large")})
	if len(got) != 1 || got[0].Instance != 0 {
		t.Fatalf("aux fallback failed: %v", got)
	}
}

func TestDRSValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative threshold")
		}
	}()
	NewDRS(rm2Options(), -1)
}

func TestClockworkDispatchesEverything(t *testing.T) {
	c := NewClockwork(rm2Options())
	waiting := []sim.QueryView{
		{Index: 0, Batch: 100},
		{Index: 1, Batch: 200},
		{Index: 2, Batch: 300},
	}
	got := c.Assign(0, waiting, []sim.InstanceView{idle(0, "g4dn.xlarge"), idle(1, "c5n.2xlarge")})
	if len(got) != 3 {
		t.Fatalf("CLKWRK must dispatch all queries within queue depth: %v", got)
	}
}

func TestClockworkPicksQoSMeetingQueue(t *testing.T) {
	c := NewClockwork(rm2Options())
	// Batch 100: g4dn 67.5ms, c5n 110ms. Base busy for 300ms: completion
	// 367.5 > 350 QoS; idle c5n completes at 110 and meets QoS.
	got := c.Assign(0,
		[]sim.QueryView{{Index: 0, Batch: 100}},
		[]sim.InstanceView{busy(0, "g4dn.xlarge", 300), idle(1, "c5n.2xlarge")})
	if len(got) != 1 || got[0].Instance != 1 {
		t.Fatalf("assignments = %v, want the QoS-meeting CPU", got)
	}
}

func TestClockworkPicksEarliestCompletion(t *testing.T) {
	c := NewClockwork(rm2Options())
	// Batch 200: r5n finishes at 206ms, c5n at 250ms; earliest wins.
	got := c.Assign(0,
		[]sim.QueryView{{Index: 0, Batch: 200}},
		[]sim.InstanceView{idle(0, "c5n.2xlarge"), idle(1, "r5n.large")})
	if len(got) != 1 || got[0].Instance != 1 {
		t.Fatalf("assignments = %v, want the earliest completion (r5n)", got)
	}
}

func TestClockworkFallsBackToEarliest(t *testing.T) {
	c := NewClockwork(rm2Options())
	// Nothing meets QoS for batch 900 (base busy 400ms: 400+111.5 > 350;
	// r5n alone needs 816ms). Earliest completion must win: base at 511.5
	// versus r5n at 816.
	got := c.Assign(0,
		[]sim.QueryView{{Index: 0, Batch: 900}},
		[]sim.InstanceView{busy(0, "g4dn.xlarge", 400), idle(1, "r5n.large")})
	if len(got) != 1 || got[0].Instance != 0 {
		t.Fatalf("assignments = %v, want earliest completion", got)
	}
}

func TestClockworkAccountsIntraRoundLoad(t *testing.T) {
	c := NewClockwork(rm2Options())
	// Two identical queries, two idle identical instances: the second must
	// go to the other instance because the first consumed queue time.
	got := c.Assign(0,
		[]sim.QueryView{{Index: 0, Batch: 100}, {Index: 1, Batch: 100}},
		[]sim.InstanceView{idle(0, "g4dn.xlarge"), idle(1, "g4dn.xlarge")})
	if len(got) != 2 || got[0].Instance == got[1].Instance {
		t.Fatalf("assignments = %v, want spreading across instances", got)
	}
}

func TestClockworkDispatchesWholeLine(t *testing.T) {
	c := NewClockwork(rm2Options())
	// Four queries, one instance: every query goes straight onto the
	// per-instance FCFS queue (queries never wait centrally, Sec. 7).
	waiting := make([]sim.QueryView, 4)
	for i := range waiting {
		waiting[i] = sim.QueryView{Index: i, Batch: 100}
	}
	got := c.Assign(0, waiting, []sim.InstanceView{idle(0, "g4dn.xlarge")})
	if len(got) != 4 {
		t.Fatalf("dispatched %d, want 4", len(got))
	}
}

func TestTuneDRSThresholdUnimodal(t *testing.T) {
	// Peak at 400 on a concave curve.
	f := func(thr int) float64 {
		d := float64(thr - 400)
		return 1000 - d*d/100
	}
	best, bestVal, evals := TuneDRSThreshold(f, 100, 50, 1000)
	if best != 400 {
		t.Fatalf("best threshold = %d, want 400", best)
	}
	if bestVal != 1000 {
		t.Fatalf("best value = %v", bestVal)
	}
	if evals < 5 || evals > 20 {
		t.Fatalf("evals = %d, implausible for a hill climb", evals)
	}
}

func TestTuneDRSThresholdClamps(t *testing.T) {
	// Monotone increasing: must stop at maxBatch without overflow.
	f := func(thr int) float64 { return float64(thr) }
	best, _, _ := TuneDRSThreshold(f, 900, 100, 1000)
	if best != 1000 {
		t.Fatalf("best = %d, want clamp at 1000", best)
	}
	// Monotone decreasing: clamp at zero.
	g := func(thr int) float64 { return -float64(thr) }
	best, _, _ = TuneDRSThreshold(g, 100, 64, 1000)
	if best != 0 {
		t.Fatalf("best = %d, want clamp at 0", best)
	}
}

func TestTuneDRSThresholdPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TuneDRSThreshold(func(int) float64 { return 0 }, 0, 0, 1000)
}

// TestSchemesEndToEnd runs every baseline through the simulator on a
// heterogeneous pool and checks the paper's qualitative ordering at a
// moderate load: CLKWRK and DRS both dominate Ribbon (Sec. 8.2, "both DRS
// and CLKWRK outperform the Ribbon scheme").
func TestSchemesEndToEnd(t *testing.T) {
	t.Parallel()
	m := models.MustByName("RM2")
	pool := cloud.ThreeTypePool()
	spec := sim.ClusterSpec{Pool: pool, Config: cloud.Config{2, 1, 3}, Model: m}
	find := func(factory sim.DistributorFactory) float64 {
		return sim.FindAllowableThroughput(spec, factory, sim.FindOptions{
			DurationMS: 30000, Seed: 77, PrecisionFrac: 0.05,
			Batches: workload.DefaultTrace(),
		})
	}
	opts := rm2Options()
	ribbon := find(func() sim.Distributor { return NewRibbon(opts) })
	clkwrk := find(func() sim.Distributor { return NewClockwork(opts) })
	// DRS gets its hill-climbed threshold, as in the paper's methodology.
	_, drs, _ := TuneDRSThreshold(func(thr int) float64 {
		return find(func() sim.Distributor { return NewDRS(opts, thr) })
	}, 150, 50, 1000)
	if ribbon <= 0 || clkwrk <= 0 || drs <= 0 {
		t.Fatalf("throughputs: ribbon=%v drs=%v clkwrk=%v", ribbon, drs, clkwrk)
	}
	if clkwrk < ribbon {
		t.Errorf("CLKWRK (%v) should not trail RIBBON (%v)", clkwrk, ribbon)
	}
	if drs < ribbon*0.9 {
		t.Errorf("tuned DRS (%v) collapsed versus RIBBON (%v)", drs, ribbon)
	}
}
