package distributor

// TuneDRSThreshold performs the hill-climbing sweep DeepRecSys uses to find
// its query-size routing threshold (Sec. 7: "a hill-climbing sweep is used
// ... to find the threshold that yields the highest throughput"). eval
// measures the allowable throughput of a threshold; the climb starts at
// start and moves in steps of step within [0, maxBatch] until neither
// neighbor improves. It returns the best threshold, its value, and the
// number of distinct threshold evaluations spent — the per-configuration
// tuning overhead Kairos avoids.
func TuneDRSThreshold(eval func(threshold int) float64, start, step, maxBatch int) (best int, bestVal float64, evals int) {
	if step <= 0 {
		panic("distributor: step must be positive")
	}
	clamp := func(t int) int {
		if t < 0 {
			return 0
		}
		if t > maxBatch {
			return maxBatch
		}
		return t
	}
	memo := map[int]float64{}
	measure := func(t int) float64 {
		if v, ok := memo[t]; ok {
			return v
		}
		v := eval(t)
		memo[t] = v
		evals++
		return v
	}
	cur := clamp(start)
	curVal := measure(cur)
	for {
		up, down := clamp(cur+step), clamp(cur-step)
		upVal, downVal := curVal, curVal
		if up != cur {
			upVal = measure(up)
		}
		if down != cur {
			downVal = measure(down)
		}
		switch {
		case upVal > curVal && upVal >= downVal:
			cur, curVal = up, upVal
		case downVal > curVal:
			cur, curVal = down, downVal
		default:
			return cur, curVal, evals
		}
	}
}
