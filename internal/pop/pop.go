// Package pop implements POP-style partitioned serving, the scaling path
// the paper sketches in Sec. 6: "inference service frameworks like Kairos
// can scale to extremely large systems by dividing the system into
// multiple sub-systems and running a Kairos instance on each sub-system"
// (citing POP [65]).
//
// Partitioned wraps k inner distributors, splits the instances into k
// balanced sub-pools (round-robin per type so each partition keeps the
// same heterogeneity mix — POP's key requirement), and hashes each query
// to a partition by its stable arrival ID. Each sub-controller then runs
// its policy over an O(n/k) matching instead of O(n), cutting the
// per-round solve cost while approximating the global solution.
package pop

import (
	"fmt"

	"kairos/internal/sim"
)

// Factory builds one inner distributor per partition.
type Factory func(partition int) sim.Distributor

// Partitioned is a sim.Distributor that delegates to per-partition inner
// policies.
type Partitioned struct {
	k     int
	inner []sim.Distributor
	// instancePartition maps instance index -> partition; built lazily
	// from the first Assign call and kept consistent afterwards (instance
	// sets are fixed for a cluster's lifetime).
	instancePartition map[int]int
}

// NewPartitioned builds a k-way partitioned distributor.
func NewPartitioned(k int, factory Factory) *Partitioned {
	if k < 1 {
		panic("pop: need at least one partition")
	}
	p := &Partitioned{k: k, inner: make([]sim.Distributor, k), instancePartition: map[int]int{}}
	for i := 0; i < k; i++ {
		p.inner[i] = factory(i)
		if p.inner[i] == nil {
			panic(fmt.Sprintf("pop: factory returned nil for partition %d", i))
		}
	}
	return p
}

// Name implements sim.Distributor.
func (p *Partitioned) Name() string { return fmt.Sprintf("POP-%dx(%s)", p.k, p.inner[0].Name()) }

// Partitions returns k.
func (p *Partitioned) Partitions() int { return p.k }

// partitionInstances assigns instances to partitions round-robin per type
// so every partition sees the same heterogeneity mix.
func (p *Partitioned) partitionInstances(instances []sim.InstanceView) {
	counterByType := map[string]int{}
	for _, in := range instances {
		if _, done := p.instancePartition[in.Index]; done {
			continue
		}
		c := counterByType[in.TypeName]
		p.instancePartition[in.Index] = c % p.k
		counterByType[in.TypeName] = c + 1
	}
}

// Assign implements sim.Distributor: split views, delegate, merge.
func (p *Partitioned) Assign(nowMS float64, waiting []sim.QueryView, instances []sim.InstanceView) []sim.Assignment {
	if p.k == 1 {
		return p.inner[0].Assign(nowMS, waiting, instances)
	}
	p.partitionInstances(instances)

	queriesByPart := make([][]sim.QueryView, p.k)
	// originalQueryIdx[part][i] maps the partition-local index back to the
	// caller's waiting index.
	originalQueryIdx := make([][]int, p.k)
	for _, q := range waiting {
		part := q.ID % p.k
		if part < 0 {
			part = -part
		}
		local := q
		local.Index = len(queriesByPart[part])
		queriesByPart[part] = append(queriesByPart[part], local)
		originalQueryIdx[part] = append(originalQueryIdx[part], q.Index)
	}
	instByPart := make([][]sim.InstanceView, p.k)
	originalInstIdx := make([][]int, p.k)
	for _, in := range instances {
		part := p.instancePartition[in.Index]
		local := in
		local.Index = len(instByPart[part])
		instByPart[part] = append(instByPart[part], local)
		originalInstIdx[part] = append(originalInstIdx[part], in.Index)
	}

	var out []sim.Assignment
	for part := 0; part < p.k; part++ {
		if len(queriesByPart[part]) == 0 || len(instByPart[part]) == 0 {
			continue
		}
		sub := p.inner[part].Assign(nowMS, queriesByPart[part], instByPart[part])
		for _, a := range sub {
			out = append(out, sim.Assignment{
				Query:    originalQueryIdx[part][a.Query],
				Instance: originalInstIdx[part][a.Instance],
			})
		}
	}
	return out
}

// Observe implements sim.Observer by fanning feedback out to every inner
// policy that accepts it (latency observations are global knowledge).
func (p *Partitioned) Observe(instance string, batch int, serviceMS float64) {
	for _, in := range p.inner {
		if obs, ok := in.(sim.Observer); ok {
			obs.Observe(instance, batch, serviceMS)
		}
	}
}
