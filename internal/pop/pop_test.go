package pop

import (
	"testing"

	"kairos/internal/cloud"
	"kairos/internal/core"
	"kairos/internal/models"
	"kairos/internal/predictor"
	"kairos/internal/sim"
)

func kairosFactory(m models.Model, pool cloud.Pool) Factory {
	names := make([]string, len(pool))
	for i, t := range pool {
		names[i] = t.Name
	}
	return func(int) sim.Distributor {
		return core.NewDistributor(core.DistributorOptions{
			QoS:       m.QoS,
			BaseType:  pool.Base().Name,
			Predictor: predictor.Warmed(m.Latency, names, []int{1, 500, 1000}),
		})
	}
}

func TestNewPartitionedValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("k=0 must panic")
			}
		}()
		NewPartitioned(0, func(int) sim.Distributor { return sim.FCFSAny{} })
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil inner must panic")
			}
		}()
		NewPartitioned(2, func(int) sim.Distributor { return nil })
	}()
}

func TestPartitionedName(t *testing.T) {
	p := NewPartitioned(4, func(int) sim.Distributor { return sim.FCFSAny{} })
	if p.Name() != "POP-4x(FCFS)" || p.Partitions() != 4 {
		t.Fatalf("name=%s partitions=%d", p.Name(), p.Partitions())
	}
}

func TestSingletonDelegates(t *testing.T) {
	m := models.MustByName("RM2")
	pool := cloud.ThreeTypePool()
	inner := kairosFactory(m, pool)
	direct := inner(0)
	wrapped := NewPartitioned(1, inner)
	waiting := []sim.QueryView{{Index: 0, ID: 0, Batch: 100}}
	instances := []sim.InstanceView{
		{Index: 0, TypeName: "g4dn.xlarge"},
		{Index: 1, TypeName: "r5n.large"},
	}
	a := direct.Assign(0, waiting, instances)
	b := wrapped.Assign(0, waiting, instances)
	if len(a) != len(b) || a[0] != b[0] {
		t.Fatalf("k=1 must be transparent: %v vs %v", a, b)
	}
}

// TestPartitionsIsolateQueries: with two partitions, a query hashed to
// partition 0 must never land on a partition-1 instance.
func TestPartitionsIsolateQueries(t *testing.T) {
	m := models.MustByName("RM2")
	pool := cloud.ThreeTypePool()
	p := NewPartitioned(2, kairosFactory(m, pool))
	// Two GPUs: round-robin puts instance 0 in partition 0, instance 1 in
	// partition 1; same for the CPUs.
	instances := []sim.InstanceView{
		{Index: 0, TypeName: "g4dn.xlarge"},
		{Index: 1, TypeName: "g4dn.xlarge"},
		{Index: 2, TypeName: "r5n.large"},
		{Index: 3, TypeName: "r5n.large"},
	}
	for id := 0; id < 8; id++ {
		got := p.Assign(0, []sim.QueryView{{Index: 0, ID: id, Batch: 900}}, instances)
		if len(got) != 1 {
			t.Fatalf("id %d: assignments %v", id, got)
		}
		wantPart := id % 2
		gotPart := got[0].Instance % 2 // by construction of the round-robin
		if gotPart != wantPart {
			t.Fatalf("id %d landed on instance %d (partition %d), want partition %d",
				id, got[0].Instance, gotPart, wantPart)
		}
	}
}

// TestPartitionedEndToEnd runs the partitioned controller through the full
// simulator: every query is served and throughput stays within a modest
// factor of the monolithic controller (POP's claim: near-equal quality at
// a fraction of the solve cost).
func TestPartitionedEndToEnd(t *testing.T) {
	t.Parallel()
	m := models.MustByName("RM2")
	pool := cloud.ThreeTypePool()
	cfg := cloud.Config{2, 0, 10} // 12 instances: splits evenly
	spec := sim.ClusterSpec{Pool: pool, Config: cfg, Model: m}
	opts := sim.FindOptions{ProbeQueries: 1200, Seed: 31, PrecisionFrac: 0.05}

	mono := sim.FindAllowableThroughput(spec, func() sim.Distributor {
		return NewPartitioned(1, kairosFactory(m, pool))
	}, opts)
	duo := sim.FindAllowableThroughput(spec, func() sim.Distributor {
		return NewPartitioned(2, kairosFactory(m, pool))
	}, opts)
	if duo < mono*0.75 {
		t.Fatalf("2-way partitioning lost too much: %v vs monolithic %v", duo, mono)
	}
	if duo > mono*1.1 {
		t.Fatalf("partitioning should not beat the monolith: %v vs %v", duo, mono)
	}
}

// TestPartitionedMatchingCost verifies the point of POP: per-round Assign
// over k partitions touches k smaller matchings. We check it indirectly:
// both variants produce valid full-cluster assignments for a big round.
func TestPartitionedBigRoundValidity(t *testing.T) {
	m := models.MustByName("RM2")
	pool := cloud.ThreeTypePool()
	p := NewPartitioned(4, kairosFactory(m, pool))
	var waiting []sim.QueryView
	for i := 0; i < 32; i++ {
		waiting = append(waiting, sim.QueryView{Index: i, ID: i, Batch: 10 + i*7})
	}
	var instances []sim.InstanceView
	for i := 0; i < 16; i++ {
		tn := "r5n.large"
		if i < 4 {
			tn = "g4dn.xlarge"
		}
		instances = append(instances, sim.InstanceView{Index: i, TypeName: tn})
	}
	got := p.Assign(0, waiting, instances)
	seenQ := map[int]bool{}
	seenI := map[int]bool{}
	for _, a := range got {
		if a.Query < 0 || a.Query >= len(waiting) || a.Instance < 0 || a.Instance >= len(instances) {
			t.Fatalf("out of range assignment %v", a)
		}
		if seenQ[a.Query] || seenI[a.Instance] {
			t.Fatalf("duplicate in merged assignments: %v", got)
		}
		seenQ[a.Query] = true
		seenI[a.Instance] = true
	}
	if len(got) < 8 {
		t.Fatalf("merged round too small: %d assignments", len(got))
	}
}

func TestObserveFansOut(t *testing.T) {
	count := 0
	p := NewPartitioned(3, func(int) sim.Distributor { return &countingObserver{n: &count} })
	p.Observe("g4dn.xlarge", 10, 5)
	if count != 3 {
		t.Fatalf("observed %d times, want 3", count)
	}
}

type countingObserver struct{ n *int }

func (c *countingObserver) Name() string { return "counting" }
func (c *countingObserver) Assign(float64, []sim.QueryView, []sim.InstanceView) []sim.Assignment {
	return nil
}
func (c *countingObserver) Observe(string, int, float64) { *c.n++ }
