package core

import (
	"fmt"
	"math/rand"
	"testing"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/workload"
)

// onDemandOnly zeroes a configuration's spot counts: what is left of the
// fleet after a simultaneous revocation of every spot instance.
func onDemandOnly(pool cloud.Pool, cfg cloud.Config) cloud.Config {
	out := cfg.Clone()
	for i, t := range pool {
		if t.Market == cloud.Spot {
			out[i] = 0
		}
	}
	return out
}

// assertFloors fails the test if any latency-critical model with an armed
// on-demand floor got a nonzero allocation whose on-demand-only upper
// bound cannot cover the floor — the plan would not survive losing its
// spot capacity.
func assertFloors(t *testing.T, step string, pool cloud.Pool, demands []ModelDemand, plan FleetPlan) {
	t.Helper()
	for _, d := range demands {
		floor := d.floorQPS()
		if floor <= 0 || !pool.HasSpot() {
			continue
		}
		cfg := plan.Config(d.Model.Name)
		if cfg.Total() == 0 {
			continue // starved models have no allocation to risk-bound
		}
		est, err := NewEstimator(pool, d.Model, d.Samples, EstimatorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		od := est.UpperBound(onDemandOnly(pool, cfg))
		if od < floor-costEps {
			t.Fatalf("%s: %s allocated %v with on-demand-only bound %.4f QPS below floor %.4f",
				step, d.Model.Name, cfg, od, floor)
		}
	}
}

// spotDemands draws random demands like randomDemands but arms demand
// caps on every model and on-demand floors (and occasionally BestEffort
// class) on most, so the floor path and its interaction with the cap are
// both exercised.
func spotDemands(rng *rand.Rand, k int) []ModelDemand {
	cat := models.Catalog()
	out := make([]ModelDemand, k)
	for i := range out {
		out[i] = ModelDemand{
			Model:      twin(cat[rng.Intn(len(cat))], fmt.Sprintf("m%02d", i)),
			Samples:    randomWindow(rng),
			ArrivalQPS: 1 + rng.Float64()*150,
			Headroom:   rng.Float64(),
		}
		switch rng.Intn(4) {
		case 0: // no floor
		case 1:
			out[i].OnDemandFloor = rng.Float64() // partial survival
		case 2:
			out[i].OnDemandFloor = 1 // full demand must survive revocation
		case 3: // floor set but class opts out of it
			out[i].OnDemandFloor = rng.Float64()
			out[i].Class = BestEffort
		}
	}
	return out
}

// TestFleetPlannerSpotFloorNeverViolated is the risk-bounding property
// test: across randomized spot markets, demand sets, floors, budgets,
// and incremental mutations, (a) no plan ever allocates a
// latency-critical model a configuration whose on-demand-only upper
// bound is below its armed floor, and (b) the incremental planner stays
// Equal to a from-scratch PlanFleet over pools carrying market tiers.
func TestFleetPlannerSpotFloorNeverViolated(t *testing.T) {
	t.Parallel()
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(100 + seed)))
			pool := perturbPool(rng).WithSpotMarket(0.3+0.5*rng.Float64(), 0.05)
			budget := 0.5 + 2.0*rng.Float64()
			planner, err := NewFleetPlanner(pool, budget)
			if err != nil {
				t.Fatal(err)
			}
			verify := func(step string, cur []ModelDemand, got FleetPlan, b float64) {
				t.Helper()
				want, err := PlanFleet(pool, cur, b)
				if err != nil {
					t.Fatalf("%s: from-scratch: %v", step, err)
				}
				if !got.Equal(want) {
					t.Fatalf("%s: incremental %v != from-scratch %v (budget %v)", step, got, want, b)
				}
				assertFloors(t, step, pool, cur, got)
			}

			demands := spotDemands(rng, 2+rng.Intn(3))
			if err := planner.SetDemands(demands); err != nil {
				t.Fatal(err)
			}
			got, err := planner.Plan(budget)
			if err != nil {
				t.Fatal(err)
			}
			verify("initial", demands, got, budget)

			for step := 0; step < 8; step++ {
				name := fmt.Sprintf("step%d", step)
				b := budget
				if rng.Intn(3) == 0 {
					b = budget * (0.2 + 0.8*rng.Float64())
				}
				switch rng.Intn(4) {
				case 0: // the preemption path: one window moves, single-model replan
					i := rng.Intn(len(demands))
					demands[i].Samples = randomWindow(rng)
					got, err = planner.ReplanModel(demands[i], b)
				case 1: // floor and cap both move; frontiers stay cached
					i := rng.Intn(len(demands))
					demands[i].ArrivalQPS = 1 + rng.Float64()*150
					demands[i].OnDemandFloor = rng.Float64()
					if err = planner.SetDemands(demands); err == nil {
						got, err = planner.Plan(b)
					}
				case 2: // a model flips QoS class
					i := rng.Intn(len(demands))
					demands[i].Class = QoSClass(rng.Intn(2))
					if err = planner.SetDemands(demands); err == nil {
						got, err = planner.Plan(b)
					}
				case 3: // nothing moved: pure cache hit
					if err = planner.SetDemands(demands); err == nil {
						got, err = planner.Plan(b)
					}
				}
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				verify(name, demands, got, b)
			}
		})
	}
}

// TestSpotMarketNeverPlansWorse: the spot-extended pool embeds every
// on-demand configuration, so at the same budget the planner must reach
// at least the throughput of the spot-free plan — and with a deep
// discount and no floor it should actually buy spot capacity.
func TestSpotMarketNeverPlansWorse(t *testing.T) {
	t.Parallel()
	base := cloud.DefaultPool()
	spot := base.WithSpotMarket(0.7, 0.05)
	m := models.MustByName("NCF")
	samples := fleetSamples(workload.Uniform{Min: 10, Max: 60}, 800, 21)
	const budget = 1.2

	ub := func(pool cloud.Pool, plan FleetPlan) float64 {
		t.Helper()
		est, err := NewEstimator(pool, m, samples, EstimatorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return est.UpperBound(plan.Config(m.Name))
	}
	odPlan, err := PlanFleet(base, []ModelDemand{{Model: m, Samples: samples}}, budget)
	if err != nil {
		t.Fatal(err)
	}
	spotPlan, err := PlanFleet(spot, []ModelDemand{{Model: m, Samples: samples}}, budget)
	if err != nil {
		t.Fatal(err)
	}
	odUB, spotUB := ub(base, odPlan), ub(spot, spotPlan)
	if spotUB < odUB-costEps {
		t.Fatalf("spot market lost throughput at the same budget: %.4f < %.4f", spotUB, odUB)
	}
	usesSpot := false
	for i, typ := range spot {
		if typ.Market == cloud.Spot && spotPlan.Config(m.Name)[i] > 0 {
			usesSpot = true
		}
	}
	if !usesSpot {
		t.Fatalf("70%% discount, no floor, and the plan %v bought no spot capacity", spotPlan)
	}
}

// TestOnDemandFloorSemantics pins the floor's scoping rules: a full
// floor forces survivable on-demand capacity for a latency-critical
// model, while BestEffort models and spot-free pools ignore the knob
// entirely.
func TestOnDemandFloorSemantics(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool().WithSpotMarket(0.6, 0.05)
	m := models.MustByName("NCF")
	samples := fleetSamples(workload.Uniform{Min: 10, Max: 60}, 800, 22)
	const budget = 1.5
	plan := func(d ModelDemand) FleetPlan {
		t.Helper()
		got, err := PlanFleet(pool, []ModelDemand{d}, budget)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	est, err := NewEstimator(pool, m, samples, EstimatorOptions{})
	if err != nil {
		t.Fatal(err)
	}

	free := plan(ModelDemand{Model: m, Samples: samples, ArrivalQPS: 40})
	floored := plan(ModelDemand{Model: m, Samples: samples, ArrivalQPS: 40, OnDemandFloor: 1})
	if od := est.UpperBound(onDemandOnly(pool, floored.Config(m.Name))); od < 40-costEps {
		t.Fatalf("full floor at 40 QPS left only %.4f QPS of on-demand capacity: %v", od, floored)
	}

	// BestEffort opts out: the floor field must change nothing.
	bestEffort := plan(ModelDemand{Model: m, Samples: samples, ArrivalQPS: 40,
		OnDemandFloor: 1, Class: BestEffort})
	if !bestEffort.Equal(free) {
		t.Fatalf("BestEffort must ignore the floor: %v vs %v", bestEffort, free)
	}

	// Spot-free pools ignore it too — the constraint is about revocation.
	noSpot, err := PlanFleet(cloud.DefaultPool(),
		[]ModelDemand{{Model: m, Samples: samples, ArrivalQPS: 40, OnDemandFloor: 1}}, budget)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := PlanFleet(cloud.DefaultPool(),
		[]ModelDemand{{Model: m, Samples: samples, ArrivalQPS: 40}}, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !noSpot.Equal(plain) {
		t.Fatalf("a spot-free pool must ignore the floor: %v vs %v", noSpot, plain)
	}
}
