// Package core implements the paper's primary contribution: the Kairos
// query-distribution mechanism (Sec. 5.1) that maps waiting queries onto
// heterogeneous instances through min-cost bipartite matching, the
// throughput upper-bound estimator (Sec. 5.2, Eqs. 9-15), the one-shot
// similarity-based configuration selection, and the Kairos+ upper-bound-
// assisted pruning search (Algorithm 1).
package core

import (
	"kairos/internal/assignment"
	"kairos/internal/models"
	"kairos/internal/predictor"
	"kairos/internal/sim"
	"kairos/internal/workload"
)

// DefaultXi is the paper's noise safeguard: a completion time predicted
// within 2% of the QoS target is already treated as a violation (Sec. 5.1).
const DefaultXi = 0.98

// DefaultPenaltyFactor is the Eq. 8 penalty: infeasible pairs cost 10x the
// QoS target.
const DefaultPenaltyFactor = 10

// DefaultLateBindSlackMS bounds how far into the future Kairos commits a
// query to a busy instance (see DistributorOptions.LateBindSlackMS).
const DefaultLateBindSlackMS = 10

// DistributorOptions configure the Kairos query distributor.
type DistributorOptions struct {
	// QoS is the tail latency target T_qos in ms.
	QoS float64
	// BaseType is the base instance type name used to normalize the
	// heterogeneity coefficients (Def. 1).
	BaseType string
	// Predictor supplies latency estimates for the L matrix. Nil defaults
	// to a fresh online learner (the paper's no-prior-knowledge mode).
	Predictor predictor.Predictor
	// Xi is the QoS safety factor; 0 defaults to DefaultXi.
	Xi float64
	// PenaltyFactor scales the Eq. 8 penalty; 0 defaults to 10.
	PenaltyFactor float64
	// Monitor, when non-nil, receives every completed query's batch size so
	// the planner can track the workload mix (Sec. 5.2).
	Monitor *workload.Monitor
	// DisableCoefficients turns off the heterogeneity weighting (C_j = 1
	// for all types); used by the ablation benchmarks.
	DisableCoefficients bool
	// AgingFactor weights the W_i starvation-avoidance term: each feasible
	// cost is reduced by AgingFactor*W_i. Subtracting a row constant never
	// changes which instance a query prefers — it only promotes
	// long-waiting queries into the matched set when queries outnumber
	// instances, the starvation concern Eq. 3 raises. Zero defaults to 1;
	// negative disables aging (the ablation benchmarks use this).
	AgingFactor float64
	// MaxPending caps how many dispatched-but-unstarted queries an
	// instance may hold before it stops being matched (Eq. 6 limits one
	// assignment per round; the L matrix's remaining-time term covers the
	// queued backlog). Zero defaults to 1; the ablation benchmarks explore
	// deeper commitment.
	MaxPending int
	// LateBindSlackMS keeps instances out of the matching until their
	// in-flight query is within this many milliseconds of completion.
	// Early commitment to a busy instance forgoes better placements that
	// appear before it frees; a small slack preserves pipelining without
	// that cost. Zero defaults to DefaultLateBindSlackMS; negative disables
	// late binding (matching sees every instance, the literal Eq. 4 setup,
	// explored by the ablation benchmarks).
	LateBindSlackMS float64
}

// Distributor is Kairos's query-distribution mechanism. It implements
// sim.Distributor and sim.Observer.
type Distributor struct {
	opts DistributorOptions
	pred predictor.Predictor
}

// NewDistributor validates options and builds the distributor.
func NewDistributor(opts DistributorOptions) *Distributor {
	if opts.QoS <= 0 {
		panic("core: QoS target must be positive")
	}
	if opts.BaseType == "" {
		panic("core: BaseType required")
	}
	if opts.Xi == 0 {
		opts.Xi = DefaultXi
	}
	if opts.Xi <= 0 || opts.Xi > 1 {
		panic("core: Xi must be in (0,1]")
	}
	if opts.PenaltyFactor == 0 {
		opts.PenaltyFactor = DefaultPenaltyFactor
	}
	if opts.PenaltyFactor <= 1 {
		panic("core: PenaltyFactor must exceed 1")
	}
	if opts.AgingFactor == 0 {
		opts.AgingFactor = 1
	}
	if opts.AgingFactor < 0 {
		opts.AgingFactor = 0
	}
	if opts.MaxPending == 0 {
		opts.MaxPending = 1
	}
	if opts.MaxPending < 1 {
		panic("core: MaxPending must be at least 1")
	}
	if opts.LateBindSlackMS == 0 {
		opts.LateBindSlackMS = DefaultLateBindSlackMS
	}
	d := &Distributor{opts: opts, pred: opts.Predictor}
	if d.pred == nil {
		d.pred = predictor.NewOnline()
	}
	return d
}

// Name implements sim.Distributor.
func (d *Distributor) Name() string { return "KAIROS" }

// Observe implements sim.Observer: completed queries train the online
// latency model and the workload monitor.
func (d *Distributor) Observe(instance string, batch int, serviceMS float64) {
	d.pred.Observe(instance, batch, serviceMS)
	if d.opts.Monitor != nil {
		d.opts.Monitor.Observe(batch)
	}
}

// Coefficient returns the heterogeneity coefficient C_j of Def. 1 for the
// named type: the ratio of the largest query's latency on the base type to
// its latency on type j, normalized so the base type (fastest at the
// largest query) has coefficient 1. Falls back to 1 while the predictor
// has no data.
func (d *Distributor) Coefficient(typeName string) float64 {
	if d.opts.DisableCoefficients || typeName == d.opts.BaseType {
		return 1
	}
	baseLat := d.pred.Predict(d.opts.BaseType, models.MaxBatch)
	lat := d.pred.Predict(typeName, models.MaxBatch)
	if baseLat <= 0 || lat <= 0 {
		return 1
	}
	c := baseLat / lat
	if c > 1 {
		c = 1
	}
	return c
}

// Assign implements sim.Distributor: it builds the weighted, QoS-penalized
// L matrix over (waiting queries) x (instances with an empty local slot)
// and dispatches the min-cost matching (Eqs. 4-8).
func (d *Distributor) Assign(nowMS float64, waiting []sim.QueryView, instances []sim.InstanceView) []sim.Assignment {
	// Eligible instances have pending-queue headroom; the one-to-one
	// mapping constraint (Eq. 6) still admits at most one new dispatch per
	// instance per round, and the drain term below prices the backlog.
	slack := d.opts.LateBindSlackMS
	if slack < 0 {
		slack = 1e18 // late binding disabled: every instance is matchable
	}
	eligible := instances[:0:0]
	for _, in := range instances {
		if len(in.QueuedBatches) < d.opts.MaxPending && in.RemainingMS <= slack {
			eligible = append(eligible, in)
		}
	}
	if len(eligible) == 0 || len(waiting) == 0 {
		return nil
	}

	m, n := len(waiting), len(eligible)
	cost := assignment.NewMatrix(m, n)
	penalty := d.opts.PenaltyFactor * d.opts.QoS
	deadline := d.opts.Xi * d.opts.QoS
	penalized := make([]bool, m*n)
	for j, in := range eligible {
		cj := d.Coefficient(in.TypeName)
		drain := in.RemainingMS
		for _, b := range in.QueuedBatches {
			drain += d.pred.Predict(in.TypeName, b)
		}
		for i, q := range waiting {
			l := drain + d.pred.Predict(in.TypeName, q.Batch)
			if l+q.WaitMS > deadline {
				// Eq. 8 penalty. Unlike the paper's formulation we keep the
				// penalty outside the C_j weighting: with strongly
				// heterogeneous coefficients (C_j down to ~0.06 here) a
				// weighted penalty C_j*10*T_qos can undercut a feasible
				// base placement (1*T_qos) and the matching would prefer
				// the QoS-violating pair. An unweighted penalty preserves
				// the intended semantics: feasible pairs always win.
				cost.Set(i, j, penalty)
				penalized[i*n+j] = true
				continue
			}
			cost.Set(i, j, cj*l-d.opts.AgingFactor*q.WaitMS)
		}
	}
	rows, cols, _, err := assignment.Solve(cost)
	if err != nil {
		// Finite costs cannot be infeasible; a failure here is a bug.
		panic("core: matching failed: " + err.Error())
	}
	out := make([]sim.Assignment, 0, len(rows))
	used := make([]bool, n)
	var doomed []int // waiting indices that can no longer meet QoS anywhere
	for k := range rows {
		i, j := rows[k], cols[k]
		if penalized[i*n+j] {
			// The min-cost solution could not find a QoS-respecting spot
			// for this query. If some instance (busy ones included) will
			// still be able to serve it within QoS once its backlog
			// drains, hold the query in the central queue and retry (the
			// paper's "wait in a queue until more resources become
			// available and restart another round of query distribution").
			// Waiting is free with respect to that claim: W_i grows exactly
			// as fast as the target's remaining time shrinks. A doomed
			// query — no feasible future slot anywhere — is
			// force-dispatched below.
			if d.feasibleSlotExists(waiting[i], instances) {
				continue
			}
			doomed = append(doomed, i)
			continue
		}
		used[j] = true
		out = append(out, sim.Assignment{
			Query:    waiting[i].Index,
			Instance: eligible[j].Index,
		})
	}
	// Doomed queries burn capacity no matter what; clear each on the
	// fastest-completing instance still free this round.
	for _, i := range doomed {
		j := d.fastestClearing(waiting[i], eligible, used)
		if j == -1 {
			break // every slot taken; retry next round
		}
		used[j] = true
		out = append(out, sim.Assignment{
			Query:    waiting[i].Index,
			Instance: eligible[j].Index,
		})
	}
	return out
}

// feasibleSlotExists reports whether any instance — counting its full
// in-flight plus pending drain — could still serve the query within QoS.
func (d *Distributor) feasibleSlotExists(q sim.QueryView, instances []sim.InstanceView) bool {
	deadline := d.opts.Xi * d.opts.QoS
	for _, in := range instances {
		drain := in.RemainingMS
		for _, b := range in.QueuedBatches {
			drain += d.pred.Predict(in.TypeName, b)
		}
		if drain+d.pred.Predict(in.TypeName, q.Batch)+q.WaitMS <= deadline {
			return true
		}
	}
	return false
}

// fastestClearing picks the unused eligible instance with the earliest
// real completion time for the batch, minimizing the capacity a doomed
// query burns. Returns -1 when every eligible instance is taken.
func (d *Distributor) fastestClearing(q sim.QueryView, eligible []sim.InstanceView, used []bool) int {
	best, bestAt := -1, 0.0
	for j, in := range eligible {
		if used[j] {
			continue
		}
		at := in.RemainingMS + d.pred.Predict(in.TypeName, q.Batch)
		for _, b := range in.QueuedBatches {
			at += d.pred.Predict(in.TypeName, b)
		}
		if best == -1 || at < bestAt {
			best, bestAt = j, at
		}
	}
	return best
}

// Predictor exposes the distributor's latency model so callers can warm it
// or inspect it.
func (d *Distributor) Predictor() predictor.Predictor { return d.pred }
