package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/workload"
)

// TestUpperBoundFig7Scenario1 reproduces the paper's worked example where
// the base instance is the bottleneck: Qb=100, Qb_s+=90, Qa=150, f=0.6
// gives QPSmax = 90/0.4 = 225 (Eq. 9).
func TestUpperBoundFig7Scenario1(t *testing.T) {
	got := UpperBoundRaw(1, 100, 90, []float64{150}, 0.6)
	if math.Abs(got-225) > 1e-9 {
		t.Fatalf("QPSmax = %v, want 225", got)
	}
}

// TestUpperBoundFig7Scenario2 reproduces the auxiliary-bottleneck example:
// Qb=100, Qb_s+=90, Qa=140, f=0.7 gives 140/0.7 + (90-60)/90*100 = 233.3
// (Eq. 11).
func TestUpperBoundFig7Scenario2(t *testing.T) {
	got := UpperBoundRaw(1, 100, 90, []float64{140}, 0.7)
	want := 140.0/0.7 + (90.0-60.0)/90.0*100.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("QPSmax = %v, want %v", got, want)
	}
}

func TestUpperBoundRawMultiNode(t *testing.T) {
	// Eq. 12/13: doubling every count doubles the bound.
	one := UpperBoundRaw(1, 100, 90, []float64{140}, 0.7)
	two := UpperBoundRaw(2, 100, 90, []float64{280}, 0.7)
	if math.Abs(two-2*one) > 1e-9 {
		t.Fatalf("2x nodes: %v, want %v", two, 2*one)
	}
}

func TestUpperBoundRawEdgeCases(t *testing.T) {
	// No auxiliaries: base serves everything.
	if got := UpperBoundRaw(3, 50, 40, nil, 0); got != 150 {
		t.Fatalf("base-only bound = %v, want 150", got)
	}
	// f'=1: every query fits the auxiliary region; base adds full rate.
	if got := UpperBoundRaw(2, 50, 0, []float64{70}, 1); got != 170 {
		t.Fatalf("f'=1 bound = %v, want 170", got)
	}
	// No base instances with f'<1: the s+ tail is unservable.
	if got := UpperBoundRaw(0, 0, 0, []float64{100}, 0.8); got != 0 {
		t.Fatalf("u=0 bound = %v, want 0", got)
	}
	// No base, f'=1: auxiliaries alone carry the whole mix.
	if got := UpperBoundRaw(0, 0, 0, []float64{100}, 1); got != 100 {
		t.Fatalf("u=0,f=1 bound = %v, want 100", got)
	}
}

func defaultSamples(t *testing.T, n int, dist workload.BatchDistribution) []int {
	t.Helper()
	rng := rand.New(rand.NewSource(20))
	out := make([]int, n)
	for i := range out {
		out[i] = dist.Sample(rng)
	}
	return out
}

func newRM2Estimator(t *testing.T) *Estimator {
	t.Helper()
	e, err := NewEstimator(cloud.ThreeTypePool(), models.MustByName("RM2"),
		defaultSamples(t, 10000, workload.DefaultTrace()), EstimatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEstimatorRejectsBadSamples(t *testing.T) {
	pool := cloud.ThreeTypePool()
	m := models.MustByName("RM2")
	if _, err := NewEstimator(pool, m, nil, EstimatorOptions{}); err == nil {
		t.Fatal("expected error for empty samples")
	}
	if _, err := NewEstimator(pool, m, []int{0}, EstimatorOptions{}); err == nil {
		t.Fatal("expected error for out-of-range samples")
	}
}

func TestEstimatorCutoffsMatchModel(t *testing.T) {
	e := newRM2Estimator(t)
	m := models.MustByName("RM2")
	pool := cloud.ThreeTypePool()
	for i, it := range pool {
		if got, want := e.Cutoff(i), m.CutoffBatch(it.Name); got != want {
			t.Errorf("%s cutoff = %d, want %d", it.Name, got, want)
		}
	}
}

func TestEstimatorQoSOverrideRaisesCutoffs(t *testing.T) {
	m := models.MustByName("RM2")
	samples := defaultSamples(t, 2000, workload.DefaultTrace())
	strict, err := NewEstimator(cloud.ThreeTypePool(), m, samples, EstimatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := NewEstimator(cloud.ThreeTypePool(), m, samples, EstimatorOptions{QoS: m.QoS * 1.2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if relaxed.Cutoff(i) <= strict.Cutoff(i) {
			t.Errorf("type %d: relaxed cutoff %d not above strict %d", i, relaxed.Cutoff(i), strict.Cutoff(i))
		}
	}
}

func TestUpperBoundHomogeneousIsAnalytic(t *testing.T) {
	// For a base-only configuration the bound must equal u * 1000/E[lat].
	e := newRM2Estimator(t)
	m := models.MustByName("RM2")
	sum := 0.0
	for _, b := range e.sorted {
		sum += m.Latency(cloud.G4dnXlarge.Name, b)
	}
	want := 4 * 1000 / (sum / float64(len(e.sorted)))
	got := e.UpperBound(cloud.Config{4, 0, 0})
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("homogeneous UB = %v, want %v", got, want)
	}
}

func TestUpperBoundZeroBaseIsZero(t *testing.T) {
	e := newRM2Estimator(t)
	if got := e.UpperBound(cloud.Config{0, 2, 5}); got != 0 {
		t.Fatalf("zero-base UB = %v, want 0 (f' < 1 with the default trace)", got)
	}
}

// TestUpperBoundBelowOracle pins the paper's own validation (Fig. 14,
// observation i): the upper bound is "lower than but close to the Oracle
// throughput" — it caps what Kairos-style split-by-size policies achieve,
// while the clairvoyant ORCL scheduler (which chooses its own split point)
// sits above it. We assert UB <= Oracle with sampling slack, and that UB
// stays within the same order (tightness).
func TestUpperBoundBelowOracle(t *testing.T) {
	t.Parallel()
	pool := cloud.ThreeTypePool()
	for _, name := range []string{"RM2", "WND"} {
		m := models.MustByName(name)
		samples := defaultSamples(t, 20000, workload.DefaultTrace())
		e, err := NewEstimator(pool, m, samples, EstimatorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		configs := pool.Enumerate(2.5, cloud.WithMinBase(1))
		rng := rand.New(rand.NewSource(21))
		for trial := 0; trial < 12; trial++ {
			cfg := configs[rng.Intn(len(configs))]
			ub := e.UpperBound(cfg)
			oracle := simOracle(m, pool, cfg)
			auxTypes := 0
			for i := 1; i < len(cfg); i++ {
				if cfg[i] > 0 {
					auxTypes++
				}
			}
			if auxTypes <= 1 {
				// Single auxiliary type: the shared-region formula is exact
				// and the free-split oracle dominates it.
				if ub > oracle*1.05 {
					t.Errorf("%s %v: UB %v exceeds oracle %v", name, cfg, ub, oracle)
				}
			} else if ub > oracle*1.8 {
				// Multiple auxiliary types: the paper's simplification
				// deliberately over-estimates ("makes the upper bound
				// estimation more optimistic", Sec. 5.2) but must stay in
				// the same order so the ranking remains meaningful.
				t.Errorf("%s %v: multi-aux UB %v wildly above oracle %v", name, cfg, ub, oracle)
			}
			if ub < oracle*0.35 {
				t.Errorf("%s %v: UB %v far below oracle %v (bound too loose)", name, cfg, ub, oracle)
			}
		}
	}
}

func TestUpperBoundMonotoneInInstances(t *testing.T) {
	e := newRM2Estimator(t)
	f := func(a, b, c uint8) bool {
		cfg := cloud.Config{int(a % 4), int(b % 4), int(c % 8)}
		bigger := cfg.Clone()
		bigger[rand.Intn(3)]++
		return e.UpperBound(bigger) >= e.UpperBound(cfg)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRankSortedAndBudgeted(t *testing.T) {
	e := newRM2Estimator(t)
	ranked := e.Rank(2.5)
	if len(ranked) == 0 {
		t.Fatal("empty ranking")
	}
	pool := cloud.ThreeTypePool()
	for i, rc := range ranked {
		if !pool.WithinBudget(rc.Config, 2.5) {
			t.Fatalf("ranked config %v exceeds budget", rc.Config)
		}
		if i > 0 && rc.UpperBound > ranked[i-1].UpperBound {
			t.Fatalf("ranking not sorted at %d", i)
		}
	}
	// The top of the ranking must beat the homogeneous configuration's
	// bound — heterogeneity's headroom (Sec. 4).
	homUB := e.UpperBound(pool.Homogeneous(2.5))
	if ranked[0].UpperBound <= homUB {
		t.Fatalf("top UB %v does not exceed homogeneous %v", ranked[0].UpperBound, homUB)
	}
}

func TestRankDeterministic(t *testing.T) {
	e := newRM2Estimator(t)
	a := e.Rank(2.5)
	b := e.Rank(2.5)
	for i := range a {
		if !a[i].Config.Equal(b[i].Config) || a[i].UpperBound != b[i].UpperBound {
			t.Fatal("ranking not deterministic")
		}
	}
}
