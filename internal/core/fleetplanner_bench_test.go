package core

import (
	"fmt"
	"math/rand"
	"testing"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/workload"
)

// benchFleetDemands builds n catalog-model twins with 2000-sample trace
// windows each — the same shape the microbench and the autopilot feed in.
func benchFleetDemands(n int) []ModelDemand {
	rng := rand.New(rand.NewSource(42))
	cat := models.Catalog()
	mix := workload.DefaultTrace()
	out := make([]ModelDemand, n)
	for i := range out {
		samples := make([]int, 2000)
		for j := range samples {
			samples[j] = mix.Sample(rng)
		}
		out[i] = ModelDemand{
			Model:   twin(cat[i%len(cat)], fmt.Sprintf("bench-%03d", i)),
			Samples: samples,
		}
	}
	return out
}

// BenchmarkPlanFleet100Models: a full 100-model replan through the warm
// incremental planner — fingerprint every window (none moved) and rerun
// greedy allocation. The budget target: no slower than the seed's
// 2-model from-scratch PlanFleet (~1.75ms).
func BenchmarkPlanFleet100Models(b *testing.B) {
	pool := cloud.DefaultPool()
	demands := benchFleetDemands(100)
	planner, err := NewFleetPlanner(pool, 2.5)
	if err != nil {
		b.Fatal(err)
	}
	if err := planner.SetDemands(demands); err != nil {
		b.Fatal(err)
	}
	if _, err := planner.Plan(2.5); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := planner.SetDemands(demands); err != nil {
			b.Fatal(err)
		}
		if _, err := planner.Plan(2.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanFleetIncrementalOneDirty: 1 of 100 windows moved — the
// autopilot's drift/SLO trigger path via ReplanModel. Pays one
// estimator reset + frontier rescan plus the greedy rerun; target
// <100µs.
func BenchmarkPlanFleetIncrementalOneDirty(b *testing.B) {
	pool := cloud.DefaultPool()
	demands := benchFleetDemands(100)
	planner, err := NewFleetPlanner(pool, 2.5)
	if err != nil {
		b.Fatal(err)
	}
	if err := planner.SetDemands(demands); err != nil {
		b.Fatal(err)
	}
	if _, err := planner.Plan(2.5); err != nil {
		b.Fatal(err)
	}
	// Two windows for the dirty model, alternated so every iteration
	// really invalidates and rebuilds its frontier.
	dirty := demands[50]
	alt := benchFleetDemands(1)[0]
	windows := [2][]int{dirty.Samples, alt.Samples}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dirty.Samples = windows[i%2]
		if _, err := planner.ReplanModel(dirty, 2.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanFleet2Models is the seed benchmark: the from-scratch
// two-model path PlanFleetFor still takes.
func BenchmarkPlanFleet2Models(b *testing.B) {
	pool := cloud.DefaultPool()
	demands := benchFleetDemands(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanFleet(pool, demands, 2.5); err != nil {
			b.Fatal(err)
		}
	}
}
