package core

import (
	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/sim"
)

// simOracle evaluates the clairvoyant ORCL throughput for a configuration;
// shared by the upper-bound property tests.
func simOracle(m models.Model, pool cloud.Pool, cfg cloud.Config) float64 {
	return sim.OracleThroughput(
		sim.ClusterSpec{Pool: pool, Config: cfg, Model: m},
		sim.OracleOptions{Queries: 20000, Seed: 20},
	)
}
