package core

import (
	"testing"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/predictor"
	"kairos/internal/sim"
	"kairos/internal/workload"
)

// TestLateBindingEligibility verifies the slack gate: instances whose
// in-flight work extends past LateBindSlackMS are invisible to the
// matching, and a negative slack restores the literal Eq. 4 behaviour.
func TestLateBindingEligibility(t *testing.T) {
	pool := cloud.ThreeTypePool()
	m := models.MustByName("RM2")
	mk := func(slack float64) *Distributor {
		return NewDistributor(DistributorOptions{
			QoS: m.QoS, BaseType: pool.Base().Name,
			Predictor:       predictor.Warmed(m.Latency, instanceNames(pool), []int{1, 1000}),
			LateBindSlackMS: slack,
		})
	}
	waiting := []sim.QueryView{{Index: 0, Batch: 100}}
	busyFar := []sim.InstanceView{{Index: 0, TypeName: "g4dn.xlarge", RemainingMS: 200}}

	if got := mk(DefaultLateBindSlackMS).Assign(0, waiting, busyFar); len(got) != 0 {
		t.Fatalf("default slack must hold for a 200ms-busy instance: %v", got)
	}
	if got := mk(-1).Assign(0, waiting, busyFar); len(got) != 1 {
		t.Fatalf("disabled late binding must match the busy instance: %v", got)
	}
}

// TestMaxPendingEligibility verifies the pending-depth gate.
func TestMaxPendingEligibility(t *testing.T) {
	pool := cloud.ThreeTypePool()
	m := models.MustByName("RM2")
	deep := NewDistributor(DistributorOptions{
		QoS: m.QoS, BaseType: pool.Base().Name,
		Predictor:  predictor.Warmed(m.Latency, instanceNames(pool), []int{1, 1000}),
		MaxPending: 2,
	})
	waiting := []sim.QueryView{{Index: 0, Batch: 50}}
	onePending := []sim.InstanceView{{Index: 0, TypeName: "g4dn.xlarge", QueuedBatches: []int{30}}}
	if got := deep.Assign(0, waiting, onePending); len(got) != 1 {
		t.Fatalf("MaxPending=2 must accept a second pending query: %v", got)
	}
	twoPending := []sim.InstanceView{{Index: 0, TypeName: "g4dn.xlarge", QueuedBatches: []int{30, 40}}}
	if got := deep.Assign(0, waiting, twoPending); len(got) != 0 {
		t.Fatalf("MaxPending=2 must reject a third pending query: %v", got)
	}
}

// TestAgingPromotesStarvedQueries: with one slot and two queries, the
// cheaper (smaller) query wins when waits are equal, but sufficient
// accumulated wait flips the match to the older query.
func TestAgingPromotesStarvedQueries(t *testing.T) {
	pool := cloud.ThreeTypePool()
	m := models.MustByName("RM2")
	d := kairosFor(m, pool)
	gpu := []sim.InstanceView{{Index: 0, TypeName: "g4dn.xlarge"}}
	fresh := []sim.QueryView{
		{Index: 0, Batch: 600, WaitMS: 0}, // costlier on the GPU
		{Index: 1, Batch: 10, WaitMS: 0},
	}
	got := d.Assign(0, fresh, gpu)
	if len(got) != 1 || got[0].Query != 1 {
		t.Fatalf("equal waits: the cheaper query should win: %v", got)
	}
	aged := []sim.QueryView{
		{Index: 0, Batch: 600, WaitMS: 120}, // has waited much longer
		{Index: 1, Batch: 10, WaitMS: 0},
	}
	got = d.Assign(0, aged, gpu)
	if len(got) != 1 || got[0].Query != 0 {
		t.Fatalf("aged large query must be promoted: %v", got)
	}
}

// TestAgingDisabled: with aging off, the starved query keeps losing.
func TestAgingDisabled(t *testing.T) {
	pool := cloud.ThreeTypePool()
	m := models.MustByName("RM2")
	d := NewDistributor(DistributorOptions{
		QoS: m.QoS, BaseType: pool.Base().Name,
		Predictor:   predictor.Warmed(m.Latency, instanceNames(pool), []int{1, 1000}),
		AgingFactor: -1,
	})
	gpu := []sim.InstanceView{{Index: 0, TypeName: "g4dn.xlarge"}}
	aged := []sim.QueryView{
		{Index: 0, Batch: 600, WaitMS: 120},
		{Index: 1, Batch: 10, WaitMS: 0},
	}
	got := d.Assign(0, aged, gpu)
	if len(got) != 1 || got[0].Query != 1 {
		t.Fatalf("aging disabled: cheapest-first expected: %v", got)
	}
}

// TestDoomedQueryForceDispatch: a query that can no longer meet QoS
// anywhere must still be dispatched (liveness) to the fastest-clearing
// instance.
func TestDoomedQueryForceDispatch(t *testing.T) {
	pool := cloud.ThreeTypePool()
	m := models.MustByName("RM2")
	d := kairosFor(m, pool)
	// Waited longer than xi*QoS: doomed everywhere.
	doomed := []sim.QueryView{{Index: 0, Batch: 100, WaitMS: 400}}
	idle := []sim.InstanceView{
		{Index: 0, TypeName: "r5n.large"},
		{Index: 1, TypeName: "g4dn.xlarge"},
	}
	got := d.Assign(0, doomed, idle)
	if len(got) != 1 {
		t.Fatalf("doomed query must still be dispatched: %v", got)
	}
	// The GPU (85.5ms) clears batch 100 faster than r5n (132ms); the
	// fastest-clearing instance must win.
	if got[0].Instance != 1 {
		t.Fatalf("doomed query should clear on the fastest instance: %v", got)
	}
}

// TestDisableCoefficientsChangesPlacement: without Def. 1 weighting, a
// small query with both GPU and CPU idle goes to the absolutely faster
// GPU; with weighting it goes to the cheap CPU.
func TestDisableCoefficientsChangesPlacement(t *testing.T) {
	pool := cloud.ThreeTypePool()
	// WND: the GPU (6.72ms at batch 20) is absolutely faster than r5n
	// (7.6ms), so only the C_j weighting sends the query to the CPU.
	m := models.MustByName("WND")
	weighted := kairosFor(m, pool)
	unweighted := NewDistributor(DistributorOptions{
		QoS: m.QoS, BaseType: pool.Base().Name,
		Predictor:           predictor.Warmed(m.Latency, instanceNames(pool), []int{1, 1000}),
		DisableCoefficients: true,
	})
	waiting := []sim.QueryView{{Index: 0, Batch: 20}}
	idle := []sim.InstanceView{
		{Index: 0, TypeName: "g4dn.xlarge"},
		{Index: 1, TypeName: "r5n.large"},
	}
	w := weighted.Assign(0, waiting, idle)
	u := unweighted.Assign(0, waiting, idle)
	if len(w) != 1 || len(u) != 1 {
		t.Fatalf("assignments: %v / %v", w, u)
	}
	if w[0].Instance != 1 {
		t.Fatalf("weighted matching should pick the CPU: %v", w)
	}
	if u[0].Instance != 0 {
		t.Fatalf("unweighted matching should pick the faster GPU: %v", u)
	}
}

// TestEstimatorLatencyOverride: planning from the online predictor's view
// instead of ground truth must give consistent cutoffs once the predictor
// has converged.
func TestEstimatorLatencyOverride(t *testing.T) {
	pool := cloud.ThreeTypePool()
	m := models.MustByName("RM2")
	pred := predictor.Warmed(m.Latency, instanceNames(pool), []int{1, 400, 1000})
	samples := defaultSamples(t, 3000, workload.DefaultTrace())
	truth, err := NewEstimator(pool, m, samples, EstimatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	learned, err := NewEstimator(pool, m, samples, EstimatorOptions{Latency: pred.Predict})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pool {
		if truth.Cutoff(i) != learned.Cutoff(i) {
			t.Fatalf("type %d cutoff: truth %d vs learned %d", i, truth.Cutoff(i), learned.Cutoff(i))
		}
	}
	cfg := cloud.Config{2, 1, 3}
	a, b := truth.UpperBound(cfg), learned.UpperBound(cfg)
	// The learned line reproduces the surface up to float round-off.
	if diff := a - b; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("upper bounds diverge: %v vs %v", a, b)
	}
}
