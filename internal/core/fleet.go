package core

import (
	"fmt"
	"sort"
	"strings"

	"kairos/internal/cloud"
	"kairos/internal/models"
)

// DefaultHeadroom is the fractional capacity margin a demand-capped
// model keeps above its observed arrival rate (ModelDemand.ArrivalQPS).
const DefaultHeadroom = 0.25

// ModelDemand couples one served model with the batch-size sample
// describing its recent traffic — the per-model input to the shared-budget
// fleet allocator. The sample plays the same role as the query monitor's
// snapshot in single-model planning (Sec. 5.2).
type ModelDemand struct {
	Model   models.Model
	Samples []int

	// ArrivalQPS is the model's observed arrival rate in model-time QPS.
	// When positive, the allocator treats ArrivalQPS*(1+Headroom) as the
	// model's useful throughput ceiling: capacity beyond observed demand
	// serves nothing, so the budget it would cost is left unspent instead
	// of buying throughput no query will ever use. Zero means the demand
	// is unknown and the model's allocation is uncapped (the original
	// maximize-throughput behavior).
	ArrivalQPS float64
	// Headroom is the fractional overprovision kept above ArrivalQPS so
	// ordinary rate fluctuation does not immediately breach the SLO;
	// non-positive uses DefaultHeadroom. Ignored while ArrivalQPS is zero.
	Headroom float64
}

// cap returns the demand's useful-throughput ceiling, or 0 when uncapped.
func (d ModelDemand) cap() float64 {
	if d.ArrivalQPS <= 0 {
		return 0
	}
	head := d.Headroom
	if head <= 0 {
		head = DefaultHeadroom
	}
	return d.ArrivalQPS * (1 + head)
}

// FleetPlan is a multi-model deployment: one heterogeneous configuration
// per model name, all drawn from the same pool and paid from one shared
// budget. A model may be absent (or mapped to an all-zero configuration)
// when the allocator could not afford any throughput for it.
type FleetPlan map[string]cloud.Config

// Clone deep-copies the plan.
func (p FleetPlan) Clone() FleetPlan {
	out := make(FleetPlan, len(p))
	for name, cfg := range p {
		out[name] = cfg.Clone()
	}
	return out
}

// Total returns the number of instances across every model's fleet.
func (p FleetPlan) Total() int {
	n := 0
	for _, cfg := range p {
		n += cfg.Total()
	}
	return n
}

// Cost returns the plan's aggregate price in $/hr under the pool.
func (p FleetPlan) Cost(pool cloud.Pool) float64 {
	total := 0.0
	for _, cfg := range p {
		total += pool.Cost(cfg)
	}
	return total
}

// Config returns the named model's configuration, or nil when the plan
// holds none.
func (p FleetPlan) Config(model string) cloud.Config { return p[model] }

// Models lists the plan's model names in sorted order.
func (p FleetPlan) Models() []string {
	out := make([]string, 0, len(p))
	for name := range p {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Equal reports whether two plans allocate identical fleets. A missing
// model and an all-zero configuration are equivalent.
func (p FleetPlan) Equal(o FleetPlan) bool {
	for name, cfg := range p {
		oc, ok := o[name]
		if !ok {
			if cfg.Total() != 0 {
				return false
			}
			continue
		}
		if !cfg.Equal(oc) {
			return false
		}
	}
	for name, oc := range o {
		if _, ok := p[name]; !ok && oc.Total() != 0 {
			return false
		}
	}
	return true
}

// String renders the plan as "model=(a,b,c) ..." in model-name order.
func (p FleetPlan) String() string {
	var b strings.Builder
	for i, name := range p.Models() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", name, p[name])
	}
	return b.String()
}

// frontierPoint is one step on a model's cost/throughput efficient
// frontier: the cheapest configuration achieving its upper bound.
type frontierPoint struct {
	cfg  cloud.Config
	cost float64
	ub   float64
}

// modelLadder is one model's frontier plus the greedy allocator's cursor:
// cur == -1 is the empty configuration (cost 0, upper bound 0).
type modelLadder struct {
	name   string
	points []frontierPoint
	cur    int
}

func (l *modelLadder) at() (cost, ub float64) {
	if l.cur < 0 {
		return 0, 0
	}
	return l.points[l.cur].cost, l.points[l.cur].ub
}

// frontier builds the Pareto frontier of (cost, upper bound) over every
// configuration within budget: sorted by ascending cost, keeping only
// configurations whose bound strictly improves on all cheaper ones. Both
// cost and bound are strictly increasing along the result.
func frontier(pool cloud.Pool, est *Estimator, budget float64) []frontierPoint {
	configs := pool.Enumerate(budget)
	pts := make([]frontierPoint, 0, len(configs))
	for _, cfg := range configs {
		if ub := est.UpperBound(cfg); ub > 0 {
			pts = append(pts, frontierPoint{cfg: cfg, cost: pool.Cost(cfg), ub: ub})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].cost != pts[j].cost {
			return pts[i].cost < pts[j].cost
		}
		if pts[i].ub != pts[j].ub {
			return pts[i].ub > pts[j].ub
		}
		return pts[i].cfg.Key() < pts[j].cfg.Key()
	})
	out := pts[:0]
	best := 0.0
	for _, p := range pts {
		if p.ub > best {
			out = append(out, p)
			best = p.ub
		}
	}
	return out
}

// capFrontier clamps a frontier's upper bounds at the demand ceiling and
// truncates it there: everything past the first point reaching the cap
// costs more without serving any additional demand, so the greedy
// allocator must never be offered it.
func capFrontier(pts []frontierPoint, cap float64) []frontierPoint {
	if cap <= 0 {
		return pts
	}
	for i := range pts {
		if pts[i].ub >= cap {
			pts[i].ub = cap
			return pts[:i+1]
		}
	}
	return pts
}

const costEps = 1e-9

// bestJump finds the ladder's most efficient affordable upgrade: the
// frontier point beyond the cursor maximizing marginal upper bound per
// marginal dollar within the remaining budget. It returns the point index
// and the ratio, or (-1, 0) when no upgrade fits.
func (l *modelLadder) bestJump(remaining float64) (int, float64) {
	curCost, curUB := l.at()
	bestIdx, bestRatio := -1, 0.0
	for j := l.cur + 1; j < len(l.points); j++ {
		dc := l.points[j].cost - curCost
		if dc > remaining+costEps {
			break // frontier cost is increasing: later points cost more
		}
		du := l.points[j].ub - curUB
		if du <= 0 || dc <= 0 {
			continue
		}
		if ratio := du / dc; ratio > bestRatio+costEps {
			bestIdx, bestRatio = j, ratio
		}
	}
	return bestIdx, bestRatio
}

// PlanFleet splits one dollar budget across several models' fleets by
// greedy marginal throughput-per-dollar over each model's ranked
// configurations (the multi-model generalization of the paper's one-shot
// planner; INFaaS-style model-less allocation).
//
// The allocator works on each model's cost/upper-bound Pareto frontier in
// two phases:
//
//  1. Coverage: every model whose cheapest positive-throughput
//     configuration still fits the remaining budget is funded first (in
//     descending first-step efficiency), so no servable model is starved
//     merely because another model converts dollars to QPS faster.
//  2. Greedy: the remaining budget buys frontier upgrades one at a time,
//     always taking the upgrade with the highest marginal upper bound per
//     marginal dollar across all models. Ties break deterministically
//     toward the lexicographically smaller model name.
//
// A model whose cheapest useful configuration never fits (e.g. it needs
// the base GPU but the budget is spent) ends with an all-zero
// configuration — the degenerate "starved" outcome callers must expect
// under tight budgets.
//
// Demands with an observed ArrivalQPS are demand-capped: each such
// model's frontier is clamped at ArrivalQPS*(1+Headroom), so once its
// planned throughput covers the observed demand plus the margin, further
// upgrades have zero marginal value and the budget they would cost stays
// unspent. When demand exceeds everything the budget can buy, the cap
// never binds and the plan is the uncapped maximize-throughput one.
func PlanFleet(pool cloud.Pool, demands []ModelDemand, budget float64) (FleetPlan, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("core: fleet planning needs a positive budget (got %v)", budget)
	}
	if len(demands) == 0 {
		return nil, fmt.Errorf("core: fleet planning needs at least one model demand")
	}
	ladders := make([]*modelLadder, 0, len(demands))
	seen := make(map[string]bool, len(demands))
	for _, d := range demands {
		if d.Model.Name == "" {
			return nil, fmt.Errorf("core: fleet demand with an unnamed model")
		}
		if seen[d.Model.Name] {
			return nil, fmt.Errorf("core: duplicate fleet demand for model %s", d.Model.Name)
		}
		seen[d.Model.Name] = true
		est, err := NewEstimator(pool, d.Model, d.Samples, EstimatorOptions{})
		if err != nil {
			return nil, fmt.Errorf("core: fleet demand for %s: %w", d.Model.Name, err)
		}
		ladders = append(ladders, &modelLadder{
			name:   d.Model.Name,
			points: capFrontier(frontier(pool, est, budget), d.cap()),
			cur:    -1,
		})
	}
	// Deterministic tie-breaking needs a stable scan order.
	sort.Slice(ladders, func(i, j int) bool { return ladders[i].name < ladders[j].name })

	remaining := budget
	for {
		// Coverage first: uncovered models with an affordable first step
		// take absolute priority over upgrades to already-served models,
		// and coverage buys exactly the cheapest positive-throughput
		// configuration — never a deeper jump, which could spend the
		// budget another coverable model still needs. Upgrades come later
		// from the greedy phase.
		var pick *modelLadder
		pickIdx, pickRatio := -1, 0.0
		for _, l := range ladders {
			if l.cur < 0 && len(l.points) > 0 && l.points[0].cost <= remaining+costEps {
				if ratio := l.points[0].ub / l.points[0].cost; ratio > pickRatio+costEps {
					pick, pickIdx, pickRatio = l, 0, ratio
				}
			}
		}
		if pick == nil {
			// Everyone affordable is covered: greedy marginal upgrades.
			for _, l := range ladders {
				if idx, ratio := l.bestJump(remaining); idx >= 0 && ratio > pickRatio+costEps {
					pick, pickIdx, pickRatio = l, idx, ratio
				}
			}
		}
		if pick == nil {
			break
		}
		curCost, _ := pick.at()
		remaining -= pick.points[pickIdx].cost - curCost
		pick.cur = pickIdx
	}

	plan := make(FleetPlan, len(ladders))
	for _, l := range ladders {
		if l.cur < 0 {
			plan[l.name] = cloud.NewConfig(pool)
		} else {
			plan[l.name] = l.points[l.cur].cfg.Clone()
		}
	}
	return plan, nil
}
