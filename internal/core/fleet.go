package core

import (
	"fmt"
	"sort"
	"strings"

	"kairos/internal/cloud"
	"kairos/internal/models"
)

// DefaultHeadroom is the fractional capacity margin a demand-capped
// model keeps above its observed arrival rate (ModelDemand.ArrivalQPS).
const DefaultHeadroom = 0.25

// QoSClass tiers a served model for spot-market planning.
type QoSClass int

const (
	// LatencyCritical models (the default) carry a hard tail-latency
	// target: the allocator's on-demand floor applies to them, so a
	// simultaneous revocation of every spot instance cannot take the
	// model below its survival capacity.
	LatencyCritical QoSClass = iota
	// BestEffort models tolerate transient capacity loss and may be
	// served entirely from revocable spot capacity.
	BestEffort
)

// ModelDemand couples one served model with the batch-size sample
// describing its recent traffic — the per-model input to the shared-budget
// fleet allocator. The sample plays the same role as the query monitor's
// snapshot in single-model planning (Sec. 5.2).
type ModelDemand struct {
	Model   models.Model
	Samples []int

	// ArrivalQPS is the model's observed arrival rate in model-time QPS.
	// When positive, the allocator treats ArrivalQPS*(1+Headroom) as the
	// model's useful throughput ceiling: capacity beyond observed demand
	// serves nothing, so the budget it would cost is left unspent instead
	// of buying throughput no query will ever use. Zero means the demand
	// is unknown and the model's allocation is uncapped (the original
	// maximize-throughput behavior).
	ArrivalQPS float64
	// Headroom is the fractional overprovision kept above ArrivalQPS so
	// ordinary rate fluctuation does not immediately breach the SLO;
	// non-positive uses DefaultHeadroom. Ignored while ArrivalQPS is zero.
	Headroom float64

	// Class tiers the model for spot-market planning; the on-demand floor
	// below binds only LatencyCritical (the default) models.
	Class QoSClass
	// OnDemandFloor arms the spot-survival constraint, as a fraction of
	// ArrivalQPS: every configuration the allocator may select for the
	// model must retain an on-demand-only throughput upper bound of at
	// least OnDemandFloor*ArrivalQPS, so losing every spot instance at
	// once still leaves that fraction of the observed demand servable
	// (1 = full demand survives on on-demand capacity alone). Zero
	// disables the floor; it is also inert while ArrivalQPS is zero, for
	// BestEffort models, and in pools without spot capacity.
	OnDemandFloor float64
}

// cap returns the demand's useful-throughput ceiling, or 0 when uncapped.
func (d ModelDemand) cap() float64 {
	if d.ArrivalQPS <= 0 {
		return 0
	}
	head := d.Headroom
	if head <= 0 {
		head = DefaultHeadroom
	}
	return d.ArrivalQPS * (1 + head)
}

// floorQPS returns the demand's on-demand survival floor in QPS, or 0
// when no floor applies. The floor never exceeds the demand cap:
// surviving revocation requires at most what the cap lets the model
// serve anyway.
func (d ModelDemand) floorQPS() float64 {
	if d.Class != LatencyCritical || d.OnDemandFloor <= 0 || d.ArrivalQPS <= 0 {
		return 0
	}
	f := d.OnDemandFloor * d.ArrivalQPS
	if c := d.cap(); f > c {
		f = c
	}
	return f
}

// FleetPlan is a multi-model deployment: one heterogeneous configuration
// per model name, all drawn from the same pool and paid from one shared
// budget. A model may be absent (or mapped to an all-zero configuration)
// when the allocator could not afford any throughput for it.
type FleetPlan map[string]cloud.Config

// Clone deep-copies the plan.
func (p FleetPlan) Clone() FleetPlan {
	out := make(FleetPlan, len(p))
	for name, cfg := range p {
		out[name] = cfg.Clone()
	}
	return out
}

// Total returns the number of instances across every model's fleet.
func (p FleetPlan) Total() int {
	n := 0
	for _, cfg := range p {
		n += cfg.Total()
	}
	return n
}

// Cost returns the plan's aggregate price in $/hr under the pool.
func (p FleetPlan) Cost(pool cloud.Pool) float64 {
	total := 0.0
	for _, cfg := range p {
		total += pool.Cost(cfg)
	}
	return total
}

// Config returns the named model's configuration, or nil when the plan
// holds none.
func (p FleetPlan) Config(model string) cloud.Config { return p[model] }

// Models lists the plan's model names in sorted order.
func (p FleetPlan) Models() []string {
	out := make([]string, 0, len(p))
	for name := range p {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Equal reports whether two plans allocate identical fleets. A missing
// model and an all-zero configuration are equivalent.
func (p FleetPlan) Equal(o FleetPlan) bool {
	for name, cfg := range p {
		oc, ok := o[name]
		if !ok {
			if cfg.Total() != 0 {
				return false
			}
			continue
		}
		if !cfg.Equal(oc) {
			return false
		}
	}
	for name, oc := range o {
		if _, ok := p[name]; !ok && oc.Total() != 0 {
			return false
		}
	}
	return true
}

// String renders the plan as "model=(a,b,c) ..." in model-name order.
func (p FleetPlan) String() string {
	var b strings.Builder
	for i, name := range p.Models() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", name, p[name])
	}
	return b.String()
}

// PlanFleet splits one dollar budget across several models' fleets by
// greedy marginal throughput-per-dollar over each model's ranked
// configurations (the multi-model generalization of the paper's one-shot
// planner; INFaaS-style model-less allocation).
//
// The allocator works on each model's cost/upper-bound Pareto frontier in
// two phases:
//
//  1. Coverage: every model whose cheapest positive-throughput
//     configuration still fits the remaining budget is funded first (in
//     descending first-step efficiency), so no servable model is starved
//     merely because another model converts dollars to QPS faster.
//  2. Greedy: the remaining budget buys frontier upgrades one at a time,
//     always taking the upgrade with the highest marginal upper bound per
//     marginal dollar across all models. Ties break deterministically
//     toward the lexicographically smaller model name.
//
// A model whose cheapest useful configuration never fits (e.g. it needs
// the base GPU but the budget is spent) ends with an all-zero
// configuration — the degenerate "starved" outcome callers must expect
// under tight budgets.
//
// Demands with an observed ArrivalQPS are demand-capped: each such
// model's frontier is clamped at ArrivalQPS*(1+Headroom), so once its
// planned throughput covers the observed demand plus the margin, further
// upgrades have zero marginal value and the budget they would cost stays
// unspent. When demand exceeds everything the budget can buy, the cap
// never binds and the plan is the uncapped maximize-throughput one.
//
// In pools carrying spot-market capacity (cloud.Pool.WithSpotMarket),
// demands with an OnDemandFloor are additionally risk-bounded: the
// allocator only considers configurations whose on-demand-only upper
// bound covers the floor, so a latency-critical model survives losing
// every spot instance at once (see ModelDemand.OnDemandFloor). Like the
// demand cap, the floor is applied at read time over cached frontiers.
//
// PlanFleet is the from-scratch entry point: it builds a fresh
// FleetPlanner, plans once, and returns an independent copy. Callers
// replanning every tick should hold a FleetPlanner so the frontier
// cache and pooled scratch amortize the work across ticks.
func PlanFleet(pool cloud.Pool, demands []ModelDemand, budget float64) (FleetPlan, error) {
	p, err := NewFleetPlanner(pool, budget)
	if err != nil {
		return nil, err
	}
	if err := p.SetDemands(demands); err != nil {
		return nil, err
	}
	plan, err := p.Plan(budget)
	if err != nil {
		return nil, err
	}
	return plan.Clone(), nil
}
