package core

import (
	"math/rand"
	"testing"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/workload"
)

// fleetSamples draws n batch sizes from dist for allocator inputs.
func fleetSamples(dist workload.BatchDistribution, n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = dist.Sample(rng)
	}
	return out
}

// twin returns a copy of the model under a different name, so two demands
// with identical economics can race for the same budget.
func twin(m models.Model, name string) models.Model {
	out := m
	out.Name = name
	return out
}

func TestFleetPlanHelpers(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool()
	p := FleetPlan{
		"A": cloud.Config{1, 0, 2, 0},
		"B": cloud.Config{0, 0, 0, 0},
	}
	if got := p.Total(); got != 3 {
		t.Fatalf("Total = %d", got)
	}
	wantCost := pool.Cost(p["A"])
	if got := p.Cost(pool); got != wantCost {
		t.Fatalf("Cost = %v, want %v", got, wantCost)
	}
	if got := p.Models(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("Models = %v", got)
	}
	// A missing model and an all-zero config are the same fleet.
	if !p.Equal(FleetPlan{"A": cloud.Config{1, 0, 2, 0}}) {
		t.Fatal("zero config must equal absence")
	}
	if p.Equal(FleetPlan{"A": cloud.Config{1, 0, 2, 0}, "B": cloud.Config{0, 0, 1, 0}}) {
		t.Fatal("distinct fleets must not be equal")
	}
	if p.Equal(FleetPlan{"B": cloud.Config{0, 0, 0, 0}}) {
		t.Fatal("dropping a non-empty model must not be equal")
	}
	c := p.Clone()
	c["A"][0] = 9
	if p["A"][0] == 9 {
		t.Fatal("Clone must deep-copy configs")
	}
	if s := p.String(); s != "A=(1,0,2,0) B=(0,0,0,0)" {
		t.Fatalf("String = %q", s)
	}
}

func TestPlanFleetValidation(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool()
	m := models.MustByName("NCF")
	samples := fleetSamples(workload.Uniform{Min: 10, Max: 60}, 500, 1)
	demand := ModelDemand{Model: m, Samples: samples}

	if _, err := PlanFleet(pool, []ModelDemand{demand}, 0); err == nil {
		t.Fatal("zero budget must error")
	}
	if _, err := PlanFleet(pool, nil, 1); err == nil {
		t.Fatal("no demands must error")
	}
	if _, err := PlanFleet(pool, []ModelDemand{demand, demand}, 1); err == nil {
		t.Fatal("duplicate model must error")
	}
	if _, err := PlanFleet(pool, []ModelDemand{{Model: m}}, 1); err == nil {
		t.Fatal("empty samples must error")
	}
}

// TestPlanFleetDegenerateBudget: a budget below every positive-throughput
// configuration starves the whole fleet — all-zero configs, not an error.
func TestPlanFleetDegenerateBudget(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool()
	m := models.MustByName("NCF")
	samples := fleetSamples(workload.Uniform{Min: 10, Max: 60}, 500, 1)
	plan, err := PlanFleet(pool, []ModelDemand{{Model: m, Samples: samples}}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total() != 0 {
		t.Fatalf("unaffordable budget bought %v", plan)
	}
	if _, ok := plan[m.Name]; !ok {
		t.Fatal("starved model must still appear in the plan")
	}
}

// TestPlanFleetSingleModelMatchesFrontier: with one demand the allocator
// lands on the highest-upper-bound configuration within budget.
func TestPlanFleetSingleModel(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool()
	m := models.MustByName("NCF")
	const budget = 0.8
	samples := fleetSamples(workload.Uniform{Min: 10, Max: 60}, 1000, 2)
	plan, err := PlanFleet(pool, []ModelDemand{{Model: m, Samples: samples}}, budget)
	if err != nil {
		t.Fatal(err)
	}
	cfg := plan[m.Name]
	if cfg.Total() == 0 {
		t.Fatalf("plan %v bought nothing", plan)
	}
	if !pool.WithinBudget(cfg, budget) {
		t.Fatalf("plan %v busts the budget", plan)
	}
	est, err := NewEstimator(pool, m, samples, EstimatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	best := est.Rank(budget)[0].UpperBound
	if got := est.UpperBound(cfg); got < best*(1-1e-9) {
		t.Fatalf("single-model fleet plan %v reaches %.1f QPS, frontier best is %.1f", cfg, got, best)
	}
}

// TestPlanFleetStarvesUnaffordableModel: when one model's cheapest useful
// configuration (the base GPU, for a large-batch mix) no longer fits after
// covering the other model, it is starved and the budget flows to the
// servable model.
func TestPlanFleetStarvesUnaffordableModel(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool()
	m := models.MustByName("NCF")
	small := ModelDemand{Model: twin(m, "small-mix"), Samples: fleetSamples(workload.Uniform{Min: 10, Max: 60}, 800, 3)}
	// Batches above every CPU cutoff: only the GPU ($0.526/hr) serves them.
	large := ModelDemand{Model: twin(m, "large-mix"), Samples: fleetSamples(workload.Uniform{Min: 500, Max: 800}, 800, 4)}

	// $0.45 covers the small-mix model's first CPU but never the GPU.
	plan, err := PlanFleet(pool, []ModelDemand{small, large}, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan["large-mix"].Total(); got != 0 {
		t.Fatalf("unaffordable model was funded: %v", plan)
	}
	if got := plan["small-mix"].Total(); got == 0 {
		t.Fatalf("servable model starved: %v", plan)
	}
	if plan.Cost(pool) > 0.45+1e-9 {
		t.Fatalf("plan %v busts the budget", plan)
	}
}

// TestPlanFleetCoverageBeforeUpgrades: a model that converts dollars to
// throughput more slowly still gets its first configuration before the
// faster model takes the whole budget.
func TestPlanFleetCoverageBeforeUpgrades(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool()
	ncf := models.MustByName("NCF")
	wnd := models.MustByName("MT-WND") // ~8x slower per dollar on small batches
	demands := []ModelDemand{
		{Model: ncf, Samples: fleetSamples(workload.Uniform{Min: 10, Max: 60}, 800, 5)},
		{Model: wnd, Samples: fleetSamples(workload.Uniform{Min: 10, Max: 80}, 800, 6)},
	}
	plan, err := PlanFleet(pool, demands, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if plan[ncf.Name].Total() == 0 || plan[wnd.Name].Total() == 0 {
		t.Fatalf("both models must be served under $0.9: %v", plan)
	}
	// The efficient model gets the upgrades beyond coverage.
	if plan[ncf.Name].Total() <= plan[wnd.Name].Total() {
		t.Fatalf("marginal dollars must flow to the efficient model: %v", plan)
	}
	if plan.Cost(pool) > 0.9+1e-9 {
		t.Fatalf("plan %v busts the budget", plan)
	}
}

// TestPlanFleetEqualMarginalTie: two demands with identical economics and
// a budget that fits exactly one instance — the lexicographically smaller
// model name wins, deterministically.
func TestPlanFleetEqualMarginalTie(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool()
	m := models.MustByName("NCF")
	samples := fleetSamples(workload.Uniform{Min: 10, Max: 60}, 800, 7)
	a := ModelDemand{Model: twin(m, "alpha"), Samples: samples}
	b := ModelDemand{Model: twin(m, "beta"), Samples: samples}

	// One r5n.large ($0.149) fits; the second does not.
	for _, order := range [][]ModelDemand{{a, b}, {b, a}} {
		plan, err := PlanFleet(pool, order, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		if plan["alpha"].Total() != 1 || plan["beta"].Total() != 0 {
			t.Fatalf("tie must break toward the smaller name regardless of demand order: %v", plan)
		}
	}

	// With room for both, each gets covered before either is upgraded.
	plan, err := PlanFleet(pool, []ModelDemand{a, b}, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if plan["alpha"].Total() != 1 || plan["beta"].Total() != 1 {
		t.Fatalf("equal demands under 2x budget must each get one instance: %v", plan)
	}
}

// TestPlanFleetDemandCapLeavesSurplusUnspent: a model whose observed
// arrival rate is far below what the budget could buy must stop at
// demand+headroom and leave the surplus unspent — not convert every free
// dollar into capacity nothing will use.
func TestPlanFleetDemandCapLeavesSurplusUnspent(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool()
	m := models.MustByName("NCF")
	const budget = 2.5
	samples := fleetSamples(workload.Uniform{Min: 10, Max: 60}, 1000, 2)

	uncapped, err := PlanFleet(pool, []ModelDemand{{Model: m, Samples: samples}}, budget)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(pool, m, samples, EstimatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	maxQPS := est.UpperBound(uncapped[m.Name])
	if maxQPS <= 0 {
		t.Fatalf("uncapped plan %v serves nothing", uncapped)
	}

	// Demand a tenth of the achievable throughput.
	capped, err := PlanFleet(pool, []ModelDemand{{Model: m, Samples: samples, ArrivalQPS: maxQPS / 10}}, budget)
	if err != nil {
		t.Fatal(err)
	}
	if capped[m.Name].Total() == 0 {
		t.Fatalf("capped plan %v must still cover the demand", capped)
	}
	spent, uncappedCost := capped.Cost(pool), uncapped.Cost(pool)
	if spent >= uncappedCost {
		t.Fatalf("demand cap left nothing unspent: capped $%.3f vs uncapped $%.3f (%v vs %v)",
			spent, uncappedCost, capped, uncapped)
	}
	// The capped fleet still covers demand + default headroom.
	want := maxQPS / 10 * (1 + DefaultHeadroom)
	if got := est.UpperBound(capped[m.Name]); got < want*(1-1e-9) && got < maxQPS*(1-1e-9) {
		t.Fatalf("capped plan %v reaches %.1f QPS, demand ceiling is %.1f", capped, got, want)
	}
	// An explicit headroom widens the ceiling and may buy more.
	wide, err := PlanFleet(pool, []ModelDemand{{Model: m, Samples: samples, ArrivalQPS: maxQPS / 10, Headroom: 5}}, budget)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Cost(pool) < spent-1e-9 {
		t.Fatalf("wider headroom bought less: $%.3f vs $%.3f", wide.Cost(pool), spent)
	}
}

// TestPlanFleetDemandCapSaturation: when observed demand exceeds
// everything the budget can buy, the cap never binds and the plan is
// exactly the uncapped maximize-throughput one.
func TestPlanFleetDemandCapSaturation(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool()
	m := models.MustByName("NCF")
	const budget = 0.8
	samples := fleetSamples(workload.Uniform{Min: 10, Max: 60}, 1000, 2)

	uncapped, err := PlanFleet(pool, []ModelDemand{{Model: m, Samples: samples}}, budget)
	if err != nil {
		t.Fatal(err)
	}
	saturated, err := PlanFleet(pool, []ModelDemand{{Model: m, Samples: samples, ArrivalQPS: 1e9}}, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !saturated.Equal(uncapped) {
		t.Fatalf("saturating demand must reproduce the uncapped plan: %v vs %v", saturated, uncapped)
	}
}

// TestPlanFleetDemandCapFreesBudgetForOtherModels: one model's capped
// demand releases upgrade dollars the other (uncapped) model can spend.
func TestPlanFleetDemandCapFreesBudgetForOtherModels(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool()
	m := models.MustByName("NCF")
	samples := fleetSamples(workload.Uniform{Min: 10, Max: 60}, 800, 7)
	const budget = 0.9

	base, err := PlanFleet(pool, []ModelDemand{
		{Model: twin(m, "alpha"), Samples: samples},
		{Model: twin(m, "beta"), Samples: samples},
	}, budget)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(pool, m, samples, EstimatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Cap alpha at roughly its coverage throughput; beta stays uncapped.
	capQPS := est.Rank(budget)[len(est.Rank(budget))-1].UpperBound // cheapest config's bound
	capped, err := PlanFleet(pool, []ModelDemand{
		{Model: twin(m, "alpha"), Samples: samples, ArrivalQPS: capQPS / (1 + DefaultHeadroom)},
		{Model: twin(m, "beta"), Samples: samples},
	}, budget)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Cost(capped["alpha"]) > pool.Cost(base["alpha"])+1e-9 {
		t.Fatalf("capped model grew: %v vs %v", capped, base)
	}
	if pool.Cost(capped["beta"]) < pool.Cost(base["beta"])-1e-9 {
		t.Fatalf("freed budget must not shrink the uncapped model: %v vs %v", capped, base)
	}
	if capped["beta"].Total() <= capped["alpha"].Total() {
		t.Fatalf("upgrade dollars must flow to the uncapped model: %v", capped)
	}
}

// flatModel builds a model whose latency is constant per instance type —
// a lever for shaping frontier economics precisely.
func flatModel(name string, qos float64, lat map[string]float64) models.Model {
	curves := make(map[string]models.Linear, len(lat))
	for typ, ms := range lat {
		curves[typ] = models.Linear{Intercept: ms}
	}
	return models.Model{Name: name, QoS: qos, Curves: curves}
}

// TestPlanFleetCoverageBuysCheapestFirst guards the coverage guarantee
// against ratio-greedy overshoot: model A's best-ratio jump is the
// expensive GPU, but coverage must buy A's cheap CPU first so model B's
// own first step still fits the budget.
func TestPlanFleetCoverageBuysCheapestFirst(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool()
	infeasible := 1e6 // violates any QoS: the type never serves this model
	// A: CPU serves at 100 QPS ($0.149), GPU at 1000 QPS ($0.526) — the
	// GPU jump has the best marginal ratio anywhere (~1900 QPS/$).
	a := flatModel("A", 50, map[string]float64{
		cloud.G4dnXlarge.Name: 1,
		cloud.C5n2xlarge.Name: infeasible,
		cloud.R5nLarge.Name:   10,
		cloud.T3Xlarge.Name:   infeasible,
	})
	// B: CPU serves at 200 QPS; its first step ratio (~1342 QPS/$) beats
	// A's CPU but not A's GPU.
	b := flatModel("B", 50, map[string]float64{
		cloud.G4dnXlarge.Name: 2.5,
		cloud.C5n2xlarge.Name: infeasible,
		cloud.R5nLarge.Name:   5,
		cloud.T3Xlarge.Name:   infeasible,
	})
	samples := fleetSamples(workload.Uniform{Min: 10, Max: 60}, 500, 9)
	demands := []ModelDemand{
		{Model: a, Samples: samples},
		{Model: b, Samples: samples},
	}
	// $0.60: A's GPU (0.526) would leave B unservable (needs 0.149);
	// coverage must fund A's CPU (0.149) and B's CPU (0.149) instead.
	plan, err := PlanFleet(pool, demands, 0.60)
	if err != nil {
		t.Fatal(err)
	}
	if plan["A"].Total() == 0 || plan["B"].Total() == 0 {
		t.Fatalf("coverage overshoot starved a coverable model: %v", plan)
	}
	if plan.Cost(pool) > 0.60+1e-9 {
		t.Fatalf("plan %v busts the budget", plan)
	}
}
