package core

import (
	"fmt"
	"sort"

	"kairos/internal/cloud"
	"kairos/internal/models"
)

// UpperBoundRaw evaluates Eq. 15 from aggregated quantities:
//
//	u       – number of base instances,
//	qB      – one base instance's QPS over the full query mix,
//	qBSPlus – one base instance's QPS over queries larger than the shared
//	          auxiliary region (the s+ queries),
//	vQa     – per auxiliary type, count times standalone QPS over queries
//	          inside the shared region (v_i * Q_a^i),
//	fPrime  – fraction of queries inside the shared auxiliary region.
//
// The return value is the throughput upper bound QPS_max: no distribution
// policy can exceed it on this hardware (Def. 2).
func UpperBoundRaw(u int, qB, qBSPlus float64, vQa []float64, fPrime float64) float64 {
	sumAux := 0.0
	for _, v := range vQa {
		sumAux += v
	}
	if fPrime <= 0 || sumAux == 0 {
		// No auxiliary coverage: the base instances serve everything.
		return float64(u) * qB
	}
	if fPrime >= 1 {
		// Every query fits the auxiliary region; the offload stream to the
		// base vanishes (C = 0) and the base contributes its full rate.
		return sumAux + float64(u)*qB
	}
	base := float64(u) * qBSPlus
	c := sumAux * (1 - fPrime) / fPrime // Eq. 14
	if base <= c {
		// Base is the bottleneck (Eq. 12).
		return base / (1 - fPrime)
	}
	// Auxiliary is the bottleneck; add the base slack throughput (Eq. 13).
	slack := 0.0
	if base > 0 {
		slack = (base - c) / base * float64(u) * qB
	}
	return sumAux/fPrime + slack
}

// Estimator computes throughput upper bounds for configurations of a pool
// serving one model under an observed workload mix. It needs only the
// latency surface (predicted or ground truth) and a sample of recent batch
// sizes from the query monitor — no online evaluation (Sec. 5.2).
type Estimator struct {
	pool    cloud.Pool
	model   models.Model
	qos     float64
	latency func(instance string, batch int) float64

	sorted []int // ascending batch samples

	// Per-pool-type cached aggregates (lazily built): cutoffs and, per
	// candidate shared region, conditional mean latencies.
	cutoffs []int
	// qpsCache memoizes meanQPS by (instance, lo, hi); the shared region
	// boundary takes one of at most len(pool) values, so ranking a
	// 100k-configuration space (Fig. 15a's 4x budget) stays cheap.
	qpsCache map[qpsKey]float64
}

type qpsKey struct {
	instance string
	lo, hi   int
}

// EstimatorOptions configure NewEstimator.
type EstimatorOptions struct {
	// Latency overrides the model's ground-truth surface (e.g. with the
	// online predictor's view). Nil uses the model.
	Latency func(instance string, batch int) float64
	// QoS overrides the model's QoS target (Fig. 15b). Zero uses the model.
	QoS float64
}

// NewEstimator builds an estimator from recent batch-size samples (the
// query monitor's snapshot; Sec. 5.2 uses the last ~10000 queries).
func NewEstimator(pool cloud.Pool, model models.Model, samples []int, opts EstimatorOptions) (*Estimator, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: estimator needs batch samples")
	}
	e := &Estimator{
		pool:    pool,
		model:   model,
		qos:     opts.QoS,
		latency: opts.Latency,
	}
	if e.qos == 0 {
		e.qos = model.QoS
	}
	if e.latency == nil {
		e.latency = model.Latency
	}
	e.sorted = make([]int, len(samples))
	copy(e.sorted, samples)
	sort.Ints(e.sorted)
	if e.sorted[0] < 1 || e.sorted[len(e.sorted)-1] > models.MaxBatch {
		return nil, fmt.Errorf("core: batch samples outside [1,%d]", models.MaxBatch)
	}
	e.cutoffs = make([]int, len(pool))
	for i, t := range pool {
		e.cutoffs[i] = e.cutoffBatch(t.Name)
	}
	return e, nil
}

// cutoffBatch finds the largest batch within QoS on the instance type by
// bisection over the monotone latency curve.
func (e *Estimator) cutoffBatch(instance string) int {
	if e.latency(instance, 1) > e.qos {
		return 0
	}
	lo, hi := 1, models.MaxBatch
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if e.latency(instance, mid) <= e.qos {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Cutoff returns the QoS cutoff batch size s for pool type index i.
func (e *Estimator) Cutoff(i int) int { return e.cutoffs[i] }

// fractionAtMost computes f(s) over the samples.
func (e *Estimator) fractionAtMost(s int) float64 {
	idx := sort.SearchInts(e.sorted, s+1)
	return float64(idx) / float64(len(e.sorted))
}

// meanQPS returns the standalone QPS of one instance of the type over the
// sample batches in the half-open index range [lo, hi) of the sorted
// samples: 1000 / mean latency. Returns 0 for an empty range.
func (e *Estimator) meanQPS(instance string, lo, hi int) float64 {
	if lo >= hi {
		return 0
	}
	key := qpsKey{instance, lo, hi}
	if v, ok := e.qpsCache[key]; ok {
		return v
	}
	sum := 0.0
	for _, b := range e.sorted[lo:hi] {
		sum += e.latency(instance, b)
	}
	mean := sum / float64(hi-lo)
	v := 0.0
	if mean > 0 {
		v = 1000 / mean
	}
	if e.qpsCache == nil {
		e.qpsCache = make(map[qpsKey]float64)
	}
	e.qpsCache[key] = v
	return v
}

// UpperBound computes QPS_max for one configuration (Eq. 15 with the
// shared-region approximation for multiple auxiliary types).
func (e *Estimator) UpperBound(cfg cloud.Config) float64 {
	if len(cfg) != len(e.pool) {
		panic(fmt.Sprintf("core: config %v does not match pool of %d types", cfg, len(e.pool)))
	}
	u := cfg[cloud.BaseIndex]
	// Shared auxiliary region: the maximum cutoff among allocated
	// auxiliary types (the paper's optimistic simplification).
	sMax := 0
	for i := range e.pool {
		if i == cloud.BaseIndex || cfg[i] == 0 {
			continue
		}
		if e.cutoffs[i] > sMax {
			sMax = e.cutoffs[i]
		}
	}
	base := e.pool.Base().Name
	qB := e.meanQPS(base, 0, len(e.sorted))
	if sMax == 0 {
		return UpperBoundRaw(u, qB, 0, nil, 0)
	}
	split := sort.SearchInts(e.sorted, sMax+1) // samples[:split] are <= sMax
	fPrime := float64(split) / float64(len(e.sorted))
	qBSPlus := e.meanQPS(base, split, len(e.sorted))
	var vQa []float64
	for i := range e.pool {
		if i == cloud.BaseIndex || cfg[i] == 0 {
			continue
		}
		qa := e.meanQPS(e.pool[i].Name, 0, split)
		vQa = append(vQa, float64(cfg[i])*qa)
	}
	return UpperBoundRaw(u, qB, qBSPlus, vQa, fPrime)
}

// RankedConfig pairs a configuration with its upper bound.
type RankedConfig struct {
	Config     cloud.Config
	UpperBound float64
}

// Rank computes upper bounds for every configuration within the budget and
// returns them sorted by descending bound (ties broken by config key for
// determinism). This is the paper's warmup-phase computation: an
// order-1000-configuration space ranks in well under two seconds (Sec. 5.2).
func (e *Estimator) Rank(budget float64) []RankedConfig {
	configs := e.pool.Enumerate(budget)
	ranked := make([]RankedConfig, len(configs))
	for i, cfg := range configs {
		ranked[i] = RankedConfig{Config: cfg, UpperBound: e.UpperBound(cfg)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].UpperBound != ranked[j].UpperBound {
			return ranked[i].UpperBound > ranked[j].UpperBound
		}
		return ranked[i].Config.Key() < ranked[j].Config.Key()
	})
	return ranked
}
