package core

import (
	"fmt"
	"sort"

	"kairos/internal/cloud"
	"kairos/internal/models"
)

// UpperBoundRaw evaluates Eq. 15 from aggregated quantities:
//
//	u       – number of base instances,
//	qB      – one base instance's QPS over the full query mix,
//	qBSPlus – one base instance's QPS over queries larger than the shared
//	          auxiliary region (the s+ queries),
//	vQa     – per auxiliary type, count times standalone QPS over queries
//	          inside the shared region (v_i * Q_a^i),
//	fPrime  – fraction of queries inside the shared auxiliary region.
//
// The return value is the throughput upper bound QPS_max: no distribution
// policy can exceed it on this hardware (Def. 2).
func UpperBoundRaw(u int, qB, qBSPlus float64, vQa []float64, fPrime float64) float64 {
	sumAux := 0.0
	for _, v := range vQa {
		sumAux += v
	}
	if fPrime <= 0 || sumAux == 0 {
		// No auxiliary coverage: the base instances serve everything.
		return float64(u) * qB
	}
	if fPrime >= 1 {
		// Every query fits the auxiliary region; the offload stream to the
		// base vanishes (C = 0) and the base contributes its full rate.
		return sumAux + float64(u)*qB
	}
	base := float64(u) * qBSPlus
	c := sumAux * (1 - fPrime) / fPrime // Eq. 14
	if base <= c {
		// Base is the bottleneck (Eq. 12).
		return base / (1 - fPrime)
	}
	// Auxiliary is the bottleneck; add the base slack throughput (Eq. 13).
	slack := 0.0
	if base > 0 {
		slack = (base - c) / base * float64(u) * qB
	}
	return sumAux/fPrime + slack
}

// Estimator computes throughput upper bounds for configurations of a pool
// serving one model under an observed workload mix. It needs only the
// latency surface (predicted or ground truth) and a sample of recent batch
// sizes from the query monitor — no online evaluation (Sec. 5.2).
type Estimator struct {
	pool    cloud.Pool
	model   models.Model
	qos     float64
	latency func(instance string, batch int) float64

	sorted []int // ascending batch samples

	// Per-pool-type cached aggregates (lazily built): cutoffs and, per
	// candidate shared region, conditional mean latencies.
	cutoffs []int

	// latTable[i][b] is pool type i's latency at batch b — the latency
	// surface is sample-independent, so the table outlives window swaps.
	// latPrefix[i][k] sums type i's latencies over sorted[:k], rebuilt
	// per window: any conditional mean over a sorted-sample range is then
	// two loads and a divide, so ranking a 100k-configuration space
	// (Fig. 15a's 4x budget) and swapping windows both stay cheap.
	latTable  [][]float64
	latPrefix [][]float64

	// Window-swap and hot-path state: counting-sort buckets reused by
	// Reset, and the per-region aggregates upperBoundInto reads.
	counts   []int
	prepared bool
	qB       float64    // base-type QPS over the whole window
	regions  []ubRegion // one per distinct positive auxiliary cutoff
}

// ubRegion holds Eq. 15's sample-dependent aggregates for one candidate
// shared auxiliary region (one distinct positive aux cutoff): every
// configuration whose allocated auxiliary types share this sMax reuses
// them, so evaluating a configuration costs a handful of multiplies.
type ubRegion struct {
	sMax    int
	fPrime  float64
	qBSPlus float64
	qa      []float64 // standalone region QPS per pool index (0 for base)
}

// EstimatorOptions configure NewEstimator.
type EstimatorOptions struct {
	// Latency overrides the model's ground-truth surface (e.g. with the
	// online predictor's view). Nil uses the model.
	Latency func(instance string, batch int) float64
	// QoS overrides the model's QoS target (Fig. 15b). Zero uses the model.
	QoS float64
}

// NewEstimator builds an estimator from recent batch-size samples (the
// query monitor's snapshot; Sec. 5.2 uses the last ~10000 queries).
func NewEstimator(pool cloud.Pool, model models.Model, samples []int, opts EstimatorOptions) (*Estimator, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: estimator needs batch samples")
	}
	e := &Estimator{
		pool:    pool,
		model:   model,
		qos:     opts.QoS,
		latency: opts.Latency,
	}
	if e.qos == 0 {
		e.qos = model.QoS
	}
	if e.latency == nil {
		e.latency = model.Latency
	}
	e.sorted = make([]int, len(samples))
	copy(e.sorted, samples)
	sort.Ints(e.sorted)
	if e.sorted[0] < 1 || e.sorted[len(e.sorted)-1] > models.MaxBatch {
		return nil, fmt.Errorf("core: batch samples outside [1,%d]", models.MaxBatch)
	}
	e.cutoffs = make([]int, len(pool))
	for i, t := range pool {
		e.cutoffs[i] = e.cutoffBatch(t.Name)
	}
	e.buildWindowSums()
	return e, nil
}

// buildWindowSums (re)derives the latency prefix sums for the current
// window, tabling the latency surface on first use.
func (e *Estimator) buildWindowSums() {
	if e.latTable == nil {
		e.latTable = make([][]float64, len(e.pool))
		for i, t := range e.pool {
			tab := make([]float64, models.MaxBatch+1)
			for b := 1; b <= models.MaxBatch; b++ {
				tab[b] = e.latency(t.Name, b)
			}
			e.latTable[i] = tab
		}
	}
	if e.latPrefix == nil {
		e.latPrefix = make([][]float64, len(e.pool))
	}
	for i := range e.pool {
		if cap(e.latPrefix[i]) < len(e.sorted)+1 {
			e.latPrefix[i] = make([]float64, len(e.sorted)+1)
		}
		pfx := e.latPrefix[i][:len(e.sorted)+1]
		tab := e.latTable[i]
		sum := 0.0
		pfx[0] = 0
		for k, b := range e.sorted {
			sum += tab[b]
			pfx[k+1] = sum
		}
		e.latPrefix[i] = pfx
	}
}

// Reset repoints the estimator at a new batch-size window, keeping every
// sample-independent aggregate (the per-type QoS cutoffs depend only on
// the latency surface and the QoS target). The samples are
// counting-sorted — batch sizes live in [1, models.MaxBatch], so one
// bucket pass replaces the comparison sort and a window swap costs
// microseconds. On error the estimator's window is unchanged.
func (e *Estimator) Reset(samples []int) error {
	if len(samples) == 0 {
		return fmt.Errorf("core: estimator needs batch samples")
	}
	if e.counts == nil {
		e.counts = make([]int, models.MaxBatch+1)
	}
	for _, b := range samples {
		if b < 1 || b > models.MaxBatch {
			clear(e.counts)
			return fmt.Errorf("core: batch samples outside [1,%d]", models.MaxBatch)
		}
		e.counts[b]++
	}
	if cap(e.sorted) < len(samples) {
		e.sorted = make([]int, 0, len(samples))
	}
	e.sorted = e.sorted[:0]
	for b := 1; b <= models.MaxBatch; b++ {
		for n := e.counts[b]; n > 0; n-- {
			e.sorted = append(e.sorted, b)
		}
		e.counts[b] = 0
	}
	e.buildWindowSums()
	e.prepared = false
	return nil
}

// prepare precomputes the per-region aggregates upperBoundInto reads, so
// a frontier rebuild evaluates each candidate configuration in a few
// dozen nanoseconds instead of re-deriving conditional means per call.
func (e *Estimator) prepare() {
	if e.prepared {
		return
	}
	e.qB = e.meanQPS(cloud.BaseIndex, 0, len(e.sorted))
	e.regions = e.regions[:0]
regions:
	for i := range e.pool {
		if i == cloud.BaseIndex || e.cutoffs[i] == 0 {
			continue
		}
		s := e.cutoffs[i]
		for _, r := range e.regions {
			if r.sMax == s {
				continue regions
			}
		}
		split := sort.SearchInts(e.sorted, s+1)
		r := ubRegion{
			sMax:    s,
			fPrime:  float64(split) / float64(len(e.sorted)),
			qBSPlus: e.meanQPS(cloud.BaseIndex, split, len(e.sorted)),
			qa:      make([]float64, len(e.pool)),
		}
		for j := range e.pool {
			if j != cloud.BaseIndex {
				r.qa[j] = e.meanQPS(j, 0, split)
			}
		}
		e.regions = append(e.regions, r)
	}
	e.prepared = true
}

// upperBoundInto is UpperBound on the prepared aggregates with a
// caller-owned vQa scratch buffer — the fleet planner's allocation-free
// hot path. It reads the same memoized conditional means in the same
// order as UpperBound, so the results are bit-identical.
func (e *Estimator) upperBoundInto(cfg cloud.Config, scratch []float64) (float64, []float64) {
	e.prepare()
	u := cfg[cloud.BaseIndex]
	sMax := 0
	for i := range e.pool {
		if i != cloud.BaseIndex && cfg[i] != 0 && e.cutoffs[i] > sMax {
			sMax = e.cutoffs[i]
		}
	}
	if sMax == 0 {
		return UpperBoundRaw(u, e.qB, 0, nil, 0), scratch
	}
	var reg *ubRegion
	for k := range e.regions {
		if e.regions[k].sMax == sMax {
			reg = &e.regions[k]
			break
		}
	}
	scratch = scratch[:0]
	for i := range e.pool {
		if i == cloud.BaseIndex || cfg[i] == 0 {
			continue
		}
		scratch = append(scratch, float64(cfg[i])*reg.qa[i])
	}
	return UpperBoundRaw(u, e.qB, reg.qBSPlus, scratch, reg.fPrime), scratch
}

// cutoffBatch finds the largest batch within QoS on the instance type by
// bisection over the monotone latency curve.
func (e *Estimator) cutoffBatch(instance string) int {
	if e.latency(instance, 1) > e.qos {
		return 0
	}
	lo, hi := 1, models.MaxBatch
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if e.latency(instance, mid) <= e.qos {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Cutoff returns the QoS cutoff batch size s for pool type index i.
func (e *Estimator) Cutoff(i int) int { return e.cutoffs[i] }

// fractionAtMost computes f(s) over the samples.
func (e *Estimator) fractionAtMost(s int) float64 {
	idx := sort.SearchInts(e.sorted, s+1)
	return float64(idx) / float64(len(e.sorted))
}

// meanQPS returns the standalone QPS of one instance of pool type i over
// the sample batches in the half-open index range [lo, hi) of the sorted
// samples: 1000 / mean latency, read off the per-type latency prefix
// sums. Returns 0 for an empty range.
func (e *Estimator) meanQPS(i, lo, hi int) float64 {
	if lo >= hi {
		return 0
	}
	pfx := e.latPrefix[i]
	mean := (pfx[hi] - pfx[lo]) / float64(hi-lo)
	if mean > 0 {
		return 1000 / mean
	}
	return 0
}

// UpperBound computes QPS_max for one configuration (Eq. 15 with the
// shared-region approximation for multiple auxiliary types).
func (e *Estimator) UpperBound(cfg cloud.Config) float64 {
	if len(cfg) != len(e.pool) {
		panic(fmt.Sprintf("core: config %v does not match pool of %d types", cfg, len(e.pool)))
	}
	u := cfg[cloud.BaseIndex]
	// Shared auxiliary region: the maximum cutoff among allocated
	// auxiliary types (the paper's optimistic simplification).
	sMax := 0
	for i := range e.pool {
		if i == cloud.BaseIndex || cfg[i] == 0 {
			continue
		}
		if e.cutoffs[i] > sMax {
			sMax = e.cutoffs[i]
		}
	}
	qB := e.meanQPS(cloud.BaseIndex, 0, len(e.sorted))
	if sMax == 0 {
		return UpperBoundRaw(u, qB, 0, nil, 0)
	}
	split := sort.SearchInts(e.sorted, sMax+1) // samples[:split] are <= sMax
	fPrime := float64(split) / float64(len(e.sorted))
	qBSPlus := e.meanQPS(cloud.BaseIndex, split, len(e.sorted))
	var vQa []float64
	for i := range e.pool {
		if i == cloud.BaseIndex || cfg[i] == 0 {
			continue
		}
		qa := e.meanQPS(i, 0, split)
		vQa = append(vQa, float64(cfg[i])*qa)
	}
	return UpperBoundRaw(u, qB, qBSPlus, vQa, fPrime)
}

// RankedConfig pairs a configuration with its upper bound.
type RankedConfig struct {
	Config     cloud.Config
	UpperBound float64
}

// Rank computes upper bounds for every configuration within the budget and
// returns them sorted by descending bound (ties broken by config key for
// determinism). This is the paper's warmup-phase computation: an
// order-1000-configuration space ranks in well under two seconds (Sec. 5.2).
func (e *Estimator) Rank(budget float64) []RankedConfig {
	configs := e.pool.Enumerate(budget)
	ranked := make([]RankedConfig, len(configs))
	for i, cfg := range configs {
		ranked[i] = RankedConfig{Config: cfg, UpperBound: e.UpperBound(cfg)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].UpperBound != ranked[j].UpperBound {
			return ranked[i].UpperBound > ranked[j].UpperBound
		}
		return ranked[i].Config.Key() < ranked[j].Config.Key()
	})
	return ranked
}
