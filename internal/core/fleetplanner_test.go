package core

import (
	"fmt"
	"math/rand"
	"testing"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/workload"
)

// TestFleetPlannerCapChangeKeepsCachedFrontier pins the fix for the
// capFrontier aliasing bug: the old code clamped ub in place and
// truncated the shared points slice, which was harmless on a frontier
// built fresh per call but would corrupt a cached one the first time a
// demand cap changed between ticks. The planner applies the cap at read
// time, so planning repeatedly with different ArrivalQPS against the
// same cached frontier must match a from-scratch plan every time.
func TestFleetPlannerCapChangeKeepsCachedFrontier(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool()
	m := models.MustByName("NCF")
	const budget = 2.0
	samples := fleetSamples(workload.Uniform{Min: 10, Max: 60}, 1000, 11)

	planner, err := NewFleetPlanner(pool, budget)
	if err != nil {
		t.Fatal(err)
	}
	plan := func(d ModelDemand) FleetPlan {
		t.Helper()
		if err := planner.SetDemands([]ModelDemand{d}); err != nil {
			t.Fatal(err)
		}
		got, err := planner.Plan(budget)
		if err != nil {
			t.Fatal(err)
		}
		want, err := PlanFleet(pool, []ModelDemand{d}, budget)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("cached frontier diverged from scratch: %v vs %v (demand %+v)", got, want, d)
		}
		return got.Clone()
	}

	uncapped := plan(ModelDemand{Model: m, Samples: samples})
	est, err := NewEstimator(pool, m, samples, EstimatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	maxQPS := est.UpperBound(uncapped[m.Name])
	if maxQPS <= 0 {
		t.Fatalf("uncapped plan %v serves nothing", uncapped)
	}

	// A binding cap, a different binding cap, then the cap removed — all
	// against the one cached frontier. The in-place clamp would have
	// frozen the first ceiling into the cache.
	tight := plan(ModelDemand{Model: m, Samples: samples, ArrivalQPS: maxQPS / 10})
	if tight.Cost(pool) >= uncapped.Cost(pool) {
		t.Fatalf("tight cap did not bind: $%.3f vs $%.3f", tight.Cost(pool), uncapped.Cost(pool))
	}
	loose := plan(ModelDemand{Model: m, Samples: samples, ArrivalQPS: maxQPS / 2})
	if loose.Cost(pool) < tight.Cost(pool)-1e-9 {
		t.Fatalf("looser cap bought less: %v vs %v", loose, tight)
	}
	restored := plan(ModelDemand{Model: m, Samples: samples})
	if !restored.Equal(uncapped) {
		t.Fatalf("removing the cap must restore the full-throughput plan: %v vs %v", restored, uncapped)
	}
}

// randomWindow draws a random-size batch window from a random uniform mix.
func randomWindow(rng *rand.Rand) []int {
	lo := 1 + rng.Intn(200)
	dist := workload.Uniform{Min: lo, Max: lo + 1 + rng.Intn(400)}
	out := make([]int, 50+rng.Intn(300))
	for i := range out {
		out[i] = dist.Sample(rng)
	}
	return out
}

// perturbPool returns a standard pool with randomly scaled prices, so
// the property test explores frontiers the hand-written tests never hit.
func perturbPool(rng *rand.Rand) cloud.Pool {
	base := cloud.DefaultPool()
	if rng.Intn(2) == 0 {
		base = cloud.ThreeTypePool()
	}
	pool := make(cloud.Pool, len(base))
	copy(pool, base)
	for i := range pool {
		pool[i].PricePerHour *= 0.7 + 0.6*rng.Float64()
	}
	return pool
}

func randomDemands(rng *rand.Rand, k int) []ModelDemand {
	cat := models.Catalog()
	out := make([]ModelDemand, k)
	for i := range out {
		out[i] = ModelDemand{
			Model:   twin(cat[rng.Intn(len(cat))], fmt.Sprintf("m%02d", i)),
			Samples: randomWindow(rng),
		}
		if rng.Intn(2) == 0 {
			out[i].ArrivalQPS = rng.Float64() * 200
			if rng.Intn(2) == 0 {
				out[i].Headroom = rng.Float64()
			}
		}
	}
	return out
}

// TestFleetPlannerMatchesFromScratch is the oracle that makes the cache
// trustworthy: across randomized pools, demand sets, budgets, and
// sequences of window/cap/demand-set mutations, the incremental
// planner's result must stay Equal to a from-scratch PlanFleet over the
// same inputs after every mutation.
func TestFleetPlannerMatchesFromScratch(t *testing.T) {
	t.Parallel()
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed)))
			pool := perturbPool(rng)
			budget := 0.3 + 1.7*rng.Float64()
			planner, err := NewFleetPlanner(pool, budget)
			if err != nil {
				t.Fatal(err)
			}
			verify := func(step string, cur []ModelDemand, got FleetPlan, b float64) {
				t.Helper()
				want, err := PlanFleet(pool, cur, b)
				if err != nil {
					t.Fatalf("%s: from-scratch: %v", step, err)
				}
				if !got.Equal(want) {
					t.Fatalf("%s: incremental %v != from-scratch %v (budget %v)", step, got, want, b)
				}
			}

			demands := randomDemands(rng, 2+rng.Intn(4))
			if err := planner.SetDemands(demands); err != nil {
				t.Fatal(err)
			}
			got, err := planner.Plan(budget)
			if err != nil {
				t.Fatal(err)
			}
			verify("initial", demands, got, budget)

			for step := 0; step < 10; step++ {
				name := fmt.Sprintf("step%d", step)
				b := budget
				if rng.Intn(3) == 0 {
					b = budget * (0.1 + 0.9*rng.Float64()) // scale-in replans shrink the budget
				}
				switch rng.Intn(5) {
				case 0: // one window moves: the single-model replan slice
					i := rng.Intn(len(demands))
					demands[i].Samples = randomWindow(rng)
					got, err = planner.ReplanModel(demands[i], b)
				case 1: // caps change only; every frontier stays cached
					i := rng.Intn(len(demands))
					demands[i].ArrivalQPS = rng.Float64() * 200
					demands[i].Headroom = rng.Float64()
					if err = planner.SetDemands(demands); err == nil {
						got, err = planner.Plan(b)
					}
				case 2: // several windows move at once
					for i := range demands {
						if rng.Intn(2) == 0 {
							demands[i].Samples = randomWindow(rng)
						}
					}
					if err = planner.SetDemands(demands); err == nil {
						got, err = planner.Plan(b)
					}
				case 3: // nothing moved: the pure cache-hit steady path
					if err = planner.SetDemands(demands); err == nil {
						got, err = planner.Plan(b)
					}
				case 4: // shrink the active set, then restore it
					if len(demands) > 1 {
						sub := demands[:1+rng.Intn(len(demands)-1)]
						if err := planner.SetDemands(sub); err != nil {
							t.Fatal(err)
						}
						subGot, err := planner.Plan(b)
						if err != nil {
							t.Fatal(err)
						}
						verify(name+"/subset", sub, subGot, b)
					}
					if err = planner.SetDemands(demands); err == nil {
						got, err = planner.Plan(b)
					}
				}
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				verify(name, demands, got, b)
			}
		})
	}
}

// TestUpperBoundIntoMatchesUpperBound: the planner's prepared-aggregate
// fast path must be bit-identical to the reference UpperBound over the
// whole candidate space, before and after a window Reset.
func TestUpperBoundIntoMatchesUpperBound(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool()
	m := models.MustByName("RM2")
	est, err := NewEstimator(pool, m, fleetSamples(workload.Uniform{Min: 10, Max: 120}, 500, 13), EstimatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var scratch []float64
	check := func() {
		t.Helper()
		for _, cfg := range pool.Enumerate(1.5) {
			var fast float64
			fast, scratch = est.upperBoundInto(cfg, scratch)
			if want := est.UpperBound(cfg); fast != want {
				t.Fatalf("upperBoundInto(%v) = %v, UpperBound = %v", cfg, fast, want)
			}
		}
	}
	check()
	if err := est.Reset(fleetSamples(workload.Uniform{Min: 200, Max: 600}, 800, 14)); err != nil {
		t.Fatal(err)
	}
	check()
}

// TestEstimatorResetMatchesFresh: a Reset estimator must be
// indistinguishable from one built fresh over the new window.
func TestEstimatorResetMatchesFresh(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool()
	m := models.MustByName("NCF")
	est, err := NewEstimator(pool, m, fleetSamples(workload.Uniform{Min: 10, Max: 60}, 400, 15), EstimatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	next := fleetSamples(workload.Uniform{Min: 100, Max: 900}, 700, 16)
	if err := est.Reset(next); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewEstimator(pool, m, next, EstimatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range pool.Enumerate(1.2) {
		if got, want := est.UpperBound(cfg), fresh.UpperBound(cfg); got != want {
			t.Fatalf("reset UpperBound(%v) = %v, fresh = %v", cfg, got, want)
		}
	}
	if err := est.Reset(nil); err == nil {
		t.Fatal("Reset(nil) must fail")
	}
	if err := est.Reset([]int{0}); err == nil {
		t.Fatal("Reset with out-of-range batch must fail")
	}
	// A failed Reset leaves the previous window in force.
	if got, want := est.UpperBound(cloud.Config{1, 0, 0, 0}), fresh.UpperBound(cloud.Config{1, 0, 0, 0}); got != want {
		t.Fatalf("failed Reset corrupted the window: %v vs %v", got, want)
	}
}
