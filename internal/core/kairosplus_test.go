package core

import (
	"testing"

	"kairos/internal/cloud"
)

// syntheticEval builds an EvalFunc over a fixed table, counting calls.
func syntheticEval(table map[string]float64) (EvalFunc, *int) {
	calls := 0
	return func(c cloud.Config) float64 {
		calls++
		return table[c.Key()]
	}, &calls
}

func TestKairosPlusFindsArgmaxWithTightBounds(t *testing.T) {
	// Bounds equal to the truth: the first evaluation is the optimum and
	// every other configuration prunes immediately.
	ranked := []RankedConfig{
		rc(100, 3, 1, 3),
		rc(90, 2, 0, 9),
		rc(80, 4, 0, 0),
	}
	eval, calls := syntheticEval(map[string]float64{
		"(3,1,3)": 100, "(2,0,9)": 90, "(4,0,0)": 80,
	})
	res := KairosPlus(ranked, eval)
	if !res.Best.Equal(cloud.Config{3, 1, 3}) || res.BestQPS != 100 {
		t.Fatalf("best = %v @ %v", res.Best, res.BestQPS)
	}
	if *calls != 1 || res.Evaluations != 1 {
		t.Fatalf("evaluations = %d, want 1 (UB filter prunes the rest)", res.Evaluations)
	}
}

func TestKairosPlusLooseBoundsNeedMoreEvals(t *testing.T) {
	// The top bound is loose (actual much lower), so the search must keep
	// going until the UB filter closes.
	ranked := []RankedConfig{
		rc(100, 1, 0, 9), // loose: actual 40
		rc(95, 3, 1, 3),  // actual 90
		rc(85, 2, 0, 9),  // UB 85 <= 90: pruned after (3,1,3) evaluates
		rc(80, 4, 0, 0),
	}
	eval, calls := syntheticEval(map[string]float64{
		"(1,0,9)": 40, "(3,1,3)": 90, "(2,0,9)": 70, "(4,0,0)": 60,
	})
	res := KairosPlus(ranked, eval)
	if !res.Best.Equal(cloud.Config{3, 1, 3}) || res.BestQPS != 90 {
		t.Fatalf("best = %v @ %v", res.Best, res.BestQPS)
	}
	if *calls != 2 {
		t.Fatalf("evaluations = %d, want 2", *calls)
	}
	if len(res.History) != 2 || res.History[0].QPS != 40 || res.History[1].QPS != 90 {
		t.Fatalf("history = %v", res.History)
	}
}

func TestKairosPlusSubConfigPruning(t *testing.T) {
	// (2,1,3) is a sub-configuration of the already-evaluated (3,1,3); it
	// must be pruned without evaluation even though its UB is high.
	ranked := []RankedConfig{
		rc(100, 3, 1, 3), // actual 50 (loose bound keeps the search alive)
		rc(99, 2, 1, 3),  // sub-config of the evaluated (3,1,3): pruned
		rc(98, 2, 0, 9),  // actual 60: evaluated, becomes best
		rc(55, 4, 0, 0),  // UB below best: never evaluated
	}
	eval, calls := syntheticEval(map[string]float64{
		"(3,1,3)": 50, "(2,1,3)": 45, "(2,0,9)": 60, "(4,0,0)": 52,
	})
	res := KairosPlus(ranked, eval)
	if *calls != 2 {
		t.Fatalf("evaluations = %d, want 2 (sub-config and UB pruning)", *calls)
	}
	if !res.Best.Equal(cloud.Config{2, 0, 9}) {
		t.Fatalf("best = %v", res.Best)
	}
	for _, h := range res.History {
		if h.Config.Equal(cloud.Config{2, 1, 3}) {
			t.Fatal("pruned sub-configuration was evaluated")
		}
	}
}

func TestKairosPlusEmptyRanking(t *testing.T) {
	res := KairosPlus(nil, func(cloud.Config) float64 { return 0 })
	if res.Evaluations != 0 || res.Best != nil {
		t.Fatalf("res = %+v", res)
	}
}

// TestKairosPlusNeverWorseThanOneShot: Kairos+ evaluates the actual
// throughput, so its final choice can only match or beat the value of any
// single configuration it saw, including Kairos's one-shot pick when that
// pick is in the ranking.
func TestKairosPlusNeverWorseThanEvaluatedConfigs(t *testing.T) {
	e := newRM2Estimator(t)
	ranked := e.Rank(2.5)[:20]
	eval, _ := syntheticEval(nil)
	_ = eval
	// Synthetic truth: monotone transform of UB with dips, so argmax is
	// known to be the config with highest synthetic value among evaluated.
	truth := func(c cloud.Config) float64 {
		v := 0.0
		for i, n := range c {
			v += float64((i+1)*n) * 3.7
		}
		return v
	}
	res := KairosPlus(ranked, truth)
	for _, h := range res.History {
		if h.QPS > res.BestQPS {
			t.Fatalf("best %v below an evaluated config %v", res.BestQPS, h.QPS)
		}
	}
	if res.Evaluations != len(res.History) {
		t.Fatal("evaluation count mismatch")
	}
}
