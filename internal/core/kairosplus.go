package core

import (
	"kairos/internal/cloud"
)

// EvalFunc measures the actual allowable throughput of a configuration
// (an expensive online evaluation in the paper: allocate instances, ramp
// load, watch the tail).
type EvalFunc func(cloud.Config) float64

// EvalRecord is one online evaluation performed by a search.
type EvalRecord struct {
	Config cloud.Config
	QPS    float64
}

// PlusResult reports a Kairos+ run.
type PlusResult struct {
	// Best is the highest-throughput configuration found.
	Best cloud.Config
	// BestQPS is its measured throughput.
	BestQPS float64
	// Evaluations is the number of online evaluations spent.
	Evaluations int
	// History lists evaluations in order (Fig. 12's transient trace).
	History []EvalRecord
}

// KairosPlus runs Algorithm 1: walk configurations in descending
// upper-bound order, evaluate survivors, and prune (a) every configuration
// whose upper bound cannot beat the best measured throughput and (b) every
// sub-configuration of an evaluated configuration (adding instances never
// lowers throughput, so a sub-configuration cannot beat its evaluated
// super-configuration).
func KairosPlus(ranked []RankedConfig, eval EvalFunc) PlusResult {
	res := PlusResult{}
	alive := make(map[string]bool, len(ranked))
	for _, rc := range ranked {
		alive[rc.Config.Key()] = true
	}
	var evaluated []cloud.Config
	for _, rc := range ranked {
		if !alive[rc.Config.Key()] {
			continue
		}
		// The ranking is sorted: once the bound cannot beat the best
		// measured value, nothing later can either.
		if res.Evaluations > 0 && rc.UpperBound <= res.BestQPS {
			break
		}
		// Sub-configuration pruning against everything already evaluated.
		pruned := false
		for _, ev := range evaluated {
			if rc.Config.IsSubConfigOf(ev) {
				pruned = true
				break
			}
		}
		if pruned {
			alive[rc.Config.Key()] = false
			continue
		}
		qps := eval(rc.Config)
		res.Evaluations++
		res.History = append(res.History, EvalRecord{Config: rc.Config, QPS: qps})
		alive[rc.Config.Key()] = false
		evaluated = append(evaluated, rc.Config)
		if qps > res.BestQPS || res.Best == nil {
			res.BestQPS = qps
			res.Best = rc.Config
		}
	}
	return res
}
