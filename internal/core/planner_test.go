package core

import (
	"testing"

	"kairos/internal/cloud"
)

func rc(ub float64, counts ...int) RankedConfig {
	return RankedConfig{Config: cloud.Config(counts), UpperBound: ub}
}

func TestSelectOneShotEmptyAndTiny(t *testing.T) {
	if got := SelectOneShot(nil); got != nil {
		t.Fatalf("empty ranking pick = %v", got)
	}
	one := []RankedConfig{rc(10, 1, 0, 0)}
	if got := SelectOneShot(one); !got.Equal(cloud.Config{1, 0, 0}) {
		t.Fatalf("singleton pick = %v", got)
	}
	two := []RankedConfig{rc(10, 1, 0, 0), rc(9, 2, 0, 0)}
	if got := SelectOneShot(two); !got.Equal(cloud.Config{1, 0, 0}) {
		t.Fatalf("pair pick = %v", got)
	}
}

// TestSelectOneShotTop3Agreement: when the top-3 bounds share the base
// count, the highest bound wins outright (Sec. 5.2).
func TestSelectOneShotTop3Agreement(t *testing.T) {
	ranked := []RankedConfig{
		rc(100, 3, 1, 3),
		rc(99, 3, 0, 5),
		rc(98, 3, 2, 0),
		rc(97, 1, 4, 4), // ignored: decision made by top-3
	}
	if got := SelectOneShot(ranked); !got.Equal(cloud.Config{3, 1, 3}) {
		t.Fatalf("pick = %v, want (3,1,3)", got)
	}
}

// TestSelectOneShotCentroid: with disagreeing base counts the SSE centroid
// of the top-10 is chosen, not the top-1.
func TestSelectOneShotCentroid(t *testing.T) {
	// Nine configs clustered around (3,1,3) plus an outlier top-1 at
	// (1,0,9): the centroid member must win.
	ranked := []RankedConfig{
		rc(101, 1, 0, 9), // outlier with the highest bound
		rc(100, 3, 1, 3),
		rc(99, 3, 1, 4),
		rc(98, 3, 2, 3),
		rc(97, 2, 1, 3),
		rc(96, 3, 1, 2),
		rc(95, 4, 1, 3),
		rc(94, 3, 0, 3),
		rc(93, 3, 2, 4),
		rc(92, 2, 2, 3),
	}
	got := SelectOneShot(ranked)
	if got.Equal(cloud.Config{1, 0, 9}) {
		t.Fatalf("outlier selected despite similarity criterion")
	}
	// The pick must land inside the dense region around (3,1,3).
	if got.SquaredDistance(cloud.Config{3, 1, 3}) > 2 {
		t.Fatalf("pick = %v, too far from the cluster around (3,1,3)", got)
	}
}

func TestSelectOneShotDeterministicTieBreak(t *testing.T) {
	ranked := []RankedConfig{
		rc(100, 2, 0, 0),
		rc(99, 1, 1, 0),
		rc(98, 3, 0, 1),
		rc(97, 2, 1, 1),
	}
	a := SelectOneShot(ranked)
	b := SelectOneShot(ranked)
	if !a.Equal(b) {
		t.Fatal("selection not deterministic")
	}
}

func TestSelectOneShotCosineDiffersFromEuclidean(t *testing.T) {
	// Cosine similarity ignores magnitude: (1,1,1) and (4,4,4) are
	// identical directions. Construct a ranking where the cosine pick
	// differs from the SSE pick, demonstrating why the paper rejects it.
	ranked := []RankedConfig{
		rc(100, 4, 4, 4), // same direction as the small outliers
		rc(99, 1, 1, 1),
		rc(98, 2, 2, 2),
		rc(97, 3, 1, 3),
		rc(96, 3, 1, 4),
		rc(95, 3, 2, 3),
		rc(94, 3, 1, 2),
		rc(93, 4, 1, 3),
		rc(92, 2, 1, 3),
		rc(91, 3, 2, 4),
	}
	euclid := SelectOneShot(ranked)
	cos := SelectOneShotCosine(ranked)
	if euclid.Equal(cos) {
		t.Skipf("metrics agreed on this ranking: %v", euclid)
	}
}

func TestSelectOneShotCosineBasics(t *testing.T) {
	if got := SelectOneShotCosine(nil); got != nil {
		t.Fatal("empty ranking")
	}
	ranked := []RankedConfig{
		rc(100, 3, 1, 3),
		rc(99, 3, 0, 5),
		rc(98, 3, 2, 0),
	}
	if got := SelectOneShotCosine(ranked); !got.Equal(cloud.Config{3, 1, 3}) {
		t.Fatalf("top-3 agreement shortcut broken: %v", got)
	}
}

// TestPlanPicksNearOptimalForAllModels is the Fig. 13 property: Kairos's
// one-shot pick must be close to the upper-bound-optimal configuration —
// specifically within the top-10 bounds — for every catalog model.
func TestPlanPicksNearOptimal(t *testing.T) {
	e := newRM2Estimator(t)
	ranked := e.Rank(2.5)
	pick := e.Plan(2.5)
	if pick == nil {
		t.Fatal("no pick")
	}
	found := false
	for _, rcfg := range ranked[:10] {
		if rcfg.Config.Equal(pick) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("pick %v not among the top-10 upper bounds", pick)
	}
	if pick.Base() == 0 {
		t.Fatalf("pick %v has no base instances", pick)
	}
}
