package core

import (
	"math"
	"testing"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/predictor"
	"kairos/internal/sim"
	"kairos/internal/workload"
)

func kairosFor(m models.Model, pool cloud.Pool) *Distributor {
	return NewDistributor(DistributorOptions{
		QoS:      m.QoS,
		BaseType: pool.Base().Name,
		Predictor: predictor.Warmed(m.Latency,
			instanceNames(pool), []int{1, 500, models.MaxBatch}),
	})
}

func instanceNames(pool cloud.Pool) []string {
	out := make([]string, len(pool))
	for i, t := range pool {
		out[i] = t.Name
	}
	return out
}

func TestNewDistributorValidation(t *testing.T) {
	cases := []DistributorOptions{
		{QoS: 0, BaseType: "x"},
		{QoS: 10, BaseType: ""},
		{QoS: 10, BaseType: "x", Xi: 1.5},
		{QoS: 10, BaseType: "x", Xi: -0.1},
		{QoS: 10, BaseType: "x", PenaltyFactor: 0.5},
	}
	for i, opts := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			NewDistributor(opts)
		}()
	}
}

func TestDistributorDefaults(t *testing.T) {
	d := NewDistributor(DistributorOptions{QoS: 100, BaseType: "g4dn.xlarge"})
	if d.Name() != "KAIROS" {
		t.Fatalf("name = %s", d.Name())
	}
	if d.opts.Xi != DefaultXi || d.opts.PenaltyFactor != DefaultPenaltyFactor {
		t.Fatalf("defaults not applied: %+v", d.opts)
	}
	if d.Predictor() == nil {
		t.Fatal("nil predictor")
	}
}

// TestCoefficientsMatchDefinition1 checks the worked example under Def. 1:
// largest-query latencies 100/200/500ms yield C = 1, 0.5, 0.2.
func TestCoefficientsMatchDefinition1(t *testing.T) {
	p := predictor.NewOnline()
	p.Observe("I1", models.MaxBatch, 100)
	p.Observe("I2", models.MaxBatch, 200)
	p.Observe("I3", models.MaxBatch, 500)
	d := NewDistributor(DistributorOptions{QoS: 100, BaseType: "I1", Predictor: p})
	cases := map[string]float64{"I1": 1, "I2": 0.5, "I3": 0.2}
	for inst, want := range cases {
		if got := d.Coefficient(inst); math.Abs(got-want) > 1e-9 {
			t.Errorf("C[%s] = %v, want %v", inst, got, want)
		}
	}
}

func TestCoefficientBoundsAndFallbacks(t *testing.T) {
	p := predictor.NewOnline()
	d := NewDistributor(DistributorOptions{QoS: 100, BaseType: "base", Predictor: p})
	// No data: neutral coefficient.
	if got := d.Coefficient("aux"); got != 1 {
		t.Fatalf("cold coefficient = %v, want 1", got)
	}
	// An auxiliary faster than base at max batch clamps to 1 (Def. 1's
	// codomain is (0,1]).
	p.Observe("base", models.MaxBatch, 200)
	p.Observe("aux", models.MaxBatch, 100)
	if got := d.Coefficient("aux"); got != 1 {
		t.Fatalf("clamped coefficient = %v, want 1", got)
	}
	// Disabled coefficients are always 1.
	d2 := NewDistributor(DistributorOptions{QoS: 100, BaseType: "base", Predictor: p, DisableCoefficients: true})
	p.Observe("slow", models.MaxBatch, 1000)
	if got := d2.Coefficient("slow"); got != 1 {
		t.Fatalf("disabled coefficient = %v, want 1", got)
	}
}

// TestAssignPrefersSpeedupAwarePlacement reproduces the essence of Fig. 5:
// with one large and one small query waiting and a GPU + CPU both idle,
// Kairos must put the large query (high CPU->GPU speedup) on the GPU and
// the small one on the CPU.
func TestAssignPrefersSpeedupAwarePlacement(t *testing.T) {
	pool := cloud.ThreeTypePool()
	m := models.MustByName("RM2")
	d := kairosFor(m, pool)
	waiting := []sim.QueryView{
		{Index: 0, Batch: 900}, // large
		{Index: 1, Batch: 20},  // small
	}
	instances := []sim.InstanceView{
		{Index: 0, TypeName: "g4dn.xlarge"},
		{Index: 1, TypeName: "r5n.large"},
	}
	got := d.Assign(0, waiting, instances)
	if len(got) != 2 {
		t.Fatalf("assignments = %v", got)
	}
	placed := map[int]int{}
	for _, a := range got {
		placed[a.Query] = a.Instance
	}
	if placed[0] != 0 || placed[1] != 1 {
		t.Fatalf("large query must take the GPU, small the CPU: %v", placed)
	}
}

// TestAssignAvoidsQoSViolatingPlacement: a batch too large for the CPU's
// QoS region must not be placed there while the GPU remains feasible. With
// the GPU about to free (within the late-bind slack) it is matched there;
// while the GPU is further out, the query is held rather than violating on
// the idle CPU.
func TestAssignAvoidsQoSViolatingPlacement(t *testing.T) {
	pool := cloud.ThreeTypePool()
	m := models.MustByName("RM2")
	d := kairosFor(m, pool)
	waiting := []sim.QueryView{{Index: 0, Batch: 800}} // r5n: 50+624 >> 343
	nearlyFree := []sim.InstanceView{
		{Index: 0, TypeName: "g4dn.xlarge", RemainingMS: 8}, // within slack, feasible
		{Index: 1, TypeName: "r5n.large"},                   // idle but infeasible
	}
	got := d.Assign(0, waiting, nearlyFree)
	if len(got) != 1 || got[0].Instance != 0 {
		t.Fatalf("assignments = %v, want GPU despite finishing work", got)
	}
	farOut := []sim.InstanceView{
		{Index: 0, TypeName: "g4dn.xlarge", RemainingMS: 100}, // beyond slack
		{Index: 1, TypeName: "r5n.large"},
	}
	got = d.Assign(0, waiting, farOut)
	if len(got) != 0 {
		t.Fatalf("assignments = %v, want hold for the GPU (not violate on CPU)", got)
	}
}

// TestAssignRespectsWaitTime: accumulated queue wait W_i tightens Eq. 5 —
// a query that already waited most of its budget must not be matched to a
// slow placement.
func TestAssignRespectsWaitTime(t *testing.T) {
	pool := cloud.ThreeTypePool()
	m := models.MustByName("RM2") // QoS 350
	d := kairosFor(m, pool)
	// r5n latency for batch 200 is 9+270 = 279ms. Fresh query: feasible.
	fresh := d.Assign(0,
		[]sim.QueryView{{Index: 0, Batch: 200, WaitMS: 0}},
		[]sim.InstanceView{{Index: 0, TypeName: "r5n.large"}})
	if len(fresh) != 1 {
		t.Fatalf("fresh query should be assigned: %v", fresh)
	}
	// After waiting 100ms, 279+100 > 0.98*350 = 343: penalized everywhere,
	// but the matching still dispatches it (penalty, not exclusion) since
	// there is capacity — min-cost just cannot find a feasible spot.
	stale := d.Assign(0,
		[]sim.QueryView{{Index: 0, Batch: 200, WaitMS: 100}},
		[]sim.InstanceView{{Index: 0, TypeName: "r5n.large"}})
	if len(stale) != 1 {
		t.Fatalf("stale query must still be dispatched: %v", stale)
	}
}

func TestAssignSkipsInstancesWithPendingWork(t *testing.T) {
	pool := cloud.ThreeTypePool()
	m := models.MustByName("RM2")
	d := kairosFor(m, pool)
	waiting := []sim.QueryView{{Index: 0, Batch: 10}}
	instances := []sim.InstanceView{
		{Index: 0, TypeName: "g4dn.xlarge", QueuedBatches: []int{50}}, // slot full
	}
	if got := d.Assign(0, waiting, instances); got != nil {
		t.Fatalf("assigned to an instance with a pending query: %v", got)
	}
}

func TestAssignMoreQueriesThanInstances(t *testing.T) {
	pool := cloud.ThreeTypePool()
	m := models.MustByName("RM2")
	d := kairosFor(m, pool)
	waiting := make([]sim.QueryView, 5)
	for i := range waiting {
		waiting[i] = sim.QueryView{Index: i, Batch: 50 + 100*i}
	}
	instances := []sim.InstanceView{
		{Index: 0, TypeName: "g4dn.xlarge"},
		{Index: 1, TypeName: "c5n.2xlarge"},
	}
	got := d.Assign(0, waiting, instances)
	if len(got) != 2 {
		t.Fatalf("matched %d pairs, want min(m,n)=2 (Eq. 7)", len(got))
	}
	seenQ := map[int]bool{}
	seenI := map[int]bool{}
	for _, a := range got {
		if seenQ[a.Query] || seenI[a.Instance] {
			t.Fatalf("one-to-one mapping violated: %v", got)
		}
		seenQ[a.Query] = true
		seenI[a.Instance] = true
	}
}

func TestObserveFeedsMonitorAndPredictor(t *testing.T) {
	mon := workload.NewMonitor(100)
	d := NewDistributor(DistributorOptions{QoS: 100, BaseType: "b", Monitor: mon})
	d.Observe("b", 42, 13.5)
	if mon.Count() != 1 {
		t.Fatal("monitor not fed")
	}
	if got := d.Predictor().Predict("b", 42); got != 13.5 {
		t.Fatalf("predictor not fed: %v", got)
	}
}

// TestKairosBeatsFCFSInSimulation is the end-to-end sanity check of the
// mechanism: on a heterogeneous pool under the default mix, Kairos's
// allowable throughput must beat naive FCFS (Fig. 5's 33% story).
func TestKairosBeatsFCFSInSimulation(t *testing.T) {
	t.Parallel()
	pool := cloud.ThreeTypePool()
	m := models.MustByName("RM2")
	spec := sim.ClusterSpec{Pool: pool, Config: cloud.Config{2, 1, 3}, Model: m}
	opts := sim.FindOptions{DurationMS: 30000, Seed: 30, PrecisionFrac: 0.05}
	kairosQPS := sim.FindAllowableThroughput(spec, func() sim.Distributor {
		return kairosFor(m, pool)
	}, opts)
	fcfsQPS := sim.FindAllowableThroughput(spec, sim.Static(sim.FCFSAny{}), opts)
	if kairosQPS <= fcfsQPS {
		t.Fatalf("Kairos %v QPS must beat FCFS %v QPS", kairosQPS, fcfsQPS)
	}
}

// TestKairosLearnsOnlineFromColdStart runs Kairos with a cold predictor:
// after the warmup window its measured performance must approach the
// warmed predictor variant (the paper's "includes this overhead" remark).
func TestKairosLearnsOnlineFromColdStart(t *testing.T) {
	t.Parallel()
	pool := cloud.ThreeTypePool()
	m := models.MustByName("RM2")
	spec := sim.ClusterSpec{Pool: pool, Config: cloud.Config{2, 1, 3}, Model: m}
	rate := 30.0
	cold := sim.Run(spec, NewDistributor(DistributorOptions{QoS: m.QoS, BaseType: pool.Base().Name}),
		sim.Options{RatePerSec: rate, DurationMS: 60000, WarmupMS: 20000, Seed: 31})
	warm := sim.Run(spec, kairosFor(m, pool),
		sim.Options{RatePerSec: rate, DurationMS: 60000, WarmupMS: 20000, Seed: 31})
	if !warm.MeetsQoS {
		t.Fatalf("warmed Kairos violates QoS at %v QPS: %+v", rate, warm.Measured)
	}
	if !cold.MeetsQoS {
		t.Fatalf("cold-start Kairos did not converge: p99=%v vs QoS %v", cold.P99, m.QoS)
	}
}
