package core

import (
	"math"

	"kairos/internal/cloud"
)

// SelectOneShot applies Kairos's similarity-based configuration pick
// (Sec. 5.2) to an upper-bound ranking: if the top-3 bounds agree on the
// base instance count, take the highest bound outright; otherwise take the
// SSE centroid of the top-10 — the configuration minimizing the sum of
// squared Euclidean distances to the other nine — landing in the dense
// region of high-throughput configurations.
func SelectOneShot(ranked []RankedConfig) cloud.Config {
	if len(ranked) == 0 {
		return nil
	}
	if len(ranked) >= 3 {
		b := ranked[0].Config.Base()
		if ranked[1].Config.Base() == b && ranked[2].Config.Base() == b {
			return ranked[0].Config
		}
	} else {
		return ranked[0].Config
	}
	top := ranked
	if len(top) > 10 {
		top = top[:10]
	}
	bestIdx := 0
	bestSum := sseTo(top, 0)
	for i := 1; i < len(top); i++ {
		if s := sseTo(top, i); s < bestSum {
			bestSum = s
			bestIdx = i
		}
	}
	return top[bestIdx].Config
}

// sseTo sums squared distances from top[i] to every other candidate.
func sseTo(top []RankedConfig, i int) float64 {
	sum := 0.0
	for j := range top {
		if j == i {
			continue
		}
		sum += top[i].Config.SquaredDistance(top[j].Config)
	}
	return sum
}

// SelectOneShotCosine is the ablation variant the paper rejects (Sec. 5.2:
// "other metrics such as cosine similarity do not reflect the locality of
// the promising region"): it picks the top-10 candidate with the highest
// summed cosine similarity to the others.
func SelectOneShotCosine(ranked []RankedConfig) cloud.Config {
	if len(ranked) == 0 {
		return nil
	}
	if len(ranked) >= 3 {
		b := ranked[0].Config.Base()
		if ranked[1].Config.Base() == b && ranked[2].Config.Base() == b {
			return ranked[0].Config
		}
	} else {
		return ranked[0].Config
	}
	top := ranked
	if len(top) > 10 {
		top = top[:10]
	}
	bestIdx, bestSum := 0, -1.0
	for i := range top {
		sum := 0.0
		for j := range top {
			if j != i {
				sum += cosine(top[i].Config, top[j].Config)
			}
		}
		if sum > bestSum {
			bestSum = sum
			bestIdx = i
		}
	}
	return top[bestIdx].Config
}

func cosine(a, b cloud.Config) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i] * b[i])
		na += float64(a[i] * a[i])
		nb += float64(b[i] * b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Plan is the full one-shot planning pipeline: rank the budgeted space by
// upper bound, then select with the similarity criterion. It performs no
// online evaluation (the headline property of Sec. 5.2).
func (e *Estimator) Plan(budget float64) cloud.Config {
	return SelectOneShot(e.Rank(budget))
}
