package core

import (
	"math/rand"
	"testing"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/predictor"
	"kairos/internal/sim"
	"kairos/internal/workload"
)

// benchViews builds a reproducible scheduling round: q waiting queries of
// the trace mix against a heterogeneous fleet of n instances.
func benchViews(q, n int, seed int64) ([]sim.QueryView, []sim.InstanceView) {
	rng := rand.New(rand.NewSource(seed))
	mix := workload.DefaultTrace()
	pool := cloud.DefaultPool()
	queries := make([]sim.QueryView, q)
	for i := range queries {
		queries[i] = sim.QueryView{Index: i, ID: i, Batch: mix.Sample(rng), WaitMS: rng.Float64() * 5}
	}
	instances := make([]sim.InstanceView, n)
	for i := range instances {
		instances[i] = sim.InstanceView{Index: i, TypeName: pool[i%len(pool)].Name}
	}
	return queries, instances
}

// benchDistributor is the warmed paper policy the live controller runs.
func benchDistributor() *Distributor {
	m := models.MustByName("RM2")
	pool := cloud.DefaultPool()
	names := make([]string, len(pool))
	for i, t := range pool {
		names[i] = t.Name
	}
	return NewDistributor(DistributorOptions{
		QoS:       m.QoS,
		BaseType:  pool.Base().Name,
		Predictor: predictor.Warmed(m.Latency, names, []int{1, 250, 500, 750, 1000}),
	})
}

// The matching distributor's Assign is the serving hot path: the central
// controller runs it on every scheduling round. These benchmarks feed the
// CI perf-tracking job (BENCH_micro.json).

func benchAssign(b *testing.B, q, n int) {
	d := benchDistributor()
	queries, instances := benchViews(q, n, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Assign(float64(i), queries, instances)
	}
}

func BenchmarkDistributorAssign8x4(b *testing.B)   { benchAssign(b, 8, 4) }
func BenchmarkDistributorAssign32x8(b *testing.B)  { benchAssign(b, 32, 8) }
func BenchmarkDistributorAssign64x16(b *testing.B) { benchAssign(b, 64, 16) }

// BenchmarkPlanFleet tracks the shared-budget allocator: frontier
// construction plus the greedy split for two models under the paper's
// default budget.
func BenchmarkPlanFleet(b *testing.B) {
	pool := cloud.DefaultPool()
	rng := rand.New(rand.NewSource(42))
	mix := workload.DefaultTrace()
	samples := make([]int, 2000)
	for i := range samples {
		samples[i] = mix.Sample(rng)
	}
	demands := []ModelDemand{
		{Model: models.MustByName("RM2"), Samples: samples},
		{Model: models.MustByName("NCF"), Samples: samples},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanFleet(pool, demands, 2.5); err != nil {
			b.Fatal(err)
		}
	}
}
