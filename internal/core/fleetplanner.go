package core

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"kairos/internal/cloud"
	"kairos/internal/models"
)

const costEps = 1e-9

// frontierPoint is one step on a model's cost/throughput efficient
// frontier: the cheapest configuration achieving its upper bound.
type frontierPoint struct {
	cfg  cloud.Config
	cost float64
	ub   float64
	// od is the configuration's upper bound with every spot count zeroed
	// — the throughput that survives a simultaneous revocation of all
	// spot capacity. It depends only on the samples and the pool (never
	// on demand), so it is cached with the frontier; the read-time
	// on-demand floor filters on it. Spot-free pools (and spot-free
	// configurations) have od == ub.
	od float64
}

// enumEntry is one candidate configuration with its price. The
// enumeration depends only on the pool and the budget — never on the
// model — so one cost-sorted copy is shared by every model's frontier
// rebuild instead of re-enumerating and re-sorting per model.
type enumEntry struct {
	cfg  cloud.Config
	cost float64
}

// ladder is one model's cached Pareto frontier plus the greedy
// allocator's per-plan working state. pts is owned by the planner and
// never mutated by a plan: the demand cap, the on-demand floor, and the
// plan budget are applied as read-time views (capUB clamp, floor filter,
// n prefix), so a cap or floor change between ticks cannot corrupt the
// cached frontier.
type ladder struct {
	name   string
	demand ModelDemand
	est    *Estimator
	fp     uint64 // order-insensitive fingerprint of demand.Samples
	pts    []frontierPoint
	active bool

	// Per-Plan working state.
	n     int     // effective frontier length after budget/cap truncation
	capUB float64 // demand ceiling (0 = uncapped)
	floor float64 // on-demand survival floor in QPS (0 = unfloored)
	first int     // cheapest floor-allowed point; -1 when none fits
	cur   int     // greedy cursor; -1 is the empty configuration

	result cloud.Config // reused output buffer for Plan's FleetPlan
}

// allowed reports whether point i satisfies the on-demand floor: any
// configuration the greedy cursor may rest on must keep at least the
// floor servable after losing all spot capacity.
func (l *ladder) allowed(i int) bool {
	return l.floor <= 0 || l.pts[i].od >= l.floor-costEps
}

// ubAt returns point i's upper bound clamped at the demand ceiling:
// capacity beyond observed demand serves nothing, so its marginal value
// is zero.
func (l *ladder) ubAt(i int) float64 {
	if ub := l.pts[i].ub; l.capUB <= 0 || ub < l.capUB {
		return ub
	}
	return l.capUB
}

func (l *ladder) at() (cost, ub float64) {
	if l.cur < 0 {
		return 0, 0
	}
	return l.pts[l.cur].cost, l.ubAt(l.cur)
}

// bestJump finds the ladder's most efficient affordable upgrade: the
// frontier point beyond the cursor maximizing marginal upper bound per
// marginal dollar within the remaining budget. It returns the point
// index and the ratio, or (-1, 0) when no upgrade fits.
func (l *ladder) bestJump(remaining float64) (int, float64) {
	curCost, curUB := l.at()
	bestIdx, bestRatio := -1, 0.0
	for j := l.cur + 1; j < l.n; j++ {
		dc := l.pts[j].cost - curCost
		if dc > remaining+costEps {
			break // frontier cost is non-decreasing: later points cost more
		}
		if !l.allowed(j) {
			continue
		}
		du := l.ubAt(j) - curUB
		if du <= 0 || dc <= 0 {
			continue
		}
		if ratio := du / dc; ratio > bestRatio+costEps {
			bestIdx, bestRatio = j, ratio
		}
	}
	return bestIdx, bestRatio
}

// jumpEntry is one ladder's best candidate upgrade in the greedy heap.
type jumpEntry struct {
	l     *ladder
	idx   int
	ratio float64
}

// jumpBefore orders candidate jumps: higher marginal throughput per
// dollar first, ties toward the lexicographically smaller model name
// (names are unique, so this is a strict total order).
func jumpBefore(a, b jumpEntry) bool {
	if a.ratio != b.ratio {
		return a.ratio > b.ratio
	}
	return a.l.name < b.l.name
}

func pushJump(h []jumpEntry, e jumpEntry) []jumpEntry {
	h = append(h, e)
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !jumpBefore(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func popJump(h []jumpEntry) []jumpEntry {
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && jumpBefore(h[c+1], h[c]) {
			c++
		}
		if !jumpBefore(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fingerprintSamples validates a demand window and returns an
// order-insensitive 64-bit fingerprint (a commutative sum of per-sample
// mixes, plus the length). The query monitor hands back windows in
// unspecified order, so two snapshots of the same multiset must produce
// the same fingerprint — and invalidate nothing.
func fingerprintSamples(samples []int) (uint64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("core: estimator needs batch samples")
	}
	var sum uint64
	for _, b := range samples {
		if b < 1 || b > models.MaxBatch {
			return 0, fmt.Errorf("core: batch samples outside [1,%d]", models.MaxBatch)
		}
		sum += mix64(uint64(b))
	}
	return mix64(sum ^ uint64(len(samples))), nil
}

// FleetPlanner is the incremental form of PlanFleet. It caches the
// budget enumeration (shared across models) and each model's Pareto
// frontier across calls, keyed by a fingerprint of the model's sample
// window: a replan only rebuilds the frontiers of models whose windows
// actually moved, and a steady-state replan with no invalidations reuses
// every buffer and is near-zero-alloc. Plans are identical to what a
// from-scratch PlanFleet over the same demands would produce (PlanFleet
// itself is a fresh planner used once).
//
// A planner assumes a model name identifies one immutable model (latency
// curves and QoS): swapping a different model in under the same name
// must be done through a fresh planner. Not safe for concurrent use.
type FleetPlanner struct {
	pool       cloud.Pool
	enumBudget float64
	enum       []enumEntry

	// spotIdx holds the pool indices of spot-market types; empty pools
	// plan exactly as before the market dimension existed.
	spotIdx []int

	models map[string]*ladder
	order  []*ladder // active ladders in name order
	stale  bool      // active set changed; order needs rebuilding

	plan FleetPlan // reused result map, aliased by Plan's return value

	// Scratch reused across calls.
	vQa   []float64
	cov   []*ladder
	heap  []jumpEntry
	fps   []uint64
	seen  map[string]bool
	odCfg cloud.Config    // spot-zeroed copy for od evaluation
	group []frontierPoint // scanFrontier per-cost-group candidates
	stair []frontierPoint // scanFrontier (ub, od) maxima of kept points
}

// NewFleetPlanner builds a planner over the pool. enumBudget is the
// largest budget the planner expects to plan for (typically the
// engine's full budget): the candidate enumeration is built once at
// that budget and smaller per-call budgets plan over an affordable
// prefix of it. Planning above enumBudget re-enumerates (and rebuilds
// every cached frontier) at the larger budget.
func NewFleetPlanner(pool cloud.Pool, enumBudget float64) (*FleetPlanner, error) {
	if enumBudget <= 0 {
		return nil, fmt.Errorf("core: fleet planning needs a positive budget (got %v)", enumBudget)
	}
	p := &FleetPlanner{pool: pool, models: make(map[string]*ladder)}
	for i, t := range pool {
		if t.Market == cloud.Spot {
			p.spotIdx = append(p.spotIdx, i)
		}
	}
	p.enumerate(enumBudget)
	return p, nil
}

// enumerate rebuilds the shared candidate set at the given budget and
// rescans every cached frontier against it.
func (p *FleetPlanner) enumerate(budget float64) {
	configs := p.pool.Enumerate(budget)
	entries := make([]enumEntry, len(configs))
	for i, cfg := range configs {
		entries[i] = enumEntry{cfg: cfg, cost: p.pool.Cost(cfg)}
	}
	// Stable by cost: Enumerate yields numeric-lexicographic order, so
	// equal-cost candidates keep a deterministic relative order.
	slices.SortStableFunc(entries, func(a, b enumEntry) int {
		switch {
		case a.cost < b.cost:
			return -1
		case a.cost > b.cost:
			return 1
		}
		return 0
	})
	p.enum = entries
	p.enumBudget = budget
	for _, l := range p.models {
		if l.est != nil {
			p.scanFrontier(l)
		}
	}
}

// scanFrontier rebuilds l's Pareto frontier from the shared enumeration:
// ascending cost, keeping only configurations not dominated by a cheaper
// (or equal-cost, earlier-kept) one. In spot-free pools domination is on
// the upper bound alone — the classic strictly-increasing cost/bound
// staircase, with the best bound winning inside an equal-cost group
// (first in enumeration order on ties). Pools with spot capacity keep
// points Pareto-optimal in (ub, od) jointly: a spot-heavy configuration
// with a great bound but no revocation survival must not shadow the
// on-demand configuration a floored model needs, so both staircases
// coexist on one frontier (cost non-decreasing; within a cost, ub
// descending). Frontier configs alias the enumeration entries, which
// stay untouched until the next enumerate — and that rescans every
// frontier.
func (p *FleetPlanner) scanFrontier(l *ladder) {
	if len(p.spotIdx) == 0 {
		pts := l.pts[:0]
		best := 0.0
		for i := 0; i < len(p.enum); {
			cost := p.enum[i].cost
			groupUB, groupCfg := 0.0, cloud.Config(nil)
			for ; i < len(p.enum) && p.enum[i].cost == cost; i++ {
				var ub float64
				ub, p.vQa = l.est.upperBoundInto(p.enum[i].cfg, p.vQa)
				if ub > groupUB {
					groupUB, groupCfg = ub, p.enum[i].cfg
				}
			}
			if groupUB > best {
				pts = append(pts, frontierPoint{cfg: groupCfg, cost: cost, ub: groupUB, od: groupUB})
				best = groupUB
			}
		}
		l.pts = pts
		return
	}

	pts, stair := l.pts[:0], p.stair[:0]
	for i := 0; i < len(p.enum); {
		cost := p.enum[i].cost
		group := p.group[:0]
		for ; i < len(p.enum) && p.enum[i].cost == cost; i++ {
			var ub float64
			ub, p.vQa = l.est.upperBoundInto(p.enum[i].cfg, p.vQa)
			if ub <= 0 {
				continue
			}
			od := ub
			if odCfg := p.spotFree(p.enum[i].cfg); odCfg != nil {
				od, p.vQa = l.est.upperBoundInto(odCfg, p.vQa)
			}
			group = append(group, frontierPoint{cfg: p.enum[i].cfg, cost: cost, ub: ub, od: od})
		}
		// Within an equal-cost group the highest bound leads, so the first
		// kept point at each cost is that cost's best — the same pick the
		// 1-D scan makes — and the rest survive only on better survival.
		slices.SortStableFunc(group, func(a, b frontierPoint) int {
			switch {
			case a.ub > b.ub:
				return -1
			case a.ub < b.ub:
				return 1
			case a.od > b.od:
				return -1
			case a.od < b.od:
				return 1
			}
			return 0
		})
		for _, pt := range group {
			if stairDominated(stair, pt.ub, pt.od) {
				continue
			}
			pts = append(pts, pt)
			stair = stairAdd(stair, pt.ub, pt.od)
		}
		p.group = group[:0]
	}
	l.pts = pts
	p.stair = stair[:0]
}

// spotFree returns cfg with every spot count zeroed (in planner-owned
// scratch), or nil when cfg holds no spot capacity and its od equals its
// ub.
func (p *FleetPlanner) spotFree(cfg cloud.Config) cloud.Config {
	has := false
	for _, i := range p.spotIdx {
		if cfg[i] > 0 {
			has = true
			break
		}
	}
	if !has {
		return nil
	}
	if cap(p.odCfg) < len(cfg) {
		p.odCfg = make(cloud.Config, len(cfg))
	}
	od := p.odCfg[:len(cfg)]
	copy(od, cfg)
	for _, i := range p.spotIdx {
		od[i] = 0
	}
	p.odCfg = od
	return od
}

// stairDominated reports whether an already-kept (cheaper or equal-cost)
// point achieves at least both bounds; stair holds the (ub, od) Pareto
// maxima of the kept points, so it stays a handful of entries.
func stairDominated(stair []frontierPoint, ub, od float64) bool {
	for _, s := range stair {
		if s.ub >= ub && s.od >= od {
			return true
		}
	}
	return false
}

// stairAdd inserts a kept point's bounds, evicting maxima it covers.
func stairAdd(stair []frontierPoint, ub, od float64) []frontierPoint {
	out := stair[:0]
	for _, s := range stair {
		if s.ub <= ub && s.od <= od {
			continue
		}
		out = append(out, s)
	}
	return append(out, frontierPoint{ub: ub, od: od})
}

// SetDemands declares the full demand set for subsequent Plan calls.
// Models whose sample-window fingerprint is unchanged keep their cached
// frontier; only moved windows pay the estimator reset and the frontier
// rescan. Demand caps (ArrivalQPS/Headroom) and on-demand floors
// (Class/OnDemandFloor) are plan-time inputs and never invalidate the
// cache. Models absent from the set are excluded
// from planning but keep their cache in case they return. On error the
// planner's cached state is unchanged.
func (p *FleetPlanner) SetDemands(demands []ModelDemand) error {
	if len(demands) == 0 {
		return fmt.Errorf("core: fleet planning needs at least one model demand")
	}
	// Validate everything before touching any cached state.
	if p.seen == nil {
		p.seen = make(map[string]bool, len(demands))
	} else {
		clear(p.seen)
	}
	p.fps = p.fps[:0]
	for _, d := range demands {
		if d.Model.Name == "" {
			return fmt.Errorf("core: fleet demand with an unnamed model")
		}
		if p.seen[d.Model.Name] {
			return fmt.Errorf("core: duplicate fleet demand for model %s", d.Model.Name)
		}
		p.seen[d.Model.Name] = true
		fp, err := fingerprintSamples(d.Samples)
		if err != nil {
			return fmt.Errorf("core: fleet demand for %s: %w", d.Model.Name, err)
		}
		p.fps = append(p.fps, fp)
	}
	for _, l := range p.models {
		if l.active && !p.seen[l.name] {
			l.active = false
			p.stale = true
		}
	}
	for i, d := range demands {
		if err := p.applyDemand(d, p.fps[i]); err != nil {
			return err
		}
	}
	return nil
}

// applyDemand installs one validated demand, rebuilding the model's
// frontier only when its window fingerprint moved (or it is new).
func (p *FleetPlanner) applyDemand(d ModelDemand, fp uint64) error {
	l := p.models[d.Model.Name]
	if l == nil {
		l = &ladder{name: d.Model.Name}
		p.models[l.name] = l
	}
	if !l.active {
		l.active = true
		p.stale = true
	}
	rebuild := l.est == nil || fp != l.fp
	l.demand = d
	l.fp = fp
	if rebuild {
		if l.est == nil {
			est, err := NewEstimator(p.pool, d.Model, d.Samples, EstimatorOptions{})
			if err != nil {
				return fmt.Errorf("core: fleet demand for %s: %w", d.Model.Name, err)
			}
			l.est = est
		} else if err := l.est.Reset(d.Samples); err != nil {
			return fmt.Errorf("core: fleet demand for %s: %w", d.Model.Name, err)
		}
		p.scanFrontier(l)
	}
	return nil
}

// ReplanModel is the single-model replan slice: it refreshes one member
// of the current demand set (rebuilding only that model's frontier, and
// only if its window actually moved) and re-runs allocation; every
// other model plans from its cached frontier untouched. The model must
// already be in the active set from a previous SetDemands.
func (p *FleetPlanner) ReplanModel(d ModelDemand, budget float64) (FleetPlan, error) {
	if d.Model.Name == "" {
		return nil, fmt.Errorf("core: fleet demand with an unnamed model")
	}
	l := p.models[d.Model.Name]
	if l == nil || !l.active {
		return nil, fmt.Errorf("core: replan for model %s outside the planned demand set", d.Model.Name)
	}
	fp, err := fingerprintSamples(d.Samples)
	if err != nil {
		return nil, fmt.Errorf("core: fleet demand for %s: %w", d.Model.Name, err)
	}
	if err := p.applyDemand(d, fp); err != nil {
		return nil, err
	}
	return p.Plan(budget)
}

// activeOrder returns the active ladders in name order, rebuilding the
// cached order only when the active set changed.
func (p *FleetPlanner) activeOrder() []*ladder {
	if p.stale {
		p.order = p.order[:0]
		for _, l := range p.models {
			if l.active {
				p.order = append(p.order, l)
			}
		}
		slices.SortFunc(p.order, func(a, b *ladder) int { return strings.Compare(a.name, b.name) })
		p.stale = false
	}
	return p.order
}

// Plan allocates budget across the active demand set: the coverage
// phase funds every affordable model's cheapest useful configuration in
// descending first-step efficiency, then the greedy phase buys frontier
// upgrades by marginal throughput per dollar off a lazy max-heap, so
// each upgrade costs one ladder rescan plus O(log models) instead of a
// scan over every ladder. budget <= 0 plans at the enumeration budget;
// a larger budget re-enumerates first.
//
// The returned plan (map and configurations) is owned by the planner
// and valid only until the next Plan or ReplanModel call — Clone it to
// retain.
func (p *FleetPlanner) Plan(budget float64) (FleetPlan, error) {
	if budget <= 0 {
		budget = p.enumBudget
	}
	if budget > p.enumBudget {
		p.enumerate(budget)
	}
	order := p.activeOrder()
	if len(order) == 0 {
		return nil, fmt.Errorf("core: fleet planning needs at least one model demand")
	}

	// Per-call ladder views: reset the cursor, bind the demand ceiling
	// and the on-demand floor, and truncate to the affordable prefix.
	// Everything at or past the first usable cap-reaching point costs
	// more without serving additional demand, so the view ends one past
	// it. The floor, like the cap, is a read-time filter — the cached
	// frontier is never touched.
	hasSpot := len(p.spotIdx) > 0
	for _, l := range order {
		l.cur = -1
		l.capUB = l.demand.cap()
		l.floor = 0
		if hasSpot {
			l.floor = l.demand.floorQPS()
		}
		pts := l.pts
		n := len(pts)
		if budget < p.enumBudget {
			n = sort.Search(n, func(i int) bool { return pts[i].cost > budget+costEps })
		}
		if l.capUB > 0 {
			// The bound is not monotone along a two-staircase frontier, so
			// this is a linear scan for the first floor-allowed point that
			// covers the cap; any later allowed point costs at least as
			// much for the same clamped bound.
			for k := 0; k < n; k++ {
				if l.allowed(k) && pts[k].ub >= l.capUB {
					n = k + 1
					break
				}
			}
		}
		l.n = n
		l.first = -1
		for k := 0; k < l.n; k++ {
			if l.allowed(k) {
				l.first = k
				break
			}
		}
	}

	// Coverage first: uncovered models with an affordable first step
	// take absolute priority over upgrades, and coverage buys exactly
	// the cheapest positive-throughput floor-allowed configuration. The
	// remaining budget only shrinks, so funding in descending first-step
	// efficiency order reproduces the rescan-per-round pick sequence. A
	// floored model with no allowed point is starved outright — the
	// allocator never trades the survival constraint away.
	remaining := budget
	cov := p.cov[:0]
	for _, l := range order {
		if l.first >= 0 {
			cov = append(cov, l)
		}
	}
	slices.SortFunc(cov, func(a, b *ladder) int {
		ra := a.ubAt(a.first) / a.pts[a.first].cost
		rb := b.ubAt(b.first) / b.pts[b.first].cost
		switch {
		case ra > rb:
			return -1
		case ra < rb:
			return 1
		}
		return strings.Compare(a.name, b.name)
	})
	for _, l := range cov {
		if l.pts[l.first].cost <= remaining+costEps {
			remaining -= l.pts[l.first].cost
			l.cur = l.first
		}
	}
	p.cov = cov

	// Greedy upgrades off a lazy max-heap. Cached ratios are upper
	// bounds of the live ones (the remaining budget only shrinks, so a
	// ladder's best jump only gets worse), so the top is re-validated
	// before it is taken: if the refreshed key still beats the next-best
	// cached key it is the true maximum, otherwise it goes back in. A
	// re-push strictly decreases the key, so the loop terminates.
	h := p.heap[:0]
	for _, l := range order {
		if idx, ratio := l.bestJump(remaining); idx >= 0 {
			h = pushJump(h, jumpEntry{l: l, idx: idx, ratio: ratio})
		}
	}
	for len(h) > 0 {
		top := h[0]
		h = popJump(h)
		idx, ratio := top.l.bestJump(remaining)
		if idx < 0 {
			continue
		}
		if fresh := (jumpEntry{l: top.l, idx: idx, ratio: ratio}); len(h) > 0 && jumpBefore(h[0], fresh) {
			h = pushJump(h, fresh)
			continue
		}
		curCost, _ := top.l.at()
		remaining -= top.l.pts[idx].cost - curCost
		top.l.cur = idx
		if idx, ratio := top.l.bestJump(remaining); idx >= 0 {
			h = pushJump(h, jumpEntry{l: top.l, idx: idx, ratio: ratio})
		}
	}
	p.heap = h[:0]

	// Result: the planner-owned map and the per-ladder config buffers
	// are reused call over call, so the steady path allocates nothing.
	if p.plan == nil {
		p.plan = make(FleetPlan, len(order))
	}
	for name := range p.plan {
		if l := p.models[name]; l == nil || !l.active {
			delete(p.plan, name)
		}
	}
	for _, l := range order {
		if cap(l.result) < len(p.pool) {
			l.result = make(cloud.Config, len(p.pool))
		}
		cfg := l.result[:len(p.pool)]
		if l.cur < 0 {
			for i := range cfg {
				cfg[i] = 0
			}
		} else {
			copy(cfg, l.pts[l.cur].cfg)
		}
		l.result = cfg
		p.plan[l.name] = cfg
	}
	return p.plan, nil
}
