package bayesopt

import (
	"math"
	"math/rand"
	"testing"
)

func TestGPInterpolatesObservations(t *testing.T) {
	gp := NewGP(1.0, 1e-6)
	xs := []Point{{0}, {1}, {2}, {3}}
	ys := []float64{0, 1, 4, 9}
	if err := gp.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mu, sigma := gp.Predict(x)
		if math.Abs(mu-ys[i]) > 1e-2 {
			t.Errorf("mu(%v) = %v, want %v", x, mu, ys[i])
		}
		if sigma > 0.05 {
			t.Errorf("sigma(%v) = %v, want ~0 at observed point", x, sigma)
		}
	}
}

func TestGPUncertaintyGrowsAwayFromData(t *testing.T) {
	gp := NewGP(1.0, 1e-6)
	if err := gp.Fit([]Point{{0}, {1}}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	_, near := gp.Predict(Point{0.5})
	_, far := gp.Predict(Point{10})
	if far <= near {
		t.Fatalf("sigma far (%v) should exceed sigma near (%v)", far, near)
	}
	if far > 1.01 {
		t.Fatalf("sigma far (%v) should approach the prior (1)", far)
	}
}

func TestGPEmptyPredictsPrior(t *testing.T) {
	gp := NewGP(1, 1e-4)
	mu, sigma := gp.Predict(Point{3})
	if mu != 0 || sigma != 1 {
		t.Fatalf("prior = (%v,%v), want (0,1)", mu, sigma)
	}
}

func TestGPFitValidation(t *testing.T) {
	gp := NewGP(1, 1e-4)
	if err := gp.Fit(nil, nil); err == nil {
		t.Fatal("expected error on empty fit")
	}
	if err := gp.Fit([]Point{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error on length mismatch")
	}
}

func TestNewGPPanics(t *testing.T) {
	for _, bad := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %v", bad)
				}
			}()
			NewGP(bad[0], bad[1])
		}()
	}
}

func TestCholeskyRejectsNonPD(t *testing.T) {
	_, err := cholesky([][]float64{{1, 2}, {2, 1}}) // indefinite
	if err == nil {
		t.Fatal("expected non-PD error")
	}
}

func TestExpectedImprovementProperties(t *testing.T) {
	gp := NewGP(1.0, 1e-6)
	if err := gp.Fit([]Point{{0}, {2}}, []float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	// EI is non-negative everywhere.
	for x := -3.0; x <= 5; x += 0.25 {
		if ei := gp.ExpectedImprovement(Point{x}, 0); ei < 0 {
			t.Fatalf("EI(%v) = %v < 0", x, ei)
		}
	}
	// EI at a known point equal to the incumbent is ~0; EI in unexplored
	// territory is positive.
	atKnown := gp.ExpectedImprovement(Point{0}, 0)
	unexplored := gp.ExpectedImprovement(Point{10}, 0)
	if atKnown > 0.01 {
		t.Fatalf("EI at observed incumbent = %v, want ~0", atKnown)
	}
	if unexplored <= atKnown {
		t.Fatalf("EI unexplored (%v) should exceed EI at incumbent (%v)", unexplored, atKnown)
	}
}

func TestOptimizerFindsPeakOnSmoothLandscape(t *testing.T) {
	// 1-D discrete quadratic: peak at 7.
	n := 30
	candidates := make([]Point, n)
	truth := make([]float64, n)
	for i := 0; i < n; i++ {
		candidates[i] = Point{float64(i)}
		d := float64(i - 7)
		truth[i] = 100 - d*d
	}
	opt := &Optimizer{Candidates: candidates, Seed: 3, LengthScale: 3}
	var idxs []int
	var ys []float64
	found := -1
	for iter := 0; iter < n; iter++ {
		idx := opt.Suggest(idxs, ys)
		if idx == -1 {
			break
		}
		idxs = append(idxs, idx)
		ys = append(ys, truth[idx])
		if idx == 7 {
			found = len(idxs)
			break
		}
	}
	if found == -1 {
		t.Fatal("BO never evaluated the peak")
	}
	if found > n/2 {
		t.Fatalf("BO needed %d evals of %d candidates", found, n)
	}
}

func TestOptimizerExhaustsSpace(t *testing.T) {
	candidates := []Point{{0}, {1}, {2}}
	opt := &Optimizer{Candidates: candidates, Seed: 1}
	var idxs []int
	var ys []float64
	seen := map[int]bool{}
	for {
		idx := opt.Suggest(idxs, ys)
		if idx == -1 {
			break
		}
		if seen[idx] {
			t.Fatalf("candidate %d suggested twice", idx)
		}
		seen[idx] = true
		idxs = append(idxs, idx)
		ys = append(ys, float64(idx))
	}
	if len(seen) != len(candidates) {
		t.Fatalf("visited %d of %d candidates", len(seen), len(candidates))
	}
	if opt.Suggest(idxs, ys) != -1 {
		t.Fatal("exhausted optimizer must return -1")
	}
}

func TestOptimizerEmptySpace(t *testing.T) {
	opt := &Optimizer{}
	if opt.Suggest(nil, nil) != -1 {
		t.Fatal("empty space must return -1")
	}
}

func TestSolversAgainstRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(8) + 1
		// Build SPD matrix A = B B^T + I.
		b := make([][]float64, n)
		for i := range b {
			b[i] = make([]float64, n)
			for j := range b[i] {
				b[i][j] = rng.NormFloat64()
			}
		}
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				for k := 0; k < n; k++ {
					a[i][j] += b[i][k] * b[j][k]
				}
			}
			a[i][i] += 1
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		l, err := cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		x := choleskySolve(l, rhs)
		// Check A x = rhs.
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += a[i][j] * x[j]
			}
			if math.Abs(sum-rhs[i]) > 1e-8 {
				t.Fatalf("trial %d: residual %v at row %d", trial, sum-rhs[i], i)
			}
		}
	}
}
