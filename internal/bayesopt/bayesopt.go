// Package bayesopt implements Gaussian-process Bayesian optimization with
// the expected-improvement acquisition function over a discrete candidate
// set. It reproduces Ribbon's configuration allocator ([16], "Bayesian
// Optimization for allocation") as the RIBBON search baseline of Fig. 11.
package bayesopt

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a candidate location in the (low-dimensional, discrete) search
// space — for Kairos, an instance-count vector.
type Point []float64

// GP is a Gaussian-process regressor with an RBF kernel.
type GP struct {
	// LengthScale is the RBF kernel length scale.
	LengthScale float64
	// Noise is the observation noise variance added to the diagonal.
	Noise float64

	xs   []Point
	ys   []float64
	mean float64
	l    [][]float64 // Cholesky factor of K + noise*I
	a    []float64   // alpha = K^-1 (y - mean)
}

// NewGP builds an empty regressor.
func NewGP(lengthScale, noise float64) *GP {
	if lengthScale <= 0 || noise <= 0 {
		panic("bayesopt: lengthScale and noise must be positive")
	}
	return &GP{LengthScale: lengthScale, Noise: noise}
}

func (g *GP) kernel(a, b Point) float64 {
	d := 0.0
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return math.Exp(-d / (2 * g.LengthScale * g.LengthScale))
}

// Fit conditions the GP on observations.
func (g *GP) Fit(xs []Point, ys []float64) error {
	if len(xs) != len(ys) || len(xs) == 0 {
		return fmt.Errorf("bayesopt: need matching non-empty observations, got %d/%d", len(xs), len(ys))
	}
	n := len(xs)
	g.xs = xs
	g.ys = ys
	g.mean = 0
	for _, y := range ys {
		g.mean += y
	}
	g.mean /= float64(n)

	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := range k[i] {
			k[i][j] = g.kernel(xs[i], xs[j])
		}
		k[i][i] += g.Noise
	}
	l, err := cholesky(k)
	if err != nil {
		return err
	}
	g.l = l
	resid := make([]float64, n)
	for i := range resid {
		resid[i] = ys[i] - g.mean
	}
	g.a = choleskySolve(l, resid)
	return nil
}

// Predict returns the posterior mean and standard deviation at x.
func (g *GP) Predict(x Point) (mu, sigma float64) {
	if len(g.xs) == 0 {
		return 0, 1
	}
	n := len(g.xs)
	kstar := make([]float64, n)
	for i := range kstar {
		kstar[i] = g.kernel(x, g.xs[i])
	}
	mu = g.mean
	for i := range kstar {
		mu += kstar[i] * g.a[i]
	}
	v := forwardSolve(g.l, kstar)
	varx := g.kernel(x, x)
	for _, vi := range v {
		varx -= vi * vi
	}
	if varx < 0 {
		varx = 0
	}
	return mu, math.Sqrt(varx)
}

// cholesky factors a symmetric positive-definite matrix (lower triangular).
func cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("bayesopt: matrix not positive definite at %d (%.3g)", i, sum)
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// forwardSolve solves L v = b.
func forwardSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * v[k]
		}
		v[i] = sum / l[i][i]
	}
	return v
}

// choleskySolve solves (L L^T) x = b.
func choleskySolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	v := forwardSolve(l, b)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := v[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x
}

// ExpectedImprovement computes EI at x against the incumbent best.
func (g *GP) ExpectedImprovement(x Point, best float64) float64 {
	mu, sigma := g.Predict(x)
	if sigma < 1e-12 {
		if mu > best {
			return mu - best
		}
		return 0
	}
	z := (mu - best) / sigma
	return (mu-best)*stdNormCDF(z) + sigma*stdNormPDF(z)
}

func stdNormPDF(z float64) float64 { return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi) }
func stdNormCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// Optimizer runs EI-guided Bayesian optimization over a discrete candidate
// set, the way Ribbon allocates heterogeneous instances.
type Optimizer struct {
	// Candidates is the discrete search space.
	Candidates []Point
	// InitSamples seeds the GP with random candidates before the EI loop
	// (default 3).
	InitSamples int
	// LengthScale and Noise parametrize the GP (defaults 2.0 and 1e-4
	// relative to normalized observations).
	LengthScale, Noise float64
	// Seed drives the random initialization.
	Seed int64
}

// Suggest is called by the optimization loop with the observation history
// and returns the next candidate index to evaluate, or -1 when the space
// is exhausted.
func (o *Optimizer) Suggest(evaluatedIdx []int, ys []float64) int {
	if len(o.Candidates) == 0 {
		return -1
	}
	init := o.InitSamples
	if init == 0 {
		init = 3
	}
	seen := make(map[int]bool, len(evaluatedIdx))
	for _, i := range evaluatedIdx {
		seen[i] = true
	}
	if len(seen) >= len(o.Candidates) {
		return -1
	}
	rng := rand.New(rand.NewSource(o.Seed + int64(len(evaluatedIdx))))
	if len(evaluatedIdx) < init {
		for {
			i := rng.Intn(len(o.Candidates))
			if !seen[i] {
				return i
			}
		}
	}
	ls := o.LengthScale
	if ls == 0 {
		ls = 2
	}
	noise := o.Noise
	if noise == 0 {
		noise = 1e-4
	}
	// Normalize observations to zero-mean unit-ish scale for GP stability.
	best := math.Inf(-1)
	scale := 1.0
	for _, y := range ys {
		if y > best {
			best = y
		}
		if math.Abs(y) > scale {
			scale = math.Abs(y)
		}
	}
	xs := make([]Point, len(evaluatedIdx))
	norm := make([]float64, len(ys))
	for i, idx := range evaluatedIdx {
		xs[i] = o.Candidates[idx]
		norm[i] = ys[i] / scale
	}
	gp := NewGP(ls, noise)
	if err := gp.Fit(xs, norm); err != nil {
		// Degenerate fit (e.g. duplicate points): fall back to random.
		for {
			i := rng.Intn(len(o.Candidates))
			if !seen[i] {
				return i
			}
		}
	}
	bestIdx, bestEI := -1, -1.0
	for i, c := range o.Candidates {
		if seen[i] {
			continue
		}
		ei := gp.ExpectedImprovement(c, best/scale)
		if ei > bestEI {
			bestEI = ei
			bestIdx = i
		}
	}
	return bestIdx
}
