// Package queueing implements classical M/M/c queueing analysis (Erlang C)
// as the analytic alternative the paper considered and rejected for
// throughput estimation (Sec. 5.2: "we have also explored other options
// such as queuing theory to analytically calculate the actual throughput.
// However, due to the dynamic service time (varying batch size), the
// heterogeneity in hardware, and unconventional queue discipline, we
// cannot fit the problem into a classical M/M/c queue framework").
//
// It exists both as a reference substrate and as the negative control: the
// tests demonstrate where its homogeneous-exponential assumptions break on
// the heterogeneous serving problem, justifying Kairos's upper-bound
// approach.
package queueing

import (
	"fmt"
	"math"
)

// MMc models an M/M/c queue: Poisson arrivals at rate Lambda, c identical
// servers with exponential service at rate Mu each.
type MMc struct {
	// Lambda is the arrival rate (per unit time).
	Lambda float64
	// Mu is one server's service rate (per unit time).
	Mu float64
	// C is the number of servers.
	C int
}

// Valid reports whether the parameters describe a well-posed queue.
func (q MMc) Valid() error {
	if q.Lambda <= 0 || q.Mu <= 0 || q.C < 1 {
		return fmt.Errorf("queueing: invalid M/M/c parameters %+v", q)
	}
	return nil
}

// Rho is the per-server utilization lambda/(c*mu).
func (q MMc) Rho() float64 { return q.Lambda / (float64(q.C) * q.Mu) }

// Stable reports rho < 1.
func (q MMc) Stable() bool { return q.Rho() < 1 }

// ErlangC returns the probability an arriving query waits (all servers
// busy), computed with the numerically stable iterative form.
func (q MMc) ErlangC() (float64, error) {
	if err := q.Valid(); err != nil {
		return 0, err
	}
	if !q.Stable() {
		return 1, nil
	}
	a := q.Lambda / q.Mu // offered load in Erlangs
	// Iterative Erlang B, then convert to Erlang C.
	b := 1.0
	for k := 1; k <= q.C; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := q.Rho()
	c := b / (1 - rho*(1-b))
	return c, nil
}

// MeanWait returns the expected time in queue (not counting service).
func (q MMc) MeanWait() (float64, error) {
	pw, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	if !q.Stable() {
		return math.Inf(1), nil
	}
	return pw / (float64(q.C)*q.Mu - q.Lambda), nil
}

// WaitTailProbability returns P(wait > t): for M/M/c this is
// ErlangC * exp(-(c*mu - lambda) t).
func (q MMc) WaitTailProbability(t float64) (float64, error) {
	pw, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	if !q.Stable() {
		return 1, nil
	}
	return pw * math.Exp(-(float64(q.C)*q.Mu-q.Lambda)*t), nil
}

// ResponseTailProbability approximates P(response > t) for an M/M/c queue:
// the response time is the queue wait plus an exponential service. The
// closed form (for c*mu - lambda != mu) follows from convolving the two
// exponentials.
func (q MMc) ResponseTailProbability(t float64) (float64, error) {
	pw, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	if !q.Stable() {
		return 1, nil
	}
	theta := float64(q.C)*q.Mu - q.Lambda // wait decay rate
	mu := q.Mu
	if math.Abs(theta-mu) < 1e-12 {
		// Degenerate case: identical rates.
		return math.Exp(-mu*t) * (1 + pw*mu*t), nil
	}
	// P(R > t) = (1-pw) e^{-mu t} + pw [ (theta e^{-mu t} - mu e^{-theta t}) / (theta - mu) ]
	tail := (1-pw)*math.Exp(-mu*t) +
		pw*(theta*math.Exp(-mu*t)-mu*math.Exp(-theta*t))/(theta-mu)
	if tail < 0 {
		tail = 0
	}
	if tail > 1 {
		tail = 1
	}
	return tail, nil
}

// AllowableThroughput inverts the model: the largest lambda such that
// P(response > qos) <= 1-percentile (e.g. percentile 0.99). Bisection over
// lambda in (0, c*mu).
func AllowableThroughput(mu float64, c int, qos, percentile float64) (float64, error) {
	if mu <= 0 || c < 1 || qos <= 0 || percentile <= 0 || percentile >= 1 {
		return 0, fmt.Errorf("queueing: invalid inversion parameters")
	}
	budget := 1 - percentile
	feasible := func(lambda float64) bool {
		q := MMc{Lambda: lambda, Mu: mu, C: c}
		tail, err := q.ResponseTailProbability(qos)
		return err == nil && tail <= budget
	}
	lo, hi := 1e-9, float64(c)*mu*(1-1e-9)
	if !feasible(lo) {
		return 0, nil
	}
	if feasible(hi) {
		return hi, nil
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
