package queueing

import (
	"math"
	"math/rand"
	"testing"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/sim"
	"kairos/internal/workload"
)

func TestErlangCKnownValues(t *testing.T) {
	// Classic textbook value: lambda=2, mu=1, c=3 -> P(wait) = 0.4444...
	q := MMc{Lambda: 2, Mu: 1, C: 3}
	pw, err := q.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pw-4.0/9.0) > 1e-9 {
		t.Fatalf("ErlangC = %v, want 4/9", pw)
	}
	// Single server: Erlang C reduces to rho.
	one := MMc{Lambda: 0.3, Mu: 1, C: 1}
	pw, _ = one.ErlangC()
	if math.Abs(pw-0.3) > 1e-9 {
		t.Fatalf("M/M/1 P(wait) = %v, want rho", pw)
	}
}

func TestErlangCUnstable(t *testing.T) {
	q := MMc{Lambda: 5, Mu: 1, C: 3}
	if q.Stable() {
		t.Fatal("rho > 1 must be unstable")
	}
	pw, _ := q.ErlangC()
	if pw != 1 {
		t.Fatalf("unstable P(wait) = %v, want 1", pw)
	}
	w, _ := q.MeanWait()
	if !math.IsInf(w, 1) {
		t.Fatalf("unstable mean wait = %v", w)
	}
}

func TestMeanWaitLittle(t *testing.T) {
	// Cross-check the M/M/1 closed form: W = rho / (mu - lambda).
	q := MMc{Lambda: 0.6, Mu: 1, C: 1}
	w, err := q.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.6 / (1 - 0.6)
	if math.Abs(w-want) > 1e-9 {
		t.Fatalf("W = %v, want %v", w, want)
	}
}

func TestTailProbabilitiesMonotone(t *testing.T) {
	q := MMc{Lambda: 2.4, Mu: 1, C: 3}
	prevW, prevR := 2.0, 2.0
	for ts := 0.0; ts < 6; ts += 0.25 {
		w, err := q.WaitTailProbability(ts)
		if err != nil {
			t.Fatal(err)
		}
		r, err := q.ResponseTailProbability(ts)
		if err != nil {
			t.Fatal(err)
		}
		if w < 0 || w > 1 || r < 0 || r > 1 {
			t.Fatalf("tails out of range at t=%v: %v %v", ts, w, r)
		}
		if w > prevW+1e-12 || r > prevR+1e-12 {
			t.Fatalf("tails not monotone at t=%v", ts)
		}
		if r < w-1e-12 {
			t.Fatalf("response tail below wait tail at t=%v", ts)
		}
		prevW, prevR = w, r
	}
}

func TestValidation(t *testing.T) {
	for _, q := range []MMc{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		if _, err := q.ErlangC(); err == nil {
			t.Fatalf("expected error for %+v", q)
		}
	}
	if _, err := AllowableThroughput(0, 1, 1, 0.99); err == nil {
		t.Fatal("expected inversion validation error")
	}
}

func TestAllowableThroughputInversion(t *testing.T) {
	// qos must leave exponential-service tail headroom: P(S > qos) =
	// exp(-qos*mu) has to sit below the 1% budget before waits even start.
	mu, c, qos := 1.0, 3, 6.0
	lambda, err := AllowableThroughput(mu, c, qos, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if lambda <= 0 || lambda >= float64(c)*mu {
		t.Fatalf("lambda = %v outside (0, c*mu)", lambda)
	}
	// At the returned rate the tail constraint binds (within tolerance).
	q := MMc{Lambda: lambda, Mu: mu, C: c}
	tail, _ := q.ResponseTailProbability(qos)
	if tail > 0.0101 {
		t.Fatalf("tail %v exceeds budget at the returned rate", tail)
	}
}

// TestMMcOverestimatesHeterogeneousServing is the paper's Sec. 5.2 point
// as an executable artifact: treating the heterogeneous pool as c identical
// exponential servers with the pool's average service rate produces an
// allowable-throughput estimate far from the simulated truth, while
// Kairos's upper bound stays in range.
func TestMMcOverestimatesHeterogeneousServing(t *testing.T) {
	t.Parallel()
	pool := cloud.ThreeTypePool()
	m := models.MustByName("RM2")
	cfg := cloud.Config{2, 0, 9}
	spec := sim.ClusterSpec{Pool: pool, Config: cfg, Model: m}

	// Homogenized M/M/c view: every instance serves the mean batch at its
	// own mean rate; take the pool-average service rate.
	mix := workload.DefaultTrace()
	mon := workload.NewMonitor(4000)
	mon.Warm(rand.New(rand.NewSource(1)), mix, 4000)
	meanBatch := int(mon.MeanBatch())
	totalRate := 0.0
	n := 0
	for _, tn := range spec.InstanceTypes() {
		totalRate += 1000 / m.Latency(tn, meanBatch)
		n++
	}
	muPerServer := totalRate / float64(n) // queries per second
	mmcEstimate, err := AllowableThroughput(muPerServer/1000, n, m.QoS, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	mmcEstimate *= 1000 // per-ms -> per-second

	measured := sim.FindAllowableThroughput(spec, sim.Static(sim.FCFSAny{}), sim.FindOptions{
		ProbeQueries: 1000, Seed: 1, PrecisionFrac: 0.06,
	})
	// The M/M/c abstraction is wrong in both of its core assumptions here:
	// service times are deterministic (not exponential — the exponential
	// tail alone can blow a p99 budget at any load) and servers are
	// heterogeneous with per-type QoS feasibility. Either way the estimate
	// must be grossly off the simulated truth — the Sec. 5.2 rejection.
	if measured <= 0 {
		t.Fatalf("simulated FCFS throughput %v", measured)
	}
	ratio := mmcEstimate / measured
	if ratio > 0.5 && ratio < 2 {
		t.Fatalf("M/M/c estimate %.1f within 2x of measured %.1f — the Sec. 5.2 rejection would not hold",
			mmcEstimate, measured)
	}
}
