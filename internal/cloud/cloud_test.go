package cloud

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultPoolMatchesTable4(t *testing.T) {
	p := DefaultPool()
	if len(p) != 4 {
		t.Fatalf("pool size = %d, want 4", len(p))
	}
	wantPrices := map[string]float64{
		"g4dn.xlarge": 0.526,
		"c5n.2xlarge": 0.432,
		"r5n.large":   0.149,
		"t3.xlarge":   0.1664,
	}
	for name, price := range wantPrices {
		i := p.IndexOf(name)
		if i < 0 {
			t.Fatalf("missing instance type %s", name)
		}
		if p[i].PricePerHour != price {
			t.Errorf("%s price = %v, want %v", name, p[i].PricePerHour, price)
		}
	}
	if p.Base().Name != "g4dn.xlarge" {
		t.Errorf("base type = %s, want g4dn.xlarge", p.Base().Name)
	}
	if p.Base().Class != AcceleratedComputing {
		t.Errorf("base class = %v, want accelerated", p.Base().Class)
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		AcceleratedComputing: "Accelerated Computing",
		ComputeOptimized:     "Compute Optimized CPU",
		MemoryOptimized:      "Memory Optimized CPU",
		GeneralPurpose:       "General Purpose CPU",
		Class(99):            "Class(99)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestCostOfPaperConfigs(t *testing.T) {
	// Fig. 1 uses the 3-type pool {g4dn, c5n.2xlarge, r5n.large}.
	p := ThreeTypePool()
	cases := []struct {
		cfg  string
		want float64
	}{
		{"(4,0,0)", 4 * 0.526},
		{"(3,1,3)", 3*0.526 + 0.432 + 3*0.149},
		{"(2,0,9)", 2*0.526 + 9*0.149},
		{"(1,4,2)", 0.526 + 4*0.432 + 2*0.149},
	}
	for _, tc := range cases {
		cfg, err := ParseConfig(tc.cfg, len(p))
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Cost(cfg); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("cost%v = %v, want %v", cfg, got, tc.want)
		}
	}
	// (1,4,2) exceeds the paper's $2.5/hr budget; the others fit (Fig. 1).
	budget := 2.5
	for _, tc := range cases {
		cfg, _ := ParseConfig(tc.cfg, len(p))
		within := p.WithinBudget(cfg, budget)
		if tc.cfg == "(1,4,2)" && within {
			t.Errorf("(1,4,2) should exceed budget %v", budget)
		}
		if tc.cfg != "(1,4,2)" && !within {
			t.Errorf("%s should fit budget %v (cost %v)", tc.cfg, budget, p.Cost(cfg))
		}
	}
}

func TestHomogeneous(t *testing.T) {
	p := DefaultPool()
	c := p.Homogeneous(2.5)
	if c.Base() != 4 {
		t.Fatalf("homogeneous base count = %d, want 4 (4 x $0.526 = $2.104)", c.Base())
	}
	for i := 1; i < len(c); i++ {
		if c[i] != 0 {
			t.Fatalf("homogeneous config has auxiliary instances: %v", c)
		}
	}
	// Scale compensates the unused budget: 2.5 / 2.104 ~= 1.188 ("70% of one
	// G1" in Sec. 4 phrasing).
	scale := p.HomogeneousScale(2.5)
	if math.Abs(scale-2.5/2.104) > 1e-9 {
		t.Fatalf("scale = %v, want %v", scale, 2.5/2.104)
	}
	if scale < 1 {
		t.Fatal("scale must be >= 1")
	}
}

func TestHomogeneousScaleZeroBase(t *testing.T) {
	p := DefaultPool()
	if got := p.HomogeneousScale(0.1); got != 1 {
		t.Fatalf("scale with no affordable base = %v, want 1", got)
	}
}

func TestEnumerateRespectsBudget(t *testing.T) {
	p := DefaultPool()
	budget := 2.5
	configs := p.Enumerate(budget)
	if len(configs) == 0 {
		t.Fatal("no configurations enumerated")
	}
	// Paper: "an order of 1000-configuration search space" (Sec. 5.2).
	if len(configs) < 500 || len(configs) > 20000 {
		t.Fatalf("search space size = %d, expected order-1000", len(configs))
	}
	seen := map[string]bool{}
	for _, c := range configs {
		if !p.WithinBudget(c, budget) {
			t.Fatalf("config %v cost %v exceeds budget", c, p.Cost(c))
		}
		if c.Total() == 0 {
			t.Fatal("empty configuration enumerated")
		}
		if seen[c.Key()] {
			t.Fatalf("duplicate configuration %v", c)
		}
		seen[c.Key()] = true
	}
	// The optimal homogeneous configuration must be part of the space.
	if !seen[p.Homogeneous(budget).Key()] {
		t.Fatal("homogeneous configuration missing from search space")
	}
}

func TestEnumerateMinBase(t *testing.T) {
	p := DefaultPool()
	for _, c := range p.Enumerate(2.5, WithMinBase(1)) {
		if c.Base() < 1 {
			t.Fatalf("config %v has no base instances", c)
		}
	}
	all := len(p.Enumerate(2.5))
	withBase := len(p.Enumerate(2.5, WithMinBase(1)))
	if withBase >= all {
		t.Fatalf("WithMinBase did not restrict: %d >= %d", withBase, all)
	}
}

func TestEnumerateMinTotal(t *testing.T) {
	p := ThreeTypePool()
	for _, c := range p.Enumerate(1.0, WithMinTotal(3)) {
		if c.Total() < 3 {
			t.Fatalf("config %v has fewer than 3 instances", c)
		}
	}
}

func TestEnumerateCountsClosedForm(t *testing.T) {
	// Single-type pool: budget/price + 1 configs minus the empty one.
	p := Pool{{Name: "only", Class: GeneralPurpose, PricePerHour: 0.5}}
	configs := p.Enumerate(2.0)
	if len(configs) != 4 {
		t.Fatalf("got %d configs, want 4 (1..4 instances)", len(configs))
	}
}

func TestIsSubConfigOf(t *testing.T) {
	a := Config{1, 0, 2}
	b := Config{1, 1, 2}
	c := Config{2, 0, 1}
	if !a.IsSubConfigOf(b) {
		t.Error("(1,0,2) should be a sub-config of (1,1,2)")
	}
	if b.IsSubConfigOf(a) {
		t.Error("(1,1,2) should not be a sub-config of (1,0,2)")
	}
	if a.IsSubConfigOf(a) {
		t.Error("a config is not a sub-config of itself")
	}
	if a.IsSubConfigOf(c) || c.IsSubConfigOf(a) {
		t.Error("incomparable configs must not be sub-configs")
	}
	if a.IsSubConfigOf(Config{1, 1}) {
		t.Error("different lengths must not be comparable")
	}
}

// TestSubConfigPartialOrder checks transitivity and antisymmetry of the
// sub-configuration relation on random configs.
func TestSubConfigPartialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gen := func() Config {
		c := make(Config, 4)
		for i := range c {
			c[i] = rng.Intn(4)
		}
		return c
	}
	f := func() bool {
		a, b, c := gen(), gen(), gen()
		// Antisymmetry: both directions cannot hold (strict relation).
		if a.IsSubConfigOf(b) && b.IsSubConfigOf(a) {
			return false
		}
		// Transitivity.
		if a.IsSubConfigOf(b) && b.IsSubConfigOf(c) && !a.IsSubConfigOf(c) {
			return false
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSquaredDistance(t *testing.T) {
	a := Config{3, 1, 3}
	b := Config{4, 0, 0}
	if got := a.SquaredDistance(b); got != 1+1+9 {
		t.Fatalf("distance = %v, want 11", got)
	}
	if got := a.SquaredDistance(a); got != 0 {
		t.Fatalf("self distance = %v, want 0", got)
	}
}

func TestSquaredDistancePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Config{1, 2}.SquaredDistance(Config{1, 2, 3})
}

func TestParseConfig(t *testing.T) {
	c, err := ParseConfig("(3, 1, 3)", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(Config{3, 1, 3}) {
		t.Fatalf("parsed %v", c)
	}
	if _, err := ParseConfig("(1,2)", 3); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := ParseConfig("(1,x,3)", 3); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ParseConfig("(1,-2,3)", 3); err == nil {
		t.Fatal("expected negative count error")
	}
}

func TestConfigStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		c := make(Config, 4)
		for i := range c {
			c[i] = rng.Intn(10)
		}
		parsed, err := ParseConfig(c.String(), 4)
		if err != nil {
			t.Fatal(err)
		}
		if !parsed.Equal(c) {
			t.Fatalf("round trip %v -> %v", c, parsed)
		}
	}
}

func TestCostPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultPool().Cost(Config{1, 2})
}

func TestCloneIndependent(t *testing.T) {
	a := Config{1, 2, 3}
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}
