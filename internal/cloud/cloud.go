// Package cloud models the heterogeneous pool of rentable compute instances
// that Kairos allocates under a cost budget (Table 4 of the paper): instance
// types with hourly prices, heterogeneous configurations expressed as
// per-type instance counts, cost accounting, and enumeration of the
// budget-bounded configuration search space.
package cloud

import (
	"fmt"
	"strings"
)

// Class categorizes an instance type the way EC2 does (Table 4).
type Class int

const (
	// AcceleratedComputing is a GPU-accelerated instance class.
	AcceleratedComputing Class = iota
	// ComputeOptimized is a CPU instance class with high clock rates.
	ComputeOptimized
	// MemoryOptimized is a CPU instance class with large memory per core.
	MemoryOptimized
	// GeneralPurpose is a balanced CPU instance class.
	GeneralPurpose
)

// String returns the EC2 marketing name of the class.
func (c Class) String() string {
	switch c {
	case AcceleratedComputing:
		return "Accelerated Computing"
	case ComputeOptimized:
		return "Compute Optimized CPU"
	case MemoryOptimized:
		return "Memory Optimized CPU"
	case GeneralPurpose:
		return "General Purpose CPU"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Market is the capacity market an instance type is bought from.
type Market int

const (
	// OnDemand capacity is reserved until the renter releases it.
	OnDemand Market = iota
	// Spot capacity is discounted but revocable: the provider may reclaim
	// it after a short preemption notice.
	Spot
)

// String names the market tier.
func (m Market) String() string {
	switch m {
	case OnDemand:
		return "on-demand"
	case Spot:
		return "spot"
	default:
		return fmt.Sprintf("Market(%d)", int(m))
	}
}

// InstanceType describes one rentable instance type.
type InstanceType struct {
	// Name is the cloud provider's type name, e.g. "g4dn.xlarge". Spot
	// variants carry the ":spot" suffix (e.g. "g4dn.xlarge:spot") so the
	// two markets coexist in one pool.
	Name string
	// Class is the broad hardware category.
	Class Class
	// PricePerHour is the price in $/hr at this market tier.
	PricePerHour float64
	// Market is the capacity market tier (OnDemand unless set).
	Market Market
	// RevocationRisk is the expected preemption rate of Spot capacity in
	// preemptions per instance-hour (0 for OnDemand) — the risk knob a
	// planner or operator weighs against the discount.
	RevocationRisk float64
}

// spotSuffix marks spot-market variants in instance-type names.
const spotSuffix = ":spot"

// SpotOf derives the spot-market variant of an on-demand type: same
// hardware (so the same latency surface), the name tagged with ":spot",
// and the price discounted by the given fraction in (0,1).
func SpotOf(t InstanceType, discount, risk float64) InstanceType {
	if t.Market != OnDemand {
		panic(fmt.Sprintf("cloud: SpotOf on non-on-demand type %s", t.Name))
	}
	if discount <= 0 || discount >= 1 {
		panic(fmt.Sprintf("cloud: spot discount %v outside (0,1)", discount))
	}
	if risk < 0 {
		panic(fmt.Sprintf("cloud: negative revocation risk %v", risk))
	}
	return InstanceType{
		Name:           t.Name + spotSuffix,
		Class:          t.Class,
		PricePerHour:   t.PricePerHour * (1 - discount),
		Market:         Spot,
		RevocationRisk: risk,
	}
}

// OnDemandName maps an instance-type name back to its on-demand hardware
// name by stripping the spot marker; on-demand names pass through. Latency
// surfaces are keyed by hardware, so curve lookups resolve spot variants
// through this.
func OnDemandName(name string) string {
	return strings.TrimSuffix(name, spotSuffix)
}

// IsSpotName reports whether the type name carries the spot marker.
func IsSpotName(name string) bool {
	return strings.HasSuffix(name, spotSuffix)
}

// The heterogeneous pool evaluated in the paper (Table 4). g4dn.xlarge is
// the base instance type: the only type that meets QoS for every batch size
// (Sec. 7). The three CPU types are auxiliary instance types.
var (
	G4dnXlarge = InstanceType{Name: "g4dn.xlarge", Class: AcceleratedComputing, PricePerHour: 0.526}
	C5n2xlarge = InstanceType{Name: "c5n.2xlarge", Class: ComputeOptimized, PricePerHour: 0.432}
	R5nLarge   = InstanceType{Name: "r5n.large", Class: MemoryOptimized, PricePerHour: 0.149}
	T3Xlarge   = InstanceType{Name: "t3.xlarge", Class: GeneralPurpose, PricePerHour: 0.1664}
)

// Pool is an ordered set of instance types forming the configuration search
// space. By convention index 0 is the base instance type and the remaining
// entries are auxiliary types (Sec. 4).
type Pool []InstanceType

// DefaultPool returns the paper's 4-type pool (Table 4) with g4dn.xlarge as
// the base type.
func DefaultPool() Pool {
	return Pool{G4dnXlarge, C5n2xlarge, R5nLarge, T3Xlarge}
}

// ThreeTypePool returns the {G1, C1, C2} pool used in the motivation figures
// (Fig. 1-3): g4dn.xlarge, c5n.2xlarge, r5n.large.
func ThreeTypePool() Pool {
	return Pool{G4dnXlarge, C5n2xlarge, R5nLarge}
}

// WithSpotMarket returns a new pool extending p with a spot variant of
// every on-demand type, discounted by the given fraction in (0,1) and
// tagged with the revocation risk. The on-demand types keep their
// positions (the base type stays at BaseIndex); the spot variants append
// in the same order, so configurations over the extended pool embed the
// original pool as a prefix.
func (p Pool) WithSpotMarket(discount, risk float64) Pool {
	out := make(Pool, 0, 2*len(p))
	out = append(out, p...)
	for _, t := range p {
		if t.Market == OnDemand {
			out = append(out, SpotOf(t, discount, risk))
		}
	}
	return out
}

// HasSpot reports whether any pool type is spot-market capacity.
func (p Pool) HasSpot() bool {
	for _, t := range p {
		if t.Market == Spot {
			return true
		}
	}
	return false
}

// BaseIndex is the position of the base instance type in every Pool.
const BaseIndex = 0

// Base returns the pool's base instance type.
func (p Pool) Base() InstanceType { return p[BaseIndex] }

// IndexOf returns the position of the named type, or -1 if absent.
func (p Pool) IndexOf(name string) int {
	for i, t := range p {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// Config is a heterogeneous configuration: Config[i] is the number of
// instances of Pool[i] allocated. The paper writes these as tuples such as
// (3, 1, 3).
type Config []int

// NewConfig returns a zeroed configuration sized for the pool.
func NewConfig(p Pool) Config { return make(Config, len(p)) }

// Clone returns a copy of c.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Total returns the total number of instances across all types.
func (c Config) Total() int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}

// Base returns the number of base instances (index 0).
func (c Config) Base() int {
	if len(c) == 0 {
		return 0
	}
	return c[BaseIndex]
}

// Equal reports whether two configurations have identical counts.
func (c Config) Equal(o Config) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// IsSubConfigOf reports whether c is a sub-configuration of o: o can be
// obtained from c by adding instances (Sec. 5.2, Kairos+ pruning). A
// configuration is not considered a sub-configuration of itself.
func (c Config) IsSubConfigOf(o Config) bool {
	if len(c) != len(o) {
		return false
	}
	strictly := false
	for i := range c {
		if c[i] > o[i] {
			return false
		}
		if c[i] < o[i] {
			strictly = true
		}
	}
	return strictly
}

// Key returns a canonical string form usable as a map key, e.g. "(3,1,3)".
func (c Config) Key() string { return c.String() }

// String renders the paper's tuple notation.
func (c Config) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// SquaredDistance returns the squared Euclidean distance between two
// configurations, the similarity metric of Kairos's one-shot selection
// (Sec. 5.2).
func (c Config) SquaredDistance(o Config) float64 {
	if len(c) != len(o) {
		panic("cloud: SquaredDistance on configs of different pool sizes")
	}
	d := 0.0
	for i := range c {
		diff := float64(c[i] - o[i])
		d += diff * diff
	}
	return d
}

// Cost returns the configuration's total price in $/hr under pool p.
func (p Pool) Cost(c Config) float64 {
	if len(c) != len(p) {
		panic(fmt.Sprintf("cloud: config %v does not match pool of %d types", c, len(p)))
	}
	total := 0.0
	for i, n := range c {
		if n < 0 {
			panic(fmt.Sprintf("cloud: negative instance count in %v", c))
		}
		total += float64(n) * p[i].PricePerHour
	}
	return total
}

// WithinBudget reports whether configuration c costs at most budget $/hr.
func (p Pool) WithinBudget(c Config, budget float64) bool {
	return p.Cost(c) <= budget+1e-9
}

// MaxCount returns the largest count of type i alone that fits in budget.
func (p Pool) MaxCount(i int, budget float64) int {
	if p[i].PricePerHour <= 0 {
		panic("cloud: non-positive instance price")
	}
	return int((budget + 1e-9) / p[i].PricePerHour)
}

// Homogeneous returns the optimal homogeneous configuration: the maximum
// number of base instances that fit within the budget (Sec. 8.1).
func (p Pool) Homogeneous(budget float64) Config {
	c := NewConfig(p)
	c[BaseIndex] = p.MaxCount(BaseIndex, budget)
	return c
}

// HomogeneousScale returns the factor by which a homogeneous configuration's
// measured throughput is scaled up to spend the whole budget, the
// advantage the paper grants homogeneous serving (Sec. 4 and 8.1): unused
// budget is converted into a proportional throughput credit.
func (p Pool) HomogeneousScale(budget float64) float64 {
	c := p.Homogeneous(budget)
	if c.Base() == 0 {
		return 1
	}
	return budget / p.Cost(c)
}

// EnumerateOption customizes Enumerate.
type EnumerateOption func(*enumerateOptions)

type enumerateOptions struct {
	minBase    int
	minTotal   int
	requireAny bool
}

// WithMinBase requires at least n base instances in every enumerated
// configuration. Kairos itself enumerates the full space (a zero-base
// configuration simply has throughput upper bound 0), but searches may
// restrict to serviceable configurations.
func WithMinBase(n int) EnumerateOption {
	return func(o *enumerateOptions) { o.minBase = n }
}

// WithMinTotal requires at least n instances overall, excluding the empty
// configuration by default behaviour of n=1.
func WithMinTotal(n int) EnumerateOption {
	return func(o *enumerateOptions) { o.minTotal = n }
}

// Enumerate lists every configuration whose cost is within budget, in
// lexicographic order. The empty configuration is excluded. The paper's
// default setting ($2.5/hr over Table 4) yields a search space on the order
// of 1000 configurations (Sec. 5.2).
func (p Pool) Enumerate(budget float64, opts ...EnumerateOption) []Config {
	o := enumerateOptions{minTotal: 1}
	for _, opt := range opts {
		opt(&o)
	}
	var out []Config
	cur := NewConfig(p)
	var rec func(i int, remaining float64)
	rec = func(i int, remaining float64) {
		if i == len(p) {
			if cur.Total() >= o.minTotal && cur.Base() >= o.minBase {
				out = append(out, cur.Clone())
			}
			return
		}
		maxN := int((remaining + 1e-9) / p[i].PricePerHour)
		for n := 0; n <= maxN; n++ {
			cur[i] = n
			rec(i+1, remaining-float64(n)*p[i].PricePerHour)
		}
		cur[i] = 0
	}
	rec(0, budget)
	return out
}

// ParseConfig parses the tuple notation "(a,b,c)" (whitespace tolerated)
// into a Config for a pool of the given size.
func ParseConfig(s string, poolSize int) (Config, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	parts := strings.Split(s, ",")
	if len(parts) != poolSize {
		return nil, fmt.Errorf("cloud: config %q has %d counts, pool has %d types", s, len(parts), poolSize)
	}
	c := make(Config, poolSize)
	for i, part := range parts {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil {
			return nil, fmt.Errorf("cloud: bad count %q in config %q", part, s)
		}
		if n < 0 {
			return nil, fmt.Errorf("cloud: negative count in config %q", s)
		}
		c[i] = n
	}
	return c, nil
}
