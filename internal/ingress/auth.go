package ingress

import (
	"sync/atomic"
	"time"
)

// Client gating for an untrusted front door: a static bearer-token allow
// list and a per-client rate limit. The limiter is GCRA (the
// "leaky-bucket-as-meter" form of a token bucket): each client carries a
// single atomic nanosecond timestamp — its theoretical arrival time — so
// an allow() is one Load and one CAS with no locks and no allocation,
// and an idle bucket needs no refill bookkeeping.

// bootT anchors the limiter's monotonic clock; nanosecond deltas from it
// fit int64 for centuries.
var bootT = time.Now()

func nowNanos() int64 { return int64(time.Since(bootT)) }

// clientBucket is one client's limiter state.
type clientBucket struct {
	// tat is the theoretical arrival time, in nanoseconds since bootT, of
	// the next request if the client paced perfectly.
	tat atomic.Int64
}

// allow spends one token; false means the client is over its budget.
// interval is the nanosecond spacing of a perfectly paced client
// (1e9/qps); burst is how many tokens a fresh or idle bucket holds.
func (b *clientBucket) allow(interval, burst int64) bool {
	for {
		now := nowNanos()
		tat := b.tat.Load()
		t := tat
		if now > t {
			t = now
		}
		// A conforming request may arrive up to (burst-1) intervals ahead
		// of its theoretical slot; further ahead means the burst is spent.
		if t-now > (burst-1)*interval {
			return false
		}
		if b.tat.CompareAndSwap(tat, t+interval) {
			return true
		}
	}
}

// authTable is the front door's client gate: the token allow list and
// per-client buckets, both immutable after New (the hot path reads a
// prebuilt map).
type authTable struct {
	// clients maps auth token → limiter bucket; nil when no tokens are
	// configured (open front door).
	clients map[string]*clientBucket
	// anon is the shared bucket for an open front door with a rate limit.
	anon     *clientBucket
	interval int64 // 0 disables rate limiting
	burst    int64
}

// newAuthTable builds the gate; nil when neither auth nor rate limiting
// is configured, so the hot path can skip the whole stage on one nil
// check.
func newAuthTable(tokens []string, qps float64, burst int) *authTable {
	if len(tokens) == 0 && qps <= 0 {
		return nil
	}
	t := &authTable{}
	if qps > 0 {
		t.interval = int64(float64(time.Second) / qps)
		if t.interval < 1 {
			t.interval = 1
		}
		t.burst = int64(burst)
		if t.burst < 1 {
			t.burst = int64(qps)
			if t.burst < 1 {
				t.burst = 1
			}
		}
	}
	if len(tokens) > 0 {
		t.clients = make(map[string]*clientBucket, len(tokens))
		for _, tok := range tokens {
			t.clients[tok] = &clientBucket{}
		}
	} else {
		t.anon = &clientBucket{}
	}
	return t
}

// lookup resolves a presented token to its bucket. ok=false means the
// client is unauthorized. With no token list every client shares the
// anonymous bucket. The map lookup on a byte slice does not allocate
// (the compiler recognizes map[string(b)]).
func (t *authTable) lookup(token []byte) (b *clientBucket, ok bool) {
	if t.clients == nil {
		return t.anon, true
	}
	b, ok = t.clients[string(token)]
	return b, ok
}

// lookupString is lookup for callers that already hold a string token.
func (t *authTable) lookupString(token string) (b *clientBucket, ok bool) {
	if t.clients == nil {
		return t.anon, true
	}
	b, ok = t.clients[token]
	return b, ok
}

// limited spends one token from b; true means reject with RateLimitedMsg.
// b may be nil (authorized client on a front door without rate limits).
func (t *authTable) limited(b *clientBucket) bool {
	if t.interval == 0 || b == nil {
		return false
	}
	return !b.allow(t.interval, t.burst)
}
