//go:build !linux

package ingress

import "syscall"

// Non-Linux platforms run the sharded front door over a single shared
// listener: every shard still gets its own accept loop, admission state,
// and waiter pool — only the kernel-level connection spreading is lost.
const reusePortOK = false

func reusePortControl(network, address string, c syscall.RawConn) error { return nil }
