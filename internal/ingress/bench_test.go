package ingress

import (
	"sync/atomic"
	"testing"
)

// The ingress hot-path benchmarks measure the external Submit→complete
// cost through each transport over the shared fixture (see benchutil.go);
// cmd/kairos-microbench runs the same loops into BENCH_micro.json.

func benchTransport(b *testing.B, tcp bool, shards int) {
	fix, err := StartBenchIngressSharded(1e-6, shards)
	if err != nil {
		b.Fatal(err)
	}
	defer fix.Close()
	var worker int64
	b.SetParallelism(16)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := atomic.AddInt64(&worker, 1)
		var err error
		if tcp {
			err = fix.TCPWorker(w, pb.Next)
		} else {
			err = fix.HTTPWorker(w, pb.Next)
		}
		if err != nil {
			b.Error(err)
		}
	})
}

func BenchmarkIngressSubmitTCP(b *testing.B)  { benchTransport(b, true, 0) }
func BenchmarkIngressSubmitHTTP(b *testing.B) { benchTransport(b, false, 0) }

// The sharded variant spreads the same parallel TCP load over four
// accept/admission shards — the contended-counter and accept-loop
// scaling the single-shard benchmark cannot show.
func BenchmarkIngressSubmitTCPSharded(b *testing.B) { benchTransport(b, true, 4) }
