package ingress

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kairos/internal/server"
)

// Client speaks the front-end's TCP protocol: one connection, concurrent
// Submit callers, O(1) reply correlation. Dial negotiates the wire
// version from the Hello banner exactly like the controller does against
// an instance server; a legacy (JSON-only) front-end degrades
// transparently, and a legacy binary front-end simply never sees the
// session request kind.
type Client struct {
	conn   net.Conn
	proto  int
	binary bool
	nextID atomic.Int64

	wmu  sync.Mutex
	wbuf []byte

	mu      sync.Mutex
	pending map[int64]chan server.Reply
	err     error // terminal read-loop error; set before pending close
}

// DialOptions carry client identity for token-gated front doors.
type DialOptions struct {
	// Token authenticates the connection (the HTTP transport's
	// Authorization: Bearer equivalent). Ignored by open front doors.
	Token string
}

// SubmitOptions tag one query.
type SubmitOptions struct {
	// Session is the affinity key: queries sharing it prefer the same
	// serving instance.
	Session string
	// Deadline bounds how long the query may wait for dispatch; 0 means
	// no deadline. Resolution is milliseconds (the wire unit).
	Deadline time.Duration
}

// Dial connects to a front-end's TCP endpoint.
func Dial(addr string) (*Client, error) { return DialWith(addr, DialOptions{}) }

// DialWith connects with client identity.
func DialWith(addr string, opts DialOptions) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(conn, 16<<10)
	var hello server.Hello
	if err := server.ReadFrame(br, &hello); err != nil {
		conn.Close()
		return nil, err
	}
	c := &Client{conn: conn, pending: make(map[int64]chan server.Reply)}
	if hello.Proto >= server.ProtoBinary {
		c.proto = hello.Proto
		if c.proto > server.ProtoSession {
			c.proto = server.ProtoSession
		}
		if err := server.WriteFrame(conn, server.HelloAck{Proto: c.proto, Token: opts.Token}); err != nil {
			conn.Close()
			return nil, err
		}
		c.binary = true
	}
	go c.readLoop(br)
	return c, nil
}

// replyChans pools the one-shot reply channels so a steady-state Submit
// allocates nothing for correlation. A channel is only returned to the
// pool on the normal receive path — channels closed by a dying readLoop
// are dropped.
var replyChans = sync.Pool{New: func() any { return make(chan server.Reply, 1) }}

// Submit sends one query for the named model and blocks for its reply.
// The returned error is a transport failure; a serving failure or
// front-door rejection arrives in Reply.Err (compare against
// QueueFullMsg, RateLimitedMsg, UnauthorizedMsg). On success
// Reply.ServiceMS carries the end-to-end serving latency in model
// milliseconds.
func (c *Client) Submit(model string, batch int) (server.Reply, error) {
	return c.SubmitOpts(model, batch, SubmitOptions{})
}

// SubmitOpts is Submit with a session key and deadline. A front door
// older than ProtoSession silently drops both (they are hints, not
// correctness constraints).
func (c *Client) SubmitOpts(model string, batch int, opts SubmitOptions) (server.Reply, error) {
	id := c.nextID.Add(1)
	ch := replyChans.Get().(chan server.Reply)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		replyChans.Put(ch)
		return server.Reply{}, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	req := server.Request{ID: id, Model: model, Batch: batch}
	if opts.Session != "" || opts.Deadline > 0 {
		// Only a ProtoSession peer decodes the session request kind; an
		// older binary peer gets a plain request instead.
		if !c.binary || c.proto >= server.ProtoSession {
			req.Session = opts.Session
			req.DeadlineMS = int64(opts.Deadline / time.Millisecond)
		}
	}
	c.wmu.Lock()
	var werr error
	if c.binary {
		frame, err := server.AppendRequestFrame(c.wbuf[:0], req)
		if err == nil {
			c.wbuf = frame
			_, werr = c.conn.Write(frame)
		} else {
			werr = err
		}
	} else {
		werr = server.WriteFrame(c.conn, req)
	}
	c.wmu.Unlock()
	if werr != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		replyChans.Put(ch)
		return server.Reply{}, werr
	}

	rep, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = errors.New("ingress: connection closed")
		}
		return server.Reply{}, err
	}
	replyChans.Put(ch)
	return rep, nil
}

// readLoop correlates replies to waiting Submit callers. On a terminal
// error every pending channel is closed, failing its caller.
func (c *Client) readLoop(br *bufio.Reader) {
	var rbuf []byte
	for {
		var rep server.Reply
		var err error
		if c.binary {
			var p []byte
			if p, err = server.ReadRawFrame(br, rbuf); err == nil {
				rbuf = p[:0]
				rep, err = server.DecodeReplyFrame(p)
			}
		} else {
			err = server.ReadFrame(br, &rep)
		}
		if err != nil {
			c.mu.Lock()
			c.err = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch := c.pending[rep.ID]
		delete(c.pending, rep.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- rep
		}
	}
}

// Close tears the connection down; pending Submits fail.
func (c *Client) Close() error { return c.conn.Close() }
