package ingress

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"kairos/internal/server"
)

// Client speaks the front-end's TCP protocol: one connection, concurrent
// Submit callers, O(1) reply correlation. Dial negotiates the binary
// codec from the Hello banner exactly like the controller does against an
// instance server; a legacy (JSON-only) front-end degrades transparently.
type Client struct {
	conn   net.Conn
	binary bool
	nextID atomic.Int64

	wmu  sync.Mutex
	wbuf []byte

	mu      sync.Mutex
	pending map[int64]chan server.Reply
	err     error // terminal read-loop error; set before pending close
}

// Dial connects to a front-end's TCP endpoint.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(conn, 16<<10)
	var hello server.Hello
	if err := server.ReadFrame(br, &hello); err != nil {
		conn.Close()
		return nil, err
	}
	c := &Client{conn: conn, pending: make(map[int64]chan server.Reply)}
	if hello.Proto >= server.ProtoBinary {
		if err := server.WriteFrame(conn, server.HelloAck{Proto: server.ProtoBinary}); err != nil {
			conn.Close()
			return nil, err
		}
		c.binary = true
	}
	go c.readLoop(br)
	return c, nil
}

// Submit sends one query for the named model and blocks for its reply.
// The returned error is a transport failure; a serving failure or
// backpressure NACK arrives in Reply.Err (compare against QueueFullMsg).
// On success Reply.ServiceMS carries the end-to-end serving latency in
// model milliseconds.
func (c *Client) Submit(model string, batch int) (server.Reply, error) {
	id := c.nextID.Add(1)
	ch := make(chan server.Reply, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return server.Reply{}, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	var werr error
	if c.binary {
		frame, err := server.AppendRequestFrame(c.wbuf[:0], server.Request{ID: id, Model: model, Batch: batch})
		if err == nil {
			c.wbuf = frame
			_, werr = c.conn.Write(frame)
		} else {
			werr = err
		}
	} else {
		werr = server.WriteFrame(c.conn, server.Request{ID: id, Model: model, Batch: batch})
	}
	c.wmu.Unlock()
	if werr != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return server.Reply{}, werr
	}

	rep, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = errors.New("ingress: connection closed")
		}
		return server.Reply{}, err
	}
	return rep, nil
}

// readLoop correlates replies to waiting Submit callers. On a terminal
// error every pending channel is closed, failing its caller.
func (c *Client) readLoop(br *bufio.Reader) {
	var rbuf []byte
	for {
		var rep server.Reply
		var err error
		if c.binary {
			var p []byte
			if p, err = server.ReadRawFrame(br, rbuf); err == nil {
				rbuf = p[:0]
				rep, err = server.DecodeReplyFrame(p)
			}
		} else {
			err = server.ReadFrame(br, &rep)
		}
		if err != nil {
			c.mu.Lock()
			c.err = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch := c.pending[rep.ID]
		delete(c.pending, rep.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- rep
		}
	}
}

// Close tears the connection down; pending Submits fail.
func (c *Client) Close() error { return c.conn.Close() }
