package ingress

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"kairos/internal/obs"
	"kairos/internal/server"
)

// The HTTP transport is served by a hand-rolled HTTP/1.1 loop instead of
// net/http: the stock server costs ~90 allocations per request (request
// and header objects, context, response bookkeeping), which is two
// orders of magnitude over the front door's per-submit budget. The loop
// speaks exactly what the front door needs — identity-encoded bodies,
// keep-alive, Expect: 100-continue — and answers anything else with a
// clean close. The exported HTTPHandler remains a full net/http handler
// for callers that mount the front door under their own mux.

// readHeaderTimeout bounds how long one request (line, headers, and
// body) may trickle in — the slowloris guard. It also caps keep-alive
// idle time, which is what closes parked connections at shutdown.
const readHeaderTimeout = 10 * time.Second

// maxSubmitBody bounds a /submit body, mirroring the binary transport's
// MaxFrame: a front door should never buffer megabytes for a request
// whose real payload is a model name and a batch size.
const maxSubmitBody = server.MaxFrame

// httpCtx is the pooled per-connection scratch: the buffered reader and
// every byte slice a request touches. A steady-state request allocates
// nothing — it reuses these across requests and connections.
type httpCtx struct {
	br     *bufio.Reader
	body   []byte // request body
	rep    []byte // encoded submitReply
	out    []byte // full response (status line + headers + body)
	tok    []byte // bearer token copy (survives header-buffer reuse)
	fields submitFields
}

var httpCtxPool = sync.Pool{New: func() any {
	return &httpCtx{br: bufio.NewReaderSize(nil, 16<<10)}
}}

// routes of the hand-rolled loop; resolved from the request line before
// the path's backing buffer is invalidated by further reads.
const (
	routeSubmit = iota
	routeStats
	routeShardz
	routeHealthz
	routeUnknown
)

func (s *Server) serveHTTPConn(conn net.Conn, sh *shard) {
	defer conn.Close()
	defer s.tracker.Track(conn)()
	hc := httpCtxPool.Get().(*httpCtx)
	hc.br.Reset(conn)
	defer func() {
		hc.br.Reset(nil) // don't pin the conn (or its TLS state) in the pool
		httpCtxPool.Put(hc)
	}()
	for {
		select {
		case <-s.closed:
			return
		default:
		}
		conn.SetReadDeadline(time.Now().Add(readHeaderTimeout))
		if !s.serveHTTPRequest(conn, sh, hc) {
			return
		}
	}
}

// serveHTTPRequest reads and answers one request; false closes the
// connection (read error, protocol violation, or Connection: close).
func (s *Server) serveHTTPRequest(conn net.Conn, sh *shard, hc *httpCtx) bool {
	t0 := time.Now()
	line, err := readHTTPLine(hc.br)
	if err != nil {
		return false
	}
	sp1 := bytes.IndexByte(line, ' ')
	if sp1 < 0 {
		return false
	}
	method := line[:sp1]
	rest := line[sp1+1:]
	sp2 := bytes.IndexByte(rest, ' ')
	if sp2 < 0 {
		return false
	}
	path := rest[:sp2]
	keepAlive := bytes.Equal(rest[sp2+1:], http11)
	isPost := bytes.Equal(method, []byte("POST"))
	route := routeUnknown
	switch {
	case bytes.Equal(path, []byte("/submit")):
		route = routeSubmit
	case bytes.Equal(path, []byte("/stats")):
		route = routeStats
	case bytes.Equal(path, []byte("/shardz")):
		route = routeShardz
	case bytes.Equal(path, []byte("/healthz")):
		route = routeHealthz
	}
	// Headers. line/path alias the bufio buffer, so the route and method
	// were latched above before these reads invalidate them.
	var contentLen int64 = -1
	var chunked, expect100 bool
	hc.tok = hc.tok[:0]
	hasTok := false
	for {
		h, err := readHTTPLine(hc.br)
		if err != nil {
			return false
		}
		if len(h) == 0 {
			break
		}
		colon := bytes.IndexByte(h, ':')
		if colon < 0 {
			continue
		}
		key, val := h[:colon], trimOWS(h[colon+1:])
		switch {
		case asciiEqualFold(key, "content-length"):
			n, err := strconv.ParseInt(string(val), 10, 64)
			if err != nil || n < 0 {
				return false
			}
			contentLen = n
		case asciiEqualFold(key, "authorization"):
			if len(val) > 7 && asciiEqualFold(val[:7], "bearer ") {
				hc.tok = append(hc.tok[:0], trimOWS(val[7:])...)
				hasTok = true
			}
		case asciiEqualFold(key, "transfer-encoding"):
			chunked = true
		case asciiEqualFold(key, "expect"):
			expect100 = asciiEqualFold(val, "100-continue")
		case asciiEqualFold(key, "connection"):
			if asciiEqualFold(val, "close") {
				keepAlive = false
			}
		}
	}
	if chunked {
		// Identity bodies only; a chunked /submit is outside the fast
		// path's contract and net/http clients only chunk unknown lengths.
		s.writeHTTPError(conn, hc, http.StatusNotImplemented, "ingress: chunked bodies not supported")
		return false
	}
	if route != routeSubmit || !isPost {
		// Bodyless routes; a body would desync the keep-alive stream, so
		// skip it when one is declared.
		if contentLen > 0 {
			if contentLen > maxSubmitBody {
				return false
			}
			if _, err := hc.br.Discard(int(contentLen)); err != nil {
				return false
			}
		}
		return s.serveHTTPCold(conn, hc, route, isPost, keepAlive)
	}
	if contentLen < 0 {
		s.writeHTTPError(conn, hc, http.StatusLengthRequired, "ingress: length required")
		return false
	}
	if contentLen > maxSubmitBody {
		// Satellite of MaxFrame: don't buffer an oversized body at all.
		s.writeHTTPError(conn, hc, http.StatusRequestEntityTooLarge, "ingress: body too large")
		return false
	}
	if expect100 {
		conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		if _, err := conn.Write(continue100); err != nil {
			return false
		}
	}
	if cap(hc.body) < int(contentLen) {
		hc.body = make([]byte, contentLen)
	}
	hc.body = hc.body[:contentLen]
	if _, err := io.ReadFull(hc.br, hc.body); err != nil {
		return false
	}
	var tok []byte
	if hasTok {
		tok = hc.tok
	}
	status, retry := s.submitHTTP(sh, hc, tok, t0)
	return s.writeHTTPResponse(conn, hc, status, hc.rep, retry, keepAlive) && keepAlive
}

// submitHTTP runs the admission pipeline for one parsed /submit body and
// encodes the reply into hc.rep. The check order matches the TCP path:
// auth → model → rate limit → queue bound.
func (s *Server) submitHTTP(sh *shard, hc *httpCtx, tok []byte, t0 time.Time) (status int, retryAfter bool) {
	f := &hc.fields
	if err := parseSubmitBody(hc.body, f); err != nil {
		hc.rep = appendSubmitReply(hc.rep[:0], nil, 0, 0, "", "ingress: bad request: "+err.Error())
		return http.StatusBadRequest, false
	}
	var bucket *clientBucket
	if s.auth != nil {
		var ok bool
		if bucket, ok = s.auth.lookup(tok); !ok {
			s.unrouted.Add(1)
			hc.rep = appendSubmitReply(hc.rep[:0], f.model, f.batch, 0, "", UnauthorizedMsg)
			return http.StatusUnauthorized, false
		}
	}
	mf := s.models[string(f.model)]
	if mf == nil {
		s.unrouted.Add(1)
		hc.rep = appendSubmitReply(hc.rep[:0], f.model, f.batch, 0, "",
			fmt.Sprintf("ingress: unknown model %q (serving %v)", f.model, s.order))
		return http.StatusBadRequest, false
	}
	fs := &mf.shards[sh.id]
	if s.auth != nil && s.auth.limited(bucket) {
		fs.limited.Add(1)
		hc.rep = appendSubmitReply(hc.rep[:0], f.model, f.batch, 0, "", RateLimitedMsg)
		return http.StatusTooManyRequests, true
	}
	if !fs.admit(s.perShard) {
		fs.rejected.Add(1)
		hc.rep = appendSubmitReply(hc.rep[:0], f.model, f.batch, 0, "", QueueFullMsg)
		return http.StatusTooManyRequests, true
	}
	fs.submitted.Add(1)
	fs.http.Add(1)
	shardID := uint32(sh.id)
	mf.mo.RecordShard(obs.StageAdmit, shardID, time.Since(t0))
	res := s.ctrl.SubmitWaitOpts(mf.name, int(f.batch), submitOpts(f.session, f.deadlineMS, t0))
	if res.Err != nil {
		fs.failed.Add(1)
	} else {
		fs.completed.Add(1)
	}
	fs.queue.Add(-1)
	mf.mo.RecordShard(obs.StageIngress, shardID, time.Since(t0))
	if res.Err != nil {
		hc.rep = appendSubmitReply(hc.rep[:0], f.model, f.batch, 0, "", res.Err.Error())
		return http.StatusBadGateway, false
	}
	hc.rep = appendSubmitReply(hc.rep[:0], f.model, f.batch, res.LatencyMS, res.Instance, "")
	return http.StatusOK, false
}

// serveHTTPCold answers the non-hot routes; allocation is fine here.
func (s *Server) serveHTTPCold(conn net.Conn, hc *httpCtx, route int, isPost, keepAlive bool) bool {
	var status int
	var body []byte
	switch {
	case route == routeSubmit: // non-POST
		status = http.StatusMethodNotAllowed
		body, _ = json.Marshal(submitReply{Error: "ingress: POST only"})
	case isPost, route == routeUnknown:
		status = http.StatusNotFound
		body = []byte(`{"error":"ingress: not found"}`)
	case route == routeStats:
		status = http.StatusOK
		body, _ = json.Marshal(s.Stats())
	case route == routeShardz:
		status = http.StatusOK
		body, _ = json.Marshal(s.ShardStats())
	default: // routeHealthz
		status = http.StatusOK
		body, _ = json.Marshal(map[string]any{"ok": true, "models": s.order})
	}
	return s.writeHTTPResponse(conn, hc, status, body, false, keepAlive) && keepAlive
}

var (
	http11      = []byte("HTTP/1.1")
	continue100 = []byte("HTTP/1.1 100 Continue\r\n\r\n")
)

// statusLines preformats every status the front door emits.
var statusLines = map[int]string{
	http.StatusOK:                    "HTTP/1.1 200 OK\r\n",
	http.StatusBadRequest:            "HTTP/1.1 400 Bad Request\r\n",
	http.StatusUnauthorized:          "HTTP/1.1 401 Unauthorized\r\n",
	http.StatusNotFound:              "HTTP/1.1 404 Not Found\r\n",
	http.StatusMethodNotAllowed:      "HTTP/1.1 405 Method Not Allowed\r\n",
	http.StatusLengthRequired:        "HTTP/1.1 411 Length Required\r\n",
	http.StatusRequestEntityTooLarge: "HTTP/1.1 413 Request Entity Too Large\r\n",
	http.StatusTooManyRequests:       "HTTP/1.1 429 Too Many Requests\r\n",
	http.StatusNotImplemented:        "HTTP/1.1 501 Not Implemented\r\n",
	http.StatusBadGateway:            "HTTP/1.1 502 Bad Gateway\r\n",
}

// writeHTTPResponse assembles the full response in hc.out and writes it
// with one syscall. false means the write failed (close the conn).
func (s *Server) writeHTTPResponse(conn net.Conn, hc *httpCtx, status int, body []byte, retryAfter, keepAlive bool) bool {
	sl, ok := statusLines[status]
	if !ok {
		sl = "HTTP/1.1 500 Internal Server Error\r\n"
	}
	hc.out = append(hc.out[:0], sl...)
	hc.out = append(hc.out, "Content-Type: application/json\r\nContent-Length: "...)
	hc.out = strconv.AppendInt(hc.out, int64(len(body)), 10)
	hc.out = append(hc.out, '\r', '\n')
	if retryAfter {
		hc.out = append(hc.out, "Retry-After: 1\r\n"...)
	}
	if !keepAlive {
		hc.out = append(hc.out, "Connection: close\r\n"...)
	}
	hc.out = append(hc.out, '\r', '\n')
	hc.out = append(hc.out, body...)
	conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	_, err := conn.Write(hc.out)
	return err == nil
}

// writeHTTPError answers a protocol-level failure (always closes).
func (s *Server) writeHTTPError(conn net.Conn, hc *httpCtx, status int, msg string) {
	hc.rep = appendSubmitReply(hc.rep[:0], nil, 0, 0, "", msg)
	s.writeHTTPResponse(conn, hc, status, hc.rep, false, false)
}

// readHTTPLine returns one CRLF-terminated line without its terminator,
// aliasing the reader's buffer. A line longer than the buffer is a
// protocol violation (16KB of request line or one header).
func readHTTPLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	n := len(line) - 1
	if n > 0 && line[n-1] == '\r' {
		n--
	}
	return line[:n], nil
}

// trimOWS strips optional whitespace around a header value.
func trimOWS(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}

// asciiEqualFold reports b == s ignoring ASCII case, without allocating.
func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c, d := b[i], s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if 'A' <= d && d <= 'Z' {
			d += 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}

// HTTPHandler returns the JSON endpoint's routes as a net/http handler
// — POST /submit (one query, synchronous), GET /stats, GET /shardz, GET
// /healthz — for callers that mount the front-end under their own mux.
// New's HTTPAddr endpoint speaks the same wire shape through the
// allocation-free loop above; this handler trades those savings for
// net/http composability.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v)
	}
	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, submitReply{Error: "ingress: POST only"})
			return
		}
		var req submitRequest
		body := http.MaxBytesReader(w, r.Body, maxSubmitBody)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, submitReply{Error: "ingress: bad request: " + err.Error()})
			return
		}
		var bucket *clientBucket
		if s.auth != nil {
			tok, ok := bearerToken(r.Header.Get("Authorization"))
			if ok {
				bucket, ok = s.auth.lookupString(tok)
			}
			if !ok {
				s.unrouted.Add(1)
				writeJSON(w, http.StatusUnauthorized, submitReply{Model: req.Model, Batch: req.Batch, Error: UnauthorizedMsg})
				return
			}
		}
		mf := s.models[req.Model]
		if mf == nil {
			s.unrouted.Add(1)
			writeJSON(w, http.StatusBadRequest, submitReply{
				Model: req.Model, Batch: req.Batch,
				Error: fmt.Sprintf("ingress: unknown model %q (serving %v)", req.Model, s.order),
			})
			return
		}
		fs := &mf.shards[0]
		if s.auth != nil && s.auth.limited(bucket) {
			fs.limited.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, submitReply{Model: req.Model, Batch: req.Batch, Error: RateLimitedMsg})
			return
		}
		if !fs.admit(s.perShard) {
			fs.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, submitReply{Model: req.Model, Batch: req.Batch, Error: QueueFullMsg})
			return
		}
		fs.submitted.Add(1)
		fs.http.Add(1)
		mf.mo.Record(obs.StageAdmit, time.Since(t0))
		res := s.ctrl.SubmitWaitOpts(req.Model, req.Batch, submitOpts([]byte(req.Session), req.DeadlineMS, t0))
		if res.Err != nil {
			fs.failed.Add(1)
		} else {
			fs.completed.Add(1)
		}
		fs.queue.Add(-1)
		mf.mo.Record(obs.StageIngress, time.Since(t0))
		if res.Err != nil {
			writeJSON(w, http.StatusBadGateway, submitReply{Model: req.Model, Batch: req.Batch, Error: res.Err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, submitReply{
			Model: req.Model, Batch: req.Batch,
			LatencyMS: res.LatencyMS, Instance: res.Instance,
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/shardz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.ShardStats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "models": s.order})
	})
	return mux
}

// bearerToken extracts the token from an Authorization header value.
func bearerToken(v string) (string, bool) {
	const prefix = "Bearer "
	if len(v) > len(prefix) && asciiEqualFold([]byte(v[:len(prefix)]), prefix) {
		return v[len(prefix):], true
	}
	return "", false
}
