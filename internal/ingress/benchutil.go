package ingress

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"

	"kairos/internal/server"
)

// This file is the shared support for the ingress hot-path benchmarks:
// the in-package go-test benchmarks and cmd/kairos-microbench (which
// writes the BENCH_micro.json trajectory CI tracks) must measure the same
// workload, so the fixture and the per-transport worker loops live here
// once.

// BenchIngress is the canonical ingress benchmark fixture: the server
// package's bench cluster (2 models x 2 loopback instances each,
// LeastBacklog policy) behind a front-end serving both transports on
// loopback.
type BenchIngress struct {
	Cluster *server.BenchCluster
	Ing     *Server

	httpClient *http.Client
	httpURL    string

	mu      sync.Mutex
	clients []*Client
}

// StartBenchIngress boots the fixture. scale compresses emulated service
// time (1e-6 makes the front-end + controller path the measured cost).
func StartBenchIngress(scale float64) (*BenchIngress, error) {
	cluster, err := server.StartBenchCluster(scale, nil)
	if err != nil {
		return nil, err
	}
	ing, err := New(cluster.Ctrl, Options{
		HTTPAddr: "127.0.0.1:0",
		TCPAddr:  "127.0.0.1:0",
		MaxQueue: 4096,
	})
	if err != nil {
		cluster.Close()
		return nil, err
	}
	return &BenchIngress{
		Cluster: cluster,
		Ing:     ing,
		httpClient: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 512,
		}},
		httpURL: "http://" + ing.HTTPAddr() + "/submit",
	}, nil
}

// Close tears the front-end, controller, and servers down.
func (b *BenchIngress) Close() {
	b.mu.Lock()
	clients := b.clients
	b.clients = nil
	b.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
	b.Ing.Close()
	b.Cluster.Close()
}

// TCPWorker is one closed-loop binary-TCP submitter on its own
// connection, alternating models by worker index; next() keeps it running
// (testing.PB's Next, typically).
func (b *BenchIngress) TCPWorker(w int64, next func() bool) error {
	cli, err := Dial(b.Ing.TCPAddr())
	if err != nil {
		return err
	}
	b.mu.Lock()
	b.clients = append(b.clients, cli)
	b.mu.Unlock()
	model := b.Cluster.ModelNames[w%2]
	batch := 1 + int(w%8)*20
	for next() {
		rep, err := cli.Submit(model, batch)
		if err != nil {
			return err
		}
		if rep.Err != "" {
			return fmt.Errorf("ingress bench: %s", rep.Err)
		}
	}
	return nil
}

// HTTPWorker is one closed-loop HTTP submitter over the fixture's shared
// keep-alive transport.
func (b *BenchIngress) HTTPWorker(w int64, next func() bool) error {
	model := b.Cluster.ModelNames[w%2]
	batch := 1 + int(w%8)*20
	body := []byte(fmt.Sprintf(`{"model":%q,"batch":%d}`, model, batch))
	for next() {
		resp, err := b.httpClient.Post(b.httpURL, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("ingress bench: HTTP %d", resp.StatusCode)
		}
	}
	return nil
}
