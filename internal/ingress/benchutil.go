package ingress

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"

	"kairos/internal/server"
)

// This file is the shared support for the ingress hot-path benchmarks:
// the in-package go-test benchmarks and cmd/kairos-microbench (which
// writes the BENCH_micro.json trajectory CI tracks) must measure the same
// workload, so the fixture and the per-transport worker loops live here
// once.

// BenchIngress is the canonical ingress benchmark fixture: the server
// package's bench cluster (2 models x 2 loopback instances each,
// LeastBacklog policy) behind a front-end serving both transports on
// loopback.
type BenchIngress struct {
	Cluster *server.BenchCluster
	Ing     *Server

	mu      sync.Mutex
	clients []io.Closer
}

// StartBenchIngress boots the unsharded fixture. scale compresses
// emulated service time (1e-6 makes the front-end + controller path the
// measured cost).
func StartBenchIngress(scale float64) (*BenchIngress, error) {
	return StartBenchIngressSharded(scale, 0)
}

// StartBenchIngressSharded boots the fixture with a sharded front door.
func StartBenchIngressSharded(scale float64, shards int) (*BenchIngress, error) {
	cluster, err := server.StartBenchCluster(scale, nil)
	if err != nil {
		return nil, err
	}
	ing, err := New(cluster.Ctrl, Options{
		HTTPAddr: "127.0.0.1:0",
		TCPAddr:  "127.0.0.1:0",
		MaxQueue: 4096,
		Shards:   shards,
	})
	if err != nil {
		cluster.Close()
		return nil, err
	}
	return &BenchIngress{Cluster: cluster, Ing: ing}, nil
}

// Close tears the front-end, controller, and servers down.
func (b *BenchIngress) Close() {
	b.mu.Lock()
	clients := b.clients
	b.clients = nil
	b.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
	b.Ing.Close()
	b.Cluster.Close()
}

func (b *BenchIngress) track(c io.Closer) {
	b.mu.Lock()
	b.clients = append(b.clients, c)
	b.mu.Unlock()
}

// TCPWorker is one closed-loop binary-TCP submitter on its own
// connection, alternating models by worker index; next() keeps it running
// (testing.PB's Next, typically).
func (b *BenchIngress) TCPWorker(w int64, next func() bool) error {
	cli, err := Dial(b.Ing.TCPAddr())
	if err != nil {
		return err
	}
	b.track(cli)
	model := b.Cluster.ModelNames[w%2]
	batch := 1 + int(w%8)*20
	for next() {
		rep, err := cli.Submit(model, batch)
		if err != nil {
			return err
		}
		if rep.Err != "" {
			return fmt.Errorf("ingress bench: %s", rep.Err)
		}
	}
	return nil
}

// HTTPWorker is one closed-loop HTTP submitter on its own keep-alive
// connection. It speaks raw HTTP/1.1 over a preformatted request —
// net/http's client costs ~30 allocations per request, which would
// drown the front door's allocation budget in client-side noise.
func (b *BenchIngress) HTTPWorker(w int64, next func() bool) error {
	conn, err := net.Dial("tcp", b.Ing.HTTPAddr())
	if err != nil {
		return err
	}
	b.track(conn)
	model := b.Cluster.ModelNames[w%2]
	batch := 1 + int(w%8)*20
	body := fmt.Sprintf(`{"model":%q,"batch":%d}`, model, batch)
	req := []byte(fmt.Sprintf(
		"POST /submit HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		len(body), body))
	br := bufio.NewReaderSize(conn, 16<<10)
	for next() {
		if _, err := conn.Write(req); err != nil {
			return err
		}
		status, clen, err := readBenchResponse(br)
		if err != nil {
			return err
		}
		if _, err := br.Discard(clen); err != nil {
			return err
		}
		if status != 200 {
			return fmt.Errorf("ingress bench: HTTP %d", status)
		}
	}
	return nil
}

// readBenchResponse parses a response's status code and Content-Length,
// leaving the reader positioned at the body.
func readBenchResponse(br *bufio.Reader) (status, clen int, err error) {
	line, err := readHTTPLine(br)
	if err != nil {
		return 0, 0, err
	}
	sp := bytes.IndexByte(line, ' ')
	if sp < 0 || len(line) < sp+4 {
		return 0, 0, fmt.Errorf("ingress bench: bad status line %q", line)
	}
	status, err = strconv.Atoi(string(line[sp+1 : sp+4]))
	if err != nil {
		return 0, 0, err
	}
	clen = -1
	for {
		h, err := readHTTPLine(br)
		if err != nil {
			return 0, 0, err
		}
		if len(h) == 0 {
			break
		}
		colon := bytes.IndexByte(h, ':')
		if colon > 0 && asciiEqualFold(h[:colon], "content-length") {
			clen, err = strconv.Atoi(string(trimOWS(h[colon+1:])))
			if err != nil {
				return 0, 0, err
			}
		}
	}
	if clen < 0 {
		return 0, 0, fmt.Errorf("ingress bench: response without content length")
	}
	return status, clen, nil
}
