package ingress

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/server"
)

// startFront boots one NCF instance + controller + front-end for the
// unit tests. maxQueue 0 uses the default.
func startFront(t *testing.T, maxQueue int, scale float64) (*Server, *server.Controller) {
	t.Helper()
	m := models.MustByName("NCF")
	srv, err := server.NewInstanceServer(cloud.R5nLarge.Name, m, scale)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ctrl, err := server.NewController(m.Name, &server.LeastBacklog{MaxPending: 1 << 20}, scale, m.Latency, []string{srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctrl.Close)
	ing, err := New(ctrl, Options{HTTPAddr: "127.0.0.1:0", TCPAddr: "127.0.0.1:0", MaxQueue: maxQueue})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ing.Close)
	return ing, ctrl
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// postSubmit POSTs one query and decodes the reply.
func postSubmit(t *testing.T, addr, model string, batch int) (int, submitReply) {
	t.Helper()
	body, _ := json.Marshal(submitRequest{Model: model, Batch: batch})
	resp, err := http.Post("http://"+addr+"/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep submitReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, rep
}

func TestIngressValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(nil, Options{HTTPAddr: "127.0.0.1:0"}); err == nil {
		t.Fatal("nil controller must error")
	}
	m := models.MustByName("NCF")
	srv, err := server.NewInstanceServer(cloud.R5nLarge.Name, m, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctrl, err := server.NewController(m.Name, &server.LeastBacklog{}, 1e-6, m.Latency, []string{srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if _, err := New(ctrl, Options{}); err == nil {
		t.Fatal("no endpoints must error")
	}
	if _, err := New(ctrl, Options{HTTPAddr: "127.0.0.1:0", MaxQueue: -1}); err == nil {
		t.Fatal("negative queue bound must error")
	}
}

// TestIngressHTTPSubmit: external HTTP queries route to the model, serve,
// and the front-end counters merge into the controller's Stats snapshot
// (the shared observability surface).
func TestIngressHTTPSubmit(t *testing.T) {
	t.Parallel()
	ing, ctrl := startFront(t, 0, 1e-6)
	for i := 0; i < 5; i++ {
		code, rep := postSubmit(t, ing.HTTPAddr(), "NCF", 10+i)
		if code != http.StatusOK || rep.Error != "" {
			t.Fatalf("submit %d: code=%d rep=%+v", i, code, rep)
		}
		if rep.LatencyMS <= 0 || rep.Instance == "" {
			t.Fatalf("reply missing serving detail: %+v", rep)
		}
	}
	// Unknown model and malformed batch are clean client errors.
	if code, rep := postSubmit(t, ing.HTTPAddr(), "nope", 10); code != http.StatusBadRequest || rep.Error == "" {
		t.Fatalf("unknown model: code=%d rep=%+v", code, rep)
	}
	if code, rep := postSubmit(t, ing.HTTPAddr(), "NCF", -3); code != http.StatusBadGateway || rep.Error == "" {
		t.Fatalf("bad batch must surface the serving error: code=%d rep=%+v", code, rep)
	}

	st := ctrl.Stats()
	is, ok := st.Ingress["NCF"]
	if !ok {
		t.Fatalf("controller stats missing the ingress section: %+v", st)
	}
	// 5 served + 1 failed (bad batch); the unknown model never admitted.
	if is.Submitted != 6 || is.HTTP != 6 || is.TCP != 0 || is.Completed != 5 || is.Failed != 1 || is.Queue != 0 {
		t.Fatalf("ingress stats = %+v", is)
	}
	// /stats agrees.
	resp, err := http.Get("http://" + ing.HTTPAddr() + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var viaHTTP map[string]server.IngressStats
	if err := json.NewDecoder(resp.Body).Decode(&viaHTTP); err != nil {
		t.Fatal(err)
	}
	if viaHTTP["NCF"] != is {
		t.Fatalf("/stats %+v disagrees with controller merge %+v", viaHTTP["NCF"], is)
	}
}

// TestIngressTCPSubmit: the binary client round-trips queries through the
// negotiated codec, and rejections arrive as NACK replies.
func TestIngressTCPSubmit(t *testing.T) {
	t.Parallel()
	ing, ctrl := startFront(t, 0, 1e-6)
	cli, err := Dial(ing.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(batch int) {
			defer wg.Done()
			rep, err := cli.Submit("NCF", batch)
			if err != nil {
				errs <- err
				return
			}
			if rep.Err != "" {
				errs <- fmt.Errorf("serving error: %s", rep.Err)
				return
			}
			if rep.ServiceMS <= 0 {
				errs <- fmt.Errorf("reply without latency: %+v", rep)
			}
		}(1 + i*10)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if rep, err := cli.Submit("nope", 10); err != nil || !strings.Contains(rep.Err, "unknown model") {
		t.Fatalf("unknown model over TCP: rep=%+v err=%v", rep, err)
	}
	is := ctrl.Stats().Ingress["NCF"]
	if is.TCP != 20 || is.Completed != 20 || is.Failed != 0 {
		t.Fatalf("ingress stats = %+v", is)
	}
}

// TestIngressBackpressure: with a queue bound of 1 and a slow instance,
// the second concurrent query is pushed back — HTTP 429 on one transport,
// a QueueFullMsg NACK on the other — and counted as rejected, never
// submitted.
func TestIngressBackpressure(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	// ~150ms per query: long enough that the occupying query provably
	// overlaps the rejected ones.
	scale := 150 / m.Latency(cloud.R5nLarge.Name, 500)
	ing, ctrl := startFront(t, 1, scale)

	occupied := make(chan submitReply, 1)
	go func() {
		_, rep := postSubmit(t, ing.HTTPAddr(), "NCF", 500)
		occupied <- rep
	}()
	// Wait until the slot is provably held.
	waitFor(t, "the occupying query", func() bool { return ctrl.Stats().Ingress["NCF"].Queue > 0 })

	if code, rep := postSubmit(t, ing.HTTPAddr(), "NCF", 10); code != http.StatusTooManyRequests || rep.Error != QueueFullMsg {
		t.Fatalf("overload must 429 with %q: code=%d rep=%+v", QueueFullMsg, code, rep)
	}
	cli, err := Dial(ing.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if rep, err := cli.Submit("NCF", 10); err != nil || rep.Err != QueueFullMsg {
		t.Fatalf("overload must NACK with %q: rep=%+v err=%v", QueueFullMsg, rep, err)
	}

	if rep := <-occupied; rep.Error != "" {
		t.Fatalf("occupying query failed: %+v", rep)
	}
	is := ctrl.Stats().Ingress["NCF"]
	if is.Rejected != 2 || is.Submitted != 1 || is.Completed != 1 {
		t.Fatalf("ingress stats = %+v", is)
	}
	// The queue drained; new queries flow again.
	if code, rep := postSubmit(t, ing.HTTPAddr(), "NCF", 10); code != http.StatusOK || rep.Error != "" {
		t.Fatalf("post-drain submit: code=%d rep=%+v", code, rep)
	}
}

// TestIngressCloseDeliversInflightReplies: Close while TCP queries are in
// flight must deliver every admitted reply before the connection goes
// away — an orderly front-end shutdown drops nothing.
func TestIngressCloseDeliversInflightReplies(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	scale := 100 / m.Latency(cloud.R5nLarge.Name, 500)
	ing, ctrl := startFront(t, 0, scale)
	cli, err := Dial(ing.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := cli.Submit("NCF", 500)
			if err != nil {
				errs <- err
				return
			}
			if rep.Err != "" {
				errs <- fmt.Errorf("serving error: %s", rep.Err)
			}
		}()
	}
	waitFor(t, "admitted in-flight queries", func() bool { return ctrl.Stats().Ingress["NCF"].Queue > 0 })
	ing.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("in-flight query lost across Close: %v", err)
	}
}
