// Package ingress is the external query front-end of the serving path:
// it accepts traffic the system did not generate itself and feeds it into
// the central controller with per-model routing. Two transports share one
// admission path: an HTTP endpoint speaking JSON (POST /submit) and a raw
// TCP endpoint speaking the controller's negotiated binary wire codec
// (the same Hello/HelloAck handshake an instance server performs, so one
// codec serves the whole system). Overload pushes back instead of piling
// up: each model has a bounded admission queue, and a submission beyond
// the bound is answered immediately with HTTP 429 or a binary NACK reply
// — never silently dropped. Per-model ingress accounting is merged into
// the controller's Stats snapshot (server.SetStatsAugmenter), so
// kairosctl and the autopilot admin /metrics see front-end and serving
// counters on one surface.
package ingress

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kairos/internal/obs"
	"kairos/internal/server"
)

// DefaultMaxQueue bounds each model's admitted-but-unfinished queries
// when Options.MaxQueue is zero.
const DefaultMaxQueue = 1024

// QueueFullMsg is the exact error string a backpressure rejection
// carries, on both transports (the HTTP 429 body's "error" field and the
// binary NACK reply's Err). Clients match it to distinguish overload from
// serving failures.
const QueueFullMsg = "ingress: queue full"

// Options configure a front-end. At least one of HTTPAddr and TCPAddr
// must be set.
type Options struct {
	// HTTPAddr binds the JSON endpoint ("" disables; "127.0.0.1:0" for an
	// ephemeral port). Routes: POST /submit, GET /stats, GET /healthz.
	HTTPAddr string
	// TCPAddr binds the binary endpoint ("" disables).
	TCPAddr string
	// MaxQueue bounds each model's admitted-but-unfinished queries;
	// submissions beyond it are rejected with 429/NACK. 0 uses
	// DefaultMaxQueue.
	MaxQueue int
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// modelFront is one served model's admission state and accounting. All
// fields are atomic: the hot path never takes a lock.
type modelFront struct {
	queue     atomic.Int64 // admitted-but-unfinished
	submitted atomic.Int64
	http      atomic.Int64
	tcp       atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	// mo is the model's flight-recorder shard (shared with the
	// controller): the front-end stamps StageAdmit and StageIngress.
	mo *obs.ModelObs
}

// admit reserves one slot in the model's bounded queue; false rejects.
func (m *modelFront) admit(max int64) bool {
	for {
		cur := m.queue.Load()
		if cur >= max {
			return false
		}
		if m.queue.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// snapshot renders the model's counters. Submitted is read first and
// queue before the outcome counters: combined with the writers' ordering
// (admit raises queue before submitted; serveOne records the outcome
// before releasing the slot), completed+failed+queue never falls short
// of submitted in any snapshot — a concurrent query may transiently
// count twice, never zero times.
func (m *modelFront) snapshot() server.IngressStats {
	st := server.IngressStats{Submitted: m.submitted.Load()}
	st.Queue = m.queue.Load()
	st.Completed = m.completed.Load()
	st.Failed = m.failed.Load()
	st.Rejected = m.rejected.Load()
	st.HTTP = m.http.Load()
	st.TCP = m.tcp.Load()
	return st
}

// Server is one running front-end over a controller. Build it with New
// (it starts serving immediately) and stop it with Close: the listeners
// go away first, then every admitted query finishes and its reply is
// delivered — an orderly Close drops nothing.
type Server struct {
	ctrl     *server.Controller
	maxQueue int64
	logf     func(format string, args ...any)

	models map[string]*modelFront
	order  []string

	httpLn  net.Listener
	httpSrv *http.Server
	tcpLn   net.Listener

	wg        sync.WaitGroup // accept loop + per-connection loops + query waiters
	closed    chan struct{}
	closeOnce sync.Once

	tracker server.ConnTracker
}

// New binds the configured endpoints over a running controller, registers
// the stats augmenter, and starts serving.
func New(ctrl *server.Controller, opts Options) (*Server, error) {
	if ctrl == nil {
		return nil, errors.New("ingress: needs a controller")
	}
	if opts.HTTPAddr == "" && opts.TCPAddr == "" {
		return nil, errors.New("ingress: needs at least one of an HTTP and a TCP address")
	}
	if opts.MaxQueue < 0 {
		return nil, fmt.Errorf("ingress: negative queue bound %d", opts.MaxQueue)
	}
	maxQueue := int64(opts.MaxQueue)
	if maxQueue == 0 {
		maxQueue = DefaultMaxQueue
	}
	s := &Server{
		ctrl:     ctrl,
		maxQueue: maxQueue,
		logf:     opts.Logf,
		models:   make(map[string]*modelFront),
		closed:   make(chan struct{}),
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	for _, name := range ctrl.Models() {
		s.models[name] = &modelFront{mo: ctrl.Obs().Model(name)}
		s.order = append(s.order, name)
	}
	if opts.HTTPAddr != "" {
		ln, err := net.Listen("tcp", opts.HTTPAddr)
		if err != nil {
			return nil, fmt.Errorf("ingress: binding HTTP %s: %w", opts.HTTPAddr, err)
		}
		s.httpLn = ln
		s.httpSrv = &http.Server{Handler: s.HTTPHandler()}
		go s.httpSrv.Serve(ln)
	}
	if opts.TCPAddr != "" {
		ln, err := net.Listen("tcp", opts.TCPAddr)
		if err != nil {
			if s.httpLn != nil {
				// Close the listener directly: httpSrv.Close alone races
				// the Serve goroutine's listener registration and could
				// leave the port bound.
				s.httpLn.Close()
				s.httpSrv.Close()
			}
			return nil, fmt.Errorf("ingress: binding TCP %s: %w", opts.TCPAddr, err)
		}
		s.tcpLn = ln
		s.wg.Add(1)
		go s.acceptLoop()
	}
	ctrl.SetStatsAugmenter(s.augment)
	s.logf("ingress: serving (http %s, tcp %s, queue %d per model)", s.HTTPAddr(), s.TCPAddr(), maxQueue)
	return s, nil
}

// HTTPAddr returns the bound HTTP address, "" when disabled.
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// TCPAddr returns the bound binary-TCP address, "" when disabled.
func (s *Server) TCPAddr() string {
	if s.tcpLn == nil {
		return ""
	}
	return s.tcpLn.Addr().String()
}

// Stats snapshots the per-model front-end counters.
func (s *Server) Stats() map[string]server.IngressStats {
	out := make(map[string]server.IngressStats, len(s.order))
	for _, name := range s.order {
		out[name] = s.models[name].snapshot()
	}
	return out
}

// augment merges the front-end counters into a controller Stats snapshot.
func (s *Server) augment(st *server.Stats) {
	if st.Ingress == nil {
		st.Ingress = make(map[string]server.IngressStats, len(s.order))
	}
	for _, name := range s.order {
		st.Ingress[name] = s.models[name].snapshot()
	}
}

// serveOne runs one admitted query to completion, accounting the outcome
// and releasing its queue slot. The outcome counter moves before the
// slot releases (and admit raises queue before submitted), so a
// concurrent stats snapshot may transiently overcount the in-progress
// query but never sees completed+failed+queue fall short of submitted;
// the counters are exactly equal at quiescence.
func (s *Server) serveOne(mf *modelFront, model string, batch int) server.QueryResult {
	res := s.ctrl.SubmitWait(model, batch)
	if res.Err != nil {
		mf.failed.Add(1)
	} else {
		mf.completed.Add(1)
	}
	mf.queue.Add(-1)
	return res
}

// --- HTTP transport ---

// submitRequest is the POST /submit body.
type submitRequest struct {
	Model string `json:"model"`
	Batch int    `json:"batch"`
}

// submitReply is the POST /submit response body.
type submitReply struct {
	Model string `json:"model"`
	Batch int    `json:"batch"`
	// LatencyMS is the end-to-end serving latency in model milliseconds.
	LatencyMS float64 `json:"latency_ms"`
	// Instance is the serving instance type.
	Instance string `json:"instance,omitempty"`
	// Error carries a rejection or serving failure; empty on success.
	Error string `json:"error,omitempty"`
}

// HTTPHandler returns the JSON endpoint's routes: POST /submit (one
// query, synchronous), GET /stats (per-model front-end counters), and
// GET /healthz. Exposed so callers can mount the front-end under their
// own mux; New's HTTPAddr serves exactly this handler.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v)
	}
	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, submitReply{Error: "ingress: POST only"})
			return
		}
		var req submitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, submitReply{Error: "ingress: bad request: " + err.Error()})
			return
		}
		mf := s.models[req.Model]
		if mf == nil {
			writeJSON(w, http.StatusBadRequest, submitReply{
				Model: req.Model, Batch: req.Batch,
				Error: fmt.Sprintf("ingress: unknown model %q (serving %v)", req.Model, s.order),
			})
			return
		}
		if !mf.admit(s.maxQueue) {
			mf.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, submitReply{Model: req.Model, Batch: req.Batch, Error: QueueFullMsg})
			return
		}
		mf.submitted.Add(1)
		mf.http.Add(1)
		mf.mo.Record(obs.StageAdmit, time.Since(t0))
		res := s.serveOne(mf, req.Model, req.Batch)
		mf.mo.Record(obs.StageIngress, time.Since(t0))
		if res.Err != nil {
			writeJSON(w, http.StatusBadGateway, submitReply{Model: req.Model, Batch: req.Batch, Error: res.Err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, submitReply{
			Model: req.Model, Batch: req.Batch,
			LatencyMS: res.LatencyMS, Instance: res.Instance,
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "models": s.order})
	})
	return mux
}

// --- binary TCP transport ---

// writeTimeout bounds every reply write: a client that stops reading
// (full kernel send buffer) stalls only its own connection, and only for
// this long — waiter goroutines must never be parked on a dead peer
// forever or Close could not drain them.
const writeTimeout = 30 * time.Second

// replyWriter serializes whole-frame reply writes from concurrent query
// waiters onto one connection.
type replyWriter struct {
	mu   sync.Mutex
	conn net.Conn
	buf  []byte
}

func (w *replyWriter) writeJSON(v any) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	return server.WriteFrame(w.conn, v)
}

func (w *replyWriter) send(rep server.Reply, binary bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	if !binary {
		return server.WriteFrame(w.conn, rep)
	}
	frame, err := server.AppendReplyFrame(w.buf[:0], rep)
	if err != nil {
		return err
	}
	w.buf = frame
	_, err = w.conn.Write(frame)
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.tcpLn.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one external TCP client: banner, version negotiation,
// then a request loop. Requests are admitted synchronously (a NACK is
// written in request order) and served concurrently, each waiter writing
// its reply when the controller delivers — so one slow query never blocks
// the client's other in-flight queries.
func (s *Server) serveConn(conn net.Conn) {
	w := &replyWriter{conn: conn}
	var inflight sync.WaitGroup
	defer func() {
		// Admitted queries still complete and reply after a read error or
		// a drain; the connection closes only when the last reply is out.
		inflight.Wait()
		conn.Close()
	}()
	defer s.tracker.Track(conn)()
	if err := w.writeJSON(server.Hello{TypeName: "ingress", Proto: server.ProtoBinary}); err != nil {
		return
	}
	br := bufio.NewReaderSize(conn, 16<<10)
	payload, err := server.ReadRawFrame(br, nil)
	if err != nil {
		return
	}
	var probe server.HandshakeProbe
	if err := json.Unmarshal(payload, &probe); err != nil {
		return
	}
	binary := false
	if probe.Proto != nil {
		binary = *probe.Proto >= server.ProtoBinary
	} else {
		// Legacy JSON client: the probe frame was its first query.
		s.handle(probe.ID, probe.Model, probe.Batch, w, false, &inflight, time.Now())
	}
	var rbuf []byte
	for {
		if binary {
			p, err := server.ReadRawFrame(br, rbuf)
			if err != nil {
				return
			}
			rbuf = p[:0]
			id, batch, model, _, err := server.DecodeRequestFrame(p)
			if err != nil {
				return
			}
			s.handle(id, string(model), batch, w, true, &inflight, time.Now())
		} else {
			var req server.Request
			if err := server.ReadFrame(br, &req); err != nil {
				return
			}
			s.handle(req.ID, req.Model, req.Batch, w, false, &inflight, time.Now())
		}
	}
}

// handle admits one TCP query and spawns its waiter; rejections are
// answered inline. t0 is the request's receive timestamp, the anchor
// for the front-door flight-recorder stages.
func (s *Server) handle(id int64, model string, batch int, w *replyWriter, binary bool, inflight *sync.WaitGroup, t0 time.Time) {
	mf := s.models[model]
	if mf == nil {
		w.send(server.Reply{ID: id, Err: fmt.Sprintf("ingress: unknown model %q (serving %v)", model, s.order)}, binary)
		return
	}
	if !mf.admit(s.maxQueue) {
		mf.rejected.Add(1)
		w.send(server.Reply{ID: id, Err: QueueFullMsg}, binary)
		return
	}
	mf.submitted.Add(1)
	mf.tcp.Add(1)
	mf.mo.Record(obs.StageAdmit, time.Since(t0))
	inflight.Add(1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer inflight.Done()
		res := s.serveOne(mf, model, batch)
		mf.mo.Record(obs.StageIngress, time.Since(t0))
		rep := server.Reply{ID: id, ServiceMS: res.LatencyMS}
		if res.Err != nil {
			rep.Err = res.Err.Error()
		}
		w.send(rep, binary)
	}()
}

// Close stops the front-end in order: listeners go away (nothing new is
// admitted), in-flight HTTP requests and admitted TCP queries finish and
// reply, then the connections close. It must run before the controller's
// Close so those in-flight queries can still complete.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		if s.tcpLn != nil {
			s.tcpLn.Close()
		}
		// Pop the per-connection read loops out of their blocked reads;
		// their waiters finish and reply before the conns close.
		s.tracker.SweepReadDeadlines()
		if s.httpSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			s.httpSrv.Shutdown(ctx)
			cancel()
			s.httpSrv.Close()
		}
		// Bounded drain: reply writes carry writeTimeout deadlines, so
		// waiters on a stalled client unblock on their own; the
		// force-close below is the backstop that guarantees Close always
		// returns (an unkillable Close would wedge Autopilot.Close).
		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(writeTimeout + 5*time.Second):
			s.tracker.CloseAll()
			<-done
		}
		// The controller may outlive this front-end; stop reporting a
		// section for an ingress that no longer exists.
		s.ctrl.SetStatsAugmenter(nil)
		s.logf("ingress: closed")
	})
}
