// Package ingress is the external query front-end of the serving path:
// it accepts traffic the system did not generate itself and feeds it into
// the central controller with per-model routing. Two transports share one
// admission path: an HTTP endpoint speaking JSON (POST /submit) and a raw
// TCP endpoint speaking the controller's negotiated binary wire codec
// (the same Hello/HelloAck handshake an instance server performs, so one
// codec serves the whole system). Overload pushes back instead of piling
// up: each model has a bounded admission queue, and a submission beyond
// the bound is answered immediately with HTTP 429 or a binary NACK reply
// — never silently dropped. Per-model ingress accounting is merged into
// the controller's Stats snapshot (server.SetStatsAugmenter), so
// kairosctl and the autopilot admin /metrics see front-end and serving
// counters on one surface.
//
// The front door is sharded (Options.Shards): each shard owns an accept
// loop per transport (over SO_REUSEPORT where the platform has it), a
// slice of every model's admission quota, a pooled-waiter set for the
// TCP path, and a stripe of the front-door stage histograms — so at
// saturation the shards contend on nothing. Queries may carry a session
// key routed with consistent-hash-bounded-load affinity and a deadline
// enforced by the controller's dispatch loop; untrusted clients are
// gated by a static bearer-token list and per-client rate limits.
package ingress

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kairos/internal/obs"
	"kairos/internal/server"
)

// DefaultMaxQueue bounds each model's admitted-but-unfinished queries
// when Options.MaxQueue is zero.
const DefaultMaxQueue = 1024

// QueueFullMsg is the exact error string a backpressure rejection
// carries, on both transports (the HTTP 429 body's "error" field and the
// binary NACK reply's Err). Clients match it to distinguish overload from
// serving failures.
const QueueFullMsg = "ingress: queue full"

// RateLimitedMsg is the exact error string a per-client rate-limit
// rejection carries on both transports — distinct from QueueFullMsg, so
// a client can tell "you are over your budget" from "the system is
// full".
const RateLimitedMsg = "ingress: rate limited"

// UnauthorizedMsg is the exact error string an unauthenticated
// submission receives when the front door has a token list.
const UnauthorizedMsg = "ingress: unauthorized"

// writeTimeout bounds every reply write: a client that stops reading
// (full kernel send buffer) stalls only its own connection, and only for
// this long — reply flushers must never be parked on a dead peer
// forever or Close could not drain them.
const writeTimeout = 30 * time.Second

// Options configure a front-end. At least one of HTTPAddr and TCPAddr
// must be set.
type Options struct {
	// HTTPAddr binds the JSON endpoint ("" disables; "127.0.0.1:0" for an
	// ephemeral port). Routes: POST /submit, GET /stats, GET /shardz,
	// GET /healthz.
	HTTPAddr string
	// TCPAddr binds the binary endpoint ("" disables).
	TCPAddr string
	// MaxQueue bounds each model's admitted-but-unfinished queries;
	// submissions beyond it are rejected with 429/NACK. 0 uses
	// DefaultMaxQueue. The bound is split evenly across shards.
	MaxQueue int
	// Shards is the number of independent front-door shards: accept
	// loops per transport, admission quota slices, waiter pools, and
	// histogram stripes. 0 or 1 runs unsharded.
	Shards int
	// AuthTokens is the static bearer-token allow list. Non-empty makes
	// both transports require a token (HTTP: Authorization: Bearer; TCP:
	// HelloAck.Token); unauthenticated submissions get UnauthorizedMsg.
	// Empty leaves the front door open.
	AuthTokens []string
	// RateLimit caps each client's sustained submit rate in queries/sec
	// (token bucket, one per auth token — or one shared anonymous bucket
	// when no tokens are configured). 0 disables rate limiting.
	RateLimit float64
	// RateBurst is the token bucket depth; 0 derives max(1, RateLimit).
	RateBurst int
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// frontShard is one shard's slice of a model's admission state and
// accounting. All fields are atomic and the whole struct is padded to
// its own cache lines: the hot path never takes a lock and shards never
// false-share.
type frontShard struct {
	queue     atomic.Int64 // admitted-but-unfinished
	submitted atomic.Int64
	http      atomic.Int64
	tcp       atomic.Int64
	rejected  atomic.Int64
	limited   atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	_         [64]byte // keep the next shard's counters off this line
}

// admit reserves one slot in the shard's bounded queue; false rejects.
func (fs *frontShard) admit(max int64) bool {
	for {
		cur := fs.queue.Load()
		if cur >= max {
			return false
		}
		if fs.queue.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// modelFront is one served model's admission state: a quota slice per
// shard plus the model's flight-recorder shard (shared with the
// controller), where the front-end stamps StageAdmit and StageIngress.
type modelFront struct {
	name   string
	mo     *obs.ModelObs
	shards []frontShard
}

// snapshot sums the model's counters across shards. Submitted is read
// first (all shards) and queue before the outcome counters: combined
// with the writers' ordering (admit raises queue before submitted; the
// waiter records the outcome before releasing the slot), each shard —
// and therefore the sum — never lets completed+failed+queue fall short
// of submitted in any snapshot. A concurrent query may transiently
// count twice, never zero times.
func (m *modelFront) snapshot() server.IngressStats {
	var st server.IngressStats
	for i := range m.shards {
		st.Submitted += m.shards[i].submitted.Load()
	}
	for i := range m.shards {
		st.Queue += m.shards[i].queue.Load()
	}
	for i := range m.shards {
		fs := &m.shards[i]
		st.Completed += fs.completed.Load()
		st.Failed += fs.failed.Load()
		st.Rejected += fs.rejected.Load()
		st.RateLimited += fs.limited.Load()
		st.HTTP += fs.http.Load()
		st.TCP += fs.tcp.Load()
	}
	return st
}

// shard is one front-door lane: its TCP waiter pool and connection
// accounting. Per-model admission counters live in modelFront.shards,
// indexed by the shard's id.
type shard struct {
	id    int
	conns atomic.Int64 // accepted connections, both transports
	pool  waiterPool
}

// ShardStats is one shard's cross-model accounting, for GET /shardz.
type ShardStats struct {
	Shard       int   `json:"shard"`
	Conns       int64 `json:"conns"`
	Submitted   int64 `json:"submitted"`
	Rejected    int64 `json:"rejected"`
	RateLimited int64 `json:"rate_limited"`
	Queue       int64 `json:"queue"`
}

// Server is one running front-end over a controller. Build it with New
// (it starts serving immediately) and stop it with Close: the listeners
// go away first, then every admitted query finishes and its reply is
// delivered — an orderly Close drops nothing.
type Server struct {
	ctrl     *server.Controller
	perShard int64 // per-shard, per-model admission quota
	nshards  int
	logf     func(format string, args ...any)
	auth     *authTable // nil: no auth, no rate limiting

	models map[string]*modelFront
	order  []string

	// unrouted counts rejections that never resolved to a model section
	// — unknown-model submissions and unauthenticated clients — surfaced
	// as Stats.IngressUnrouted through the augmenter.
	unrouted atomic.Int64

	shards  []*shard
	httpLns []net.Listener
	tcpLns  []net.Listener

	wg        sync.WaitGroup // accept loops + connection loops + waiters
	closed    chan struct{}
	closeOnce sync.Once

	tracker server.ConnTracker
}

// New binds the configured endpoints over a running controller, registers
// the stats augmenter, and starts serving.
func New(ctrl *server.Controller, opts Options) (*Server, error) {
	if ctrl == nil {
		return nil, errors.New("ingress: needs a controller")
	}
	if opts.HTTPAddr == "" && opts.TCPAddr == "" {
		return nil, errors.New("ingress: needs at least one of an HTTP and a TCP address")
	}
	if opts.MaxQueue < 0 {
		return nil, fmt.Errorf("ingress: negative queue bound %d", opts.MaxQueue)
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("ingress: negative shard count %d", opts.Shards)
	}
	if opts.RateLimit < 0 {
		return nil, fmt.Errorf("ingress: negative rate limit %v", opts.RateLimit)
	}
	if opts.RateBurst < 0 {
		return nil, fmt.Errorf("ingress: negative rate burst %d", opts.RateBurst)
	}
	for _, tok := range opts.AuthTokens {
		if tok == "" {
			return nil, errors.New("ingress: empty auth token")
		}
	}
	maxQueue := int64(opts.MaxQueue)
	if maxQueue == 0 {
		maxQueue = DefaultMaxQueue
	}
	nshards := opts.Shards
	if nshards < 1 {
		nshards = 1
	}
	s := &Server{
		ctrl: ctrl,
		// Ceil split: the aggregate bound rounds up to keep every shard
		// nonzero; with one shard it is exactly MaxQueue.
		perShard: (maxQueue + int64(nshards) - 1) / int64(nshards),
		nshards:  nshards,
		logf:     opts.Logf,
		auth:     newAuthTable(opts.AuthTokens, opts.RateLimit, opts.RateBurst),
		models:   make(map[string]*modelFront),
		closed:   make(chan struct{}),
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	for _, name := range ctrl.Models() {
		s.models[name] = &modelFront{
			name:   name,
			mo:     ctrl.Obs().Model(name),
			shards: make([]frontShard, nshards),
		}
		s.order = append(s.order, name)
	}
	for i := 0; i < nshards; i++ {
		sh := &shard{id: i}
		sh.pool.wg = &s.wg
		sh.pool.run = s.runWait
		s.shards = append(s.shards, sh)
	}
	closeAll := func() {
		for _, ln := range s.httpLns {
			ln.Close()
		}
		for _, ln := range s.tcpLns {
			ln.Close()
		}
	}
	var err error
	if opts.HTTPAddr != "" {
		if s.httpLns, err = listenShards(opts.HTTPAddr, nshards); err != nil {
			return nil, fmt.Errorf("ingress: binding HTTP %s: %w", opts.HTTPAddr, err)
		}
	}
	if opts.TCPAddr != "" {
		if s.tcpLns, err = listenShards(opts.TCPAddr, nshards); err != nil {
			closeAll()
			return nil, fmt.Errorf("ingress: binding TCP %s: %w", opts.TCPAddr, err)
		}
	}
	for i, sh := range s.shards {
		if len(s.httpLns) > 0 {
			s.wg.Add(1)
			go s.acceptLoop(s.httpLns[i%len(s.httpLns)], sh, s.serveHTTPConn)
		}
		if len(s.tcpLns) > 0 {
			s.wg.Add(1)
			go s.acceptLoop(s.tcpLns[i%len(s.tcpLns)], sh, s.serveTCPConn)
		}
	}
	ctrl.SetStatsAugmenter(s.augment)
	s.logf("ingress: serving (http %s, tcp %s, queue %d per model, %d shard(s))",
		s.HTTPAddr(), s.TCPAddr(), maxQueue, nshards)
	return s, nil
}

// listenShards binds n listeners to addr with SO_REUSEPORT so the kernel
// spreads connections across the shards' accept loops. Platforms without
// reuseport (and the n==1 case) get a single listener; with fewer
// listeners than shards the accept loops share them.
func listenShards(addr string, n int) ([]net.Listener, error) {
	if n <= 1 || !reusePortOK {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		return []net.Listener{ln}, nil
	}
	lc := net.ListenConfig{Control: reusePortControl}
	first, err := lc.Listen(context.Background(), "tcp", addr)
	if err != nil {
		// The control hook can fail on exotic socket setups; a single
		// plain listener shared by every shard's accept loop still works.
		ln, err2 := net.Listen("tcp", addr)
		if err2 != nil {
			return nil, err
		}
		return []net.Listener{ln}, nil
	}
	lns := []net.Listener{first}
	// The remaining binds reuse the first listener's concrete port (addr
	// may have asked for an ephemeral one).
	concrete := first.Addr().String()
	for i := 1; i < n; i++ {
		ln, err := lc.Listen(context.Background(), "tcp", concrete)
		if err != nil {
			// Degrade to the listeners bound so far; accept loops share.
			break
		}
		lns = append(lns, ln)
	}
	return lns, nil
}

// acceptLoop feeds one listener's connections to one shard's serve
// function. With reuseport each shard accepts from its own listener;
// otherwise the shards' loops share one listener and the kernel
// round-robins Accept wakeups.
func (s *Server) acceptLoop(ln net.Listener, sh *shard, serve func(net.Conn, *shard)) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		sh.conns.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			serve(conn, sh)
		}()
	}
}

// HTTPAddr returns the bound HTTP address, "" when disabled.
func (s *Server) HTTPAddr() string {
	if len(s.httpLns) == 0 {
		return ""
	}
	return s.httpLns[0].Addr().String()
}

// TCPAddr returns the bound binary-TCP address, "" when disabled.
func (s *Server) TCPAddr() string {
	if len(s.tcpLns) == 0 {
		return ""
	}
	return s.tcpLns[0].Addr().String()
}

// Stats snapshots the per-model front-end counters, summed over shards.
func (s *Server) Stats() map[string]server.IngressStats {
	out := make(map[string]server.IngressStats, len(s.order))
	for _, name := range s.order {
		out[name] = s.models[name].snapshot()
	}
	return out
}

// ShardStats snapshots the per-shard accounting across models.
func (s *Server) ShardStats() []ShardStats {
	out := make([]ShardStats, s.nshards)
	for i, sh := range s.shards {
		st := &out[i]
		st.Shard = i
		st.Conns = sh.conns.Load()
		for _, name := range s.order {
			fs := &s.models[name].shards[i]
			st.Submitted += fs.submitted.Load()
			st.Rejected += fs.rejected.Load()
			st.RateLimited += fs.limited.Load()
			st.Queue += fs.queue.Load()
		}
	}
	return out
}

// Unrouted reports the front-door rejections that never resolved to a
// model: unknown-model submissions and unauthenticated clients.
func (s *Server) Unrouted() int64 { return s.unrouted.Load() }

// augment merges the front-end counters into a controller Stats snapshot.
func (s *Server) augment(st *server.Stats) {
	if st.Ingress == nil {
		st.Ingress = make(map[string]server.IngressStats, len(s.order))
	}
	for _, name := range s.order {
		st.Ingress[name] = s.models[name].snapshot()
	}
	st.IngressUnrouted = s.unrouted.Load()
}

// submitOpts converts a request's wire hints into controller submit
// options; t0 anchors the deadline.
func submitOpts(session []byte, deadlineMS int64, t0 time.Time) server.SubmitOptions {
	var opts server.SubmitOptions
	if len(session) > 0 {
		opts.SessionHash = server.SessionHash(session)
	}
	if deadlineMS > 0 {
		opts.Deadline = t0.Add(time.Duration(deadlineMS) * time.Millisecond)
	}
	return opts
}

// Close stops the front-end in order: listeners go away (nothing new is
// admitted), in-flight HTTP requests and admitted TCP queries finish and
// reply, then the connections close. It must run before the controller's
// Close so those in-flight queries can still complete.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		for _, ln := range s.tcpLns {
			ln.Close()
		}
		for _, ln := range s.httpLns {
			ln.Close()
		}
		// Pop the per-connection read loops out of their blocked reads;
		// their waiters finish and reply before the conns close.
		s.tracker.SweepReadDeadlines()
		// Stop the idle waiters; busy ones finish their query first, and
		// late work falls back to fresh goroutines.
		for _, sh := range s.shards {
			sh.pool.close()
		}
		// Bounded drain: reply writes carry writeTimeout deadlines, so
		// flushers on a stalled client unblock on their own; the
		// force-close below is the backstop that guarantees Close always
		// returns (an unkillable Close would wedge Autopilot.Close).
		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(writeTimeout + 5*time.Second):
			s.tracker.CloseAll()
			<-done
		}
		// The controller may outlive this front-end; stop reporting a
		// section for an ingress that no longer exists.
		s.ctrl.SetStatsAugmenter(nil)
		s.logf("ingress: closed")
	})
}
