//go:build linux

package ingress

import "syscall"

// soReusePort is SO_REUSEPORT, spelled numerically because this
// toolchain's syscall package predates the constant. 0xf (15) has been
// the Linux value since the option appeared in 3.9.
const soReusePort = 0xf

// reusePortOK reports that listenShards can bind several listeners to
// one address and let the kernel spread connections across them.
const reusePortOK = true

// reusePortControl is the net.ListenConfig hook that flips SO_REUSEPORT
// on before bind.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	})
	if err != nil {
		return err
	}
	return serr
}
