package ingress

import (
	"errors"
	"strconv"
	"unicode/utf8"
)

// The /submit body and reply are fixed-shape JSON, and the hot path
// encodes and decodes them with hand-rolled append-style code instead of
// encoding/json: reflection-based Marshal/Unmarshal costs dozens of
// allocations per call, which alone would blow the front door's
// per-submit allocation budget. The reflective types are kept for the
// cold paths (/stats, the net/http-mounted handler) and as the
// documented wire shape.

// submitRequest is the POST /submit body.
type submitRequest struct {
	Model string `json:"model"`
	Batch int    `json:"batch"`
	// Session is an optional session-affinity key: submissions sharing it
	// prefer the same serving instance.
	Session string `json:"session,omitempty"`
	// DeadlineMS bounds how long the query may wait for dispatch; 0 means
	// no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// submitReply is the POST /submit response body.
type submitReply struct {
	Model string `json:"model"`
	Batch int    `json:"batch"`
	// LatencyMS is the end-to-end serving latency in model milliseconds.
	LatencyMS float64 `json:"latency_ms"`
	// Instance is the serving instance type.
	Instance string `json:"instance,omitempty"`
	// Error carries a rejection or serving failure; empty on success.
	Error string `json:"error,omitempty"`
}

// submitFields is the decoded form of a submitRequest. The byte slices
// alias the request body buffer (or, when a string needed unescaping,
// an in-place rewrite of it) — valid until the buffer is reused.
type submitFields struct {
	model      []byte
	session    []byte
	batch      int64
	deadlineMS int64
}

var (
	errJSONSyntax = errors.New("invalid JSON body")
	errJSONShape  = errors.New("body must be a JSON object")
)

// parseSubmitBody decodes a submitRequest from p without allocating.
// Unknown fields are skipped (matching encoding/json), strings with
// escapes are unescaped in place (p is the request's scratch buffer),
// and numbers must be integers — the wire shape has no float fields.
func parseSubmitBody(p []byte, f *submitFields) error {
	*f = submitFields{}
	i := skipWS(p, 0)
	if i >= len(p) || p[i] != '{' {
		return errJSONShape
	}
	i = skipWS(p, i+1)
	if i < len(p) && p[i] == '}' {
		return nil
	}
	for {
		if i >= len(p) || p[i] != '"' {
			return errJSONSyntax
		}
		key, ni, err := scanString(p, i)
		if err != nil {
			return err
		}
		i = skipWS(p, ni)
		if i >= len(p) || p[i] != ':' {
			return errJSONSyntax
		}
		i = skipWS(p, i+1)
		switch string(key) {
		case "model":
			f.model, i, err = scanString(p, i)
		case "session":
			f.session, i, err = scanString(p, i)
		case "batch":
			f.batch, i, err = scanInt(p, i)
		case "deadline_ms":
			f.deadlineMS, i, err = scanInt(p, i)
		default:
			i, err = skipValue(p, i, 0)
		}
		if err != nil {
			return err
		}
		i = skipWS(p, i)
		if i >= len(p) {
			return errJSONSyntax
		}
		if p[i] == '}' {
			return nil
		}
		if p[i] != ',' {
			return errJSONSyntax
		}
		i = skipWS(p, i+1)
	}
}

func skipWS(p []byte, i int) int {
	for i < len(p) {
		switch p[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// scanString decodes the JSON string starting at p[i] (which must be
// '"'), returning the contents and the index past the closing quote.
// Escape-free strings alias p directly; strings with escapes are
// rewritten in place (the unescaped form is never longer than the
// escaped one).
func scanString(p []byte, i int) ([]byte, int, error) {
	if i >= len(p) || p[i] != '"' {
		return nil, i, errJSONSyntax
	}
	i++
	start := i
	for i < len(p) {
		switch p[i] {
		case '"':
			return p[start:i], i + 1, nil
		case '\\':
			return unescapeString(p, start, i)
		default:
			if p[i] < 0x20 {
				return nil, i, errJSONSyntax
			}
			i++
		}
	}
	return nil, i, errJSONSyntax
}

// unescapeString finishes scanning a string that contains escapes,
// rewriting the decoded bytes over p[start:]. w≤i always holds, so the
// write never overruns the read cursor.
func unescapeString(p []byte, start, i int) ([]byte, int, error) {
	w := i
	for i < len(p) {
		c := p[i]
		switch {
		case c == '"':
			return p[start:w], i + 1, nil
		case c == '\\':
			i++
			if i >= len(p) {
				return nil, i, errJSONSyntax
			}
			switch p[i] {
			case '"', '\\', '/':
				p[w] = p[i]
				w, i = w+1, i+1
			case 'b':
				p[w] = '\b'
				w, i = w+1, i+1
			case 'f':
				p[w] = '\f'
				w, i = w+1, i+1
			case 'n':
				p[w] = '\n'
				w, i = w+1, i+1
			case 'r':
				p[w] = '\r'
				w, i = w+1, i+1
			case 't':
				p[w] = '\t'
				w, i = w+1, i+1
			case 'u':
				if i+4 >= len(p) {
					return nil, i, errJSONSyntax
				}
				r, ok := hex4(p[i+1 : i+5])
				if !ok {
					return nil, i, errJSONSyntax
				}
				i += 5
				if utf16IsHighSurrogate(r) && i+5 < len(p) && p[i] == '\\' && p[i+1] == 'u' {
					if r2, ok2 := hex4(p[i+2 : i+6]); ok2 && utf16IsLowSurrogate(r2) {
						r = 0x10000 + (r-0xD800)<<10 + (r2 - 0xDC00)
						i += 6
					}
				}
				if r >= 0xD800 && r < 0xE000 { // unpaired surrogate
					r = utf8.RuneError
				}
				w += utf8.EncodeRune(p[w:w+utf8.UTFMax], rune(r))
			default:
				return nil, i, errJSONSyntax
			}
		case c < 0x20:
			return nil, i, errJSONSyntax
		default:
			p[w] = c
			w, i = w+1, i+1
		}
	}
	return nil, i, errJSONSyntax
}

func hex4(p []byte) (uint32, bool) {
	var r uint32
	for _, c := range p {
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= uint32(c - '0')
		case c >= 'a' && c <= 'f':
			r |= uint32(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r |= uint32(c-'A') + 10
		default:
			return 0, false
		}
	}
	return r, true
}

func utf16IsHighSurrogate(r uint32) bool { return r >= 0xD800 && r < 0xDC00 }
func utf16IsLowSurrogate(r uint32) bool  { return r >= 0xDC00 && r < 0xE000 }

// scanInt parses a JSON integer. Floats and exponents are rejected — the
// submit shape has none, and encoding/json would reject them for the int
// fields too.
func scanInt(p []byte, i int) (int64, int, error) {
	start := i
	if i < len(p) && p[i] == '-' {
		i++
	}
	for i < len(p) && p[i] >= '0' && p[i] <= '9' {
		i++
	}
	if i == start || (p[start] == '-' && i == start+1) {
		return 0, i, errJSONSyntax
	}
	if i < len(p) && (p[i] == '.' || p[i] == 'e' || p[i] == 'E') {
		return 0, i, errors.New("integer field has a fractional value")
	}
	v, err := strconv.ParseInt(string(p[start:i]), 10, 64)
	if err != nil {
		return 0, i, errJSONSyntax
	}
	return v, i, nil
}

// skipValue steps over one JSON value of any shape (the unknown-field
// path). depth guards runaway nesting.
func skipValue(p []byte, i, depth int) (int, error) {
	if depth > 32 {
		return i, errJSONSyntax
	}
	if i >= len(p) {
		return i, errJSONSyntax
	}
	switch p[i] {
	case '"':
		_, ni, err := scanString(p, i)
		return ni, err
	case '{', '[':
		open, clos := p[i], byte('}')
		if open == '[' {
			clos = ']'
		}
		i = skipWS(p, i+1)
		if i < len(p) && p[i] == clos {
			return i + 1, nil
		}
		for {
			var err error
			if open == '{' {
				if i >= len(p) || p[i] != '"' {
					return i, errJSONSyntax
				}
				if _, i, err = scanString(p, i); err != nil {
					return i, err
				}
				i = skipWS(p, i)
				if i >= len(p) || p[i] != ':' {
					return i, errJSONSyntax
				}
				i = skipWS(p, i+1)
			}
			if i, err = skipValue(p, i, depth+1); err != nil {
				return i, err
			}
			i = skipWS(p, i)
			if i >= len(p) {
				return i, errJSONSyntax
			}
			if p[i] == clos {
				return i + 1, nil
			}
			if p[i] != ',' {
				return i, errJSONSyntax
			}
			i = skipWS(p, i+1)
		}
	case 't':
		return skipLit(p, i, "true")
	case 'f':
		return skipLit(p, i, "false")
	case 'n':
		return skipLit(p, i, "null")
	default: // number
		start := i
		for i < len(p) {
			switch p[i] {
			case '-', '+', '.', 'e', 'E':
				i++
			default:
				if p[i] >= '0' && p[i] <= '9' {
					i++
					continue
				}
				if i == start {
					return i, errJSONSyntax
				}
				return i, nil
			}
		}
		return i, nil
	}
}

func skipLit(p []byte, i int, lit string) (int, error) {
	if len(p)-i < len(lit) || string(p[i:i+len(lit)]) != lit {
		return i, errJSONSyntax
	}
	return i + len(lit), nil
}

// appendSubmitReply appends the submitReply JSON encoding — the same
// bytes encoding/json produces for the struct, built with zero
// allocations beyond dst's growth.
func appendSubmitReply(dst []byte, model []byte, batch int64, latencyMS float64, instance, errMsg string) []byte {
	dst = append(dst, `{"model":`...)
	dst = appendJSONString(dst, model)
	dst = append(dst, `,"batch":`...)
	dst = strconv.AppendInt(dst, batch, 10)
	dst = append(dst, `,"latency_ms":`...)
	dst = strconv.AppendFloat(dst, latencyMS, 'g', -1, 64)
	if instance != "" {
		dst = append(dst, `,"instance":`...)
		dst = appendJSONStringS(dst, instance)
	}
	if errMsg != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONStringS(dst, errMsg)
	}
	return append(dst, '}')
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a quoted JSON string, escaping the
// characters encoding/json would (quotes, backslashes, controls; <, >,
// and & for HTML safety, matching Marshal's default).
func appendJSONString(dst, s []byte) []byte {
	dst = append(dst, '"')
	for _, c := range s {
		dst = appendJSONByte(dst, c)
	}
	return append(dst, '"')
}

func appendJSONStringS(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		dst = appendJSONByte(dst, s[i])
	}
	return append(dst, '"')
}

func appendJSONByte(dst []byte, c byte) []byte {
	switch {
	case c == '"' || c == '\\':
		return append(dst, '\\', c)
	case c == '\n':
		return append(dst, '\\', 'n')
	case c == '\r':
		return append(dst, '\\', 'r')
	case c == '\t':
		return append(dst, '\\', 't')
	case c < 0x20 || c == '<' || c == '>' || c == '&':
		return append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
	default:
		return append(dst, c)
	}
}
