package ingress

import (
	"bufio"
	encbinary "encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"kairos/internal/obs"
	"kairos/internal/server"
)

// The binary TCP transport. Each connection runs one read loop (admission
// decisions and NACKs happen synchronously, in request order), hands
// admitted queries to the shard's pooled waiters, and funnels every reply
// through a per-connection coalescing buffer drained by one flusher
// goroutine — a burst of completions costs one write syscall, not one
// per query, and no reply ever allocates a goroutine or a frame buffer.

// maxRetainedReplyBuf caps the write-buffer capacity a connection keeps
// across bursts. One oversized burst (a deep pipeline completing at once)
// may grow the buffer arbitrarily; holding that memory for the life of
// an idle connection is the retention bug this cap fixes.
const maxRetainedReplyBuf = 64 << 10

// tcpConn is one external binary/JSON TCP client.
type tcpConn struct {
	srv     *Server
	conn    net.Conn
	sh      *shard
	shardID uint32

	proto int
	bin   bool // negotiated ≥ ProtoBinary: fixed-width frames

	// bucket is the client's rate-limit bucket; authFailed marks a client
	// that presented no valid token to a token-gated front door — its
	// submissions are NACKed but the connection stays up (the reply is
	// how the client learns).
	bucket     *clientBucket
	authFailed bool

	inflight sync.WaitGroup // admitted queries not yet queued for reply

	wmu   sync.Mutex
	wbuf  []byte        // encoded reply frames awaiting flush
	spare []byte        // flusher's drained buffer, swapped back in
	werr  error         // first write/encode error; replies stop accumulating
	kick  chan struct{} // cap 1: "the buffer is non-empty"
	done  chan struct{} // read loop is finished and inflight is drained
}

// serveTCPConn handles one external TCP client: banner, version and auth
// negotiation, then the request loop.
func (s *Server) serveTCPConn(conn net.Conn, sh *shard) {
	tc := &tcpConn{
		srv: s, conn: conn, sh: sh, shardID: uint32(sh.id),
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	// Deferred teardown runs in reverse order: drain the waiters and the
	// flusher first (every admitted query replies), untrack, then close.
	defer conn.Close()
	defer s.tracker.Track(conn)()
	conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	if err := server.WriteFrame(conn, server.Hello{TypeName: "ingress", Proto: server.ProtoSession}); err != nil {
		return
	}
	flusherDone := make(chan struct{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(flusherDone)
		tc.flusher()
	}()
	defer func() {
		tc.inflight.Wait()
		close(tc.done)
		<-flusherDone
	}()
	br := bufio.NewReaderSize(conn, 16<<10)
	payload, err := server.ReadRawFrame(br, nil)
	if err != nil {
		return
	}
	var probe server.HandshakeProbe
	if err := json.Unmarshal(payload, &probe); err != nil {
		return
	}
	if probe.Proto != nil {
		tc.proto = *probe.Proto
		if tc.proto > server.ProtoSession {
			tc.proto = server.ProtoSession
		}
		tc.bin = tc.proto >= server.ProtoBinary
		tc.authenticate(probe.Token)
	} else {
		// Legacy JSON client: the probe frame was its first query, and a
		// legacy handshake carries no token.
		tc.authenticate("")
		s.handleTCP(tc, server.RequestView{
			ID: probe.ID, Batch: probe.Batch, Model: []byte(probe.Model),
			Session: []byte(probe.Session), DeadlineMS: probe.DeadlineMS,
		}, time.Now())
	}
	var rbuf []byte
	for {
		if tc.bin {
			p, err := server.ReadRawFrame(br, rbuf)
			if err != nil {
				return
			}
			rbuf = p[:0]
			rv, err := server.DecodeRequestView(p)
			if err != nil {
				return
			}
			// rv's byte fields alias rbuf; handleTCP consumes them before
			// returning (hash, map lookup), so the reuse is safe.
			s.handleTCP(tc, rv, time.Now())
		} else {
			var req server.Request
			if err := server.ReadFrame(br, &req); err != nil {
				return
			}
			s.handleTCP(tc, server.RequestView{
				ID: req.ID, Batch: req.Batch, Model: []byte(req.Model),
				Session: []byte(req.Session), DeadlineMS: req.DeadlineMS,
			}, time.Now())
		}
	}
}

// authenticate resolves the handshake token against the front door's
// gate. No gate: every client is anonymous and unlimited.
func (tc *tcpConn) authenticate(token string) {
	a := tc.srv.auth
	if a == nil {
		return
	}
	b, ok := a.lookupString(token)
	if !ok {
		tc.authFailed = true
		return
	}
	tc.bucket = b
}

// handleTCP admits one query and hands it to the shard's waiter pool;
// rejections are answered inline, in request order. t0 is the request's
// receive timestamp, the anchor for the front-door stages and deadline.
func (s *Server) handleTCP(tc *tcpConn, rv server.RequestView, t0 time.Time) {
	if tc.authFailed {
		s.unrouted.Add(1)
		tc.queueReply(server.Reply{ID: rv.ID, Err: UnauthorizedMsg})
		return
	}
	mf := s.models[string(rv.Model)]
	if mf == nil {
		s.unrouted.Add(1)
		tc.queueReply(server.Reply{ID: rv.ID, Err: fmt.Sprintf("ingress: unknown model %q (serving %v)", rv.Model, s.order)})
		return
	}
	fs := &mf.shards[tc.shardID]
	if s.auth != nil && s.auth.limited(tc.bucket) {
		fs.limited.Add(1)
		tc.queueReply(server.Reply{ID: rv.ID, Err: RateLimitedMsg})
		return
	}
	if !fs.admit(s.perShard) {
		fs.rejected.Add(1)
		tc.queueReply(server.Reply{ID: rv.ID, Err: QueueFullMsg})
		return
	}
	fs.submitted.Add(1)
	fs.tcp.Add(1)
	mf.mo.RecordShard(obs.StageAdmit, tc.shardID, time.Since(t0))
	opts := submitOpts(rv.Session, rv.DeadlineMS, t0)
	tc.inflight.Add(1)
	tc.sh.pool.serve(waitWork{tc: tc, mf: mf, fs: fs, id: rv.ID, batch: rv.Batch, opts: opts, t0: t0})
}

// runWait is the waiter body: block on the controller, account the
// outcome, release the admission slot, queue the reply. The reply is
// queued before inflight.Done so the connection's final drain always
// flushes it.
func (s *Server) runWait(w waitWork) {
	res := s.ctrl.SubmitWaitOpts(w.mf.name, w.batch, w.opts)
	if res.Err != nil {
		w.fs.failed.Add(1)
	} else {
		w.fs.completed.Add(1)
	}
	w.fs.queue.Add(-1)
	w.mf.mo.RecordShard(obs.StageIngress, w.tc.shardID, time.Since(w.t0))
	rep := server.Reply{ID: w.id, ServiceMS: res.LatencyMS}
	if res.Err != nil {
		rep.Err = res.Err.Error()
	}
	w.tc.queueReply(rep)
	w.tc.inflight.Done()
}

// queueReply encodes rep into the connection's write buffer and kicks
// the flusher. After a write error replies are dropped — the client is
// gone; the admission accounting already happened.
func (tc *tcpConn) queueReply(rep server.Reply) {
	tc.wmu.Lock()
	if tc.werr == nil {
		var err error
		if tc.bin {
			tc.wbuf, err = server.AppendReplyFrame(tc.wbuf, rep)
		} else {
			var payload []byte
			if payload, err = json.Marshal(rep); err == nil {
				var hdr [4]byte
				encbinary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
				tc.wbuf = append(tc.wbuf, hdr[:]...)
				tc.wbuf = append(tc.wbuf, payload...)
			}
		}
		if err != nil {
			tc.werr = err
		}
	}
	tc.wmu.Unlock()
	select {
	case tc.kick <- struct{}{}:
	default:
	}
}

// flusher drains the write buffer: one goroutine per connection, one
// syscall per accumulated burst. On done it performs a final drain so an
// orderly Close loses no reply.
func (tc *tcpConn) flusher() {
	for {
		select {
		case <-tc.kick:
			tc.writeOut()
		case <-tc.done:
			tc.writeOut()
			return
		}
	}
}

// writeOut swaps the accumulated buffer out under the lock and writes it
// outside it, looping until the buffer stays empty.
func (tc *tcpConn) writeOut() {
	for {
		tc.wmu.Lock()
		if len(tc.wbuf) == 0 || tc.werr != nil {
			tc.wmu.Unlock()
			return
		}
		out := tc.wbuf
		tc.wbuf = tc.spare[:0]
		tc.wmu.Unlock()
		tc.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		_, err := tc.conn.Write(out)
		if cap(out) > maxRetainedReplyBuf {
			// Don't let one giant burst pin its buffer for the connection's
			// lifetime; shrink back and let the next burst grow organically.
			out = nil
		}
		tc.spare = out[:0]
		if err != nil {
			tc.wmu.Lock()
			tc.werr = err
			tc.wmu.Unlock()
			return
		}
	}
}

// waitWork is one admitted query travelling to a pooled waiter.
type waitWork struct {
	tc    *tcpConn
	mf    *modelFront
	fs    *frontShard
	id    int64
	batch int
	opts  server.SubmitOptions
	t0    time.Time
}

// waiter is one parked pool goroutine, addressed by its handoff channel.
type waiter struct {
	ch chan waitWork
}

// waiterPool replaces goroutine-per-query waiting: a LIFO stack of
// parked goroutines per shard. Steady-state submission is a channel
// handoff to a warm goroutine — no go statement, no stack allocation;
// the pool only grows when concurrency exceeds its high-water mark.
type waiterPool struct {
	run func(waitWork)
	wg  *sync.WaitGroup

	mu     sync.Mutex
	idle   []*waiter
	closed bool
}

// serve hands w to a parked waiter, or starts one. After close, late
// work (a query that raced the drain) runs on a one-shot goroutine.
func (p *waiterPool) serve(w waitWork) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		wt := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		wt.ch <- w
		return
	}
	closed := p.closed
	p.mu.Unlock()
	p.wg.Add(1)
	if closed {
		go func() {
			defer p.wg.Done()
			p.run(w)
		}()
		return
	}
	go p.worker(w)
}

func (p *waiterPool) worker(first waitWork) {
	defer p.wg.Done()
	self := &waiter{ch: make(chan waitWork)}
	w, ok := first, true
	for ok {
		p.run(w)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		p.idle = append(p.idle, self)
		p.mu.Unlock()
		w, ok = <-self.ch
	}
}

// close wakes every parked waiter to exit. Busy waiters finish their
// query first and exit on their next park attempt.
func (p *waiterPool) close() {
	p.mu.Lock()
	p.closed = true
	for _, wt := range p.idle {
		close(wt.ch)
	}
	p.idle = nil
	p.mu.Unlock()
}
