package ingress

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/server"
)

// startFrontOpts is startFront with full front-door options (shards,
// auth, rate limits); the instance/controller fixture is shared.
func startFrontOpts(t *testing.T, mutate func(*Options)) (*Server, *server.Controller) {
	t.Helper()
	m := models.MustByName("NCF")
	srv, err := server.NewInstanceServer(cloud.R5nLarge.Name, m, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ctrl, err := server.NewController(m.Name, &server.LeastBacklog{MaxPending: 1 << 20}, 1e-6, m.Latency, []string{srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctrl.Close)
	opts := Options{HTTPAddr: "127.0.0.1:0", TCPAddr: "127.0.0.1:0"}
	mutate(&opts)
	ing, err := New(ctrl, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ing.Close)
	return ing, ctrl
}

// postSubmitReq POSTs an arbitrary submit body with an optional bearer
// token.
func postSubmitReq(t *testing.T, addr string, req submitRequest, token string) (int, submitReply) {
	t.Helper()
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, "http://"+addr+"/submit", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if token != "" {
		hreq.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep submitReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("decoding reply: %v", err)
	}
	return resp.StatusCode, rep
}

// TestIngressAuth: a token-gated front door rejects anonymous and
// bad-token clients with UnauthorizedMsg on both transports, serves a
// valid token, and accounts the rejections as unrouted.
func TestIngressAuth(t *testing.T) {
	ing, ctrl := startFrontOpts(t, func(o *Options) {
		o.AuthTokens = []string{"secret-a", "secret-b"}
	})
	// HTTP without a token.
	if code, rep := postSubmitReq(t, ing.HTTPAddr(), submitRequest{Model: "NCF", Batch: 10}, ""); code != http.StatusUnauthorized || rep.Error != UnauthorizedMsg {
		t.Fatalf("anonymous HTTP: code=%d rep=%+v", code, rep)
	}
	// HTTP with a wrong token.
	if code, rep := postSubmitReq(t, ing.HTTPAddr(), submitRequest{Model: "NCF", Batch: 10}, "wrong"); code != http.StatusUnauthorized || rep.Error != UnauthorizedMsg {
		t.Fatalf("bad-token HTTP: code=%d rep=%+v", code, rep)
	}
	// HTTP with a valid token serves.
	if code, rep := postSubmitReq(t, ing.HTTPAddr(), submitRequest{Model: "NCF", Batch: 10}, "secret-a"); code != http.StatusOK || rep.Error != "" {
		t.Fatalf("valid-token HTTP: code=%d rep=%+v", code, rep)
	}
	// TCP without a token: NACKed, connection stays up.
	anon, err := Dial(ing.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Close()
	if rep, err := anon.Submit("NCF", 10); err != nil || rep.Err != UnauthorizedMsg {
		t.Fatalf("anonymous TCP: rep=%+v err=%v", rep, err)
	}
	// TCP with a valid token serves.
	cli, err := DialWith(ing.TCPAddr(), DialOptions{Token: "secret-b"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if rep, err := cli.Submit("NCF", 10); err != nil || rep.Err != "" {
		t.Fatalf("valid-token TCP: rep=%+v err=%v", rep, err)
	}
	// The three rejections count as unrouted, surfaced through Stats.
	if got := ctrl.Stats().IngressUnrouted; got != 3 {
		t.Fatalf("IngressUnrouted = %d, want 3", got)
	}
	// Rejections never touched the per-model counters.
	if st := ing.Stats()["NCF"]; st.Submitted != 2 || st.Failed != 0 {
		t.Fatalf("model stats after auth rejections: %+v", st)
	}
}

// TestIngressRateLimit: an over-budget client gets RateLimitedMsg — not
// QueueFullMsg — on both transports, and the rejections are accounted
// separately from queue-full ones.
func TestIngressRateLimit(t *testing.T) {
	ing, _ := startFrontOpts(t, func(o *Options) {
		// One query per ~17 minutes, burst 2: the first two submissions on
		// each transport's bucket pass deterministically, the rest fail.
		o.AuthTokens = []string{"tok-http", "tok-tcp"}
		o.RateLimit = 0.001
		o.RateBurst = 2
	})
	var limited int
	for i := 0; i < 4; i++ {
		code, rep := postSubmitReq(t, ing.HTTPAddr(), submitRequest{Model: "NCF", Batch: 10}, "tok-http")
		switch {
		case code == http.StatusOK && rep.Error == "":
		case code == http.StatusTooManyRequests && rep.Error == RateLimitedMsg:
			limited++
		default:
			t.Fatalf("submit %d: code=%d rep=%+v", i, code, rep)
		}
	}
	if limited != 2 {
		t.Fatalf("HTTP rate-limited %d of 4, want 2", limited)
	}
	cli, err := DialWith(ing.TCPAddr(), DialOptions{Token: "tok-tcp"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	limited = 0
	for i := 0; i < 4; i++ {
		rep, err := cli.Submit("NCF", 10)
		if err != nil {
			t.Fatal(err)
		}
		switch rep.Err {
		case "":
		case RateLimitedMsg:
			limited++
		default:
			t.Fatalf("submit %d: %+v", i, rep)
		}
	}
	if limited != 2 {
		t.Fatalf("TCP rate-limited %d of 4, want 2", limited)
	}
	st := ing.Stats()["NCF"]
	if st.RateLimited != 4 || st.Rejected != 0 {
		t.Fatalf("rate-limit accounting: %+v", st)
	}
	if st.Submitted != 4 || st.Completed != 4 {
		t.Fatalf("served accounting: %+v", st)
	}
}

// TestIngressUnknownModelUnrouted: unknown-model submissions on both
// transports surface in the server-level unrouted counter.
func TestIngressUnknownModelUnrouted(t *testing.T) {
	ing, ctrl := startFront(t, 0, 1e-6)
	if code, rep := postSubmit(t, ing.HTTPAddr(), "nope", 10); code != http.StatusBadRequest || !strings.Contains(rep.Error, "unknown model") {
		t.Fatalf("unknown model HTTP: code=%d rep=%+v", code, rep)
	}
	cli, err := Dial(ing.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if rep, err := cli.Submit("nope", 10); err != nil || !strings.Contains(rep.Err, "unknown model") {
		t.Fatalf("unknown model TCP: rep=%+v err=%v", rep, err)
	}
	if got := ctrl.Stats().IngressUnrouted; got != 2 {
		t.Fatalf("IngressUnrouted = %d, want 2", got)
	}
}

// TestIngressSessionAffinity: HTTP submissions sharing a session key are
// served by one instance (the reply's Instance field proves it via
// distinct instance types).
func TestIngressSessionAffinity(t *testing.T) {
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name}
	addrs := make([]string, len(types))
	for i, tn := range types {
		srv, err := server.NewInstanceServer(tn, m, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	ctrl, err := server.NewController(m.Name, &server.LeastBacklog{MaxPending: 1 << 20}, 1e-6, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctrl.Close)
	ing, err := New(ctrl, Options{HTTPAddr: "127.0.0.1:0", TCPAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ing.Close)
	for _, session := range []string{"alice", "bob", "carol"} {
		seen := map[string]int{}
		for i := 0; i < 20; i++ {
			code, rep := postSubmitReq(t, ing.HTTPAddr(), submitRequest{Model: "NCF", Batch: 10, Session: session}, "")
			if code != http.StatusOK || rep.Error != "" {
				t.Fatalf("session submit: code=%d rep=%+v", code, rep)
			}
			seen[rep.Instance]++
		}
		if len(seen) != 1 {
			t.Fatalf("session %q split across instances: %v", session, seen)
		}
	}
	// The TCP client path carries the same key end to end.
	cli, err := Dial(ing.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 10; i++ {
		rep, err := cli.SubmitOpts("NCF", 10, SubmitOptions{Session: "alice"})
		if err != nil || rep.Err != "" {
			t.Fatalf("TCP session submit: rep=%+v err=%v", rep, err)
		}
	}
}

// TestIngressSharded: a multi-shard front door serves both transports
// correctly and its per-shard stats sum to the per-model totals.
func TestIngressSharded(t *testing.T) {
	ing, ctrl := startFrontOpts(t, func(o *Options) {
		o.Shards = 4
		o.MaxQueue = 400
	})
	const n = 30
	for i := 0; i < n; i++ {
		if code, rep := postSubmit(t, ing.HTTPAddr(), "NCF", 1+i%8); code != http.StatusOK || rep.Error != "" {
			t.Fatalf("submit %d: code=%d rep=%+v", i, code, rep)
		}
	}
	cli, err := Dial(ing.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < n; i++ {
		if rep, err := cli.Submit("NCF", 1+i%8); err != nil || rep.Err != "" {
			t.Fatalf("TCP submit %d: rep=%+v err=%v", i, rep, err)
		}
	}
	st := ing.Stats()["NCF"]
	if st.Submitted != 2*n || st.Completed != 2*n || st.HTTP != n || st.TCP != n || st.Queue != 0 {
		t.Fatalf("sharded stats: %+v", st)
	}
	// Per-shard stats add up to the model totals.
	var sum int64
	for _, sh := range ing.ShardStats() {
		sum += sh.Submitted
	}
	if sum != 2*n {
		t.Fatalf("shard submitted sum = %d, want %d", sum, 2*n)
	}
	// The merged controller snapshot sees the same totals.
	if got := ctrl.Stats().Ingress["NCF"]; got != st {
		t.Fatalf("controller merge %+v != %+v", got, st)
	}
	// /shardz serves the same shape over HTTP.
	resp, err := http.Get("http://" + ing.HTTPAddr() + "/shardz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var shardz []ShardStats
	if err := json.NewDecoder(resp.Body).Decode(&shardz); err != nil {
		t.Fatal(err)
	}
	if len(shardz) != 4 {
		t.Fatalf("/shardz returned %d shards", len(shardz))
	}
}

// TestIngressHTTPProtocolEdges: the hand-rolled HTTP loop answers
// protocol violations cleanly.
func TestIngressHTTPProtocolEdges(t *testing.T) {
	ing, _ := startFront(t, 0, 1e-6)
	base := "http://" + ing.HTTPAddr()
	// Unknown route.
	resp, err := http.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route: %d", resp.StatusCode)
	}
	// Oversized body is refused without buffering.
	big := bytes.Repeat([]byte("x"), maxSubmitBody+1)
	resp, err = http.Post(base+"/submit", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d", resp.StatusCode)
	}
	// Malformed JSON is a clean 400.
	resp, err = http.Post(base+"/submit", "application/json", strings.NewReader(`{"model":`))
	if err != nil {
		t.Fatal(err)
	}
	var rep submitReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(rep.Error, "bad request") {
		t.Fatalf("bad JSON: code=%d rep=%+v", resp.StatusCode, rep)
	}
	// A request with a body on a GET route keeps the keep-alive stream
	// usable (the body is discarded, not misread as the next request).
	client := &http.Client{}
	req, _ := http.NewRequest(http.MethodGet, base+"/healthz", strings.NewReader(`{"x":1}`))
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET with body: %d", resp.StatusCode)
	}
}

// TestParseSubmitBody pins the hand-rolled decoder against
// encoding/json's behavior on the shapes that matter.
func TestParseSubmitBody(t *testing.T) {
	var f submitFields
	ok := []struct {
		in                string
		model, session    string
		batch, deadlineMS int64
	}{
		{`{"model":"NCF","batch":16}`, "NCF", "", 16, 0},
		{`{ "model" : "NCF" , "batch" : 16 }`, "NCF", "", 16, 0},
		{`{"batch":2,"model":"MT-WND","session":"u-1","deadline_ms":250}`, "MT-WND", "u-1", 2, 250},
		{`{"model":"a\"b\\c\nA","batch":1}`, "a\"b\\c\nA", "", 1, 0},
		{`{"model":"NCF","batch":-3}`, "NCF", "", -3, 0},
		{`{"unknown":{"nested":[1,"x",true,null]},"model":"NCF","batch":1,"extra":3.5}`, "NCF", "", 1, 0},
		{`{}`, "", "", 0, 0},
	}
	for _, tc := range ok {
		if err := parseSubmitBody([]byte(tc.in), &f); err != nil {
			t.Fatalf("parse(%s): %v", tc.in, err)
		}
		if string(f.model) != tc.model || string(f.session) != tc.session || f.batch != tc.batch || f.deadlineMS != tc.deadlineMS {
			t.Fatalf("parse(%s) = %+v", tc.in, f)
		}
	}
	for _, bad := range []string{
		``, `[]`, `"x"`, `{`, `{"model"}`, `{"model":}`, `{"batch":1.5}`,
		`{"model":"x" "batch":1}`, `{"model":"unterminated`,
	} {
		if err := parseSubmitBody([]byte(bad), &f); err == nil {
			t.Fatalf("parse(%q) accepted", bad)
		}
	}
	// The encoder matches encoding/json for the reply struct.
	got := appendSubmitReply(nil, []byte("NCF"), 16, 1.25, "g4dn.xlarge", "")
	want, _ := json.Marshal(submitReply{Model: "NCF", Batch: 16, LatencyMS: 1.25, Instance: "g4dn.xlarge"})
	if !bytes.Equal(got, want) {
		t.Fatalf("encoded %s, want %s", got, want)
	}
	got = appendSubmitReply(nil, nil, 0, 0, "", `quote " and <html>`)
	want, _ = json.Marshal(submitReply{Error: `quote " and <html>`})
	if !bytes.Equal(got, want) {
		t.Fatalf("encoded %s, want %s", got, want)
	}
}
