// Package models is the catalog of industry-grade ML inference models the
// paper evaluates (Table 3) together with their ground-truth latency
// surfaces on each instance type.
//
// The paper measures that inference latency is a deterministic, almost
// perfectly linear function of the query batch size (Pearson rho > 0.99 for
// every model/instance pair, < 0.5% variance; Sec. 5.1). We therefore model
// the latency of model m on instance type t as
//
//	lat(b) = a[m,t] + k[m,t] * b   (milliseconds, b = batch size)
//
// calibrated per model so the paper's qualitative regime holds: the base
// GPU instance (g4dn.xlarge) meets QoS at the maximum batch size 1000 while
// every auxiliary CPU type violates QoS beyond a per-type cutoff s, and
// auxiliary types deliver more QPS per dollar than the GPU on small batches.
package models

import (
	"fmt"
	"math"
	"math/rand"

	"kairos/internal/cloud"
)

// MaxBatch is the largest query batch size the system accepts; Kairos
// limits queries to 1000 requests because of QoS constraints (Sec. 5.1).
const MaxBatch = 1000

// Linear is a first-order latency curve lat(b) = Intercept + PerItem*b (ms).
type Linear struct {
	Intercept float64 // fixed per-query overhead in ms
	PerItem   float64 // incremental ms per batched request
}

// At evaluates the curve at batch size b.
func (l Linear) At(b int) float64 { return l.Intercept + l.PerItem*float64(b) }

// Model is one entry of Table 3 plus its latency surface.
type Model struct {
	// Name is the model's short name, e.g. "RM2".
	Name string
	// Description matches Table 3.
	Description string
	// Application is the production service the model backs.
	Application string
	// QoS is the 99th-percentile tail latency target in milliseconds.
	QoS float64
	// Curves maps instance type name to the latency curve.
	Curves map[string]Linear
}

// Oracle yields the service latency of a query; both the ground-truth model
// and noise-injecting wrappers implement it.
type Oracle interface {
	// Latency returns the end-to-end serving latency in milliseconds of a
	// batch-b query on the named instance type.
	Latency(instance string, batch int) float64
}

// curve resolves the latency curve for an instance-type name. Spot-market
// variants ("g4dn.xlarge:spot") run the same hardware as their on-demand
// twin, so a missing exact entry falls back to the on-demand name.
func (m Model) curve(instance string) Linear {
	if c, ok := m.Curves[instance]; ok {
		return c
	}
	if od := cloud.OnDemandName(instance); od != instance {
		if c, ok := m.Curves[od]; ok {
			return c
		}
	}
	panic(fmt.Sprintf("models: model %s has no curve for instance type %s", m.Name, instance))
}

// Latency implements Oracle with the deterministic calibrated surface.
func (m Model) Latency(instance string, batch int) float64 {
	c := m.curve(instance)
	if batch < 1 || batch > MaxBatch {
		panic(fmt.Sprintf("models: batch %d outside [1,%d]", batch, MaxBatch))
	}
	return c.At(batch)
}

// CutoffBatch returns the largest batch size the named instance type can
// serve within the QoS target (the per-type boundary s of Sec. 5.2), or 0
// if even batch 1 violates QoS.
func (m Model) CutoffBatch(instance string) int {
	return m.CutoffBatchAt(instance, m.QoS)
}

// CutoffBatchAt is CutoffBatch against an explicit latency target, used when
// evaluating relaxed QoS settings (Fig. 15b).
func (m Model) CutoffBatchAt(instance string, qos float64) int {
	c := m.curve(instance)
	if c.At(1) > qos {
		return 0
	}
	if c.PerItem <= 0 {
		return MaxBatch
	}
	s := int(math.Floor((qos - c.Intercept) / c.PerItem))
	if s > MaxBatch {
		s = MaxBatch
	}
	return s
}

// WithQoS returns a copy of the model with a different QoS target; curves
// are shared (they are immutable by convention).
func (m Model) WithQoS(qos float64) Model {
	out := m
	out.QoS = qos
	return out
}

// Catalog returns the five production models of Table 3, in paper order.
// The latency coefficients are calibration artifacts of this reproduction
// (see DESIGN.md Sec. 4); the QoS targets are the paper's.
func Catalog() []Model {
	g1 := cloud.G4dnXlarge.Name
	c1 := cloud.C5n2xlarge.Name
	c2 := cloud.R5nLarge.Name
	c3 := cloud.T3Xlarge.Name
	return []Model{
		{
			Name:        "NCF",
			Description: "Neural Collaborative Filtering",
			Application: "Movie recommendation",
			QoS:         5,
			Curves: map[string]Linear{
				g1: {1.10, 0.0025},
				c1: {0.75, 0.0088},
				c2: {0.80, 0.0148},
				c3: {1.00, 0.0240},
			},
		},
		{
			Name:        "RM2",
			Description: "Meta's recommendation model class 2",
			Application: "High-accuracy social media posts ranking",
			QoS:         350,
			Curves: map[string]Linear{
				g1: {80.0, 0.0550},
				c1: {90.0, 0.7650},
				c2: {52.0, 0.8000},
				c3: {55.0, 1.5800},
			},
		},
		{
			Name:        "WND",
			Description: "Google Wide and Deep recommender system",
			Application: "Google App Store",
			QoS:         25,
			Curves: map[string]Linear{
				g1: {6.50, 0.0110},
				c1: {4.50, 0.1020},
				c2: {5.20, 0.1220},
				c3: {5.50, 0.1800},
			},
		},
		{
			Name:        "MT-WND",
			Description: "Multi-Task Wide and Deep, predicts multiple metrics in parallel",
			Application: "YouTube video recommendation",
			QoS:         25,
			Curves: map[string]Linear{
				g1: {5.50, 0.0120},
				c1: {4.40, 0.0924},
				c2: {5.00, 0.1300},
				c3: {7.50, 0.1750},
			},
		},
		{
			Name:        "DIEN",
			Description: "Alibaba Deep Interest Evolution Network",
			Application: "E-commerce",
			QoS:         35,
			Curves: map[string]Linear{
				g1: {8.50, 0.0190},
				c1: {8.00, 0.1089},
				c2: {7.20, 0.1400},
				c3: {8.00, 0.1720},
			},
		},
	}
}

// ByName returns the catalog model with the given name.
func ByName(name string) (Model, error) {
	for _, m := range Catalog() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("models: unknown model %q", name)
}

// MustByName is ByName that panics on unknown names; for tests and examples.
func MustByName(name string) Model {
	m, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Names lists the catalog model names in paper order.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, m := range cat {
		out[i] = m.Name
	}
	return out
}

// NoisyOracle wraps a ground-truth oracle with multiplicative Gaussian
// noise, emulating cloud performance variability (Fig. 16b injects Gaussian
// white noise with 5% deviation into the latency the serving layer actually
// experiences while the predictor keeps its clean estimate).
type NoisyOracle struct {
	Base Oracle
	// StdDevFrac is the noise standard deviation as a fraction of the true
	// latency (0.05 reproduces the paper's setting).
	StdDevFrac float64
	rng        *rand.Rand
}

// NewNoisyOracle builds a NoisyOracle seeded deterministically.
func NewNoisyOracle(base Oracle, stdDevFrac float64, seed int64) *NoisyOracle {
	return &NoisyOracle{Base: base, StdDevFrac: stdDevFrac, rng: rand.New(rand.NewSource(seed))}
}

// Latency implements Oracle: true latency times (1 + N(0, StdDevFrac)),
// clamped to stay positive.
func (n *NoisyOracle) Latency(instance string, batch int) float64 {
	base := n.Base.Latency(instance, batch)
	noisy := base * (1 + n.rng.NormFloat64()*n.StdDevFrac)
	if noisy < base*0.1 {
		noisy = base * 0.1
	}
	return noisy
}
