package models

import (
	"math"
	"testing"
	"testing/quick"

	"kairos/internal/cloud"
)

func TestCatalogMatchesTable3(t *testing.T) {
	wantQoS := map[string]float64{
		"NCF":    5,
		"RM2":    350,
		"WND":    25,
		"MT-WND": 25,
		"DIEN":   35,
	}
	cat := Catalog()
	if len(cat) != len(wantQoS) {
		t.Fatalf("catalog has %d models, want %d", len(cat), len(wantQoS))
	}
	for _, m := range cat {
		want, ok := wantQoS[m.Name]
		if !ok {
			t.Fatalf("unexpected model %s", m.Name)
		}
		if m.QoS != want {
			t.Errorf("%s QoS = %v, want %v", m.Name, m.QoS, want)
		}
		if m.Application == "" || m.Description == "" {
			t.Errorf("%s missing Table 3 metadata", m.Name)
		}
		for _, it := range cloud.DefaultPool() {
			if _, ok := m.Curves[it.Name]; !ok {
				t.Errorf("%s has no latency curve for %s", m.Name, it.Name)
			}
		}
	}
}

// TestBaseMeetsQoSAuxiliariesDoNot pins the regime of Sec. 7: only
// g4dn.xlarge can meet QoS for all batch sizes; every auxiliary type
// violates QoS at batch 1000 but can serve some smaller batches.
func TestBaseMeetsQoSAuxiliariesDoNot(t *testing.T) {
	pool := cloud.DefaultPool()
	for _, m := range Catalog() {
		base := pool.Base().Name
		if got := m.Latency(base, MaxBatch); got > m.QoS {
			t.Errorf("%s on %s at batch %d: %vms exceeds QoS %vms", m.Name, base, MaxBatch, got, m.QoS)
		}
		if m.CutoffBatch(base) != MaxBatch {
			t.Errorf("%s base cutoff = %d, want %d", m.Name, m.CutoffBatch(base), MaxBatch)
		}
		for _, it := range pool[1:] {
			if got := m.Latency(it.Name, MaxBatch); got <= m.QoS {
				t.Errorf("%s on auxiliary %s meets QoS at max batch (%vms <= %vms); it must not", m.Name, it.Name, got, m.QoS)
			}
			s := m.CutoffBatch(it.Name)
			if s <= 0 || s >= MaxBatch {
				t.Errorf("%s on %s cutoff s = %d, want within (0,%d)", m.Name, it.Name, s, MaxBatch)
			}
			// The cutoff is exact: s meets QoS, s+1 violates it.
			if m.Latency(it.Name, s) > m.QoS {
				t.Errorf("%s on %s: batch %d should meet QoS", m.Name, it.Name, s)
			}
			if m.Latency(it.Name, s+1) <= m.QoS {
				t.Errorf("%s on %s: batch %d should violate QoS", m.Name, it.Name, s+1)
			}
		}
	}
}

// TestAuxiliaryCostEffectiveOnSmallBatches pins the heterogeneity upside
// (Sec. 4): for small queries, the cheap auxiliary types (r5n.large and
// t3.xlarge) achieve more QPS per dollar than the base GPU, otherwise
// heterogeneous serving could never win. c5n.2xlarge — priced close to the
// GPU — is allowed to be dominated for some models (it is exactly what
// makes configurations like (1,4,2) in Fig. 1 a bad deal).
func TestAuxiliaryCostEffectiveOnSmallBatches(t *testing.T) {
	pool := cloud.DefaultPool()
	const smallBatch = 32
	for _, m := range Catalog() {
		base := pool.Base()
		baseQPSPerDollar := 1000 / m.Latency(base.Name, smallBatch) / base.PricePerHour
		for _, it := range pool[1:] {
			if it.Name == cloud.C5n2xlarge.Name {
				continue
			}
			auxQPSPerDollar := 1000 / m.Latency(it.Name, smallBatch) / it.PricePerHour
			if auxQPSPerDollar <= baseQPSPerDollar {
				t.Errorf("%s: %s small-batch QPS/$ %.1f not better than base %.1f",
					m.Name, it.Name, auxQPSPerDollar, baseQPSPerDollar)
			}
		}
	}
}

// TestGPUWinsLargeBatches pins the other half of the trade-off: at the
// maximum batch size the base GPU must be the fastest device in absolute
// latency ("queries with larger batch sizes have higher speedups from CPU
// to GPU", Sec. 5.1).
func TestGPUWinsLargeBatches(t *testing.T) {
	pool := cloud.DefaultPool()
	for _, m := range Catalog() {
		baseLat := m.Latency(pool.Base().Name, MaxBatch)
		for _, it := range pool[1:] {
			if m.Latency(it.Name, MaxBatch) <= baseLat {
				t.Errorf("%s: auxiliary %s beats GPU at batch %d", m.Name, it.Name, MaxBatch)
			}
		}
	}
}

// TestSpeedupGrowsWithBatch verifies that the CPU->GPU speedup is
// monotonically increasing in batch size for every model and auxiliary type,
// the property Kairos's matching exploits (Fig. 5).
func TestSpeedupGrowsWithBatch(t *testing.T) {
	pool := cloud.DefaultPool()
	for _, m := range Catalog() {
		for _, it := range pool[1:] {
			prev := 0.0
			for _, b := range []int{1, 10, 100, 500, 1000} {
				speedup := m.Latency(it.Name, b) / m.Latency(pool.Base().Name, b)
				if speedup < prev {
					t.Errorf("%s/%s: speedup not monotone at batch %d", m.Name, it.Name, b)
				}
				prev = speedup
			}
		}
	}
}

func TestLatencyMonotoneInBatch(t *testing.T) {
	for _, m := range Catalog() {
		for inst := range m.Curves {
			f := func(a, b uint16) bool {
				ba := int(a%MaxBatch) + 1
				bb := int(b%MaxBatch) + 1
				if ba > bb {
					ba, bb = bb, ba
				}
				return m.Latency(inst, ba) <= m.Latency(inst, bb)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Errorf("%s/%s: %v", m.Name, inst, err)
			}
		}
	}
}

func TestLatencyPanicsOutsideRange(t *testing.T) {
	m := MustByName("RM2")
	for _, batch := range []int{0, -1, MaxBatch + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for batch %d", batch)
				}
			}()
			m.Latency(cloud.G4dnXlarge.Name, batch)
		}()
	}
}

func TestLatencyPanicsUnknownInstance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustByName("NCF").Latency("p3.2xlarge", 10)
}

func TestByName(t *testing.T) {
	m, err := ByName("DIEN")
	if err != nil || m.Name != "DIEN" {
		t.Fatalf("ByName(DIEN) = %v, %v", m.Name, err)
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestNames(t *testing.T) {
	want := []string{"NCF", "RM2", "WND", "MT-WND", "DIEN"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestWithQoSRelaxesCutoff(t *testing.T) {
	m := MustByName("WND")
	inst := cloud.C5n2xlarge.Name
	relaxed := m.WithQoS(m.QoS * 1.2) // Fig. 15b: QoS target 20% higher
	if relaxed.QoS != m.QoS*1.2 {
		t.Fatalf("relaxed QoS = %v", relaxed.QoS)
	}
	if relaxed.CutoffBatch(inst) <= m.CutoffBatch(inst) {
		t.Fatal("relaxing QoS must increase the auxiliary cutoff")
	}
	// Original model untouched.
	if m.QoS != 25 {
		t.Fatal("WithQoS mutated the receiver")
	}
}

func TestCutoffBatchAtZero(t *testing.T) {
	m := MustByName("NCF")
	if got := m.CutoffBatchAt(cloud.T3Xlarge.Name, 0.01); got != 0 {
		t.Fatalf("cutoff at impossible QoS = %d, want 0", got)
	}
}

func TestNoisyOracleStatistics(t *testing.T) {
	m := MustByName("RM2")
	noisy := NewNoisyOracle(m, 0.05, 123)
	inst := cloud.G4dnXlarge.Name
	base := m.Latency(inst, 200)
	n := 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := noisy.Latency(inst, 200)
		if v <= 0 {
			t.Fatal("noisy latency must stay positive")
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean-base)/base > 0.01 {
		t.Fatalf("noisy mean %v deviates from base %v", mean, base)
	}
	if math.Abs(std/base-0.05) > 0.01 {
		t.Fatalf("noise std fraction = %v, want ~0.05", std/base)
	}
}

func TestNoisyOracleDeterministicPerSeed(t *testing.T) {
	m := MustByName("NCF")
	a := NewNoisyOracle(m, 0.05, 7)
	b := NewNoisyOracle(m, 0.05, 7)
	for i := 0; i < 100; i++ {
		if a.Latency(cloud.R5nLarge.Name, 50) != b.Latency(cloud.R5nLarge.Name, 50) {
			t.Fatal("same seed must give identical noise streams")
		}
	}
}
