// Package predictor implements the query-latency prediction Kairos relies
// on to build its L matrix (Sec. 5.1, "Remarks on assumptions and
// overhead"): inference latency is almost perfectly linear in batch size,
// so Kairos "starts with a linear model but ... quickly transition[s] into a
// lookup table after processing more queries", learned completely online
// without prior profiling.
package predictor

import (
	"fmt"
	"math"
)

// Predictor estimates serving latency per (instance type, batch size) pair.
type Predictor interface {
	// Predict returns the estimated latency in ms of a batch-b query on the
	// named instance type. Implementations may return 0 when they have no
	// information yet (optimistic cold start).
	Predict(instance string, batch int) float64
	// Observe feeds back one measured latency.
	Observe(instance string, batch int, latencyMS float64)
}

// Oracle adapts a ground-truth latency function into a Predictor that never
// needs observations; it models the paper's "accurately predicts query
// latency" assumption used by CLKWRK and by the baselines.
type Oracle struct {
	// Latency is the ground-truth surface.
	Latency func(instance string, batch int) float64
}

// Predict implements Predictor.
func (o Oracle) Predict(instance string, batch int) float64 { return o.Latency(instance, batch) }

// Observe implements Predictor; the oracle ignores feedback.
func (o Oracle) Observe(string, int, float64) {}

// perInstance carries the regression state and lookup table for one
// instance type.
type perInstance struct {
	// lookup holds the running mean of observed latencies per exact batch
	// size; with deterministic service times one observation is exact.
	lookup map[int]meanVar
	// least-squares accumulators over all observations.
	n                        float64
	sumX, sumY, sumXX, sumXY float64
}

type meanVar struct {
	n    float64
	mean float64
}

func (m meanVar) add(v float64) meanVar {
	m.n++
	m.mean += (v - m.mean) / m.n
	return m
}

// Online is the paper's online learner: exact lookup for batch sizes seen
// before, linear extrapolation otherwise, optimistic zero before any data.
// It is not safe for concurrent use; the central controller serializes
// access.
type Online struct {
	instances map[string]*perInstance
}

// NewOnline returns an empty online predictor.
func NewOnline() *Online {
	return &Online{instances: make(map[string]*perInstance)}
}

// Observe implements Predictor.
func (p *Online) Observe(instance string, batch int, latencyMS float64) {
	if batch < 1 {
		panic(fmt.Sprintf("predictor: batch %d < 1", batch))
	}
	if latencyMS < 0 || math.IsNaN(latencyMS) || math.IsInf(latencyMS, 0) {
		panic(fmt.Sprintf("predictor: invalid latency %v", latencyMS))
	}
	st, ok := p.instances[instance]
	if !ok {
		st = &perInstance{lookup: make(map[int]meanVar)}
		p.instances[instance] = st
	}
	st.lookup[batch] = st.lookup[batch].add(latencyMS)
	x := float64(batch)
	st.n++
	st.sumX += x
	st.sumY += latencyMS
	st.sumXX += x * x
	st.sumXY += x * latencyMS
}

// Predict implements Predictor. Resolution order: exact lookup hit ->
// fitted line (needs two distinct batch sizes) -> single-point flat
// estimate -> optimistic zero.
func (p *Online) Predict(instance string, batch int) float64 {
	st, ok := p.instances[instance]
	if !ok {
		return 0
	}
	if mv, ok := st.lookup[batch]; ok {
		return mv.mean
	}
	slope, intercept, ok := st.fit()
	if ok {
		v := intercept + slope*float64(batch)
		if v < 0 {
			v = 0
		}
		return v
	}
	if st.n > 0 {
		return st.sumY / st.n
	}
	return 0
}

// fit returns the least-squares line when at least two distinct batch sizes
// have been observed.
func (st *perInstance) fit() (slope, intercept float64, ok bool) {
	if st.n < 2 {
		return 0, 0, false
	}
	denom := st.n*st.sumXX - st.sumX*st.sumX
	if denom <= 1e-12 {
		return 0, 0, false // all observations at the same batch size
	}
	slope = (st.n*st.sumXY - st.sumX*st.sumY) / denom
	intercept = (st.sumY - slope*st.sumX) / st.n
	return slope, intercept, true
}

// Known reports whether the exact (instance, batch) pair has been observed,
// i.e. whether Predict serves it from the lookup table.
func (p *Online) Known(instance string, batch int) bool {
	st, ok := p.instances[instance]
	if !ok {
		return false
	}
	_, hit := st.lookup[batch]
	return hit
}

// Observations returns the total number of latencies observed for the
// instance type.
func (p *Online) Observations(instance string) int {
	st, ok := p.instances[instance]
	if !ok {
		return 0
	}
	return int(st.n)
}

// Warmed returns an Online predictor pre-trained from a ground-truth oracle
// on a few probe batch sizes per instance; experiments use it when they want
// Kairos's own learned tables without replaying a cold start.
func Warmed(latency func(instance string, batch int) float64, instances []string, probes []int) *Online {
	p := NewOnline()
	for _, inst := range instances {
		for _, b := range probes {
			p.Observe(inst, b, latency(inst, b))
		}
	}
	return p
}
