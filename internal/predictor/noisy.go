package predictor

import (
	"math/rand"
	"sync"
)

// Noisy wraps a predictor with additive Gaussian white noise on every
// prediction, reproducing the Fig. 16b robustness study: the paper injects
// 5% Gaussian noise "in latency prediction to emulate performance
// variability in the cloud" while the serving substrate itself stays
// deterministic.
type Noisy struct {
	// Base supplies the clean estimates.
	Base Predictor
	// StdDevFrac is the noise standard deviation as a fraction of the
	// clean prediction (0.05 reproduces the paper's setting).
	StdDevFrac float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewNoisy builds a Noisy predictor with a deterministic seed.
func NewNoisy(base Predictor, stdDevFrac float64, seed int64) *Noisy {
	if base == nil {
		panic("predictor: Noisy needs a base predictor")
	}
	if stdDevFrac < 0 {
		panic("predictor: negative noise fraction")
	}
	return &Noisy{Base: base, StdDevFrac: stdDevFrac, rng: rand.New(rand.NewSource(seed))}
}

// Predict implements Predictor: clean estimate times (1 + N(0, sigma)),
// clamped positive.
func (n *Noisy) Predict(instance string, batch int) float64 {
	clean := n.Base.Predict(instance, batch)
	n.mu.Lock()
	factor := 1 + n.rng.NormFloat64()*n.StdDevFrac
	n.mu.Unlock()
	if factor < 0.1 {
		factor = 0.1
	}
	return clean * factor
}

// Observe implements Predictor, feeding the base learner untouched.
func (n *Noisy) Observe(instance string, batch int, latencyMS float64) {
	n.Base.Observe(instance, batch, latencyMS)
}
