package predictor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kairos/internal/cloud"
	"kairos/internal/models"
)

func TestOracleIsExact(t *testing.T) {
	m := models.MustByName("RM2")
	o := Oracle{Latency: m.Latency}
	for _, b := range []int{1, 57, 400, 1000} {
		if got := o.Predict(cloud.G4dnXlarge.Name, b); got != m.Latency(cloud.G4dnXlarge.Name, b) {
			t.Fatalf("oracle mismatch at batch %d", b)
		}
	}
	o.Observe("x", 1, 1) // must be a no-op
}

func TestOnlineColdStartIsOptimisticZero(t *testing.T) {
	p := NewOnline()
	if got := p.Predict("g4dn.xlarge", 100); got != 0 {
		t.Fatalf("cold-start prediction = %v, want 0", got)
	}
	if p.Known("g4dn.xlarge", 100) {
		t.Fatal("nothing should be known yet")
	}
}

func TestOnlineSinglePointFlat(t *testing.T) {
	p := NewOnline()
	p.Observe("inst", 100, 50)
	if got := p.Predict("inst", 100); got != 50 {
		t.Fatalf("exact lookup = %v", got)
	}
	if got := p.Predict("inst", 500); got != 50 {
		t.Fatalf("single-point extrapolation = %v, want flat 50", got)
	}
}

func TestOnlineLearnsLinearModelExactly(t *testing.T) {
	// Two observations of a deterministic linear surface pin the line;
	// every other batch size must then be predicted exactly (Sec. 5.1:
	// latency "highly predictable").
	m := models.MustByName("WND")
	inst := cloud.C5n2xlarge.Name
	p := NewOnline()
	p.Observe(inst, 10, m.Latency(inst, 10))
	p.Observe(inst, 800, m.Latency(inst, 800))
	for _, b := range []int{1, 50, 123, 456, 1000} {
		got := p.Predict(inst, b)
		want := m.Latency(inst, b)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("batch %d: predicted %v, want %v", b, got, want)
		}
	}
}

func TestOnlineTransitionsToLookupTable(t *testing.T) {
	// After observing a batch size, the exact (mean) measurement wins over
	// the fitted line — the paper's lookup-table transition.
	p := NewOnline()
	p.Observe("inst", 10, 100)
	p.Observe("inst", 20, 200)
	// A nonlinear outlier at batch 15: the line predicts 150 but the
	// lookup must serve the observed 999.
	p.Observe("inst", 15, 999)
	if got := p.Predict("inst", 15); got != 999 {
		t.Fatalf("lookup = %v, want 999", got)
	}
	if !p.Known("inst", 15) || p.Known("inst", 16) {
		t.Fatal("Known bookkeeping wrong")
	}
	if p.Observations("inst") != 3 {
		t.Fatalf("Observations = %d", p.Observations("inst"))
	}
	if p.Observations("other") != 0 {
		t.Fatal("unknown instance should have 0 observations")
	}
}

func TestOnlineLookupAveragesNoise(t *testing.T) {
	p := NewOnline()
	rng := rand.New(rand.NewSource(8))
	true0 := 80.0
	n := 5000
	for i := 0; i < n; i++ {
		p.Observe("inst", 42, true0*(1+0.05*rng.NormFloat64()))
	}
	got := p.Predict("inst", 42)
	if math.Abs(got-true0)/true0 > 0.01 {
		t.Fatalf("noisy lookup mean = %v, want ~%v", got, true0)
	}
}

func TestOnlineSameBatchTwiceNoLine(t *testing.T) {
	// Two observations at the same batch size cannot pin a slope; distinct
	// batch sizes must fall back to the mean, not a degenerate fit.
	p := NewOnline()
	p.Observe("inst", 100, 10)
	p.Observe("inst", 100, 30)
	if got := p.Predict("inst", 500); got != 20 {
		t.Fatalf("degenerate fit prediction = %v, want mean 20", got)
	}
}

func TestOnlineNeverPredictsNegative(t *testing.T) {
	p := NewOnline()
	// Steep decreasing observations would extrapolate below zero for large
	// batches if unclamped.
	p.Observe("inst", 10, 1000)
	p.Observe("inst", 20, 1)
	if got := p.Predict("inst", 1000); got < 0 {
		t.Fatalf("negative prediction %v", got)
	}
}

func TestOnlineConvergesOnAllCatalogSurfaces(t *testing.T) {
	pool := cloud.DefaultPool()
	rng := rand.New(rand.NewSource(10))
	for _, m := range models.Catalog() {
		p := NewOnline()
		for i := 0; i < 50; i++ {
			inst := pool[rng.Intn(len(pool))].Name
			b := rng.Intn(models.MaxBatch) + 1
			p.Observe(inst, b, m.Latency(inst, b))
		}
		f := func(instIdx uint8, batch uint16) bool {
			inst := pool[int(instIdx)%len(pool)].Name
			b := int(batch%models.MaxBatch) + 1
			if p.Observations(inst) < 2 {
				return true // not enough data for that type; nothing to check
			}
			return math.Abs(p.Predict(inst, b)-m.Latency(inst, b)) < 1e-6
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestWarmed(t *testing.T) {
	m := models.MustByName("DIEN")
	insts := []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name}
	p := Warmed(m.Latency, insts, []int{1, 500, 1000})
	for _, inst := range insts {
		if p.Observations(inst) != 3 {
			t.Fatalf("%s observations = %d", inst, p.Observations(inst))
		}
		if math.Abs(p.Predict(inst, 777)-m.Latency(inst, 777)) > 1e-9 {
			t.Fatalf("%s prediction off after warmup", inst)
		}
	}
}

func TestObservePanicsOnInvalid(t *testing.T) {
	p := NewOnline()
	cases := []struct {
		batch int
		lat   float64
	}{
		{0, 10},
		{5, -1},
		{5, math.NaN()},
		{5, math.Inf(1)},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for batch=%d lat=%v", tc.batch, tc.lat)
				}
			}()
			p.Observe("inst", tc.batch, tc.lat)
		}()
	}
}
