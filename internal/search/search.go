// Package search implements the configuration-space exploration algorithms
// the paper compares Kairos+ against (Sec. 8.3, Fig. 10-11): random search,
// simulated annealing (the Sec. 4 motivation experiment), a genetic
// algorithm, and exhaustive sweep — all instrumented to count expensive
// online evaluations, and all optionally granted Kairos+'s
// sub-configuration pruning ("we purposely provide these competing
// algorithms with the same sub-configuration pruning mechanism").
package search

import (
	"fmt"
	"math"
	"math/rand"

	"kairos/internal/cloud"
)

// Evaluator measures the actual allowable throughput of a configuration —
// the expensive operation every online search spends (Sec. 4).
type Evaluator func(cloud.Config) float64

// Record is one online evaluation.
type Record struct {
	Config cloud.Config
	QPS    float64
}

// Result summarizes a search run.
type Result struct {
	// Best is the highest-throughput configuration evaluated.
	Best cloud.Config
	// BestQPS is its measured throughput.
	BestQPS float64
	// Evaluations is the number of distinct online evaluations spent.
	Evaluations int
	// History lists evaluations in order.
	History []Record
	// ReachedTarget reports whether the stop target was hit before the
	// evaluation budget ran out.
	ReachedTarget bool
}

// Session tracks evaluations across one search run: memoization (repeat
// visits are free, matching how a real system would cache a measured
// configuration), sub-configuration pruning, a stop target, and a hard
// evaluation budget.
type Session struct {
	// Eval is the underlying expensive evaluator.
	Eval Evaluator
	// Target stops the search once a configuration with QPS >= Target has
	// been evaluated; zero disables.
	Target float64
	// MaxEvals caps spending; zero means unlimited.
	MaxEvals int
	// Prune enables sub-configuration pruning against evaluated configs.
	Prune bool

	res       Result
	memo      map[string]float64
	evaluated []cloud.Config
}

// NewSession builds a session.
func NewSession(eval Evaluator, target float64, maxEvals int, prune bool) *Session {
	if eval == nil {
		panic("search: nil evaluator")
	}
	return &Session{
		Eval:     eval,
		Target:   target,
		MaxEvals: maxEvals,
		Prune:    prune,
		memo:     make(map[string]float64),
	}
}

// Done reports whether the search should stop (target hit or budget spent).
func (s *Session) Done() bool {
	if s.res.ReachedTarget {
		return true
	}
	return s.MaxEvals > 0 && s.res.Evaluations >= s.MaxEvals
}

// Prunable reports whether the configuration is dominated by an evaluated
// one (a sub-configuration can never do better), so skipping it is free.
func (s *Session) Prunable(c cloud.Config) bool {
	if !s.Prune {
		return false
	}
	for _, ev := range s.evaluated {
		if c.IsSubConfigOf(ev) {
			return true
		}
	}
	return false
}

// Measure evaluates a configuration (memoized) and updates the running
// result. It returns the throughput.
func (s *Session) Measure(c cloud.Config) float64 {
	key := c.Key()
	if v, ok := s.memo[key]; ok {
		return v
	}
	if s.Done() {
		// Out of budget: report the memoized floor without spending.
		return 0
	}
	v := s.Eval(c)
	s.memo[key] = v
	s.evaluated = append(s.evaluated, c.Clone())
	s.res.Evaluations++
	s.res.History = append(s.res.History, Record{Config: c.Clone(), QPS: v})
	if v > s.res.BestQPS || s.res.Best == nil {
		s.res.BestQPS = v
		s.res.Best = c.Clone()
	}
	if s.Target > 0 && v >= s.Target {
		s.res.ReachedTarget = true
	}
	return v
}

// Result returns the accumulated outcome.
func (s *Session) Result() Result { return s.res }

// Exhaustive evaluates every configuration (subject to the session's
// budget and pruning) and is the offline ground truth the paper's
// "optimal configuration determined via exhaustive offline search" uses.
func Exhaustive(s *Session, configs []cloud.Config) Result {
	for _, c := range configs {
		if s.Done() {
			break
		}
		if s.Prunable(c) {
			continue
		}
		s.Measure(c)
	}
	return s.Result()
}

// Random explores configurations in a seeded random order (RAND in
// Fig. 11).
func Random(s *Session, configs []cloud.Config, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(configs))
	for _, idx := range order {
		if s.Done() {
			break
		}
		c := configs[idx]
		if s.Prunable(c) {
			continue
		}
		s.Measure(c)
	}
	return s.Result()
}

// AnnealingOptions tune SimulatedAnnealing.
type AnnealingOptions struct {
	// InitialTemp and Cooling control acceptance of downhill moves:
	// T_{k+1} = Cooling * T_k. Zero values default to 30 and 0.9.
	InitialTemp, Cooling float64
	// Steps is the number of annealing iterations (default 60).
	Steps int
}

func (o AnnealingOptions) withDefaults() AnnealingOptions {
	if o.InitialTemp == 0 {
		o.InitialTemp = 30
	}
	if o.Cooling == 0 {
		o.Cooling = 0.9
	}
	if o.Steps == 0 {
		o.Steps = 60
	}
	return o
}

// SimulatedAnnealing explores by local moves (add/remove one instance)
// within the budget, accepting worse configurations with Boltzmann
// probability. It reproduces the Sec. 4 motivation experiment (Fig. 2).
func SimulatedAnnealing(s *Session, pool cloud.Pool, budget float64, start cloud.Config, seed int64, opts AnnealingOptions) Result {
	opts = opts.withDefaults()
	if len(start) != len(pool) {
		panic(fmt.Sprintf("search: start config %v does not match pool", start))
	}
	rng := rand.New(rand.NewSource(seed))
	cur := start.Clone()
	curVal := s.Measure(cur)
	temp := opts.InitialTemp
	for step := 0; step < opts.Steps && !s.Done(); step++ {
		next, ok := neighbor(rng, pool, budget, cur)
		if !ok {
			break
		}
		if s.Prunable(next) {
			temp *= opts.Cooling
			continue
		}
		nextVal := s.Measure(next)
		if nextVal >= curVal || rng.Float64() < math.Exp((nextVal-curVal)/temp) {
			cur, curVal = next, nextVal
		}
		temp *= opts.Cooling
	}
	return s.Result()
}

// neighbor proposes a single-instance add/remove staying within budget and
// non-empty.
func neighbor(rng *rand.Rand, pool cloud.Pool, budget float64, cur cloud.Config) (cloud.Config, bool) {
	for attempt := 0; attempt < 64; attempt++ {
		next := cur.Clone()
		i := rng.Intn(len(pool))
		if rng.Intn(2) == 0 {
			next[i]++
			if !pool.WithinBudget(next, budget) {
				continue
			}
		} else {
			if next[i] == 0 {
				continue
			}
			next[i]--
			if next.Total() == 0 {
				continue
			}
		}
		return next, true
	}
	return nil, false
}

// GeneticOptions tune Genetic.
type GeneticOptions struct {
	// Population and Generations size the run (defaults 12 and 10).
	Population, Generations int
	// MutationRate is the per-gene mutation probability (default 0.25).
	MutationRate float64
}

func (o GeneticOptions) withDefaults() GeneticOptions {
	if o.Population == 0 {
		o.Population = 12
	}
	if o.Generations == 0 {
		o.Generations = 10
	}
	if o.MutationRate == 0 {
		o.MutationRate = 0.25
	}
	return o
}

// Genetic runs a steady genetic algorithm over the budgeted space (GENE in
// Fig. 11): tournament selection, uniform crossover, +/-1 mutation, budget
// repair by random removal.
func Genetic(s *Session, pool cloud.Pool, budget float64, configs []cloud.Config, seed int64, opts GeneticOptions) Result {
	opts = opts.withDefaults()
	if len(configs) == 0 {
		return s.Result()
	}
	rng := rand.New(rand.NewSource(seed))
	pop := make([]cloud.Config, opts.Population)
	fit := make([]float64, opts.Population)
	for i := range pop {
		pop[i] = configs[rng.Intn(len(configs))].Clone()
	}
	measure := func(c cloud.Config) float64 {
		if s.Prunable(c) {
			return 0
		}
		return s.Measure(c)
	}
	for i := range pop {
		if s.Done() {
			return s.Result()
		}
		fit[i] = measure(pop[i])
	}
	tournament := func() cloud.Config {
		a, b := rng.Intn(len(pop)), rng.Intn(len(pop))
		if fit[a] >= fit[b] {
			return pop[a]
		}
		return pop[b]
	}
	for gen := 0; gen < opts.Generations && !s.Done(); gen++ {
		next := make([]cloud.Config, 0, len(pop))
		for len(next) < len(pop) {
			child := crossover(rng, tournament(), tournament())
			mutate(rng, child, opts.MutationRate)
			repair(rng, pool, budget, child)
			next = append(next, child)
		}
		pop = next
		for i := range pop {
			if s.Done() {
				return s.Result()
			}
			fit[i] = measure(pop[i])
		}
	}
	return s.Result()
}

func crossover(rng *rand.Rand, a, b cloud.Config) cloud.Config {
	child := a.Clone()
	for i := range child {
		if rng.Intn(2) == 1 {
			child[i] = b[i]
		}
	}
	return child
}

func mutate(rng *rand.Rand, c cloud.Config, rate float64) {
	for i := range c {
		if rng.Float64() >= rate {
			continue
		}
		if rng.Intn(2) == 0 {
			c[i]++
		} else if c[i] > 0 {
			c[i]--
		}
	}
}

// repair removes random instances until the configuration fits the budget
// and is non-empty.
func repair(rng *rand.Rand, pool cloud.Pool, budget float64, c cloud.Config) {
	for !pool.WithinBudget(c, budget) {
		i := rng.Intn(len(c))
		if c[i] > 0 {
			c[i]--
		}
	}
	if c.Total() == 0 {
		c[rng.Intn(len(c))] = 1
	}
}
