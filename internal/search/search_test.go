package search

import (
	"testing"

	"kairos/internal/cloud"
)

// synthetic landscape: a smooth unimodal function over configs with known
// argmax, standing in for the expensive throughput evaluator.
func landscape(peak cloud.Config) Evaluator {
	return func(c cloud.Config) float64 {
		return 1000 - c.SquaredDistance(peak)*7
	}
}

func testSpace(t *testing.T) ([]cloud.Config, cloud.Pool, float64) {
	t.Helper()
	pool := cloud.ThreeTypePool()
	budget := 2.5
	configs := pool.Enumerate(budget)
	if len(configs) < 100 {
		t.Fatalf("space too small: %d", len(configs))
	}
	return configs, pool, budget
}

func TestSessionMemoization(t *testing.T) {
	calls := 0
	s := NewSession(func(cloud.Config) float64 { calls++; return 5 }, 0, 0, false)
	c := cloud.Config{1, 2, 3}
	s.Measure(c)
	s.Measure(c)
	if calls != 1 {
		t.Fatalf("eval called %d times, want 1 (memoized)", calls)
	}
	if s.Result().Evaluations != 1 {
		t.Fatalf("evaluations = %d", s.Result().Evaluations)
	}
}

func TestSessionTargetStops(t *testing.T) {
	s := NewSession(landscape(cloud.Config{2, 1, 3}), 1000, 0, false)
	s.Measure(cloud.Config{0, 0, 1}) // far from peak
	if s.Done() {
		t.Fatal("should not stop before target")
	}
	s.Measure(cloud.Config{2, 1, 3}) // the peak: value 1000 >= target
	if !s.Done() || !s.Result().ReachedTarget {
		t.Fatal("target hit must stop the session")
	}
}

func TestSessionMaxEvals(t *testing.T) {
	s := NewSession(landscape(cloud.Config{1, 1, 1}), 0, 2, false)
	s.Measure(cloud.Config{1, 0, 0})
	s.Measure(cloud.Config{0, 1, 0})
	if !s.Done() {
		t.Fatal("budget exhausted must stop")
	}
	if got := s.Measure(cloud.Config{0, 0, 1}); got != 0 {
		t.Fatalf("out-of-budget Measure returned %v, want 0", got)
	}
	if s.Result().Evaluations != 2 {
		t.Fatalf("evaluations = %d", s.Result().Evaluations)
	}
}

func TestSessionPruning(t *testing.T) {
	s := NewSession(landscape(cloud.Config{2, 2, 2}), 0, 0, true)
	s.Measure(cloud.Config{2, 2, 2})
	if !s.Prunable(cloud.Config{1, 2, 2}) {
		t.Fatal("sub-config of an evaluated config must be prunable")
	}
	if s.Prunable(cloud.Config{3, 0, 0}) {
		t.Fatal("incomparable config must not be prunable")
	}
	off := NewSession(landscape(cloud.Config{2, 2, 2}), 0, 0, false)
	off.Measure(cloud.Config{2, 2, 2})
	if off.Prunable(cloud.Config{1, 2, 2}) {
		t.Fatal("pruning disabled must never prune")
	}
}

func TestNewSessionPanicsOnNilEval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSession(nil, 0, 0, false)
}

func TestExhaustiveFindsOptimum(t *testing.T) {
	configs, _, _ := testSpace(t)
	peak := cloud.Config{3, 1, 3}
	s := NewSession(landscape(peak), 0, 0, false)
	res := Exhaustive(s, configs)
	if !res.Best.Equal(peak) {
		t.Fatalf("best = %v, want %v", res.Best, peak)
	}
	if res.Evaluations != len(configs) {
		t.Fatalf("evaluations = %d, want %d", res.Evaluations, len(configs))
	}
}

func TestRandomReachesTargetEventually(t *testing.T) {
	configs, _, _ := testSpace(t)
	peak := cloud.Config{2, 0, 4}
	s := NewSession(landscape(peak), 1000, 0, false)
	res := Random(s, configs, 7)
	if !res.ReachedTarget {
		t.Fatal("random over the whole space must hit the target")
	}
	if !res.Best.Equal(peak) {
		t.Fatalf("best = %v, want %v", res.Best, peak)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	configs, _, _ := testSpace(t)
	mk := func() Result {
		s := NewSession(landscape(cloud.Config{1, 2, 1}), 1000, 0, false)
		return Random(s, configs, 11)
	}
	a, b := mk(), mk()
	if a.Evaluations != b.Evaluations || !a.Best.Equal(b.Best) {
		t.Fatal("random search not deterministic per seed")
	}
}

func TestRandomPruningSavesEvaluations(t *testing.T) {
	configs, _, _ := testSpace(t)
	peak := cloud.Config{0, 0, 1} // tiny config: nearly everything dominated
	withPrune := Random(NewSession(landscape(peak), 0, 0, true), configs, 13)
	without := Random(NewSession(landscape(peak), 0, 0, false), configs, 13)
	if withPrune.Evaluations >= without.Evaluations {
		t.Fatalf("pruning did not save evaluations: %d vs %d",
			withPrune.Evaluations, without.Evaluations)
	}
}

func TestSimulatedAnnealingImproves(t *testing.T) {
	configs, pool, budget := testSpace(t)
	_ = configs
	peak := cloud.Config{3, 1, 3}
	s := NewSession(landscape(peak), 0, 0, false)
	start := cloud.Config{1, 0, 1}
	res := SimulatedAnnealing(s, pool, budget, start, 17, AnnealingOptions{Steps: 120})
	startVal := landscape(peak)(start)
	if res.BestQPS <= startVal {
		t.Fatalf("SA did not improve: best %v vs start %v", res.BestQPS, startVal)
	}
	// Every explored configuration must respect the budget.
	for _, rec := range res.History {
		if !pool.WithinBudget(rec.Config, budget) {
			t.Fatalf("SA explored out-of-budget config %v", rec.Config)
		}
		if rec.Config.Total() == 0 {
			t.Fatal("SA explored the empty config")
		}
	}
}

func TestSimulatedAnnealingPanicsOnBadStart(t *testing.T) {
	_, pool, budget := testSpace(t)
	s := NewSession(func(cloud.Config) float64 { return 0 }, 0, 0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SimulatedAnnealing(s, pool, budget, cloud.Config{1}, 1, AnnealingOptions{})
}

func TestGeneticConvergesNearPeak(t *testing.T) {
	configs, pool, budget := testSpace(t)
	peak := cloud.Config{2, 1, 4}
	s := NewSession(landscape(peak), 0, 0, false)
	res := Genetic(s, pool, budget, configs, 19, GeneticOptions{Population: 16, Generations: 12})
	peakVal := landscape(peak)(peak)
	if res.BestQPS < peakVal-7*6 { // within distance ~6 of the peak
		t.Fatalf("GA best %v too far from peak value %v", res.BestQPS, peakVal)
	}
	for _, rec := range res.History {
		if !pool.WithinBudget(rec.Config, budget) {
			t.Fatalf("GA explored out-of-budget config %v", rec.Config)
		}
	}
}

func TestGeneticEmptySpace(t *testing.T) {
	_, pool, budget := testSpace(t)
	s := NewSession(func(cloud.Config) float64 { return 0 }, 0, 0, false)
	res := Genetic(s, pool, budget, nil, 1, GeneticOptions{})
	if res.Evaluations != 0 {
		t.Fatal("empty candidate set must not evaluate")
	}
}

func TestBayesianFindsPeakWithFewEvals(t *testing.T) {
	configs, _, _ := testSpace(t)
	peak := cloud.Config{3, 1, 3}
	target := 1000.0 * 0.99
	s := NewSession(landscape(peak), target, 80, false)
	res := Bayesian(s, configs, 23)
	if !res.ReachedTarget {
		t.Fatalf("BO missed the target in %d evals (best %v at %v)",
			res.Evaluations, res.Best, res.BestQPS)
	}
	// The point of BO on a smooth landscape: far fewer evals than the
	// space size.
	if res.Evaluations > len(configs)/3 {
		t.Fatalf("BO used %d evals over a %d-config space", res.Evaluations, len(configs))
	}
}

func TestBayesianHandlesExhaustion(t *testing.T) {
	// Tiny space with an unreachable target: must terminate after
	// exhausting all candidates.
	configs := []cloud.Config{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	s := NewSession(func(cloud.Config) float64 { return 1 }, 100, 0, false)
	res := Bayesian(s, configs, 29)
	if res.ReachedTarget {
		t.Fatal("target unreachable")
	}
	if res.Evaluations != len(configs) {
		t.Fatalf("evaluations = %d, want %d", res.Evaluations, len(configs))
	}
}
