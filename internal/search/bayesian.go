package search

import (
	"kairos/internal/bayesopt"
	"kairos/internal/cloud"
)

// Bayesian explores with Gaussian-process expected improvement, Ribbon's
// allocation strategy (the RIBBON bars of Fig. 11). Pruned candidates are
// skipped without spending evaluations, mirroring the advantage the paper
// grants the competing algorithms.
func Bayesian(s *Session, configs []cloud.Config, seed int64) Result {
	if len(configs) == 0 {
		return s.Result()
	}
	candidates := make([]bayesopt.Point, len(configs))
	for i, c := range configs {
		p := make(bayesopt.Point, len(c))
		for j, n := range c {
			p[j] = float64(n)
		}
		candidates[i] = p
	}
	opt := &bayesopt.Optimizer{Candidates: candidates, Seed: seed}
	var evaluatedIdx []int
	var ys []float64
	skipped := make(map[int]bool)
	for !s.Done() {
		idx := opt.Suggest(evaluatedIdx, ys)
		for idx != -1 && (skipped[idx] || s.Prunable(configs[idx])) {
			// Mark as seen for the optimizer without spending an eval.
			skipped[idx] = true
			evaluatedIdx = append(evaluatedIdx, idx)
			ys = append(ys, 0)
			idx = opt.Suggest(evaluatedIdx, ys)
		}
		if idx == -1 {
			break
		}
		qps := s.Measure(configs[idx])
		evaluatedIdx = append(evaluatedIdx, idx)
		ys = append(ys, qps)
	}
	return s.Result()
}
