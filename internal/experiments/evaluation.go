package experiments

import (
	"fmt"
	"strings"
	"sync"

	"kairos/internal/cloud"
	"kairos/internal/core"
	"kairos/internal/models"
	"kairos/internal/search"
	"kairos/internal/workload"
)

// Fig8Row is one model's Kairos-vs-homogeneous comparison.
type Fig8Row struct {
	Model     string
	Pick      cloud.Config
	HomQPS    float64
	KairosQPS float64
	Gain      float64
}

// Fig8Result reproduces Fig. 8: Kairos's one-shot heterogeneous
// configuration versus the optimal (budget-scaled) homogeneous one.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8 runs the experiment over the full catalog.
func Fig8(scale Scale) Fig8Result {
	return fig8With(scale, func(m models.Model) Env {
		return NewEnv(scale, cloud.DefaultPool(), m)
	})
}

// fig8With is shared with the robustness variants (Fig. 15/16): envOf
// builds the per-model environment.
func fig8With(scale Scale, envOf func(models.Model) Env) Fig8Result {
	res := Fig8Result{}
	for _, m := range models.Catalog() {
		env := envOf(m)
		pick := env.Estimator().Plan(env.Scale.Budget)
		hom := env.HomogeneousQPS()
		kqps := env.Measure(pick, env.KairosFactory())
		res.Rows = append(res.Rows, Fig8Row{
			Model:     m.Name,
			Pick:      pick,
			HomQPS:    hom,
			KairosQPS: kqps,
			Gain:      kqps / hom,
		})
	}
	return res
}

// String renders the result.
func (r Fig8Result) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Model, row.Pick.String(), f1(row.HomQPS), f1(row.KairosQPS), f2(row.Gain)})
	}
	return "Fig 8: Kairos vs optimal homogeneous (paper gains: 1.68, 2.03, 1.34, 1.25, 1.43)\n" +
		renderTable([]string{"Model", "Kairos pick", "Hom QPS (scaled)", "Kairos QPS", "Gain"}, rows)
}

// Fig9Row is one model's scheme comparison.
type Fig9Row struct {
	Model      string
	OracleCfg  cloud.Config
	KairosCfg  cloud.Config
	QPS        map[string]float64
	Normalized map[string]float64 // by RIBBON
}

// Fig9Result reproduces Fig. 9: Kairos and Kairos+ against Ribbon, DRS and
// CLKWRK (each granted the offline oracle-best configuration) plus the ORCL
// reference.
type Fig9Result struct {
	Rows  []Fig9Row
	Order []string
}

// Fig9Schemes is the rendering order.
var Fig9Schemes = []string{"RIBBON", "DRS", "CLKWRK", "KAIROS", "KAIROS+", "ORCL"}

// Fig9 runs the experiment.
func Fig9(scale Scale) Fig9Result {
	res := Fig9Result{Order: Fig9Schemes}
	for _, m := range models.Catalog() {
		env := NewEnv(scale, cloud.DefaultPool(), m)
		best, orclQPS := env.OracleBest()
		row := Fig9Row{Model: m.Name, OracleCfg: best, QPS: map[string]float64{}, Normalized: map[string]float64{}}
		row.QPS["RIBBON"] = env.Measure(best, env.RibbonFactory())
		_, drsQPS, _ := env.TuneDRS(best)
		row.QPS["DRS"] = drsQPS
		row.QPS["CLKWRK"] = env.Measure(best, env.ClockworkFactory())

		est := env.Estimator()
		ranked := est.Rank(scale.Budget)
		pick := core.SelectOneShot(ranked)
		row.KairosCfg = pick
		row.QPS["KAIROS"] = env.Measure(pick, env.KairosFactory())

		plus := core.KairosPlus(ranked, func(c cloud.Config) float64 {
			return env.Measure(c, env.KairosFactory())
		})
		row.QPS["KAIROS+"] = plus.BestQPS
		row.QPS["ORCL"] = orclQPS
		for k, v := range row.QPS {
			row.Normalized[k] = v / row.QPS["RIBBON"]
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders the result.
func (r Fig9Result) String() string {
	header := []string{"Model"}
	header = append(header, r.Order...)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.Model}
		for _, s := range r.Order {
			cells = append(cells, fmt.Sprintf("%.1f (%.2fx)", row.QPS[s], row.Normalized[s]))
		}
		rows = append(rows, cells)
	}
	return "Fig 9: throughput vs state of the art (normalized to RIBBON)\n" +
		renderTable(header, rows)
}

// Fig10Row is one model's evaluation-count comparison.
type Fig10Row struct {
	Model string
	// SpaceSize is the number of budgeted configurations.
	SpaceSize int
	// EvalsPct[scheme] is online evaluations as a percentage of the space,
	// with every scheme granted Kairos+'s pruning search but evaluating
	// with its own distribution mechanism (Sec. 8.3).
	EvalsPct map[string]float64
}

// Fig10Result reproduces Fig. 10.
type Fig10Result struct {
	Rows  []Fig10Row
	Order []string
}

// Fig10 runs the experiment.
func Fig10(scale Scale) Fig10Result {
	res := Fig10Result{Order: []string{"RIBBON", "DRS", "CLKWRK", "KAIROS+"}}
	for _, m := range models.Catalog() {
		env := NewEnv(scale, cloud.DefaultPool(), m)
		est := env.Estimator()
		ranked := est.Rank(scale.Budget)
		space := len(ranked)
		row := Fig10Row{Model: m.Name, SpaceSize: space, EvalsPct: map[string]float64{}}

		// DRS threshold tuned once per model (on the homogeneous-adjacent
		// top pick) so per-config tuning does not dominate the count; the
		// paper likewise ignores DRS's threshold overhead here.
		drsThr, _, _ := env.TuneDRS(core.SelectOneShot(ranked))

		factories := map[string]func(cloud.Config) float64{
			"RIBBON":  func(c cloud.Config) float64 { return env.Measure(c, env.RibbonFactory()) },
			"DRS":     func(c cloud.Config) float64 { return env.Measure(c, env.DRSFactory(drsThr)) },
			"CLKWRK":  func(c cloud.Config) float64 { return env.Measure(c, env.ClockworkFactory()) },
			"KAIROS+": func(c cloud.Config) float64 { return env.Measure(c, env.KairosFactory()) },
		}
		for scheme, eval := range factories {
			out := core.KairosPlus(ranked, eval)
			row.EvalsPct[scheme] = float64(out.Evaluations) / float64(space) * 100
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders the result.
func (r Fig10Result) String() string {
	header := []string{"Model", "Space"}
	header = append(header, r.Order...)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.Model, fmt.Sprintf("%d", row.SpaceSize)}
		for _, s := range r.Order {
			cells = append(cells, fmt.Sprintf("%.1f%%", row.EvalsPct[s]))
		}
		rows = append(rows, cells)
	}
	return "Fig 10: online evaluations to converge (% of search space, same pruning search)\n" +
		renderTable(header, rows)
}

// Fig11Row is one model's search-algorithm comparison.
type Fig11Row struct {
	Model     string
	SpaceSize int
	TargetQPS float64
	// Evals[algo] is the mean evaluation count over several seeds until a
	// configuration within 1% of Kairos+'s best was evaluated (all
	// algorithms get sub-config pruning). KAIROS+ is deterministic.
	Evals map[string]float64
}

// Fig11Result reproduces Fig. 11: RAND, GENE and Ribbon's Bayesian
// optimization versus Kairos+.
type Fig11Result struct {
	Rows  []Fig11Row
	Order []string
}

// Fig11 runs the experiment. Evaluation counts, not throughput precision,
// are the metric here, so the per-evaluation probes run at reduced
// fidelity: the searches only need to detect when the target is crossed.
func Fig11(scale Scale) Fig11Result {
	searchScale := scale
	if searchScale.ProbeQueries > 1000 {
		searchScale.ProbeQueries = 1000
	}
	if searchScale.PrecisionFrac < 0.06 {
		searchScale.PrecisionFrac = 0.06
	}
	cat := models.Catalog()
	res := Fig11Result{Order: []string{"RAND", "GENE", "RIBBON", "KAIROS+"},
		Rows: make([]Fig11Row, len(cat))}
	// Per-model work is independent and deterministic; run it in parallel.
	var wg sync.WaitGroup
	for idx, m := range cat {
		wg.Add(1)
		go func(idx int, m models.Model) {
			defer wg.Done()
			env := NewEnv(searchScale, cloud.DefaultPool(), m)
			est := env.Estimator()
			ranked := est.Rank(scale.Budget)
			eval := func(c cloud.Config) float64 { return env.Measure(c, env.KairosFactory()) }

			plus := core.KairosPlus(ranked, eval)
			target := plus.BestQPS * 0.99
			configs := make([]cloud.Config, len(ranked))
			for i, rc := range ranked {
				configs[i] = rc.Config
			}
			row := Fig11Row{Model: m.Name, SpaceSize: len(configs), TargetQPS: plus.BestQPS, Evals: map[string]float64{}}
			row.Evals["KAIROS+"] = float64(plus.Evaluations)

			// The stochastic searches are averaged over seeds so one lucky
			// draw does not masquerade as algorithmic quality; seeds run in
			// parallel too.
			const seeds = 3
			var mu sync.Mutex
			var rnd, gene, bo float64
			var inner sync.WaitGroup
			for s := int64(0); s < seeds; s++ {
				inner.Add(1)
				go func(seed int64) {
					defer inner.Done()
					r := search.Random(search.NewSession(eval, target, len(configs), true), configs, seed)
					g := search.Genetic(search.NewSession(eval, target, len(configs), true),
						env.Pool, scale.Budget, configs, seed, search.GeneticOptions{})
					b := search.Bayesian(search.NewSession(eval, target, len(configs), true), configs, seed)
					mu.Lock()
					rnd += float64(r.Evaluations)
					gene += float64(g.Evaluations)
					bo += float64(b.Evaluations)
					mu.Unlock()
				}(scale.Seed + s*101)
			}
			inner.Wait()
			row.Evals["RAND"] = rnd / seeds
			row.Evals["GENE"] = gene / seeds
			row.Evals["RIBBON"] = bo / seeds
			res.Rows[idx] = row
		}(idx, m)
	}
	wg.Wait()
	return res
}

// String renders the result.
func (r Fig11Result) String() string {
	header := []string{"Model", "Space", "Target QPS"}
	header = append(header, r.Order...)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.Model, fmt.Sprintf("%d", row.SpaceSize), f1(row.TargetQPS)}
		for _, s := range r.Order {
			cells = append(cells, fmt.Sprintf("%.1f (%.1f%%)", row.Evals[s],
				row.Evals[s]/float64(row.SpaceSize)*100))
		}
		rows = append(rows, cells)
	}
	return "Fig 11: evaluations to reach Kairos+'s optimum (sub-config pruning granted to all)\n" +
		renderTable(header, rows)
}

// Fig12Result reproduces Fig. 12: the query-size distribution shifts from
// log-normal to Gaussian and every scheme restarts its configuration
// search; the series list the throughput of each successively evaluated
// configuration under the new distribution.
type Fig12Result struct {
	Steps int
	// Series[scheme][step]; KAIROS is a flat line (one-shot, no evaluation).
	Series map[string][]float64
	Order  []string
}

// Fig12 runs the experiment on RM2.
func Fig12(scale Scale) Fig12Result {
	env := NewEnv(scale, cloud.DefaultPool(), models.MustByName("RM2"))
	env.Batches = workload.DefaultGaussian() // the post-change workload
	est := env.Estimator()                   // monitor snapshot reflects the new mix
	ranked := est.Rank(scale.Budget)
	steps := 20
	res := Fig12Result{Steps: steps, Series: map[string][]float64{},
		Order: []string{"RIBBON", "DRS", "CLKWRK", "KAIROS", "KAIROS+"}}

	// KAIROS: one-shot configuration, immediately serving at its level.
	pick := core.SelectOneShot(ranked)
	kqps := env.Measure(pick, env.KairosFactory())
	flat := make([]float64, steps)
	for i := range flat {
		flat[i] = kqps
	}
	res.Series["KAIROS"] = flat

	// KAIROS+: upper-bound-guided evaluations, then flat at its best.
	plus := core.KairosPlus(ranked, func(c cloud.Config) float64 {
		return env.Measure(c, env.KairosFactory())
	})
	res.Series["KAIROS+"] = seriesFromHistory(historyQPS(plus.History), steps)

	// RIBBON restarts its Bayesian optimization.
	configs := make([]cloud.Config, len(ranked))
	for i, rc := range ranked {
		configs[i] = rc.Config
	}
	boSession := search.NewSession(func(c cloud.Config) float64 {
		return env.Measure(c, env.RibbonFactory())
	}, 0, steps, false)
	bo := search.Bayesian(boSession, configs, scale.Seed)
	res.Series["RIBBON"] = seriesFromHistory(searchQPS(bo.History), steps)

	// DRS and CLKWRK restart the same pruning search with their own
	// mechanisms (as in Fig. 10).
	drsThr, _, _ := env.TuneDRS(pick)
	drs := core.KairosPlus(ranked, func(c cloud.Config) float64 {
		return env.Measure(c, env.DRSFactory(drsThr))
	})
	res.Series["DRS"] = seriesFromHistory(historyQPS(drs.History), steps)
	clk := core.KairosPlus(ranked, func(c cloud.Config) float64 {
		return env.Measure(c, env.ClockworkFactory())
	})
	res.Series["CLKWRK"] = seriesFromHistory(historyQPS(clk.History), steps)
	return res
}

func historyQPS(h []core.EvalRecord) []float64 {
	out := make([]float64, len(h))
	for i, rec := range h {
		out[i] = rec.QPS
	}
	return out
}

func searchQPS(h []search.Record) []float64 {
	out := make([]float64, len(h))
	for i, rec := range h {
		out[i] = rec.QPS
	}
	return out
}

// seriesFromHistory pads a (possibly shorter) evaluation history to the
// step count by holding the best value found so far once the search ends.
func seriesFromHistory(h []float64, steps int) []float64 {
	out := make([]float64, steps)
	best := 0.0
	for i := 0; i < steps; i++ {
		if i < len(h) {
			out[i] = h[i]
			if h[i] > best {
				best = h[i]
			}
		} else {
			out[i] = best
		}
	}
	return out
}

// String renders the result.
func (r Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 12: transient after the load changes from log-normal to Gaussian (RM2)\n")
	header := []string{"Step"}
	header = append(header, r.Order...)
	rows := make([][]string, 0, r.Steps)
	for i := 0; i < r.Steps; i++ {
		cells := []string{fmt.Sprintf("%d", i+1)}
		for _, s := range r.Order {
			cells = append(cells, f1(r.Series[s][i]))
		}
		rows = append(rows, cells)
	}
	b.WriteString(renderTable(header, rows))
	return b.String()
}
