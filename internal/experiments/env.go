// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 4 motivation and Sec. 8). Each experiment is a function
// returning a typed result that renders as an ASCII table; cmd/kairos-bench
// runs them from the command line and bench_test.go runs scaled-down
// versions under `go test -bench`.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"kairos/internal/cloud"
	"kairos/internal/core"
	"kairos/internal/distributor"
	"kairos/internal/models"
	"kairos/internal/predictor"
	"kairos/internal/sim"
	"kairos/internal/workload"
)

// Scale bundles the fidelity knobs shared by all experiments.
type Scale struct {
	// Seed drives every random stream.
	Seed int64
	// ProbeQueries sizes each throughput probe run.
	ProbeQueries int
	// PrecisionFrac terminates the allowable-throughput bisection.
	PrecisionFrac float64
	// OracleQueries sizes the ORCL sequence.
	OracleQueries int
	// MonitorSamples sizes the batch-mix snapshot fed to the estimator
	// (the paper tracks ~10000 recent queries).
	MonitorSamples int
	// Budget is the cost cap in $/hr (the paper's default is 2.5).
	Budget float64
}

// FullScale is the paper-fidelity setting.
func FullScale() Scale {
	return Scale{Seed: 42, ProbeQueries: 4000, PrecisionFrac: 0.02, OracleQueries: 20000, MonitorSamples: 10000, Budget: 2.5}
}

// QuickScale trades precision for speed; used by the benchmarks and CI.
func QuickScale() Scale {
	return Scale{Seed: 42, ProbeQueries: 1200, PrecisionFrac: 0.06, OracleQueries: 5000, MonitorSamples: 4000, Budget: 2.5}
}

// Env is the per-model experimental setup.
type Env struct {
	Scale Scale
	Pool  cloud.Pool
	Model models.Model
	// Batches is the batch-size distribution (default trace-like mix).
	Batches workload.BatchDistribution
	// Oracle optionally replaces ground-truth service times.
	Oracle models.Oracle
	// PredictionNoise, when positive, corrupts Kairos's latency
	// predictions with multiplicative Gaussian noise of this standard
	// deviation fraction (Fig. 16b uses 0.05).
	PredictionNoise float64
}

// NewEnv builds the default environment for a model.
func NewEnv(scale Scale, pool cloud.Pool, model models.Model) Env {
	return Env{Scale: scale, Pool: pool, Model: model, Batches: workload.DefaultTrace()}
}

// Samples draws the monitor snapshot the planner consumes.
func (e Env) Samples() []int {
	rng := rand.New(rand.NewSource(e.Scale.Seed + 1000))
	out := make([]int, e.Scale.MonitorSamples)
	for i := range out {
		out[i] = e.Batches.Sample(rng)
	}
	return out
}

// Estimator builds the upper-bound estimator from the monitor snapshot.
func (e Env) Estimator() *core.Estimator {
	est, err := core.NewEstimator(e.Pool, e.Model, e.Samples(), core.EstimatorOptions{})
	if err != nil {
		panic(err)
	}
	return est
}

// Spec assembles a cluster spec for a configuration.
func (e Env) Spec(cfg cloud.Config) sim.ClusterSpec {
	return sim.ClusterSpec{Pool: e.Pool, Config: cfg, Model: e.Model, Oracle: e.Oracle}
}

// instanceNames lists the pool's type names.
func (e Env) instanceNames() []string {
	out := make([]string, len(e.Pool))
	for i, t := range e.Pool {
		out[i] = t.Name
	}
	return out
}

// warmProbes are the batch sizes used to warm predictors (two points pin
// the exact line; the rest guard the lookup path).
var warmProbes = []int{1, 250, 500, 750, 1000}

// KairosFactory builds fresh Kairos distributors with a warmed latency
// model and a live monitor.
func (e Env) KairosFactory() sim.DistributorFactory {
	return func() sim.Distributor {
		var pred predictor.Predictor = predictor.Warmed(e.Model.Latency, e.instanceNames(), warmProbes)
		if e.PredictionNoise > 0 {
			pred = predictor.NewNoisy(pred, e.PredictionNoise, e.Scale.Seed+7)
		}
		return core.NewDistributor(core.DistributorOptions{
			QoS:       e.Model.QoS,
			BaseType:  e.Pool.Base().Name,
			Predictor: pred,
			Monitor:   workload.NewMonitor(workload.DefaultWindow),
		})
	}
}

// baselineOptions are shared by the competing schemes; the paper grants
// them accurate latency predictions.
func (e Env) baselineOptions() distributor.Options {
	return distributor.Options{
		QoS:       e.Model.QoS,
		BaseType:  e.Pool.Base().Name,
		Predictor: predictor.Oracle{Latency: e.Model.Latency},
	}
}

// RibbonFactory builds Ribbon FCFS distributors.
func (e Env) RibbonFactory() sim.DistributorFactory {
	return func() sim.Distributor { return distributor.NewRibbon(e.baselineOptions()) }
}

// ClockworkFactory builds CLKWRK distributors.
func (e Env) ClockworkFactory() sim.DistributorFactory {
	return func() sim.Distributor { return distributor.NewClockwork(e.baselineOptions()) }
}

// DRSFactory builds DRS distributors with a fixed threshold.
func (e Env) DRSFactory(threshold int) sim.DistributorFactory {
	return func() sim.Distributor { return distributor.NewDRS(e.baselineOptions(), threshold) }
}

// findOptions assembles the throughput-finder options.
func (e Env) findOptions() sim.FindOptions {
	return sim.FindOptions{
		ProbeQueries:  e.Scale.ProbeQueries,
		Seed:          e.Scale.Seed,
		Batches:       e.Batches,
		PrecisionFrac: e.Scale.PrecisionFrac,
	}
}

// Measure returns the allowable throughput of cfg under the given factory.
func (e Env) Measure(cfg cloud.Config, factory sim.DistributorFactory) float64 {
	return sim.FindAllowableThroughput(e.Spec(cfg), factory, e.findOptions())
}

// TuneDRS hill-climbs the DRS threshold for a configuration and returns the
// tuned threshold, its throughput, and the tuning evaluations spent.
func (e Env) TuneDRS(cfg cloud.Config) (threshold int, qps float64, evals int) {
	eval := func(t int) float64 { return e.Measure(cfg, e.DRSFactory(t)) }
	return distributor.TuneDRSThreshold(eval, 150, 75, models.MaxBatch)
}

// OracleQPS evaluates the clairvoyant ORCL throughput of cfg.
func (e Env) OracleQPS(cfg cloud.Config) float64 {
	return sim.OracleThroughput(e.Spec(cfg), sim.OracleOptions{
		Queries: e.Scale.OracleQueries,
		Seed:    e.Scale.Seed,
		Batches: e.Batches,
	})
}

// OracleBest exhaustively finds the ORCL-optimal configuration, the config
// the paper grants the competing schemes (Sec. 8.2).
func (e Env) OracleBest() (cloud.Config, float64) {
	return sim.OracleSearch(e.Pool, e.Model, e.Scale.Budget, sim.OracleOptions{
		Queries: e.Scale.OracleQueries,
		Seed:    e.Scale.Seed,
		Batches: e.Batches,
	})
}

// HomogeneousQPS measures the optimal homogeneous configuration's
// throughput, scaled up to spend the full budget (Sec. 8.1's conservative
// accounting in homogeneous serving's favor).
func (e Env) HomogeneousQPS() float64 {
	hom := e.Pool.Homogeneous(e.Scale.Budget)
	return e.Measure(hom, e.KairosFactory()) * e.Pool.HomogeneousScale(e.Scale.Budget)
}

// renderTable formats rows of cells with padded columns.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
