package experiments

import (
	"fmt"
	"strings"

	"kairos/internal/cloud"
	"kairos/internal/core"
	"kairos/internal/models"
	"kairos/internal/search"
	"kairos/internal/sim"
	"kairos/internal/workload"
)

// Table3 renders the model catalog (paper Table 3).
func Table3() string {
	rows := make([][]string, 0, 5)
	for _, m := range models.Catalog() {
		rows = append(rows, []string{m.Name, m.Description, m.Application, fmt.Sprintf("%g ms", m.QoS)})
	}
	return renderTable([]string{"Model", "Description", "Application", "QoS"}, rows)
}

// Table4 renders the instance-type catalog (paper Table 4).
func Table4() string {
	rows := make([][]string, 0, 4)
	for _, t := range cloud.DefaultPool() {
		rows = append(rows, []string{t.Name, t.Class.String(), fmt.Sprintf("$%.4g/hr", t.PricePerHour)})
	}
	return renderTable([]string{"Instance Type", "Instance Class", "Price"}, rows)
}

// Fig1Row is one configuration of Fig. 1.
type Fig1Row struct {
	Config  cloud.Config
	CostHr  float64
	QPS     float64
	Scaled  bool // homogeneous throughput scaled to the budget
	OverHom float64
}

// Fig1Result reproduces Fig. 1: heterogeneous configurations versus the
// best homogeneous one on RM2 under Ribbon's distribution mechanism.
type Fig1Result struct {
	Budget float64
	Rows   []Fig1Row
}

// Fig1 runs the experiment.
func Fig1(scale Scale) Fig1Result {
	pool := cloud.ThreeTypePool()
	env := NewEnv(scale, pool, models.MustByName("RM2"))
	res := Fig1Result{Budget: scale.Budget}
	hom := pool.Homogeneous(scale.Budget)
	homQPS := env.Measure(hom, env.RibbonFactory()) * pool.HomogeneousScale(scale.Budget)
	res.Rows = append(res.Rows, Fig1Row{Config: hom, CostHr: scale.Budget, QPS: homQPS, Scaled: true, OverHom: 1})
	for _, s := range []string{"(3,1,3)", "(2,0,9)", "(1,4,2)"} {
		cfg, err := cloud.ParseConfig(s, len(pool))
		if err != nil {
			panic(err)
		}
		qps := env.Measure(cfg, env.RibbonFactory())
		res.Rows = append(res.Rows, Fig1Row{Config: cfg, CostHr: pool.Cost(cfg), QPS: qps, OverHom: qps / homQPS})
	}
	return res
}

// String renders the result.
func (r Fig1Result) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		label := row.Config.String()
		if row.Scaled {
			label += " hom, budget-scaled"
		}
		rows = append(rows, []string{label, f3(row.CostHr), f1(row.QPS), f2(row.OverHom)})
	}
	return "Fig 1: heterogeneous vs best homogeneous (RM2, Ribbon mechanism)\n" +
		renderTable([]string{"Config", "Cost $/hr", "QPS", "vs hom"}, rows)
}

// Fig2Result reproduces Fig. 2: simulated-annealing exploration of the RM2
// space, reporting each explored configuration's throughput gain over the
// budget-scaled homogeneous baseline.
type Fig2Result struct {
	HomQPS        float64
	GainsPct      []float64
	FractionWorse float64
}

// Fig2 runs the experiment. The paper pre-filters configurations below 20
// QPS and still finds ~70% of explored configurations worse than
// homogeneous.
func Fig2(scale Scale) Fig2Result {
	pool := cloud.ThreeTypePool()
	env := NewEnv(scale, pool, models.MustByName("RM2"))
	hom := pool.Homogeneous(scale.Budget)
	homQPS := env.Measure(hom, env.RibbonFactory()) * pool.HomogeneousScale(scale.Budget)

	session := search.NewSession(func(c cloud.Config) float64 {
		return env.Measure(c, env.RibbonFactory())
	}, 0, 40, false)
	start := cloud.Config{1, 1, 1}
	out := search.SimulatedAnnealing(session, pool, scale.Budget, start, scale.Seed, search.AnnealingOptions{Steps: 60})

	res := Fig2Result{HomQPS: homQPS}
	worse := 0
	for _, rec := range out.History {
		if rec.QPS < 20 { // the paper's pre-filter
			continue
		}
		gain := (rec.QPS - homQPS) / homQPS * 100
		res.GainsPct = append(res.GainsPct, gain)
		if gain < 0 {
			worse++
		}
	}
	if len(res.GainsPct) > 0 {
		res.FractionWorse = float64(worse) / float64(len(res.GainsPct))
	}
	return res
}

// String renders the result.
func (r Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2: SA exploration vs homogeneous (hom = %.1f QPS)\n", r.HomQPS)
	for i, g := range r.GainsPct {
		fmt.Fprintf(&b, "  explored %2d: %+6.1f%%\n", i+1, g)
	}
	fmt.Fprintf(&b, "fraction worse than homogeneous: %.0f%%\n", r.FractionWorse*100)
	return b.String()
}

// Fig3Result reproduces Fig. 3: the same heterogeneous configurations under
// different query-distribution mechanisms.
type Fig3Result struct {
	Configs []cloud.Config
	// QPS[scheme][i] is the throughput of Configs[i] under the scheme.
	QPS map[string][]float64
	// Order fixes the scheme rendering order.
	Order []string
}

// Fig3 runs the experiment.
func Fig3(scale Scale) Fig3Result {
	pool := cloud.ThreeTypePool()
	env := NewEnv(scale, pool, models.MustByName("RM2"))
	res := Fig3Result{
		QPS:   map[string][]float64{},
		Order: []string{"RIBBON", "DRS", "CLKWRK", "ORCL"},
	}
	for _, s := range []string{"(4,0,0)", "(2,0,9)", "(3,1,3)"} {
		cfg, err := cloud.ParseConfig(s, len(pool))
		if err != nil {
			panic(err)
		}
		res.Configs = append(res.Configs, cfg)
		res.QPS["RIBBON"] = append(res.QPS["RIBBON"], env.Measure(cfg, env.RibbonFactory()))
		_, drsQPS, _ := env.TuneDRS(cfg)
		res.QPS["DRS"] = append(res.QPS["DRS"], drsQPS)
		res.QPS["CLKWRK"] = append(res.QPS["CLKWRK"], env.Measure(cfg, env.ClockworkFactory()))
		res.QPS["ORCL"] = append(res.QPS["ORCL"], env.OracleQPS(cfg))
	}
	return res
}

// String renders the result.
func (r Fig3Result) String() string {
	header := []string{"Config"}
	header = append(header, r.Order...)
	rows := make([][]string, 0, len(r.Configs))
	for i, cfg := range r.Configs {
		row := []string{cfg.String()}
		for _, scheme := range r.Order {
			row = append(row, f1(r.QPS[scheme][i]))
		}
		rows = append(rows, row)
	}
	return "Fig 3: distribution mechanism changes a configuration's throughput (RM2)\n" +
		renderTable(header, rows)
}

// Fig5Query is one query of the Fig. 5 walk-through.
type Fig5Query struct {
	Batch             int
	ArrivalMS         float64
	NaiveLatencyMS    float64
	NaiveMeets        bool
	KairosLatencyMS   float64
	KairosMeets       bool
	NaiveInstanceIdx  int
	KairosInstanceIdx int
}

// Fig5Result reproduces the Fig. 5 illustration: four queries, one GPU plus
// one CPU; naive FCFS violates QoS on one query while Kairos's matching
// serves all four in time.
type Fig5Result struct {
	Model   string
	QoS     float64
	Queries []Fig5Query
}

// Fig5 runs the deterministic walk-through on WND (QoS 25 ms): arrivals at
// t=0 of batches 500 and 50, at t=1 of batches 450 and 100. Naive FCFS
// serves the t=1 large query on the CPU that frees first and violates QoS;
// Kairos holds it for the GPU and routes the small query to the CPU,
// serving all four in time — the paper's 4-vs-3 illustration.
func Fig5() Fig5Result {
	pool := cloud.Pool{cloud.G4dnXlarge, cloud.C5n2xlarge}
	m := models.MustByName("WND")
	arrivals := []workload.Arrival{
		{AtMS: 0, Batch: 500},
		{AtMS: 0, Batch: 50},
		{AtMS: 1, Batch: 450},
		{AtMS: 1, Batch: 100},
	}
	spec := sim.ClusterSpec{Pool: pool, Config: cloud.Config{1, 1}, Model: m}
	env := NewEnv(FullScale(), pool, m)

	res := Fig5Result{Model: m.Name, QoS: m.QoS}
	naiveLat := perQueryLatencies(spec, sim.FCFSAny{}, arrivals)
	kairosLat := perQueryLatencies(spec, env.KairosFactory()(), arrivals)
	for i, a := range arrivals {
		res.Queries = append(res.Queries, Fig5Query{
			Batch:           a.Batch,
			ArrivalMS:       a.AtMS,
			NaiveLatencyMS:  naiveLat[i].lat,
			NaiveMeets:      naiveLat[i].lat <= m.QoS,
			KairosLatencyMS: kairosLat[i].lat,
			KairosMeets:     kairosLat[i].lat <= m.QoS,

			NaiveInstanceIdx:  naiveLat[i].inst,
			KairosInstanceIdx: kairosLat[i].inst,
		})
	}
	return res
}

type queryOutcome struct {
	lat  float64
	inst int
}

// perQueryLatencies replays the arrivals and extracts per-query outcomes
// from the engine's trace.
func perQueryLatencies(spec sim.ClusterSpec, dist sim.Distributor, arrivals []workload.Arrival) []queryOutcome {
	trace := sim.Trace(spec, dist, sim.Options{Arrivals: arrivals})
	out := make([]queryOutcome, len(arrivals))
	for i, q := range trace {
		out[i] = queryOutcome{lat: q.Latency(), inst: q.Instance}
	}
	return out
}

// String renders the result.
func (r Fig5Result) String() string {
	rows := make([][]string, 0, len(r.Queries))
	okStr := map[bool]string{true: "meets", false: "VIOLATES"}
	for i, q := range r.Queries {
		rows = append(rows, []string{
			fmt.Sprintf("Q%d", i+1),
			fmt.Sprintf("%d", q.Batch),
			f1(q.ArrivalMS),
			f1(q.NaiveLatencyMS), okStr[q.NaiveMeets],
			f1(q.KairosLatencyMS), okStr[q.KairosMeets],
		})
	}
	return fmt.Sprintf("Fig 5: slack-aware matching walk-through (%s, QoS %.0f ms)\n", r.Model, r.QoS) +
		renderTable([]string{"Query", "Batch", "Arrive", "FCFS lat", "FCFS", "Kairos lat", "Kairos"}, rows)
}

// Fig7Result reproduces the worked upper-bound scenarios of Fig. 7.
type Fig7Result struct {
	Scenario1, Scenario2 float64
}

// Fig7 evaluates both scenarios exactly as printed in the paper.
func Fig7() Fig7Result {
	return Fig7Result{
		Scenario1: core.UpperBoundRaw(1, 100, 90, []float64{150}, 0.6),
		Scenario2: core.UpperBoundRaw(1, 100, 90, []float64{140}, 0.7),
	}
}

// String renders the result.
func (r Fig7Result) String() string {
	return fmt.Sprintf("Fig 7: upper-bound worked examples\n"+
		"  scenario 1 (base bottleneck):      QPSmax = %.0f (paper: 225)\n"+
		"  scenario 2 (auxiliary bottleneck): QPSmax = %.1f (paper: 233)\n",
		r.Scenario1, r.Scenario2)
}
