package experiments

import (
	"fmt"
	"strings"
	"testing"

	"kairos/internal/cloud"
	"kairos/internal/models"
)

// tinyScale keeps unit tests fast; shape assertions tolerate its noise.
func tinyScale() Scale {
	return Scale{Seed: 42, ProbeQueries: 700, PrecisionFrac: 0.08, OracleQueries: 3000, MonitorSamples: 3000, Budget: 2.5}
}

func TestTables(t *testing.T) {
	t3 := Table3()
	for _, name := range []string{"NCF", "RM2", "WND", "MT-WND", "DIEN", "350 ms"} {
		if !strings.Contains(t3, name) {
			t.Errorf("Table3 missing %q", name)
		}
	}
	t4 := Table4()
	for _, name := range []string{"g4dn.xlarge", "c5n.2xlarge", "r5n.large", "t3.xlarge", "$0.526/hr"} {
		if !strings.Contains(t4, name) {
			t.Errorf("Table4 missing %q", name)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	t.Parallel()
	res := Fig1(tinyScale())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's headline motivations: at least one heterogeneous config
	// beats homogeneous, and at least one loses to it.
	better, worse := false, false
	for _, row := range res.Rows[1:] {
		if row.OverHom > 1.05 {
			better = true
		}
		if row.OverHom < 0.95 {
			worse = true
		}
	}
	if !better || !worse {
		t.Fatalf("expected heterogeneity to both win and lose: %+v", res.Rows)
	}
	if res.String() == "" {
		t.Fatal("empty render")
	}
}

func TestFig5AllServedByKairosOnly(t *testing.T) {
	t.Parallel()
	res := Fig5()
	if len(res.Queries) != 4 {
		t.Fatalf("queries = %d", len(res.Queries))
	}
	naiveOK, kairosOK := 0, 0
	for _, q := range res.Queries {
		if q.NaiveMeets {
			naiveOK++
		}
		if q.KairosMeets {
			kairosOK++
		}
	}
	if kairosOK != 4 {
		t.Fatalf("Kairos served %d/4 within QoS: %+v", kairosOK, res.Queries)
	}
	if naiveOK != 3 {
		t.Fatalf("naive FCFS served %d/4, want exactly 3 (Fig. 5's 33%% story): %+v", naiveOK, res.Queries)
	}
	if !strings.Contains(res.String(), "VIOLATES") {
		t.Fatal("render must flag the violation")
	}
}

func TestFig7MatchesPaper(t *testing.T) {
	res := Fig7()
	if res.Scenario1 != 225 {
		t.Fatalf("scenario 1 = %v", res.Scenario1)
	}
	if res.Scenario2 < 233 || res.Scenario2 > 234 {
		t.Fatalf("scenario 2 = %v", res.Scenario2)
	}
}

func TestFig8GainsShape(t *testing.T) {
	t.Parallel()
	res := Fig8(tinyScale())
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	gains := map[string]float64{}
	for _, row := range res.Rows {
		gains[row.Model] = row.Gain
		if row.Gain < 1.0 {
			t.Errorf("%s gain %.2f below 1 (heterogeneity must win)", row.Model, row.Gain)
		}
		if row.Pick.Base() == 0 {
			t.Errorf("%s pick %v lacks base instances", row.Model, row.Pick)
		}
	}
	// Paper ordering: RM2 largest gain, MT-WND smallest.
	for m, g := range gains {
		if m != "RM2" && g > gains["RM2"] {
			t.Errorf("%s gain %.2f exceeds RM2's %.2f", m, g, gains["RM2"])
		}
	}
	if gains["RM2"] < 1.6 {
		t.Errorf("RM2 gain %.2f too low (paper: 2.03)", gains["RM2"])
	}
}

func TestFig12KairosOneShotIsFlat(t *testing.T) {
	t.Parallel()
	res := Fig12(tinyScale())
	series := res.Series["KAIROS"]
	if len(series) != res.Steps {
		t.Fatalf("series length %d", len(series))
	}
	for _, v := range series[1:] {
		if v != series[0] {
			t.Fatal("KAIROS series must be flat (one-shot, no exploration)")
		}
	}
	if series[0] <= 0 {
		t.Fatal("KAIROS one-shot throughput must be positive after the shift")
	}
	// Kairos's one-shot level should be at or above the early exploration
	// steps of the searching schemes (the Fig. 12 story).
	for _, scheme := range []string{"RIBBON", "DRS"} {
		if res.Series[scheme][0] > series[0] {
			t.Errorf("%s first evaluation (%.1f) already beats Kairos one-shot (%.1f)",
				scheme, res.Series[scheme][0], series[0])
		}
	}
}

func TestFig13PickNearOptimal(t *testing.T) {
	t.Parallel()
	scale := tinyScale()
	res := Fig13(scale, 8)
	for _, row := range res.Rows {
		if len(row.Configs) == 0 {
			t.Fatalf("%s: empty candidates", row.Model)
		}
		if row.PickIndex < 0 {
			t.Errorf("%s: similarity pick outside top candidates", row.Model)
			continue
		}
		pickQPS := row.ActualQPS[row.PickIndex]
		bestQPS := row.ActualQPS[row.BestIndex]
		if pickQPS < 0.7*bestQPS {
			t.Errorf("%s: pick %.1f far below best %.1f", row.Model, pickQPS, bestQPS)
		}
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatalf("IDs() returned %d of %d", len(ids), len(Registry))
	}
	// Order check: tables first, then figures ascending.
	if ids[0] != "table3" || ids[1] != "table4" || ids[2] != "fig1" {
		t.Fatalf("order = %v", ids)
	}
	last := 0
	for _, id := range ids[2:] {
		var n int
		if _, err := fmtSscanf(id, &n); err != nil {
			t.Fatalf("bad id %s", id)
		}
		if n < last {
			t.Fatalf("figures out of order: %v", ids)
		}
		last = n
	}
	if _, err := Run("fig99", tinyScale()); err == nil {
		t.Fatal("unknown experiment must error")
	}
	// Cheap experiments run end to end through the registry.
	for _, id := range []string{"table3", "table4", "fig5", "fig7"} {
		out, err := Run(id, tinyScale())
		if err != nil || out.String() == "" {
			t.Fatalf("Run(%s): %v", id, err)
		}
	}
}

func fmtSscanf(id string, n *int) (int, error) {
	if _, err := sscanf(id, "fig%d", n); err != nil {
		return 0, err
	}
	return *n, nil
}

func sscanf(s, format string, args ...any) (int, error) {
	return fmt.Sscanf(s, format, args...)
}

func TestEnvMeasureUsesBudgetedSpec(t *testing.T) {
	t.Parallel()
	env := NewEnv(tinyScale(), cloud.ThreeTypePool(), mustModel("RM2"))
	qps := env.Measure(cloud.Config{1, 0, 0}, env.KairosFactory())
	if qps <= 0 {
		t.Fatal("single base instance must have positive throughput")
	}
	if env.HomogeneousQPS() <= qps {
		t.Fatal("4-instance homogeneous must beat a single instance")
	}
}

func mustModel(name string) models.Model { return models.MustByName(name) }

func TestFig14KairosBestPerConfig(t *testing.T) {
	t.Parallel()
	res := Fig14(tinyScale(), 3)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.OracleQPS <= 0 {
		t.Fatal("oracle reference missing")
	}
	for _, row := range res.Rows {
		k := row.QPS["KAIROS"]
		for _, scheme := range []string{"RIBBON", "CLKWRK"} {
			if k < row.QPS[scheme]*0.95 {
				t.Errorf("%v: KAIROS %.1f below %s %.1f", row.Config, k, scheme, row.QPS[scheme])
			}
		}
		// The upper bound caps the Kairos measurement (within probe noise).
		if k > row.UpperBound*1.1 {
			t.Errorf("%v: measured %.1f exceeds UB %.1f", row.Config, k, row.UpperBound)
		}
	}
	if res.String() == "" {
		t.Fatal("empty render")
	}
}

func TestFig15BudgetScaling(t *testing.T) {
	t.Parallel()
	scale := tinyScale()
	res := Fig15(scale)
	if len(res.BudgetX4.Rows) != 5 || len(res.HighQoS.Rows) != 5 {
		t.Fatalf("rows: %d / %d", len(res.BudgetX4.Rows), len(res.HighQoS.Rows))
	}
	for _, row := range res.BudgetX4.Rows {
		if row.Gain < 1.0 {
			t.Errorf("budget x4: %s gain %.2f below 1", row.Model, row.Gain)
		}
	}
	for _, row := range res.HighQoS.Rows {
		if row.Gain < 1.0 {
			t.Errorf("high QoS: %s gain %.2f below 1", row.Model, row.Gain)
		}
	}
	if res.String() == "" {
		t.Fatal("empty render")
	}
}

func TestFig16NoiseRobustness(t *testing.T) {
	t.Parallel()
	res := Fig16(tinyScale())
	// 5% prediction noise must not destroy the heterogeneity gains
	// (Fig. 16b: "continues to offer similar improvements").
	for _, row := range res.Noise.Rows {
		if row.Gain < 1.0 {
			t.Errorf("noise: %s gain %.2f below 1", row.Model, row.Gain)
		}
	}
	if res.String() == "" {
		t.Fatal("empty render")
	}
}
