package experiments

import (
	"fmt"
	"strings"

	"kairos/internal/cloud"
	"kairos/internal/core"
	"kairos/internal/models"
	"kairos/internal/workload"
)

// Fig13Row is one model's upper-bound ranking validation.
type Fig13Row struct {
	Model string
	// Configs are the top-20 configurations by upper bound (descending).
	Configs []cloud.Config
	// UpperBounds are their estimated bounds.
	UpperBounds []float64
	// ActualQPS are their measured throughputs under Kairos distribution.
	ActualQPS []float64
	// PickIndex is Kairos's one-shot selection within Configs (-1 if the
	// similarity pick fell outside the top-20).
	PickIndex int
	// BestIndex is the measured argmax within Configs.
	BestIndex int
}

// Fig13Result reproduces Fig. 13: actual throughput of the top-20 highest
// upper-bound configurations, with Kairos's similarity-based pick starred.
type Fig13Result struct {
	Rows []Fig13Row
}

// Fig13 runs the experiment. Top is the per-model candidate count (the
// paper plots 20; quick runs may use fewer).
func Fig13(scale Scale, top int) Fig13Result {
	if top <= 0 {
		top = 20
	}
	res := Fig13Result{}
	for _, m := range models.Catalog() {
		env := NewEnv(scale, cloud.DefaultPool(), m)
		ranked := env.Estimator().Rank(scale.Budget)
		if len(ranked) > top {
			ranked = ranked[:top]
		}
		pick := core.SelectOneShot(ranked)
		row := Fig13Row{Model: m.Name, PickIndex: -1}
		bestQPS := -1.0
		for i, rc := range ranked {
			qps := env.Measure(rc.Config, env.KairosFactory())
			row.Configs = append(row.Configs, rc.Config)
			row.UpperBounds = append(row.UpperBounds, rc.UpperBound)
			row.ActualQPS = append(row.ActualQPS, qps)
			if rc.Config.Equal(pick) {
				row.PickIndex = i
			}
			if qps > bestQPS {
				bestQPS = qps
				row.BestIndex = i
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders the result.
func (r Fig13Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 13: actual throughput of top upper-bound configurations (* = Kairos pick, ! = measured best)\n")
	for _, row := range r.Rows {
		maxQPS := 0.0
		for _, q := range row.ActualQPS {
			if q > maxQPS {
				maxQPS = q
			}
		}
		fmt.Fprintf(&b, "%s:\n", row.Model)
		for i := range row.Configs {
			mark := "  "
			if i == row.PickIndex {
				mark = "* "
			}
			if i == row.BestIndex {
				mark = "! "
				if i == row.PickIndex {
					mark = "*!"
				}
			}
			fmt.Fprintf(&b, "  %s %-12s UB=%-8.1f QPS=%-8.1f (%.0f%% of max)\n",
				mark, row.Configs[i], row.UpperBounds[i], row.ActualQPS[i], row.ActualQPS[i]/maxQPS*100)
		}
	}
	return b.String()
}

// Fig14Row is one configuration of the Fig. 14 study.
type Fig14Row struct {
	Config     cloud.Config
	UpperBound float64
	QPS        map[string]float64
}

// Fig14Result reproduces Fig. 14: the top upper-bound RM2 configurations
// re-measured under each query-distribution scheme, with the UB curve and
// the Oracle reference.
type Fig14Result struct {
	Rows      []Fig14Row
	OracleQPS float64
	Order     []string
}

// Fig14 runs the experiment. Top defaults to the paper's 12.
func Fig14(scale Scale, top int) Fig14Result {
	if top <= 0 {
		top = 12
	}
	env := NewEnv(scale, cloud.DefaultPool(), models.MustByName("RM2"))
	ranked := env.Estimator().Rank(scale.Budget)
	if len(ranked) > top {
		ranked = ranked[:top]
	}
	res := Fig14Result{Order: []string{"RIBBON", "DRS", "CLKWRK", "KAIROS"}}
	_, res.OracleQPS = env.OracleBest()
	drsThr, _, _ := env.TuneDRS(ranked[0].Config)
	for _, rc := range ranked {
		row := Fig14Row{Config: rc.Config, UpperBound: rc.UpperBound, QPS: map[string]float64{}}
		row.QPS["RIBBON"] = env.Measure(rc.Config, env.RibbonFactory())
		row.QPS["DRS"] = env.Measure(rc.Config, env.DRSFactory(drsThr))
		row.QPS["CLKWRK"] = env.Measure(rc.Config, env.ClockworkFactory())
		row.QPS["KAIROS"] = env.Measure(rc.Config, env.KairosFactory())
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders the result.
func (r Fig14Result) String() string {
	header := []string{"Config", "UB"}
	header = append(header, r.Order...)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.Config.String(), f1(row.UpperBound)}
		for _, s := range r.Order {
			cells = append(cells, f1(row.QPS[s]))
		}
		rows = append(rows, cells)
	}
	return fmt.Sprintf("Fig 14: distribution scheme swap on top-UB RM2 configs (Oracle best = %.1f QPS)\n", r.OracleQPS) +
		renderTable(header, rows)
}

// Fig15Result reproduces Fig. 15: Kairos's gains when (a) the budget scales
// 4x and (b) the QoS targets are 20% higher.
type Fig15Result struct {
	BudgetX4 Fig8Result
	HighQoS  Fig8Result
}

// Fig15 runs both variants.
func Fig15(scale Scale) Fig15Result {
	big := scale
	big.Budget = scale.Budget * 4
	res := Fig15Result{}
	res.BudgetX4 = fig8With(big, func(m models.Model) Env {
		return NewEnv(big, cloud.DefaultPool(), m)
	})
	res.HighQoS = fig8With(scale, func(m models.Model) Env {
		return NewEnv(scale, cloud.DefaultPool(), m.WithQoS(m.QoS*1.2))
	})
	return res
}

// String renders the result.
func (r Fig15Result) String() string {
	return "Fig 15a: budget x4\n" + fig8Body(r.BudgetX4) +
		"Fig 15b: QoS targets +20%\n" + fig8Body(r.HighQoS)
}

// fig8Body renders a Fig8Result without its caption.
func fig8Body(r Fig8Result) string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Model, row.Pick.String(), f1(row.HomQPS), f1(row.KairosQPS), f2(row.Gain)})
	}
	return renderTable([]string{"Model", "Kairos pick", "Hom QPS (scaled)", "Kairos QPS", "Gain"}, rows)
}

// Fig16Result reproduces Fig. 16: Kairos's gains when (a) batch sizes are
// Gaussian and (b) 5% Gaussian white noise perturbs the latencies the
// cloud actually delivers while the controller predicts the clean values
// — the paper's "emulate performance variability in the cloud". (Putting
// the white noise on every prediction call instead creates a
// winner's-curse selection effect — the min-cost matching picks whichever
// placement drew the most optimistic noise — that no real system exhibits;
// predictor.Noisy implements that variant for the ablation suite.)
type Fig16Result struct {
	Gaussian Fig8Result
	Noise    Fig8Result
}

// Fig16 runs both variants.
func Fig16(scale Scale) Fig16Result {
	res := Fig16Result{}
	res.Gaussian = fig8With(scale, func(m models.Model) Env {
		env := NewEnv(scale, cloud.DefaultPool(), m)
		env.Batches = workload.DefaultGaussian()
		return env
	})
	res.Noise = fig8With(scale, func(m models.Model) Env {
		env := NewEnv(scale, cloud.DefaultPool(), m)
		env.Oracle = models.NewNoisyOracle(m, 0.05, scale.Seed+7)
		return env
	})
	return res
}

// String renders the result.
func (r Fig16Result) String() string {
	return "Fig 16a: Gaussian batch sizes\n" + fig8Body(r.Gaussian) +
		"Fig 16b: 5% latency noise\n" + fig8Body(r.Noise)
}
