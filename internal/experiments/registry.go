package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment at the given scale and returns a
// renderable result.
type Runner func(Scale) fmt.Stringer

type stringResult string

func (s stringResult) String() string { return string(s) }

// Registry maps experiment identifiers (the paper's table/figure numbers)
// to their regenerators.
var Registry = map[string]Runner{
	"table3": func(Scale) fmt.Stringer { return stringResult("Table 3: models and QoS targets\n" + Table3()) },
	"table4": func(Scale) fmt.Stringer { return stringResult("Table 4: instance types\n" + Table4()) },
	"fig1":   func(s Scale) fmt.Stringer { return Fig1(s) },
	"fig2":   func(s Scale) fmt.Stringer { return Fig2(s) },
	"fig3":   func(s Scale) fmt.Stringer { return Fig3(s) },
	"fig5":   func(Scale) fmt.Stringer { return Fig5() },
	"fig7":   func(Scale) fmt.Stringer { return Fig7() },
	"fig8":   func(s Scale) fmt.Stringer { return Fig8(s) },
	"fig9":   func(s Scale) fmt.Stringer { return Fig9(s) },
	"fig10":  func(s Scale) fmt.Stringer { return Fig10(s) },
	"fig11":  func(s Scale) fmt.Stringer { return Fig11(s) },
	"fig12":  func(s Scale) fmt.Stringer { return Fig12(s) },
	"fig13":  func(s Scale) fmt.Stringer { return Fig13(s, 20) },
	"fig14":  func(s Scale) fmt.Stringer { return Fig14(s, 12) },
	"fig15":  func(s Scale) fmt.Stringer { return Fig15(s) },
	"fig16":  func(s Scale) fmt.Stringer { return Fig16(s) },
}

// IDs lists the registered experiment identifiers in stable order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// tables first, then figures by number.
		ti, tj := out[i][0] == 't', out[j][0] == 't'
		if ti != tj {
			return ti
		}
		var ni, nj int
		fmt.Sscanf(out[i], "fig%d", &ni)
		fmt.Sscanf(out[j], "fig%d", &nj)
		fmt.Sscanf(out[i], "table%d", &ni)
		fmt.Sscanf(out[j], "table%d", &nj)
		return ni < nj
	})
	return out
}

// Run executes the named experiment.
func Run(id string, scale Scale) (fmt.Stringer, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(scale), nil
}
