// Package autopilot closes the paper's Fig. 12 adaptation loop over the
// real network serving path, for a set of models sharing one cost budget:
// per-model rolling-window live monitors fed from controller completions,
// per-model drift triggers (internal/adapt) plus SLO-violation triggers
// and a fleet-wide scale-in trigger on sustained under-utilization, a
// replan step invoking the shared-budget fleet planner with the live
// windows as its samples, and an actuator that reconciles every model's
// running fleet — launching and draining instance servers at runtime —
// toward the fresh plan. A trigger fired by one model replans the whole
// fleet, so budget freed by a cooling model flows to a heating one. It is
// the control plane that turns the monitors, planner, and controller from
// isolated components into a self-managing multi-model serving system
// (INFaaS-style managed adaptivity, KubeAI-style reconciliation).
package autopilot

import (
	"fmt"
	"sync"

	"kairos/internal/cloud"
	"kairos/internal/core"
	"kairos/internal/models"
	"kairos/internal/server"
)

// Fleet launches and stops in-process instance servers on loopback TCP —
// the actuator's "cloud provider". Every server emulates one instance type
// hosting one of the fleet's registered models at the fleet's time scale
// (see server.InstanceServer).
type Fleet struct {
	timeScale float64
	models    map[string]models.Model

	mu      sync.Mutex
	servers map[string]*fleetServer // keyed by listen address
}

type fleetServer struct {
	model    string
	typeName string
	srv      *server.InstanceServer
}

// NewFleet prepares an empty fleet serving the given models at one time
// scale. Like the server layer, a non-positive timeScale means real time.
func NewFleet(timeScale float64, ms ...models.Model) *Fleet {
	if timeScale <= 0 {
		timeScale = 1
	}
	byName := make(map[string]models.Model, len(ms))
	for _, m := range ms {
		byName[m.Name] = m
	}
	return &Fleet{timeScale: timeScale, models: byName, servers: map[string]*fleetServer{}}
}

// TimeScale returns the fleet's time dilation factor.
func (f *Fleet) TimeScale() float64 { return f.timeScale }

// Models lists the registered model names in unspecified order.
func (f *Fleet) Models() []string {
	out := make([]string, 0, len(f.models))
	for name := range f.models {
		out = append(out, name)
	}
	return out
}

// Launch starts one instance server of the given type hosting the named
// model on an ephemeral loopback port and returns its address.
func (f *Fleet) Launch(model, typeName string) (string, error) {
	m, ok := f.models[model]
	if !ok {
		return "", fmt.Errorf("autopilot: fleet does not serve model %q", model)
	}
	srv, err := server.NewInstanceServer(typeName, m, f.timeScale)
	if err != nil {
		return "", err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return "", err
	}
	addr := srv.Addr()
	f.mu.Lock()
	f.servers[addr] = &fleetServer{model: model, typeName: typeName, srv: srv}
	f.mu.Unlock()
	return addr, nil
}

// Deploy launches plan[model][i] servers of pool[i] for every model and
// returns all started addresses. On any launch failure it stops what it
// started.
func (f *Fleet) Deploy(pool cloud.Pool, plan core.FleetPlan) ([]string, error) {
	var addrs []string
	fail := func(err error) ([]string, error) {
		for _, a := range addrs {
			f.Stop(a)
		}
		return nil, err
	}
	for _, model := range plan.Models() {
		cfg := plan[model]
		if len(cfg) != len(pool) {
			return fail(fmt.Errorf("autopilot: config %v for %s does not match pool of %d types", cfg, model, len(pool)))
		}
		for i, n := range cfg {
			for k := 0; k < n; k++ {
				addr, err := f.Launch(model, pool[i].Name)
				if err != nil {
					return fail(err)
				}
				addrs = append(addrs, addr)
			}
		}
	}
	return addrs, nil
}

// Stop shuts down the server at addr and forgets it.
func (f *Fleet) Stop(addr string) error {
	f.mu.Lock()
	fs, ok := f.servers[addr]
	delete(f.servers, addr)
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("autopilot: no fleet server at %s", addr)
	}
	return fs.srv.Close()
}

// Addrs lists the running servers' addresses in unspecified order.
func (f *Fleet) Addrs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.servers))
	for addr := range f.servers {
		out = append(out, addr)
	}
	return out
}

// Counts returns the number of running servers per model per instance
// type.
func (f *Fleet) Counts() map[string]map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]map[string]int)
	for _, fs := range f.servers {
		if out[fs.model] == nil {
			out[fs.model] = make(map[string]int)
		}
		out[fs.model][fs.typeName]++
	}
	return out
}

// CountsFor returns the number of running servers per instance type
// hosting one model.
func (f *Fleet) CountsFor(model string) map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int)
	for _, fs := range f.servers {
		if fs.model == model {
			out[fs.typeName]++
		}
	}
	return out
}

// Size returns the number of running servers.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.servers)
}

// Close stops every running server.
func (f *Fleet) Close() {
	f.mu.Lock()
	servers := f.servers
	f.servers = map[string]*fleetServer{}
	f.mu.Unlock()
	for _, fs := range servers {
		fs.srv.Close()
	}
}
