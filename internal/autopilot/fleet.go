// Package autopilot closes the paper's Fig. 12 adaptation loop over the
// real network serving path: a rolling-window live monitor fed from
// controller completions, a drift trigger (internal/adapt) plus an
// SLO-violation trigger, a replan step invoking the planner with the live
// window as its sample, and an actuator that reconciles the running fleet
// — launching and draining instance servers at runtime — toward the fresh
// configuration. It is the control plane that turns the monitor, planner,
// and controller from isolated components into a self-managing serving
// system (INFaaS-style managed adaptivity, KubeAI-style reconciliation).
package autopilot

import (
	"fmt"
	"sync"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/server"
)

// Fleet launches and stops in-process instance servers on loopback TCP —
// the actuator's "cloud provider". Every server emulates one instance type
// serving the fleet's model at the fleet's time scale (see
// server.InstanceServer).
type Fleet struct {
	model     models.Model
	timeScale float64

	mu      sync.Mutex
	servers map[string]*fleetServer // keyed by listen address
}

type fleetServer struct {
	typeName string
	srv      *server.InstanceServer
}

// NewFleet prepares an empty fleet for one model at one time scale.
// Like the server layer, a non-positive timeScale means real time.
func NewFleet(model models.Model, timeScale float64) *Fleet {
	if timeScale <= 0 {
		timeScale = 1
	}
	return &Fleet{model: model, timeScale: timeScale, servers: map[string]*fleetServer{}}
}

// TimeScale returns the fleet's time dilation factor.
func (f *Fleet) TimeScale() float64 { return f.timeScale }

// Launch starts one instance server of the given type on an ephemeral
// loopback port and returns its address.
func (f *Fleet) Launch(typeName string) (string, error) {
	srv, err := server.NewInstanceServer(typeName, f.model, f.timeScale)
	if err != nil {
		return "", err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return "", err
	}
	addr := srv.Addr()
	f.mu.Lock()
	f.servers[addr] = &fleetServer{typeName: typeName, srv: srv}
	f.mu.Unlock()
	return addr, nil
}

// Deploy launches cfg[i] servers of pool[i] for every type and returns all
// started addresses. On any launch failure it stops what it started.
func (f *Fleet) Deploy(pool cloud.Pool, cfg cloud.Config) ([]string, error) {
	if len(cfg) != len(pool) {
		return nil, fmt.Errorf("autopilot: config %v does not match pool of %d types", cfg, len(pool))
	}
	var addrs []string
	for i, n := range cfg {
		for k := 0; k < n; k++ {
			addr, err := f.Launch(pool[i].Name)
			if err != nil {
				for _, a := range addrs {
					f.Stop(a)
				}
				return nil, err
			}
			addrs = append(addrs, addr)
		}
	}
	return addrs, nil
}

// Stop shuts down the server at addr and forgets it.
func (f *Fleet) Stop(addr string) error {
	f.mu.Lock()
	fs, ok := f.servers[addr]
	delete(f.servers, addr)
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("autopilot: no fleet server at %s", addr)
	}
	return fs.srv.Close()
}

// Addrs lists the running servers' addresses in unspecified order.
func (f *Fleet) Addrs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.servers))
	for addr := range f.servers {
		out = append(out, addr)
	}
	return out
}

// Counts returns the number of running servers per instance type.
func (f *Fleet) Counts() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int)
	for _, fs := range f.servers {
		out[fs.typeName]++
	}
	return out
}

// Size returns the number of running servers.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.servers)
}

// Close stops every running server.
func (f *Fleet) Close() {
	f.mu.Lock()
	servers := f.servers
	f.servers = map[string]*fleetServer{}
	f.mu.Unlock()
	for _, fs := range servers {
		fs.srv.Close()
	}
}
