package autopilot

import (
	"fmt"
	"time"

	"kairos/internal/cloud"
	"kairos/internal/core"
)

// Provider is the actuation driver: how instance servers come to exist
// and go away. The actuator (and the facade's initial deploy) work
// exclusively against this interface, so the same control loop manages
// in-process loopback servers (Fleet), exec'd kairosd processes
// (ExecFleet), and eventually SSH- or cloud-provisioned hosts — the
// pluggable "how instances are launched" edge of the system (INFaaS /
// KubeAI style).
//
// The contract with the actuator: Launch returns only once the instance
// is accepting controller connections and announcing the right model and
// type in its Hello banner, and Stop is called only after the controller
// has drained and disconnected the instance, so a provider never has to
// worry about in-flight queries.
type Provider interface {
	// Launch starts one instance of typeName hosting model and returns
	// its dialable address once it is ready.
	Launch(model, typeName string) (string, error)
	// Stop tears down the instance at addr.
	Stop(addr string) error
	// Addrs lists the running instances' addresses in unspecified order.
	Addrs() []string
	// Close stops every running instance.
	Close() error
}

// Reaper is an optional Provider extension for fault handling: Reap
// releases whatever the provider still holds for an instance that died on
// its own — the exec provider reaps the OS process, the in-process fleet
// forgets the server — without the drained-first contract Stop assumes.
// Reaping an address the provider no longer tracks is not an error.
type Reaper interface {
	Reap(addr string) error
}

// reap releases a dead instance through the provider's Reaper extension
// when it has one, falling back to a best-effort Stop.
func reap(p Provider, addr string) error {
	if r, ok := p.(Reaper); ok {
		return r.Reap(addr)
	}
	return p.Stop(addr)
}

// Preemption is a spot-market revocation notice: the capacity market
// reclaims the instance at Addr no later than Deadline. Between notice
// and deadline the instance serves normally — the window exists so a
// control plane can drain it ahead of death.
type Preemption struct {
	// Addr is the doomed instance's dialable address.
	Addr string
	// Deadline is when the instance dies regardless of drain progress.
	Deadline time.Time
}

// Noticer is an optional Provider extension for revocable capacity:
// Notices delivers preemption notices for instances the market is about
// to reclaim. The channel is never closed and may be nil when the
// provider cannot deliver notices. The control loop treats each notice
// as a first-class trigger distinct from death: drain the doomed
// instance immediately, then replan around the hole before the deadline.
type Noticer interface {
	Notices() <-chan Preemption
}

// Preempter is an optional Provider extension for injecting
// revocations: Preempt delivers a notice for the instance at addr and
// schedules its hard kill at the end of the notice window — the exact
// sequence a cloud spot market performs. It returns the kill deadline.
// An instance stopped (drained) before the deadline is simply gone when
// the kill fires. Tests and the soak harness script preemptions through
// this.
type Preempter interface {
	Preempt(addr string, notice time.Duration) (time.Time, error)
}

// Deploy launches plan[model][i] instances of pool[i] for every model on
// the provider and returns all started addresses. On any launch failure
// it stops what it started.
func Deploy(p Provider, pool cloud.Pool, plan core.FleetPlan) ([]string, error) {
	var addrs []string
	fail := func(err error) ([]string, error) {
		for _, a := range addrs {
			p.Stop(a)
		}
		return nil, err
	}
	for _, model := range plan.Models() {
		cfg := plan[model]
		if len(cfg) != len(pool) {
			return fail(fmt.Errorf("autopilot: config %v for %s does not match pool of %d types", cfg, model, len(pool)))
		}
		for i, n := range cfg {
			for k := 0; k < n; k++ {
				addr, err := p.Launch(model, pool[i].Name)
				if err != nil {
					return fail(err)
				}
				addrs = append(addrs, addr)
			}
		}
	}
	return addrs, nil
}
