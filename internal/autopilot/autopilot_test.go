package autopilot

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"kairos/internal/cloud"
	"kairos/internal/core"
	"kairos/internal/models"
	"kairos/internal/predictor"
	"kairos/internal/server"
	"kairos/internal/workload"
)

// ncf returns the millisecond-scale model used by all live-path tests.
func ncf() models.Model { return models.MustByName("NCF") }

// kairosPolicy builds the warmed paper policy over the default pool.
func kairosPolicy(m models.Model) *core.Distributor {
	pool := cloud.DefaultPool()
	names := make([]string, len(pool))
	for i, t := range pool {
		names[i] = t.Name
	}
	return core.NewDistributor(core.DistributorOptions{
		QoS:       m.QoS,
		BaseType:  pool.Base().Name,
		Predictor: predictor.Warmed(m.Latency, names, []int{1, 250, 500, 750, 1000}),
	})
}

// samplesOf draws n batch sizes from dist.
func samplesOf(dist workload.BatchDistribution, n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = dist.Sample(rng)
	}
	return out
}

// plan wraps a single model's config as a fleet plan.
func plan(m models.Model, cfg cloud.Config) core.FleetPlan {
	return core.FleetPlan{m.Name: cfg}
}

func TestFleetLifecycle(t *testing.T) {
	t.Parallel()
	m := ncf()
	f := NewFleet(1, m)
	defer f.Close()

	if _, err := f.Launch(m.Name, "no-such-type"); err == nil {
		t.Fatal("unknown type must not launch")
	}
	if _, err := f.Launch("no-such-model", cloud.R5nLarge.Name); err == nil {
		t.Fatal("unknown model must not launch")
	}
	addr, err := f.Launch(m.Name, cloud.R5nLarge.Name)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1 || f.CountsFor(m.Name)[cloud.R5nLarge.Name] != 1 {
		t.Fatalf("size=%d counts=%v", f.Size(), f.Counts())
	}
	if err := f.Stop(addr); err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(addr); err == nil {
		t.Fatal("double stop must error")
	}

	pool := cloud.DefaultPool()
	addrs, err := Deploy(f, pool, plan(m, cloud.Config{1, 0, 2, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 3 || f.Size() != 3 {
		t.Fatalf("deployed %v, size %d", addrs, f.Size())
	}
	counts := f.Counts()[m.Name]
	if counts[cloud.G4dnXlarge.Name] != 1 || counts[cloud.R5nLarge.Name] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if _, err := Deploy(f, pool, plan(m, cloud.Config{1})); err == nil {
		t.Fatal("mismatched config must error")
	}
}

func TestOptionsValidation(t *testing.T) {
	t.Parallel()
	m := ncf()
	pool := cloud.DefaultPool()
	ms := []models.Model{m}
	okPlan := func(map[string][]int, map[string]float64, float64) (core.FleetPlan, error) {
		return core.FleetPlan{m.Name: cloud.Config{0, 0, 1, 0}}, nil
	}

	cases := []struct {
		name string
		opts Options
	}{
		{"no pool", Options{Models: ms, Plan: okPlan}},
		{"no models", Options{Pool: pool, Plan: okPlan}},
		{"duplicate model", Options{Pool: pool, Models: []models.Model{m, m}, Plan: okPlan}},
		{"no plan", Options{Pool: pool, Models: ms}},
		{"bad drift", Options{Pool: pool, Models: ms, Plan: okPlan, DriftThreshold: 1.5}},
		{"bad percentile", Options{Pool: pool, Models: ms, Plan: okPlan, SLOPercentile: 101}},
		{"bad scale-in floor", Options{Pool: pool, Models: ms, Plan: okPlan, ScaleInFloor: 1.2}},
		{"bad scale-in band", Options{Pool: pool, Models: ms, Plan: okPlan, ScaleInFloor: 0.6, ScaleInHysteresis: 0.5}},
	}
	for _, tc := range cases {
		if _, err := tc.opts.withDefaults(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}

	o, err := Options{Pool: pool, Models: ms, Plan: okPlan, ScaleInFloor: 0.3}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if o.Interval != DefaultInterval || o.Window != DefaultWindow ||
		o.MinObservations != DefaultWindow/10 || o.SLOLatencyMS != 0 ||
		o.SLOPercentile != DefaultSLOPercentile || o.Cooldown != 2*DefaultInterval ||
		o.ScaleInTicks != DefaultScaleInTicks || o.ScaleInHysteresis != DefaultScaleInHysteresis {
		t.Fatalf("defaults = %+v", o)
	}
}

// startAutopilot boots a fleet + controller for initial and builds an
// autopilot around them with the given plan function and options tweaks.
func startAutopilot(t *testing.T, initial cloud.Config, opts Options) *Autopilot {
	t.Helper()
	m := ncf()
	pool := cloud.DefaultPool()
	fleet := NewFleet(1, m)
	addrs, err := Deploy(fleet, pool, plan(m, initial))
	if err != nil {
		fleet.Close()
		t.Fatal(err)
	}
	ctrl, err := server.NewController(m.Name, kairosPolicy(m), 1, m.Latency, addrs)
	if err != nil {
		fleet.Close()
		t.Fatal(err)
	}
	opts.Pool = pool
	opts.Models = []models.Model{m}
	ap, err := New(ctrl, fleet, plan(m, initial), opts)
	if err != nil {
		ctrl.Close()
		fleet.Close()
		t.Fatal(err)
	}
	t.Cleanup(ap.Close)
	return ap
}

// singlePlan adapts a single-model planner to the fleet Plan signature.
func singlePlan(m models.Model, fn func(samples []int) (cloud.Config, error)) PlanFunc {
	return func(samples map[string][]int, _ map[string]float64, _ float64) (core.FleetPlan, error) {
		cfg, err := fn(samples[m.Name])
		if err != nil {
			return nil, err
		}
		if cfg == nil {
			return nil, nil
		}
		return core.FleetPlan{m.Name: cfg}, nil
	}
}

// TestStepDriftReplanActuates drives the control loop deterministically:
// live completions of a shifted mix must trip the drift trigger, invoke
// the planner with the live window, and reconcile the fleet — without
// dropping a single query.
func TestStepDriftReplanActuates(t *testing.T) {
	t.Parallel()
	m := ncf()
	initial := cloud.Config{0, 0, 2, 0} // 2x CPU
	next := cloud.Config{1, 0, 1, 0}    // 1x GPU + 1x CPU
	var planned [][]int
	opts := Options{
		Plan: singlePlan(m, func(samples []int) (cloud.Config, error) {
			planned = append(planned, samples)
			return next.Clone(), nil
		}),
		Window:          60,
		MinObservations: 30,
		References:      map[string][]int{m.Name: samplesOf(workload.Uniform{Min: 10, Max: 60}, 200, 1)},
		DriftThreshold:  0.3,
	}
	ap := startAutopilot(t, initial, opts)

	// Cold window: nothing to check yet.
	dec, err := ap.Step()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Checked {
		t.Fatalf("cold window must not be checked: %+v", dec)
	}

	// Serve 40 queries of a disjoint mix through the real TCP path.
	for i := 0; i < 40; i++ {
		if res := ap.Controller().SubmitWait(m.Name, 500+i); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	dec, err = ap.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Checked || !dec.DriftTriggered || !dec.Replanned {
		t.Fatalf("expected a drift-triggered replan: %+v", dec)
	}
	if md := dec.Models[m.Name]; !md.Checked || !md.DriftTriggered {
		t.Fatalf("per-model decision = %+v", md)
	}
	if !dec.From.Equal(plan(m, initial)) || !dec.To.Equal(plan(m, next)) {
		t.Fatalf("decision %v -> %v", dec.From, dec.To)
	}
	if len(planned) != 1 || len(planned[0]) != 40 {
		t.Fatalf("planner saw %d samples", len(planned[0]))
	}
	if !ap.Current().Equal(plan(m, next)) || ap.Replans() != 1 {
		t.Fatalf("current=%v replans=%d", ap.Current(), ap.Replans())
	}
	// The running fleet converged to the new plan.
	counts := ap.Controller().ModelInstanceCounts(m.Name)
	if counts[cloud.G4dnXlarge.Name] != 1 || counts[cloud.R5nLarge.Name] != 1 {
		t.Fatalf("controller fleet = %v", counts)
	}
	fcounts := ap.Provider().(*Fleet).CountsFor(m.Name)
	if fcounts[cloud.G4dnXlarge.Name] != 1 || fcounts[cloud.R5nLarge.Name] != 1 {
		t.Fatalf("fleet servers = %v", fcounts)
	}
	// Queries keep flowing on the reconfigured fleet.
	if res := ap.Controller().SubmitWait(m.Name, 700); res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := ap.Controller().Stats().Failed; got != 0 {
		t.Fatalf("%d queries dropped across the reconfiguration", got)
	}
}

// TestStepCooldownHoldsTriggers: a second drifted window within the
// cooldown must not replan again.
func TestStepCooldownHoldsTriggers(t *testing.T) {
	t.Parallel()
	m := ncf()
	initial := cloud.Config{0, 0, 2, 0}
	opts := Options{
		Plan: singlePlan(m, func([]int) (cloud.Config, error) {
			return cloud.Config{1, 0, 1, 0}, nil
		}),
		Window:          40,
		MinObservations: 20,
		References:      map[string][]int{m.Name: samplesOf(workload.Uniform{Min: 10, Max: 60}, 200, 1)},
		Cooldown:        time.Hour,
	}
	ap := startAutopilot(t, initial, opts)
	for i := 0; i < 25; i++ {
		if res := ap.Controller().SubmitWait(m.Name, 600); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if dec, err := ap.Step(); err != nil || !dec.Replanned {
		t.Fatalf("first step: %+v err=%v", dec, err)
	}
	// Shift again: the window still reads as drifted vs the rebased
	// reference, but the cooldown holds.
	for i := 0; i < 25; i++ {
		if res := ap.Controller().SubmitWait(m.Name, 30); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	dec, err := ap.Step()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Replanned || !dec.DriftTriggered {
		t.Fatalf("cooldown must hold the trigger: %+v", dec)
	}
	if ap.Replans() != 1 {
		t.Fatalf("replans = %d", ap.Replans())
	}
}

// TestStepSLOTrigger: an SLO breach with an undrifted mix fires the
// trigger; when the planner returns the same configuration, nothing is
// actuated but the decision is recorded.
func TestStepSLOTrigger(t *testing.T) {
	t.Parallel()
	m := ncf()
	initial := cloud.Config{0, 0, 1, 0}
	small := workload.Uniform{Min: 10, Max: 60}
	opts := Options{
		Plan: singlePlan(m, func([]int) (cloud.Config, error) {
			return cloud.Config{0, 0, 1, 0}, nil // planner sees no better option
		}),
		Window:          40,
		MinObservations: 10,
		References:      map[string][]int{m.Name: samplesOf(small, 200, 1)},
		SLOLatencyMS:    0.0001, // everything breaches
	}
	ap := startAutopilot(t, initial, opts)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 12; i++ {
		if res := ap.Controller().SubmitWait(m.Name, small.Sample(rng)); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	dec, err := ap.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.SLOTriggered || dec.DriftTriggered {
		t.Fatalf("want a pure SLO trigger: %+v", dec)
	}
	if dec.Replanned || ap.Replans() != 0 {
		t.Fatalf("unchanged plan must not actuate: %+v", dec)
	}
	st := ap.Status()
	if st.Plan.LastReason == "" {
		t.Fatal("the held trigger must be recorded")
	}
}

// TestStepScaleInShedsCost: sustained under-utilization (the ROADMAP's
// scale-in trigger) must fire after the configured consecutive ticks,
// replan under a shrunk budget, and actually drain capacity — then reset
// its counter so the next fire needs a fresh run of low readings.
func TestStepScaleInShedsCost(t *testing.T) {
	t.Parallel()
	m := ncf()
	pool := cloud.DefaultPool()
	initial := cloud.Config{0, 0, 3, 0} // 3x r5n.large = $0.447/hr
	var budgets []float64
	opts := Options{
		Plan: func(samples map[string][]int, _ map[string]float64, budget float64) (core.FleetPlan, error) {
			budgets = append(budgets, budget)
			if budget > 0 && budget < pool.Cost(initial) {
				// Demand-sized shrink: keep a single CPU.
				return core.FleetPlan{m.Name: cloud.Config{0, 0, 1, 0}}, nil
			}
			return core.FleetPlan{m.Name: initial.Clone()}, nil
		},
		Window:          40,
		MinObservations: 10,
		References:      map[string][]int{m.Name: samplesOf(workload.Uniform{Min: 10, Max: 60}, 200, 1)},
		ScaleInFloor:    0.5,
		ScaleInTicks:    2,
		Cooldown:        time.Millisecond,
	}
	ap := startAutopilot(t, initial, opts)
	// Warm the window, then go idle: utilization between steps is ~0.
	for i := 0; i < 12; i++ {
		if res := ap.Controller().SubmitWait(m.Name, 30); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	// Step 1 baselines the rate estimator (no utilization reading yet).
	dec, err := ap.Step()
	if err != nil {
		t.Fatal(err)
	}
	if dec.ScaleInTriggered {
		t.Fatalf("scale-in fired without a utilization reading: %+v", dec)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !dec.Replanned && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		dec, err = ap.Step()
		if err != nil {
			t.Fatal(err)
		}
	}
	if !dec.Replanned || !dec.ScaleInTriggered {
		t.Fatalf("scale-in never replanned: %+v", dec)
	}
	if dec.PlanBudget <= 0 || dec.PlanBudget >= pool.Cost(initial) {
		t.Fatalf("scale-in must shrink the budget, got %v", dec.PlanBudget)
	}
	if got := budgets[len(budgets)-1]; got != dec.PlanBudget {
		t.Fatalf("planner saw budget %v, decision says %v", got, dec.PlanBudget)
	}
	if !ap.Current().Equal(core.FleetPlan{m.Name: cloud.Config{0, 0, 1, 0}}) {
		t.Fatalf("fleet did not shrink: %v", ap.Current())
	}
	if got := ap.Controller().ModelInstanceCounts(m.Name)[cloud.R5nLarge.Name]; got != 1 {
		t.Fatalf("controller still has %d CPUs", got)
	}
	// The counter reset: the immediately-following step must not re-fire.
	dec, err = ap.Step()
	if err != nil {
		t.Fatal(err)
	}
	if dec.ScaleInTriggered {
		t.Fatalf("counter must reset after a scale-in replan: %+v", dec)
	}
	if st := ap.Status(); !st.ScaleIn.Enabled || st.ScaleIn.TicksNeeded != 2 {
		t.Fatalf("scale-in status = %+v", st.ScaleIn)
	}
	// Zero dropped queries across the drain.
	if got := ap.Controller().Stats().Failed; got != 0 {
		t.Fatalf("%d queries dropped during scale-in", got)
	}
}

// TestScaleInHysteresis exercises the counter's three bands directly:
// below the floor arms, inside the band holds, above the band resets.
func TestScaleInHysteresis(t *testing.T) {
	t.Parallel()
	m := ncf()
	opts := Options{
		Plan:              singlePlan(m, func([]int) (cloud.Config, error) { return cloud.Config{0, 0, 1, 0}, nil }),
		ScaleInFloor:      0.4,
		ScaleInHysteresis: 0.2,
		ScaleInTicks:      3,
	}
	ap := startAutopilot(t, cloud.Config{0, 0, 1, 0}, opts)

	if ap.scaleInTick(0.1, false) {
		t.Fatal("invalid utilization reading must not count")
	}
	if ap.scaleInTick(0.1, true) || ap.scaleInTick(0.2, true) {
		t.Fatal("fired before ticks-needed")
	}
	// Inside the hysteresis band: neither arms nor resets.
	if ap.scaleInTick(0.5, true) {
		t.Fatal("band reading must not fire")
	}
	if !ap.scaleInTick(0.3, true) {
		t.Fatal("third low reading must fire")
	}
	// Above floor+band: resets the run.
	if ap.scaleInTick(0.7, true) {
		t.Fatal("high reading must reset")
	}
	if ap.scaleInTick(0.1, true) {
		t.Fatal("fresh run must start over")
	}
}

func TestAdminEndpoints(t *testing.T) {
	t.Parallel()
	m := ncf()
	initial := cloud.Config{0, 0, 2, 0}
	opts := Options{
		Plan:            singlePlan(m, func([]int) (cloud.Config, error) { return initial, nil }),
		Window:          40,
		MinObservations: 10,
	}
	ap := startAutopilot(t, initial, opts)
	for i := 0; i < 5; i++ {
		if res := ap.Controller().SubmitWait(m.Name, 40); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	addr, err := ap.StartAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.StartAdmin("127.0.0.1:0"); err == nil {
		t.Fatal("second admin endpoint must error")
	}

	get := func(path string, v any) int {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return resp.StatusCode
	}

	var health map[string]any
	if code := get("/healthz", &health); code != http.StatusOK || health["ok"] != true {
		t.Fatalf("healthz code=%d body=%v", code, health)
	}
	var plan PlanStatus
	if code := get("/plan", &plan); code != http.StatusOK {
		t.Fatalf("plan code=%d", code)
	}
	mp, ok := plan.Models[m.Name]
	if !ok || len(mp.Config) != len(initial) || mp.Counts[cloud.R5nLarge.Name] != 2 || mp.Cost <= 0 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Cost != mp.Cost {
		t.Fatalf("single-model fleet cost %v != model cost %v", plan.Cost, mp.Cost)
	}
	var st Status
	if code := get("/statusz", &st); code != http.StatusOK {
		t.Fatalf("statusz code=%d", code)
	}
	if !st.Healthy || st.Controller.Completed != 5 {
		t.Fatalf("status = %+v", st)
	}
	msec, ok := st.Models[m.Name]
	if !ok || msec.Window.Observations != 5 || msec.SLOLatencyMS != m.QoS {
		t.Fatalf("model section = %+v", msec)
	}
	if st.Fleet[m.Name][cloud.R5nLarge.Name] != 2 {
		t.Fatalf("fleet = %v", st.Fleet)
	}
	if cs, ok := st.Controller.Models[m.Name]; !ok || cs.Completed != 5 {
		t.Fatalf("controller per-model stats = %+v", st.Controller.Models)
	}

	// /metrics is the Prometheus text exposition.
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Fatalf("metrics content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE kairos_up gauge",
		"kairos_up 1",
		"kairos_queries_completed_total 5",
		"# TYPE kairos_stage_latency_seconds histogram",
		fmt.Sprintf("kairos_stage_latency_seconds_count{model=%q,stage=\"e2e\"} 5", m.Name),
		fmt.Sprintf("kairos_fleet_instances{model=%q,type=%q} 2", m.Name, cloud.R5nLarge.Name),
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, text)
		}
	}

	// /tracez reports the sampling config and per-model rings (tracing
	// defaults to 1/64 sampling, so the ring may legitimately be empty).
	var tz TracezStatus
	if code := get("/tracez", &tz); code != http.StatusOK {
		t.Fatalf("tracez code=%d", code)
	}
	if tz.SampleEvery == 0 {
		t.Fatalf("tracez sampling disabled by default: %+v", tz)
	}
	if _, ok := tz.Models[m.Name]; !ok {
		t.Fatalf("tracez missing model section: %+v", tz)
	}
	var bad map[string]string
	if code := get("/tracez?model=nope", &bad); code != http.StatusNotFound {
		t.Fatalf("tracez unknown model code=%d", code)
	}

	// /decisionz serves the journal; no Step has run, so it is empty.
	var devs []DecisionEvent
	if code := get("/decisionz", &devs); code != http.StatusOK {
		t.Fatalf("decisionz code=%d", code)
	}
	if len(devs) != 0 {
		t.Fatalf("decision journal unexpectedly has %d entries", len(devs))
	}
	if _, err := ap.Step(); err != nil {
		t.Fatal(err)
	}
	if code := get("/decisionz", &devs); code != http.StatusOK || len(devs) != 1 {
		t.Fatalf("decisionz after one step: code=%d entries=%d", code, len(devs))
	}
	if devs[0].Seq != 1 || devs[0].Kind == "" {
		t.Fatalf("decision entry = %+v", devs[0])
	}
}

// TestAutopilotEndToEndSmoke is the closed-loop acceptance run: an
// in-process fleet at real time scale, live Poisson-ish load whose batch
// mix shifts mid-run, the full monitor -> detect -> replan -> actuate loop
// ticking in the background, and zero dropped queries end to end. Guarded
// by -short so quick local runs skip it; CI runs it with -race.
func TestAutopilotEndToEndSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping end-to-end autopilot smoke test in -short mode")
	}
	t.Parallel()
	m := ncf()
	pool := cloud.DefaultPool()
	const budget = 0.8

	small := workload.Uniform{Min: 10, Max: 80}
	large := workload.Uniform{Min: 450, Max: 750}
	reference := samplesOf(small, 2000, 7)

	planOne := func(samples []int) (cloud.Config, error) {
		est, err := core.NewEstimator(pool, m, samples, core.EstimatorOptions{})
		if err != nil {
			return nil, err
		}
		return est.Plan(budget), nil
	}
	initial, err := planOne(reference)
	if err != nil {
		t.Fatal(err)
	}
	if initial[cloud.BaseIndex] != 0 {
		t.Fatalf("small-mix plan %v unexpectedly buys the GPU; the shift would be invisible", initial)
	}

	fleet := NewFleet(1, m)
	addrs, err := Deploy(fleet, pool, plan(m, initial))
	if err != nil {
		fleet.Close()
		t.Fatal(err)
	}
	ctrl, err := server.NewController(m.Name, kairosPolicy(m), 1, m.Latency, addrs)
	if err != nil {
		fleet.Close()
		t.Fatal(err)
	}
	ap, err := New(ctrl, fleet, plan(m, initial), Options{
		Pool:            pool,
		Models:          []models.Model{m},
		Plan:            singlePlan(m, planOne),
		Interval:        25 * time.Millisecond,
		Cooldown:        50 * time.Millisecond,
		Window:          300,
		MinObservations: 100,
		References:      map[string][]int{m.Name: reference},
	})
	if err != nil {
		ctrl.Close()
		fleet.Close()
		t.Fatal(err)
	}
	defer ap.Close()
	ap.Start()

	rng := rand.New(rand.NewSource(11))
	send := func(mix workload.BatchDistribution, n int, gapMS float64) {
		t.Helper()
		done := make([]<-chan server.QueryResult, n)
		for i := 0; i < n; i++ {
			done[i] = ctrl.Submit(m.Name, mix.Sample(rng))
			time.Sleep(time.Duration(gapMS * float64(time.Millisecond)))
		}
		for i, ch := range done {
			select {
			case res := <-ch:
				if res.Err != nil {
					t.Fatalf("query %d dropped: %v", i, res.Err)
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("query %d never completed", i)
			}
		}
	}

	// Phase 1: steady small-batch traffic on the CPU fleet.
	send(small, 250, 1)
	if got := ap.Replans(); got != 0 {
		t.Fatalf("replanned %d times under the reference mix", got)
	}

	// Phase 2: the mix shifts to large batches; the loop must detect the
	// drift, replan from the live window, and reconfigure mid-run.
	send(large, 400, 4)

	deadline := time.Now().Add(10 * time.Second)
	for ap.Replans() == 0 && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	if ap.Replans() == 0 {
		t.Fatal("the autopilot never replanned after the mix shift")
	}
	// Let a little post-replan traffic prove the new fleet serves.
	send(large, 50, 4)

	got := ap.Current()[m.Name]
	if got.Equal(initial) {
		t.Fatalf("configuration did not change: %v", got)
	}
	if got[cloud.BaseIndex] == 0 {
		t.Fatalf("large-batch plan %v did not buy the GPU", got)
	}
	// Fleet and controller converged to the plan.
	counts := ctrl.ModelInstanceCounts(m.Name)
	for i, typ := range pool {
		if counts[typ.Name] != got[i] {
			t.Fatalf("fleet %v does not match plan %v", counts, got)
		}
	}
	// The acceptance bar: zero dropped queries across drain and launch.
	st := ctrl.Stats()
	if st.Failed != 0 {
		t.Fatalf("%d queries failed during reconfiguration", st.Failed)
	}
	status := ap.Status()
	if !status.Healthy || status.Plan.Replans == 0 {
		t.Fatalf("status = %+v", status)
	}
}

// TestStepRejectsUnusablePlan: a planner returning nil (no feasible
// configuration) is a recorded control failure, never a panic.
func TestStepRejectsUnusablePlan(t *testing.T) {
	t.Parallel()
	m := ncf()
	initial := cloud.Config{0, 0, 1, 0}
	opts := Options{
		Plan:            singlePlan(m, func([]int) (cloud.Config, error) { return nil, nil }),
		Window:          40,
		MinObservations: 10,
		References:      map[string][]int{m.Name: samplesOf(workload.Uniform{Min: 10, Max: 60}, 200, 1)},
	}
	ap := startAutopilot(t, initial, opts)
	for i := 0; i < 12; i++ {
		if res := ap.Controller().SubmitWait(m.Name, 600); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if _, err := ap.Step(); err == nil {
		t.Fatal("nil plan must surface as a step error")
	}
	if st := ap.Status(); st.Healthy || st.LastError == "" {
		t.Fatalf("unusable plan must mark the control plane unhealthy: %+v", st)
	}
	if !ap.Current().Equal(plan(m, initial)) || ap.Replans() != 0 {
		t.Fatalf("fleet must be untouched: %v, %d replans", ap.Current(), ap.Replans())
	}
}

// TestMultiModelBudgetShift is the multi-model acceptance run on the
// internal API: two models share one budget on the live TCP path; when one
// model's mix shifts to large batches, the fleet replan moves budget from
// the steady model to the drifted one — with zero dropped queries.
func TestMultiModelBudgetShift(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-model end-to-end test in -short mode")
	}
	t.Parallel()
	pool := cloud.DefaultPool()
	a := ncf()                       // stays on small batches
	b := models.MustByName("MT-WND") // shifts to large batches
	const budget = 0.9

	smallA := workload.Uniform{Min: 10, Max: 60}
	smallB := workload.Uniform{Min: 10, Max: 80}
	largeB := workload.Uniform{Min: 500, Max: 800}
	refs := map[string][]int{
		a.Name: samplesOf(smallA, 1500, 3),
		b.Name: samplesOf(smallB, 1500, 4),
	}
	planFleet := func(samples map[string][]int, _ map[string]float64, planBudget float64) (core.FleetPlan, error) {
		if planBudget <= 0 {
			planBudget = budget
		}
		demands := make([]core.ModelDemand, 0, 2)
		for _, m := range []models.Model{a, b} {
			if s := samples[m.Name]; len(s) > 0 {
				demands = append(demands, core.ModelDemand{Model: m, Samples: s})
			}
		}
		return core.PlanFleet(pool, demands, planBudget)
	}
	initial, err := planFleet(refs, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if initial[a.Name].Total() == 0 || initial[b.Name].Total() == 0 {
		t.Fatalf("initial plan must serve both models: %v", initial)
	}
	if initial[b.Name][cloud.BaseIndex] != 0 {
		t.Fatalf("small-mix plan %v already owns the GPU; the shift would be invisible", initial)
	}

	fleet := NewFleet(1, a, b)
	addrs, err := Deploy(fleet, pool, initial)
	if err != nil {
		fleet.Close()
		t.Fatal(err)
	}
	ctrl, err := server.NewMultiController(map[string]server.GroupSpec{
		a.Name: {Policy: kairosPolicy(a), Predict: a.Latency},
		b.Name: {Policy: kairosPolicy(b), Predict: b.Latency},
	}, 1, addrs)
	if err != nil {
		fleet.Close()
		t.Fatal(err)
	}
	ap, err := New(ctrl, fleet, initial, Options{
		Pool:            pool,
		Models:          []models.Model{a, b},
		Plan:            planFleet,
		Interval:        25 * time.Millisecond,
		Cooldown:        50 * time.Millisecond,
		Window:          300,
		MinObservations: 100,
		References:      refs,
	})
	if err != nil {
		ctrl.Close()
		fleet.Close()
		t.Fatal(err)
	}
	defer ap.Close()
	ap.Start()

	rng := rand.New(rand.NewSource(11))
	send := func(model string, mix workload.BatchDistribution, n int, gapMS float64) []<-chan server.QueryResult {
		done := make([]<-chan server.QueryResult, n)
		for i := 0; i < n; i++ {
			done[i] = ctrl.Submit(model, mix.Sample(rng))
			time.Sleep(time.Duration(gapMS * float64(time.Millisecond)))
		}
		return done
	}
	wait := func(label string, chans []<-chan server.QueryResult) {
		t.Helper()
		for i, ch := range chans {
			select {
			case res := <-ch:
				if res.Err != nil {
					t.Fatalf("%s query %d dropped: %v", label, i, res.Err)
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("%s query %d never completed", label, i)
			}
		}
	}

	// Phase 1: both models on their reference mixes — steady state.
	chA := send(a.Name, smallA, 150, 1)
	chB := send(b.Name, smallB, 120, 2)
	wait("phase-1 A", chA)
	wait("phase-1 B", chB)
	if got := ap.Replans(); got != 0 {
		t.Fatalf("replanned %d times under the reference mixes", got)
	}

	// Phase 2: model B's mix shifts to GPU-only batch sizes while model A
	// keeps its small mix flowing.
	chA = send(a.Name, smallA, 100, 2)
	chB = send(b.Name, largeB, 200, 8)
	wait("phase-2 A", chA)
	wait("phase-2 B", chB)

	deadline := time.Now().Add(10 * time.Second)
	for ap.Replans() == 0 && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	if ap.Replans() == 0 {
		t.Fatal("the autopilot never replanned after model B's shift")
	}
	wait("post-replan B", send(b.Name, largeB, 30, 8))
	wait("post-replan A", send(a.Name, smallA, 30, 2))

	now := ap.Current()
	if now[b.Name][cloud.BaseIndex] == 0 {
		t.Fatalf("model B's shifted plan %v did not buy the GPU", now)
	}
	costA0, costA1 := pool.Cost(initial[a.Name]), pool.Cost(now[a.Name])
	costB0, costB1 := pool.Cost(initial[b.Name]), pool.Cost(now[b.Name])
	if costB1 <= costB0 || costA1 >= costA0 {
		t.Fatalf("budget did not move from A to B: A $%.2f->$%.2f, B $%.2f->$%.2f",
			costA0, costA1, costB0, costB1)
	}
	if got := now.Cost(pool); got > budget+1e-9 {
		t.Fatalf("fleet plan %v busts the budget at $%.3f/hr", now, got)
	}
	// Both controllers' fleets converged to the plan.
	for _, m := range []models.Model{a, b} {
		counts := ctrl.ModelInstanceCounts(m.Name)
		for i, typ := range pool {
			if counts[typ.Name] != now[m.Name][i] {
				t.Fatalf("%s fleet %v does not match plan %v", m.Name, counts, now[m.Name])
			}
		}
	}
	// The acceptance bar: zero dropped queries across the whole shift.
	if st := ctrl.Stats(); st.Failed != 0 {
		t.Fatalf("%d queries failed during the budget shift", st.Failed)
	}
}

// TestStepScaleInKeepsFleetWhenBudgetBuysNothing: when the shrunk
// scale-in budget cannot buy any fleet, the step is a healthy no-op that
// re-arms the counter — never a persistent control error.
func TestStepScaleInKeepsFleetWhenBudgetBuysNothing(t *testing.T) {
	t.Parallel()
	m := ncf()
	initial := cloud.Config{0, 0, 2, 0}
	opts := Options{
		Plan: func(samples map[string][]int, _ map[string]float64, budget float64) (core.FleetPlan, error) {
			if budget > 0 {
				// The shrunk budget buys nothing (e.g. the model's cheapest
				// feasible config costs more than the cheapest pool price).
				return core.FleetPlan{m.Name: cloud.Config{0, 0, 0, 0}}, nil
			}
			return core.FleetPlan{m.Name: initial.Clone()}, nil
		},
		Window:          40,
		MinObservations: 10,
		References:      map[string][]int{m.Name: samplesOf(workload.Uniform{Min: 10, Max: 60}, 200, 1)},
		ScaleInFloor:    0.5,
		ScaleInTicks:    2,
		Cooldown:        time.Millisecond,
	}
	ap := startAutopilot(t, initial, opts)
	for i := 0; i < 12; i++ {
		if res := ap.Controller().SubmitWait(m.Name, 30); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	var dec Decision
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for !dec.ScaleInTriggered && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		dec, err = ap.Step()
		if err != nil {
			t.Fatalf("scale-in with an empty plan must not error: %v", err)
		}
	}
	if !dec.ScaleInTriggered || dec.Replanned {
		t.Fatalf("expected a no-op scale-in decision: %+v", dec)
	}
	if !ap.Current().Equal(plan(m, initial)) || ap.Replans() != 0 {
		t.Fatalf("fleet must be untouched: %v, %d replans", ap.Current(), ap.Replans())
	}
	if st := ap.Status(); !st.Healthy || st.ScaleIn.TicksBelow != 0 {
		t.Fatalf("no-op scale-in must stay healthy and re-arm: healthy=%v ticks=%d", st.Healthy, st.ScaleIn.TicksBelow)
	}
	// The controller still serves.
	if res := ap.Controller().SubmitWait(m.Name, 30); res.Err != nil {
		t.Fatal(res.Err)
	}
}

// TestStepPreservesColdModelFleet: a deployed model with no traffic and
// no reference sample is invisible to the planner; a trigger on another
// model must not read that absence as "tear the cold model's fleet down
// to zero".
func TestStepPreservesColdModelFleet(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool()
	a := ncf()
	b := models.MustByName("MT-WND")
	initial := core.FleetPlan{
		a.Name: cloud.Config{0, 0, 1, 0},
		b.Name: cloud.Config{0, 0, 1, 0},
	}
	fleet := NewFleet(1, a, b)
	addrs, err := Deploy(fleet, pool, initial)
	if err != nil {
		fleet.Close()
		t.Fatal(err)
	}
	ctrl, err := server.NewMultiController(map[string]server.GroupSpec{
		a.Name: {Policy: kairosPolicy(a), Predict: a.Latency},
		b.Name: {Policy: kairosPolicy(b), Predict: b.Latency},
	}, 1, addrs)
	if err != nil {
		fleet.Close()
		t.Fatal(err)
	}
	ap, err := New(ctrl, fleet, initial, Options{
		Pool:   pool,
		Models: []models.Model{a, b},
		// The planner only ever sees model A's sample (B stays cold and
		// has no reference) and allocates nothing to B.
		Plan: func(samples map[string][]int, _ map[string]float64, _ float64) (core.FleetPlan, error) {
			if _, ok := samples[b.Name]; ok {
				t.Errorf("planner saw a sample for the cold model: %v", samples)
			}
			return core.FleetPlan{a.Name: cloud.Config{1, 0, 0, 0}}, nil
		},
		Window:          40,
		MinObservations: 10,
		References:      map[string][]int{a.Name: samplesOf(workload.Uniform{Min: 10, Max: 60}, 200, 1)},
	})
	if err != nil {
		ctrl.Close()
		fleet.Close()
		t.Fatal(err)
	}
	defer ap.Close()

	// Drift model A; model B receives no traffic at all.
	for i := 0; i < 12; i++ {
		if res := ap.Controller().SubmitWait(a.Name, 600); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	dec, err := ap.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Replanned {
		t.Fatalf("expected a replan: %+v", dec)
	}
	// A converged to the new plan; B's fleet was carried forward, not
	// torn down.
	if got := ap.Current()[b.Name]; !got.Equal(initial[b.Name]) {
		t.Fatalf("cold model's fleet changed: %v", got)
	}
	if got := ap.Controller().ModelInstanceCounts(b.Name)[cloud.R5nLarge.Name]; got != 1 {
		t.Fatalf("cold model's instance was removed: counts=%v", got)
	}
	if res := ap.Controller().SubmitWait(b.Name, 20); res.Err != nil {
		t.Fatalf("cold model stopped serving: %v", res.Err)
	}
}
