package autopilot

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"kairos/internal/cloud"
	"kairos/internal/core"
	"kairos/internal/models"
	"kairos/internal/predictor"
	"kairos/internal/server"
	"kairos/internal/workload"
)

// ncf returns the millisecond-scale model used by all live-path tests.
func ncf() models.Model { return models.MustByName("NCF") }

// kairosPolicy builds the warmed paper policy over the default pool.
func kairosPolicy(m models.Model) *core.Distributor {
	pool := cloud.DefaultPool()
	names := make([]string, len(pool))
	for i, t := range pool {
		names[i] = t.Name
	}
	return core.NewDistributor(core.DistributorOptions{
		QoS:       m.QoS,
		BaseType:  pool.Base().Name,
		Predictor: predictor.Warmed(m.Latency, names, []int{1, 250, 500, 750, 1000}),
	})
}

// samplesOf draws n batch sizes from dist.
func samplesOf(dist workload.BatchDistribution, n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = dist.Sample(rng)
	}
	return out
}

func TestFleetLifecycle(t *testing.T) {
	t.Parallel()
	f := NewFleet(ncf(), 1)
	defer f.Close()

	if _, err := f.Launch("no-such-type"); err == nil {
		t.Fatal("unknown type must not launch")
	}
	addr, err := f.Launch(cloud.R5nLarge.Name)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1 || f.Counts()[cloud.R5nLarge.Name] != 1 {
		t.Fatalf("size=%d counts=%v", f.Size(), f.Counts())
	}
	if err := f.Stop(addr); err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(addr); err == nil {
		t.Fatal("double stop must error")
	}

	pool := cloud.DefaultPool()
	addrs, err := f.Deploy(pool, cloud.Config{1, 0, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 3 || f.Size() != 3 {
		t.Fatalf("deployed %v, size %d", addrs, f.Size())
	}
	counts := f.Counts()
	if counts[cloud.G4dnXlarge.Name] != 1 || counts[cloud.R5nLarge.Name] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if _, err := f.Deploy(pool, cloud.Config{1}); err == nil {
		t.Fatal("mismatched config must error")
	}
}

func TestOptionsValidation(t *testing.T) {
	t.Parallel()
	m := ncf()
	pool := cloud.DefaultPool()
	okPlan := func([]int) (cloud.Config, error) { return cloud.Config{0, 0, 1, 0}, nil }

	cases := []struct {
		name string
		opts Options
	}{
		{"no pool", Options{Model: m, Plan: okPlan}},
		{"no model", Options{Pool: pool, Plan: okPlan}},
		{"no plan", Options{Pool: pool, Model: m}},
		{"bad drift", Options{Pool: pool, Model: m, Plan: okPlan, DriftThreshold: 1.5}},
		{"bad percentile", Options{Pool: pool, Model: m, Plan: okPlan, SLOPercentile: 101}},
	}
	for _, tc := range cases {
		if _, err := tc.opts.withDefaults(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}

	o, err := Options{Pool: pool, Model: m, Plan: okPlan}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if o.Interval != DefaultInterval || o.Window != DefaultWindow ||
		o.MinObservations != DefaultWindow/10 || o.SLOLatencyMS != m.QoS ||
		o.SLOPercentile != DefaultSLOPercentile || o.Cooldown != 2*DefaultInterval {
		t.Fatalf("defaults = %+v", o)
	}
}

// startAutopilot boots a fleet + controller for initial and builds an
// autopilot around them with the given plan function and options tweaks.
func startAutopilot(t *testing.T, initial cloud.Config, opts Options) *Autopilot {
	t.Helper()
	m := ncf()
	pool := cloud.DefaultPool()
	fleet := NewFleet(m, 1)
	addrs, err := fleet.Deploy(pool, initial)
	if err != nil {
		fleet.Close()
		t.Fatal(err)
	}
	ctrl, err := server.NewController(kairosPolicy(m), 1, m.Latency, addrs)
	if err != nil {
		fleet.Close()
		t.Fatal(err)
	}
	opts.Pool = pool
	opts.Model = m
	ap, err := New(ctrl, fleet, initial, opts)
	if err != nil {
		ctrl.Close()
		fleet.Close()
		t.Fatal(err)
	}
	t.Cleanup(ap.Close)
	return ap
}

// TestStepDriftReplanActuates drives the control loop deterministically:
// live completions of a shifted mix must trip the drift trigger, invoke
// the planner with the live window, and reconcile the fleet — without
// dropping a single query.
func TestStepDriftReplanActuates(t *testing.T) {
	t.Parallel()
	initial := cloud.Config{0, 0, 2, 0} // 2x CPU
	next := cloud.Config{1, 0, 1, 0}    // 1x GPU + 1x CPU
	var planned [][]int
	opts := Options{
		Plan: func(samples []int) (cloud.Config, error) {
			planned = append(planned, samples)
			return next.Clone(), nil
		},
		Window:          60,
		MinObservations: 30,
		Reference:       samplesOf(workload.Uniform{Min: 10, Max: 60}, 200, 1),
		DriftThreshold:  0.3,
	}
	ap := startAutopilot(t, initial, opts)

	// Cold window: nothing to check yet.
	dec, err := ap.Step()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Checked {
		t.Fatalf("cold window must not be checked: %+v", dec)
	}

	// Serve 40 queries of a disjoint mix through the real TCP path.
	for i := 0; i < 40; i++ {
		if res := ap.Controller().SubmitWait(500 + i); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	dec, err = ap.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Checked || !dec.DriftTriggered || !dec.Replanned {
		t.Fatalf("expected a drift-triggered replan: %+v", dec)
	}
	if !dec.From.Equal(initial) || !dec.To.Equal(next) {
		t.Fatalf("decision %v -> %v", dec.From, dec.To)
	}
	if len(planned) != 1 || len(planned[0]) != 40 {
		t.Fatalf("planner saw %d samples", len(planned[0]))
	}
	if !ap.Current().Equal(next) || ap.Replans() != 1 {
		t.Fatalf("current=%v replans=%d", ap.Current(), ap.Replans())
	}
	// The running fleet converged to the new plan.
	counts := ap.Controller().InstanceCounts()
	if counts[cloud.G4dnXlarge.Name] != 1 || counts[cloud.R5nLarge.Name] != 1 {
		t.Fatalf("controller fleet = %v", counts)
	}
	fcounts := ap.Fleet().Counts()
	if fcounts[cloud.G4dnXlarge.Name] != 1 || fcounts[cloud.R5nLarge.Name] != 1 {
		t.Fatalf("fleet servers = %v", fcounts)
	}
	// Queries keep flowing on the reconfigured fleet.
	if res := ap.Controller().SubmitWait(700); res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := ap.Controller().Stats().Failed; got != 0 {
		t.Fatalf("%d queries dropped across the reconfiguration", got)
	}
}

// TestStepCooldownHoldsTriggers: a second drifted window within the
// cooldown must not replan again.
func TestStepCooldownHoldsTriggers(t *testing.T) {
	t.Parallel()
	initial := cloud.Config{0, 0, 2, 0}
	opts := Options{
		Plan: func(samples []int) (cloud.Config, error) {
			return cloud.Config{1, 0, 1, 0}, nil
		},
		Window:          40,
		MinObservations: 20,
		Reference:       samplesOf(workload.Uniform{Min: 10, Max: 60}, 200, 1),
		Cooldown:        time.Hour,
	}
	ap := startAutopilot(t, initial, opts)
	for i := 0; i < 25; i++ {
		if res := ap.Controller().SubmitWait(600); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if dec, err := ap.Step(); err != nil || !dec.Replanned {
		t.Fatalf("first step: %+v err=%v", dec, err)
	}
	// Shift again: the window still reads as drifted vs the rebased
	// reference, but the cooldown holds.
	for i := 0; i < 25; i++ {
		if res := ap.Controller().SubmitWait(30); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	dec, err := ap.Step()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Replanned || !dec.DriftTriggered {
		t.Fatalf("cooldown must hold the trigger: %+v", dec)
	}
	if ap.Replans() != 1 {
		t.Fatalf("replans = %d", ap.Replans())
	}
}

// TestStepSLOTriggerReplansOnUnchangedPlan: an SLO breach with an
// undrifted mix fires the trigger; when the planner returns the same
// configuration, nothing is actuated but the decision is recorded.
func TestStepSLOTrigger(t *testing.T) {
	t.Parallel()
	initial := cloud.Config{0, 0, 1, 0}
	small := workload.Uniform{Min: 10, Max: 60}
	opts := Options{
		Plan: func(samples []int) (cloud.Config, error) {
			return cloud.Config{0, 0, 1, 0}, nil // planner sees no better option
		},
		Window:          40,
		MinObservations: 10,
		Reference:       samplesOf(small, 200, 1),
		SLOLatencyMS:    0.0001, // everything breaches
	}
	ap := startAutopilot(t, initial, opts)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 12; i++ {
		if res := ap.Controller().SubmitWait(small.Sample(rng)); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	dec, err := ap.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.SLOTriggered || dec.DriftTriggered {
		t.Fatalf("want a pure SLO trigger: %+v", dec)
	}
	if dec.Replanned || ap.Replans() != 0 {
		t.Fatalf("unchanged plan must not actuate: %+v", dec)
	}
	st := ap.Status()
	if st.Plan.LastReason == "" {
		t.Fatal("the held trigger must be recorded")
	}
}

func TestAdminEndpoints(t *testing.T) {
	t.Parallel()
	initial := cloud.Config{0, 0, 2, 0}
	opts := Options{
		Plan:            func(samples []int) (cloud.Config, error) { return initial, nil },
		Window:          40,
		MinObservations: 10,
	}
	ap := startAutopilot(t, initial, opts)
	for i := 0; i < 5; i++ {
		if res := ap.Controller().SubmitWait(40); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	addr, err := ap.StartAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.StartAdmin("127.0.0.1:0"); err == nil {
		t.Fatal("second admin endpoint must error")
	}

	get := func(path string, v any) int {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return resp.StatusCode
	}

	var health map[string]any
	if code := get("/healthz", &health); code != http.StatusOK || health["ok"] != true {
		t.Fatalf("healthz code=%d body=%v", code, health)
	}
	var plan PlanStatus
	if code := get("/plan", &plan); code != http.StatusOK {
		t.Fatalf("plan code=%d", code)
	}
	if len(plan.Config) != len(initial) || plan.Counts[cloud.R5nLarge.Name] != 2 || plan.Cost <= 0 {
		t.Fatalf("plan = %+v", plan)
	}
	var st Status
	if code := get("/metrics", &st); code != http.StatusOK {
		t.Fatalf("metrics code=%d", code)
	}
	if !st.Healthy || st.Window.Observations != 5 || st.Controller.Completed != 5 {
		t.Fatalf("status = %+v", st)
	}
	if st.Fleet[cloud.R5nLarge.Name] != 2 {
		t.Fatalf("fleet = %v", st.Fleet)
	}
}

// TestAutopilotEndToEndSmoke is the closed-loop acceptance run: an
// in-process fleet at real time scale, live Poisson-ish load whose batch
// mix shifts mid-run, the full monitor -> detect -> replan -> actuate loop
// ticking in the background, and zero dropped queries end to end. Guarded
// by -short so quick local runs skip it; CI runs it with -race.
func TestAutopilotEndToEndSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping end-to-end autopilot smoke test in -short mode")
	}
	t.Parallel()
	m := ncf()
	pool := cloud.DefaultPool()
	const budget = 0.8

	small := workload.Uniform{Min: 10, Max: 80}
	large := workload.Uniform{Min: 450, Max: 750}
	reference := samplesOf(small, 2000, 7)

	plan := func(samples []int) (cloud.Config, error) {
		est, err := core.NewEstimator(pool, m, samples, core.EstimatorOptions{})
		if err != nil {
			return nil, err
		}
		return est.Plan(budget), nil
	}
	initial, err := plan(reference)
	if err != nil {
		t.Fatal(err)
	}
	if initial[cloud.BaseIndex] != 0 {
		t.Fatalf("small-mix plan %v unexpectedly buys the GPU; the shift would be invisible", initial)
	}

	fleet := NewFleet(m, 1)
	addrs, err := fleet.Deploy(pool, initial)
	if err != nil {
		fleet.Close()
		t.Fatal(err)
	}
	ctrl, err := server.NewController(kairosPolicy(m), 1, m.Latency, addrs)
	if err != nil {
		fleet.Close()
		t.Fatal(err)
	}
	ap, err := New(ctrl, fleet, initial, Options{
		Pool:            pool,
		Model:           m,
		Plan:            plan,
		Interval:        25 * time.Millisecond,
		Cooldown:        50 * time.Millisecond,
		Window:          300,
		MinObservations: 100,
		Reference:       reference,
	})
	if err != nil {
		ctrl.Close()
		fleet.Close()
		t.Fatal(err)
	}
	defer ap.Close()
	ap.Start()

	rng := rand.New(rand.NewSource(11))
	send := func(mix workload.BatchDistribution, n int, gapMS float64) {
		t.Helper()
		done := make([]<-chan server.QueryResult, n)
		for i := 0; i < n; i++ {
			done[i] = ctrl.Submit(mix.Sample(rng))
			time.Sleep(time.Duration(gapMS * float64(time.Millisecond)))
		}
		for i, ch := range done {
			select {
			case res := <-ch:
				if res.Err != nil {
					t.Fatalf("query %d dropped: %v", i, res.Err)
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("query %d never completed", i)
			}
		}
	}

	// Phase 1: steady small-batch traffic on the CPU fleet.
	send(small, 250, 1)
	if got := ap.Replans(); got != 0 {
		t.Fatalf("replanned %d times under the reference mix", got)
	}

	// Phase 2: the mix shifts to large batches; the loop must detect the
	// drift, replan from the live window, and reconfigure mid-run.
	send(large, 400, 4)

	deadline := time.Now().Add(10 * time.Second)
	for ap.Replans() == 0 && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	if ap.Replans() == 0 {
		t.Fatal("the autopilot never replanned after the mix shift")
	}
	// Let a little post-replan traffic prove the new fleet serves.
	send(large, 50, 4)

	got := ap.Current()
	if got.Equal(initial) {
		t.Fatalf("configuration did not change: %v", got)
	}
	if got[cloud.BaseIndex] == 0 {
		t.Fatalf("large-batch plan %v did not buy the GPU", got)
	}
	// Fleet and controller converged to the plan.
	counts := ctrl.InstanceCounts()
	for i, typ := range pool {
		if counts[typ.Name] != got[i] {
			t.Fatalf("fleet %v does not match plan %v", counts, got)
		}
	}
	// The acceptance bar: zero dropped queries across drain and launch.
	st := ctrl.Stats()
	if st.Failed != 0 {
		t.Fatalf("%d queries failed during reconfiguration", st.Failed)
	}
	status := ap.Status()
	if !status.Healthy || status.Plan.Replans == 0 {
		t.Fatalf("status = %+v", status)
	}
}

// TestStepRejectsUnusablePlan: a planner returning nil (no feasible
// configuration) is a recorded control failure, never a panic.
func TestStepRejectsUnusablePlan(t *testing.T) {
	t.Parallel()
	initial := cloud.Config{0, 0, 1, 0}
	opts := Options{
		Plan:            func(samples []int) (cloud.Config, error) { return nil, nil },
		Window:          40,
		MinObservations: 10,
		Reference:       samplesOf(workload.Uniform{Min: 10, Max: 60}, 200, 1),
	}
	ap := startAutopilot(t, initial, opts)
	for i := 0; i < 12; i++ {
		if res := ap.Controller().SubmitWait(600); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if _, err := ap.Step(); err == nil {
		t.Fatal("nil plan must surface as a step error")
	}
	if st := ap.Status(); st.Healthy || st.LastError == "" {
		t.Fatalf("unusable plan must mark the control plane unhealthy: %+v", st)
	}
	if !ap.Current().Equal(initial) || ap.Replans() != 0 {
		t.Fatalf("fleet must be untouched: %v, %d replans", ap.Current(), ap.Replans())
	}
}
