//go:build windows

package autopilot

import (
	"errors"
	"os"
	"os/exec"
)

// detachProcessGroup is a no-op on Windows: console Ctrl-C delivery is
// group-based there too, but syscall.SysProcAttr has no Setpgid field;
// CREATE_NEW_PROCESS_GROUP could be wired up if Windows fleets matter.
func detachProcessGroup(cmd *exec.Cmd) {}

// terminateProcess kills outright: Windows cannot deliver SIGTERM, and a
// 10s no-op wait before the kill would only delay every actuation. The
// actuator calls Stop only after the controller has drained the
// instance, so there are no in-flight queries to lose.
func terminateProcess(p *os.Process) error {
	return p.Kill()
}

// suspendProcess is unsupported on Windows (no SIGSTOP); the soak
// harness's wedge fault needs a unix host.
func suspendProcess(p *os.Process) error {
	return errors.New("autopilot: suspend is not supported on windows")
}

// resumeProcess is unsupported on Windows (no SIGCONT).
func resumeProcess(p *os.Process) error {
	return errors.New("autopilot: resume is not supported on windows")
}
