package autopilot

import "testing"

// TestDecisionJournalRotation: the bounded journal keeps the newest
// entries in chronological order with monotone sequence numbers, and
// events(max) trims from the old end.
func TestDecisionJournalRotation(t *testing.T) {
	j := newJournal(4)
	if got := j.events(0); len(got) != 0 {
		t.Fatalf("fresh journal has %d entries", len(got))
	}
	for i := 0; i < 10; i++ {
		j.add(DecisionEvent{Kind: "steady"})
	}
	evs := j.events(0)
	if len(evs) != 4 {
		t.Fatalf("journal retained %d entries, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(7 + i); ev.Seq != want {
			t.Fatalf("entry %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	if trimmed := j.events(2); len(trimmed) != 2 || trimmed[0].Seq != 9 || trimmed[1].Seq != 10 {
		t.Fatalf("events(2) = %+v", trimmed)
	}
}

// TestDecisionEventKinds maps Decision outcomes to journal kinds.
func TestDecisionEventKinds(t *testing.T) {
	a := &Autopilot{}
	cases := []struct {
		dec  Decision
		err  error
		want string
	}{
		{Decision{Checked: true, Replanned: true, DriftTriggered: true}, nil, "replan"},
		{Decision{Checked: false}, nil, "cold"},
		{Decision{Checked: true, Held: true, SLOTriggered: true}, nil, "held"},
		{Decision{Checked: true, DriftTriggered: true}, nil, "plan-unchanged"},
		{Decision{Checked: true}, nil, "steady"},
	}
	for _, c := range cases {
		ev := a.decisionEvent(c.dec, c.err, 0.7, 1.5)
		if ev.Kind != c.want {
			t.Fatalf("decision %+v journaled as %q, want %q", c.dec, ev.Kind, c.want)
		}
		if ev.PlanMS != 0.7 {
			t.Fatalf("decision %+v journaled plan_ms %v, want 0.7", c.dec, ev.PlanMS)
		}
	}
}
