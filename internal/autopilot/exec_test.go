package autopilot

import (
	"strings"
	"testing"
	"time"
)

func TestParseReadyLine(t *testing.T) {
	t.Parallel()
	cases := []struct {
		line string
		addr string
		ok   bool
	}{
		{"kairosd: g4dn.xlarge serving NCF on 127.0.0.1:41837 (timescale 1.00)", "127.0.0.1:41837", true},
		{"kairosd: r5n.large serving MT-WND on 127.0.0.1:7001 (timescale 0.1)", "127.0.0.1:7001", true},
		{"kairosd: shutting down", "", false},
		{"something else entirely", "", false},
		{"", "", false},
	}
	for _, tc := range cases {
		addr, ok := parseReadyLine(tc.line)
		if ok != tc.ok || addr != tc.addr {
			t.Errorf("parseReadyLine(%q) = %q, %v; want %q, %v", tc.line, addr, ok, tc.addr, tc.ok)
		}
	}
}

func TestExecFleetValidation(t *testing.T) {
	t.Parallel()
	f := NewExecFleet("/does/not/matter", 1, "NCF")
	if _, err := f.Launch("MT-WND", "r5n.large"); err == nil || !strings.Contains(err.Error(), "does not serve") {
		t.Fatalf("unlisted model must be rejected before spawning: %v", err)
	}
	if err := f.Stop("127.0.0.1:1"); err == nil {
		t.Fatal("stopping an unknown address must error")
	}
	if got := f.Addrs(); len(got) != 0 || f.Size() != 0 {
		t.Fatalf("empty fleet reports %v", got)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("closing an empty fleet: %v", err)
	}
}

// TestExecFleetBadBinary: a binary that exits without a ready line is a
// clean Launch error carrying its stderr, not a hang.
func TestExecFleetBadBinary(t *testing.T) {
	t.Parallel()
	f := NewExecFleet("/bin/false", 1)
	f.LaunchTimeout = 5 * time.Second
	if _, err := f.Launch("NCF", "r5n.large"); err == nil || !strings.Contains(err.Error(), "ready line") {
		t.Fatalf("dead binary must fail the launch: %v", err)
	}
	if f.Size() != 0 {
		t.Fatal("failed launch must not be tracked")
	}
}
