package autopilot

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"kairos/internal/obs"
	"kairos/internal/server"
)

// WindowStatus summarizes one model's live rolling window.
type WindowStatus struct {
	// Observations is the number of batch sizes currently held.
	Observations int `json:"observations"`
	// MeanBatch is the average batch size in the window.
	MeanBatch float64 `json:"mean_batch"`
	// LatencySamples is the number of latencies currently held.
	LatencySamples int `json:"latency_samples"`
	// P50MS/P95MS/P99MS are windowed latency percentiles in model ms
	// (0 while empty).
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// ThroughputQPS is the model's recent completion rate in model-time
	// QPS.
	ThroughputQPS float64 `json:"throughput_qps"`
	// ArrivalQPS is the model's smoothed observed arrival rate in
	// model-time QPS — the demand signal behind the planner's caps.
	ArrivalQPS float64 `json:"arrival_qps"`
}

// ModelPlanStatus is one model's slice of the fleet plan.
type ModelPlanStatus struct {
	// Config is the per-type instance count vector over the pool.
	Config []int `json:"config"`
	// Counts keys the same allocation by instance-type name.
	Counts map[string]int `json:"counts"`
	// Cost is the allocation's $/hr over the pool.
	Cost float64 `json:"cost"`
}

// PlanStatus is the /plan view: the fleet plan in force and the replan
// history heads.
type PlanStatus struct {
	// Models maps each served model to its allocation.
	Models map[string]ModelPlanStatus `json:"models"`
	// Cost is the whole fleet's $/hr over the pool.
	Cost float64 `json:"cost"`
	// Replans counts actuated reconfigurations.
	Replans int `json:"replans"`
	// LastChange is when the plan last changed (or was last confirmed).
	LastChange time.Time `json:"last_change,omitempty"`
	// LastReason explains the latest replan or confirmation.
	LastReason string `json:"last_reason,omitempty"`
}

// ModelStatus is one model's control-plane section of /metrics.
type ModelStatus struct {
	// Drift is the model's last measured total-variation distance.
	Drift float64 `json:"drift"`
	// SLOLatencyMS is the model's latency objective.
	SLOLatencyMS float64 `json:"slo_latency_ms"`
	// Plan is the model's slice of the fleet plan.
	Plan ModelPlanStatus `json:"plan"`
	// Window is the model's live rolling-window summary.
	Window WindowStatus `json:"window"`
	// IngressQueue is the model's current admitted-but-unfinished ingress
	// admission-queue depth (0 when no front-end is attached) — the
	// backlog an operator watches while a fault drains.
	IngressQueue int64 `json:"ingress_queue"`
}

// FaultStatus reports instance-death faults and the heals answering them
// — the recovery view soak runs and operators watch from outside.
type FaultStatus struct {
	// InstancesLost counts evictions (deaths outside orderly removals).
	InstancesLost int64 `json:"instances_lost"`
	// Heals counts completed fault-heal actuations.
	Heals int64 `json:"heals"`
	// Pending is true while a fault awaits its heal.
	Pending bool `json:"pending"`
	// LastFault and LastRecovery timestamp the most recent death and the
	// most recent completed heal (zero when none yet).
	LastFault    time.Time `json:"last_fault,omitempty"`
	LastRecovery time.Time `json:"last_recovery,omitempty"`
	// LastDetail describes the most recent death (model/type, address,
	// cause).
	LastDetail string `json:"last_detail,omitempty"`

	// Preemptions counts spot revocation notices received;
	// PreemptionsDrained of those finished their drain ahead of the
	// deadline, PreemptionsReplanned also reconciled the fleet around the
	// hole, and PreemptionDeadlineDeaths died mid-drain (the eviction
	// fallback answered those).
	Preemptions              int64 `json:"preemptions,omitempty"`
	PreemptionsDrained       int64 `json:"preemptions_drained,omitempty"`
	PreemptionsReplanned     int64 `json:"preemptions_replanned,omitempty"`
	PreemptionDeadlineDeaths int64 `json:"preemption_deadline_deaths,omitempty"`
	// LastPreempt and LastPreemptDetail describe the most recent notice.
	LastPreempt       time.Time `json:"last_preempt,omitempty"`
	LastPreemptDetail string    `json:"last_preempt_detail,omitempty"`
}

// ScaleInStatus reports the under-utilization trigger's configuration and
// progress.
type ScaleInStatus struct {
	// Enabled is false when no floor is configured.
	Enabled bool `json:"enabled"`
	// Floor and Hysteresis are the trigger's utilization bounds.
	Floor      float64 `json:"floor,omitempty"`
	Hysteresis float64 `json:"hysteresis,omitempty"`
	// TicksBelow is the current consecutive-under-utilized tick count;
	// TicksNeeded arms the trigger.
	TicksBelow  int `json:"ticks_below"`
	TicksNeeded int `json:"ticks_needed,omitempty"`
}

// IngressStatus reports the external front-end endpoints; the per-model
// ingress counters ride inside Controller.Ingress.
type IngressStatus struct {
	// Enabled is false when the autopilot serves no external traffic.
	Enabled bool `json:"enabled"`
	// HTTPAddr / TCPAddr are the bound endpoint addresses ("" disabled).
	HTTPAddr string `json:"http_addr,omitempty"`
	TCPAddr  string `json:"tcp_addr,omitempty"`
}

// Status is the /metrics view: the whole control plane at a glance.
type Status struct {
	// Healthy is false after a failed replan or actuation.
	Healthy bool `json:"healthy"`
	// UptimeSeconds is wall-clock time since New.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// DriftThreshold is the trigger level shared by every model.
	DriftThreshold float64 `json:"drift_threshold"`
	// SLOPercentile is the tail percentile checked per model.
	SLOPercentile float64 `json:"slo_percentile"`
	// ThroughputQPS is the recent fleet-wide completion rate in model-time
	// QPS; Utilization is the recent fleet-average busy fraction in [0,1].
	ThroughputQPS float64 `json:"throughput_qps"`
	Utilization   float64 `json:"utilization"`
	// ScaleIn reports the under-utilization trigger.
	ScaleIn ScaleInStatus `json:"scale_in"`
	// Faults reports instance deaths and fault heals.
	Faults FaultStatus `json:"faults"`
	// LastError is the latest replan/actuation failure, empty when none.
	LastError string `json:"last_error,omitempty"`
	// Plan is the fleet plan in force.
	Plan PlanStatus `json:"plan"`
	// Models carries the per-model control sections.
	Models map[string]ModelStatus `json:"models"`
	// Fleet counts connected, non-draining instances per model per type —
	// the controller's view of what the provider is running.
	Fleet map[string]map[string]int `json:"fleet"`
	// Ingress reports the external front-end endpoints.
	Ingress IngressStatus `json:"ingress"`
	// Controller is the serving-path accounting snapshot (including the
	// per-model ingress counters when a front-end is attached).
	Controller server.Stats `json:"controller"`
}

// zeroNaN maps NaN (empty-window percentile) to 0 for JSON.
func zeroNaN(v float64) float64 {
	if v != v {
		return 0
	}
	return v
}

// modelPlanStatus renders one model's allocation.
func (a *Autopilot) modelPlanStatus(cfg []int) ModelPlanStatus {
	counts := make(map[string]int, len(a.opts.Pool))
	cost := 0.0
	for i, t := range a.opts.Pool {
		if i < len(cfg) && cfg[i] > 0 {
			counts[t.Name] = cfg[i]
			cost += float64(cfg[i]) * t.PricePerHour
		}
	}
	return ModelPlanStatus{Config: cfg, Counts: counts, Cost: cost}
}

// planStatus assembles the /plan view; callers must not hold a.mu.
func (a *Autopilot) planStatus() PlanStatus {
	a.mu.Lock()
	plan := a.current.Clone()
	replans := a.replans
	lastChange := a.lastChange
	lastReason := a.lastReason
	a.mu.Unlock()
	out := PlanStatus{
		Models:     make(map[string]ModelPlanStatus, len(plan)),
		Replans:    replans,
		LastChange: lastChange,
		LastReason: lastReason,
	}
	for _, name := range a.names {
		cfg := plan[name]
		if cfg == nil {
			cfg = make([]int, len(a.opts.Pool))
		}
		mp := a.modelPlanStatus(cfg)
		out.Models[name] = mp
		out.Cost += mp.Cost
	}
	return out
}

// fleetCounts derives the running-fleet view from a controller snapshot:
// connected, non-draining instances per model per type.
func fleetCounts(cs server.Stats) map[string]map[string]int {
	out := make(map[string]map[string]int)
	for _, in := range cs.Instances {
		if in.Draining {
			continue
		}
		if out[in.Model] == nil {
			out[in.Model] = make(map[string]int)
		}
		out[in.Model][in.TypeName]++
	}
	return out
}

// Status snapshots the control plane.
func (a *Autopilot) Status() Status {
	plan := a.planStatus()
	ctrlStats := a.ctrl.Stats()

	modelViews := make(map[string]ModelStatus, len(a.names))
	for _, name := range a.names {
		st := a.states[name]
		a.latMu.Lock()
		win := WindowStatus{
			LatencySamples: st.latency.Len(),
			P50MS:          zeroNaN(st.latency.Percentile(50)),
			P95MS:          zeroNaN(st.latency.Percentile(95)),
			P99MS:          zeroNaN(st.latency.Percentile(99)),
		}
		a.latMu.Unlock()
		win.Observations = st.monitor.Count()
		win.MeanBatch = st.monitor.MeanBatch()

		a.mu.Lock()
		win.ThroughputQPS = st.recentQPS
		win.ArrivalQPS = st.arrivalQPS
		drift := st.lastDrift
		a.mu.Unlock()

		modelViews[name] = ModelStatus{
			Drift:        drift,
			SLOLatencyMS: st.sloMS,
			Plan:         plan.Models[name],
			Window:       win,
			IngressQueue: ctrlStats.Ingress[name].Queue,
		}
	}

	a.mu.Lock()
	qps := a.recentQPS
	util := a.recentUtilization
	if !a.ratesValid {
		util = 0
	}
	lowTicks := a.lowTicks
	lastErr := a.lastErr
	started := a.started
	a.mu.Unlock()

	ingressStatus := IngressStatus{}
	if a.ingress != nil {
		ingressStatus = IngressStatus{
			Enabled:  true,
			HTTPAddr: a.ingress.HTTPAddr(),
			TCPAddr:  a.ingress.TCPAddr(),
		}
	}
	lastFault, lastRecovery, faultDetail, lost, heals, faultPending := a.FaultState()
	noticed, drained, replanned, deadlineDeaths := a.PreemptState()
	a.mu.Lock()
	lastPreempt := a.lastPreempt
	lastPreemptDetail := a.lastPreemptDetail
	a.mu.Unlock()

	return Status{
		Healthy:        lastErr == "",
		UptimeSeconds:  time.Since(started).Seconds(),
		DriftThreshold: a.opts.DriftThreshold,
		SLOPercentile:  a.opts.SLOPercentile,
		ThroughputQPS:  qps,
		Utilization:    util,
		ScaleIn: ScaleInStatus{
			Enabled:     a.opts.ScaleInFloor > 0,
			Floor:       a.opts.ScaleInFloor,
			Hysteresis:  a.opts.ScaleInHysteresis,
			TicksBelow:  lowTicks,
			TicksNeeded: a.opts.ScaleInTicks,
		},
		Faults: FaultStatus{
			InstancesLost:            lost,
			Heals:                    heals,
			Pending:                  faultPending,
			LastFault:                lastFault,
			LastRecovery:             lastRecovery,
			LastDetail:               faultDetail,
			Preemptions:              noticed,
			PreemptionsDrained:       drained,
			PreemptionsReplanned:     replanned,
			PreemptionDeadlineDeaths: deadlineDeaths,
			LastPreempt:              lastPreempt,
			LastPreemptDetail:        lastPreemptDetail,
		},
		LastError:  lastErr,
		Plan:       plan,
		Models:     modelViews,
		Fleet:      fleetCounts(ctrlStats),
		Ingress:    ingressStatus,
		Controller: ctrlStats,
	}
}

// adminServer is the HTTP admin endpoint's lifecycle bundle.
type adminServer struct {
	srv *http.Server
	ln  net.Listener
}

func (s *adminServer) close() {
	s.srv.Close()
}

// AdminHandler returns the admin endpoint's routes:
//
//	/healthz   liveness (JSON)
//	/metrics   Prometheus text exposition (format 0.0.4)
//	/statusz   full Status (JSON; the view /metrics served before the
//	           Prometheus migration)
//	/plan      the fleet plan in force (JSON)
//	/tracez    flight-recorder trace rings (?model=NAME&n=COUNT)
//	/decisionz the bounded control-decision journal (JSON)
func (a *Autopilot) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		a.mu.Lock()
		lastErr := a.lastErr
		a.mu.Unlock()
		if lastErr != "" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeJSON(w, map[string]any{
			"ok":     lastErr == "",
			"error":  lastErr,
			"uptime": time.Since(a.startedAt()).Seconds(),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		a.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, a.Status())
	})
	mux.HandleFunc("/plan", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, a.planStatus())
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				w.WriteHeader(http.StatusBadRequest)
				writeJSON(w, map[string]string{"error": "tracez: n must be a positive integer"})
				return
			}
			n = v
		}
		reg := a.ctrl.Obs()
		names := reg.Models()
		if m := r.URL.Query().Get("model"); m != "" {
			if reg.Model(m) == nil {
				w.WriteHeader(http.StatusNotFound)
				writeJSON(w, map[string]string{"error": fmt.Sprintf("tracez: unknown model %q", m)})
				return
			}
			names = []string{m}
		}
		every, seed := reg.Sampling()
		out := TracezStatus{
			SampleEvery: every,
			SampleSeed:  seed,
			Models:      make(map[string][]obs.TraceRecord, len(names)),
		}
		for _, name := range names {
			out.Models[name] = reg.Model(name).Traces(n)
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/decisionz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, a.Decisions())
	})
	return mux
}

// TracezStatus is the /tracez view: each model's retained trace ring
// (newest first) plus the sampling configuration that produced it.
type TracezStatus struct {
	// SampleEvery is the trace sampling rate (~1/every; 0 disabled).
	SampleEvery uint64 `json:"sample_every"`
	// SampleSeed keys the deterministic sampler.
	SampleSeed uint64 `json:"sample_seed"`
	// Models maps each model to its retained traces, newest first.
	Models map[string][]obs.TraceRecord `json:"models"`
}

func (a *Autopilot) startedAt() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.started
}

// StartAdmin binds the admin endpoint on addr ("127.0.0.1:0" for an
// ephemeral port) and serves it in the background until Close. It returns
// the bound address.
func (a *Autopilot) StartAdmin(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{
		Handler: a.AdminHandler(),
		// Slowloris guard: a client trickling header bytes must not pin an
		// admin connection (and its goroutine) forever.
		ReadHeaderTimeout: 10 * time.Second,
	}
	a.adminMu.Lock()
	if a.adminClosed {
		a.adminMu.Unlock()
		ln.Close()
		return "", errors.New("autopilot: closed")
	}
	if a.admin != nil {
		a.adminMu.Unlock()
		ln.Close()
		return "", errors.New("autopilot: admin endpoint already running")
	}
	a.admin = &adminServer{srv: srv, ln: ln}
	a.adminMu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
