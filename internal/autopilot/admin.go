package autopilot

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"time"

	"kairos/internal/server"
)

// WindowStatus summarizes the live rolling window.
type WindowStatus struct {
	// Observations is the number of batch sizes currently held.
	Observations int `json:"observations"`
	// MeanBatch is the average batch size in the window.
	MeanBatch float64 `json:"mean_batch"`
	// LatencySamples is the number of latencies currently held.
	LatencySamples int `json:"latency_samples"`
	// P50MS/P95MS/P99MS are windowed latency percentiles in model ms
	// (0 while empty).
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// ThroughputQPS is the recent completion rate in model-time QPS.
	ThroughputQPS float64 `json:"throughput_qps"`
	// Utilization is the recent fleet-average busy fraction in [0,1].
	Utilization float64 `json:"utilization"`
}

// PlanStatus is the /plan view: the configuration in force and the replan
// history heads.
type PlanStatus struct {
	// Config is the per-type instance count vector over the pool.
	Config []int `json:"config"`
	// Counts keys the same plan by instance-type name.
	Counts map[string]int `json:"counts"`
	// Cost is the plan's $/hr over the pool.
	Cost float64 `json:"cost"`
	// Replans counts actuated reconfigurations.
	Replans int `json:"replans"`
	// LastChange is when the plan last changed (or was last confirmed).
	LastChange time.Time `json:"last_change,omitempty"`
	// LastReason explains the latest replan or confirmation.
	LastReason string `json:"last_reason,omitempty"`
}

// Status is the /metrics view: the whole control plane at a glance.
type Status struct {
	// Healthy is false after a failed replan or actuation.
	Healthy bool `json:"healthy"`
	// UptimeSeconds is wall-clock time since New.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Drift is the last measured total-variation distance.
	Drift float64 `json:"drift"`
	// DriftThreshold is the trigger level.
	DriftThreshold float64 `json:"drift_threshold"`
	// SLOPercentile / SLOLatencyMS state the latency objective.
	SLOPercentile float64 `json:"slo_percentile"`
	SLOLatencyMS  float64 `json:"slo_latency_ms"`
	// LastError is the latest replan/actuation failure, empty when none.
	LastError string `json:"last_error,omitempty"`
	// Plan is the configuration in force.
	Plan PlanStatus `json:"plan"`
	// Window is the live rolling-window summary.
	Window WindowStatus `json:"window"`
	// Fleet counts running instance servers per type.
	Fleet map[string]int `json:"fleet"`
	// Controller is the serving-path accounting snapshot.
	Controller server.Stats `json:"controller"`
}

// zeroNaN maps NaN (empty-window percentile) to 0 for JSON.
func zeroNaN(v float64) float64 {
	if v != v {
		return 0
	}
	return v
}

// planStatus assembles the /plan view; callers must not hold a.mu.
func (a *Autopilot) planStatus() PlanStatus {
	a.mu.Lock()
	cfg := a.current.Clone()
	replans := a.replans
	lastChange := a.lastChange
	lastReason := a.lastReason
	a.mu.Unlock()
	counts := make(map[string]int, len(a.opts.Pool))
	for i, t := range a.opts.Pool {
		if cfg[i] > 0 {
			counts[t.Name] = cfg[i]
		}
	}
	return PlanStatus{
		Config:     cfg,
		Counts:     counts,
		Cost:       a.opts.Pool.Cost(cfg),
		Replans:    replans,
		LastChange: lastChange,
		LastReason: lastReason,
	}
}

// Status snapshots the control plane.
func (a *Autopilot) Status() Status {
	plan := a.planStatus()

	a.latMu.Lock()
	win := WindowStatus{
		LatencySamples: a.latency.Len(),
		P50MS:          zeroNaN(a.latency.Percentile(50)),
		P95MS:          zeroNaN(a.latency.Percentile(95)),
		P99MS:          zeroNaN(a.latency.Percentile(99)),
	}
	a.latMu.Unlock()
	win.Observations = a.monitor.Count()
	win.MeanBatch = a.monitor.MeanBatch()

	a.mu.Lock()
	win.ThroughputQPS = a.recentQPS
	win.Utilization = a.recentUtilization
	drift := a.lastDrift
	lastErr := a.lastErr
	started := a.started
	a.mu.Unlock()

	return Status{
		Healthy:        lastErr == "",
		UptimeSeconds:  time.Since(started).Seconds(),
		Drift:          drift,
		DriftThreshold: a.opts.DriftThreshold,
		SLOPercentile:  a.opts.SLOPercentile,
		SLOLatencyMS:   a.opts.SLOLatencyMS,
		LastError:      lastErr,
		Plan:           plan,
		Window:         win,
		Fleet:          a.fleet.Counts(),
		Controller:     a.ctrl.Stats(),
	}
}

// adminServer is the HTTP admin endpoint's lifecycle bundle.
type adminServer struct {
	srv *http.Server
	ln  net.Listener
}

func (s *adminServer) close() {
	s.srv.Close()
}

// AdminHandler returns the admin endpoint's routes: /healthz (liveness),
// /metrics (full Status), and /plan (the configuration in force). All
// responses are JSON.
func (a *Autopilot) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		a.mu.Lock()
		lastErr := a.lastErr
		a.mu.Unlock()
		if lastErr != "" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeJSON(w, map[string]any{
			"ok":     lastErr == "",
			"error":  lastErr,
			"uptime": time.Since(a.startedAt()).Seconds(),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, a.Status())
	})
	mux.HandleFunc("/plan", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, a.planStatus())
	})
	return mux
}

func (a *Autopilot) startedAt() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.started
}

// StartAdmin binds the admin endpoint on addr ("127.0.0.1:0" for an
// ephemeral port) and serves it in the background until Close. It returns
// the bound address.
func (a *Autopilot) StartAdmin(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: a.AdminHandler()}
	a.adminMu.Lock()
	if a.adminClosed {
		a.adminMu.Unlock()
		ln.Close()
		return "", errors.New("autopilot: closed")
	}
	if a.admin != nil {
		a.adminMu.Unlock()
		ln.Close()
		return "", errors.New("autopilot: admin endpoint already running")
	}
	a.admin = &adminServer{srv: srv, ln: ln}
	a.adminMu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
