package autopilot

import (
	"testing"
	"time"

	"kairos/internal/cloud"
	"kairos/internal/workload"
)

// TestHealRelaunchesKilledInstance: an instance death must become a
// first-class control event — the fault is recorded, the provider's
// bookkeeping is reaped, and Heal relaunches exactly the lost capacity
// from the plan in force, without a trigger or a cooldown in the way.
func TestHealRelaunchesKilledInstance(t *testing.T) {
	t.Parallel()
	m := ncf()
	initial := cloud.Config{0, 0, 2, 0} // 2x CPU
	opts := Options{
		Plan: singlePlan(m, func([]int) (cloud.Config, error) {
			return initial.Clone(), nil
		}),
		Window:          60,
		MinObservations: 30,
		References:      map[string][]int{m.Name: samplesOf(workload.Uniform{Min: 10, Max: 60}, 200, 1)},
		Cooldown:        time.Hour, // a heal must not wait out a cooldown
	}
	ap := startAutopilot(t, initial, opts)
	ap.Controller().SetEmptyHold(10 * time.Second)
	fleet := ap.Provider().(*Fleet)

	// Kill one of the two CPU instances out from under the controller.
	addrs := fleet.Addrs()
	if len(addrs) != 2 {
		t.Fatalf("fleet = %v", addrs)
	}
	if err := fleet.Kill(addrs[0]); err != nil {
		t.Fatal(err)
	}

	// The eviction must reach the fault bookkeeping.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, _, lost, _, _ := ap.FaultState()
		if lost == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("instance death never recorded as a fault")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Drive the heal deterministically (the loop is not started).
	deadline = time.Now().Add(5 * time.Second)
	for {
		healed, err := ap.Heal()
		if err == nil && healed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("heal never ran (err=%v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The fleet is back to plan: two live CPU instances, and the provider
	// tracks exactly the live ones (the corpse was reaped).
	if got := ap.Controller().ModelInstanceCounts(m.Name)[cloud.R5nLarge.Name]; got != 2 {
		t.Fatalf("healed fleet has %d CPU instances, want 2", got)
	}
	if n := fleet.Size(); n != 2 {
		t.Fatalf("provider tracks %d servers, want 2", n)
	}
	lastFault, lastRecovery, detail, lost, heals, pending := ap.FaultState()
	if lastFault.IsZero() || lastRecovery.IsZero() || lastRecovery.Before(lastFault) {
		t.Fatalf("fault %v, recovery %v", lastFault, lastRecovery)
	}
	if lost != 1 || heals != 1 || pending || detail == "" {
		t.Fatalf("fault state: lost=%d heals=%d pending=%v detail=%q", lost, heals, pending, detail)
	}

	// A second heal with nothing pending is a no-op.
	if healed, err := ap.Heal(); err != nil || healed {
		t.Fatalf("idle heal = (%v, %v)", healed, err)
	}

	// The healed fleet serves.
	if res := ap.Controller().SubmitWait(m.Name, 100); res.Err != nil {
		t.Fatal(res.Err)
	}
	st := ap.Status()
	if st.Faults.InstancesLost != 1 || st.Faults.Heals != 1 || st.Faults.Pending {
		t.Fatalf("admin fault status = %+v", st.Faults)
	}
}

// TestHealSurvivesTotalModelLoss: killing every instance of a model with
// an empty-hold window must not drop in-flight queries — they park until
// the heal relaunches capacity.
func TestHealSurvivesTotalModelLoss(t *testing.T) {
	t.Parallel()
	m := ncf()
	initial := cloud.Config{0, 0, 1, 0} // a single CPU
	opts := Options{
		Plan: singlePlan(m, func([]int) (cloud.Config, error) {
			return initial.Clone(), nil
		}),
		Window:          60,
		MinObservations: 30,
		References:      map[string][]int{m.Name: samplesOf(workload.Uniform{Min: 10, Max: 60}, 200, 1)},
	}
	ap := startAutopilot(t, initial, opts)
	ap.Controller().SetEmptyHold(30 * time.Second)
	fleet := ap.Provider().(*Fleet)

	addrs := fleet.Addrs()
	if len(addrs) != 1 {
		t.Fatalf("fleet = %v", addrs)
	}

	// Submit, then kill the only instance. The query either completed
	// already or is redispatched after the heal; either way it must not
	// fail.
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			done <- ap.Controller().SubmitWait(m.Name, 400).Err
		}()
	}
	time.Sleep(5 * time.Millisecond)
	if err := fleet.Kill(addrs[0]); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if healed, _ := ap.Heal(); healed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heal never answered the fault")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 8; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("query dropped across total capacity loss: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("query hung across the heal")
		}
	}
	if got := ap.Controller().ModelInstanceCounts(m.Name)[cloud.R5nLarge.Name]; got != 1 {
		t.Fatalf("healed fleet has %d CPU instances, want 1", got)
	}
}
