package autopilot

import (
	"fmt"
	"sync"
	"time"

	"kairos/internal/models"
	"kairos/internal/server"
)

// Fleet is the in-process actuation Provider: it launches and stops
// instance servers on loopback TCP inside the controlling process. Every
// server emulates one instance type hosting one of the fleet's
// registered models at the fleet's time scale (see server.InstanceServer)
// — the zero-setup provider tests, examples, and single-binary runs use.
type Fleet struct {
	timeScale float64
	models    map[string]models.Model
	notices   chan Preemption

	mu      sync.Mutex
	servers map[string]*fleetServer // keyed by listen address
}

var (
	_ Provider  = (*Fleet)(nil)
	_ Reaper    = (*Fleet)(nil)
	_ Noticer   = (*Fleet)(nil)
	_ Preempter = (*Fleet)(nil)
)

type fleetServer struct {
	model    string
	typeName string
	srv      *server.InstanceServer
}

// NewFleet prepares an empty in-process fleet serving the given models at
// one time scale. Like the server layer, a non-positive timeScale means
// real time.
func NewFleet(timeScale float64, ms ...models.Model) *Fleet {
	if timeScale <= 0 {
		timeScale = 1
	}
	byName := make(map[string]models.Model, len(ms))
	for _, m := range ms {
		byName[m.Name] = m
	}
	return &Fleet{
		timeScale: timeScale,
		models:    byName,
		notices:   make(chan Preemption, 64),
		servers:   map[string]*fleetServer{},
	}
}

// Notices implements Noticer: the channel Preempt announces revocations
// on.
func (f *Fleet) Notices() <-chan Preemption { return f.notices }

// Preempt implements Preempter, emulating the cloud reclaiming spot
// capacity: the notice lands on Notices immediately and the server at
// addr is killed as abruptly as a SIGKILL once the window elapses —
// unless an orderly Stop (a completed drain) removed it first.
func (f *Fleet) Preempt(addr string, notice time.Duration) (time.Time, error) {
	f.mu.Lock()
	_, ok := f.servers[addr]
	f.mu.Unlock()
	if !ok {
		return time.Time{}, fmt.Errorf("autopilot: no fleet server at %s", addr)
	}
	deadline := time.Now().Add(notice)
	select {
	case f.notices <- Preemption{Addr: addr, Deadline: deadline}:
	default:
		// A stalled consumer loses the notice but never the revocation:
		// the deadline kill below still fires and surfaces as a plain
		// instance death.
	}
	time.AfterFunc(notice, func() {
		f.mu.Lock()
		fs, ok := f.servers[addr]
		f.mu.Unlock()
		if ok {
			fs.srv.Kill()
		}
	})
	return deadline, nil
}

// TimeScale returns the fleet's time dilation factor.
func (f *Fleet) TimeScale() float64 { return f.timeScale }

// Models lists the registered model names in unspecified order.
func (f *Fleet) Models() []string {
	out := make([]string, 0, len(f.models))
	for name := range f.models {
		out = append(out, name)
	}
	return out
}

// Launch starts one instance server of the given type hosting the named
// model on an ephemeral loopback port and returns its address.
func (f *Fleet) Launch(model, typeName string) (string, error) {
	m, ok := f.models[model]
	if !ok {
		return "", fmt.Errorf("autopilot: fleet does not serve model %q", model)
	}
	srv, err := server.NewInstanceServer(typeName, m, f.timeScale)
	if err != nil {
		return "", err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return "", err
	}
	addr := srv.Addr()
	f.mu.Lock()
	f.servers[addr] = &fleetServer{model: model, typeName: typeName, srv: srv}
	f.mu.Unlock()
	return addr, nil
}

// Stop shuts down the server at addr and forgets it.
func (f *Fleet) Stop(addr string) error {
	f.mu.Lock()
	fs, ok := f.servers[addr]
	delete(f.servers, addr)
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("autopilot: no fleet server at %s", addr)
	}
	return fs.srv.Close()
}

// Kill abruptly closes the server at addr without forgetting it — the
// in-process analogue of SIGKILLing a kairosd: controller connections
// drop, the eviction path fires, and the fault-heal reap (Reap) later
// clears the bookkeeping.
func (f *Fleet) Kill(addr string) error {
	f.mu.Lock()
	fs, ok := f.servers[addr]
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("autopilot: no fleet server at %s", addr)
	}
	return fs.srv.Kill()
}

// Reap forgets a server that died on its own (implements Reaper).
// Unknown addresses are fine — the fault may already have been reaped.
func (f *Fleet) Reap(addr string) error {
	f.mu.Lock()
	fs, ok := f.servers[addr]
	delete(f.servers, addr)
	f.mu.Unlock()
	if ok {
		fs.srv.Kill()
	}
	return nil
}

// Addrs lists the running servers' addresses in unspecified order.
func (f *Fleet) Addrs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.servers))
	for addr := range f.servers {
		out = append(out, addr)
	}
	return out
}

// Counts returns the number of running servers per model per instance
// type.
func (f *Fleet) Counts() map[string]map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]map[string]int)
	for _, fs := range f.servers {
		if out[fs.model] == nil {
			out[fs.model] = make(map[string]int)
		}
		out[fs.model][fs.typeName]++
	}
	return out
}

// CountsFor returns the number of running servers per instance type
// hosting one model.
func (f *Fleet) CountsFor(model string) map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int)
	for _, fs := range f.servers {
		if fs.model == model {
			out[fs.typeName]++
		}
	}
	return out
}

// Size returns the number of running servers.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.servers)
}

// Close stops every running server.
func (f *Fleet) Close() error {
	f.mu.Lock()
	servers := f.servers
	f.servers = map[string]*fleetServer{}
	f.mu.Unlock()
	var first error
	for _, fs := range servers {
		if err := fs.srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
