package autopilot

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"kairos/internal/server"
)

// Defaults for ExecFleet's lifecycle timeouts.
const (
	// DefaultLaunchTimeout bounds waiting for a spawned kairosd's ready
	// line and Hello banner.
	DefaultLaunchTimeout = 10 * time.Second
	// DefaultStopTimeout bounds a SIGTERM'd kairosd's graceful drain
	// before it is killed.
	DefaultStopTimeout = 10 * time.Second
)

// ExecFleet is the exec actuation Provider: it spawns real kairosd
// processes (cmd/kairosd) on the local host, one per instance. Launch
// starts `kairosd -addr 127.0.0.1:0`, waits for the daemon's ready line
// to learn the bound port, health-checks the Hello banner (the announced
// model and type must match what was asked for), and only then hands the
// address to the actuator. Stop sends SIGTERM — kairosd drains in-flight
// queries before exiting — and reaps the process, escalating to SIGKILL
// after StopTimeout.
//
// It is the stepping stone from the in-process Fleet toward SSH/cloud
// provisioning: the control plane already manages real processes over
// real sockets; only "local exec" stands in for "remote host".
type ExecFleet struct {
	bin       string
	timeScale float64
	models    map[string]bool // empty allows any model kairosd can resolve

	// LaunchTimeout and StopTimeout override the defaults when positive.
	// Set them before the first Launch.
	LaunchTimeout time.Duration
	StopTimeout   time.Duration
	// Logf, when set, receives one line per process lifecycle event.
	Logf func(format string, args ...any)

	notices chan Preemption

	mu    sync.Mutex
	procs map[string]*execProc // keyed by listen address
}

var (
	_ Provider  = (*ExecFleet)(nil)
	_ Reaper    = (*ExecFleet)(nil)
	_ Noticer   = (*ExecFleet)(nil)
	_ Preempter = (*ExecFleet)(nil)
)

type execProc struct {
	model    string
	typeName string
	cmd      *exec.Cmd
	// waited delivers cmd.Wait exactly once (buffered; the reaper
	// goroutine never blocks).
	waited chan error
	stderr *bytes.Buffer
}

// NewExecFleet prepares an exec provider spawning bin (a kairosd binary)
// at the given time scale. When models are listed, Launch rejects any
// other model up front; otherwise kairosd's own model registry decides.
func NewExecFleet(bin string, timeScale float64, models ...string) *ExecFleet {
	if timeScale <= 0 {
		timeScale = 1
	}
	byName := make(map[string]bool, len(models))
	for _, m := range models {
		byName[m] = true
	}
	return &ExecFleet{
		bin:       bin,
		timeScale: timeScale,
		models:    byName,
		notices:   make(chan Preemption, 64),
		procs:     map[string]*execProc{},
	}
}

// Notices implements Noticer: the channel Preempt announces revocations
// on.
func (f *ExecFleet) Notices() <-chan Preemption { return f.notices }

// Preempt implements Preempter, emulating the cloud reclaiming spot
// capacity: the notice lands on Notices immediately and the kairosd at
// addr is SIGKILLed once the window elapses — unless an orderly Stop (a
// completed drain) reaped it first.
func (f *ExecFleet) Preempt(addr string, notice time.Duration) (time.Time, error) {
	f.mu.Lock()
	_, ok := f.procs[addr]
	f.mu.Unlock()
	if !ok {
		return time.Time{}, fmt.Errorf("autopilot: no exec instance at %s", addr)
	}
	deadline := time.Now().Add(notice)
	select {
	case f.notices <- Preemption{Addr: addr, Deadline: deadline}:
	default:
		// A stalled consumer loses the notice but never the revocation:
		// the deadline kill below still fires and surfaces as a plain
		// instance death.
	}
	time.AfterFunc(notice, func() {
		f.mu.Lock()
		p := f.procs[addr]
		f.mu.Unlock()
		if p != nil {
			f.logf("autopilot: exec preemption deadline killing %s/%s pid %d at %s", p.model, p.typeName, p.cmd.Process.Pid, addr)
			p.cmd.Process.Kill()
		}
	})
	return deadline, nil
}

// TimeScale returns the fleet's time dilation factor.
func (f *ExecFleet) TimeScale() float64 { return f.timeScale }

func (f *ExecFleet) launchTimeout() time.Duration {
	if f.LaunchTimeout > 0 {
		return f.LaunchTimeout
	}
	return DefaultLaunchTimeout
}

func (f *ExecFleet) stopTimeout() time.Duration {
	if f.StopTimeout > 0 {
		return f.StopTimeout
	}
	return DefaultStopTimeout
}

func (f *ExecFleet) logf(format string, args ...any) {
	if f.Logf != nil {
		f.Logf(format, args...)
	}
}

// parseReadyLine extracts the listen address from kairosd's ready line,
// e.g. "kairosd: g4dn.xlarge serving NCF on 127.0.0.1:41837 (timescale
// 1.00)". The line format is a contract between cmd/kairosd and this
// provider.
func parseReadyLine(line string) (string, bool) {
	if !strings.HasPrefix(line, "kairosd: ") {
		return "", false
	}
	fields := strings.Fields(line)
	for i := 0; i+1 < len(fields); i++ {
		if fields[i] == "on" {
			return fields[i+1], true
		}
	}
	return "", false
}

// probeHello health-checks a freshly-launched instance: dial, read the
// Hello banner, verify the announced model and type. The probe connection
// is closed without an ack; the instance treats it like any disconnected
// legacy peer.
func probeHello(addr, model, typeName string, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return fmt.Errorf("dialing %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(timeout))
	var hello server.Hello
	if err := server.ReadFrame(conn, &hello); err != nil {
		return fmt.Errorf("reading Hello banner from %s: %w", addr, err)
	}
	if hello.Model != model || hello.TypeName != typeName {
		return fmt.Errorf("instance at %s announces %s/%s, want %s/%s",
			addr, hello.TypeName, hello.Model, typeName, model)
	}
	return nil
}

// Launch spawns one kairosd serving the named model as the given type on
// an ephemeral loopback port and returns the bound address once the
// process passes its banner health check.
func (f *ExecFleet) Launch(model, typeName string) (string, error) {
	if len(f.models) > 0 && !f.models[model] {
		return "", fmt.Errorf("autopilot: exec fleet does not serve model %q", model)
	}
	cmd := exec.Command(f.bin,
		"-addr", "127.0.0.1:0",
		"-type", typeName,
		"-model", model,
		"-timescale", strconv.FormatFloat(f.timeScale, 'g', -1, 64),
	)
	// Own process group (unix): a terminal Ctrl-C must reach only the
	// control plane, which then shuts the fleet down in the documented
	// order (ingress first, controller drain, per-instance SIGTERM) — not
	// broadside-SIGINT every kairosd out from under in-flight queries.
	detachProcessGroup(cmd)
	stderr := &bytes.Buffer{}
	cmd.Stderr = stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", err
	}
	if err := cmd.Start(); err != nil {
		return "", fmt.Errorf("autopilot: starting %s: %w", f.bin, err)
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()

	addrCh := make(chan string, 1)
	eofCh := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if addr, ok := parseReadyLine(sc.Text()); ok {
				addrCh <- addr
				// Keep draining stdout so the daemon never blocks on a
				// full pipe.
				io.Copy(io.Discard, stdout)
				return
			}
		}
		close(eofCh)
	}()

	// fail reaps the process before reading stderr (the exec package's
	// capture goroutine finishes at Wait).
	fail := func(cause error) (string, error) {
		cmd.Process.Kill()
		<-waited
		if msg := strings.TrimSpace(stderr.String()); msg != "" {
			return "", fmt.Errorf("autopilot: exec %s/%s: %w (stderr: %s)", model, typeName, cause, msg)
		}
		return "", fmt.Errorf("autopilot: exec %s/%s: %w", model, typeName, cause)
	}
	var addr string
	select {
	case addr = <-addrCh:
	case <-eofCh:
		// Stdout closed without a ready line: usually the process died,
		// but a wrapper that redirects stdout and keeps running must not
		// hang the actuation — fail() kills (harmless if already dead)
		// and reaps either way.
		return fail(fmt.Errorf("stdout closed before the ready line"))
	case <-time.After(f.launchTimeout()):
		return fail(fmt.Errorf("no ready line within %v", f.launchTimeout()))
	}
	if err := probeHello(addr, model, typeName, f.launchTimeout()); err != nil {
		return fail(err)
	}
	f.mu.Lock()
	f.procs[addr] = &execProc{model: model, typeName: typeName, cmd: cmd, waited: waited, stderr: stderr}
	f.mu.Unlock()
	f.logf("autopilot: exec launched %s/%s pid %d at %s", model, typeName, cmd.Process.Pid, addr)
	return addr, nil
}

// Stop gracefully stops the kairosd at addr: SIGTERM, wait for the
// daemon's drain-and-exit, SIGKILL after StopTimeout.
func (f *ExecFleet) Stop(addr string) error {
	f.mu.Lock()
	p := f.procs[addr]
	delete(f.procs, addr)
	f.mu.Unlock()
	if p == nil {
		return fmt.Errorf("autopilot: no exec instance at %s", addr)
	}
	return f.stop(addr, p)
}

func (f *ExecFleet) stop(addr string, p *execProc) error {
	terminateProcess(p.cmd.Process) // a dead process just fails the signal; Wait below settles it
	select {
	case err := <-p.waited:
		if err != nil {
			return fmt.Errorf("autopilot: kairosd %s/%s at %s exited uncleanly: %w", p.model, p.typeName, addr, err)
		}
		f.logf("autopilot: exec stopped %s/%s at %s", p.model, p.typeName, addr)
		return nil
	case <-time.After(f.stopTimeout()):
		p.cmd.Process.Kill()
		<-p.waited
		return fmt.Errorf("autopilot: kairosd %s/%s at %s ignored SIGTERM for %v; killed", p.model, p.typeName, addr, f.stopTimeout())
	}
}

// Reap releases a kairosd that died on its own (implements Reaper): the
// process is killed if anything is somehow still running, the zombie is
// waited on, and the bookkeeping entry is dropped. Unknown addresses are
// fine — the fault may already have been reaped.
func (f *ExecFleet) Reap(addr string) error {
	f.mu.Lock()
	p := f.procs[addr]
	delete(f.procs, addr)
	f.mu.Unlock()
	if p == nil {
		return nil
	}
	p.cmd.Process.Kill() // harmless when already dead
	<-p.waited
	f.logf("autopilot: exec reaped %s/%s at %s", p.model, p.typeName, addr)
	return nil
}

// Pid returns the OS process ID of the kairosd at addr, or 0 when the
// address is unknown.
func (f *ExecFleet) Pid(addr string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p := f.procs[addr]; p != nil {
		return p.cmd.Process.Pid
	}
	return 0
}

// Kill SIGKILLs the kairosd at addr without reaping it — the crash fault.
// The controller discovers the death through its connection; the reap
// happens when the fault-heal path calls Reap for the dead address.
func (f *ExecFleet) Kill(addr string) error {
	f.mu.Lock()
	p := f.procs[addr]
	f.mu.Unlock()
	if p == nil {
		return fmt.Errorf("autopilot: no exec instance at %s", addr)
	}
	f.logf("autopilot: exec killing %s/%s pid %d at %s", p.model, p.typeName, p.cmd.Process.Pid, addr)
	return p.cmd.Process.Kill()
}

// Wedge SIGSTOPs the kairosd at addr — the stalled-instance fault: the
// process keeps its sockets open but stops replying. Resume un-wedges it.
func (f *ExecFleet) Wedge(addr string) error {
	f.mu.Lock()
	p := f.procs[addr]
	f.mu.Unlock()
	if p == nil {
		return fmt.Errorf("autopilot: no exec instance at %s", addr)
	}
	f.logf("autopilot: exec wedging %s/%s pid %d at %s", p.model, p.typeName, p.cmd.Process.Pid, addr)
	return suspendProcess(p.cmd.Process)
}

// Resume SIGCONTs a wedged kairosd at addr.
func (f *ExecFleet) Resume(addr string) error {
	f.mu.Lock()
	p := f.procs[addr]
	f.mu.Unlock()
	if p == nil {
		return fmt.Errorf("autopilot: no exec instance at %s", addr)
	}
	f.logf("autopilot: exec resuming %s/%s pid %d at %s", p.model, p.typeName, p.cmd.Process.Pid, addr)
	return resumeProcess(p.cmd.Process)
}

// Addrs lists the running processes' addresses in unspecified order.
func (f *ExecFleet) Addrs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.procs))
	for addr := range f.procs {
		out = append(out, addr)
	}
	return out
}

// Size returns the number of running processes.
func (f *ExecFleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.procs)
}

// Close stops every running process. The stops are independent, so they
// run concurrently: a fleet of wedged daemons costs one StopTimeout, not
// one per process.
func (f *ExecFleet) Close() error {
	f.mu.Lock()
	procs := f.procs
	f.procs = map[string]*execProc{}
	f.mu.Unlock()
	errs := make(chan error, len(procs))
	for addr, p := range procs {
		go func(addr string, p *execProc) { errs <- f.stop(addr, p) }(addr, p)
	}
	var first error
	for range procs {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
