package autopilot

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"kairos/internal/obs"
)

// PromContentType is the Prometheus text exposition format version the
// admin /metrics endpoint serves.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promWriter accumulates one exposition in deterministic family order.
type promWriter struct {
	w   *bufio.Writer
	err error
}

func (p *promWriter) family(name, help, typ string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) sample(name, labels string, v float64) {
	if p.err != nil {
		return
	}
	if labels != "" {
		_, p.err = fmt.Fprintf(p.w, "%s{%s} %g\n", name, labels, v)
	} else {
		_, p.err = fmt.Fprintf(p.w, "%s %g\n", name, v)
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// WritePrometheus writes the whole control plane as one Prometheus text
// exposition (format 0.0.4): control-loop health, the fleet plan in
// force, serving-path counters, ingress admission state, fault/heal
// accounting, and the flight recorder's per-stage and per-instance-type
// latency histograms. Families and label sets come out in deterministic
// order so scrapes diff cleanly.
func (a *Autopilot) WritePrometheus(w io.Writer) error {
	st := a.Status()
	p := &promWriter{w: bufio.NewWriter(w)}

	p.family("kairos_up", "Control plane health (0 after a failed replan or actuation).", "gauge")
	p.sample("kairos_up", "", boolGauge(st.Healthy))
	p.family("kairos_uptime_seconds", "Wall-clock seconds since the autopilot started.", "gauge")
	p.sample("kairos_uptime_seconds", "", st.UptimeSeconds)
	p.family("kairos_throughput_qps", "Recent fleet-wide completion rate in model-time QPS.", "gauge")
	p.sample("kairos_throughput_qps", "", st.ThroughputQPS)
	p.family("kairos_utilization_ratio", "Recent fleet-average busy fraction in [0,1].", "gauge")
	p.sample("kairos_utilization_ratio", "", st.Utilization)

	p.family("kairos_plan_cost_dollars_per_hour", "Hourly cost of the fleet plan in force.", "gauge")
	p.sample("kairos_plan_cost_dollars_per_hour", "", st.Plan.Cost)
	p.family("kairos_replans_total", "Actuated fleet reconfigurations.", "counter")
	p.sample("kairos_replans_total", "", float64(st.Plan.Replans))
	p.family("kairos_plan_duration_seconds", "Fleet replan compute time (the planner call, not actuation).", "histogram")
	if p.err == nil {
		snap := a.planHist.Snapshot()
		snap.WriteProm(p.w, "kairos_plan_duration_seconds", "")
	}

	p.family("kairos_instances_lost_total", "Instance deaths observed outside orderly removals.", "counter")
	p.sample("kairos_instances_lost_total", "", float64(st.Faults.InstancesLost))
	p.family("kairos_heals_total", "Completed fault-heal actuations.", "counter")
	p.sample("kairos_heals_total", "", float64(st.Faults.Heals))
	p.family("kairos_fault_pending", "1 while an instance-death fault awaits its heal.", "gauge")
	p.sample("kairos_fault_pending", "", boolGauge(st.Faults.Pending))

	p.family("kairos_preemptions_total", "Spot revocation notices received.", "counter")
	p.sample("kairos_preemptions_total", "", float64(st.Faults.Preemptions))
	p.family("kairos_preemptions_drained_total", "Preempted instances drained ahead of their revocation deadline.", "counter")
	p.sample("kairos_preemptions_drained_total", "", float64(st.Faults.PreemptionsDrained))
	p.family("kairos_preemptions_replanned_total", "Preemption notices answered by a completed replan.", "counter")
	p.sample("kairos_preemptions_replanned_total", "", float64(st.Faults.PreemptionsReplanned))
	p.family("kairos_preemption_deadline_deaths_total", "Preempted instances that died mid-drain (eviction fallback).", "counter")
	p.sample("kairos_preemption_deadline_deaths_total", "", float64(st.Faults.PreemptionDeadlineDeaths))
	p.family("kairos_preemption_drain_seconds", "Notice-to-drained latency of answered preemptions.", "histogram")
	if p.err == nil {
		snap := a.preemptHist.Snapshot()
		snap.WriteProm(p.w, "kairos_preemption_drain_seconds", "")
	}

	p.family("kairos_queries_submitted_total", "Queries accepted by the controller.", "counter")
	p.sample("kairos_queries_submitted_total", "", float64(st.Controller.Submitted))
	p.family("kairos_queries_completed_total", "Queries delivered without error.", "counter")
	p.sample("kairos_queries_completed_total", "", float64(st.Controller.Completed))
	p.family("kairos_queries_failed_total", "Queries delivered with an error.", "counter")
	p.sample("kairos_queries_failed_total", "", float64(st.Controller.Failed))
	p.family("kairos_queue_depth", "Central scheduler queue depth per model.", "gauge")
	for _, name := range a.names {
		p.sample("kairos_queue_depth", fmt.Sprintf("model=%q", escapeLabel(name)), float64(st.Controller.Models[name].Waiting))
	}

	p.family("kairos_model_drift", "Last measured total-variation distance from the armed reference.", "gauge")
	for _, name := range a.names {
		p.sample("kairos_model_drift", fmt.Sprintf("model=%q", escapeLabel(name)), st.Models[name].Drift)
	}
	p.family("kairos_model_tail_latency_seconds", "Windowed SLO-percentile latency per model (model time).", "gauge")
	for _, name := range a.names {
		p.sample("kairos_model_tail_latency_seconds", fmt.Sprintf("model=%q", escapeLabel(name)), st.Models[name].Window.P99MS/1000)
	}
	p.family("kairos_model_throughput_qps", "Recent per-model completion rate in model-time QPS.", "gauge")
	for _, name := range a.names {
		p.sample("kairos_model_throughput_qps", fmt.Sprintf("model=%q", escapeLabel(name)), st.Models[name].Window.ThroughputQPS)
	}
	p.family("kairos_model_arrival_qps", "Smoothed observed per-model arrival rate in model-time QPS.", "gauge")
	for _, name := range a.names {
		p.sample("kairos_model_arrival_qps", fmt.Sprintf("model=%q", escapeLabel(name)), st.Models[name].Window.ArrivalQPS)
	}

	if len(st.Controller.Ingress) > 0 {
		p.family("kairos_ingress_queue_depth", "Admitted-but-unfinished ingress queries per model.", "gauge")
		for _, name := range a.names {
			p.sample("kairos_ingress_queue_depth", fmt.Sprintf("model=%q", escapeLabel(name)), float64(st.Controller.Ingress[name].Queue))
		}
		p.family("kairos_ingress_submitted_total", "Queries the front-end admitted into the controller.", "counter")
		for _, name := range a.names {
			p.sample("kairos_ingress_submitted_total", fmt.Sprintf("model=%q", escapeLabel(name)), float64(st.Controller.Ingress[name].Submitted))
		}
		p.family("kairos_ingress_rejected_total", "Queries pushed back by the bounded admission queue.", "counter")
		for _, name := range a.names {
			p.sample("kairos_ingress_rejected_total", fmt.Sprintf("model=%q", escapeLabel(name)), float64(st.Controller.Ingress[name].Rejected))
		}
	}

	p.family("kairos_fleet_instances", "Connected, non-draining instances per model per type.", "gauge")
	for _, name := range a.names {
		types := make([]string, 0, len(st.Fleet[name]))
		for t := range st.Fleet[name] {
			types = append(types, t)
		}
		sort.Strings(types)
		for _, t := range types {
			labels := fmt.Sprintf("model=%q,type=%q", escapeLabel(name), escapeLabel(t))
			p.sample("kairos_fleet_instances", labels, float64(st.Fleet[name][t]))
		}
	}

	// Flight-recorder histograms: per-stage wall-time latency and the
	// per-instance-type serve-time breakdown, straight off the atomic
	// counters (no locks taken on the serving path).
	reg := a.ctrl.Obs()
	p.family("kairos_stage_latency_seconds", "Per-stage wall-clock latency of served queries.", "histogram")
	for _, name := range reg.Models() {
		mo := reg.Model(name)
		for _, stage := range obs.Stages() {
			snap := mo.StageSnapshot(stage)
			labels := fmt.Sprintf("model=%q,stage=%q", escapeLabel(name), escapeLabel(stage.String()))
			if p.err == nil {
				snap.WriteProm(p.w, "kairos_stage_latency_seconds", labels)
			}
		}
	}
	p.family("kairos_instance_serve_seconds", "Serve-time distribution per model per instance type.", "histogram")
	for _, name := range reg.Models() {
		for _, se := range reg.Model(name).ServeByType() {
			labels := fmt.Sprintf("model=%q,instance_type=%q", escapeLabel(name), escapeLabel(se.Type))
			if p.err == nil {
				se.Snap.WriteProm(p.w, "kairos_instance_serve_seconds", labels)
			}
		}
	}

	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}
