package autopilot

import (
	"sync"
	"time"

	"kairos/internal/core"
)

// defaultJournalSize bounds the in-memory decision journal. At the
// default one-second control interval it holds the last ~8 minutes of
// decisions, and replans/heals (the entries an incident review needs)
// are far rarer than steady ticks.
const defaultJournalSize = 512

// DecisionModelView is one model's trigger reading inside a journal
// entry — the window snapshot the decision was made from.
type DecisionModelView struct {
	// Checked is false while the model's live window was too cold.
	Checked bool `json:"checked"`
	// Drift is the total-variation distance from the armed reference.
	Drift float64 `json:"drift"`
	// TailMS is the windowed SLO-percentile latency in model ms.
	TailMS float64 `json:"tail_ms"`
	// ArrivalQPS is the smoothed demand estimate handed to the planner.
	ArrivalQPS float64 `json:"arrival_qps"`
	// DriftTriggered / SLOTriggered report the model's fired triggers.
	DriftTriggered bool `json:"drift_triggered,omitempty"`
	SLOTriggered   bool `json:"slo_triggered,omitempty"`
}

// DecisionEvent is one entry in the autopilot's bounded decision
// journal: a trigger→replan→actuate cycle (or the decision not to run
// one), with enough context to reconstruct why the control plane moved.
// The journal is the /decisionz view and rides next to BENCH_soak.json
// in soak runs.
type DecisionEvent struct {
	// Seq is the entry's monotone sequence number (1-based); gaps mean
	// the bounded journal rotated older entries out.
	Seq int64 `json:"seq"`
	// At is when the decision completed.
	At time.Time `json:"at"`
	// Kind classifies the cycle: "replan" (a fresh plan was actuated),
	// "plan-unchanged" (a trigger fired but planning reproduced the
	// current fleet), "held" (a trigger fired inside the cooldown),
	// "steady" (no trigger), "cold" (windows too cold to evaluate),
	// "heal" (a fault-recovery actuation), "preempt" (a spot revocation
	// notice was answered: drain-ahead-of-death plus the replan filling
	// the hole; see PreemptDrainMS/PreemptReplanMS), or "error" (the
	// cycle failed; see Err).
	Kind string `json:"kind"`
	// Triggers names the fired triggers ("drift", "slo", "scale-in",
	// joined with +); empty when none fired.
	Triggers string `json:"triggers,omitempty"`
	// Reason is the human-readable decision summary (mirrors the log).
	Reason string `json:"reason,omitempty"`
	// Utilization is the fleet-wide busy fraction read this cycle.
	Utilization float64 `json:"utilization"`
	// PlanBudget is the shrunk budget handed to the planner by a pure
	// scale-in (0 = the full configured budget).
	PlanBudget float64 `json:"plan_budget,omitempty"`
	// Models carries the per-model window snapshot behind the decision.
	Models map[string]DecisionModelView `json:"models,omitempty"`
	// From and To are the fleet allocations before and after, keyed by
	// model then instance type; To is set only when the plan changed
	// (replans and heals).
	From map[string]ModelPlanStatus `json:"from,omitempty"`
	To   map[string]ModelPlanStatus `json:"to,omitempty"`
	// PlanMS is the wall-clock cost of computing the fleet plan this
	// cycle (0 when the cycle never reached the planner). Always
	// serialized so journal consumers can rely on the field.
	PlanMS float64 `json:"plan_ms"`
	// ActuationMS is the wall-clock cost of reconciling the fleet
	// (replans and heals only).
	ActuationMS float64 `json:"actuation_ms,omitempty"`
	// PreemptDrainMS and PreemptReplanMS time a "preempt" entry's two
	// deadlines: notice-to-drained (the doomed instance is empty and
	// disconnected) and notice-to-replanned (the fleet is reconciled
	// around the hole). Both race the revocation deadline.
	PreemptDrainMS  float64 `json:"preempt_drain_ms,omitempty"`
	PreemptReplanMS float64 `json:"preempt_replan_ms,omitempty"`
	// Err is the failure behind an "error" kind, empty otherwise.
	Err string `json:"err,omitempty"`
}

// journal is a bounded ring of decision events. Writes happen at
// control-loop frequency (roughly one per second), so a plain mutex is
// fine — this is nowhere near the serving hot path.
type journal struct {
	mu   sync.Mutex
	seq  int64
	buf  []DecisionEvent
	next int  // slot the next event lands in
	full bool // the ring has wrapped at least once
}

func newJournal(n int) *journal {
	if n <= 0 {
		n = defaultJournalSize
	}
	return &journal{buf: make([]DecisionEvent, n)}
}

// add stamps the event's sequence number and appends it, rotating the
// oldest entry out once the ring is full.
func (j *journal) add(ev DecisionEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	ev.Seq = j.seq
	j.buf[j.next] = ev
	j.next++
	if j.next == len(j.buf) {
		j.next = 0
		j.full = true
	}
}

// events returns up to max retained entries in chronological order
// (oldest first); max <= 0 returns everything retained.
func (j *journal) events(max int) []DecisionEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []DecisionEvent
	if j.full {
		out = append(out, j.buf[j.next:]...)
	}
	out = append(out, j.buf[:j.next]...)
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// Decisions returns the retained decision journal in chronological
// order. Soak runs write it next to their benchmark report so replan
// entries can be lined up against injected faults.
func (a *Autopilot) Decisions() []DecisionEvent {
	return a.journal.events(0)
}

// planCounts renders a fleet plan as the journal's per-model allocation
// view.
func (a *Autopilot) planCounts(p core.FleetPlan) map[string]ModelPlanStatus {
	if len(p) == 0 {
		return nil
	}
	out := make(map[string]ModelPlanStatus, len(p))
	for name, cfg := range p {
		out[name] = a.modelPlanStatus(cfg)
	}
	return out
}

// decisionEvent assembles the journal entry for one completed Step.
func (a *Autopilot) decisionEvent(dec Decision, err error, planMS, actuateMS float64) DecisionEvent {
	ev := DecisionEvent{
		At:          time.Now(),
		Triggers:    dec.triggerNames(),
		Reason:      dec.Reason,
		Utilization: dec.Utilization,
		PlanBudget:  dec.PlanBudget,
		PlanMS:      planMS,
		From:        a.planCounts(dec.From),
	}
	switch {
	case err != nil:
		ev.Kind = "error"
		ev.Err = err.Error()
	case dec.Replanned:
		ev.Kind = "replan"
		ev.To = a.planCounts(dec.To)
		ev.ActuationMS = actuateMS
	case !dec.Checked:
		ev.Kind = "cold"
	case dec.Held:
		ev.Kind = "held"
	case dec.DriftTriggered || dec.SLOTriggered || dec.ScaleInTriggered:
		ev.Kind = "plan-unchanged"
	default:
		ev.Kind = "steady"
	}
	if len(dec.Models) > 0 {
		ev.Models = make(map[string]DecisionModelView, len(dec.Models))
		for name, md := range dec.Models {
			ev.Models[name] = DecisionModelView{
				Checked: md.Checked, Drift: md.Drift, TailMS: zeroNaN(md.TailMS),
				ArrivalQPS: md.ArrivalQPS, DriftTriggered: md.DriftTriggered, SLOTriggered: md.SLOTriggered,
			}
		}
	}
	return ev
}
