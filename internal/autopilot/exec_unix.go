//go:build unix

package autopilot

import (
	"os"
	"os/exec"
	"syscall"
)

// detachProcessGroup puts a spawned kairosd in its own process group, so
// terminal signals (Ctrl-C) reach only the control plane and the fleet
// shuts down in the documented order instead of being broadside-SIGINT'd.
func detachProcessGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// terminateProcess asks a kairosd to drain and exit (SIGTERM).
func terminateProcess(p *os.Process) error {
	return p.Signal(syscall.SIGTERM)
}

// suspendProcess wedges a kairosd (SIGSTOP): the process keeps its
// sockets but stops replying — the soak harness's stalled-instance fault.
func suspendProcess(p *os.Process) error {
	return p.Signal(syscall.SIGSTOP)
}

// resumeProcess un-wedges a SIGSTOP'd kairosd (SIGCONT).
func resumeProcess(p *os.Process) error {
	return p.Signal(syscall.SIGCONT)
}
