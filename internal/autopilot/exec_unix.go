//go:build unix

package autopilot

import (
	"os"
	"os/exec"
	"syscall"
)

// detachProcessGroup puts a spawned kairosd in its own process group, so
// terminal signals (Ctrl-C) reach only the control plane and the fleet
// shuts down in the documented order instead of being broadside-SIGINT'd.
func detachProcessGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// terminateProcess asks a kairosd to drain and exit (SIGTERM).
func terminateProcess(p *os.Process) error {
	return p.Signal(syscall.SIGTERM)
}
