// Package autopilot closes the paper's Fig. 12 adaptation loop over the
// real network serving path, for a set of models sharing one cost budget:
// per-model rolling-window live monitors fed from controller completions,
// per-model drift triggers (internal/adapt) plus SLO-violation triggers
// and a fleet-wide scale-in trigger on sustained under-utilization, a
// replan step invoking the shared-budget fleet planner with the live
// windows (and observed arrival rates) as its inputs, and an actuator
// that reconciles every model's running fleet — launching and draining
// instances at runtime — toward the fresh plan. A trigger fired by one
// model replans the whole fleet, so budget freed by a cooling model flows
// to a heating one. It is the control plane that turns the monitors,
// planner, and controller from isolated components into a self-managing
// multi-model serving system (INFaaS-style managed adaptivity,
// KubeAI-style reconciliation).
//
// The system's two outward edges are pluggable: actuation goes through
// the Provider interface (the in-process Fleet, the kairosd-spawning
// ExecFleet, or anything else that can launch and stop instances), and
// external traffic arrives through an optional internal/ingress front-end
// whose lifecycle the autopilot owns.
package autopilot

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"kairos/internal/adapt"
	"kairos/internal/cloud"
	"kairos/internal/core"
	"kairos/internal/ingress"
	"kairos/internal/metrics"
	"kairos/internal/models"
	"kairos/internal/obs"
	"kairos/internal/server"
	"kairos/internal/workload"
)

// Defaults for zero-valued Options fields.
const (
	// DefaultInterval is the control-loop period (wall clock).
	DefaultInterval = time.Second
	// DefaultWindow sizes the live batch-mix and latency windows.
	DefaultWindow = workload.DefaultWindow
	// DefaultSLOPercentile is the paper's tail-latency percentile.
	DefaultSLOPercentile = 99
	// DefaultScaleInTicks is how many consecutive under-utilized control
	// ticks arm the scale-in trigger.
	DefaultScaleInTicks = 5
	// DefaultScaleInHysteresis is the utilization band above the scale-in
	// floor that resets the consecutive-tick counter; readings inside the
	// band neither arm nor reset, damping oscillation around the floor.
	DefaultScaleInHysteresis = 0.05
)

// PlanFunc produces a fresh fleet plan from per-model live batch-size
// samples and observed arrival rates (model-time QPS; a model absent from
// arrivals has unknown demand). A non-positive budget asks for the
// planner's full configured budget; a positive one caps spending (the
// scale-in trigger passes a shrunk budget to shed cost).
type PlanFunc func(samples map[string][]int, arrivals map[string]float64, budget float64) (core.FleetPlan, error)

// Options parametrize an Autopilot. Pool, Models, and Plan are required;
// every other zero value picks a documented default.
type Options struct {
	// Pool is the instance-type universe plans are drawn from.
	Pool cloud.Pool
	// Models are the served workloads sharing the budget.
	Models []models.Model
	// Plan produces a fresh fleet plan from the live windows — normally
	// the engine's shared-budget allocator.
	Plan PlanFunc
	// ReplanModel, when set, replans a single model's allocation (other
	// models' slices stay fixed) from its live sample and arrival rate —
	// normally the engine's incremental single-model replanner. The
	// preemption path uses it to fill the hole a revoked instance leaves
	// before the revocation deadline, without paying a full-fleet replan.
	// A non-positive budget asks for the planner's full configured budget.
	// When nil, a preemption falls back to re-actuating the plan in force.
	ReplanModel func(model string, samples []int, arrivalQPS float64, budget float64) (core.FleetPlan, error)

	// TimeScale is the serving path's time dilation factor (it must match
	// the controller's and the instances'); non-positive means real time.
	TimeScale float64
	// Ingress, when set, opens an external query front-end over the
	// managed controller (HTTP + binary TCP; see internal/ingress). The
	// autopilot owns its lifecycle: it starts with New and closes with
	// Close, before the controller goes away.
	Ingress *ingress.Options

	// Interval is the control-loop period; 0 uses DefaultInterval.
	Interval time.Duration
	// DriftThreshold is the total-variation trigger in (0,1); 0 uses
	// adapt.DefaultThreshold.
	DriftThreshold float64
	// Window sizes the rolling per-model batch-mix and latency windows;
	// 0 uses DefaultWindow.
	Window int
	// MinObservations gates a model's triggers until its live window holds
	// this many completions; 0 uses Window/10 (at least 1).
	MinObservations int
	// SLOPercentile is the tail percentile checked against each model's
	// latency objective; 0 uses DefaultSLOPercentile.
	SLOPercentile float64
	// SLOLatencyMS overrides every model's latency objective in model ms;
	// 0 uses each model's own QoS target.
	SLOLatencyMS float64
	// Cooldown is the minimum wall-clock gap between replans; 0 uses
	// 2*Interval.
	Cooldown time.Duration
	// References maps model names to the batch samples behind the initial
	// plan; each model's drift detector is armed on its reference. Models
	// without one arm lazily on their first warm live window.
	References map[string][]int

	// ScaleInFloor enables the scale-in trigger: when the fleet-wide busy
	// fraction stays below the floor for ScaleInTicks consecutive control
	// ticks, the autopilot replans under a shrunk budget to shed cost.
	// 0 disables scale-in.
	ScaleInFloor float64
	// ScaleInTicks is the consecutive-tick count arming scale-in; 0 uses
	// DefaultScaleInTicks.
	ScaleInTicks int
	// ScaleInHysteresis is the utilization band above the floor that
	// resets the tick counter; 0 uses DefaultScaleInHysteresis.
	ScaleInHysteresis float64

	// Logf, when set, receives one line per control decision.
	Logf func(format string, args ...any)
}

// withDefaults validates the options and fills the zero values.
func (o Options) withDefaults() (Options, error) {
	if len(o.Pool) == 0 {
		return o, fmt.Errorf("autopilot: options need a pool")
	}
	if len(o.Models) == 0 {
		return o, fmt.Errorf("autopilot: options need at least one model")
	}
	seen := make(map[string]bool, len(o.Models))
	for _, m := range o.Models {
		if m.QoS <= 0 {
			return o, fmt.Errorf("autopilot: model %q needs a positive QoS target", m.Name)
		}
		if seen[m.Name] {
			return o, fmt.Errorf("autopilot: duplicate model %q", m.Name)
		}
		seen[m.Name] = true
	}
	if o.Plan == nil {
		return o, fmt.Errorf("autopilot: options need a Plan function")
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 1
	}
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.DriftThreshold == 0 {
		o.DriftThreshold = adapt.DefaultThreshold
	}
	if o.DriftThreshold <= 0 || o.DriftThreshold >= 1 {
		return o, fmt.Errorf("autopilot: drift threshold %v outside (0,1)", o.DriftThreshold)
	}
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.MinObservations <= 0 {
		o.MinObservations = o.Window / 10
		if o.MinObservations < 1 {
			o.MinObservations = 1
		}
	}
	if o.SLOPercentile == 0 {
		o.SLOPercentile = DefaultSLOPercentile
	}
	if o.SLOPercentile <= 0 || o.SLOPercentile > 100 {
		return o, fmt.Errorf("autopilot: SLO percentile %v outside (0,100]", o.SLOPercentile)
	}
	if o.SLOLatencyMS < 0 {
		return o, fmt.Errorf("autopilot: negative SLO latency %v", o.SLOLatencyMS)
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 2 * o.Interval
	}
	if o.ScaleInFloor < 0 || o.ScaleInFloor >= 1 {
		return o, fmt.Errorf("autopilot: scale-in floor %v outside [0,1)", o.ScaleInFloor)
	}
	if o.ScaleInFloor > 0 {
		if o.ScaleInTicks <= 0 {
			o.ScaleInTicks = DefaultScaleInTicks
		}
		if o.ScaleInHysteresis == 0 {
			o.ScaleInHysteresis = DefaultScaleInHysteresis
		}
		if o.ScaleInHysteresis < 0 || o.ScaleInFloor+o.ScaleInHysteresis >= 1 {
			return o, fmt.Errorf("autopilot: scale-in hysteresis %v leaves no utilization headroom above floor %v",
				o.ScaleInHysteresis, o.ScaleInFloor)
		}
	}
	return o, nil
}

// modelState is one served model's live window and trigger state.
type modelState struct {
	model models.Model
	// sloMS is the model's latency objective (Options.SLOLatencyMS or the
	// model's own QoS target).
	sloMS float64
	// monitor is internally synchronized; latency is guarded by
	// Autopilot.latMu, detector and lastDrift by Autopilot.mu.
	monitor   *workload.Monitor
	latency   *metrics.Window
	detector  *adapt.DriftDetector
	lastDrift float64
	// lastCompleted, lastSubmitted, and lastRejected back the per-model
	// throughput and arrival-rate estimates (stepMu).
	lastCompleted int64
	lastSubmitted int64
	lastRejected  int64
	recentQPS     float64 // guarded by Autopilot.mu
	// arrivalQPS is the smoothed observed arrival rate in model-time QPS
	// (guarded by Autopilot.mu); it feeds the planner's demand caps.
	arrivalQPS float64
}

// Autopilot runs the monitor -> detect -> replan -> actuate loop over one
// multi-model controller and its actuation provider. Build it with New,
// start the loop with Start (or drive it deterministically with Step),
// and tear everything down — loop, admin endpoint, ingress, controller,
// and provider — with Close.
type Autopilot struct {
	ctrl     *server.Controller
	provider Provider
	ingress  *ingress.Server // nil when no front-end is configured
	opts     Options

	// names is the sorted model-name iteration order; states is read-only
	// after New (its fields carry their own locking rules).
	names  []string
	states map[string]*modelState

	latMu sync.Mutex

	// stepMu serializes Step: the Start loop and manual Step callers may
	// otherwise interleave check-plan-actuate sequences.
	stepMu sync.Mutex

	mu         sync.Mutex
	current    core.FleetPlan
	replans    int
	lastChange time.Time
	lastReason string
	lastErr    string
	started    time.Time
	lowTicks   int // consecutive under-utilized control ticks

	// Fault state (mu): instance deaths reported by the controller's
	// eviction path, and the heal bookkeeping answering them.
	lastFault       time.Time
	lastFaultDetail string
	lastRecovery    time.Time
	instancesLost   int64
	heals           int64
	faultPending    bool
	// faultKick wakes the control loop for an immediate heal instead of
	// waiting out the tick (buffered: the callback never blocks).
	faultKick chan struct{}

	// Preemption state (mu): spot-market revocation notices and the
	// drain-ahead-of-death bookkeeping answering them.
	preemptNoticed        int64
	preemptDrained        int64
	preemptReplanned      int64
	preemptDeadlineDeaths int64
	lastPreempt           time.Time
	lastPreemptDetail     string

	// step-delta state for recent throughput/utilization estimates.
	lastStepAt        time.Time
	lastStepCompleted int64
	lastStepBusyMS    float64
	recentQPS         float64
	recentUtilization float64
	ratesValid        bool

	loopOnce  sync.Once
	closeOnce sync.Once
	stop      chan struct{}
	loopDone  chan struct{}

	adminMu     sync.Mutex
	admin       *adminServer
	adminClosed bool

	// journal is the bounded decision log behind /decisionz (read-only
	// after New; internally synchronized).
	journal *journal

	// lastActuateMS and lastPlanMS are the wall-clock costs of the most
	// recent fleet reconciliation and fleet replan computation, read by
	// the journal entry for the step that ran them (guarded by stepMu).
	lastActuateMS float64
	lastPlanMS    float64

	// planHist aggregates plan-computation latency for /metrics
	// (internally synchronized; the zero value is ready).
	planHist obs.Histogram
	// preemptHist aggregates notice-to-drained latency for /metrics
	// (internally synchronized; the zero value is ready).
	preemptHist obs.Histogram
}

// ModelDecision reports one model's trigger evaluation within a control
// iteration.
type ModelDecision struct {
	// Checked is false while the model's live window is too cold.
	Checked bool
	// Drift is the total-variation distance from the model's armed
	// reference.
	Drift float64
	// TailMS is the model's windowed SLO-percentile latency (model ms).
	TailMS float64
	// ArrivalQPS is the model's smoothed observed arrival rate handed to
	// the planner's demand caps (0 while unknown).
	ArrivalQPS float64
	// DriftTriggered and SLOTriggered report which triggers fired.
	DriftTriggered bool
	SLOTriggered   bool
}

// Decision reports one control-loop iteration over the whole fleet.
type Decision struct {
	// Checked is false while every model's live window is too cold to
	// evaluate the triggers.
	Checked bool
	// Models carries the per-model trigger evaluations.
	Models map[string]ModelDecision
	// DriftTriggered / SLOTriggered aggregate the per-model triggers;
	// ScaleInTriggered reports sustained fleet under-utilization.
	DriftTriggered   bool
	SLOTriggered     bool
	ScaleInTriggered bool
	// Utilization is the recent fleet-wide busy fraction in [0,1].
	Utilization float64
	// PlanBudget is the budget handed to the planner when one fired
	// (0 = the planner's full configured budget).
	PlanBudget float64
	// Held is true when a fired trigger was suppressed by the cooldown.
	Held bool
	// Replanned is true when a fresh plan was produced and actuated.
	Replanned bool
	// From and To are the fleet plans before and after; To is nil when no
	// replan happened.
	From, To core.FleetPlan
	// Reason summarizes the decision for logs and the admin endpoint.
	Reason string
}

// New assembles an autopilot over a running controller and its actuation
// provider, serving the given initial fleet plan. It installs itself as
// the controller's completion observer and, when Options.Ingress is set,
// opens the external front-end. The loop is not started; call Start.
func New(ctrl *server.Controller, provider Provider, initial core.FleetPlan, opts Options) (*Autopilot, error) {
	if ctrl == nil || provider == nil {
		return nil, fmt.Errorf("autopilot: needs a controller and a provider")
	}
	// An unset TimeScale inherits the provider's dilation (the built-in
	// providers expose it): rate and utilization math must divide by the
	// scale the instances actually run at, and before the Provider split
	// that was correct by construction.
	if opts.TimeScale <= 0 {
		if ts, ok := provider.(interface{ TimeScale() float64 }); ok {
			opts.TimeScale = ts.TimeScale()
		}
	}
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if initial.Total() == 0 {
		return nil, fmt.Errorf("autopilot: initial plan %v deploys nothing", initial)
	}
	for name, cfg := range initial {
		if len(cfg) != len(o.Pool) {
			return nil, fmt.Errorf("autopilot: initial config %v for %s does not match the pool", cfg, name)
		}
	}
	a := &Autopilot{
		ctrl:      ctrl,
		provider:  provider,
		opts:      o,
		states:    make(map[string]*modelState, len(o.Models)),
		current:   initial.Clone(),
		started:   time.Now(),
		stop:      make(chan struct{}),
		loopDone:  make(chan struct{}),
		faultKick: make(chan struct{}, 1),
		journal:   newJournal(defaultJournalSize),
	}
	for _, m := range o.Models {
		st := &modelState{
			model:   m,
			sloMS:   m.QoS,
			monitor: workload.NewMonitor(o.Window),
			latency: metrics.NewWindow(o.Window),
		}
		if o.SLOLatencyMS > 0 {
			st.sloMS = o.SLOLatencyMS
		}
		if ref := o.References[m.Name]; ref != nil {
			det, err := adapt.NewDriftDetector(ref, adapt.DefaultBins)
			if err != nil {
				return nil, fmt.Errorf("autopilot: reference for %s: %w", m.Name, err)
			}
			st.detector = det
		}
		a.states[m.Name] = st
		a.names = append(a.names, m.Name)
	}
	sort.Strings(a.names)
	ctrl.SetOnComplete(a.observe)
	ctrl.SetOnInstanceDown(a.onInstanceDown)
	if o.Ingress != nil {
		ing, err := ingress.New(ctrl, *o.Ingress)
		if err != nil {
			return nil, fmt.Errorf("autopilot: ingress: %w", err)
		}
		a.ingress = ing
	}
	return a, nil
}

// Controller returns the managed controller (for submitting load).
func (a *Autopilot) Controller() *server.Controller { return a.ctrl }

// Provider returns the managed actuation provider.
func (a *Autopilot) Provider() Provider { return a.provider }

// Ingress returns the external front-end, or nil when none is configured.
func (a *Autopilot) Ingress() *ingress.Server { return a.ingress }

// observe feeds the owning model's live window from one delivered
// completion.
func (a *Autopilot) observe(model string, batch int, res server.QueryResult) {
	st, ok := a.states[model]
	if !ok || res.Err != nil {
		return
	}
	st.monitor.Observe(batch)
	a.latMu.Lock()
	st.latency.Observe(res.LatencyMS)
	a.latMu.Unlock()
}

// onInstanceDown is the controller's eviction callback: an instance died
// outside an orderly removal. The fault is recorded, the provider's
// bookkeeping for the dead address is reaped (asynchronously — this runs
// on the controller's read path), and the control loop is kicked for an
// immediate heal instead of retrying a dead address until the next drift
// tick.
func (a *Autopilot) onInstanceDown(model, typeName, addr string, cause error) {
	detail := fmt.Sprintf("%s/%s at %s: %v", model, typeName, addr, cause)
	a.mu.Lock()
	a.lastFault = time.Now()
	a.lastFaultDetail = detail
	a.instancesLost++
	a.faultPending = true
	a.mu.Unlock()
	a.logf("autopilot: instance down: %s", detail)
	go func() {
		if err := reap(a.provider, addr); err != nil {
			a.logf("autopilot: reaping %s: %v", addr, err)
		}
		select {
		case a.faultKick <- struct{}{}:
		default:
		}
	}()
}

// Heal answers pending instance-death faults: it re-actuates the plan in
// force so the diff-based actuator relaunches exactly the missing
// instances. Unlike Step it bypasses the triggers and the cooldown — lost
// capacity is restored immediately, not on the next drift tick. It
// reports whether a heal ran. A failed heal leaves the fault pending so
// the next tick (or kick) retries.
func (a *Autopilot) Heal() (bool, error) {
	a.stepMu.Lock()
	defer a.stepMu.Unlock()
	a.mu.Lock()
	pending := a.faultPending
	a.faultPending = false
	plan := a.current.Clone()
	a.mu.Unlock()
	if !pending {
		return false, nil
	}
	a.mu.Lock()
	faultDetail := a.lastFaultDetail
	a.mu.Unlock()
	healStart := time.Now()
	if err := a.actuate(plan); err != nil {
		a.mu.Lock()
		a.faultPending = true
		a.mu.Unlock()
		a.setErr(fmt.Sprintf("heal: %v", err))
		a.journal.add(DecisionEvent{
			At: time.Now(), Kind: "error", Reason: "heal: " + faultDetail, Err: err.Error(),
		})
		return false, fmt.Errorf("autopilot: heal: %w", err)
	}
	a.journal.add(DecisionEvent{
		At: time.Now(), Kind: "heal", Reason: "healing fault: " + faultDetail,
		To: a.planCounts(plan), ActuationMS: float64(time.Since(healStart)) / float64(time.Millisecond),
	})
	a.mu.Lock()
	a.lastRecovery = time.Now()
	a.heals++
	if a.lastErr != "" && strings.HasPrefix(a.lastErr, "heal:") {
		a.lastErr = ""
	}
	// The reshaped fleet invalidates the rate baseline, exactly as after a
	// replan.
	a.lastStepAt = time.Time{}
	a.mu.Unlock()
	a.logf("autopilot: healed fleet back to %v", plan)
	return true, nil
}

// FaultState reports the fault/heal bookkeeping for observability: when
// the last instance death was observed and what it was, when the last
// heal completed, cumulative counts, and whether a fault is still
// unanswered.
func (a *Autopilot) FaultState() (lastFault, lastRecovery time.Time, detail string, lost, heals int64, pending bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastFault, a.lastRecovery, a.lastFaultDetail, a.instancesLost, a.heals, a.faultPending
}

// PreemptState reports the spot-revocation bookkeeping: notices received,
// instances drained ahead of their deadline, replans answering a drained
// notice, and notices whose instance died mid-drain (the deadline or
// another fault won the race — the eviction fallback handled those).
func (a *Autopilot) PreemptState() (noticed, drained, replanned, deadlineDeaths int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.preemptNoticed, a.preemptDrained, a.preemptReplanned, a.preemptDeadlineDeaths
}

// handlePreemption answers one revocation notice: drain the doomed
// instance immediately (reusing the controller's orderly removal, so
// in-flight queries finish and the backlog redistributes), release it at
// the provider, then replan the affected model around the hole — all
// racing the revocation deadline. An instance that dies mid-drain falls
// back to the eviction path: stranded queries were already redispatched
// and a heal kicked, so the notice handler just records the loss.
//
// Runs on its own goroutine per notice: the drain blocks on in-flight
// work and must not stall the control loop or other notices.
func (a *Autopilot) handlePreemption(p Preemption) {
	noticeAt := time.Now()
	a.mu.Lock()
	a.preemptNoticed++
	a.lastPreempt = noticeAt
	a.lastPreemptDetail = "notice for " + p.Addr
	a.mu.Unlock()
	a.logf("autopilot: preemption notice for %s (deadline in %v)", p.Addr, time.Until(p.Deadline).Round(time.Millisecond))

	model, typeName, died, err := a.ctrl.RemoveInstanceAddr(p.Addr)
	drainMS := float64(time.Since(noticeAt)) / float64(time.Millisecond)
	if err != nil {
		a.mu.Lock()
		a.lastPreemptDetail = fmt.Sprintf("notice for %s: %v", p.Addr, err)
		a.mu.Unlock()
		a.journal.add(DecisionEvent{
			At: time.Now(), Kind: "preempt",
			Reason: "preemption notice for " + p.Addr, Err: err.Error(), PreemptDrainMS: drainMS,
		})
		a.logf("autopilot: preemption drain of %s failed: %v", p.Addr, err)
		return
	}
	detail := fmt.Sprintf("%s/%s at %s", model, typeName, p.Addr)
	if died {
		a.mu.Lock()
		a.preemptDeadlineDeaths++
		a.lastPreemptDetail = detail + ": died mid-drain"
		a.mu.Unlock()
		a.journal.add(DecisionEvent{
			At: time.Now(), Kind: "preempt", PreemptDrainMS: drainMS,
			Reason: "preempted " + detail + " died mid-drain; eviction redispatch + heal fallback",
		})
		a.logf("autopilot: preempted %s died mid-drain; eviction fallback handled it", detail)
		return
	}
	a.preemptHist.Record(time.Since(noticeAt))
	if err := a.provider.Stop(p.Addr); err != nil {
		a.logf("autopilot: stopping preempted %s: %v", detail, err)
	}
	a.mu.Lock()
	a.preemptDrained++
	a.lastPreemptDetail = detail + ": drained"
	a.mu.Unlock()
	beatDeadline := ""
	if left := time.Until(p.Deadline); left > 0 {
		beatDeadline = fmt.Sprintf(", %v ahead of the deadline", left.Round(time.Millisecond))
	}
	a.logf("autopilot: drained preempted %s in %.1fms%s", detail, drainMS, beatDeadline)
	a.replanAfterPreemption(model, detail, noticeAt, drainMS)
}

// replanAfterPreemption fills the capacity hole a drained preemption
// left: a single-model incremental replan from the model's live window
// (Options.ReplanModel) when available, otherwise re-actuating the plan
// in force so the diff-based actuator relaunches the missing instance.
func (a *Autopilot) replanAfterPreemption(model, detail string, noticeAt time.Time, drainMS float64) {
	a.stepMu.Lock()
	defer a.stepMu.Unlock()

	var samples []int
	var arrival float64
	if st := a.states[model]; st != nil {
		if snap := st.monitor.Snapshot(); len(snap) >= a.opts.MinObservations {
			samples = snap
		} else if ref := a.opts.References[model]; ref != nil {
			samples = ref
		} else if len(snap) > 0 {
			samples = snap
		}
		a.mu.Lock()
		arrival = st.arrivalQPS
		a.mu.Unlock()
	}
	a.mu.Lock()
	current := a.current.Clone()
	a.mu.Unlock()

	var planMS float64
	next := core.FleetPlan(nil)
	if a.opts.ReplanModel != nil && len(samples) > 0 {
		planStart := time.Now()
		p, err := a.opts.ReplanModel(model, samples, arrival, 0)
		planTook := time.Since(planStart)
		planMS = float64(planTook) / float64(time.Millisecond)
		a.planHist.Record(planTook)
		switch {
		case err != nil:
			a.logf("autopilot: preemption replan for %s: %v (re-actuating current plan)", model, err)
		case p.Total() == 0:
			a.logf("autopilot: preemption replan for %s returned an empty plan (re-actuating current plan)", model)
		default:
			ok := true
			for name, cfg := range p {
				if _, known := a.states[name]; !known || len(cfg) != len(a.opts.Pool) {
					a.logf("autopilot: preemption replan returned unusable config %v for %q (re-actuating current plan)", cfg, name)
					ok = false
					break
				}
			}
			if ok {
				next = p
			}
		}
	}
	reActuated := next == nil
	if reActuated {
		next = current
	}

	actuateStart := time.Now()
	if err := a.actuate(next); err != nil {
		// Leave recovery to the fault machinery: mark a fault pending and
		// kick the loop so Heal retries outside this handler.
		a.mu.Lock()
		a.faultPending = true
		a.mu.Unlock()
		a.setErr(fmt.Sprintf("preempt actuate: %v", err))
		a.journal.add(DecisionEvent{
			At: time.Now(), Kind: "preempt", Reason: "preempted " + detail + ": post-drain actuation failed",
			Err: err.Error(), PlanMS: planMS, PreemptDrainMS: drainMS,
		})
		select {
		case a.faultKick <- struct{}{}:
		default:
		}
		a.logf("autopilot: post-preemption actuation failed: %v", err)
		return
	}
	actuateMS := float64(time.Since(actuateStart)) / float64(time.Millisecond)
	replanMS := float64(time.Since(noticeAt)) / float64(time.Millisecond)

	a.mu.Lock()
	changed := !reActuated && !next.Equal(current)
	if changed {
		a.current = next.Clone()
		a.replans++
	}
	a.preemptReplanned++
	if a.lastErr != "" && strings.HasPrefix(a.lastErr, "preempt") {
		a.lastErr = ""
	}
	// The reshaped fleet invalidates the rate baseline, as after any
	// replan or heal.
	a.lastStepAt = time.Time{}
	a.mu.Unlock()

	reason := "preempted " + detail + ": drained and replanned"
	if reActuated {
		reason = "preempted " + detail + ": drained and re-actuated the plan in force"
	}
	a.journal.add(DecisionEvent{
		At: time.Now(), Kind: "preempt", Reason: reason,
		From: a.planCounts(current), To: a.planCounts(next),
		PlanMS: planMS, ActuationMS: actuateMS,
		PreemptDrainMS: drainMS, PreemptReplanMS: replanMS,
	})
	a.logf("autopilot: replanned around preempted %s in %.1fms (drain %.1fms)", detail, replanMS, drainMS)
}

// Current returns the fleet plan in force.
func (a *Autopilot) Current() core.FleetPlan {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.current.Clone()
}

// Replans returns how many reconfigurations have been actuated.
func (a *Autopilot) Replans() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.replans
}

// Start launches the control loop; it ticks every Interval until Close.
func (a *Autopilot) Start() {
	a.loopOnce.Do(func() {
		go a.loop()
	})
}

// loop drives Step on the configured interval.
func (a *Autopilot) loop() {
	defer close(a.loopDone)
	ticker := time.NewTicker(a.opts.Interval)
	defer ticker.Stop()
	// Providers backed by revocable capacity announce preemptions; a nil
	// channel (no Noticer, or one that cannot deliver) never fires.
	var notices <-chan Preemption
	if n, ok := a.provider.(Noticer); ok {
		notices = n.Notices()
	}
	for {
		select {
		case <-a.stop:
			return
		case p := <-notices:
			// A revocation notice is a first-class trigger distinct from
			// death: drain the doomed instance and replan around the hole
			// before the deadline. Handled concurrently — overlapping
			// notices in a preemption storm must drain in parallel, not
			// queue behind each other's drains.
			go a.handlePreemption(p)
		case <-a.faultKick:
			// An instance died: heal now, not at the next tick.
			if _, err := a.Heal(); err != nil {
				a.logf("autopilot: heal failed: %v", err)
			}
		case <-ticker.C:
			// A failed heal leaves its fault pending; retry it before the
			// regular trigger evaluation so lost capacity is not stuck
			// behind a cooldown.
			if _, err := a.Heal(); err != nil {
				a.logf("autopilot: heal failed: %v", err)
			}
			dec, err := a.Step()
			switch {
			case err != nil:
				a.logf("autopilot: step failed: %v", err)
			case dec.Replanned:
				a.logf("autopilot: replanned %v -> %v (%s)", dec.From, dec.To, dec.Reason)
			case dec.Checked && (dec.DriftTriggered || dec.SLOTriggered || dec.ScaleInTriggered):
				a.logf("autopilot: trigger held back: %s", dec.Reason)
			}
		}
	}
}

func (a *Autopilot) logf(format string, args ...any) {
	if a.opts.Logf != nil {
		a.opts.Logf(format, args...)
	}
}

// triggerNames renders the fired per-model triggers for reasons/logs.
func (dec *Decision) triggerNames() string {
	var parts []string
	for _, kind := range []struct {
		on   bool
		name string
	}{{dec.DriftTriggered, "drift"}, {dec.SLOTriggered, "slo"}, {dec.ScaleInTriggered, "scale-in"}} {
		if kind.on {
			parts = append(parts, kind.name)
		}
	}
	return strings.Join(parts, "+")
}

// Step runs one control iteration: read every model's live window,
// evaluate the drift, SLO, and scale-in triggers, and — when one fires
// outside the cooldown — replan the whole fleet from the live samples and
// reconcile every model's fleet. It is the loop's body, exported so tests
// and tools can drive the control plane deterministically.
func (a *Autopilot) Step() (Decision, error) {
	a.stepMu.Lock()
	defer a.stepMu.Unlock()
	a.lastActuateMS = 0
	a.lastPlanMS = 0
	dec, err := a.step()
	a.journal.add(a.decisionEvent(dec, err, a.lastPlanMS, a.lastActuateMS))
	return dec, err
}

// step is Step's body; callers hold stepMu.
func (a *Autopilot) step() (Decision, error) {
	now := time.Now()
	util, utilOK := a.updateRates(now)

	// Smoothed observed arrival rates feed the planner's demand caps; a
	// model without a measured rate is absent (unknown demand, uncapped).
	arrivals := make(map[string]float64, len(a.names))
	a.mu.Lock()
	for _, name := range a.names {
		if q := a.states[name].arrivalQPS; q > 0 {
			arrivals[name] = q
		}
	}
	a.mu.Unlock()

	dec := Decision{Models: make(map[string]ModelDecision, len(a.names)), Utilization: util}
	samples := make(map[string][]int, len(a.names))
	for _, name := range a.names {
		st := a.states[name]
		md := ModelDecision{ArrivalQPS: arrivals[name]}
		snap := st.monitor.Snapshot()
		switch {
		case len(snap) >= a.opts.MinObservations:
			md.Checked = true
			samples[name] = snap

			a.latMu.Lock()
			md.TailMS = st.latency.Percentile(a.opts.SLOPercentile)
			latN := st.latency.Len()
			a.latMu.Unlock()
			md.SLOTriggered = latN >= a.opts.MinObservations && !math.IsNaN(md.TailMS) && md.TailMS > st.sloMS

			a.mu.Lock()
			if st.detector == nil {
				// Lazy arming: the model's first warm window becomes its
				// reference.
				det, err := adapt.NewDriftDetector(snap, adapt.DefaultBins)
				if err != nil {
					a.mu.Unlock()
					return Decision{}, err
				}
				st.detector = det
			} else {
				drift, err := st.detector.Distance(snap)
				if err != nil {
					a.mu.Unlock()
					return Decision{}, err
				}
				md.Drift = drift
				st.lastDrift = drift
				md.DriftTriggered = drift > a.opts.DriftThreshold
			}
			a.mu.Unlock()
		case a.opts.References[name] != nil:
			// Cold model: it still takes part in the fleet replan, planned
			// from the reference mix its current fleet was sized for.
			samples[name] = a.opts.References[name]
		case len(snap) > 0:
			samples[name] = snap
		}
		dec.Models[name] = md
		dec.DriftTriggered = dec.DriftTriggered || md.DriftTriggered
		dec.SLOTriggered = dec.SLOTriggered || md.SLOTriggered
		dec.Checked = dec.Checked || md.Checked
	}
	if !dec.Checked {
		dec.Reason = fmt.Sprintf("windows cold (< %d observations per model)", a.opts.MinObservations)
		return dec, nil
	}
	dec.ScaleInTriggered = a.scaleInTick(util, utilOK)

	a.mu.Lock()
	current := a.current.Clone()
	sinceChange := now.Sub(a.lastChange)
	a.mu.Unlock()
	dec.From = current

	// Any iteration that completes without error supersedes a recorded
	// control failure — health reflects the latest loop outcome.
	switch {
	case !dec.DriftTriggered && !dec.SLOTriggered && !dec.ScaleInTriggered:
		a.setErr("")
		dec.Reason = fmt.Sprintf("steady (util %.2f, %s)", util, a.modelSummary(dec))
		return dec, nil
	case sinceChange < a.opts.Cooldown:
		a.setErr("")
		dec.Held = true
		dec.Reason = fmt.Sprintf("%s in cooldown (%.1fs of %.1fs)", dec.triggerNames(), sinceChange.Seconds(), a.opts.Cooldown.Seconds())
		return dec, nil
	}

	// Scale-in alone shrinks the budget toward the observed demand; any
	// drift or SLO breach replans at full budget (scale-out is always
	// allowed to spend everything).
	scaleInOnly := dec.ScaleInTriggered && !dec.DriftTriggered && !dec.SLOTriggered
	if scaleInOnly {
		cost := current.Cost(a.opts.Pool)
		target := a.opts.ScaleInFloor + a.opts.ScaleInHysteresis
		shrunk := cost * util / target
		if min := a.cheapestPrice(); shrunk < min {
			shrunk = min
		}
		if shrunk >= cost-1e-9 {
			a.resetScaleIn()
			a.setErr("")
			dec.ScaleInTriggered = false
			dec.Reason = fmt.Sprintf("scale-in armed but nothing to shed (util %.2f, cost $%.2f/hr)", util, cost)
			return dec, nil
		}
		dec.PlanBudget = shrunk
	}

	planStart := time.Now()
	next, err := a.opts.Plan(samples, arrivals, dec.PlanBudget)
	planTook := time.Since(planStart)
	a.lastPlanMS = float64(planTook) / float64(time.Millisecond)
	a.planHist.Record(planTook)
	if err != nil {
		a.setErr(fmt.Sprintf("replan: %v", err))
		return dec, fmt.Errorf("autopilot: replan: %w", err)
	}
	// A nil or empty plan (no feasible configuration) is a control failure
	// — except under a pure scale-in, where a shrunk budget that buys no
	// fleet simply means there is nothing safe to shed: keep the current
	// fleet and re-arm, instead of looping on a recorded error every tick.
	if next.Total() == 0 {
		if scaleInOnly {
			a.resetScaleIn()
			a.setErr("")
			dec.Reason = fmt.Sprintf("scale-in budget $%.2f/hr buys no fleet; keeping the current plan", dec.PlanBudget)
			return dec, nil
		}
		a.setErr(fmt.Sprintf("replan: planner returned unusable plan %v", next))
		return dec, fmt.Errorf("autopilot: replan: planner returned unusable plan %v", next)
	}
	for name, cfg := range next {
		if _, ok := a.states[name]; !ok || len(cfg) != len(a.opts.Pool) {
			a.setErr(fmt.Sprintf("replan: planner returned unusable config %v for %q", cfg, name))
			return dec, fmt.Errorf("autopilot: replan: planner returned unusable config %v for %q", cfg, name)
		}
	}
	// A model with no planning sample at all (cold window, no reference)
	// was invisible to the planner; carry its current allocation forward
	// instead of reading the absence as "tear its fleet down to zero".
	for _, name := range a.names {
		if _, ok := samples[name]; ok {
			continue
		}
		if cur := current[name]; cur.Total() > 0 && next[name].Total() == 0 {
			next[name] = cur.Clone()
		}
	}
	// Rebase every warm model's detector on the sample just planned from,
	// whether or not the plan changed — the trigger has been answered.
	rebased := make(map[string]*adapt.DriftDetector, len(samples))
	for _, name := range a.names {
		if !dec.Models[name].Checked {
			continue
		}
		det, err := adapt.NewDriftDetector(samples[name], adapt.DefaultBins)
		if err != nil {
			return dec, err
		}
		rebased[name] = det
	}
	reason := fmt.Sprintf("%s trigger (util %.2f, %s)", dec.triggerNames(), util, a.modelSummary(dec))

	if next.Equal(current) {
		a.mu.Lock()
		for name, det := range rebased {
			a.states[name].detector = det
		}
		a.lastChange = now
		a.lastReason = reason + ", plan unchanged"
		a.lastErr = ""
		a.mu.Unlock()
		// The trigger has been answered; without a fresh SLO view the old
		// breach samples would re-fire it every cooldown.
		a.resetLatencyWindows()
		a.resetScaleIn()
		dec.Reason = "trigger fired but the plan is unchanged"
		return dec, nil
	}

	actuateStart := time.Now()
	if err := a.actuate(next); err != nil {
		a.setErr(fmt.Sprintf("actuate: %v", err))
		return dec, fmt.Errorf("autopilot: actuate: %w", err)
	}
	a.lastActuateMS = float64(time.Since(actuateStart)) / float64(time.Millisecond)

	a.mu.Lock()
	for name, det := range rebased {
		a.states[name].detector = det
	}
	a.current = next.Clone()
	a.replans++
	a.lastChange = now
	a.lastReason = reason
	a.lastErr = ""
	// Removed instances take their cumulative BusyMS out of the stats, so
	// the next delta would read as a phantom zero-utilization tick; force
	// the rate estimator to re-baseline on the reshaped fleet instead.
	a.lastStepAt = time.Time{}
	a.mu.Unlock()

	// The latency windows measured the old fleet; restart the SLO view.
	a.resetLatencyWindows()
	a.resetScaleIn()

	dec.Replanned = true
	dec.To = next.Clone()
	dec.Reason = reason
	return dec, nil
}

// modelSummary renders the per-model drift/tail readings for reasons.
func (a *Autopilot) modelSummary(dec Decision) string {
	var parts []string
	for _, name := range a.names {
		md := dec.Models[name]
		if !md.Checked {
			parts = append(parts, fmt.Sprintf("%s cold", name))
			continue
		}
		parts = append(parts, fmt.Sprintf("%s drift %.3f p%g %.1fms", name, md.Drift, a.opts.SLOPercentile, md.TailMS))
	}
	return strings.Join(parts, "; ")
}

// scaleInTick advances the consecutive-under-utilization counter and
// reports whether the scale-in trigger is armed. Readings inside the
// hysteresis band above the floor neither arm nor reset.
func (a *Autopilot) scaleInTick(util float64, valid bool) bool {
	if a.opts.ScaleInFloor <= 0 || !valid {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	switch {
	case util < a.opts.ScaleInFloor:
		a.lowTicks++
	case util > a.opts.ScaleInFloor+a.opts.ScaleInHysteresis:
		a.lowTicks = 0
	}
	return a.lowTicks >= a.opts.ScaleInTicks
}

// resetScaleIn clears the under-utilization counter after a replan (or an
// answered trigger): the resized fleet starts a fresh observation run.
func (a *Autopilot) resetScaleIn() {
	a.mu.Lock()
	a.lowTicks = 0
	a.mu.Unlock()
}

// resetLatencyWindows restarts every model's SLO view.
func (a *Autopilot) resetLatencyWindows() {
	a.latMu.Lock()
	for _, name := range a.names {
		a.states[name].latency.Reset()
	}
	a.latMu.Unlock()
}

// cheapestPrice returns the pool's lowest hourly price — the smallest
// budget that can still buy capacity.
func (a *Autopilot) cheapestPrice() float64 {
	min := math.Inf(1)
	for _, t := range a.opts.Pool {
		if t.PricePerHour < min {
			min = t.PricePerHour
		}
	}
	return min
}

func (a *Autopilot) setErr(msg string) {
	a.mu.Lock()
	a.lastErr = msg
	a.mu.Unlock()
}

// updateRates refreshes the recent throughput and utilization estimates
// from controller-stats deltas since the previous step. The returned
// utilization is only meaningful when ok is true (a previous step exists).
func (a *Autopilot) updateRates(now time.Time) (float64, bool) {
	stats := a.ctrl.Stats()
	busy := 0.0
	for _, in := range stats.Instances {
		busy += in.BusyMS
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	ok := false
	if !a.lastStepAt.IsZero() {
		wallMS := float64(now.Sub(a.lastStepAt)) / float64(time.Millisecond)
		if wallMS > 0 {
			modelMS := wallMS / a.opts.TimeScale
			a.recentQPS = float64(stats.Completed-a.lastStepCompleted) / modelMS * 1000
			if n := len(stats.Instances); n > 0 {
				util := (busy - a.lastStepBusyMS) / (modelMS * float64(n))
				if util < 0 {
					util = 0
				}
				a.recentUtilization = util
				ok = true
			}
			for _, name := range a.names {
				st := a.states[name]
				if ms, found := stats.Models[name]; found {
					st.recentQPS = float64(ms.Completed-st.lastCompleted) / modelMS * 1000
					st.lastCompleted = ms.Completed
					// Arrivals (submissions) measure demand even when the
					// fleet cannot keep up. Backpressure-rejected ingress
					// queries never reach Submit but are demand too — an
					// overloaded front-end must not read as "demand equals
					// served throughput" or the demand caps would pin the
					// fleet at its own saturation point. A light EWMA
					// damps interval noise before the planner reads it.
					demand := ms.Submitted - st.lastSubmitted
					st.lastSubmitted = ms.Submitted
					if is, found := stats.Ingress[name]; found {
						demand += is.Rejected - st.lastRejected
						st.lastRejected = is.Rejected
					}
					inst := float64(demand) / modelMS * 1000
					if st.arrivalQPS == 0 {
						st.arrivalQPS = inst
					} else {
						st.arrivalQPS = 0.5*st.arrivalQPS + 0.5*inst
					}
				}
			}
		}
	} else {
		for _, name := range a.names {
			if ms, found := stats.Models[name]; found {
				st := a.states[name]
				st.lastCompleted = ms.Completed
				st.lastSubmitted = ms.Submitted
				if is, found := stats.Ingress[name]; found {
					st.lastRejected = is.Rejected
				}
			}
		}
	}
	a.lastStepAt = now
	a.lastStepCompleted = stats.Completed
	a.lastStepBusyMS = busy
	a.ratesValid = ok
	return a.recentUtilization, ok
}

// actuate reconciles every model's running fleet toward the plan, diffing
// against the controller's observed per-model instance counts rather than
// replaying plan deltas — a partially-failed earlier actuation self-heals
// on the next pass. All additions happen before any removal (no model's
// capacity dips below both states' minimum), and removals drain —
// in-flight queries always finish. Launches and stops go through the
// actuation provider, so the same loop manages in-process servers and
// real kairosd processes.
func (a *Autopilot) actuate(to core.FleetPlan) error {
	for _, name := range a.names {
		cfg := to[name]
		have := a.ctrl.ModelInstanceCounts(name)
		for i, t := range a.opts.Pool {
			want := 0
			if cfg != nil {
				want = cfg[i]
			}
			for k := have[t.Name]; k < want; k++ {
				addr, err := a.provider.Launch(name, t.Name)
				if err != nil {
					return err
				}
				if _, err := a.ctrl.AddInstance(addr); err != nil {
					a.provider.Stop(addr)
					return err
				}
				a.logf("autopilot: added %s for %s at %s", t.Name, name, addr)
			}
		}
	}
	for _, name := range a.names {
		cfg := to[name]
		have := a.ctrl.ModelInstanceCounts(name)
		for i, t := range a.opts.Pool {
			want := 0
			if cfg != nil {
				want = cfg[i]
			}
			for k := want; k < have[t.Name]; k++ {
				addr, err := a.ctrl.RemoveInstance(name, t.Name)
				if err != nil {
					return err
				}
				if err := a.provider.Stop(addr); err != nil {
					return err
				}
				a.logf("autopilot: drained and removed %s for %s at %s", t.Name, name, addr)
			}
		}
	}
	return nil
}

// Close stops the control loop and the admin endpoint, shuts the ingress
// front-end (no new external queries; in-flight ones finish), then closes
// the controller and the provider. In-flight queries submitted directly
// to the controller fail as on Controller.Close; such submit loads should
// finish before closing.
func (a *Autopilot) Close() {
	a.closeOnce.Do(func() {
		close(a.stop)
		a.loopOnce.Do(func() { close(a.loopDone) }) // loop never started
		<-a.loopDone
		a.adminMu.Lock()
		a.adminClosed = true
		if a.admin != nil {
			a.admin.close()
			a.admin = nil
		}
		a.adminMu.Unlock()
		if a.ingress != nil {
			a.ingress.Close()
		}
		a.ctrl.Close()
		a.provider.Close()
	})
}
