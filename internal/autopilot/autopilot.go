package autopilot

import (
	"fmt"
	"math"
	"sync"
	"time"

	"kairos/internal/adapt"
	"kairos/internal/cloud"
	"kairos/internal/metrics"
	"kairos/internal/models"
	"kairos/internal/server"
	"kairos/internal/workload"
)

// Defaults for zero-valued Options fields.
const (
	// DefaultInterval is the control-loop period (wall clock).
	DefaultInterval = time.Second
	// DefaultWindow sizes the live batch-mix and latency windows.
	DefaultWindow = workload.DefaultWindow
	// DefaultSLOPercentile is the paper's tail-latency percentile.
	DefaultSLOPercentile = 99
)

// Options parametrize an Autopilot. Pool, Model, and Plan are required;
// every other zero value picks a documented default.
type Options struct {
	// Pool is the instance-type universe plans are drawn from.
	Pool cloud.Pool
	// Model is the served workload.
	Model models.Model
	// Plan produces a fresh configuration from a live batch-size sample —
	// normally the engine's one-shot planner bound to its budget.
	Plan func(samples []int) (cloud.Config, error)

	// Interval is the control-loop period; 0 uses DefaultInterval.
	Interval time.Duration
	// DriftThreshold is the total-variation trigger in (0,1); 0 uses
	// adapt.DefaultThreshold.
	DriftThreshold float64
	// Window sizes the rolling batch-mix and latency windows; 0 uses
	// DefaultWindow.
	Window int
	// MinObservations gates the triggers until the live window holds this
	// many completions; 0 uses Window/10 (at least 1).
	MinObservations int
	// SLOPercentile is the tail percentile checked against SLOLatencyMS;
	// 0 uses DefaultSLOPercentile.
	SLOPercentile float64
	// SLOLatencyMS is the latency objective in model ms; 0 uses the
	// model's QoS target.
	SLOLatencyMS float64
	// Cooldown is the minimum wall-clock gap between replans; 0 uses
	// 2*Interval.
	Cooldown time.Duration
	// Reference is the batch sample behind the initial configuration; the
	// drift detector is armed on it. Nil arms lazily on the first warm
	// live window.
	Reference []int
	// Logf, when set, receives one line per control decision.
	Logf func(format string, args ...any)
}

// withDefaults validates the options and fills the zero values.
func (o Options) withDefaults() (Options, error) {
	if len(o.Pool) == 0 {
		return o, fmt.Errorf("autopilot: options need a pool")
	}
	if o.Model.QoS <= 0 {
		return o, fmt.Errorf("autopilot: options need a model with a positive QoS target")
	}
	if o.Plan == nil {
		return o, fmt.Errorf("autopilot: options need a Plan function")
	}
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.DriftThreshold == 0 {
		o.DriftThreshold = adapt.DefaultThreshold
	}
	if o.DriftThreshold <= 0 || o.DriftThreshold >= 1 {
		return o, fmt.Errorf("autopilot: drift threshold %v outside (0,1)", o.DriftThreshold)
	}
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.MinObservations <= 0 {
		o.MinObservations = o.Window / 10
		if o.MinObservations < 1 {
			o.MinObservations = 1
		}
	}
	if o.SLOPercentile == 0 {
		o.SLOPercentile = DefaultSLOPercentile
	}
	if o.SLOPercentile <= 0 || o.SLOPercentile > 100 {
		return o, fmt.Errorf("autopilot: SLO percentile %v outside (0,100]", o.SLOPercentile)
	}
	if o.SLOLatencyMS == 0 {
		o.SLOLatencyMS = o.Model.QoS
	}
	if o.SLOLatencyMS < 0 {
		return o, fmt.Errorf("autopilot: negative SLO latency %v", o.SLOLatencyMS)
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 2 * o.Interval
	}
	return o, nil
}

// Autopilot runs the monitor -> detect -> replan -> actuate loop over one
// controller and its fleet. Build it with New, start the loop with Start
// (or drive it deterministically with Step), and tear everything down —
// loop, admin endpoint, controller, and fleet — with Close.
type Autopilot struct {
	ctrl  *server.Controller
	fleet *Fleet
	opts  Options

	// monitor and latency are the live window, fed by every successful
	// completion the controller delivers.
	monitor *workload.Monitor
	latMu   sync.Mutex
	latency *metrics.Window

	// stepMu serializes Step: the Start loop and manual Step callers may
	// otherwise interleave check-plan-actuate sequences.
	stepMu sync.Mutex

	mu         sync.Mutex
	detector   *adapt.DriftDetector
	current    cloud.Config
	replans    int
	lastChange time.Time
	lastReason string
	lastDrift  float64
	lastErr    string
	started    time.Time

	// step-delta state for recent throughput/utilization estimates.
	lastStepAt        time.Time
	lastStepCompleted int64
	lastStepBusyMS    float64
	recentQPS         float64
	recentUtilization float64

	loopOnce  sync.Once
	closeOnce sync.Once
	stop      chan struct{}
	loopDone  chan struct{}

	adminMu     sync.Mutex
	admin       *adminServer
	adminClosed bool
}

// Decision reports one control-loop iteration.
type Decision struct {
	// Checked is false while the live window is too cold to evaluate the
	// triggers.
	Checked bool
	// Drift is the total-variation distance from the armed reference.
	Drift float64
	// DriftTriggered and SLOTriggered report which triggers fired.
	DriftTriggered bool
	SLOTriggered   bool
	// TailMS is the windowed SLO-percentile latency (model ms).
	TailMS float64
	// Replanned is true when a fresh plan was produced and actuated.
	Replanned bool
	// From and To are the configurations before and after; equal (and To
	// nil) when no replan happened.
	From, To cloud.Config
	// Reason summarizes the decision for logs and the admin endpoint.
	Reason string
}

// New assembles an autopilot over a running controller and fleet, serving
// the given initial configuration. It installs itself as the controller's
// completion observer. The loop is not started; call Start.
func New(ctrl *server.Controller, fleet *Fleet, initial cloud.Config, opts Options) (*Autopilot, error) {
	if ctrl == nil || fleet == nil {
		return nil, fmt.Errorf("autopilot: needs a controller and a fleet")
	}
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(initial) != len(o.Pool) || initial.Total() == 0 {
		return nil, fmt.Errorf("autopilot: initial config %v does not deploy the pool", initial)
	}
	a := &Autopilot{
		ctrl:     ctrl,
		fleet:    fleet,
		opts:     o,
		monitor:  workload.NewMonitor(o.Window),
		latency:  metrics.NewWindow(o.Window),
		current:  initial.Clone(),
		started:  time.Now(),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	if o.Reference != nil {
		det, err := adapt.NewDriftDetector(o.Reference, adapt.DefaultBins)
		if err != nil {
			return nil, err
		}
		a.detector = det
	}
	ctrl.SetOnComplete(a.observe)
	return a, nil
}

// Controller returns the managed controller (for submitting load).
func (a *Autopilot) Controller() *server.Controller { return a.ctrl }

// Fleet returns the managed fleet.
func (a *Autopilot) Fleet() *Fleet { return a.fleet }

// observe feeds the live window from one delivered completion.
func (a *Autopilot) observe(batch int, res server.QueryResult) {
	if res.Err != nil {
		return
	}
	a.monitor.Observe(batch)
	a.latMu.Lock()
	a.latency.Observe(res.LatencyMS)
	a.latMu.Unlock()
}

// Current returns the configuration in force.
func (a *Autopilot) Current() cloud.Config {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.current.Clone()
}

// Replans returns how many reconfigurations have been actuated.
func (a *Autopilot) Replans() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.replans
}

// Start launches the control loop; it ticks every Interval until Close.
func (a *Autopilot) Start() {
	a.loopOnce.Do(func() {
		go a.loop()
	})
}

// loop drives Step on the configured interval.
func (a *Autopilot) loop() {
	defer close(a.loopDone)
	ticker := time.NewTicker(a.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
			dec, err := a.Step()
			switch {
			case err != nil:
				a.logf("autopilot: step failed: %v", err)
			case dec.Replanned:
				a.logf("autopilot: replanned %v -> %v (%s)", dec.From, dec.To, dec.Reason)
			case dec.Checked && (dec.DriftTriggered || dec.SLOTriggered):
				a.logf("autopilot: trigger held back: %s", dec.Reason)
			}
		}
	}
}

func (a *Autopilot) logf(format string, args ...any) {
	if a.opts.Logf != nil {
		a.opts.Logf(format, args...)
	}
}

// Step runs one control iteration: read the live window, evaluate the
// drift and SLO triggers, and — when one fires outside the cooldown —
// replan from the live sample and reconcile the fleet. It is the loop's
// body, exported so tests and tools can drive the control plane
// deterministically.
func (a *Autopilot) Step() (Decision, error) {
	a.stepMu.Lock()
	defer a.stepMu.Unlock()
	now := time.Now()
	a.updateRates(now)

	snap := a.monitor.Snapshot()
	if len(snap) < a.opts.MinObservations {
		return Decision{Reason: fmt.Sprintf("window cold (%d/%d observations)", len(snap), a.opts.MinObservations)}, nil
	}

	a.latMu.Lock()
	tail := a.latency.Percentile(a.opts.SLOPercentile)
	latN := a.latency.Len()
	a.latMu.Unlock()

	a.mu.Lock()
	if a.detector == nil {
		// Lazy arming: the first warm window becomes the reference.
		det, err := adapt.NewDriftDetector(snap, adapt.DefaultBins)
		if err != nil {
			a.mu.Unlock()
			return Decision{}, err
		}
		a.detector = det
		a.mu.Unlock()
		return Decision{Checked: true, Reason: "reference armed from first warm window"}, nil
	}
	drift, err := a.detector.Distance(snap)
	if err != nil {
		a.mu.Unlock()
		return Decision{}, err
	}
	a.lastDrift = drift
	current := a.current.Clone()
	sinceChange := now.Sub(a.lastChange)
	a.mu.Unlock()

	dec := Decision{
		Checked:        true,
		Drift:          drift,
		TailMS:         tail,
		DriftTriggered: drift > a.opts.DriftThreshold,
		SLOTriggered:   latN >= a.opts.MinObservations && !math.IsNaN(tail) && tail > a.opts.SLOLatencyMS,
		From:           current,
	}
	// Any iteration that completes without error supersedes a recorded
	// control failure — health reflects the latest loop outcome.
	switch {
	case !dec.DriftTriggered && !dec.SLOTriggered:
		a.setErr("")
		dec.Reason = fmt.Sprintf("steady (drift %.3f, p%g %.1fms)", drift, a.opts.SLOPercentile, tail)
		return dec, nil
	case sinceChange < a.opts.Cooldown:
		a.setErr("")
		dec.Reason = fmt.Sprintf("in cooldown (%.1fs of %.1fs)", sinceChange.Seconds(), a.opts.Cooldown.Seconds())
		return dec, nil
	}

	trigger := "drift"
	if !dec.DriftTriggered {
		trigger = "slo"
	} else if dec.SLOTriggered {
		trigger = "drift+slo"
	}

	next, err := a.opts.Plan(snap)
	if err != nil {
		a.setErr(fmt.Sprintf("replan: %v", err))
		return dec, fmt.Errorf("autopilot: replan: %w", err)
	}
	// A nil or empty plan (no feasible configuration) is a control failure,
	// not a fleet to converge to.
	if len(next) != len(a.opts.Pool) || next.Total() == 0 {
		a.setErr(fmt.Sprintf("replan: planner returned unusable config %v", next))
		return dec, fmt.Errorf("autopilot: replan: planner returned unusable config %v", next)
	}
	// Rebase the detector on the sample just planned from, whether or not
	// the plan changed — the trigger has been answered.
	det, err := adapt.NewDriftDetector(snap, adapt.DefaultBins)
	if err != nil {
		return dec, err
	}

	if next.Equal(current) {
		a.mu.Lock()
		a.detector = det
		a.lastChange = now
		a.lastReason = fmt.Sprintf("%s trigger, plan unchanged (drift %.3f, p%g %.1fms)", trigger, drift, a.opts.SLOPercentile, tail)
		a.lastErr = ""
		a.mu.Unlock()
		// The trigger has been answered; without a fresh SLO view the old
		// breach samples would re-fire it every cooldown.
		a.latMu.Lock()
		a.latency.Reset()
		a.latMu.Unlock()
		dec.Reason = "trigger fired but the plan is unchanged"
		return dec, nil
	}

	if err := a.actuate(next); err != nil {
		a.setErr(fmt.Sprintf("actuate: %v", err))
		return dec, fmt.Errorf("autopilot: actuate: %w", err)
	}

	a.mu.Lock()
	a.detector = det
	a.current = next.Clone()
	a.replans++
	a.lastChange = now
	a.lastReason = fmt.Sprintf("%s trigger (drift %.3f, p%g %.1fms)", trigger, drift, a.opts.SLOPercentile, tail)
	a.lastErr = ""
	a.mu.Unlock()

	// The latency window measured the old fleet; restart the SLO view.
	a.latMu.Lock()
	a.latency.Reset()
	a.latMu.Unlock()

	dec.Replanned = true
	dec.To = next.Clone()
	dec.Reason = fmt.Sprintf("%s trigger (drift %.3f)", trigger, drift)
	return dec, nil
}

func (a *Autopilot) setErr(msg string) {
	a.mu.Lock()
	a.lastErr = msg
	a.mu.Unlock()
}

// updateRates refreshes the recent throughput and utilization estimates
// from controller-stats deltas since the previous step.
func (a *Autopilot) updateRates(now time.Time) {
	stats := a.ctrl.Stats()
	busy := 0.0
	for _, in := range stats.Instances {
		busy += in.BusyMS
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.lastStepAt.IsZero() {
		wallMS := float64(now.Sub(a.lastStepAt)) / float64(time.Millisecond)
		if wallMS > 0 {
			modelMS := wallMS / a.fleet.TimeScale()
			a.recentQPS = float64(stats.Completed-a.lastStepCompleted) / modelMS * 1000
			if n := len(stats.Instances); n > 0 {
				util := (busy - a.lastStepBusyMS) / (modelMS * float64(n))
				if util < 0 {
					util = 0
				}
				a.recentUtilization = util
			}
		}
	}
	a.lastStepAt = now
	a.lastStepCompleted = stats.Completed
	a.lastStepBusyMS = busy
}

// actuate reconciles the running fleet toward a configuration, diffing
// against the controller's observed instance counts rather than replaying
// plan deltas — a partially-failed earlier actuation self-heals on the
// next pass. Capacity is added before it is removed (the fleet never dips
// below both states' minimum), and removals drain — in-flight queries
// always finish.
func (a *Autopilot) actuate(to cloud.Config) error {
	have := a.ctrl.InstanceCounts()
	for i, t := range a.opts.Pool {
		for k := have[t.Name]; k < to[i]; k++ {
			addr, err := a.fleet.Launch(t.Name)
			if err != nil {
				return err
			}
			if _, err := a.ctrl.AddInstance(addr); err != nil {
				a.fleet.Stop(addr)
				return err
			}
			a.logf("autopilot: added %s at %s", t.Name, addr)
		}
	}
	for i, t := range a.opts.Pool {
		for k := to[i]; k < have[t.Name]; k++ {
			addr, err := a.ctrl.RemoveInstance(t.Name)
			if err != nil {
				return err
			}
			if err := a.fleet.Stop(addr); err != nil {
				return err
			}
			a.logf("autopilot: drained and removed %s at %s", t.Name, addr)
		}
	}
	return nil
}

// Close stops the control loop and the admin endpoint, then closes the
// controller and the fleet. In-flight queries fail as on Controller.Close;
// submit loads should finish before closing.
func (a *Autopilot) Close() {
	a.closeOnce.Do(func() {
		close(a.stop)
		a.loopOnce.Do(func() { close(a.loopDone) }) // loop never started
		<-a.loopDone
		a.adminMu.Lock()
		a.adminClosed = true
		if a.admin != nil {
			a.admin.close()
			a.admin = nil
		}
		a.adminMu.Unlock()
		a.ctrl.Close()
		a.fleet.Close()
	})
}
