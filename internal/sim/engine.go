package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"kairos/internal/metrics"
	"kairos/internal/workload"
)

// Options configure one simulation run.
type Options struct {
	// RatePerSec is the Poisson query arrival rate; ignored when Arrivals
	// is supplied.
	RatePerSec float64
	// DurationMS is the arrival horizon; the run continues past it until
	// every query completes.
	DurationMS float64
	// WarmupMS excludes the initial transient from measurement: only
	// queries arriving in [WarmupMS, DurationMS) count.
	WarmupMS float64
	// Seed drives arrival times and batch sizes.
	Seed int64
	// Batches is the batch-size distribution; defaults to the trace-like
	// log-normal mix.
	Batches workload.BatchDistribution
	// Arrivals, when non-nil, replaces the generated Poisson stream
	// (deterministic replay; used by unit tests and the Fig. 5 walk-through).
	Arrivals []workload.Arrival
	// MaxMatchPerRound caps how many waiting queries a single scheduling
	// round exposes to the distributor (oldest first). Zero means
	// max(64, 4x instance count); the cap only binds past saturation where
	// the central queue grows without bound.
	MaxMatchPerRound int
}

// Result summarizes one run.
type Result struct {
	// TotalQueries is the number of queries that arrived overall.
	TotalQueries int
	// Measured counts only queries arriving inside the measurement window.
	Measured metrics.Summary
	// P99 is the 99th-percentile end-to-end latency of measured queries.
	P99 float64
	// ViolationRate is the fraction of measured queries exceeding QoS.
	ViolationRate float64
	// QPS is the measured arrival-window throughput (queries/second) —
	// meaningful only when QoS holds.
	QPS float64
	// MeetsQoS reports P99 <= model QoS.
	MeetsQoS bool
	// MeanWaitMS is the mean central-queue wait of measured queries.
	MeanWaitMS float64
	// BusyMSByType sums service time per instance type over the whole run
	// (utilization accounting for the experiment reports).
	BusyMSByType map[string]float64
	// ServedByType counts queries served per instance type.
	ServedByType map[string]int
}

type eventKind int

const (
	evArrival eventKind = iota
	evCompletion
)

type event struct {
	at   float64
	seq  int // tie-break for determinism
	kind eventKind
	// query is the arriving query for evArrival, the finishing query for
	// evCompletion.
	query *Query
	// instance is the completing instance for evCompletion.
	instance int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// instance is the engine-side server state.
type instance struct {
	typeName string
	// inFlight is the query being served, nil when idle.
	inFlight *Query
	// freeAt is when inFlight completes (meaningless when idle).
	freeAt float64
	// queue holds dispatched-but-not-started queries in FIFO order.
	queue []*Query
}

// Run executes one simulation of spec under the given distribution policy
// and returns aggregate results.
func Run(spec ClusterSpec, dist Distributor, opts Options) Result {
	queries, types := run(spec, dist, opts)
	res := summarize(spec, queries, opts)
	res.BusyMSByType = make(map[string]float64, 4)
	res.ServedByType = make(map[string]int, 4)
	for _, q := range queries {
		tn := types[q.Instance]
		res.BusyMSByType[tn] += q.FinishMS - q.StartMS
		res.ServedByType[tn]++
	}
	return res
}

// Trace executes one simulation and returns every query in arrival order
// with its timing fields populated; used by the Fig. 5 walk-through and the
// examples.
func Trace(spec ClusterSpec, dist Distributor, opts Options) []*Query {
	queries, _ := run(spec, dist, opts)
	return queries
}

// run is the engine core shared by Run and Trace.
func run(spec ClusterSpec, dist Distributor, opts Options) ([]*Query, []string) {
	if opts.DurationMS <= 0 && opts.Arrivals == nil {
		panic("sim: DurationMS must be positive")
	}
	if opts.WarmupMS < 0 || (opts.DurationMS > 0 && opts.WarmupMS >= opts.DurationMS) {
		panic(fmt.Sprintf("sim: warmup %v outside [0,duration)", opts.WarmupMS))
	}
	batches := opts.Batches
	if batches == nil {
		batches = workload.DefaultTrace()
	}
	arrivals := opts.Arrivals
	if arrivals == nil {
		rng := rand.New(rand.NewSource(opts.Seed))
		arrivals = workload.PoissonStream(rng, batches, opts.RatePerSec, opts.DurationMS)
	}

	types := spec.InstanceTypes()
	insts := make([]instance, len(types))
	for i, tn := range types {
		insts[i] = instance{typeName: tn}
	}
	oracle := spec.oracle()
	observer, _ := dist.(Observer)

	matchCap := opts.MaxMatchPerRound
	if matchCap <= 0 {
		matchCap = 4 * len(insts)
		if matchCap < 64 {
			matchCap = 64
		}
	}

	var h eventHeap
	seq := 0
	push := func(e event) {
		e.seq = seq
		seq++
		heap.Push(&h, e)
	}
	queries := make([]*Query, len(arrivals))
	for i, a := range arrivals {
		q := &Query{ID: i, Batch: a.Batch, ArrivalMS: a.AtMS, Instance: -1}
		queries[i] = q
		push(event{at: a.AtMS, kind: evArrival, query: q})
	}

	var waiting []*Query

	startService := func(now float64, idx int, q *Query) {
		in := &insts[idx]
		service := oracle.Latency(in.typeName, q.Batch)
		q.StartMS = now
		q.FinishMS = now + service
		q.Instance = idx
		in.inFlight = q
		in.freeAt = q.FinishMS
		push(event{at: q.FinishMS, kind: evCompletion, query: q, instance: idx})
	}

	// schedule runs one distribution round if there is work and capacity.
	schedule := func(now float64) {
		if len(waiting) == 0 || len(insts) == 0 {
			return
		}
		exposed := waiting
		if len(exposed) > matchCap {
			exposed = exposed[:matchCap]
		}
		qviews := make([]QueryView, len(exposed))
		for i, q := range exposed {
			qviews[i] = QueryView{Index: i, ID: q.ID, Batch: q.Batch, WaitMS: now - q.ArrivalMS}
		}
		iviews := make([]InstanceView, len(insts))
		for i := range insts {
			in := &insts[i]
			remaining := 0.0
			if in.inFlight != nil {
				remaining = in.freeAt - now
				if remaining < 0 {
					remaining = 0
				}
			}
			var qb []int
			if len(in.queue) > 0 {
				qb = make([]int, len(in.queue))
				for k, q := range in.queue {
					qb[k] = q.Batch
				}
			}
			iviews[i] = InstanceView{Index: i, TypeName: in.typeName, RemainingMS: remaining, QueuedBatches: qb}
		}

		assignments := dist.Assign(now, qviews, iviews)
		if len(assignments) == 0 {
			return
		}
		taken := make([]bool, len(exposed))
		// Dispatch in the distributor's order.
		var dispatched []int
		for _, a := range assignments {
			if a.Query < 0 || a.Query >= len(exposed) {
				panic(fmt.Sprintf("sim: %s assigned out-of-range query %d", dist.Name(), a.Query))
			}
			if a.Instance < 0 || a.Instance >= len(insts) {
				panic(fmt.Sprintf("sim: %s assigned out-of-range instance %d", dist.Name(), a.Instance))
			}
			if taken[a.Query] {
				panic(fmt.Sprintf("sim: %s assigned query %d twice", dist.Name(), a.Query))
			}
			taken[a.Query] = true
			dispatched = append(dispatched, a.Query)
			q := exposed[a.Query]
			in := &insts[a.Instance]
			if in.inFlight == nil && len(in.queue) == 0 {
				startService(now, a.Instance, q)
			} else {
				in.queue = append(in.queue, q)
			}
		}
		// Compact the central waiting list preserving arrival order.
		sort.Ints(dispatched)
		next := waiting[:0]
		di := 0
		for i, q := range waiting {
			if di < len(dispatched) && dispatched[di] == i {
				di++
				continue
			}
			next = append(next, q)
		}
		waiting = next
	}

	for h.Len() > 0 {
		e := heap.Pop(&h).(event)
		now := e.at
		switch e.kind {
		case evArrival:
			waiting = append(waiting, e.query)
		case evCompletion:
			in := &insts[e.instance]
			in.inFlight = nil
			if observer != nil {
				q := e.query
				observer.Observe(in.typeName, q.Batch, q.FinishMS-q.StartMS)
			}
			if len(in.queue) > 0 {
				next := in.queue[0]
				in.queue = in.queue[1:]
				startService(now, e.instance, next)
			}
		}
		// Coalesce simultaneous events into one scheduling round.
		if h.Len() > 0 && h[0].at == now {
			continue
		}
		schedule(now)
	}

	if len(waiting) > 0 {
		// Every query must be dispatched by the time arrivals stop and all
		// service completes; a distributor that strands queries is buggy.
		panic(fmt.Sprintf("sim: %s left %d queries stranded", dist.Name(), len(waiting)))
	}

	return queries, types
}

func summarize(spec ClusterSpec, queries []*Query, opts Options) Result {
	endMS := opts.DurationMS
	if opts.Arrivals != nil {
		endMS = math.Inf(1)
	}
	rec := metrics.NewLatencyRecorder(len(queries))
	waitSum := 0.0
	measured := 0
	var firstArrival, lastArrival float64
	for _, q := range queries {
		if q.ArrivalMS < opts.WarmupMS || q.ArrivalMS >= endMS {
			continue
		}
		if q.Instance == -1 {
			panic("sim: unserved query in measurement window")
		}
		if measured == 0 {
			firstArrival = q.ArrivalMS
		}
		lastArrival = q.ArrivalMS
		measured++
		rec.Record(q.Latency())
		waitSum += q.StartMS - q.ArrivalMS
	}
	res := Result{TotalQueries: len(queries)}
	if measured == 0 {
		res.MeetsQoS = true
		return res
	}
	res.Measured = rec.Summarize()
	res.P99 = rec.Percentile(99)
	res.ViolationRate = rec.ViolationRate(spec.Model.QoS)
	res.MeetsQoS = res.P99 <= spec.Model.QoS
	res.MeanWaitMS = waitSum / float64(measured)
	span := lastArrival - firstArrival
	if span > 0 {
		res.QPS = float64(measured-1) / span * 1000
	}
	return res
}
