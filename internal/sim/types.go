// Package sim is the serving substrate of the reproduction: a deterministic
// discrete-event simulator of a heterogeneous pool of inference servers fed
// by a central controller, the role played by real EC2 instances plus gRPC
// in the paper's testbed (Sec. 6). It also provides the allowable-throughput
// finder ("gradually increase the arrival rate of queries until the QoS is
// violated", Sec. 7) and the ORCL oracle evaluator.
package sim

import (
	"fmt"

	"kairos/internal/cloud"
	"kairos/internal/models"
)

// Query is one inference request batch traveling through the system.
type Query struct {
	// ID is a dense sequence number in arrival order.
	ID int
	// Batch is the number of requests batched into the query.
	Batch int
	// ArrivalMS is the submission time.
	ArrivalMS float64
	// StartMS/FinishMS are filled in when the query is served.
	StartMS, FinishMS float64
	// Instance is the index of the serving instance, -1 before dispatch.
	Instance int
}

// Latency is the end-to-end time the user observed.
func (q *Query) Latency() float64 { return q.FinishMS - q.ArrivalMS }

// QueryView is the read-only projection of a waiting query handed to
// distributors.
type QueryView struct {
	// Index identifies the query within the current waiting slice; it is
	// what Assignment.Query refers to.
	Index int
	// ID is the query's stable arrival sequence number; unlike Index it
	// never changes across scheduling rounds (partitioned controllers key
	// on it).
	ID int
	// Batch is the query's batch size.
	Batch int
	// WaitMS is the time spent waiting in the central queue so far (the
	// paper's W_i, Eq. 3).
	WaitMS float64
}

// InstanceView is the read-only projection of an instance handed to
// distributors.
type InstanceView struct {
	// Index identifies the instance; it is what Assignment.Instance refers to.
	Index int
	// TypeName is the cloud instance type, e.g. "g4dn.xlarge".
	TypeName string
	// RemainingMS is the time until the in-flight query finishes (0 when
	// idle). The controller tracks this accurately (Sec. 6).
	RemainingMS float64
	// QueuedBatches lists the batch sizes already dispatched to the
	// instance's local queue, in service order.
	QueuedBatches []int
}

// Backlog reports how many queries are dispatched but unfinished at the
// instance (in-flight plus locally queued).
func (v InstanceView) Backlog() int {
	n := len(v.QueuedBatches)
	if v.RemainingMS > 0 {
		n++
	}
	return n
}

// Assignment dispatches waiting query Query to instance Instance.
type Assignment struct {
	Query    int
	Instance int
}

// Distributor is a query-distribution policy: at each scheduling point it
// inspects the waiting queries and the instances and proposes dispatches.
// Implementations decide their own queueing discipline: Kairos-style
// policies dispatch at most one query to an empty-backlog instance, while
// CLKWRK-style policies push every query into per-instance FCFS queues.
type Distributor interface {
	// Name identifies the policy in reports.
	Name() string
	// Assign proposes dispatches. Queries may be left waiting; the engine
	// re-invokes Assign at the next scheduling point. Each waiting query may
	// appear at most once in the result.
	Assign(nowMS float64, waiting []QueryView, instances []InstanceView) []Assignment
}

// Observer receives ground-truth service feedback after each query
// completes, letting online components (Kairos's latency learner, the query
// monitor) train without prior knowledge. Distributors may optionally
// implement it.
type Observer interface {
	Observe(instance string, batch int, serviceMS float64)
}

// ClusterSpec fully describes the simulated deployment.
type ClusterSpec struct {
	// Pool is the ordered set of instance types.
	Pool cloud.Pool
	// Config gives the number of instances per pool type.
	Config cloud.Config
	// Model is the served ML model (QoS target and latency surface).
	Model models.Model
	// Oracle supplies ground-truth service times; nil uses Model's
	// deterministic surface. A models.NoisyOracle reproduces Fig. 16b.
	Oracle models.Oracle
}

// oracle resolves the ground-truth service-time source.
func (s ClusterSpec) oracle() models.Oracle {
	if s.Oracle != nil {
		return s.Oracle
	}
	return s.Model
}

// InstanceTypes expands the configuration into one type name per instance,
// in pool order: e.g. (2,0,1) over {G1,C1,C2} yields [G1 G1 C2].
func (s ClusterSpec) InstanceTypes() []string {
	if len(s.Config) != len(s.Pool) {
		panic(fmt.Sprintf("sim: config %v does not match pool of %d types", s.Config, len(s.Pool)))
	}
	var out []string
	for i, n := range s.Config {
		for k := 0; k < n; k++ {
			out = append(out, s.Pool[i].Name)
		}
	}
	return out
}
