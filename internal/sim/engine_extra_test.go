package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/workload"
)

func TestTraceReturnsEveryQueryInArrivalOrder(t *testing.T) {
	spec := rm2Spec(cloud.Config{2, 0, 2})
	queries := Trace(spec, FCFSAny{}, Options{RatePerSec: 30, DurationMS: 5000, Seed: 21})
	if len(queries) == 0 {
		t.Fatal("empty trace")
	}
	prev := -1.0
	for i, q := range queries {
		if q.ID != i {
			t.Fatalf("query %d has ID %d", i, q.ID)
		}
		if q.ArrivalMS < prev {
			t.Fatal("trace not in arrival order")
		}
		prev = q.ArrivalMS
		if q.Instance < 0 {
			t.Fatalf("query %d unserved", i)
		}
		if q.FinishMS < q.StartMS || q.StartMS < q.ArrivalMS {
			t.Fatalf("query %d has inconsistent times: %+v", i, q)
		}
		if q.Latency() <= 0 {
			t.Fatalf("query %d latency %v", i, q.Latency())
		}
	}
}

func TestBusyAccountingConservation(t *testing.T) {
	spec := rm2Spec(cloud.Config{1, 1, 1})
	res := Run(spec, FCFSAny{}, Options{RatePerSec: 10, DurationMS: 20000, Seed: 22})
	served := 0
	for _, n := range res.ServedByType {
		served += n
	}
	if served != res.TotalQueries {
		t.Fatalf("served %d of %d queries across types", served, res.TotalQueries)
	}
	// Busy time per type must equal the sum of that type's service times;
	// with the deterministic surface we can cross-check via the trace.
	queries := Trace(spec, FCFSAny{}, Options{RatePerSec: 10, DurationMS: 20000, Seed: 22})
	types := spec.InstanceTypes()
	want := map[string]float64{}
	for _, q := range queries {
		want[types[q.Instance]] += q.FinishMS - q.StartMS
	}
	for tn, ms := range want {
		if math.Abs(res.BusyMSByType[tn]-ms) > 1e-6 {
			t.Fatalf("%s busy %v, want %v", tn, res.BusyMSByType[tn], ms)
		}
	}
}

// TestServiceTimesMatchOracle checks that every query's in-service time is
// exactly the ground-truth latency (no engine distortion).
func TestServiceTimesMatchOracle(t *testing.T) {
	spec := rm2Spec(cloud.Config{2, 1, 1})
	queries := Trace(spec, LeastLoaded{}, Options{RatePerSec: 25, DurationMS: 8000, Seed: 23})
	types := spec.InstanceTypes()
	for _, q := range queries {
		want := spec.Model.Latency(types[q.Instance], q.Batch)
		if math.Abs((q.FinishMS-q.StartMS)-want) > 1e-9 {
			t.Fatalf("query %d service %v, want %v", q.ID, q.FinishMS-q.StartMS, want)
		}
	}
}

// TestAllowableThroughputMonotoneInQoS: relaxing the QoS target can only
// raise the allowable throughput.
func TestAllowableThroughputMonotoneInQoS(t *testing.T) {
	t.Parallel()
	m := models.MustByName("RM2")
	cfg := cloud.Config{2, 0, 3}
	opts := FindOptions{ProbeQueries: 800, Seed: 24, PrecisionFrac: 0.06}
	strict := FindAllowableThroughput(ClusterSpec{Pool: cloud.ThreeTypePool(), Config: cfg, Model: m},
		Static(FCFSAny{}), opts)
	relaxed := FindAllowableThroughput(ClusterSpec{Pool: cloud.ThreeTypePool(), Config: cfg, Model: m.WithQoS(m.QoS * 1.5)},
		Static(FCFSAny{}), opts)
	if relaxed < strict {
		t.Fatalf("relaxed QoS %v below strict %v", relaxed, strict)
	}
}

// TestOracleInvariantUnderSeed: ORCL throughput is a long-run property, so
// two seeds must agree within sampling noise.
func TestOracleInvariantUnderSeed(t *testing.T) {
	spec := rm2Spec(cloud.Config{2, 1, 3})
	a := OracleThroughput(spec, OracleOptions{Queries: 20000, Seed: 1})
	b := OracleThroughput(spec, OracleOptions{Queries: 20000, Seed: 2})
	if math.Abs(a-b)/a > 0.05 {
		t.Fatalf("oracle unstable across seeds: %v vs %v", a, b)
	}
}

// TestOracleDominatesSimulatedPolicies: the clairvoyant scheduler must
// upper-bound every implementable policy on random configurations.
func TestOracleDominatesSimulatedPolicies(t *testing.T) {
	t.Parallel()
	pool := cloud.ThreeTypePool()
	m := models.MustByName("RM2")
	rng := rand.New(rand.NewSource(25))
	configs := pool.Enumerate(2.5, cloud.WithMinBase(1))
	for trial := 0; trial < 5; trial++ {
		cfg := configs[rng.Intn(len(configs))]
		spec := ClusterSpec{Pool: pool, Config: cfg, Model: m}
		orcl := OracleThroughput(spec, OracleOptions{Queries: 15000, Seed: 25})
		measured := FindAllowableThroughput(spec, Static(FCFSAny{}), FindOptions{
			ProbeQueries: 800, Seed: 25, PrecisionFrac: 0.06,
		})
		if measured > orcl*1.05 {
			t.Fatalf("%v: FCFS %v exceeds oracle %v", cfg, measured, orcl)
		}
	}
}

// TestEngineHandlesSimultaneousArrivals: queries arriving at the same
// instant coalesce into one scheduling round and all get served.
func TestEngineHandlesSimultaneousArrivals(t *testing.T) {
	spec := rm2Spec(cloud.Config{2, 0, 0})
	arrivals := make([]workload.Arrival, 6)
	for i := range arrivals {
		arrivals[i] = workload.Arrival{AtMS: 5, Batch: 50 + i}
	}
	res := Run(spec, FCFSAny{}, Options{Arrivals: arrivals})
	if res.TotalQueries != 6 || res.Measured.Count != 6 {
		t.Fatalf("result %+v", res)
	}
}

// TestProbeQueriesAdaptiveDuration: with ProbeQueries set, measuring a
// fast model must not take proportionally longer virtual horizons.
func TestProbeQueriesAdaptiveDuration(t *testing.T) {
	t.Parallel()
	pool := cloud.DefaultPool()
	m := models.MustByName("NCF") // thousands of QPS
	spec := ClusterSpec{Pool: pool, Config: cloud.Config{2, 0, 2, 0}, Model: m}
	qps := FindAllowableThroughput(spec, Static(FCFSAny{}), FindOptions{
		ProbeQueries: 600, Seed: 26, PrecisionFrac: 0.08,
	})
	if qps < 500 {
		t.Fatalf("NCF allowable throughput = %v, expected thousands", qps)
	}
}

// TestFCFSAssignmentsValidProperty fuzzes FCFSAny's assignments for
// structural validity.
func TestFCFSAssignmentsValidProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	f := func(nq, ni uint8) bool {
		m := int(nq%8) + 1
		n := int(ni%6) + 1
		waiting := make([]QueryView, m)
		for i := range waiting {
			waiting[i] = QueryView{Index: i, Batch: rng.Intn(1000) + 1}
		}
		instances := make([]InstanceView, n)
		for i := range instances {
			instances[i] = InstanceView{Index: i, TypeName: "g4dn.xlarge"}
			if rng.Intn(2) == 0 {
				instances[i].RemainingMS = 5
			}
		}
		got := FCFSAny{}.Assign(0, waiting, instances)
		seenQ := map[int]bool{}
		seenI := map[int]bool{}
		for _, a := range got {
			if a.Query < 0 || a.Query >= m || a.Instance < 0 || a.Instance >= n {
				return false
			}
			if seenQ[a.Query] || seenI[a.Instance] {
				return false
			}
			seenQ[a.Query] = true
			seenI[a.Instance] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
