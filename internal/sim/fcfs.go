package sim

// FCFSAny is the naive scheme of Fig. 5: first come, first served onto any
// idle instance with no QoS awareness and no heterogeneity awareness. It is
// the engine's simplest policy and the contrast case for the quickstart
// example.
type FCFSAny struct{}

// Name implements Distributor.
func (FCFSAny) Name() string { return "FCFS" }

// Assign implements Distributor: oldest query first onto the lowest-index
// idle instance.
func (FCFSAny) Assign(_ float64, waiting []QueryView, instances []InstanceView) []Assignment {
	var out []Assignment
	used := make(map[int]bool)
	for _, q := range waiting {
		idx := -1
		for _, in := range instances {
			if in.Backlog() == 0 && !used[in.Index] {
				idx = in.Index
				break
			}
		}
		if idx == -1 {
			break
		}
		used[idx] = true
		out = append(out, Assignment{Query: q.Index, Instance: idx})
	}
	return out
}

// LeastLoaded dispatches every arriving query immediately to the instance
// with the fewest backlogged queries (ties to lower index). It is a
// heterogeneity-oblivious load balancer used as an ablation baseline.
type LeastLoaded struct{}

// Name implements Distributor.
func (LeastLoaded) Name() string { return "LeastLoaded" }

// Assign implements Distributor.
func (LeastLoaded) Assign(_ float64, waiting []QueryView, instances []InstanceView) []Assignment {
	out := make([]Assignment, 0, len(waiting))
	backlog := make(map[int]int, len(instances))
	for _, in := range instances {
		backlog[in.Index] = in.Backlog()
	}
	for _, q := range waiting {
		best, bestLoad := -1, int(^uint(0)>>1)
		for _, in := range instances {
			if backlog[in.Index] < bestLoad {
				best, bestLoad = in.Index, backlog[in.Index]
			}
		}
		backlog[best]++
		out = append(out, Assignment{Query: q.Index, Instance: best})
	}
	return out
}
