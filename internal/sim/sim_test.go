package sim

import (
	"math"
	"reflect"
	"testing"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/workload"
)

func rm2Spec(cfg cloud.Config) ClusterSpec {
	return ClusterSpec{
		Pool:   cloud.ThreeTypePool(),
		Config: cfg,
		Model:  models.MustByName("RM2"),
	}
}

func TestInstanceTypesExpansion(t *testing.T) {
	spec := rm2Spec(cloud.Config{2, 0, 1})
	types := spec.InstanceTypes()
	want := []string{"g4dn.xlarge", "g4dn.xlarge", "r5n.large"}
	if len(types) != len(want) {
		t.Fatalf("types = %v", types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("types = %v, want %v", types, want)
		}
	}
}

func TestInstanceTypesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ClusterSpec{Pool: cloud.ThreeTypePool(), Config: cloud.Config{1}}.InstanceTypes()
}

// TestSingleInstanceFCFSArithmetic replays two deterministic arrivals
// through one G1 instance and checks the engine's exact timing math.
func TestSingleInstanceFCFSArithmetic(t *testing.T) {
	spec := rm2Spec(cloud.Config{1, 0, 0})
	service := spec.Model.Latency("g4dn.xlarge", 100) // 62 + 5.5 = 67.5ms
	res := Run(spec, FCFSAny{}, Options{
		Arrivals: []workload.Arrival{
			{AtMS: 0, Batch: 100},
			{AtMS: 1, Batch: 100},
		},
	})
	if res.TotalQueries != 2 || res.Measured.Count != 2 {
		t.Fatalf("result = %+v", res)
	}
	// First query: latency = service. Second: waits until service, then
	// serves: latency = service - 1 + service.
	wantMax := 2*service - 1
	if math.Abs(res.Measured.Max-wantMax) > 1e-9 {
		t.Fatalf("max latency = %v, want %v", res.Measured.Max, wantMax)
	}
	if math.Abs(res.MeanWaitMS-(service-1)/2) > 1e-9 {
		t.Fatalf("mean wait = %v, want %v", res.MeanWaitMS, (service-1)/2)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	spec := rm2Spec(cloud.Config{2, 0, 2})
	opts := Options{RatePerSec: 20, DurationMS: 20000, WarmupMS: 2000, Seed: 99}
	a := Run(spec, FCFSAny{}, opts)
	b := Run(spec, FCFSAny{}, opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
	c := Run(spec, FCFSAny{}, Options{RatePerSec: 20, DurationMS: 20000, WarmupMS: 2000, Seed: 100})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestQoSAccounting(t *testing.T) {
	// One slow auxiliary instance serving batches beyond its cutoff: every
	// query violates QoS.
	spec := rm2Spec(cloud.Config{0, 0, 1})
	res := Run(spec, FCFSAny{}, Options{
		Arrivals: []workload.Arrival{{AtMS: 0, Batch: 1000}}, // 9+1350 = 1359ms >> 350ms
	})
	if res.MeetsQoS {
		t.Fatal("batch-1000 on r5n must violate RM2 QoS")
	}
	if res.ViolationRate != 1 {
		t.Fatalf("violation rate = %v, want 1", res.ViolationRate)
	}
}

func TestWarmupWindowExcluded(t *testing.T) {
	spec := rm2Spec(cloud.Config{1, 0, 0})
	res := Run(spec, FCFSAny{}, Options{
		RatePerSec: 10,
		DurationMS: 10000,
		WarmupMS:   5000,
		Seed:       1,
	})
	if res.Measured.Count >= res.TotalQueries {
		t.Fatalf("warmup not excluded: measured %d of %d", res.Measured.Count, res.TotalQueries)
	}
	if res.Measured.Count == 0 {
		t.Fatal("nothing measured")
	}
}

func TestLeastLoadedDispatchesEverything(t *testing.T) {
	spec := rm2Spec(cloud.Config{1, 1, 1})
	res := Run(spec, LeastLoaded{}, Options{RatePerSec: 30, DurationMS: 10000, Seed: 3})
	if res.Measured.Count == 0 {
		t.Fatal("nothing measured")
	}
	// Single-query deterministic replay: immediate dispatch to an idle
	// instance means zero wait before service.
	one := Run(spec, LeastLoaded{}, Options{Arrivals: []workload.Arrival{{AtMS: 0, Batch: 10}}})
	if one.MeanWaitMS != 0 {
		t.Fatalf("idle cluster should start service immediately, wait %v", one.MeanWaitMS)
	}
}

func TestFCFSKeepsArrivalOrder(t *testing.T) {
	// Two queries, one instance: the first to arrive must be served first
	// even if the second is smaller.
	spec := rm2Spec(cloud.Config{1, 0, 0})
	res := Run(spec, FCFSAny{}, Options{
		Arrivals: []workload.Arrival{
			{AtMS: 0, Batch: 900},
			{AtMS: 0.5, Batch: 1},
		},
	})
	// If order was respected, the small query's latency includes the big
	// query's full service time.
	big := spec.Model.Latency("g4dn.xlarge", 900)
	small := spec.Model.Latency("g4dn.xlarge", 1)
	wantSmallLatency := big - 0.5 + small
	if math.Abs(res.Measured.Max-wantSmallLatency) > 1e-9 {
		t.Fatalf("max latency %v, want %v (FCFS order violated?)", res.Measured.Max, wantSmallLatency)
	}
	_ = res
}

func TestRunPanicsOnBadOptions(t *testing.T) {
	spec := rm2Spec(cloud.Config{1, 0, 0})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic for zero duration")
			}
		}()
		Run(spec, FCFSAny{}, Options{RatePerSec: 1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic for warmup >= duration")
			}
		}()
		Run(spec, FCFSAny{}, Options{RatePerSec: 1, DurationMS: 100, WarmupMS: 100})
	}()
}

func TestFindAllowableThroughputSingleBase(t *testing.T) {
	// Fixed batch size makes capacity analytic: 1 / lat(100).
	spec := rm2Spec(cloud.Config{1, 0, 0})
	capacity := 1000 / spec.Model.Latency("g4dn.xlarge", 100) // ~14.8 QPS
	got := FindAllowableThroughput(spec, Static(FCFSAny{}), FindOptions{
		DurationMS: 30000,
		Seed:       5,
		Batches:    workload.Fixed(100),
	})
	if got <= 0.2*capacity || got > capacity {
		t.Fatalf("allowable throughput %v outside (%.1f, %.1f]", got, 0.2*capacity, capacity)
	}
}

func TestFindAllowableThroughputScalesWithInstances(t *testing.T) {
	one := FindAllowableThroughput(rm2Spec(cloud.Config{1, 0, 0}), Static(FCFSAny{}), FindOptions{
		DurationMS: 20000, Seed: 6, Batches: workload.Fixed(200)})
	three := FindAllowableThroughput(rm2Spec(cloud.Config{3, 0, 0}), Static(FCFSAny{}), FindOptions{
		DurationMS: 20000, Seed: 6, Batches: workload.Fixed(200)})
	if three < 1.8*one {
		t.Fatalf("3 instances (%v QPS) should far exceed 1 instance (%v QPS)", three, one)
	}
}

func TestFindAllowableThroughputZeroWhenInfeasible(t *testing.T) {
	// Auxiliary-only pool cannot serve max-size queries under QoS; with a
	// fixed batch beyond its cutoff the allowable throughput is zero.
	spec := rm2Spec(cloud.Config{0, 0, 2})
	got := FindAllowableThroughput(spec, Static(FCFSAny{}), FindOptions{
		DurationMS: 10000,
		Seed:       7,
		Batches:    workload.Fixed(1000),
	})
	if got != 0 {
		t.Fatalf("allowable throughput = %v, want 0", got)
	}
	if FindAllowableThroughput(rm2Spec(cloud.Config{0, 0, 0}), Static(FCFSAny{}), FindOptions{}) != 0 {
		t.Fatal("empty config must have zero throughput")
	}
}

func TestOracleThroughputHomogeneousAnalytic(t *testing.T) {
	// Homogeneous base pool: ORCL throughput ~= n * 1000/E[lat(batch)].
	spec := rm2Spec(cloud.Config{4, 0, 0})
	opts := OracleOptions{Queries: 30000, Seed: 8, Batches: workload.Fixed(100)}
	got := OracleThroughput(spec, opts)
	want := 4 * 1000 / spec.Model.Latency("g4dn.xlarge", 100)
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("oracle throughput %v, want ~%v", got, want)
	}
}

func TestOracleHeterogeneousBeatsCostEquivalentHomogeneous(t *testing.T) {
	// The motivation claim (Sec. 4): with the default mix, a good
	// heterogeneous configuration outperforms the best homogeneous one.
	opts := OracleOptions{Queries: 20000, Seed: 9}
	hom := OracleThroughput(rm2Spec(cloud.Config{4, 0, 0}), opts)
	het := OracleThroughput(rm2Spec(cloud.Config{3, 1, 3}), opts)
	if het <= hom {
		t.Fatalf("heterogeneous oracle %v should beat homogeneous %v", het, hom)
	}
}

func TestOracleZeroWithoutBase(t *testing.T) {
	spec := rm2Spec(cloud.Config{0, 2, 2})
	got := OracleThroughput(spec, OracleOptions{Queries: 5000, Seed: 10})
	if got != 0 {
		t.Fatalf("oracle without base instances = %v, want 0 (large queries unservable)", got)
	}
}

func TestOracleEmptyConfig(t *testing.T) {
	if got := OracleThroughput(rm2Spec(cloud.Config{0, 0, 0}), OracleOptions{Queries: 100, Seed: 1}); got != 0 {
		t.Fatalf("empty config oracle = %v", got)
	}
}

func TestOracleMonotoneInInstances(t *testing.T) {
	opts := OracleOptions{Queries: 10000, Seed: 11}
	small := OracleThroughput(rm2Spec(cloud.Config{1, 1, 1}), opts)
	big := OracleThroughput(rm2Spec(cloud.Config{2, 2, 2}), opts)
	if big <= small {
		t.Fatalf("oracle not monotone: %v -> %v", small, big)
	}
}

func TestOracleSearchFindsBudgetRespectingBest(t *testing.T) {
	pool := cloud.ThreeTypePool()
	model := models.MustByName("RM2")
	cfg, qps := OracleSearch(pool, model, 2.5, OracleOptions{Queries: 4000, Seed: 12})
	if qps <= 0 {
		t.Fatal("oracle search found nothing")
	}
	if !pool.WithinBudget(cfg, 2.5) {
		t.Fatalf("best config %v exceeds budget", cfg)
	}
	if cfg.Base() == 0 {
		t.Fatalf("best config %v has no base instances", cfg)
	}
	// It must beat the homogeneous configuration under the same evaluator.
	hom := OracleThroughput(ClusterSpec{Pool: pool, Config: pool.Homogeneous(2.5), Model: model},
		OracleOptions{Queries: 4000, Seed: 12})
	if qps < hom {
		t.Fatalf("oracle best %v below homogeneous %v", qps, hom)
	}
}

func TestBacklogView(t *testing.T) {
	v := InstanceView{RemainingMS: 0}
	if v.Backlog() != 0 {
		t.Fatal("idle instance backlog != 0")
	}
	v = InstanceView{RemainingMS: 5, QueuedBatches: []int{1, 2}}
	if v.Backlog() != 3 {
		t.Fatalf("backlog = %d, want 3", v.Backlog())
	}
}
