package sim

import (
	"math"
	"math/rand"

	"kairos/internal/workload"
)

// FindOptions configure the allowable-throughput measurement.
type FindOptions struct {
	// ProbeQueries fixes the per-probe sample size: each probe run lasts
	// ProbeQueries/rate seconds so high-QPS models do not need
	// proportionally longer simulations. Takes precedence over DurationMS
	// when both are set; defaults to 4000 when neither is set.
	ProbeQueries int
	// DurationMS is the fixed arrival horizon per probe run (used when
	// ProbeQueries is zero).
	DurationMS float64
	// WarmupMS is excluded from measurement (only meaningful with a fixed
	// DurationMS; adaptive probes use a 1/6 warmup fraction).
	WarmupMS float64
	// Seed fixes the random streams; every probe reuses the same seed
	// (common random numbers) so the feasibility frontier is stable.
	Seed int64
	// Batches is the batch-size distribution (default trace-like mix).
	Batches workload.BatchDistribution
	// PrecisionFrac terminates the bisection when hi-lo <= PrecisionFrac*hi
	// (default 2%).
	PrecisionFrac float64
	// MaxRate bounds the search (default 4x the capacity estimate).
	MaxRate float64
	// MinRate is the smallest rate worth probing (default 1 QPS); a
	// configuration that cannot sustain MinRate reports 0.
	MinRate float64
}

func (o FindOptions) withDefaults() FindOptions {
	if o.DurationMS == 0 && o.ProbeQueries == 0 {
		o.ProbeQueries = 4000
	}
	if o.DurationMS != 0 && o.WarmupMS == 0 {
		o.WarmupMS = o.DurationMS / 6
	}
	if o.Batches == nil {
		o.Batches = workload.DefaultTrace()
	}
	if o.PrecisionFrac == 0 {
		o.PrecisionFrac = 0.02
	}
	if o.MinRate == 0 {
		o.MinRate = 1
	}
	return o
}

// DistributorFactory builds a fresh policy instance per probe run, so that
// stateful policies (online learners, monitors) start each probe from the
// same state instead of leaking information across rates.
type DistributorFactory func() Distributor

// Static wraps a stateless distributor as a factory.
func Static(d Distributor) DistributorFactory { return func() Distributor { return d } }

// capacityEstimate bounds the cluster's aggregate service rate by assuming
// every instance serves mean-batch queries back to back; it ignores QoS and
// so over-estimates, which is what a bisection bracket needs.
func capacityEstimate(spec ClusterSpec, meanBatch int) float64 {
	total := 0.0
	for _, tn := range spec.InstanceTypes() {
		total += 1000 / spec.Model.Latency(tn, meanBatch)
	}
	return total
}

// FindAllowableThroughput measures the paper's allowable throughput: the
// maximum Poisson arrival rate whose 99th-percentile latency stays within
// the model's QoS target (Sec. 3, Sec. 7). It brackets the feasibility
// frontier geometrically and refines by bisection under common random
// numbers. Returns 0 when even FindOptions.MinRate violates QoS.
func FindAllowableThroughput(spec ClusterSpec, factory DistributorFactory, opts FindOptions) float64 {
	opts = opts.withDefaults()
	if spec.Config.Total() == 0 {
		return 0
	}

	feasible := func(rate float64) bool {
		duration := opts.DurationMS
		warmup := opts.WarmupMS
		if opts.ProbeQueries > 0 {
			duration = float64(opts.ProbeQueries) / rate * 1000
			if duration < 2000 {
				duration = 2000
			}
			warmup = duration / 6
		}
		res := Run(spec, factory(), Options{
			RatePerSec: rate,
			DurationMS: duration,
			WarmupMS:   warmup,
			Seed:       opts.Seed,
			Batches:    opts.Batches,
		})
		return res.MeetsQoS && res.Measured.Count > 0
	}

	// Probe mean batch once for the capacity bracket.
	probe := workload.NewMonitor(2000)
	probe.Warm(rand.New(rand.NewSource(opts.Seed)), opts.Batches, 2000)
	meanBatch := int(math.Round(probe.MeanBatch()))
	if meanBatch < 1 {
		meanBatch = 1
	}
	maxRate := opts.MaxRate
	if maxRate == 0 {
		maxRate = 4 * capacityEstimate(spec, meanBatch)
	}
	if maxRate < opts.MinRate {
		maxRate = opts.MinRate
	}

	// Bracket the feasibility frontier starting from a capacity-informed
	// guess instead of ramping from 1 QPS.
	var lo, hi float64
	start := maxRate / 8
	if start < opts.MinRate {
		start = opts.MinRate
	}
	if feasible(start) {
		lo = start
		hi = start * 2
		for hi < maxRate && feasible(hi) {
			lo = hi
			hi *= 2
		}
		if hi >= maxRate {
			hi = maxRate
			if feasible(hi) {
				return hi
			}
		}
	} else {
		if start <= opts.MinRate || !feasible(opts.MinRate) {
			return 0
		}
		lo, hi = opts.MinRate, start
	}
	for hi-lo > opts.PrecisionFrac*hi {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
