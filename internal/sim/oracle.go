package sim

import (
	"container/heap"
	"math/rand"
	"sort"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/workload"
)

// OracleOptions configure the ORCL reference evaluation (Sec. 7): a
// practically infeasible scheme that knows the whole query sequence in
// advance, sorts it by batch size, feeds base instances from the largest
// end and auxiliary instances from the smallest end, with no queue waits
// and no QoS-violating placements.
type OracleOptions struct {
	// Queries is how many batch samples form the sequence.
	Queries int
	// Seed drives the batch sampling.
	Seed int64
	// Batches is the batch-size distribution (default trace-like mix).
	Batches workload.BatchDistribution
}

func (o OracleOptions) withDefaults() OracleOptions {
	if o.Queries == 0 {
		o.Queries = 20000
	}
	if o.Batches == nil {
		o.Batches = workload.DefaultTrace()
	}
	return o
}

type freeHeap []freeSlot

type freeSlot struct {
	at  float64
	idx int
}

func (h freeHeap) Len() int { return len(h) }
func (h freeHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].idx < h[j].idx
}
func (h freeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *freeHeap) Push(x any)   { *h = append(*h, x.(freeSlot)) }
func (h *freeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// OracleThroughput computes the ORCL throughput of one configuration: the
// QPS achieved serving the sorted sequence with clairvoyant placement.
func OracleThroughput(spec ClusterSpec, opts OracleOptions) float64 {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	batches := make([]int, opts.Queries)
	for i := range batches {
		batches[i] = opts.Batches.Sample(rng)
	}
	return oracleOnBatches(spec, batches)
}

// oracleOnBatches runs the two-pointer list schedule over a concrete batch
// multiset.
func oracleOnBatches(spec ClusterSpec, batches []int) float64 {
	types := spec.InstanceTypes()
	if len(types) == 0 || len(batches) == 0 {
		return 0
	}
	sorted := make([]int, len(batches))
	copy(sorted, batches)
	sort.Ints(sorted)

	base := spec.Pool.Base().Name
	cutoffs := make([]int, len(types))
	isBase := make([]bool, len(types))
	for i, tn := range types {
		isBase[i] = tn == base
		cutoffs[i] = spec.Model.CutoffBatch(tn)
	}
	// Without a base instance the largest queries can never run under QoS:
	// ORCL refuses QoS-violating placements, so the sequence cannot be
	// drained and the allowable throughput is zero whenever any query
	// exceeds every cutoff.
	lo, hi := 0, len(sorted)-1
	var h freeHeap
	for i := range types {
		heap.Push(&h, freeSlot{at: 0, idx: i})
	}
	served := 0
	makespan := 0.0
	for lo <= hi && h.Len() > 0 {
		slot := heap.Pop(&h).(freeSlot)
		i := slot.idx
		var b int
		if isBase[i] {
			b = sorted[hi]
			hi--
		} else {
			if sorted[lo] > cutoffs[i] {
				// The smallest remaining query violates QoS here; since lo
				// only moves right, this instance can never serve again and
				// is not re-queued.
				continue
			}
			b = sorted[lo]
			lo++
		}
		finish := slot.at + spec.oracle().Latency(types[i], b)
		served++
		if finish > makespan {
			makespan = finish
		}
		heap.Push(&h, freeSlot{at: finish, idx: i})
	}
	if lo <= hi {
		// Unserved queries remain (no base instances): ORCL cannot sustain
		// this mix at any rate without violating QoS.
		return 0
	}
	if makespan == 0 {
		return 0
	}
	return float64(served) / makespan * 1000
}

// OracleSearch exhaustively evaluates ORCL over every configuration within
// the budget and returns the best configuration and its throughput. The
// paper uses this offline search both as the ORCL reference and to hand the
// competing schemes their best configurations (Sec. 8.2).
func OracleSearch(pool cloud.Pool, model models.Model, budget float64, opts OracleOptions) (cloud.Config, float64) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	batches := make([]int, opts.Queries)
	for i := range batches {
		batches[i] = opts.Batches.Sample(rng)
	}
	var best cloud.Config
	bestQPS := -1.0
	for _, cfg := range pool.Enumerate(budget) {
		spec := ClusterSpec{Pool: pool, Config: cfg, Model: model}
		qps := oracleOnBatches(spec, batches)
		if qps > bestQPS {
			bestQPS = qps
			best = cfg
		}
	}
	return best, bestQPS
}
